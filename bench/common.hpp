// Shared experiment harness for the table/figure reproduction binaries.
//
// Every bench builds the same corpus (Table II benchmark programs plus the
// generated/transformed programs), the same dataset, and the same train/test
// protocol: 75:25 split at kernel granularity, training classes balanced,
// suites too small to split (BOTS) held out entirely into the test side —
// mirroring how Shen et al. evaluate on benchmarks outside their training
// set.
#pragma once

#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "ml/classic.hpp"
#include "ml/ncc.hpp"
#include "obs/bench_report.hpp"  // every bench writes results through this
#include "obs/log.hpp"

namespace mvgnn::bench {

struct Experiment {
  data::Dataset ds;
  std::vector<std::size_t> train;  // balanced
  std::vector<std::size_t> test;
};

inline Experiment build_experiment(int generated_loops = 700,
                                   std::uint64_t seed = 123,
                                   bool use_ir_variants = false) {
  Experiment ex;
  auto programs = data::build_benchmark_corpus(seed);
  auto gen = data::build_generated_corpus(generated_loops, seed ^ 0x9E97ULL);
  programs.insert(programs.end(), std::make_move_iterator(gen.begin()),
                  std::make_move_iterator(gen.end()));
  data::DatasetOptions opts;
  opts.seed = seed;
  opts.use_ir_variants = use_ir_variants;
  std::size_t skipped = 0;
  ex.ds = data::build_dataset(programs, opts, &skipped);
  if (skipped != 0) {
    obs::log_warn("programs failed to profile",
                  {{"skipped", std::to_string(skipped)}});
  }

  auto [train, test] = data::split_by_kernel(ex.ds, 0.75, seed);
  // Hold BOTS out entirely: with two kernels it cannot be split
  // meaningfully, and the paper's comparison treats it as an unseen suite.
  std::vector<std::size_t> kept_train;
  for (const std::size_t i : train) {
    if (ex.ds.samples[i].suite == "BOTS") {
      test.push_back(i);
    } else {
      kept_train.push_back(i);
    }
  }
  ex.train = data::balance_classes(ex.ds, kept_train, seed);
  ex.test = std::move(test);
  return ex;
}

/// Test indices restricted to one suite.
inline std::vector<std::size_t> suite_test(const Experiment& ex,
                                           const std::string& suite) {
  std::vector<std::size_t> out;
  for (const std::size_t i : ex.test) {
    if (ex.ds.samples[i].suite == suite) out.push_back(i);
  }
  return out;
}

/// Standard scaled-down training configuration (DESIGN.md section 5).
inline core::TrainConfig standard_train_config() {
  core::TrainConfig tc;
  tc.epochs = 30;
  tc.lr = 1e-3f;
  tc.seed = 7;
  return tc;
}

/// Feature rows for the hand-crafted classifiers.
inline void feature_matrix(const data::Dataset& ds,
                           const std::vector<std::size_t>& idx,
                           std::vector<ml::FeatureRow>& x,
                           std::vector<int>& y) {
  x.clear();
  y.clear();
  for (const std::size_t i : idx) {
    const auto& f = ds.samples[i].loop_features;
    x.emplace_back(f.begin(), f.end());
    y.push_back(ds.samples[i].label);
  }
}

inline double pct(double x) { return 100.0 * x; }

}  // namespace mvgnn::bench
