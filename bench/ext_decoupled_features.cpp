// Paper future-work extension #3: decouple the dynamic and static features
// so the model "would be applicable to a wider range of applications" —
// programs that cannot be linked and executed get no dynamic profile.
//
// Protocol: train three MV-GNNs — (a) standard, (b) static-only inputs,
// (c) standard with random dynamic-feature masking ("decoupled") — and
// evaluate each with and without dynamic features at inference.
#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace mvgnn;

  bench::Experiment ex = bench::build_experiment(500);
  const core::Normalizer norm = core::Normalizer::fit(ex.ds, ex.train);
  core::Featurizer full(ex.ds, norm);
  core::Featurizer no_dyn(ex.ds, norm, core::LabelMode::Binary,
                          /*zero_dynamic=*/true);
  core::TrainConfig tc = bench::standard_train_config();
  tc.epochs = 24;

  std::printf("training (a) standard MV-GNN...\n");
  core::MvGnnTrainer standard(full, core::default_config(full), tc);
  standard.fit(ex.train, {});

  std::printf("training (b) static-input MV-GNN...\n");
  core::MvGnnTrainer static_only(no_dyn, core::default_config(no_dyn), tc);
  static_only.fit(ex.train, {});

  std::printf("training (c) decoupled MV-GNN (50%% dynamic masking)...\n\n");
  core::MvGnnTrainer decoupled(full, core::default_config(full), tc);
  decoupled.set_alternate_inputs(&no_dyn, 0.5f);
  decoupled.fit(ex.train, {});

  std::printf("Extension — decoupled static/dynamic features (test acc)\n");
  std::printf("%-36s %14s %14s\n", "model", "with dynamic", "static only");
  std::printf("%-36s %13.1f%% %13.1f%%\n", "(a) standard training",
              100 * standard.accuracy_with(full, ex.test),
              100 * standard.accuracy_with(no_dyn, ex.test));
  std::printf("%-36s %13.1f%% %13.1f%%\n", "(b) static-only training",
              100 * static_only.accuracy_with(full, ex.test),
              100 * static_only.accuracy_with(no_dyn, ex.test));
  std::printf("%-36s %13.1f%% %13.1f%%\n", "(c) decoupled (random masking)",
              100 * decoupled.accuracy_with(full, ex.test),
              100 * decoupled.accuracy_with(no_dyn, ex.test));
  std::printf(
      "\nExpected shape: (a) collapses without dynamic features; (c) keeps\n"
      "most of (a)'s accuracy with them while staying usable without — the\n"
      "selective-application behaviour the paper's future work asks for.\n");
  return 0;
}
