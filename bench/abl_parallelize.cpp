// Ablation: the parallelize pass — discovery verdicts acted on, end to end.
//
// Seven hand-written large-N MiniC kernels (the shapes the suggestion layer
// is supposed to catch: DOALL sweeps, float/int maps, a stencil, sum/max
// reductions, an indirect-subscript array reduction, a matmul nest) are
// compiled, profiled, suggested, planned and executed both ways:
//
//   sequential: profiler::run_capture — the observed interpreter, the same
//               engine every profile and every dataset build pays for.
//   parallel:   profiler::run_parallel under the plan from
//               transform::plan_parallel — the lean unobserved engine with
//               the planned loops sharded across par::TaskGroup.
//
// Per kernel the best-of-reps wall times give `<kernel>_speedup`, and the
// output comparison (final array-argument memory + return value, the
// run_equivalence contract) gives `<kernel>_equal`. Acceptance: every
// kernel equal, and at least one kernel >= --min-speedup (default 1.5x).
//
//   --smoke        small N, fewer reps, relaxed acceptance (>= 1.05x) —
//                  for CI, where equality still gates exactly but absolute
//                  speedups are noise at smoke sizes
//   --threads <n>  parallel-run thread count (default 2)
//   --reps <n>     repetitions, best-of (default 5; smoke default 2)
//   --out <p>      snapshot path (default BENCH_parallelize.json)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/suggest.hpp"
#include "frontend/lower.hpp"
#include "obs/bench_report.hpp"
#include "profiler/profile.hpp"
#include "transform/parallelize.hpp"

namespace {

using namespace mvgnn;
using profiler::ArgInit;

struct Kernel {
  const char* name;
  std::string source;
  std::vector<ArgInit> args;
};

std::string with_n(const char* body, int n) {
  return "const int N = " + std::to_string(n) + ";\n" + body;
}

/// The kernel corpus. `n` scales the data size (smoke vs full); matmul gets
/// a cubic-friendly side length of its own.
std::vector<Kernel> make_kernels(int n, int mat) {
  const auto un = static_cast<std::uint64_t>(n);
  const auto um = static_cast<std::uint64_t>(mat);
  std::vector<Kernel> ks;
  ks.push_back({"saxpy",
                with_n(R"(float kernel(float[] a, float[] b) {
  for (int i = 0; i < N; i += 1) {
    a[i] = 2.5 * a[i] + b[i];
  }
  return a[0];
})",
                       n),
                {ArgInit::of_array(un, 1), ArgInit::of_array(un, 2)}});
  ks.push_back({"vec_map",
                with_n(R"(int kernel(int[] a, int[] b, int[] c) {
  for (int i = 0; i < N; i += 1) {
    c[i] = a[i] * 3 + b[i];
  }
  return c[0];
})",
                       n),
                {ArgInit::of_array(un, 1), ArgInit::of_array(un, 2),
                 ArgInit::of_array(un, 3)}});
  ks.push_back({"stencil",
                with_n(R"(float kernel(float[] a, float[] b) {
  for (int i = 1; i < N - 1; i += 1) {
    b[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1];
  }
  return b[1];
})",
                       n),
                {ArgInit::of_array(un, 1), ArgInit::of_array(un, 2)}});
  ks.push_back({"dot_product",
                with_n(R"(float kernel(float[] a, float[] b) {
  float s = 0.0;
  for (int i = 0; i < N; i += 1) {
    s = s + a[i] * b[i];
  }
  return s;
})",
                       n),
                {ArgInit::of_array(un, 1), ArgInit::of_array(un, 2)}});
  ks.push_back({"reduce_max",
                with_n(R"(float kernel(float[] a) {
  float m = 0.0;
  for (int i = 0; i < N; i += 1) {
    m = fmax(m, a[i]);
  }
  return m;
})",
                       n),
                {ArgInit::of_array(un, 1)}});
  ks.push_back({"histogram",
                with_n(R"(float kernel(int[] bucket, float[] hist) {
  for (int i = 0; i < N; i += 1) {
    hist[bucket[i]] += 1.0;
  }
  return hist[0];
})",
                       n),
                {ArgInit::of_array(un, 7), ArgInit::of_array(un, 8)}});
  ks.push_back({"matmul",
                with_n(R"(float kernel(float[] A, float[] B, float[] C) {
  for (int i = 0; i < N; i += 1) {
    for (int j = 0; j < N; j += 1) {
      float acc = 0.0;
      for (int k = 0; k < N; k += 1) {
        acc = acc + A[i * N + k] * B[k * N + j];
      }
      C[i * N + j] = acc;
    }
  }
  return C[0];
})",
                       mat),
                {ArgInit::of_array(um * um, 1), ArgInit::of_array(um * um, 2),
                 ArgInit::of_array(um * um, 3)}});
  return ks;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int reps = 0;  // 0 = pick the mode default below
  std::uint32_t threads = 2;
  double min_speedup = 0.0;  // 0 = pick the mode default below
  std::string out = "BENCH_parallelize.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[a], "--reps") == 0 && a + 1 < argc) {
      reps = std::atoi(argv[++a]);
    } else if (std::strcmp(argv[a], "--threads") == 0 && a + 1 < argc) {
      threads = static_cast<std::uint32_t>(std::atoi(argv[++a]));
    } else if (std::strcmp(argv[a], "--min-speedup") == 0 && a + 1 < argc) {
      min_speedup = std::atof(argv[++a]);
    } else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc) {
      out = argv[++a];
    } else {
      std::fprintf(stderr,
                   "usage: abl_parallelize [--smoke] [--reps n] "
                   "[--threads n] [--min-speedup x] [--out path]\n");
      return 2;
    }
  }
  if (reps <= 0) reps = smoke ? 2 : 5;
  if (min_speedup <= 0.0) min_speedup = smoke ? 1.05 : 1.5;
  const int n = smoke ? 1 << 14 : 1 << 18;
  const int mat = smoke ? 24 : 72;

  obs::BenchReport report("abl_parallelize");
  report.config("smoke", smoke ? 1 : 0);
  report.config("reps", reps);
  report.config("threads", static_cast<double>(threads));
  report.config("n", n);
  report.config("matmul_n", mat);

  bool all_equal = true;
  bool all_planned = true;
  double max_speedup = 0.0;
  std::printf("%-12s %7s %12s %12s %9s %6s\n", "kernel", "loops", "seq ms",
              "par ms", "speedup", "equal");
  for (const Kernel& k : make_kernels(n, mat)) {
    const ir::Module m = frontend::compile(k.source, k.name);
    const auto prof = profiler::profile(m, "kernel", k.args);
    const auto suggestions = analysis::suggest_openmp(m, prof);
    const auto result = transform::plan_parallel(m, "kernel", suggestions,
                                                 prof);
    if (result.planned_loops() == 0) {
      // A kernel the planner refuses entirely is a regression in the pass,
      // not a slow run — surface it through kernels_planned.
      std::printf("%-12s %7s %12s %12s %9s %6s\n", k.name, "0", "-", "-", "-",
                  "-");
      all_planned = false;
      report.metric(std::string(k.name) + "_speedup", 0.0,
                    obs::MetricGoal::Higher, "x");
      report.metric(std::string(k.name) + "_equal", 0.0,
                    obs::MetricGoal::Higher);
      continue;
    }

    transform::EquivalenceReport best;
    bool equal = true;
    for (int r = 0; r < reps; ++r) {
      const auto eq =
          transform::run_equivalence(m, "kernel", k.args, result.plan,
                                     threads);
      if (!eq.ran || !eq.equal) {
        std::printf("%-12s MISMATCH: %s\n", k.name, eq.detail.c_str());
        equal = false;
        break;
      }
      if (r == 0) {
        best = eq;
      } else {
        best.seq_seconds = std::min(best.seq_seconds, eq.seq_seconds);
        best.par_seconds = std::min(best.par_seconds, eq.par_seconds);
      }
    }
    if (!equal) {
      all_equal = false;
      report.metric(std::string(k.name) + "_speedup", 0.0,
                    obs::MetricGoal::Higher, "x");
      report.metric(std::string(k.name) + "_equal", 0.0,
                    obs::MetricGoal::Higher);
      continue;
    }
    const double speedup =
        best.par_seconds > 0.0 ? best.seq_seconds / best.par_seconds : 0.0;
    max_speedup = std::max(max_speedup, speedup);
    std::printf("%-12s %7zu %12.3f %12.3f %8.2fx %6s\n", k.name,
                result.planned_loops(), best.seq_seconds * 1e3,
                best.par_seconds * 1e3, speedup, "yes");
    report.metric(std::string(k.name) + "_speedup", speedup,
                  obs::MetricGoal::Higher, "x");
    report.metric(std::string(k.name) + "_equal", 1.0,
                  obs::MetricGoal::Higher);
  }

  std::printf("\nall outputs equal: %s\n", all_equal ? "yes" : "NO");
  std::printf("all kernels planned: %s\n", all_planned ? "yes" : "NO");
  std::printf("max speedup: %.2fx (acceptance: >= %.2fx on any kernel)\n",
              max_speedup, min_speedup);

  report.metric("kernels_equal", all_equal ? 1.0 : 0.0,
                obs::MetricGoal::Higher);
  report.metric("kernels_planned", all_planned ? 1.0 : 0.0,
                obs::MetricGoal::Higher);
  report.metric("max_speedup", max_speedup, obs::MetricGoal::Higher, "x");
  if (report.write(out)) std::printf("wrote %s\n", out.c_str());

  return (all_equal && all_planned && max_speedup >= min_speedup) ? 0 : 1;
}
