// google-benchmark → BenchReport bridge.
//
// The custom-main benches (abl_cache, ...) write their BenchReport snapshot
// directly; the google-benchmark ones get the same schema through this
// header: replace BENCHMARK_MAIN() with
//
//   MVGNN_GBENCH_REPORT_MAIN("abl_gemm", "BENCH_gemm.json");
//
// and every per-iteration run lands in the snapshot as two metrics,
//
//   "<benchmark name>/real_ns"     goal=lower   adjusted real time / iter
//   "<benchmark name>/items_per_s" goal=higher  (when SetItemsProcessed ran)
//   "<benchmark name>/<counter>"   goal=higher  every user counter, verbatim
//
// so tools/bench_compare can gate a microbench exactly like a wall-clock
// bench. `--bench-out=<path>` overrides the snapshot path; it is stripped
// before benchmark::Initialize sees the arguments (google-benchmark rejects
// flags it does not know). All normal --benchmark_* flags still work —
// CI uses --benchmark_filter to run a small, stable subset.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/bench_report.hpp"

namespace mvgnn::bench {

/// ConsoleReporter that additionally records every per-iteration run into a
/// BenchReport. Aggregate rows (mean/median/stddev under --benchmark_
/// repetitions) are skipped: re-recording already keeps the last rep, and
/// mixing aggregates into the metric namespace would double-gate.
class ReportingConsoleReporter : public benchmark::ConsoleReporter {
 public:
  explicit ReportingConsoleReporter(obs::BenchReport& report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      // GetAdjustedRealTime is per-iteration, scaled to the run's time
      // unit; the default unit is nanoseconds and none of our benches
      // override it, so the key says ns.
      report_.metric(name + "/real_ns", run.GetAdjustedRealTime(),
                     obs::MetricGoal::Lower, "ns");
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        report_.metric(name + "/items_per_s",
                       static_cast<double>(it->second),
                       obs::MetricGoal::Higher, "items/s");
      }
      // User counters (state.counters[...]) pass through under their own
      // name. Every counter this repo defines is a higher-is-better rate
      // (gflops and friends); a future lower-is-better counter would need
      // its own mapping here before the gate could use it.
      for (const auto& [cname, counter] : run.counters) {
        if (cname == "items_per_second" || cname == "bytes_per_second") {
          continue;  // already mapped / unused
        }
        report_.metric(name + "/" + cname, static_cast<double>(counter),
                       obs::MetricGoal::Higher,
                       cname == "gflops" ? "GFLOP/s" : "");
      }
    }
  }

 private:
  obs::BenchReport& report_;
};

/// Drop-in main body: strips --bench-out=<path>, runs the benchmarks with
/// the capturing reporter, writes the snapshot. Returns the process exit
/// code.
inline int run_gbench_with_report(int argc, char** argv,
                                  const char* bench_name,
                                  const char* default_out) {
  std::string out = default_out;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    constexpr const char* kFlag = "--bench-out=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      out = argv[i] + std::strlen(kFlag);
    } else {
      args.push_back(argv[i]);
    }
  }
  args.push_back(nullptr);  // Initialize expects an argv-shaped array
  int filtered_argc = static_cast<int>(args.size()) - 1;

  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  obs::BenchReport report(bench_name);
  {
    std::string joined;
    for (int i = 1; i < filtered_argc; ++i) {
      if (!joined.empty()) joined += ' ';
      joined += args[static_cast<std::size_t>(i)];
    }
    report.config("args", joined);
  }
  ReportingConsoleReporter reporter(report);
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (ran == 0) {
    std::fprintf(stderr, "%s: no benchmarks matched the filter\n", bench_name);
    return 1;
  }
  if (report.write(out)) std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace mvgnn::bench

#define MVGNN_GBENCH_REPORT_MAIN(bench_name, default_out)               \
  int main(int argc, char** argv) {                                     \
    return mvgnn::bench::run_gbench_with_report(argc, argv, bench_name, \
                                                default_out);           \
  }
