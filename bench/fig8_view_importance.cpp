// Reproduces Fig. 8: the importance of each view in the multi-view model.
// Per the paper, IMP_view = N_view / N_multi where N_* is the number of
// parallel loops identified by the view head vs the fused head, evaluated
// per benchmark suite.
#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace mvgnn;

  bench::Experiment ex = bench::build_experiment();
  const core::Normalizer norm = core::Normalizer::fit(ex.ds, ex.train);
  core::Featurizer feats(ex.ds, norm);
  std::printf("Training MV-GNN (with per-view heads)...\n\n");
  core::MvGnnTrainer trainer(feats, core::default_config(feats),
                             bench::standard_train_config());
  trainer.fit(ex.train, {});

  std::printf("Fig. 8 — importance of views (IMP = N_view / N_multi)\n");
  std::printf("%-12s %8s %8s %12s %12s %12s\n", "Benchmark", "IMP_n", "IMP_s",
              "acc(multi)", "acc(node)", "acc(struct)");
  for (const char* suite : {"NPB", "PolyBench", "BOTS", "Generated"}) {
    const auto idx = bench::suite_test(ex, suite);
    if (idx.empty()) continue;
    double n_multi = 0, n_node = 0, n_struct = 0;
    double acc_multi = 0, acc_node = 0, acc_struct = 0;
    for (const std::size_t i : idx) {
      const auto p = trainer.predict(i);
      const int label = ex.ds.samples[i].label;
      n_multi += p.fused;
      n_node += p.node_view;
      n_struct += p.struct_view;
      acc_multi += p.fused == label;
      acc_node += p.node_view == label;
      acc_struct += p.struct_view == label;
    }
    const double n = static_cast<double>(idx.size());
    if (n_multi == 0) n_multi = 1;  // avoid division blowup on tiny suites
    std::printf("%-12s %8.3f %8.3f %11.1f%% %11.1f%% %11.1f%%\n", suite,
                n_node / n_multi, n_struct / n_multi,
                100.0 * acc_multi / n, 100.0 * acc_node / n,
                100.0 * acc_struct / n);
  }
  std::printf(
      "\nExpected shape (paper Fig. 8): both IMP values close to 1 (views\n"
      "consensus), IMP_n >= IMP_s on every suite, and the multi-view\n"
      "accuracy at or above either single view.\n");
  return 0;
}
