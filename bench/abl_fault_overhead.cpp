// Fault-tolerance ablation: what the robustness layer costs when nothing
// goes wrong — the budget is <2% on every hot path.
//
//   ./build/bench/abl_fault_overhead
//
// Three costs are isolated:
//   * BM_FaultCheck            one disarmed fault::check() (the hook that
//                              sits on write/step/trap sites): one relaxed
//                              atomic load, a few nanoseconds.
//   * BM_ProfileRun/*          the interpreter with its fuel + memory caps
//                              (always on) — disarmed vs. a trap armed far
//                              past the run, which exercises the same
//                              per-step compare the injection uses.
//   * BM_TrainEpoch/*          one training epoch without checkpointing
//                              vs. with a checkpoint written every epoch
//                              (serialize + CRC + fsync + rename). The
//                              delta is the *fixed* per-write cost (a few
//                              ms); the epoch here is deliberately tiny,
//                              so quote it as ms-per-checkpoint, not as a
//                              percentage. At realistic epoch durations
//                              (or a larger --checkpoint-every) it
//                              amortizes below the 2% budget.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench/gbench_report.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "fault/fault.hpp"
#include "frontend/lower.hpp"
#include "profiler/profile.hpp"

namespace {

using namespace mvgnn;

void run_fault_check(benchmark::State& state) {
  fault::disarm_all();
  for (auto _ : state) {
    fault::check("bench.site");
  }
}
BENCHMARK(run_fault_check)->Name("BM_FaultCheck");

const ir::Module& stencil_module() {
  static const ir::Module m = frontend::compile(R"(
const int N = 256;
void kernel(float[] A, float[] B) {
  for (int t = 0; t < 8; t += 1) {
    for (int i = 1; i < N - 1; i += 1) {
      B[i] = 0.25 * A[i - 1] + 0.5 * A[i] + 0.25 * A[i + 1];
    }
    for (int i = 1; i < N - 1; i += 1) {
      A[i] = B[i];
    }
  }
}
)",
                                                "bench");
  return m;
}

void run_profile(benchmark::State& state, bool arm_trap) {
  fault::disarm_all();
  // Armed far beyond the run's step count: every step pays the compare,
  // the trap never fires.
  if (arm_trap) fault::arm("interp.trap", 1u << 30);
  const auto& m = stencil_module();
  const std::vector<profiler::ArgInit> args = {
      profiler::ArgInit::of_array(256, 1), profiler::ArgInit::of_array(256, 2)};
  for (auto _ : state) {
    const auto prof = profiler::profile(m, "kernel", args);
    benchmark::DoNotOptimize(prof.run.steps);
  }
  fault::disarm_all();
}
BENCHMARK_CAPTURE(run_profile, disarmed, false)
    ->Name("BM_ProfileRun/disarmed")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(run_profile, trap_armed, true)
    ->Name("BM_ProfileRun/trap_armed")
    ->Unit(benchmark::kMillisecond);

const data::Dataset& bench_dataset() {
  static const data::Dataset ds = [] {
    data::DatasetOptions opts;
    opts.seed = 7;
    opts.walk.gamma = 16;
    return data::build_dataset(data::build_generated_corpus(40, 2024), opts);
  }();
  return ds;
}

void run_train_epoch(benchmark::State& state, bool checkpoint) {
  const data::Dataset& ds = bench_dataset();
  std::vector<std::size_t> train;
  for (std::size_t i = 0; i < ds.samples.size(); ++i) train.push_back(i);
  const core::Normalizer norm = core::Normalizer::fit(ds, train);
  const core::Featurizer feats(ds, norm);
  const auto dir =
      std::filesystem::temp_directory_path() / "mvgnn_bench_ckpt";
  core::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 4;
  tc.seed = 11;
  if (checkpoint) {
    std::filesystem::create_directories(dir);
    tc.checkpoint_dir = dir.string();
  }
  for (auto _ : state) {
    core::MvGnnTrainer trainer(feats, core::default_config(feats), tc);
    const auto curve = trainer.fit(train, {});
    benchmark::DoNotOptimize(curve.size());
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK_CAPTURE(run_train_epoch, ckpt_off, false)
    ->Name("BM_TrainEpoch/ckpt_off")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(run_train_epoch, ckpt_on, true)
    ->Name("BM_TrainEpoch/ckpt_on")
    ->Unit(benchmark::kMillisecond);

}  // namespace

MVGNN_GBENCH_REPORT_MAIN("abl_fault_overhead", "BENCH_fault_overhead.json");
