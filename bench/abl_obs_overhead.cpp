// Observability ablation: cost of the obs layer on the two instrumented hot
// paths (GEMM and the profiling interpreter) with tracing disabled — the
// default state, budgeted at <2% — and enabled, which pays for clock reads
// and per-thread buffer appends.
//
//   ./build/bench/abl_obs_overhead
//
// Compare BM_Gemm/trace_off vs BM_Gemm/trace_on (same for BM_ProfileRun);
// the *_off variants are the numbers to hold against a pre-obs baseline.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/gbench_report.hpp"
#include "frontend/lower.hpp"
#include "obs/trace.hpp"
#include "profiler/profile.hpp"
#include "tensor/gemm.hpp"

namespace {

using namespace mvgnn;

void run_gemm(benchmark::State& state) {
  constexpr std::size_t kDim = 96;  // above the parallel threshold
  std::vector<float> a(kDim * kDim, 0.5f), b(kDim * kDim, 0.25f),
      c(kDim * kDim);
  for (auto _ : state) {
    tensor::gemm(a.data(), b.data(), c.data(), kDim, kDim, kDim);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          kDim * kDim * kDim);
}

const ir::Module& stencil_module() {
  static const ir::Module m = frontend::compile(R"(
const int N = 256;
void kernel(float[] A, float[] B) {
  for (int t = 0; t < 8; t += 1) {
    for (int i = 1; i < N - 1; i += 1) {
      B[i] = 0.25 * A[i - 1] + 0.5 * A[i] + 0.25 * A[i + 1];
    }
    for (int i = 1; i < N - 1; i += 1) {
      A[i] = B[i];
    }
  }
}
)",
                                                "bench");
  return m;
}

void run_profile(benchmark::State& state) {
  const auto& m = stencil_module();
  const std::vector<profiler::ArgInit> args = {
      profiler::ArgInit::of_array(256, 1), profiler::ArgInit::of_array(256, 2)};
  for (auto _ : state) {
    const auto prof = profiler::profile(m, "kernel", args);
    benchmark::DoNotOptimize(prof.loops.size());
  }
}

void BM_Gemm(benchmark::State& state) {
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  if (state.range(0)) {
    rec.enable();
  } else {
    rec.disable();
  }
  run_gemm(state);
  rec.disable();
  rec.clear();
}
BENCHMARK(BM_Gemm)->ArgName("trace_on")->Arg(0)->Arg(1);

void BM_ProfileRun(benchmark::State& state) {
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  if (state.range(0)) {
    rec.enable();
  } else {
    rec.disable();
  }
  run_profile(state);
  rec.disable();
  rec.clear();
}
BENCHMARK(BM_ProfileRun)->ArgName("trace_on")->Arg(0)->Arg(1);

}  // namespace

MVGNN_GBENCH_REPORT_MAIN("abl_obs_overhead", "BENCH_obs_overhead.json");
