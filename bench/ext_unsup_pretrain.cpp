// The GraphSAGE-style unsupervised objective the paper adopts (section
// III-E): does pretraining the two GCN views on unlabeled sub-PEGs help
// when labeled loops are scarce?
//
// Protocol: shrink the labeled training set to a fraction, compare test
// accuracy with and without unsupervised pretraining over the full
// (unlabeled) training pool.
#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace mvgnn;

  bench::Experiment ex = bench::build_experiment(500);
  const core::Normalizer norm = core::Normalizer::fit(ex.ds, ex.train);
  core::Featurizer feats(ex.ds, norm);
  core::TrainConfig tc = bench::standard_train_config();
  tc.epochs = 20;

  std::printf("Extension — GraphSAGE-style unsupervised pretraining\n");
  std::printf("%10s %14s %18s\n", "labels", "supervised", "pretrain+sup");
  for (const double fraction : {0.1, 0.25, 1.0}) {
    std::vector<std::size_t> labeled(
        ex.train.begin(),
        ex.train.begin() +
            std::max<std::size_t>(
                8, static_cast<std::size_t>(fraction * ex.train.size())));

    core::TrainConfig tc_run = tc;
    tc_run.seed = 11;
    core::MvGnnTrainer plain(feats, core::default_config(feats), tc_run);
    plain.fit(labeled, {});

    core::MvGnnTrainer pre(feats, core::default_config(feats), tc_run);
    pre.pretrain_unsupervised(ex.train, /*epochs=*/2);
    pre.fit(labeled, {});

    std::printf("%9zu %13.1f%% %17.1f%%\n", labeled.size(),
                100 * plain.accuracy(ex.test), 100 * pre.accuracy(ex.test));
  }
  std::printf(
      "\nExpected shape: pretraining helps most in the scarce-label middle\n"
      "(the embeddings arrive pre-shaped); with plentiful labels the gap\n"
      "closes, and at very small label counts both runs are noise-bound.\n");
  return 0;
}
