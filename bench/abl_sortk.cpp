// Design ablation: SortPooling k. The paper fixes k=135 at its 200-dim GPU
// scale; this sweep shows the accuracy/cost trade-off at our scale — too
// small truncates informative nodes, too large mostly pads zeros and wastes
// convolution work.
#include <chrono>
#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace mvgnn;

  auto programs = data::build_generated_corpus(360, 61);
  data::DatasetOptions opts;
  opts.seed = 37;
  const data::Dataset ds = data::build_dataset(programs, opts);
  auto [train, test] = data::split_by_kernel(ds, 0.75, 37);
  train = data::balance_classes(ds, train, 37);

  // Graph-size distribution for context.
  std::size_t max_n = 0, sum_n = 0;
  for (const auto& s : ds.samples) {
    max_n = std::max<std::size_t>(max_n, s.n);
    sum_n += s.n;
  }
  std::printf("sub-PEG sizes: mean %.1f nodes, max %zu\n\n",
              static_cast<double>(sum_n) / ds.samples.size(), max_n);

  std::printf("Ablation — SortPooling k\n");
  std::printf("%6s %12s %14s\n", "k", "test acc", "train time");
  obs::BenchReport report("abl_sortk");
  report.config("loops", 360);
  for (const std::size_t k : {10, 16, 24, 48}) {
    const core::Normalizer norm = core::Normalizer::fit(ds, train);
    core::Featurizer feats(ds, norm);
    core::MvGnnConfig cfg = core::default_config(feats);
    cfg.node_view.sort_k = k;
    cfg.struct_view.sort_k = k;
    core::TrainConfig tc = bench::standard_train_config();
    tc.epochs = 18;
    core::MvGnnTrainer trainer(feats, cfg, tc);
    const auto t0 = std::chrono::steady_clock::now();
    trainer.fit(train, {});
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double acc = trainer.accuracy(test);
    std::printf("%6zu %11.1f%% %12.1fs\n", k, 100.0 * acc, secs);
    report.metric("acc_k" + std::to_string(k), acc, obs::MetricGoal::Higher);
    report.metric("train_s_k" + std::to_string(k), secs,
                  obs::MetricGoal::Lower, "s");
  }
  if (report.write("BENCH_sortk.json")) {
    std::printf("wrote BENCH_sortk.json\n");
  }
  std::printf(
      "\nExpected shape: a plateau once k covers typical sub-PEG sizes,\n"
      "with training cost growing roughly linearly in k.\n");
  return 0;
}
