// Reproduces Fig. 7: loss (above) and accuracy (below) of the training
// process on the generated dataset. Prints the two series plus an ASCII
// sparkline so the curve shape is visible in a terminal.
#include <cstdio>

#include "bench/common.hpp"

namespace {

void sparkline(const char* name, const std::vector<double>& ys) {
  static const char* levels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  double lo = ys[0], hi = ys[0];
  for (const double y : ys) {
    lo = std::min(lo, y);
    hi = std::max(hi, y);
  }
  std::printf("%-10s |", name);
  for (const double y : ys) {
    const double t = (hi > lo) ? (y - lo) / (hi - lo) : 0.5;
    std::printf("%s", levels[static_cast<int>(t * 7.0 + 0.5)]);
  }
  std::printf("|  min=%.3f max=%.3f\n", lo, hi);
}

}  // namespace

int main() {
  using namespace mvgnn;

  // Fig. 7 trains on the generated dataset alone.
  auto programs = data::build_generated_corpus(700, 321);
  data::DatasetOptions opts;
  opts.seed = 17;
  const data::Dataset ds = data::build_dataset(programs, opts);
  auto [train, test] = data::split_by_kernel(ds, 0.75, 17);
  train = data::balance_classes(ds, train, 17);
  std::printf("generated dataset: %zu samples, train=%zu test=%zu\n\n",
              ds.samples.size(), train.size(), test.size());

  const core::Normalizer norm = core::Normalizer::fit(ds, train);
  core::Featurizer feats(ds, norm);
  core::TrainConfig tc = bench::standard_train_config();
  tc.epochs = 40;
  core::MvGnnTrainer trainer(feats, core::default_config(feats), tc);
  const auto curve = trainer.fit(train, test);

  std::printf("Fig. 7 — training on the generated dataset\n");
  std::printf("%5s %10s %11s %10s\n", "epoch", "loss", "train_acc",
              "test_acc");
  std::vector<double> losses, train_accs, test_accs;
  for (std::size_t e = 0; e < curve.size(); ++e) {
    std::printf("%5zu %10.4f %11.4f %10.4f\n", e, curve[e].loss,
                curve[e].train_acc, curve[e].test_acc);
    losses.push_back(curve[e].loss);
    train_accs.push_back(curve[e].train_acc);
    test_accs.push_back(curve[e].test_acc);
  }
  std::printf("\n");
  sparkline("loss", losses);
  sparkline("train_acc", train_accs);
  sparkline("test_acc", test_accs);
  std::printf(
      "\nExpected shape (paper Fig. 7): loss decreasing toward a plateau,\n"
      "accuracy rising and flattening near its final value.\n");
  return 0;
}
