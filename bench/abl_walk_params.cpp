// Design ablation: anonymous-walk sampling parameters (gamma walks per node,
// walk length l). The paper fixes one setting; this sweep shows how the
// structural view's value depends on them — short walks can't see patterns,
// very long walks blur them, few walks are noisy.
#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace mvgnn;

  struct Config {
    std::uint32_t gamma;
    std::uint32_t length;
  };
  const Config configs[] = {{4, 5}, {24, 3}, {24, 5}, {24, 7}, {64, 5}};

  std::printf("Ablation — anonymous-walk parameters (gamma, l)\n");
  std::printf("%6s %6s %10s %12s %12s\n", "gamma", "l", "aw_vocab",
              "acc(multi)", "acc(struct)");

  obs::BenchReport report("abl_walk_params");
  report.config("loops", 320);
  auto programs = data::build_generated_corpus(320, 55);
  for (const Config& cfg : configs) {
    data::DatasetOptions opts;
    opts.seed = 31;
    opts.walk.gamma = cfg.gamma;
    opts.walk.length = cfg.length;
    const data::Dataset ds = data::build_dataset(programs, opts);
    auto [train, test] = data::split_by_kernel(ds, 0.75, 31);
    train = data::balance_classes(ds, train, 31);

    const core::Normalizer norm = core::Normalizer::fit(ds, train);
    core::Featurizer feats(ds, norm);
    core::TrainConfig tc = bench::standard_train_config();
    tc.epochs = 18;
    core::MvGnnTrainer trainer(feats, core::default_config(feats), tc);
    trainer.fit(train, {});

    double acc_multi = 0, acc_struct = 0;
    for (const std::size_t i : test) {
      const auto p = trainer.predict(i);
      acc_multi += p.fused == ds.samples[i].label;
      acc_struct += p.struct_view == ds.samples[i].label;
    }
    const double n = static_cast<double>(test.size());
    std::printf("%6u %6u %10u %11.1f%% %11.1f%%\n", cfg.gamma, cfg.length,
                ds.aw_vocab, 100.0 * acc_multi / n, 100.0 * acc_struct / n);
    const std::string tag = "g" + std::to_string(cfg.gamma) + "_l" +
                            std::to_string(cfg.length);
    report.metric("acc_multi_" + tag, acc_multi / n,
                  obs::MetricGoal::Higher);
    report.metric("acc_struct_" + tag, acc_struct / n,
                  obs::MetricGoal::Higher);
    report.metric("aw_vocab_" + tag, ds.aw_vocab);
  }
  if (report.write("BENCH_walk_params.json")) {
    std::printf("wrote BENCH_walk_params.json\n");
  }
  return 0;
}
