// Ablation: deterministic data-parallel training (docs/parallelism.md).
//
// Times one training epoch of the MV-GNN at --threads 1, 2 and 4 on the
// same corpus, checks the acceptance target (>= 2x epoch speedup at 4
// threads vs 1), and — the property the design actually guarantees —
// verifies that every run ends with byte-identical weights and loss
// curves: `threads` trades wall-clock only, never numerics.
//
// Results go to stdout and, machine-readable, to BENCH_data_parallel.json.
// On a box with fewer than 4 hardware threads the speedup target is
// physically unreachable (the shard workers time-slice one core); the
// bench says so and exits 0 on the identity checks alone.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>

#include "bench/common.hpp"
#include "nn/module.hpp"

namespace {

using namespace mvgnn;

double secs_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct RunResult {
  double epoch_s = 0.0;  // best-of wall-clock per epoch
  std::string weights;
  std::vector<core::EpochStat> curve;
};

}  // namespace

int main() {
  const auto ex = bench::build_experiment(/*generated_loops=*/200);
  const auto norm = core::Normalizer::fit(ex.ds, ex.train);
  core::Featurizer feats(ex.ds, norm);
  // Warm the input cache so the timed epochs measure training, not
  // featurization (which is shared and amortized across all runs anyway).
  feats.prefetch(ex.train);

  constexpr std::size_t kEpochs = 2;
  constexpr int kReps = 2;
  const auto run_at = [&](std::size_t threads) {
    RunResult best;
    for (int rep = 0; rep < kReps; ++rep) {
      core::TrainConfig tc;
      tc.epochs = kEpochs;
      tc.batch_size = 16;
      tc.seed = 7;
      tc.threads = threads;
      core::MvGnnTrainer trainer(feats, core::default_config(feats), tc);
      const auto t0 = std::chrono::steady_clock::now();
      // Empty test set: the timed region is the training epochs alone.
      auto curve = trainer.fit(ex.train, {});
      const double epoch_s = secs_since(t0) / static_cast<double>(kEpochs);
      if (rep == 0 || epoch_s < best.epoch_s) best.epoch_s = epoch_s;
      if (rep == 0) {
        best.curve = std::move(curve);
        std::ostringstream os(std::ios::binary);
        nn::save_weights(trainer.model(), os);
        best.weights = std::move(os).str();
      }
    }
    return best;
  };

  std::vector<std::pair<std::size_t, RunResult>> runs;
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    runs.emplace_back(n, run_at(n));
    std::printf("threads=%zu: %.3f s/epoch (%zu train samples, batch 16)\n",
                n, runs.back().second.epoch_s, ex.train.size());
  }

  // Determinism: every thread count must land on the same weights and the
  // same per-epoch curve, bit for bit.
  bool identical = true;
  const RunResult& base = runs.front().second;
  for (std::size_t r = 1; r < runs.size(); ++r) {
    const RunResult& other = runs[r].second;
    bool same = other.weights == base.weights &&
                other.curve.size() == base.curve.size();
    for (std::size_t e = 0; same && e < base.curve.size(); ++e) {
      same = std::memcmp(&base.curve[e], &other.curve[e],
                         sizeof(core::EpochStat)) == 0;
    }
    std::printf("threads=%zu vs threads=1 weights+curve: %s\n",
                runs[r].first, same ? "IDENTICAL" : "DIVERGED");
    identical = identical && same;
  }

  const double speedup = base.epoch_s / runs.back().second.epoch_s;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("\nspeedup at 4 threads: %.2fx (acceptance: >= 2x), "
              "%u hardware threads available\n",
              speedup, cores);
  if (cores < 4) {
    std::printf("note: fewer than 4 hardware threads — the workers "
                "time-slice; the speedup target is not measurable here\n");
  }

  obs::BenchReport report("abl_data_parallel");
  report.config("train_samples", static_cast<double>(ex.train.size()));
  report.config("batch_size", 16);
  report.config("hardware_threads", cores);
  for (const auto& [n, r] : runs) {
    report.metric("epoch_s_t" + std::to_string(n), r.epoch_s,
                  obs::MetricGoal::Lower, "s");
  }
  // Speedup depends on the host's core count, so it never gates; the
  // bit-identity of weights and curves is the property worth gating.
  report.metric("speedup_t4_vs_t1", speedup, obs::MetricGoal::None, "x");
  report.metric("bit_identical", identical ? 1.0 : 0.0,
                obs::MetricGoal::Higher);
  if (report.write("BENCH_data_parallel.json")) {
    std::printf("wrote BENCH_data_parallel.json\n");
  }

  if (!identical) return 1;
  return (speedup >= 2.0 || cores < 4) ? 0 : 1;
}
