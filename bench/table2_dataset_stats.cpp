// Reproduces Table II: the number of for-loops contained in each test
// benchmark application, plus (beyond the paper) the label balance the
// oracle assigns and the Table I feature definitions those loops carry.
#include <cstdio>
#include <map>

#include "bench/common.hpp"

int main() {
  using namespace mvgnn;

  const auto programs = data::build_benchmark_corpus(123);
  data::DatasetOptions opts;
  opts.walk.gamma = 8;  // stats only; keep the build fast
  const data::Dataset ds = data::build_dataset(programs, opts);

  struct Row {
    std::string suite;
    int loops = 0;
    int parallel = 0;
  };
  std::map<std::string, Row> rows;
  std::vector<std::string> order;
  for (const auto& s : ds.samples) {
    auto [it, fresh] = rows.try_emplace(s.app);
    if (fresh) {
      it->second.suite = s.suite;
      order.push_back(s.app);
    }
    it->second.loops++;
    it->second.parallel += s.label;
  }

  std::printf("Table II — statistics of evaluated datasets\n");
  std::printf("%-12s %-10s %8s %14s\n", "Application", "Benchmark", "Loops #",
              "parallel (%)");
  int total = 0, total_par = 0;
  for (const std::string& app : order) {
    const Row& r = rows[app];
    std::printf("%-12s %-10s %8d %13.1f%%\n", app.c_str(), r.suite.c_str(),
                r.loops, 100.0 * r.parallel / r.loops);
    total += r.loops;
    total_par += r.parallel;
  }
  std::printf("%-12s %-10s %8d %13.1f%%\n", "Total", "", total,
              100.0 * total_par / total);

  std::printf(
      "\nTable I — dynamic features carried by every loop sample:\n"
      "  N_Inst        IR instructions within the loop\n"
      "  exec_times    total number of times the loop body executed\n"
      "  CFL           critical path length of one iteration\n"
      "  ESP           estimated speedup (Amdahl, max breadth processors)\n"
      "  incoming_dep  dependences entering the loop\n"
      "  internal_dep  loop-carried dependences between loop instructions\n"
      "  outgoing_dep  dependences leaving the loop\n");
  return 0;
}
