// Substrate ablation: instrumentation overhead of the dependence profiler —
// plain interpretation (NullObserver) vs full shadow-memory dependence
// recording, the classic static-vs-dynamic-analysis cost trade-off the
// paper's section II discusses.
#include <benchmark/benchmark.h>

#include "bench/gbench_report.hpp"
#include "frontend/lower.hpp"
#include "profiler/dep_recorder.hpp"
#include "profiler/profile.hpp"

namespace {

using namespace mvgnn;

const ir::Module& matmul_module() {
  static const ir::Module m = frontend::compile(R"(
const int N = 24;
void kernel(float[] A, float[] B, float[] C) {
  for (int i = 0; i < N; i += 1) {
    for (int j = 0; j < N; j += 1) {
      float acc = 0.0;
      for (int k = 0; k < N; k += 1) {
        acc = acc + A[i * N + k] * B[k * N + j];
      }
      C[i * N + j] = acc;
    }
  }
}
)",
                                                "bench");
  return m;
}

std::vector<profiler::ArgInit> matmul_args() {
  return {profiler::ArgInit::of_array(24 * 24, 1),
          profiler::ArgInit::of_array(24 * 24, 2),
          profiler::ArgInit::of_array(24 * 24, 3)};
}

void BM_InterpPlain(benchmark::State& state) {
  const auto& m = matmul_module();
  const auto args = matmul_args();
  profiler::NullObserver obs;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const auto r = profiler::run(m, "kernel", args, obs);
    steps = r.steps;
    benchmark::DoNotOptimize(r.return_value);
  }
  state.counters["dyn_instrs"] = static_cast<double>(steps);
}
BENCHMARK(BM_InterpPlain);

void BM_InterpWithDepRecorder(benchmark::State& state) {
  const auto& m = matmul_module();
  const auto args = matmul_args();
  for (auto _ : state) {
    profiler::ObjectTable objects;
    profiler::DepRecorder rec(objects);
    const auto r = profiler::run(m, "kernel", args, rec, objects);
    benchmark::DoNotOptimize(r.steps);
  }
}
BENCHMARK(BM_InterpWithDepRecorder);

void BM_FullProfilePipeline(benchmark::State& state) {
  const auto& m = matmul_module();
  const auto args = matmul_args();
  for (auto _ : state) {
    const auto prof = profiler::profile(m, "kernel", args);
    benchmark::DoNotOptimize(prof.loops.size());
  }
}
BENCHMARK(BM_FullProfilePipeline);

}  // namespace

MVGNN_GBENCH_REPORT_MAIN("abl_profiler_overhead", "BENCH_profiler_overhead.json");
