// Ablation: `mvgnn serve` dynamic batching — throughput and tail latency of
// the inference daemon under concurrent load (docs/serving.md).
//
// Self-hosted mode (default) trains a 1-epoch checkpoint, starts an
// in-process serve::Server on an ephemeral loopback port and drives it with
// --conns client threads, each sending --requests back-to-back requests for
// a 12-loop program (one request = 12 batch samples, the shape of a real
// whole-translation-unit analysis request). A --malformed-pct slice of the
// stream is garbage lines, exercising the typed-error path under load. Two
// phases at the same thread count:
//  1. batched: the shipping flush policy — the batcher flushes a full wave
//     (12 x conns samples) into forward chunks of batch_max_samples.
//  2. batch1:  batch_max_samples forced to 1 (one sample per forward) —
//     the unamortized per-sample baseline.
//
// Acceptance: every request answered (no connection resets, malformed lines
// included), and batched QPS >= 2x batch1 QPS in full mode. Results go to a
// schema-v1 BenchReport snapshot that tools/bench_compare gates in CI.
//
//   --smoke            small load, relaxed acceptance (>= 1.1x) for CI
//   --conns <n>        client connections (default 8; smoke 4)
//   --requests <n>     requests per connection (default 150; smoke 25)
//   --malformed-pct <p> percent of garbage lines (default 5)
//   --loops <n>        serving-context corpus size (default 30)
//   --out <p>          snapshot path (default BENCH_serve.json)
//   --connect <h:p>    drive an already-running daemon instead (one batched
//                      phase; no speedup metric, no snapshot gate)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache.hpp"
#include "core/checkpoint.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "obs/bench_report.hpp"
#include "parallel/rng.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "tensor/optim.hpp"

namespace {

using namespace mvgnn;
namespace fs = std::filesystem;

// Twelve small loops (DOALL/reduction/stencil mix): one request is 12 batch
// samples, so the load is forward-heavy the way a real analysis request for
// a whole translation unit is — many loops per submitted program.
const char* kProgram = R"(
const int N = 16;
float kernel(float[] a, float[] b, float[] c) {
  for (int i = 0; i < N; i += 1) { a[i] = a[i] + 1.0; }
  for (int i = 0; i < N; i += 1) { b[i] = b[i] * 2.0 + a[i]; }
  for (int i = 0; i < N; i += 1) { c[i] = a[i] + b[i]; }
  float s0 = 0.0;
  for (int i = 0; i < N; i += 1) { s0 = s0 + a[i] * b[i]; }
  for (int i = 1; i < N; i += 1) { a[i] = a[i - 1] + c[i]; }
  for (int i = 0; i < N; i += 1) { b[i] = b[i] - c[i] * 0.5; }
  float s1 = 0.0;
  for (int i = 0; i < N; i += 1) { s1 = s1 + c[i]; }
  for (int i = 0; i < N; i += 1) { c[i] = c[i] * c[i]; }
  for (int i = 1; i < N; i += 1) { b[i] = b[i] + b[i - 1]; }
  for (int i = 0; i < N; i += 1) { a[i] = a[i] + s0 * 0.25; }
  float s2 = 0.0;
  for (int i = 0; i < N; i += 1) { s2 = s2 + a[i] - b[i]; }
  for (int i = 0; i < N; i += 1) { c[i] = c[i] + s1 + s2; }
  return s0 + s1 + s2;
}
)";
constexpr std::size_t kLoopsPerRequest = 12;

/// Minimal blocking line client; read_line() == "" means EOF/error, which
/// while a response is owed counts as a connection reset.
struct Client {
  int fd = -1;
  std::string buf;

  Client(const std::string& host, int port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    timeval tv{60, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      fd = -1;
    }
  }
  ~Client() {
    if (fd >= 0) ::close(fd);
  }

  bool send_line(const std::string& line) {
    const std::string data = line + "\n";
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::string read_line() {
    for (;;) {
      const std::size_t nl = buf.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        return line;
      }
      char tmp[4096];
      const ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
      if (n <= 0) return "";
      buf.append(tmp, static_cast<std::size_t>(n));
    }
  }
};

struct PhaseResult {
  double wall_s = 0.0;
  std::size_t ok = 0;
  std::size_t typed_errors = 0;  // answered malformed/etc. lines
  std::size_t resets = 0;        // EOF while a response was owed
  std::vector<double> latency_us;

  [[nodiscard]] double qps() const {
    return wall_s > 0 ? static_cast<double>(ok) / wall_s : 0.0;
  }
  [[nodiscard]] double pct(double q) const {
    if (latency_us.empty()) return 0.0;
    std::vector<double> s = latency_us;
    std::sort(s.begin(), s.end());
    const auto idx = std::min(
        s.size() - 1, static_cast<std::size_t>(q * static_cast<double>(
                                                       s.size())));
    return s[idx];
  }
};

/// Drives `conns` connections of `requests` lines each against host:port.
/// Every `malformed_every`-th line is garbage (0 = never) and must still be
/// answered with a typed error.
PhaseResult run_phase(const std::string& host, int port, int conns,
                      int requests, int malformed_every) {
  std::atomic<int> ready{0};
  std::atomic<std::size_t> ok{0}, typed{0}, resets{0};
  std::vector<std::vector<double>> lats(static_cast<std::size_t>(conns));
  std::vector<std::thread> threads;
  const auto wall0 = std::chrono::steady_clock::now();
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      Client cl(host, port);
      if (cl.fd < 0) {
        resets.fetch_add(static_cast<std::size_t>(requests));
        return;
      }
      ready.fetch_add(1);
      while (ready.load() < conns) std::this_thread::yield();
      for (int i = 0; i < requests; ++i) {
        const bool garbage =
            malformed_every > 0 && (i + 1) % malformed_every == 0;
        const std::string line =
            garbage ? std::string("{\"id\": \"g\", \"source\": 12 zz")
                    : "{\"id\": \"c" + std::to_string(c) + "-" +
                          std::to_string(i) + "\", \"source\": \"" +
                          serve::json_escape(kProgram) +
                          "\", \"deadline_ms\": 0}";
        const auto t0 = std::chrono::steady_clock::now();
        if (!cl.send_line(line)) {
          resets.fetch_add(1);
          return;
        }
        const std::string resp = cl.read_line();
        if (resp.empty()) {
          resets.fetch_add(1);
          return;
        }
        if (garbage) {
          typed.fetch_add(1);
          continue;
        }
        if (resp.find("\"ok\": true") == std::string::npos) {
          typed.fetch_add(1);
          continue;
        }
        ok.fetch_add(1);
        lats[static_cast<std::size_t>(c)].push_back(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - t0)
                .count());
      }
    });
  }
  for (auto& t : threads) t.join();
  PhaseResult r;
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           wall0)
                 .count();
  r.ok = ok.load();
  r.typed_errors = typed.load();
  r.resets = resets.load();
  for (auto& l : lats) {
    r.latency_us.insert(r.latency_us.end(), l.begin(), l.end());
  }
  return r;
}

void print_phase(const char* name, const PhaseResult& r) {
  std::printf("%-8s: %6zu ok, %4zu typed errors, %zu resets, %.2fs wall, "
              "%8.1f qps, p50 %7.0fus, p99 %7.0fus\n",
              name, r.ok, r.typed_errors, r.resets, r.wall_s, r.qps(),
              r.pct(0.50), r.pct(0.99));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int conns = 0, requests = 0, loops = 30, malformed_pct = 5;
  std::string out = "BENCH_serve.json";
  std::string connect;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[a], "--conns") == 0 && a + 1 < argc) {
      conns = std::atoi(argv[++a]);
    } else if (std::strcmp(argv[a], "--requests") == 0 && a + 1 < argc) {
      requests = std::atoi(argv[++a]);
    } else if (std::strcmp(argv[a], "--malformed-pct") == 0 && a + 1 < argc) {
      malformed_pct = std::atoi(argv[++a]);
    } else if (std::strcmp(argv[a], "--loops") == 0 && a + 1 < argc) {
      loops = std::atoi(argv[++a]);
    } else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc) {
      out = argv[++a];
    } else if (std::strcmp(argv[a], "--connect") == 0 && a + 1 < argc) {
      connect = argv[++a];
    } else {
      std::fprintf(stderr,
                   "usage: abl_serve [--smoke] [--conns n] [--requests n] "
                   "[--malformed-pct p] [--loops n] [--out path] "
                   "[--connect host:port]\n");
      return 2;
    }
  }
  if (conns <= 0) conns = smoke ? 4 : 8;
  if (requests <= 0) requests = smoke ? 25 : 150;
  const int malformed_every =
      malformed_pct > 0 ? std::max(2, 100 / malformed_pct) : 0;
  const double min_speedup = smoke ? 1.1 : 2.0;

  // ---- external-daemon mode ---------------------------------------------
  if (!connect.empty()) {
    const std::size_t colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "abl_serve: --connect wants host:port\n");
      return 2;
    }
    const std::string host = connect.substr(0, colon);
    const int port = std::atoi(connect.c_str() + colon + 1);
    const PhaseResult r =
        run_phase(host, port, conns, requests, malformed_every);
    print_phase("connect", r);
    const std::size_t expected = static_cast<std::size_t>(conns) *
                                 static_cast<std::size_t>(requests);
    const bool all_answered = r.ok + r.typed_errors == expected;
    std::printf("answered %zu/%zu, resets %zu\n", r.ok + r.typed_errors,
                expected, r.resets);
    return (r.resets == 0 && all_answered) ? 0 : 1;
  }

  // ---- self-hosted: context + 1-epoch checkpoint ------------------------
  // The stage cache plays the role a warm --cache-dir does for a real
  // daemon: repeat featurizations are near-free, so the two phases measure
  // the batcher rather than the (identical) per-request pipeline work.
  const fs::path dir = fs::temp_directory_path() / "mvgnn_bench_abl_serve";
  fs::remove_all(dir);
  fs::create_directories(dir);
  cache::Cache stage_cache(
      cache::Config{(dir / "cache").string(), 256ull << 20});
  std::printf("building serving context (corpus %d) ...\n", loops);
  serve::ServingContext ctx =
      serve::build_serving_context(loops, &stage_cache);
  auto [train_raw, val] = data::split_by_kernel(ctx.ds, 0.85, 5);
  const std::vector<std::size_t> train =
      data::oversample_balance(ctx.ds, train_raw, 5);
  core::Featurizer feats(ctx.ds, ctx.norm);
  core::TrainConfig tc;
  tc.epochs = 1;
  core::MvGnnTrainer trainer(feats, ctx.model_cfg, tc);
  trainer.fit(train, {});
  ag::Adam opt(1e-3f);
  opt.add_params(trainer.model_mutable().parameters());
  core::CheckpointMeta meta;
  meta.epoch = 1;
  meta.rng_state = par::Rng(7).state();
  const std::string ckpt = (dir / "ckpt-1.mvck").string();
  core::save_checkpoint(ckpt, meta, trainer.model(), opt);

  auto serve_phase = [&](std::size_t batch_max, std::uint64_t linger_ms) {
    serve::ServerConfig cfg;
    cfg.checkpoint = ckpt;
    cfg.batch_max_samples = batch_max;
    cfg.batch_linger_ms = linger_ms;
    cfg.max_queue_depth = 256;
    serve::Server server(ctx, cfg);
    server.start();
    const PhaseResult r = run_phase("127.0.0.1", server.port(), conns,
                                    requests, malformed_every);
    server.stop();
    return r;
  };

  // Closed-loop load (one outstanding request per connection) flushes best
  // when a full wave fills the batch: batch_max = kLoopsPerRequest x conns,
  // linger as the straggler backstop.
  const std::size_t wave = kLoopsPerRequest * static_cast<std::size_t>(conns);

  // Warm-up pass: populates the stage cache and the tensor arenas.
  (void)serve_phase(wave, 2);

  const PhaseResult batched = serve_phase(wave, 2);
  print_phase("batched", batched);
  const PhaseResult batch1 = serve_phase(1, 0);  // one request per forward
  print_phase("batch1", batch1);

  const std::size_t expected =
      static_cast<std::size_t>(conns) * static_cast<std::size_t>(requests);
  const bool all_answered =
      batched.ok + batched.typed_errors == expected &&
      batch1.ok + batch1.typed_errors == expected;
  const std::size_t resets = batched.resets + batch1.resets;
  const double speedup =
      batch1.qps() > 0 ? batched.qps() / batch1.qps() : 0.0;
  std::printf("\nbatched speedup vs batch1: %.2fx (acceptance: >= %.1fx), "
              "resets %zu, all answered: %s\n",
              speedup, min_speedup, resets, all_answered ? "yes" : "NO");

  obs::BenchReport report("abl_serve");
  report.config("conns", conns);
  report.config("requests", requests);
  report.config("malformed_pct", malformed_pct);
  report.config("loops", loops);
  report.config("smoke", smoke ? 1 : 0);
  report.metric("qps_batched", batched.qps(), obs::MetricGoal::Higher,
                "req/s");
  report.metric("p50_us_batched", batched.pct(0.50), obs::MetricGoal::Lower,
                "us");
  report.metric("p99_us_batched", batched.pct(0.99), obs::MetricGoal::Lower,
                "us");
  report.metric("qps_batch1", batch1.qps(), obs::MetricGoal::Higher, "req/s");
  report.metric("p50_us_batch1", batch1.pct(0.50), obs::MetricGoal::Lower,
                "us");
  report.metric("p99_us_batch1", batch1.pct(0.99), obs::MetricGoal::Lower,
                "us");
  report.metric("qps_speedup_batched", speedup, obs::MetricGoal::Higher, "x");
  report.metric("all_answered", all_answered ? 1.0 : 0.0,
                obs::MetricGoal::Higher);
  report.metric("resets", static_cast<double>(resets),
                obs::MetricGoal::Lower);
  if (report.write(out)) std::printf("wrote %s\n", out.c_str());

  fs::remove_all(dir);
  return (all_answered && resets == 0 && speedup >= min_speedup) ? 0 : 1;
}
