// Design ablation: input sensitivity of the dynamic analysis. The dataset
// builder drops each model-visible dependence edge with probability p
// (DESIGN.md) — this sweep shows classification accuracy degrading as the
// profiling input exercises less of the program's true dependences.
#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace mvgnn;

  std::printf("Ablation — dependence-profile noise (input sensitivity)\n");
  std::printf("%8s %12s %12s %12s\n", "p(drop)", "MV-GNN", "AdaBoost",
              "DecisionTree");

  obs::BenchReport report("abl_dep_noise");
  report.config("loops", 360);
  auto programs = data::build_generated_corpus(360, 99);
  for (const double noise : {0.0, 0.06, 0.12, 0.25, 0.5}) {
    data::DatasetOptions opts;
    opts.seed = 41;
    opts.dep_noise = noise;
    const data::Dataset ds = data::build_dataset(programs, opts);
    auto [train, test] = data::split_by_kernel(ds, 0.75, 41);
    train = data::balance_classes(ds, train, 41);

    const core::Normalizer norm = core::Normalizer::fit(ds, train);
    core::Featurizer feats(ds, norm);
    core::TrainConfig tc = bench::standard_train_config();
    tc.epochs = 18;
    core::MvGnnTrainer mv(feats, core::default_config(feats), tc);
    mv.fit(train, {});

    std::vector<ml::FeatureRow> xs;
    std::vector<int> ys;
    bench::feature_matrix(ds, train, xs, ys);
    ml::AdaBoost ada;
    ada.fit(xs, ys);
    ml::DecisionTree tree;
    tree.fit(xs, ys);

    double acc_mv = 0, acc_ada = 0, acc_dt = 0;
    for (const std::size_t i : test) {
      const int label = ds.samples[i].label;
      acc_mv += mv.predict(i).fused == label;
      const ml::FeatureRow row(ds.samples[i].loop_features.begin(),
                               ds.samples[i].loop_features.end());
      acc_ada += ada.predict(row) == label;
      acc_dt += tree.predict(row) == label;
    }
    const double n = static_cast<double>(test.size());
    std::printf("%8.2f %11.1f%% %11.1f%% %11.1f%%\n", noise,
                100 * acc_mv / n, 100 * acc_ada / n, 100 * acc_dt / n);
    char tag[16];
    std::snprintf(tag, sizeof tag, "n%02d", static_cast<int>(noise * 100));
    report.metric(std::string("acc_mv_") + tag, acc_mv / n,
                  obs::MetricGoal::Higher);
    report.metric(std::string("acc_ada_") + tag, acc_ada / n,
                  obs::MetricGoal::Higher);
    report.metric(std::string("acc_dt_") + tag, acc_dt / n,
                  obs::MetricGoal::Higher);
  }
  if (report.write("BENCH_dep_noise.json")) {
    std::printf("wrote BENCH_dep_noise.json\n");
  }
  std::printf(
      "\nExpected shape: monotone degradation with noise for every model\n"
      "that consumes the dynamic profile; at moderate noise the multi-view\n"
      "model holds up best because its token/structure views still carry\n"
      "noise-free signal.\n");
  return 0;
}
