// Ablation: stage-boundary cache — cold vs warm build_dataset wall-clock.
//
// Three measurements on the combined benchmark + generated corpus (with the
// six IR-variant pipelines on, so compile/profile dominates):
//  1. off:  cache disabled (the pre-cache path), best of --reps.
//  2. cold: disk tier emptied before every rep, so each rep pays the full
//     pipeline plus the cache writes.
//  3. warm: everything served from the populated disk tier; only the
//     deterministic corpus-global replay (vocabulary growth + sample
//     assembly) remains.
//
// Acceptance: warm >= 5x faster than cold, and the three datasets are
// byte-for-byte identical. Results go to stdout and, through BenchReport,
// to a schema-v1 JSON snapshot that tools/bench_compare gates in CI.
//
//   --smoke      tiny corpus, 1 rep, relaxed acceptance (warm >= 1.5x) —
//                for CI, where the ratio metrics still regress visibly but
//                the absolute times are too small for the full 5x bar
//   --loops <n>  generated-corpus size (default 700; smoke default 60)
//   --reps <n>   repetitions, best-of (default 3; smoke default 1)
//   --out <p>    snapshot path (default BENCH_cache.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>

#include "bench/common.hpp"
#include "cache/cache.hpp"
#include "data/serialize.hpp"

namespace {

using namespace mvgnn;
namespace fs = std::filesystem;

double secs_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string dataset_bytes(const data::Dataset& ds) {
  std::ostringstream os;
  data::save_dataset(ds, os);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int loops = 0, reps = 0;  // 0 = pick the mode default below
  std::string out = "BENCH_cache.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[a], "--loops") == 0 && a + 1 < argc) {
      loops = std::atoi(argv[++a]);
    } else if (std::strcmp(argv[a], "--reps") == 0 && a + 1 < argc) {
      reps = std::atoi(argv[++a]);
    } else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc) {
      out = argv[++a];
    } else {
      std::fprintf(stderr,
                   "usage: abl_cache [--smoke] [--loops n] [--reps n] "
                   "[--out path]\n");
      return 2;
    }
  }
  if (loops <= 0) loops = smoke ? 60 : 700;
  if (reps <= 0) reps = smoke ? 1 : 3;
  const double min_speedup = smoke ? 1.5 : 5.0;

  auto programs = data::build_benchmark_corpus(123);
  auto gen = data::build_generated_corpus(loops, 123 ^ 0x9E97ULL);
  programs.insert(programs.end(), std::make_move_iterator(gen.begin()),
                  std::make_move_iterator(gen.end()));
  data::DatasetOptions opts;
  opts.seed = 123;
  opts.use_ir_variants = true;

  const fs::path dir = fs::temp_directory_path() / "mvgnn_bench_abl_cache";
  fs::remove_all(dir);

  // ---- off: the pre-cache path ------------------------------------------
  auto t0 = std::chrono::steady_clock::now();
  const data::Dataset ds_off = data::build_dataset(programs, opts);
  double off_s = secs_since(t0);
  for (int r = 1; r < reps; ++r) {
    t0 = std::chrono::steady_clock::now();
    (void)data::build_dataset(programs, opts);
    off_s = std::min(off_s, secs_since(t0));
  }
  const std::string off_bytes = dataset_bytes(ds_off);
  std::printf("cache off : %zu samples, best of %d: %.3f s\n",
              ds_off.samples.size(), reps, off_s);

  // ---- cold: empty disk tier every rep ----------------------------------
  cache::Cache c(cache::Config{dir.string(), 512ull << 20});
  opts.cache = &c;
  double cold_s = 0.0;
  std::string cold_bytes;
  for (int r = 0; r < reps; ++r) {
    c.clear();
    t0 = std::chrono::steady_clock::now();
    const data::Dataset ds_cold = data::build_dataset(programs, opts);
    const double t = secs_since(t0);
    cold_s = (r == 0) ? t : std::min(cold_s, t);
    cold_bytes = dataset_bytes(ds_cold);
  }
  std::printf("cache cold: best of %d: %.3f s (writes included)\n", reps,
              cold_s);

  // ---- warm: the populated tier (memory already hot from the last cold
  // rep; a disk-only first rep would only be slower, and best-of keeps the
  // hottest anyway) --------------------------------------------------------
  double warm_s = 0.0;
  std::string warm_bytes;
  for (int r = 0; r < reps; ++r) {
    t0 = std::chrono::steady_clock::now();
    const data::Dataset ds_warm = data::build_dataset(programs, opts);
    const double t = secs_since(t0);
    warm_s = (r == 0) ? t : std::min(warm_s, t);
    warm_bytes = dataset_bytes(ds_warm);
  }
  const cache::Stats st = c.stats();
  std::printf("cache warm: best of %d: %.3f s\n", reps, warm_s);
  std::printf("cache     : %llu hits / %llu misses (%.1f%% hit ratio), "
              "%llu disk entries (%.1f MiB)\n",
              static_cast<unsigned long long>(st.hits),
              static_cast<unsigned long long>(st.misses),
              100.0 * st.hit_ratio(),
              static_cast<unsigned long long>(st.disk_entries),
              static_cast<double>(st.disk_bytes) / (1 << 20));

  const bool identical = off_bytes == cold_bytes && cold_bytes == warm_bytes;
  const double speedup = cold_s / warm_s;
  std::printf("\nbytes identical off/cold/warm: %s\n",
              identical ? "yes" : "NO");
  std::printf("warm speedup vs cold: %.2fx (acceptance: >= %.1fx)\n", speedup,
              min_speedup);

  obs::BenchReport report("abl_cache");
  report.config("loops", loops);
  report.config("reps", reps);
  report.config("smoke", smoke ? 1 : 0);
  report.config("samples", static_cast<double>(ds_off.samples.size()));
  report.metric("off_s", off_s, obs::MetricGoal::Lower, "s");
  report.metric("cold_s", cold_s, obs::MetricGoal::Lower, "s");
  report.metric("warm_s", warm_s, obs::MetricGoal::Lower, "s");
  report.metric("warm_speedup_vs_cold", speedup, obs::MetricGoal::Higher, "x");
  report.metric("hit_ratio", st.hit_ratio(), obs::MetricGoal::Higher);
  report.metric("bytes_identical", identical ? 1.0 : 0.0,
                obs::MetricGoal::Higher);
  report.metric("disk_entries", static_cast<double>(st.disk_entries));
  report.metric("disk_mib", static_cast<double>(st.disk_bytes) / (1 << 20),
                obs::MetricGoal::None, "MiB");
  if (report.write(out)) std::printf("wrote %s\n", out.c_str());

  fs::remove_all(dir);
  return (identical && speedup >= min_speedup) ? 0 : 1;
}
