// Ablation: stage-boundary cache — cold vs warm build_dataset wall-clock.
//
// Three measurements on the combined benchmark + generated corpus (with the
// six IR-variant pipelines on, so compile/profile dominates):
//  1. off:  cache disabled (the pre-cache path), best of kReps.
//  2. cold: disk tier emptied before every rep, so each rep pays the full
//     pipeline plus the cache writes.
//  3. warm: everything served from the populated disk tier; only the
//     deterministic corpus-global replay (vocabulary growth + sample
//     assembly) remains.
//
// Acceptance: warm >= 5x faster than cold, and the three datasets are
// byte-for-byte identical. Results go to stdout and, machine-readable, to
// BENCH_cache.json so the perf trajectory is tracked from this PR onward.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>

#include "bench/common.hpp"
#include "cache/cache.hpp"
#include "data/serialize.hpp"

namespace {

using namespace mvgnn;
namespace fs = std::filesystem;

double secs_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string dataset_bytes(const data::Dataset& ds) {
  std::ostringstream os;
  data::save_dataset(ds, os);
  return os.str();
}

}  // namespace

int main() {
  auto programs = data::build_benchmark_corpus(123);
  auto gen = data::build_generated_corpus(700, 123 ^ 0x9E97ULL);
  programs.insert(programs.end(), std::make_move_iterator(gen.begin()),
                  std::make_move_iterator(gen.end()));
  data::DatasetOptions opts;
  opts.seed = 123;
  opts.use_ir_variants = true;

  const fs::path dir =
      fs::temp_directory_path() / "mvgnn_bench_abl_cache";
  fs::remove_all(dir);
  const int kReps = 3;

  // ---- off: the pre-cache path ------------------------------------------
  auto t0 = std::chrono::steady_clock::now();
  const data::Dataset ds_off = data::build_dataset(programs, opts);
  double off_s = secs_since(t0);
  for (int r = 1; r < kReps; ++r) {
    t0 = std::chrono::steady_clock::now();
    (void)data::build_dataset(programs, opts);
    off_s = std::min(off_s, secs_since(t0));
  }
  const std::string off_bytes = dataset_bytes(ds_off);
  std::printf("cache off : %zu samples, best of %d: %.3f s\n",
              ds_off.samples.size(), kReps, off_s);

  // ---- cold: empty disk tier every rep ----------------------------------
  cache::Cache c(cache::Config{dir.string(), 512ull << 20});
  opts.cache = &c;
  double cold_s = 0.0;
  std::string cold_bytes;
  for (int r = 0; r < kReps; ++r) {
    c.clear();
    t0 = std::chrono::steady_clock::now();
    const data::Dataset ds_cold = data::build_dataset(programs, opts);
    const double t = secs_since(t0);
    cold_s = (r == 0) ? t : std::min(cold_s, t);
    cold_bytes = dataset_bytes(ds_cold);
  }
  std::printf("cache cold: best of %d: %.3f s (writes included)\n", kReps,
              cold_s);

  // ---- warm: the populated tier (memory already hot from the last cold
  // rep; a disk-only first rep would only be slower, and min-of-3 keeps the
  // hottest anyway) --------------------------------------------------------
  double warm_s = 0.0;
  std::string warm_bytes;
  for (int r = 0; r < kReps; ++r) {
    t0 = std::chrono::steady_clock::now();
    const data::Dataset ds_warm = data::build_dataset(programs, opts);
    const double t = secs_since(t0);
    warm_s = (r == 0) ? t : std::min(warm_s, t);
    warm_bytes = dataset_bytes(ds_warm);
  }
  const cache::Stats st = c.stats();
  std::printf("cache warm: best of %d: %.3f s\n", kReps, warm_s);
  std::printf("cache     : %llu hits / %llu misses (%.1f%% hit ratio), "
              "%llu disk entries (%.1f MiB)\n",
              static_cast<unsigned long long>(st.hits),
              static_cast<unsigned long long>(st.misses),
              100.0 * st.hit_ratio(),
              static_cast<unsigned long long>(st.disk_entries),
              static_cast<double>(st.disk_bytes) / (1 << 20));

  const bool identical = off_bytes == cold_bytes && cold_bytes == warm_bytes;
  const double speedup = cold_s / warm_s;
  std::printf("\nbytes identical off/cold/warm: %s\n",
              identical ? "yes" : "NO");
  std::printf("warm speedup vs cold: %.2fx (acceptance: >= 5x)\n", speedup);

  std::FILE* f = std::fopen("BENCH_cache.json", "w");
  if (f) {
    std::fprintf(f, "{\n  \"samples\": %zu,\n", ds_off.samples.size());
    std::fprintf(f, "  \"off_s\": %.4f,\n", off_s);
    std::fprintf(f, "  \"cold_s\": %.4f,\n", cold_s);
    std::fprintf(f, "  \"warm_s\": %.4f,\n", warm_s);
    std::fprintf(f, "  \"warm_speedup_vs_cold\": %.3f,\n", speedup);
    std::fprintf(f, "  \"hit_ratio\": %.4f,\n", st.hit_ratio());
    std::fprintf(f, "  \"disk_entries\": %llu,\n",
                 static_cast<unsigned long long>(st.disk_entries));
    std::fprintf(f, "  \"disk_mib\": %.2f,\n",
                 static_cast<double>(st.disk_bytes) / (1 << 20));
    std::fprintf(f, "  \"bytes_identical\": %s\n}\n",
                 identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_cache.json\n");
  }
  fs::remove_all(dir);
  return (identical && speedup >= 5.0) ? 0 : 1;
}
