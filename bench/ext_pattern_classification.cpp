// Paper future-work extension #1: "modifying our resulting classification
// to specify distinct parallel patterns". Trains the MV-GNN as a 3-way
// classifier (sequential / DOALL / reduction) and prints per-class metrics
// and the confusion matrix.
#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace mvgnn;

  bench::Experiment ex = bench::build_experiment();

  // Pattern-label distribution of the corpus.
  int counts[3] = {0, 0, 0};
  for (const auto& s : ex.ds.samples) counts[s.pattern_label]++;
  std::printf("pattern labels: sequential=%d doall=%d reduction=%d\n\n",
              counts[0], counts[1], counts[2]);

  const core::Normalizer norm = core::Normalizer::fit(ex.ds, ex.train);
  core::Featurizer feats(ex.ds, norm, core::LabelMode::Pattern);
  core::TrainConfig tc = bench::standard_train_config();
  std::printf("training 3-class MV-GNN (%zu epochs)...\n\n", tc.epochs);
  core::MvGnnTrainer trainer(feats, core::default_config(feats), tc);
  trainer.fit(ex.train, {});

  int confusion[3][3] = {};
  for (const std::size_t i : ex.test) {
    const int truth = ex.ds.samples[i].pattern_label;
    const int pred = trainer.predict(i).fused;
    confusion[truth][pred]++;
  }
  const char* names[3] = {"sequential", "doall", "reduction"};
  std::printf("Extension — parallel-pattern classification (test set)\n");
  std::printf("%-12s %12s %12s %12s %8s\n", "truth \\ pred", names[0],
              names[1], names[2], "recall");
  int correct = 0, total = 0;
  for (int t = 0; t < 3; ++t) {
    int row = 0;
    for (int p = 0; p < 3; ++p) row += confusion[t][p];
    std::printf("%-12s %12d %12d %12d %7.1f%%\n", names[t], confusion[t][0],
                confusion[t][1], confusion[t][2],
                row ? 100.0 * confusion[t][t] / row : 0.0);
    correct += confusion[t][t];
    total += row;
  }
  std::printf("\noverall 3-class accuracy: %.1f%%  (n=%d)\n",
              total ? 100.0 * correct / total : 0.0, total);
  std::printf(
      "\nWhy it matters (paper conclusion): knowing the pattern lets a\n"
      "parallelization framework emit `parallel for` vs `reduction(...)`\n"
      "clauses directly instead of re-deriving them.\n");
  return 0;
}
