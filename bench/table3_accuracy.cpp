// Reproduces Table III: parallel-region classification accuracy of MV-GNN
// against the Static GNN, the hand-crafted classifiers (SVM / decision tree
// / AdaBoost), NCC, and the auto-parallelization tools (Pluto, AutoPar,
// DiscoPoP) on NPB, PolyBench, BOTS and the generated dataset.
#include <cstdio>
#include <string>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace mvgnn;
  using bench::pct;

  // --variants additionally pushes every program through the six IR
  // transform pipelines (the paper's six clang option levels) — a ~6x
  // larger dataset and a correspondingly longer run.
  const bool variants = argc > 1 && std::string(argv[1]) == "--variants";
  std::printf("Building corpus and dataset (Table II programs + generated%s)...\n",
              variants ? " + 6 IR variants" : "");
  bench::Experiment ex = bench::build_experiment(700, 123, variants);
  std::printf("samples=%zu train=%zu test=%zu aw_vocab=%u\n\n",
              ex.ds.samples.size(), ex.train.size(), ex.test.size(),
              ex.ds.aw_vocab);

  // ---- learned models ---------------------------------------------------
  const core::Normalizer norm = core::Normalizer::fit(ex.ds, ex.train);
  core::Featurizer feats(ex.ds, norm);
  const core::TrainConfig tc = bench::standard_train_config();

  std::printf("Training MV-GNN (%zu epochs)...\n", tc.epochs);
  core::MvGnnTrainer mvgnn(feats, core::default_config(feats), tc);
  mvgnn.fit(ex.train, {});

  std::printf("Training Static GNN baseline...\n");
  core::StaticGnnTrainer static_gnn(feats, core::default_config(feats).node_view,
                                    tc);
  static_gnn.fit(ex.train, {});

  std::printf("Training hand-crafted classifiers (Fried et al.)...\n");
  std::vector<ml::FeatureRow> xs;
  std::vector<int> ys;
  bench::feature_matrix(ex.ds, ex.train, xs, ys);
  ml::LinearSvm svm;
  ml::LinearSvm::Params svm_params;
  svm_params.epochs = 120;
  svm.fit(xs, ys, svm_params);
  ml::DecisionTree tree;
  tree.fit(xs, ys);
  ml::AdaBoost ada;
  ada.fit(xs, ys);

  std::printf("Training NCC (inst2vec + 2xLSTM)...\n\n");
  ml::NccTrainer ncc(ex.ds, ml::NccConfig{}, ml::NccTrainConfig{});
  ncc.fit(ex.train);

  // ---- Table III ----------------------------------------------------
  std::printf("Table III — evaluation accuracy (%%)\n");
  std::printf("%-12s %-12s %8s\n", "Benchmark", "Model/Tool", "Acc(%)");
  for (const char* suite : {"NPB", "PolyBench", "BOTS", "Generated"}) {
    const auto idx = bench::suite_test(ex, suite);
    if (idx.empty()) continue;
    const double n = static_cast<double>(idx.size());
    double mv = 0, sg = 0, sv = 0, dt = 0, ab = 0, nc = 0;
    double ap = 0, pl = 0, dp = 0;
    for (const std::size_t i : idx) {
      const auto& s = ex.ds.samples[i];
      const ml::FeatureRow row(s.loop_features.begin(),
                               s.loop_features.end());
      mv += mvgnn.predict(i).fused == s.label;
      sg += static_gnn.predict(i) == s.label;
      sv += svm.predict(row) == s.label;
      dt += tree.predict(row) == s.label;
      ab += ada.predict(row) == s.label;
      nc += ncc.predict(i) == s.label;
      ap += s.tool_autopar == (s.label == 1);
      pl += s.tool_pluto == (s.label == 1);
      dp += s.tool_discopop == (s.label == 1);
    }
    std::printf("%-12s %-12s %7.1f   (n=%zu)\n", suite, "MV-GNN",
                pct(mv / n), idx.size());
    std::printf("%-12s %-12s %7.1f\n", "", "Static GNN", pct(sg / n));
    std::printf("%-12s %-12s %7.1f\n", "", "SVM", pct(sv / n));
    std::printf("%-12s %-12s %7.1f\n", "", "Decision Tree", pct(dt / n));
    std::printf("%-12s %-12s %7.1f\n", "", "AdaBoost", pct(ab / n));
    std::printf("%-12s %-12s %7.1f\n", "", "NCC", pct(nc / n));
    std::printf("%-12s %-12s %7.1f\n", "", "Pluto", pct(pl / n));
    std::printf("%-12s %-12s %7.1f\n", "", "AutoPar", pct(ap / n));
    std::printf("%-12s %-12s %7.1f\n", "", "DiscoPoP", pct(dp / n));
    std::printf("\n");
  }

  std::printf(
      "Paper reference (Table III): NPB MV-GNN 92.6 / StaticGNN 89.3 / SVM 85\n"
      "/ DT 85 / AdaBoost 92 / NCC 87.3 / Pluto 60.5 / AutoPar 74.8 /\n"
      "DiscoPoP 91.2; PolyBench MV-GNN 89.4, DiscoPoP 87.4, Pluto 82.5;\n"
      "BOTS MV-GNN 82.9; Generated MV-GNN 88.7, NCC 62.9.\n");
  return 0;
}
