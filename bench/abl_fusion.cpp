// Design ablation: what does each view contribute? Compares the fused
// MV-GNN prediction against its two single-view heads and against the
// independently trained Static GNN (inst2vec features only, no dynamic
// information) and the hand-crafted AdaBoost (dynamic features only, no
// structure) — isolating each information source of the model.
#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace mvgnn;

  auto programs = data::build_generated_corpus(480, 77);
  data::DatasetOptions opts;
  opts.seed = 23;
  const data::Dataset ds = data::build_dataset(programs, opts);
  auto [train, test] = data::split_by_kernel(ds, 0.75, 23);
  train = data::balance_classes(ds, train, 23);
  std::printf("generated dataset: %zu samples, train=%zu test=%zu\n\n",
              ds.samples.size(), train.size(), test.size());

  const core::Normalizer norm = core::Normalizer::fit(ds, train);
  core::Featurizer feats(ds, norm);
  core::TrainConfig tc = bench::standard_train_config();
  tc.epochs = 24;

  core::MvGnnTrainer mv(feats, core::default_config(feats), tc);
  mv.fit(train, {});
  core::StaticGnnTrainer static_gnn(feats, core::default_config(feats).node_view,
                                    tc);
  static_gnn.fit(train, {});

  std::vector<ml::FeatureRow> xs;
  std::vector<int> ys;
  bench::feature_matrix(ds, train, xs, ys);
  ml::AdaBoost ada;
  ada.fit(xs, ys);

  double fused = 0, node_view = 0, struct_view = 0, sgnn = 0, ab = 0;
  for (const std::size_t i : test) {
    const int label = ds.samples[i].label;
    const auto p = mv.predict(i);
    fused += p.fused == label;
    node_view += p.node_view == label;
    struct_view += p.struct_view == label;
    sgnn += static_gnn.predict(i) == label;
    const ml::FeatureRow row(ds.samples[i].loop_features.begin(),
                             ds.samples[i].loop_features.end());
    ab += ada.predict(row) == label;
  }
  const double n = static_cast<double>(test.size());
  std::printf("Ablation — fusion and information sources (test acc)\n");
  std::printf("  %-34s %6.1f%%\n", "MV-GNN (fused, eq. 5)", 100 * fused / n);
  std::printf("  %-34s %6.1f%%\n", "node-feature view head only",
              100 * node_view / n);
  std::printf("  %-34s %6.1f%%\n", "structural view head only",
              100 * struct_view / n);
  std::printf("  %-34s %6.1f%%\n", "Static GNN (no dynamic features)",
              100 * sgnn / n);
  std::printf("  %-34s %6.1f%%\n", "AdaBoost (dynamic features only)",
              100 * ab / n);
  std::printf(
      "\nExpected shape: fused >= max(single views); node view > structural\n"
      "view (paper Fig. 8); each single-source baseline below the fusion.\n");

  obs::BenchReport report("abl_fusion");
  report.config("test_samples", n);
  report.metric("acc_fused", fused / n, obs::MetricGoal::Higher);
  report.metric("acc_node_view", node_view / n, obs::MetricGoal::Higher);
  report.metric("acc_struct_view", struct_view / n, obs::MetricGoal::Higher);
  report.metric("acc_static_gnn", sgnn / n, obs::MetricGoal::Higher);
  report.metric("acc_adaboost", ab / n, obs::MetricGoal::Higher);
  if (report.write("BENCH_fusion.json")) {
    std::printf("wrote BENCH_fusion.json\n");
  }
  return 0;
}
