// Reproduces Table IV: the NPB case study — per-application loop counts and
// how many of them the trained MV-GNN identifies as parallelizable, plus
// the misclassification breakdown the paper discusses (false positives /
// false negatives).
#include <cstdio>
#include <map>

#include "bench/common.hpp"

int main() {
  using namespace mvgnn;

  bench::Experiment ex = bench::build_experiment();
  const core::Normalizer norm = core::Normalizer::fit(ex.ds, ex.train);
  core::Featurizer feats(ex.ds, norm);
  std::printf("Training MV-GNN for the NPB case study...\n\n");
  core::MvGnnTrainer mvgnn(feats, core::default_config(feats),
                           bench::standard_train_config());
  mvgnn.fit(ex.train, {});

  // The case study runs over ALL NPB loops (the paper reports 787 loops vs
  // Table II's 787 NPB total), using the trained model.
  struct Row {
    int loops = 0;
    int identified = 0;  // predicted parallelizable
    int truly = 0;       // oracle parallelizable
    int fp = 0, fn = 0;
  };
  std::map<std::string, Row> rows;
  const std::vector<std::string> apps = {"BT", "SP", "LU", "IS",
                                         "EP", "CG", "MG", "FT"};
  for (std::size_t i = 0; i < ex.ds.samples.size(); ++i) {
    const auto& s = ex.ds.samples[i];
    if (s.suite != "NPB") continue;
    Row& r = rows[s.app];
    r.loops++;
    const int pred = mvgnn.predict(i).fused;
    r.identified += pred;
    r.truly += s.label;
    r.fp += (pred == 1 && s.label == 0);
    r.fn += (pred == 0 && s.label == 1);
  }

  std::printf("Table IV — statistics of the NPB dataset test\n");
  std::printf("%-10s %9s %26s %8s %5s %5s\n", "Benchmark", "Loops(#)",
              "Identified Parallelizable(#)", "Oracle", "FP", "FN");
  Row total;
  for (const std::string& app : apps) {
    const Row& r = rows[app];
    std::printf("%-10s %9d %26d %8d %5d %5d\n", app.c_str(), r.loops,
                r.identified, r.truly, r.fp, r.fn);
    total.loops += r.loops;
    total.identified += r.identified;
    total.truly += r.truly;
    total.fp += r.fp;
    total.fn += r.fn;
  }
  std::printf("%-10s %9d %26d %8d %5d %5d\n", "Total", total.loops,
              total.identified, total.truly, total.fp, total.fn);
  std::printf(
      "\nPaper reference: BT 184/176, SP 252/232, LU 173/163, IS 25/20,\n"
      "EP 10/9, CG 32/28, MG 74/68, FT 37/35, Total 787/731. The paper\n"
      "attributes FPs to missing expert annotations and FNs to function\n"
      "calls inside loops.\n");
  return 0;
}
