// Substrate ablation: blocked/parallel GEMM kernel throughput (the matmul
// behind every GCN layer). google-benchmark microbench across sizes and
// transpose modes, plus the fused bias+tanh epilogue and the CSR spmm that
// the dispatching backend layer (docs/kernels.md) also serves. Every dense
// case exports a `gflops` counter (2*m*k*n flops per product), which the CI
// bench gate diffs against the committed BENCH_gemm.json snapshot.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/gbench_report.hpp"
#include "parallel/rng.hpp"
#include "tensor/gemm.hpp"

namespace {

using namespace mvgnn;

void fill(std::vector<float>& v, std::uint64_t seed) {
  par::Rng rng(seed);
  for (float& x : v) x = static_cast<float>(rng.normal());
}

void set_gemm_rates(benchmark::State& state, std::size_t m, std::size_t k,
                    std::size_t n) {
  const auto flops =
      static_cast<std::int64_t>(state.iterations()) * 2 * m * k * n;
  state.SetItemsProcessed(flops);
  state.counters["gflops"] = benchmark::Counter(
      static_cast<double>(flops) * 1e-9, benchmark::Counter::kIsRate);
}

void BM_GemmSquare(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> a(n * n), b(n * n), c(n * n);
  fill(a, 1);
  fill(b, 2);
  for (auto _ : state) {
    tensor::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  set_gemm_rates(state, n, n, n);
}
BENCHMARK(BM_GemmSquare)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTransposedB(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> a(n * n), b(n * n), c(n * n);
  fill(a, 3);
  fill(b, 4);
  for (auto _ : state) {
    tensor::gemm(a.data(), b.data(), c.data(), n, n, n, false, true);
    benchmark::DoNotOptimize(c.data());
  }
  set_gemm_rates(state, n, n, n);
}
BENCHMARK(BM_GemmTransposedB)->Arg(64)->Arg(128);

/// The GNN-typical shape: tall-skinny (n nodes x small feature dims).
void BM_GemmGnnShape(benchmark::State& state) {
  const std::size_t nodes = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 32;
  std::vector<float> a(nodes * nodes), x(nodes * dim), y(nodes * dim);
  fill(a, 5);
  fill(x, 6);
  for (auto _ : state) {
    tensor::gemm(a.data(), x.data(), y.data(), nodes, nodes, dim);
    benchmark::DoNotOptimize(y.data());
  }
  set_gemm_rates(state, nodes, nodes, dim);
}
BENCHMARK(BM_GemmGnnShape)->Arg(8)->Arg(32)->Arg(128);

/// Linear/Conv1 layer shape with the bias+tanh tail fused into the GEMM —
/// what ag::matmul_bias_tanh issues per layer. Compares directly against
/// BM_GemmSquare at the same size: the delta is the epilogue cost that used
/// to be two extra full passes over the output.
void BM_GemmFusedBiasTanh(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> a(n * n), b(n * n), c(n * n), bias(n);
  fill(a, 7);
  fill(b, 8);
  fill(bias, 9);
  tensor::Epilogue ep;
  ep.bias_col = bias.data();
  ep.tanh = true;
  for (auto _ : state) {
    tensor::gemm(a.data(), b.data(), c.data(), n, n, n, false, false, false,
                 ep);
    benchmark::DoNotOptimize(c.data());
  }
  set_gemm_rates(state, n, n, n);
}
BENCHMARK(BM_GemmFusedBiasTanh)->Arg(64)->Arg(128);

/// CSR spmm at PEG-batch scale: block-diagonal-ish adjacency (~6 nnz/row)
/// against a node-feature panel, the message-passing product of every GCN
/// layer. gflops counts 2*nnz*cols useful flops.
void BM_SpmmCsr(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  const std::size_t cols = 32, deg = 6;
  std::vector<std::uint32_t> row_ptr(rows + 1), col_idx;
  std::vector<float> vals;
  par::Rng rng(10);
  for (std::size_t r = 0; r < rows; ++r) {
    row_ptr[r] = static_cast<std::uint32_t>(col_idx.size());
    for (std::size_t e = 0; e < deg; ++e) {
      col_idx.push_back(static_cast<std::uint32_t>(rng.uniform_u64(rows)));
      vals.push_back(static_cast<float>(rng.normal()));
    }
  }
  row_ptr[rows] = static_cast<std::uint32_t>(col_idx.size());
  std::vector<float> x(rows * cols), out(rows * cols);
  fill(x, 11);
  for (auto _ : state) {
    tensor::spmm_csr(row_ptr.data(), col_idx.data(), vals.data(), rows,
                     x.data(), out.data(), cols);
    benchmark::DoNotOptimize(out.data());
  }
  const auto flops = static_cast<std::int64_t>(state.iterations()) * 2 *
                     static_cast<std::int64_t>(vals.size()) *
                     static_cast<std::int64_t>(cols);
  state.SetItemsProcessed(flops);
  state.counters["gflops"] = benchmark::Counter(
      static_cast<double>(flops) * 1e-9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SpmmCsr)->Arg(256)->Arg(2048);

}  // namespace

MVGNN_GBENCH_REPORT_MAIN("abl_gemm", "BENCH_gemm.json");
