// Substrate ablation: blocked/parallel GEMM kernel throughput (the matmul
// behind every GCN layer). google-benchmark microbench across sizes and
// transpose modes.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/gbench_report.hpp"
#include "parallel/rng.hpp"
#include "tensor/gemm.hpp"

namespace {

using namespace mvgnn;

void fill(std::vector<float>& v, std::uint64_t seed) {
  par::Rng rng(seed);
  for (float& x : v) x = static_cast<float>(rng.normal());
}

void BM_GemmSquare(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> a(n * n), b(n * n), c(n * n);
  fill(a, 1);
  fill(b, 2);
  for (auto _ : state) {
    tensor::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          n * n * n);
}
BENCHMARK(BM_GemmSquare)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTransposedB(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> a(n * n), b(n * n), c(n * n);
  fill(a, 3);
  fill(b, 4);
  for (auto _ : state) {
    tensor::gemm(a.data(), b.data(), c.data(), n, n, n, false, true);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          n * n * n);
}
BENCHMARK(BM_GemmTransposedB)->Arg(64)->Arg(128);

/// The GNN-typical shape: tall-skinny (n nodes x small feature dims).
void BM_GemmGnnShape(benchmark::State& state) {
  const std::size_t nodes = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 32;
  std::vector<float> a(nodes * nodes), x(nodes * dim), y(nodes * dim);
  fill(a, 5);
  fill(x, 6);
  for (auto _ : state) {
    tensor::gemm(a.data(), x.data(), y.data(), nodes, nodes, dim);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_GemmGnnShape)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

MVGNN_GBENCH_REPORT_MAIN("abl_gemm", "BENCH_gemm.json");
