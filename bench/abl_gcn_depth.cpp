// Design ablation: GCN stack depth. The paper stacks graph convolutions
// (Fig. 6) without reporting a depth sweep; on small sub-PEGs too few
// layers under-propagate and too many oversmooth.
#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace mvgnn;

  auto programs = data::build_generated_corpus(360, 71);
  data::DatasetOptions opts;
  opts.seed = 47;
  const data::Dataset ds = data::build_dataset(programs, opts);
  auto [train, test] = data::split_by_kernel(ds, 0.75, 47);
  train = data::balance_classes(ds, train, 47);

  std::printf("Ablation — GCN stack depth (channels before the sort layer)\n");
  std::printf("%-22s %12s %12s\n", "gcn_channels", "test acc", "params");
  obs::BenchReport report("abl_gcn_depth");
  report.config("loops", 360);
  const std::vector<std::vector<std::size_t>> stacks = {
      {1}, {32, 1}, {32, 32, 1}, {32, 32, 32, 1}, {32, 32, 32, 32, 1}};
  for (const auto& stack : stacks) {
    const core::Normalizer norm = core::Normalizer::fit(ds, train);
    core::Featurizer feats(ds, norm);
    core::MvGnnConfig cfg = core::default_config(feats);
    cfg.node_view.gcn_channels = stack;
    cfg.struct_view.gcn_channels = stack;
    core::TrainConfig tc = bench::standard_train_config();
    tc.epochs = 18;
    core::MvGnnTrainer trainer(feats, cfg, tc);
    trainer.fit(train, {});
    std::string name = "{";
    for (std::size_t i = 0; i < stack.size(); ++i) {
      name += (i ? "," : "") + std::to_string(stack[i]);
    }
    name += "}";
    const double acc = trainer.accuracy(test);
    std::printf("%-22s %11.1f%% %12zu\n", name.c_str(), 100.0 * acc,
                trainer.model().num_parameters());
    report.metric("acc_depth" + std::to_string(stack.size()), acc,
                  obs::MetricGoal::Higher);
    report.metric("params_depth" + std::to_string(stack.size()),
                  static_cast<double>(trainer.model().num_parameters()));
  }
  if (report.write("BENCH_gcn_depth.json")) {
    std::printf("wrote BENCH_gcn_depth.json\n");
  }
  std::printf(
      "\nExpected shape: a single 1-channel layer is too weak; accuracy\n"
      "peaks at 2-3 layers and flattens or dips as depth oversmooths the\n"
      "small graphs.\n");
  return 0;
}
