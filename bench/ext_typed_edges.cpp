// Modeling extension: typed PEG edges. The paper's PEG carries RAW/WAR/WAW
// dependence types and hierarchy edges, but a plain GCN merges them into one
// adjacency. This bench compares the standard MV-GNN against a relational
// (R-GCN-style) node view with one weight bank per edge relation.
#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace mvgnn;

  bench::Experiment ex = bench::build_experiment(500);
  const core::Normalizer norm = core::Normalizer::fit(ex.ds, ex.train);
  core::TrainConfig tc = bench::standard_train_config();
  tc.epochs = 24;

  std::printf("training untyped (merged-adjacency) MV-GNN...\n");
  core::Featurizer plain(ex.ds, norm);
  core::MvGnnTrainer untyped(plain, core::default_config(plain), tc);
  untyped.fit(ex.train, {});

  std::printf("training typed-edge (relational) MV-GNN...\n\n");
  core::Featurizer typed_feats(ex.ds, norm, core::LabelMode::Binary,
                               /*zero_dynamic=*/false, /*typed_edges=*/true);
  core::MvGnnConfig cfg = core::default_config(typed_feats);
  cfg.typed_edges = true;
  core::MvGnnTrainer typed(typed_feats, cfg, tc);
  typed.fit(ex.train, {});

  std::printf("Extension — typed PEG edges (test accuracy)\n");
  for (const char* suite : {"NPB", "PolyBench", "BOTS", "Generated"}) {
    const auto idx = bench::suite_test(ex, suite);
    if (idx.empty()) continue;
    double a = 0, b = 0;
    for (const std::size_t i : idx) {
      const int label = ex.ds.samples[i].label;
      a += untyped.predict(i).fused == label;
      b += typed.predict(i).fused == label;
    }
    const double n = static_cast<double>(idx.size());
    std::printf("  %-12s untyped %5.1f%%   typed %5.1f%%   (n=%zu)\n", suite,
                100 * a / n, 100 * b / n, idx.size());
  }
  // The sharper comparison: withhold the dynamic features (decoupled
  // inference mode), so the edge *types* are the only dependence-kind
  // signal available to either model.
  std::printf("\nretraining both without dynamic features...\n\n");
  core::Featurizer plain_nd(ex.ds, norm, core::LabelMode::Binary,
                            /*zero_dynamic=*/true);
  core::MvGnnTrainer untyped_nd(plain_nd, core::default_config(plain_nd), tc);
  untyped_nd.fit(ex.train, {});
  core::Featurizer typed_nd(ex.ds, norm, core::LabelMode::Binary,
                            /*zero_dynamic=*/true, /*typed_edges=*/true);
  core::MvGnnConfig cfg_nd = core::default_config(typed_nd);
  cfg_nd.typed_edges = true;
  core::MvGnnTrainer typed_nd_tr(typed_nd, cfg_nd, tc);
  typed_nd_tr.fit(ex.train, {});

  double a = 0, b = 0;
  for (const std::size_t i : ex.test) {
    const int label = ex.ds.samples[i].label;
    a += untyped_nd.predict(i).fused == label;
    b += typed_nd_tr.predict(i).fused == label;
  }
  const double n = static_cast<double>(ex.test.size());
  std::printf("Without dynamic features: untyped %5.1f%%   typed %5.1f%%\n",
              100 * a / n, 100 * b / n);
  std::printf(
      "\nExpected shape: with full features both tie near the ceiling (the\n"
      "Table I counts already encode dependence kinds); with the dynamic\n"
      "features withheld, the typed model keeps the RAW/WAR/WAW signal the\n"
      "merged adjacency throws away.\n");
  return 0;
}
