// Ablation: sparse CSR + block-diagonal batching vs the seed's dense
// per-sample path.
//
// Two measurements on the generated corpus:
//  1. Layer micro-benchmark: ag::spmm over a block-diagonal CSR adjacency
//     vs ag::matmul over its dense materialization (same [N,N] x [N,d]).
//  2. Training epoch wall-clock: a faithful replica of the seed's dense
//     per-sample DGCNN forward/backward (dense adjacency matmul, one
//     sample at a time, gradient accumulation) vs the batched CSR
//     Dgcnn::forward at B in {1, 8, 32}.
//
// Results go to stdout and, machine-readable, to BENCH_sparse_batch.json
// so the perf trajectory is tracked from this PR onward.
#include <chrono>
#include <cstdio>

#include "bench/common.hpp"
#include "core/dgcnn.hpp"

namespace {

using namespace mvgnn;
using ag::Tensor;

double secs_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The seed's Dgcnn forward, reconstructed with dense adjacency matmuls and
/// the same layer shapes as core::DgcnnConfig defaults. Weight values don't
/// matter for timing; op structure does.
struct DenseSeedDgcnn {
  core::DgcnnConfig cfg;
  std::vector<Tensor> gcn_ws;
  Tensor conv1_w, conv1_b, conv2_w, conv2_b;
  std::unique_ptr<nn::Linear> dense, head;
  std::size_t concat_dim = 0, rep_dim = 0;

  DenseSeedDgcnn(const core::DgcnnConfig& c, par::Rng& rng) : cfg(c) {
    std::size_t in = cfg.in_dim;
    for (const std::size_t ch : cfg.gcn_channels) {
      gcn_ws.push_back(Tensor::randn({in, ch}, rng, 0.1f));
      concat_dim += ch;
      in = ch;
    }
    conv1_w = Tensor::randn({cfg.conv1_channels, concat_dim}, rng, 0.1f);
    conv1_b = Tensor::zeros({1, cfg.conv1_channels}, true);
    conv2_w = Tensor::randn(
        {cfg.conv2_channels, cfg.conv1_channels * cfg.conv2_kernel}, rng,
        0.1f);
    conv2_b = Tensor::zeros({1, cfg.conv2_channels}, true);
    rep_dim =
        cfg.conv2_channels * (cfg.sort_k / 2 - cfg.conv2_kernel + 1);
    dense = std::make_unique<nn::Linear>(rep_dim, cfg.dense_hidden, rng);
    head = std::make_unique<nn::Linear>(cfg.dense_hidden, cfg.num_classes,
                                        rng);
  }

  [[nodiscard]] std::vector<Tensor> parameters() const {
    std::vector<Tensor> ps = gcn_ws;
    ps.insert(ps.end(), {conv1_w, conv1_b, conv2_w, conv2_b});
    for (const auto& p : dense->parameters()) ps.push_back(p);
    for (const auto& p : head->parameters()) ps.push_back(p);
    return ps;
  }

  [[nodiscard]] Tensor forward(const Tensor& ahat, const Tensor& feats,
                               par::Rng& rng) const {
    Tensor x = feats;
    Tensor z;
    for (std::size_t i = 0; i < gcn_ws.size(); ++i) {
      x = ag::tanh_t(ag::matmul(ahat, ag::matmul(x, gcn_ws[i])));
      z = (i == 0) ? x : ag::concat_cols(z, x);
    }
    Tensor sp = ag::sort_pool(z, cfg.sort_k);
    Tensor flat = ag::reshape(sp, {1, cfg.sort_k * concat_dim});
    Tensor c1 = ag::relu(
        ag::conv1d(flat, conv1_w, conv1_b, concat_dim, concat_dim));
    Tensor p1 = ag::maxpool1d(c1, 2);
    Tensor c2 =
        ag::relu(ag::conv1d(p1, conv2_w, conv2_b, cfg.conv2_kernel, 1));
    Tensor pooled = ag::reshape(c2, {1, rep_dim});
    Tensor h = ag::relu(dense->forward(pooled));
    h = ag::dropout(h, cfg.dropout, /*training=*/true, rng);
    return head->forward(h);
  }
};

}  // namespace

int main() {
  auto programs = data::build_generated_corpus(360, 61);
  data::DatasetOptions opts;
  opts.seed = 37;
  const data::Dataset ds = data::build_dataset(programs, opts);
  std::vector<std::size_t> idx(ds.samples.size());
  std::iota(idx.begin(), idx.end(), 0);
  const core::Normalizer norm = core::Normalizer::fit(ds, idx);
  core::Featurizer feats(ds, norm);
  feats.prefetch(idx);

  core::DgcnnConfig cfg;
  cfg.in_dim = feats.node_dim();
  par::Rng rng(11);

  // Dense adjacencies + static-feature handles, materialized up front so
  // neither timed loop pays featurization.
  std::vector<Tensor> dense_ahats;
  dense_ahats.reserve(idx.size());
  for (const std::size_t i : idx) {
    dense_ahats.push_back(feats.get(i).ahat.to_dense());
  }

  // ---- 1. spmm vs dense matmul on one block-diagonal 32-graph batch -----
  std::vector<const ag::CsrMatrix*> blocks;
  std::vector<const core::SampleInput*> chunk32;
  for (std::size_t i = 0; i < 32 && i < idx.size(); ++i) {
    blocks.push_back(&feats.get(i).ahat);
    chunk32.push_back(&feats.get(i));
  }
  const auto big = ag::CsrMatrix::block_diag(blocks);
  const Tensor big_dense = big.to_dense();
  par::Rng xr(12);
  const Tensor x = Tensor::randn({big.rows(), 32}, xr, 1.0f, false);
  const int reps = 200;
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) (void)ag::matmul(big_dense, x);
  const double dense_micro = secs_since(t0) / reps * 1e3;
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) (void)ag::spmm(big, x);
  const double csr_micro = secs_since(t0) / reps * 1e3;
  std::printf(
      "spmm micro (N=%zu, nnz=%zu, d=32): dense %.3f ms, csr %.3f ms "
      "(%.1fx)\n",
      big.rows(), big.nnz(), dense_micro, csr_micro,
      dense_micro / csr_micro);

  // ---- 2. epoch wall-clock: seed dense per-sample vs batched CSR --------
  // Each epoch is run kReps times (after one warm-up) and the minimum is
  // kept: on a shared single-core box the best-of run is the least noisy
  // estimate of what the code actually costs.
  const std::size_t n_timed = std::min<std::size_t>(idx.size(), 256);
  const int kReps = 3;
  par::Rng seed_rng(13);
  DenseSeedDgcnn seed_model(cfg, seed_rng);
  ag::Adam seed_opt(1e-3f);
  seed_opt.add_params(seed_model.parameters());
  const auto dense_epoch_once = [&]() {
    const auto e0 = std::chrono::steady_clock::now();
    std::size_t in_batch = 0;
    seed_opt.zero_grad();
    for (std::size_t i = 0; i < n_timed; ++i) {
      Tensor logits =
          seed_model.forward(dense_ahats[i], feats.get(i).node_feats, seed_rng);
      Tensor loss = ag::scale(
          ag::cross_entropy_logits(logits, {feats.get(i).label}), 1.0f / 32.0f);
      loss.backward();
      if (++in_batch == 32) {
        seed_opt.step();
        seed_opt.zero_grad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) seed_opt.step();
    return secs_since(e0);
  };
  (void)dense_epoch_once();  // warm-up
  double dense_epoch = dense_epoch_once();
  for (int r = 1; r < kReps; ++r) {
    dense_epoch = std::min(dense_epoch, dense_epoch_once());
  }
  std::printf(
      "seed dense per-sample epoch (%zu samples, step/32, best of %d): "
      "%.3f s\n",
      n_timed, kReps, dense_epoch);

  par::Rng mrng(14);
  core::Dgcnn model(cfg, mrng);
  ag::Adam opt(1e-3f);
  opt.add_params(model.parameters());
  const auto batched_epoch_once = [&](std::size_t b) {
    const auto e0 = std::chrono::steady_clock::now();
    for (std::size_t start = 0; start < n_timed; start += b) {
      const std::size_t end = std::min(n_timed, start + b);
      std::vector<const core::SampleInput*> chunk;
      std::vector<int> labels;
      for (std::size_t i = start; i < end; ++i) {
        chunk.push_back(&feats.get(i));
        labels.push_back(feats.get(i).label);
      }
      const core::GraphBatch gb = core::make_graph_batch(chunk);
      const auto out = model.forward(gb.ahat, {}, gb.node_feats, gb.offsets,
                                     /*training=*/true, mrng);
      Tensor loss = ag::cross_entropy_logits(out.logits, labels);
      opt.zero_grad();
      loss.backward();
      opt.step();
    }
    return secs_since(e0);
  };
  double csr_epoch_b32 = 0.0;
  std::vector<std::pair<std::size_t, double>> batched;
  for (const std::size_t b : {std::size_t{1}, std::size_t{8}, std::size_t{32}}) {
    (void)batched_epoch_once(b);  // warm-up
    double t = batched_epoch_once(b);
    for (int r = 1; r < kReps; ++r) t = std::min(t, batched_epoch_once(b));
    batched.emplace_back(b, t);
    if (b == 32) csr_epoch_b32 = t;
    std::printf("batched CSR epoch, B=%2zu: %.3f s (%.2fx vs seed dense)\n",
                b, t, dense_epoch / t);
  }

  const double speedup = dense_epoch / csr_epoch_b32;
  std::printf("\nspeedup at B=32: %.2fx (acceptance: >= 2x)\n", speedup);

  obs::BenchReport report("abl_sparse_batch");
  report.config("spmm_n", static_cast<double>(big.rows()));
  report.config("spmm_nnz", static_cast<double>(big.nnz()));
  report.config("epoch_samples", static_cast<double>(n_timed));
  report.metric("spmm_dense_ms", dense_micro, obs::MetricGoal::None, "ms");
  report.metric("spmm_csr_ms", csr_micro, obs::MetricGoal::Lower, "ms");
  report.metric("spmm_speedup", dense_micro / csr_micro,
                obs::MetricGoal::Higher, "x");
  report.metric("dense_persample_s", dense_epoch, obs::MetricGoal::None, "s");
  for (const auto& [b, t] : batched) {
    report.metric("csr_b" + std::to_string(b) + "_s", t,
                  obs::MetricGoal::Lower, "s");
  }
  report.metric("speedup_b32_vs_dense", speedup, obs::MetricGoal::Higher, "x");
  if (report.write("BENCH_sparse_batch.json")) {
    std::printf("wrote BENCH_sparse_batch.json\n");
  }
  return speedup >= 2.0 ? 0 : 1;
}
