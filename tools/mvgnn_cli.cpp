// mvgnn — command-line front door to the whole pipeline.
//
//   mvgnn ir <file.minic>         print the lowered IR
//   mvgnn cus <file.minic>        computational-unit decomposition
//   mvgnn profile <file.minic>    dependence profile + Table I features
//   mvgnn peg <file.minic>        program execution graph as Graphviz DOT
//   mvgnn suggest <file.minic>    ranked OpenMP parallelization suggestions
//   mvgnn variants <file.minic>   effect of the six IR variant pipelines
//
// The entry function must be named `kernel`. Array parameters are filled
// deterministically (4096 elements); int parameters get 8, floats 1.0.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/suggest.hpp"
#include "frontend/lower.hpp"
#include "graph/peg.hpp"
#include "profiler/profile.hpp"
#include "transform/passes.hpp"

namespace {

using namespace mvgnn;

int usage() {
  std::fprintf(stderr,
               "usage: mvgnn <ir|cus|profile|peg|suggest|variants> "
               "<file.minic>\n");
  return 2;
}

std::string read_file(const char* path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error(std::string("cannot open ") + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<profiler::ArgInit> synth_args(const ir::Function& kernel) {
  std::vector<profiler::ArgInit> args;
  for (const auto& p : kernel.params) {
    if (ir::is_array(p.type)) {
      args.push_back(profiler::ArgInit::of_array(4096, args.size() + 1));
    } else if (p.type == ir::TypeKind::Int) {
      args.push_back(profiler::ArgInit::of_int(8));
    } else {
      args.push_back(profiler::ArgInit::of_float(1.0));
    }
  }
  return args;
}

const ir::Function& kernel_of(const ir::Module& m) {
  const ir::Function* fn = m.find("kernel");
  if (!fn) throw std::runtime_error("no `kernel` function in the input");
  return *fn;
}

int cmd_ir(const ir::Module& m) {
  std::fputs(ir::to_string(m).c_str(), stdout);
  return 0;
}

int cmd_cus(const ir::Module& m) {
  for (const auto& fn : m.functions) {
    const auto cus = profiler::build_cus(*fn);
    std::printf("@%s: %zu computational units\n", fn->name.c_str(),
                cus.size());
    for (const auto& cu : cus) {
      std::printf("  CU%u  lines %d..%d  (%zu instructions)\n", cu.id,
                  cu.start_line, cu.end_line, cu.instrs.size());
    }
  }
  return 0;
}

int cmd_profile(const ir::Module& m) {
  const auto args = synth_args(kernel_of(m));
  const auto prof = profiler::profile(m, "kernel", args);
  std::printf("dynamic instructions : %llu\n",
              static_cast<unsigned long long>(prof.run.steps));
  std::printf("dependence edges     : %zu\n", prof.dep.edges.size());
  std::printf("computational units  : %zu\n", prof.cus.size());
  std::printf("for-loops            : %zu\n\n", prof.loops.size());
  std::printf("%6s %8s %10s %6s %6s %9s %9s %9s\n", "line", "N_Inst", "exec",
              "CFL", "ESP", "in_dep", "internal", "out_dep");
  for (const auto& loop : prof.loops) {
    const auto& f = loop.features;
    std::printf("%6d %8llu %10llu %6.0f %6.2f %9llu %9llu %9llu\n",
                loop.fn->loops[loop.loop].start_line,
                static_cast<unsigned long long>(f.n_inst),
                static_cast<unsigned long long>(f.exec_times), f.cfl, f.esp,
                static_cast<unsigned long long>(f.incoming_dep),
                static_cast<unsigned long long>(f.internal_dep),
                static_cast<unsigned long long>(f.outgoing_dep));
  }
  // Dependence edge summary by kind.
  std::size_t raw = 0, war = 0, waw = 0, carried = 0;
  for (const auto& e : prof.dep.edges) {
    raw += e.type == profiler::DepType::RAW;
    war += e.type == profiler::DepType::WAR;
    waw += e.type == profiler::DepType::WAW;
    carried += e.loop_carried();
  }
  std::printf("\nedges: %zu RAW, %zu WAR, %zu WAW (%zu loop-carried)\n", raw,
              war, waw, carried);
  return 0;
}

int cmd_peg(const ir::Module& m) {
  const auto args = synth_args(kernel_of(m));
  const auto prof = profiler::profile(m, "kernel", args);
  const auto peg = graph::build_peg(m, prof);
  std::fputs(graph::to_dot(peg, m.name).c_str(), stdout);
  return 0;
}

int cmd_suggest(const ir::Module& m) {
  const auto args = synth_args(kernel_of(m));
  const auto prof = profiler::profile(m, "kernel", args);
  for (const auto& s : analysis::suggest_openmp(m, prof)) {
    std::printf("%s\n", analysis::to_string(s).c_str());
  }
  return 0;
}

int cmd_variants(const std::string& source) {
  std::printf("%-18s %10s %8s %8s\n", "pipeline", "instrs", "blocks",
              "loops");
  for (const auto& pipeline : transform::variant_pipelines()) {
    ir::Module m = frontend::compile(source, pipeline.name);
    transform::run_pipeline(m, pipeline);
    std::size_t instrs = 0, blocks = 0, loops = 0;
    for (const auto& fn : m.functions) {
      for (const auto& bb : fn->blocks) instrs += bb.instrs.size();
      blocks += fn->blocks.size();
      loops += fn->loops.size();
    }
    std::printf("%-18s %10zu %8zu %8zu\n", pipeline.name.c_str(), instrs,
                blocks, loops);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return usage();
  try {
    const std::string source = read_file(argv[2]);
    if (std::strcmp(argv[1], "variants") == 0) return cmd_variants(source);
    const ir::Module m = frontend::compile(source, argv[2]);
    if (std::strcmp(argv[1], "ir") == 0) return cmd_ir(m);
    if (std::strcmp(argv[1], "cus") == 0) return cmd_cus(m);
    if (std::strcmp(argv[1], "profile") == 0) return cmd_profile(m);
    if (std::strcmp(argv[1], "peg") == 0) return cmd_peg(m);
    if (std::strcmp(argv[1], "suggest") == 0) return cmd_suggest(m);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mvgnn: %s\n", e.what());
    return 1;
  }
}
