// mvgnn — command-line front door to the whole pipeline.
//
//   mvgnn ir <file.minic>         print the lowered IR
//   mvgnn cus <file.minic>        computational-unit decomposition
//   mvgnn profile <file.minic>    dependence profile + Table I features
//   mvgnn peg <file.minic>        program execution graph as Graphviz DOT
//   mvgnn suggest <file.minic>    ranked OpenMP parallelization suggestions
//   mvgnn variants <file.minic>   effect of the six IR variant pipelines
//   mvgnn train <file.minic>      train a small MV-GNN, classify the loops
//   mvgnn report <trace.json> [<metrics.json>]
//                                 attribute a recorded run: per-span stats,
//                                 pipeline-stage breakdown, utilization
//
// Observability flags (accepted anywhere on the command line):
//   --metrics-out <path>   write a JSON metrics snapshot on exit
//   --trace-out <path>     record spans; write Chrome trace_event JSON on
//                          exit (open in chrome://tracing or Perfetto)
//   --metrics-series-out <path>
//                          sample the metrics registry in the background
//                          and append JSONL rows to <path>
//   --metrics-sample-ms <n>
//                          sampling interval for the series (default 200)
//   --report               print a one-screen attribution summary on exit
//                          (implies span recording)
//   --quiet                raise the log level to warn (MVGNN_LOG_LEVEL
//                          overrides the default level too)
//
// The entry function must be named `kernel`. Array parameters are filled
// deterministically (4096 elements); int parameters get 8, floats 1.0.
#include <atomic>
#include <csignal>
#include <cstdint>
#include <ctime>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/suggest.hpp"
#include "cache/cache.hpp"
#include "core/checkpoint.hpp"
#include "core/trainer.hpp"
#include "data/corpus.hpp"
#include "data/dataset.hpp"
#include "data/serialize.hpp"
#include "frontend/lower.hpp"
#include "graph/peg.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "profiler/profile.hpp"
#include "serve/server.hpp"
#include "tensor/backend/backend.hpp"
#include "transform/parallelize.hpp"
#include "transform/passes.hpp"

namespace {

using namespace mvgnn;

int usage() {
  std::fprintf(
      stderr,
      "usage: mvgnn [flags] <command> <file.minic>\n"
      "\n"
      "commands:\n"
      "  ir        print the lowered IR\n"
      "  cus       computational-unit decomposition\n"
      "  profile   dependence profile + Table I loop features\n"
      "  peg       program execution graph as Graphviz DOT\n"
      "  suggest   ranked OpenMP parallelization suggestions\n"
      "  parallelize\n"
      "            act on the suggestions: plan a sharded parallel form of\n"
      "            every DOALL/reduction loop, run sequential vs. parallel,\n"
      "            assert output-memory equality, and print the annotated\n"
      "            source plus a measured-speedup table (--threads sets the\n"
      "            worker count, default 2; outputs are identical for all)\n"
      "  variants  effect of the six IR variant pipelines\n"
      "  train     train a small MV-GNN on a generated corpus, then\n"
      "            classify the input program's loops\n"
      "  dataset   build a generated-corpus dataset, save it to <path>\n"
      "            (bit-identical for a given --corpus/--seed, with the\n"
      "            cache off, cold, or warm; SIGINT/SIGTERM stops the\n"
      "            build cooperatively and exits 130)\n"
      "  serve     long-running inference daemon: line-delimited JSON over\n"
      "            TCP, batched forwards, admission control, hot checkpoint\n"
      "            reload on SIGHUP or {\"cmd\":\"reload\"} (docs/serving.md).\n"
      "            Takes no <file> argument; needs --checkpoint\n"
      "  cache     stage-cache maintenance: `mvgnn cache stats` or\n"
      "            `mvgnn cache clear` (use with --cache-dir)\n"
      "  report    aggregate a recorded run offline:\n"
      "            `mvgnn report <trace.json> [<metrics.json>]`\n"
      "\n"
      "flags:\n"
      "  --metrics-out <path>  write a JSON metrics snapshot on exit\n"
      "  --trace-out <path>    record spans and write Chrome trace_event\n"
      "                        JSON on exit (chrome://tracing / Perfetto)\n"
      "  --metrics-series-out <path>\n"
      "                        background-sample the metrics registry and\n"
      "                        append one JSONL row per interval to <path>\n"
      "  --metrics-sample-ms <n>\n"
      "                        series sampling interval (default 200)\n"
      "  --report              print a one-screen attribution summary on\n"
      "                        exit (implies span recording)\n"
      "  --report-format <f>   report output: text (default), md, json\n"
      "  --cache-dir <d>       stage-boundary cache directory (content-hash\n"
      "                        keyed; see docs/pipeline.md). Default: no\n"
      "                        disk tier\n"
      "  --cache-mem-mb <n>    in-memory cache budget in MiB (default 256)\n"
      "  --force-backend <b>   pin the tensor kernel backend: scalar, avx2,\n"
      "                        neon, or auto (default: best usable; the\n"
      "                        MVGNN_BACKEND env var sets the same thing)\n"
      "  --quiet, -q           only warnings and errors on the log\n"
      "                        (MVGNN_LOG_LEVEL sets the default level)\n"
      "  --help, -h            this message\n"
      "\n"
      "train/dataset options:\n"
      "  --corpus <n>          generated-corpus size in loops (default 90)\n"
      "  --epochs <n>          training epochs (default 4)\n"
      "  --seed <n>            training seed (default 1)\n"
      "  --threads <n>         data-parallel shard workers per mini-batch;\n"
      "                        weights are bit-identical for every n >= 1\n"
      "                        (0 = legacy serial path, the default)\n"
      "  --checkpoint-dir <d>  write ckpt-<epoch>.mvck files into <d>;\n"
      "                        SIGINT/SIGTERM also lands a final checkpoint\n"
      "                        before the process exits nonzero\n"
      "  --checkpoint-every <n> epochs between checkpoints (default 1)\n"
      "  --resume              continue from the newest checkpoint in\n"
      "                        --checkpoint-dir (bit-identical trajectory)\n"
      "\n"
      "serve options:\n"
      "  --checkpoint <f.mvck> checkpoint to serve (required); --corpus must\n"
      "                        match the one the checkpoint was trained with\n"
      "  --port <n>            TCP port on 127.0.0.1 (default 7077; 0 lets\n"
      "                        the kernel pick — the bound port is printed)\n"
      "  --batch-max <n>       max loop samples per batched forward (32)\n"
      "  --batch-linger-ms <n> batcher linger before a partial flush (5)\n"
      "  --queue-depth <n>     admission cap on queued requests (128)\n"
      "  --deadline-ms <n>     default per-request deadline; 0 = none (10000)\n"
      "  --max-request-bytes <n> per-request line cap (1 MiB)\n"
      "  --serve-fuel <n>      per-request interpreter step cap (20000000)\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<profiler::ArgInit> synth_args(const ir::Function& kernel) {
  std::vector<profiler::ArgInit> args;
  for (const auto& p : kernel.params) {
    if (ir::is_array(p.type)) {
      args.push_back(profiler::ArgInit::of_array(4096, args.size() + 1));
    } else if (p.type == ir::TypeKind::Int) {
      args.push_back(profiler::ArgInit::of_int(8));
    } else {
      args.push_back(profiler::ArgInit::of_float(1.0));
    }
  }
  return args;
}

const ir::Function& kernel_of(const ir::Module& m) {
  const ir::Function* fn = m.find("kernel");
  if (!fn) throw std::runtime_error("no `kernel` function in the input");
  return *fn;
}

int cmd_ir(const ir::Module& m) {
  std::fputs(ir::to_string(m).c_str(), stdout);
  return 0;
}

int cmd_cus(const ir::Module& m) {
  for (const auto& fn : m.functions) {
    const auto cus = profiler::build_cus(*fn);
    std::printf("@%s: %zu computational units\n", fn->name.c_str(),
                cus.size());
    for (const auto& cu : cus) {
      std::printf("  CU%u  lines %d..%d  (%zu instructions)\n", cu.id,
                  cu.start_line, cu.end_line, cu.instrs.size());
    }
  }
  return 0;
}

int cmd_profile(const ir::Module& m) {
  const auto args = synth_args(kernel_of(m));
  const auto prof = profiler::profile(m, "kernel", args);
  std::printf("dynamic instructions : %llu\n",
              static_cast<unsigned long long>(prof.run.steps));
  std::printf("dependence edges     : %zu\n", prof.dep.edges.size());
  std::printf("computational units  : %zu\n", prof.cus.size());
  std::printf("for-loops            : %zu\n\n", prof.loops.size());
  std::printf("%6s %8s %10s %6s %6s %9s %9s %9s\n", "line", "N_Inst", "exec",
              "CFL", "ESP", "in_dep", "internal", "out_dep");
  for (const auto& loop : prof.loops) {
    const auto& f = loop.features;
    std::printf("%6d %8llu %10llu %6.0f %6.2f %9llu %9llu %9llu\n",
                loop.fn->loops[loop.loop].start_line,
                static_cast<unsigned long long>(f.n_inst),
                static_cast<unsigned long long>(f.exec_times), f.cfl, f.esp,
                static_cast<unsigned long long>(f.incoming_dep),
                static_cast<unsigned long long>(f.internal_dep),
                static_cast<unsigned long long>(f.outgoing_dep));
  }
  // Dependence edge summary by kind.
  std::size_t raw = 0, war = 0, waw = 0, carried = 0;
  for (const auto& e : prof.dep.edges) {
    raw += e.type == profiler::DepType::RAW;
    war += e.type == profiler::DepType::WAR;
    waw += e.type == profiler::DepType::WAW;
    carried += e.loop_carried();
  }
  std::printf("\nedges: %zu RAW, %zu WAR, %zu WAW (%zu loop-carried)\n", raw,
              war, waw, carried);
  return 0;
}

int cmd_peg(const ir::Module& m) {
  const auto args = synth_args(kernel_of(m));
  const auto prof = profiler::profile(m, "kernel", args);
  const auto peg = graph::build_peg(m, prof);
  std::fputs(graph::to_dot(peg, m.name).c_str(), stdout);
  return 0;
}

int cmd_suggest(const ir::Module& m) {
  const auto args = synth_args(kernel_of(m));
  const auto prof = profiler::profile(m, "kernel", args);
  for (const auto& s : analysis::suggest_openmp(m, prof)) {
    std::printf("%s\n", analysis::to_string(s).c_str());
  }
  return 0;
}

int cmd_parallelize(const ir::Module& m, const std::string& source,
                    std::uint32_t threads) {
  const auto args = synth_args(kernel_of(m));
  const auto prof = profiler::profile(m, "kernel", args);
  const auto suggestions = analysis::suggest_openmp(m, prof);
  const auto result = transform::plan_parallel(m, "kernel", suggestions, prof);

  std::printf("loop decisions:\n");
  for (const auto& d : result.decisions) {
    if (d.planned) {
      std::printf("  line %d..%d [%s]  planned   %s\n", d.start_line,
                  d.end_line, analysis::par_kind_name(d.kind),
                  d.pragma.c_str());
    } else {
      std::printf("  line %d..%d [%s]  refused   (%s)\n", d.start_line,
                  d.end_line, analysis::par_kind_name(d.kind),
                  d.reason.c_str());
    }
  }
  if (result.plan.empty()) {
    std::printf("\nno loop planned; program left sequential\n");
    return 0;
  }

  // Best-of-3 timed equivalence run; equality must hold every time.
  transform::EquivalenceReport best;
  for (int rep = 0; rep < 3; ++rep) {
    const auto r = transform::run_equivalence(m, "kernel", args, result.plan,
                                              threads);
    if (!r.ran || !r.equal) {
      std::printf("\nEQUIVALENCE FAILED: %s\n", r.detail.c_str());
      return 1;
    }
    if (rep == 0) {
      best = r;
    } else {
      best.seq_seconds = std::min(best.seq_seconds, r.seq_seconds);
      best.par_seconds = std::min(best.par_seconds, r.par_seconds);
    }
  }
  const double speedup =
      best.par_seconds > 0.0 ? best.seq_seconds / best.par_seconds : 0.0;
  std::printf("\nequivalence: OK (%llu sharded loop instance%s, outputs match"
              " at %u thread%s)\n",
              static_cast<unsigned long long>(best.parallel_loops),
              best.parallel_loops == 1 ? "" : "s", threads,
              threads == 1 ? "" : "s");
  std::printf("%-18s %14s %14s %9s\n", "", "sequential", "parallel",
              "speedup");
  std::printf("%-18s %14llu %14llu %8.2fx\n", "interpreted steps",
              static_cast<unsigned long long>(best.seq_steps),
              static_cast<unsigned long long>(best.par_steps),
              best.par_steps
                  ? static_cast<double>(best.seq_steps) /
                        static_cast<double>(best.par_steps)
                  : 0.0);
  std::printf("%-18s %14.3f %14.3f %8.2fx\n", "wall time (ms)",
              best.seq_seconds * 1e3, best.par_seconds * 1e3, speedup);

  std::printf("\nannotated source:\n%s",
              transform::annotate_source(source, result).c_str());
  return 0;
}

int cmd_variants(const std::string& source) {
  std::printf("%-18s %10s %8s %8s\n", "pipeline", "instrs", "blocks",
              "loops");
  for (const auto& pipeline : transform::variant_pipelines()) {
    ir::Module m = frontend::compile(source, pipeline.name);
    transform::run_pipeline(m, pipeline);
    std::size_t instrs = 0, blocks = 0, loops = 0;
    for (const auto& fn : m.functions) {
      for (const auto& bb : fn->blocks) instrs += bb.instrs.size();
      blocks += fn->blocks.size();
      loops += fn->loops.size();
    }
    std::printf("%-18s %10zu %8zu %8zu\n", pipeline.name.c_str(), instrs,
                blocks, loops);
  }
  return 0;
}

struct TrainOptions {
  int corpus_loops = 90;
  std::size_t epochs = 4;
  std::uint64_t seed = 1;
  std::size_t threads = 0;
  std::string checkpoint_dir;
  std::size_t checkpoint_every = 1;
  bool resume = false;
};

/// Stage cache the dataset builds go through; null until --cache-dir or
/// --cache-mem-mb configures the global instance.
cache::Cache* g_cache = nullptr;

/// Flipped by the SIGINT/SIGTERM handler; the trainer polls it at batch
/// boundaries (landing a final checkpoint), the dataset builder between
/// pipeline items, and the serve daemon's main loop — all exit 130.
std::atomic<bool> g_stop{false};

/// Flipped by SIGHUP while serving; the daemon's main loop consumes it and
/// hot-reloads the startup checkpoint.
std::atomic<bool> g_reload{false};

extern "C" void handle_stop_signal(int) {
  // Async-signal-safe: only the atomic store.
  g_stop.store(true, std::memory_order_relaxed);
}

extern "C" void handle_reload_signal(int) {
  g_reload.store(true, std::memory_order_relaxed);
}

/// Scaled-down end-to-end flow (the classify_loops example at demo size):
/// build a generated corpus, train one MV-GNN on it, and classify every
/// for-loop of the input program. Exercises every instrumented subsystem —
/// profiler, PEG/walks, GEMM, thread pool, trainer — so a --trace-out of
/// this command shows the whole pipeline.
int cmd_train(const std::string& source, const TrainOptions& topts) {
  data::DatasetOptions opts;
  opts.seed = 5;
  opts.cache = g_cache;

  obs::log_info("building training corpus",
                {{"loops", std::to_string(topts.corpus_loops)}});
  const data::Dataset ds = data::build_dataset(
      data::build_generated_corpus(topts.corpus_loops, 2024), opts);
  auto [train_raw, val] = data::split_by_kernel(ds, 0.85, 5);
  const std::vector<std::size_t> train =
      data::oversample_balance(ds, train_raw, 5);

  const core::Normalizer norm = core::Normalizer::fit(ds, train);
  core::Featurizer feats(ds, norm);
  core::TrainConfig tc;
  tc.epochs = topts.epochs;
  tc.seed = topts.seed;
  tc.threads = topts.threads;
  tc.verbose = true;
  if (!topts.checkpoint_dir.empty()) {
    std::filesystem::create_directories(topts.checkpoint_dir);
    tc.checkpoint_dir = topts.checkpoint_dir;
    tc.checkpoint_every = topts.checkpoint_every;
    tc.stop_requested = &g_stop;
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    if (topts.resume) {
      tc.resume_from = core::latest_checkpoint(topts.checkpoint_dir);
      if (tc.resume_from.empty()) {
        obs::log_warn("no checkpoint to resume from; starting fresh",
                      {{"dir", topts.checkpoint_dir}});
      }
    }
  }
  obs::log_info("training MV-GNN",
                {{"train_samples", std::to_string(train.size())},
                 {"epochs", std::to_string(tc.epochs)},
                 {"seed", std::to_string(tc.seed)},
                 {"threads", std::to_string(tc.threads)}});
  core::MvGnnTrainer trainer(feats, core::default_config(feats), tc);
  trainer.fit(train, val);
  if (trainer.interrupted()) {
    obs::log_warn("training interrupted; checkpoint written",
                  {{"dir", topts.checkpoint_dir}});
    return 130;
  }

  // ---- inference on the user program ------------------------------------
  data::ProgramSpec user;
  user.suite = "User";
  user.app = "user";
  user.kernel.name = "user_program";
  user.kernel.source = source;
  {
    const ir::Module probe = frontend::compile(source, "probe");
    user.kernel.args = synth_args(kernel_of(probe));
  }
  data::DatasetOptions inference_opts = opts;
  inference_opts.dep_noise = 0.0;  // the user's own run is not noisy
  const auto samples = data::featurize_program(user, ds, inference_opts);

  std::printf("\nloop classification for the input program:\n");
  std::printf("%6s | %-14s | %-11s | %s\n", "line", "MV-GNN", "node/struct",
              "expert oracle");
  for (const auto& s : samples) {
    const auto in = core::build_input(s, ds, norm);
    const auto p = trainer.predict_input(in);
    std::printf("%6d | %-14s | %3s / %-3s | %s\n", s.loop_line,
                p.fused ? "PARALLELIZABLE" : "sequential",
                p.node_view ? "par" : "seq", p.struct_view ? "par" : "seq",
                s.label ? "parallelizable" : "sequential");
  }
  return 0;
}

/// Builds the generated-corpus dataset and saves it to `out`. Two runs with
/// the same --corpus/--seed produce byte-identical files whether the stage
/// cache is off, cold, or warm — the CI cache-identity check builds twice
/// against one --cache-dir and compares the bytes.
int cmd_dataset(const std::string& out, const TrainOptions& topts) {
  data::DatasetOptions opts;
  opts.seed = topts.seed;
  opts.cache = g_cache;
  opts.stop_requested = &g_stop;
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  obs::log_info("building dataset",
                {{"loops", std::to_string(topts.corpus_loops)},
                 {"out", out},
                 {"cached", g_cache ? "yes" : "no"}});
  std::size_t skipped = 0;
  data::BuildReport build_report;
  const data::Dataset ds = data::build_dataset(
      data::build_generated_corpus(topts.corpus_loops, 2024), opts, &skipped,
      &build_report);
  if (build_report.interrupted) {
    // Cooperative stop: in-flight items finished, nothing was half-written.
    // Flush what the build learned, then exit with the interrupt code.
    obs::log_warn("dataset build interrupted; no dataset written",
                  {{"out", out},
                   {"quarantined",
                    std::to_string(build_report.quarantined.size())}});
    return 130;
  }
  data::save_dataset(ds, out);
  std::printf("wrote %s: %zu samples, static_dim=%u, aw_vocab=%u\n",
              out.c_str(), ds.samples.size(), ds.static_dim, ds.aw_vocab);
  if (g_cache) {
    const cache::Stats st = g_cache->stats();
    std::printf("cache: %llu hits, %llu misses (%.0f%% hit ratio)\n",
                static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.misses),
                100.0 * st.hit_ratio());
  }
  return 0;
}

struct ServeOptions {
  int port = 7077;
  std::string checkpoint;
  std::size_t batch_max = 32;
  std::uint64_t linger_ms = 5;
  std::size_t queue_depth = 128;
  std::uint64_t deadline_ms = 10'000;
  std::size_t max_request_bytes = 1u << 20;
  std::uint64_t fuel = 20'000'000;
};

/// Long-running inference daemon (docs/serving.md): rebuild the train-time
/// featurization context, load the checkpoint, serve until SIGINT/SIGTERM
/// (graceful drain), hot-reloading the checkpoint on SIGHUP.
int cmd_serve(const TrainOptions& topts, const ServeOptions& sopts) {
  if (sopts.checkpoint.empty()) {
    std::fprintf(stderr, "mvgnn: serve needs --checkpoint <file.mvck>\n");
    return 2;
  }
  obs::log_info("building serving context",
                {{"corpus", std::to_string(topts.corpus_loops)},
                 {"cached", g_cache ? "yes" : "no"}});
  serve::ServerConfig cfg;
  cfg.port = sopts.port;
  cfg.checkpoint = sopts.checkpoint;
  cfg.batch_max_samples = sopts.batch_max;
  cfg.batch_linger_ms = sopts.linger_ms;
  cfg.max_queue_depth = sopts.queue_depth;
  cfg.default_deadline_ms = sopts.deadline_ms;
  cfg.max_request_bytes = sopts.max_request_bytes;
  cfg.interp.max_steps = sopts.fuel;
  serve::Server server(
      serve::build_serving_context(topts.corpus_loops, g_cache), cfg);
  server.start();
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGHUP, handle_reload_signal);
  // Parseable readiness line for scripts and the CI smoke test.
  std::printf("mvgnn serve: listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);
  while (!g_stop.load(std::memory_order_relaxed)) {
    if (g_reload.exchange(false, std::memory_order_relaxed)) {
      try {
        server.reload("");
      } catch (const std::exception& e) {
        // Rejected reload already logged + counted; the old model serves.
        obs::log_warn("serve: SIGHUP reload failed", {{"error", e.what()}});
      }
    }
    struct timespec ts {0, 100'000'000};  // 100ms signal-poll tick
    nanosleep(&ts, nullptr);
  }
  obs::log_info("serve: stop signal received; draining");
  server.stop();
  return 0;
}

int cmd_cache(const std::string& sub) {
  cache::Cache& c = cache::Cache::global();
  if (sub == "clear") {
    c.clear();
    std::printf("cache cleared (%s)\n",
                c.config().dir.empty() ? "memory tier only"
                                       : c.config().dir.c_str());
    return 0;
  }
  if (sub != "stats") {
    std::fprintf(stderr, "mvgnn: unknown cache subcommand `%s`\n",
                 sub.c_str());
    return usage();
  }
  const cache::Stats st = c.stats();
  std::printf("dir           : %s\n",
              c.config().dir.empty() ? "(none)" : c.config().dir.c_str());
  std::printf("mem budget    : %zu bytes\n", c.config().mem_budget_bytes);
  std::printf("mem entries   : %llu (%llu bytes)\n",
              static_cast<unsigned long long>(st.mem_entries),
              static_cast<unsigned long long>(st.mem_bytes));
  std::printf("disk entries  : %llu (%llu bytes)\n",
              static_cast<unsigned long long>(st.disk_entries),
              static_cast<unsigned long long>(st.disk_bytes));
  std::printf("hits/misses   : %llu / %llu\n",
              static_cast<unsigned long long>(st.hits),
              static_cast<unsigned long long>(st.misses));
  std::printf("evictions     : %llu\n",
              static_cast<unsigned long long>(st.evictions));
  std::printf("corrupt       : %llu\n",
              static_cast<unsigned long long>(st.corrupt));
  std::printf("write failures: %llu\n",
              static_cast<unsigned long long>(st.write_failures));
  return 0;
}

/// Offline aggregation of a recorded run: `mvgnn report <trace> [<metrics>]`.
/// The trace is required; the metrics snapshot (from --metrics-out) adds the
/// cache/pool utilization section.
int cmd_report(const std::string& trace_path, const std::string& metrics_path,
               obs::ReportFormat fmt) {
  const obs::ParsedTrace trace = obs::parse_chrome_trace(read_file(trace_path));
  obs::MetricsSnapshot metrics;
  bool have_metrics = false;
  if (!metrics_path.empty()) {
    metrics = obs::parse_metrics_json(read_file(metrics_path));
    have_metrics = true;
  }
  const obs::Report r =
      obs::build_report(trace.events, have_metrics ? &metrics : nullptr);
  std::fputs(obs::render_report(r, fmt).c_str(), stdout);
  return 0;
}

/// Single exit path for every way the process ends (success, failure,
/// interrupt): stop the background sampler (its final row lands before the
/// file closes), flush the metrics snapshot and trace — both exporters go
/// through io::atomic_write_file, so a crash mid-export never leaves a
/// torn file — print the --report summary, then drain the log. Returns the
/// final exit code.
int finalize_run(const std::string& metrics_out, const std::string& trace_out,
                 obs::MetricsSampler* sampler, bool report,
                 obs::ReportFormat report_fmt, int rc) {
  if (sampler != nullptr) {
    sampler->stop();
    obs::log_info("wrote metrics series",
                  {{"rows", std::to_string(sampler->rows_written())}});
  }
  if (!metrics_out.empty()) {
    if (obs::Registry::global().write_json(metrics_out)) {
      obs::log_info("wrote metrics snapshot", {{"path", metrics_out}});
    } else {
      obs::log_error("cannot write metrics snapshot", {{"path", metrics_out}});
      rc = rc ? rc : 1;
    }
  }
  if (!trace_out.empty()) {
    if (obs::TraceRecorder::global().write_chrome_json(trace_out)) {
      obs::log_info("wrote Chrome trace", {{"path", trace_out}});
    } else {
      obs::log_error("cannot write trace", {{"path", trace_out}});
      rc = rc ? rc : 1;
    }
  }
  if (report) {
    const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
    const obs::Report r =
        obs::build_report(obs::TraceRecorder::global().events(), &snap);
    std::fputs(obs::render_report(r, report_fmt).c_str(), stdout);
  }
  obs::Logger::global().flush();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out, trace_out, command, file, file2;
  std::string cache_dir;
  std::string series_out;
  std::uint64_t sample_ms = 0;  // 0 = not given; default applied at start
  bool report = false;
  obs::ReportFormat report_fmt = obs::ReportFormat::Text;
  std::size_t cache_mem_mb = 0;
  bool cache_requested = false;
  TrainOptions topts;
  ServeOptions sopts;
  bool quiet = false;

  auto flag_value = [&](int& a, const char* flag) -> const char* {
    if (a + 1 >= argc) {
      std::fprintf(stderr, "mvgnn: %s needs a value\n", flag);
      std::exit(2);
    }
    return argv[++a];
  };
  for (int a = 1; a < argc; ++a) {
    const char* arg = argv[a];
    if (std::strcmp(arg, "--metrics-out") == 0) {
      metrics_out = flag_value(a, arg);
    } else if (std::strcmp(arg, "--trace-out") == 0) {
      trace_out = flag_value(a, arg);
    } else if (std::strcmp(arg, "--metrics-series-out") == 0) {
      series_out = flag_value(a, arg);
    } else if (std::strcmp(arg, "--metrics-sample-ms") == 0) {
      sample_ms = static_cast<std::uint64_t>(std::atoll(flag_value(a, arg)));
    } else if (std::strcmp(arg, "--report") == 0) {
      report = true;
    } else if (std::strcmp(arg, "--report-format") == 0) {
      const char* f = flag_value(a, arg);
      if (std::strcmp(f, "text") == 0) {
        report_fmt = obs::ReportFormat::Text;
      } else if (std::strcmp(f, "md") == 0 ||
                 std::strcmp(f, "markdown") == 0) {
        report_fmt = obs::ReportFormat::Markdown;
      } else if (std::strcmp(f, "json") == 0) {
        report_fmt = obs::ReportFormat::Json;
      } else {
        std::fprintf(stderr, "mvgnn: unknown report format `%s`\n", f);
        return usage();
      }
    } else if (std::strcmp(arg, "--force-backend") == 0 ||
               std::strncmp(arg, "--force-backend=", 16) == 0) {
      const char* name =
          arg[15] == '=' ? arg + 16 : flag_value(a, "--force-backend");
      if (!tensor::backend::force(name)) {
        std::fprintf(stderr,
                     "mvgnn: unknown or unavailable backend `%s`; compiled in:",
                     name);
        for (const auto* b : tensor::backend::all()) {
          std::fprintf(stderr, " %s%s", b->name(),
                       b->usable() ? "" : " (cpu unsupported)");
        }
        std::fprintf(stderr, "\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--quiet") == 0 || std::strcmp(arg, "-q") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      cache_dir = flag_value(a, arg);
      cache_requested = true;
    } else if (std::strcmp(arg, "--cache-mem-mb") == 0) {
      cache_mem_mb = static_cast<std::size_t>(std::atoll(flag_value(a, arg)));
      cache_requested = true;
    } else if (std::strcmp(arg, "--corpus") == 0) {
      topts.corpus_loops = std::atoi(flag_value(a, arg));
    } else if (std::strcmp(arg, "--epochs") == 0) {
      topts.epochs = static_cast<std::size_t>(std::atoi(flag_value(a, arg)));
    } else if (std::strcmp(arg, "--seed") == 0) {
      topts.seed = static_cast<std::uint64_t>(std::atoll(flag_value(a, arg)));
    } else if (std::strcmp(arg, "--threads") == 0) {
      topts.threads = static_cast<std::size_t>(std::atoll(flag_value(a, arg)));
    } else if (std::strcmp(arg, "--checkpoint-dir") == 0) {
      topts.checkpoint_dir = flag_value(a, arg);
    } else if (std::strcmp(arg, "--checkpoint-every") == 0) {
      topts.checkpoint_every =
          static_cast<std::size_t>(std::atoll(flag_value(a, arg)));
    } else if (std::strcmp(arg, "--resume") == 0) {
      topts.resume = true;
    } else if (std::strcmp(arg, "--port") == 0) {
      sopts.port = std::atoi(flag_value(a, arg));
    } else if (std::strcmp(arg, "--checkpoint") == 0) {
      sopts.checkpoint = flag_value(a, arg);
    } else if (std::strcmp(arg, "--batch-max") == 0) {
      sopts.batch_max = static_cast<std::size_t>(std::atoll(flag_value(a, arg)));
    } else if (std::strcmp(arg, "--batch-linger-ms") == 0) {
      sopts.linger_ms =
          static_cast<std::uint64_t>(std::atoll(flag_value(a, arg)));
    } else if (std::strcmp(arg, "--queue-depth") == 0) {
      sopts.queue_depth =
          static_cast<std::size_t>(std::atoll(flag_value(a, arg)));
    } else if (std::strcmp(arg, "--deadline-ms") == 0) {
      sopts.deadline_ms =
          static_cast<std::uint64_t>(std::atoll(flag_value(a, arg)));
    } else if (std::strcmp(arg, "--max-request-bytes") == 0) {
      sopts.max_request_bytes =
          static_cast<std::size_t>(std::atoll(flag_value(a, arg)));
    } else if (std::strcmp(arg, "--serve-fuel") == 0) {
      sopts.fuel = static_cast<std::uint64_t>(std::atoll(flag_value(a, arg)));
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      return usage();
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "mvgnn: unknown flag %s\n", arg);
      return usage();
    } else if (command.empty()) {
      command = arg;
    } else if (file.empty()) {
      file = arg;
    } else if (file2.empty() && command == "report") {
      file2 = arg;  // optional metrics snapshot for `mvgnn report`
    } else {
      return usage();
    }
  }
  // Every command takes a <file> argument except `serve`, which is
  // configured entirely by flags.
  if (command.empty() || (file.empty() && command != "serve")) return usage();

  if (quiet) obs::Logger::global().set_level(obs::LogLevel::Warn);
  if (!trace_out.empty() || report) obs::TraceRecorder::global().enable();
  if (cache_requested) {
    cache::Config ccfg;
    ccfg.dir = cache_dir;
    if (cache_mem_mb > 0) ccfg.mem_budget_bytes = cache_mem_mb << 20;
    cache::Cache::configure_global(ccfg);
    g_cache = &cache::Cache::global();
  }

  // `report` is pure offline aggregation: no sampler, no recorder needed.
  if (command == "report") {
    try {
      return cmd_report(file, file2, report_fmt);
    } catch (const std::exception& e) {
      obs::log_error(std::string("mvgnn report: ") + e.what());
      obs::Logger::global().flush();
      return 1;
    }
  }

  std::optional<obs::MetricsSampler> sampler;
  if (!series_out.empty()) {
    obs::MetricsSampler::Options sopts;
    sopts.interval_ms = sample_ms != 0 ? sample_ms : 200;
    sopts.path = series_out;
    sampler.emplace(std::move(sopts));
    if (!sampler->start()) sampler.reset();  // start() already logged why
  } else if (sample_ms != 0) {
    obs::log_warn("--metrics-sample-ms has no effect without "
                  "--metrics-series-out; ignoring");
  }
  obs::MetricsSampler* sampler_p = sampler ? &*sampler : nullptr;

  int rc = 0;
  try {
    if (command == "cache") {
      return finalize_run(metrics_out, trace_out, sampler_p, report,
                          report_fmt, cmd_cache(file));
    }
    if (command == "dataset") {
      return finalize_run(metrics_out, trace_out, sampler_p, report,
                          report_fmt, cmd_dataset(file, topts));
    }
    if (command == "serve") {
      return finalize_run(metrics_out, trace_out, sampler_p, report,
                          report_fmt, cmd_serve(topts, sopts));
    }
    const std::string source = read_file(file);
    if (command == "variants") {
      rc = cmd_variants(source);
    } else if (command == "train") {
      rc = cmd_train(source, topts);
    } else {
      const ir::Module m = frontend::compile(source, file);
      if (command == "ir") rc = cmd_ir(m);
      else if (command == "cus") rc = cmd_cus(m);
      else if (command == "profile") rc = cmd_profile(m);
      else if (command == "peg") rc = cmd_peg(m);
      else if (command == "suggest") rc = cmd_suggest(m);
      else if (command == "parallelize")
        rc = cmd_parallelize(
            m, source,
            topts.threads ? static_cast<std::uint32_t>(topts.threads) : 2u);
      else return usage();
    }
  } catch (const std::exception& e) {
    obs::log_error(std::string("mvgnn: ") + e.what());
    rc = 1;
  }

  return finalize_run(metrics_out, trace_out, sampler_p, report, report_fmt,
                      rc);
}
