// bench_compare — the perf-regression gate.
//
//   bench_compare <baseline.json> <fresh.json> [--tol X] [--tol key=X]
//                 [--keys a,b,c]
//
// Both inputs are BenchReport schema-v1 documents (see
// src/obs/bench_report.hpp). Exit codes: 0 = within tolerance, 1 =
// regression / missing metric / malformed input, 2 = usage error. CI runs
// this against the committed BENCH_*.json snapshots; a perf regression
// beyond tolerance fails the build the same way a test failure does.
//
//   --tol X        default relative tolerance (default 0.10)
//   --tol key=X    per-metric override; --tol bytes_identical=0 is exact
//   --keys a,b,c   compare only these baseline metrics. Use for smoke runs
//                  whose sizes differ from the committed snapshot: restrict
//                  to size-robust ratio metrics and widen --tol.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/bench_report.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare <baseline.json> <fresh.json>\n"
               "                     [--tol X] [--tol key=X] [--keys a,b,c]\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  using mvgnn::obs::CompareOptions;
  std::string baseline, fresh;
  CompareOptions opts;

  for (int a = 1; a < argc; ++a) {
    const char* arg = argv[a];
    if (std::strcmp(arg, "--tol") == 0) {
      if (a + 1 >= argc) return usage();
      const char* v = argv[++a];
      const char* eq = std::strchr(v, '=');
      if (eq != nullptr) {
        opts.per_metric[std::string(v, eq)] = std::atof(eq + 1);
      } else {
        opts.tolerance = std::atof(v);
      }
    } else if (std::strcmp(arg, "--keys") == 0) {
      if (a + 1 >= argc) return usage();
      std::string list = argv[++a];
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > pos) opts.keys.push_back(list.substr(pos, end - pos));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      return usage();
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "bench_compare: unknown flag %s\n", arg);
      return usage();
    } else if (baseline.empty()) {
      baseline = arg;
    } else if (fresh.empty()) {
      fresh = arg;
    } else {
      return usage();
    }
  }
  if (baseline.empty() || fresh.empty()) return usage();

  try {
    const mvgnn::obs::CompareResult result = mvgnn::obs::compare_bench_reports(
        read_file(baseline), read_file(fresh), opts);
    std::fputs(mvgnn::obs::render_compare(result).c_str(), stdout);
    return result.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 1;
  }
}
