// Static analysis tests: affine subscript recovery, loop-bound derivation,
// ZIV/SIV/GCD/Banerjee dependence verdicts, reduction recognition, and the
// tool classifiers' designed behaviours.
#include <gtest/gtest.h>

#include "analysis/dep_test.hpp"
#include "analysis/reduction.hpp"
#include "analysis/tools.hpp"
#include "frontend/lower.hpp"
#include "profiler/profile.hpp"

namespace {

using namespace mvgnn;
using analysis::ArrayAccess;
using analysis::DepVerdict;

struct Compiled {
  std::unique_ptr<ir::Module> module;
  const ir::Function* fn = nullptr;
};

Compiled compile_kernel(const char* src) {
  Compiled c;
  c.module = std::make_unique<ir::Module>(frontend::compile(src, "t"));
  c.fn = c.module->find("kernel");
  EXPECT_NE(c.fn, nullptr);
  return c;
}

TEST(Affine, RecoversLinearSubscripts) {
  const auto c = compile_kernel(R"(
const int N = 8;
void kernel(float[] a) {
  for (int i = 0; i < N; i += 1) {
    for (int j = 0; j < N; j += 1) {
      a[i * 8 + j + 3] = 1.0;
    }
  }
}
)");
  const auto accesses = analysis::collect_array_accesses(*c.fn, 1);
  ASSERT_EQ(accesses.size(), 1u);
  const analysis::AffineExpr& e = accesses[0].index;
  ASSERT_TRUE(e.affine);
  EXPECT_EQ(e.constant, 3);
  ASSERT_EQ(e.iv_coeffs.size(), 2u);
  const ir::InstrId iv_i = c.fn->loops[0].induction_slot;
  const ir::InstrId iv_j = c.fn->loops[1].induction_slot;
  EXPECT_EQ(e.coeff_of(iv_i), 8);
  EXPECT_EQ(e.coeff_of(iv_j), 1);
}

TEST(Affine, IndirectAndParametricSubscriptsAreNotAffine) {
  const auto c = compile_kernel(R"(
void kernel(float[] a, int[] idx, int n) {
  for (int i = 0; i < 16; i += 1) {
    a[idx[i]] = 1.0;
    a[i * n] = 2.0;
  }
}
)");
  const auto accesses = analysis::collect_array_accesses(*c.fn, 0);
  ASSERT_EQ(accesses.size(), 3u);  // idx[i] load + two a stores
  int non_affine = 0;
  for (const auto& a : accesses) {
    if (!a.index.affine) ++non_affine;
  }
  EXPECT_EQ(non_affine, 2);  // a[idx[i]] and a[i*n]
}

TEST(Affine, LoopInvariantSymbolsAreTracked) {
  const auto c = compile_kernel(R"(
void kernel(float[] a, int off) {
  for (int i = 0; i < 8; i += 1) {
    a[i + off] = 1.0;
  }
}
)");
  const auto accesses = analysis::collect_array_accesses(*c.fn, 0);
  ASSERT_EQ(accesses.size(), 1u);
  EXPECT_TRUE(accesses[0].index.affine);
  EXPECT_EQ(accesses[0].index.symbols.size(), 1u);
}

TEST(Bounds, DerivedFromCanonicalLoops) {
  const auto c = compile_kernel(R"(
void kernel(float[] a) {
  for (int i = 2; i <= 14; i += 3) {
    a[i] = 1.0;
  }
}
)");
  const auto b = analysis::derive_bounds(*c.fn, 0);
  ASSERT_TRUE(b.known);
  ASSERT_TRUE(b.constant_trip);
  EXPECT_EQ(b.lo, 2);
  EXPECT_EQ(b.hi, 15);  // `<= 14` normalized to an exclusive bound
  EXPECT_EQ(b.step, 3);
}

TEST(Bounds, SymbolicBoundIsKnownButNotConstant) {
  const auto c = compile_kernel(R"(
void kernel(float[] a, int n) {
  for (int i = 0; i < n; i += 1) {
    a[i] = 1.0;
  }
}
)");
  const auto b = analysis::derive_bounds(*c.fn, 0);
  EXPECT_TRUE(b.known);
  EXPECT_FALSE(b.constant_trip);
}

TEST(Bounds, DataDependentLoopShapeIsUnknown) {
  const auto c = compile_kernel(R"(
void kernel(float[] a, int[] idx) {
  for (int i = 0; i < idx[0]; i += 1) {
    a[i] = 1.0;
  }
}
)");
  EXPECT_FALSE(analysis::derive_bounds(*c.fn, 0).known);
}

namespace deps {

/// Builds two array accesses on loop 0 of a two-statement kernel and runs
/// the pair test between the store (first statement) and the load operand
/// of the second.
DepVerdict verdict_of(const char* src, bool banerjee = true) {
  static std::vector<std::unique_ptr<ir::Module>> keep;
  keep.push_back(std::make_unique<ir::Module>(frontend::compile(src, "t")));
  const ir::Function* fn = keep.back()->find("kernel");
  const auto accesses = analysis::collect_array_accesses(*fn, 0);
  const auto bounds = analysis::derive_bounds(*fn, 0);
  const ArrayAccess* w = nullptr;
  const ArrayAccess* r = nullptr;
  for (const auto& a : accesses) {
    if (a.is_write && !w) w = &a;
    if (!a.is_write && !r) r = &a;
  }
  EXPECT_NE(w, nullptr);
  EXPECT_NE(r, nullptr);
  return analysis::test_pair(*fn, 0, *w, *r, bounds, banerjee);
}

}  // namespace deps

TEST(DepTest, StrongSivDistances) {
  // Same subscript: distance 0, not carried.
  EXPECT_EQ(deps::verdict_of(R"(
void kernel(float[] a, float[] b) {
  for (int i = 0; i < 16; i += 1) {
    a[i] = 1.0;
    b[i] = a[i];
  }
}
)"),
            DepVerdict::NotCarried);
  // Distance 1: carried.
  EXPECT_EQ(deps::verdict_of(R"(
void kernel(float[] a, float[] b) {
  for (int i = 1; i < 16; i += 1) {
    a[i] = 1.0;
    b[i] = a[i - 1];
  }
}
)"),
            DepVerdict::Carried);
  // Distance beyond the trip count: provably independent (Banerjee).
  EXPECT_EQ(deps::verdict_of(R"(
void kernel(float[] a, float[] b) {
  for (int i = 0; i < 8; i += 1) {
    a[i] = 1.0;
    b[i] = a[i + 8];
  }
}
)"),
            DepVerdict::NoDep);
  // ... but unknown without the Banerjee range check (AutoPar mode).
  EXPECT_EQ(deps::verdict_of(R"(
void kernel(float[] a, float[] b) {
  for (int i = 0; i < 8; i += 1) {
    a[i] = 1.0;
    b[i] = a[i + 8];
  }
}
)",
                             /*banerjee=*/false),
            DepVerdict::Carried);
}

TEST(DepTest, GcdDisprovesInterleavedAccesses) {
  // Writes even cells, reads odd cells: gcd(2,2)=2 does not divide 1.
  EXPECT_EQ(deps::verdict_of(R"(
void kernel(float[] a, float[] b) {
  for (int i = 0; i < 8; i += 1) {
    a[i * 2] = 1.0;
    b[i] = a[i * 2 + 1];
  }
}
)"),
            DepVerdict::NoDep);
}

TEST(DepTest, ZivSameCellIsCarried) {
  EXPECT_EQ(deps::verdict_of(R"(
void kernel(float[] a, float[] b) {
  for (int i = 0; i < 8; i += 1) {
    a[0] = 1.0;
    b[i] = a[0];
  }
}
)"),
            DepVerdict::Carried);
}

TEST(DepTest, NonAffineIsUnknown) {
  EXPECT_EQ(deps::verdict_of(R"(
void kernel(float[] a, float[] b, int[] idx) {
  for (int i = 0; i < 8; i += 1) {
    a[idx[i]] = 1.0;
    b[i] = a[i];
  }
}
)"),
            DepVerdict::Unknown);
}

TEST(Reduction, RecognizesScalarAndArrayChains) {
  const auto sum = compile_kernel(R"(
float kernel(float[] a) {
  float s = 0.0;
  for (int i = 0; i < 8; i += 1) {
    s = s + a[i];
  }
  return s;
}
)");
  auto chains = analysis::detect_reductions(*sum.fn, 0);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].op, analysis::ReductionOp::Sum);
  EXPECT_FALSE(chains[0].is_array);

  const auto hist = compile_kernel(R"(
void kernel(int[] idx, float[] h) {
  for (int i = 0; i < 8; i += 1) {
    h[idx[i]] += 1.0;
  }
}
)");
  chains = analysis::detect_reductions(*hist.fn, 0);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_TRUE(chains[0].is_array);

  const auto mx = compile_kernel(R"(
float kernel(float[] a) {
  float s = -100.0;
  for (int i = 0; i < 8; i += 1) {
    s = fmax(s, a[i]);
  }
  return s;
}
)");
  chains = analysis::detect_reductions(*mx.fn, 0);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].op, analysis::ReductionOp::Max);
}

TEST(Reduction, StrayAccessDisqualifies) {
  const auto c = compile_kernel(R"(
void kernel(float[] a, float[] b) {
  float s = 0.0;
  for (int i = 0; i < 8; i += 1) {
    s = s + a[i];
    b[i] = s;
  }
}
)");
  EXPECT_TRUE(analysis::detect_reductions(*c.fn, 0).empty());
}

TEST(Reduction, NonCommutativePositionMatters) {
  // s = x - s is NOT a sum reduction (the accumulator is negated).
  const auto c = compile_kernel(R"(
float kernel(float[] a) {
  float s = 0.0;
  for (int i = 0; i < 8; i += 1) {
    s = a[i] - s;
  }
  return s;
}
)");
  EXPECT_TRUE(analysis::detect_reductions(*c.fn, 0).empty());
  // s = s - x IS one.
  const auto ok = compile_kernel(R"(
float kernel(float[] a) {
  float s = 0.0;
  for (int i = 0; i < 8; i += 1) {
    s = s - a[i];
  }
  return s;
}
)");
  EXPECT_EQ(analysis::detect_reductions(*ok.fn, 0).size(), 1u);
}

TEST(Tools, EarlyExitAndCallsBlockStaticTools) {
  const auto brk = compile_kernel(R"(
int kernel(float[] a) {
  for (int i = 0; i < 8; i += 1) {
    if (a[i] > 2.0) {
      break;
    }
  }
  return 0;
}
)");
  EXPECT_TRUE(analysis::has_early_exit(*brk.fn, 0));
  EXPECT_FALSE(analysis::autopar_classify(*brk.fn, 0).parallel);
  EXPECT_FALSE(analysis::pluto_classify(*brk.fn, 0).parallel);

  const auto call = compile_kernel(R"(
float helper(float x) { return x + 1.0; }
void kernel(float[] a) {
  for (int i = 0; i < 8; i += 1) {
    a[i] = helper(a[i]);
  }
}
)");
  EXPECT_TRUE(analysis::has_user_call(*call.fn, 0));
  EXPECT_FALSE(analysis::autopar_classify(*call.fn, 0).parallel);
  // Builtins do not count as opaque calls.
  const auto builtin = compile_kernel(R"(
void kernel(float[] a) {
  for (int i = 0; i < 8; i += 1) {
    a[i] = sqrt(fabs(a[i]));
  }
}
)");
  EXPECT_FALSE(analysis::has_user_call(*builtin.fn, 0));
  EXPECT_TRUE(analysis::autopar_classify(*builtin.fn, 0).parallel);
}

TEST(Tools, InnerBreakDoesNotPoisonOuterLoop) {
  const auto c = compile_kernel(R"(
void kernel(float[] a) {
  for (int i = 0; i < 8; i += 1) {
    for (int j = 0; j < 8; j += 1) {
      if (a[j] > 2.0) {
        break;
      }
    }
    a[i] = 1.0;
  }
}
)");
  EXPECT_FALSE(analysis::has_early_exit(*c.fn, 0));
  EXPECT_TRUE(analysis::has_early_exit(*c.fn, 1));
}

TEST(Tools, PlutoRejectsScalarReductionsButAutoParAccepts) {
  const auto c = compile_kernel(R"(
float kernel(float[] a) {
  float s = 0.0;
  for (int i = 0; i < 8; i += 1) {
    s = s + a[i];
  }
  return s;
}
)");
  EXPECT_TRUE(analysis::autopar_classify(*c.fn, 0).parallel);
  EXPECT_FALSE(analysis::pluto_classify(*c.fn, 0).parallel);
}

TEST(Tools, DynamicToolsSeeThroughIndirection) {
  static std::vector<std::unique_ptr<ir::Module>> keep;
  keep.push_back(std::make_unique<ir::Module>(frontend::compile(R"(
const int N = 24;
void kernel(float[] a, int[] idx, float[] b) {
  for (int i = 0; i < N; i += 1) {
    b[i] = a[idx[i]];
  }
}
)",
                                                                "t")));
  const ir::Function* fn = keep.back()->find("kernel");
  std::vector<profiler::ArgInit> args = {profiler::ArgInit::of_array(24, 1),
                                         profiler::ArgInit::of_array(24, 2),
                                         profiler::ArgInit::of_array(24, 3)};
  const auto prof = profiler::profile(*keep.back(), "kernel", args);
  EXPECT_TRUE(analysis::discopop_classify(*fn, 0, prof.dep).parallel);
  EXPECT_TRUE(analysis::oracle_classify(*fn, 0, prof.dep).parallel);
  EXPECT_FALSE(analysis::pluto_classify(*fn, 0).parallel);
}

TEST(Tools, OrderDependentScatterIsRejectedByTheOracle) {
  static std::vector<std::unique_ptr<ir::Module>> keep;
  keep.push_back(std::make_unique<ir::Module>(frontend::compile(R"(
const int N = 32;
float kernel(int[] idx, float[] a, float[] b) {
  for (int i = 0; i < N; i += 1) {
    a[idx[i]] = b[i];
  }
  float s = 0.0;
  for (int j = 0; j < N; j += 1) {
    s = s + a[j];
  }
  return s;
}
)",
                                                                "t")));
  const ir::Function* fn = keep.back()->find("kernel");
  std::vector<profiler::ArgInit> args = {profiler::ArgInit::of_array(32, 1),
                                         profiler::ArgInit::of_array(32, 2),
                                         profiler::ArgInit::of_array(32, 3)};
  const auto prof = profiler::profile(*keep.back(), "kernel", args);
  EXPECT_FALSE(analysis::oracle_classify(*fn, 0, prof.dep).parallel);
  // The checksum reduction itself stays parallelizable.
  EXPECT_TRUE(analysis::oracle_classify(*fn, 1, prof.dep).parallel);
}

}  // namespace
