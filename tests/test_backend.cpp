// Kernel-backend equivalence and determinism (docs/kernels.md):
//  * every compiled-in usable backend agrees with a naive reference GEMM /
//    spmm within 1e-5 on edge shapes — M/N/K off the 6x16 (and 6x8) tile
//    grid, K=0, single-row panels, empty CSR rows;
//  * the fused bias/tanh epilogues match the unfused reference math;
//  * the fused autograd ops gradcheck against central differences;
//  * a fixed backend is bit-identical across repeated runs and across
//    thread-pool sizes (the per-element fixed-K-order contract).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <vector>

#include "parallel/rng.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/backend/backend.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/sparse.hpp"

namespace {

using namespace mvgnn;
using ag::Tensor;
using tensor::Epilogue;
using tensor::GemmArgs;
using tensor::KernelBackend;
using tensor::SpmmArgs;

/// Restores automatic dispatch when a test that forces a backend exits.
struct BackendGuard {
  ~BackendGuard() { tensor::backend::force("auto"); }
};

std::vector<float> randu(std::size_t n, std::uint64_t seed, float scale = 0.3f) {
  par::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = scale * static_cast<float>(rng.normal());
  return v;
}

ag::CsrMatrix csr_from(std::size_t rows, std::size_t cols,
                       std::vector<float> dense) {
  return ag::CsrMatrix::from_dense(
      Tensor::from_data({rows, cols}, std::move(dense)));
}

/// Naive triple-loop reference, j-inner, honoring ta/tb.
std::vector<float> ref_gemm(const std::vector<float>& a,
                            const std::vector<float>& b, std::size_t m,
                            std::size_t k, std::size_t n, bool ta, bool tb) {
  std::vector<float> c(m * n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * m + i] : a[i * k + p];
        const float bv = tb ? b[j * k + p] : b[p * n + j];
        acc += av * bv;
      }
      c[i * n + j] = acc;
    }
  }
  return c;
}

struct Dims {
  std::size_t m, k, n;
};

// Off-tile M/N/K (6x16 and 6x8 microkernels), exact tiles, single-row
// panels, K=0, degenerate widths, and sizes crossing the KC/MC/NC blocking.
const Dims kEdgeShapes[] = {
    {1, 1, 1},   {1, 7, 1},    {6, 8, 16},  {7, 5, 13},  {5, 0, 9},
    {1, 33, 40}, {13, 64, 1},  {12, 3, 32}, {97, 17, 7}, {3, 300, 19},
    {6, 16, 96}, {31, 19, 23},
};

void expect_block_near(const std::vector<float>& got,
                       const std::vector<float>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-5f) << what << " element " << i;
  }
}

TEST(Backend, ScalarIsAlwaysCompiledInAndUsable) {
  EXPECT_TRUE(tensor::backend::scalar_backend().usable());
  EXPECT_STREQ(tensor::backend::scalar_backend().name(), "scalar");
  EXPECT_FALSE(tensor::backend::all().empty());
  EXPECT_EQ(tensor::backend::all().back(),
            &tensor::backend::scalar_backend());
}

TEST(Backend, ForceRejectsUnknownNamesAndRestoresAuto) {
  BackendGuard guard;
  EXPECT_FALSE(tensor::backend::force("gpu"));
  EXPECT_TRUE(tensor::backend::force("scalar"));
  EXPECT_STREQ(tensor::backend::active().name(), "scalar");
  EXPECT_TRUE(tensor::backend::force("auto"));
}

TEST(Backend, NameForIdDecodesFrozenIds) {
  EXPECT_STREQ(tensor::backend::name_for_id(0), "scalar");
  EXPECT_STREQ(tensor::backend::name_for_id(1), "avx2");
  EXPECT_STREQ(tensor::backend::name_for_id(2), "neon");
  EXPECT_STREQ(tensor::backend::name_for_id(42), "unknown");
}

TEST(Backend, GemmMatchesReferenceOnEdgeShapesAllTransposes) {
  for (const KernelBackend* be : tensor::backend::all()) {
    if (!be->usable()) continue;
    for (const Dims& d : kEdgeShapes) {
      const std::vector<float> a = randu(d.m * d.k, 11 * d.m + d.k);
      const std::vector<float> b = randu(d.k * d.n, 7 * d.k + d.n);
      for (const bool ta : {false, true}) {
        for (const bool tb : {false, true}) {
          const std::vector<float> want = ref_gemm(a, b, d.m, d.k, d.n, ta, tb);
          std::vector<float> c(d.m * d.n, -100.0f);  // poison: must be zeroed
          const GemmArgs args{a.data(), b.data(), c.data(),
                              d.m,      d.k,      d.n,
                              ta,       tb,       Epilogue{}};
          std::memset(c.data(), 0, c.size() * sizeof(float));
          be->gemm_block(args, 0, d.m, 0, d.n);
          expect_block_near(c, want, be->name());
        }
      }
    }
  }
}

TEST(Backend, GemmBlockComputesOnlyItsBlock) {
  // A backend handed an interior block must not touch anything outside it.
  const std::size_t m = 20, k = 9, n = 30;
  const std::vector<float> a = randu(m * k, 1), b = randu(k * n, 2);
  const std::vector<float> want = ref_gemm(a, b, m, k, n, false, false);
  for (const KernelBackend* be : tensor::backend::all()) {
    if (!be->usable()) continue;
    std::vector<float> c(m * n, 0.0f);
    const GemmArgs args{a.data(), b.data(), c.data(), m, k, n,
                        false,    false,    Epilogue{}};
    be->gemm_block(args, 3, 17, 5, 29);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const bool inside = i >= 3 && i < 17 && j >= 5 && j < 29;
        if (inside) {
          ASSERT_NEAR(c[i * n + j], want[i * n + j], 1e-5f) << be->name();
        } else {
          ASSERT_EQ(c[i * n + j], 0.0f) << be->name() << " wrote outside its "
                                        << "block at " << i << "," << j;
        }
      }
    }
  }
}

TEST(Backend, FusedEpilogueMatchesUnfusedReference) {
  const std::size_t m = 19, k = 21, n = 27;
  const std::vector<float> a = randu(m * k, 3), b = randu(k * n, 4);
  const std::vector<float> bias_col = randu(n, 5);
  const std::vector<float> bias_row = randu(m, 6);
  const std::vector<float> base = ref_gemm(a, b, m, k, n, false, false);
  for (const KernelBackend* be : tensor::backend::all()) {
    if (!be->usable()) continue;
    {
      std::vector<float> want = base;
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          want[i * n + j] =
              std::tanh(want[i * n + j] + bias_col[j] + bias_row[i]);
        }
      }
      Epilogue ep;
      ep.bias_col = bias_col.data();
      ep.bias_row = bias_row.data();
      ep.tanh = true;
      std::vector<float> c(m * n, 0.0f);
      const GemmArgs args{a.data(), b.data(), c.data(), m, k, n,
                          false,    false,    ep};
      be->gemm_block(args, 0, m, 0, n);
      expect_block_near(c, want, be->name());
    }
  }
}

TEST(Backend, GemmKZeroWithEpilogueIsBiasThroughTanh) {
  // K=0: the product is all zeros, so the fused tail alone defines C.
  const std::size_t m = 4, n = 10;
  const std::vector<float> bias = randu(n, 7, 1.0f);
  for (const KernelBackend* be : tensor::backend::all()) {
    if (!be->usable()) continue;
    Epilogue ep;
    ep.bias_col = bias.data();
    ep.tanh = true;
    std::vector<float> c(m * n, 0.0f);
    const GemmArgs args{nullptr, nullptr, c.data(), m, 0, n, false, false, ep};
    be->gemm_block(args, 0, m, 0, n);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_NEAR(c[i * n + j], std::tanh(bias[j]), 1e-5f) << be->name();
      }
    }
  }
}

TEST(Backend, SpmmMatchesDenseReferenceIncludingEmptyRows) {
  // 7x5 sparse matrix with rows 1 and 4 completely empty, x is 5x9.
  const std::size_t rows = 7, inner = 5, cols = 9;
  std::vector<float> dense(rows * inner, 0.0f);
  dense[0 * inner + 2] = 0.5f;
  dense[2 * inner + 0] = -1.25f;
  dense[2 * inner + 4] = 2.0f;
  dense[3 * inner + 3] = 0.75f;
  dense[5 * inner + 1] = -0.3f;
  dense[5 * inner + 2] = 1.1f;
  dense[6 * inner + 4] = 4.0f;
  const ag::CsrMatrix csr = csr_from(rows, inner, dense);
  const std::vector<float> x = randu(inner * cols, 8);
  const std::vector<float> want =
      ref_gemm(dense, x, rows, inner, cols, false, false);
  for (const KernelBackend* be : tensor::backend::all()) {
    if (!be->usable()) continue;
    for (const bool tanh : {false, true}) {
      std::vector<float> out(rows * cols, 0.0f);
      const SpmmArgs args{csr.row_ptr().data(), csr.col_idx().data(),
                          csr.values().data(),  x.data(),
                          out.data(),           cols,
                          tanh};
      be->spmm_rows(args, 0, rows);
      for (std::size_t i = 0; i < out.size(); ++i) {
        const float w = tanh ? std::tanh(want[i]) : want[i];
        ASSERT_NEAR(out[i], w, 1e-5f) << be->name() << " tanh=" << tanh;
      }
      // Empty rows must stay exactly tanh(0) == 0.
      for (std::size_t j = 0; j < cols; ++j) {
        ASSERT_EQ(out[1 * cols + j], 0.0f) << be->name();
        ASSERT_EQ(out[4 * cols + j], 0.0f) << be->name();
      }
    }
  }
}

TEST(Backend, DriverRejectsEpilogueWithAccumulate) {
  std::vector<float> a(4, 1.0f), b(4, 1.0f), c(4, 0.0f), bias(2, 1.0f);
  Epilogue ep;
  ep.bias_col = bias.data();
  EXPECT_THROW(
      tensor::gemm(a.data(), b.data(), c.data(), 2, 2, 2, false, false,
                   /*accumulate=*/true, ep),
      std::invalid_argument);
  const ag::CsrMatrix csr = csr_from(2, 2, {1.0f, 0.0f, 0.0f, 1.0f});
  EXPECT_THROW(
      tensor::spmm_csr(csr.row_ptr().data(), csr.col_idx().data(),
                       csr.values().data(), 2, a.data(), c.data(), 2,
                       /*accumulate=*/true, /*tanh=*/true),
      std::invalid_argument);
}

TEST(Backend, FixedBackendBitIdenticalAcrossRunsAndPoolSizes) {
  // The headline determinism contract: same backend => same bits, no matter
  // how the driver splits the work. Large enough to actually fan out.
  const std::size_t m = 150, k = 70, n = 90;
  const std::vector<float> a = randu(m * k, 9), b = randu(k * n, 10);
  const std::vector<float> bias = randu(n, 11);
  par::ThreadPool pool1(1), pool4(4);
  for (const KernelBackend* be : tensor::backend::all()) {
    if (!be->usable()) continue;
    BackendGuard guard;
    ASSERT_TRUE(tensor::backend::force(be->name()));
    Epilogue ep;
    ep.bias_col = bias.data();
    ep.tanh = true;
    std::vector<float> c1(m * n), c2(m * n), c4(m * n);
    tensor::gemm(a.data(), b.data(), c1.data(), m, k, n, false, false, false,
                 ep, pool1);
    tensor::gemm(a.data(), b.data(), c2.data(), m, k, n, false, false, false,
                 ep, pool1);
    tensor::gemm(a.data(), b.data(), c4.data(), m, k, n, false, false, false,
                 ep, pool4);
    EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)))
        << be->name() << ": repeated run differs";
    EXPECT_EQ(0, std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(float)))
        << be->name() << ": pool size changed the bits";
  }
}

TEST(Backend, SpmmBitIdenticalAcrossPoolSizes) {
  const std::size_t rows = 400, cols = 33;
  std::vector<float> dense(rows * rows, 0.0f);
  par::Rng rng(12);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t e = 0; e < 6; ++e) {
      dense[i * rows + rng.uniform_u64(rows)] =
          0.25f * static_cast<float>(rng.normal());
    }
  }
  const ag::CsrMatrix csr = csr_from(rows, rows, dense);
  const std::vector<float> x = randu(rows * cols, 13);
  par::ThreadPool pool1(1), pool4(4);
  for (const KernelBackend* be : tensor::backend::all()) {
    if (!be->usable()) continue;
    BackendGuard guard;
    ASSERT_TRUE(tensor::backend::force(be->name()));
    std::vector<float> o1(rows * cols), o4(rows * cols);
    tensor::spmm_csr(csr.row_ptr().data(), csr.col_idx().data(),
                     csr.values().data(), rows, x.data(), o1.data(), cols,
                     false, true, pool1);
    tensor::spmm_csr(csr.row_ptr().data(), csr.col_idx().data(),
                     csr.values().data(), rows, x.data(), o4.data(), cols,
                     false, true, pool4);
    EXPECT_EQ(0, std::memcmp(o1.data(), o4.data(), o1.size() * sizeof(float)))
        << be->name() << ": pool size changed the bits";
  }
}

// ---------------------------------------------------------------------------
// Fused autograd ops
// ---------------------------------------------------------------------------

void gradcheck(const std::vector<Tensor>& inputs,
               const std::function<Tensor()>& fn, float eps = 1e-3f,
               float tol = 2e-2f) {
  Tensor out = fn();
  ASSERT_EQ(out.numel(), 1u);
  for (const Tensor& t : inputs) const_cast<Tensor&>(t).zero_grad();
  out.backward();
  for (std::size_t ti = 0; ti < inputs.size(); ++ti) {
    Tensor t = inputs[ti];
    const std::vector<float> analytic = t.grad();
    for (std::size_t e = 0; e < t.numel(); ++e) {
      const float orig = t.data()[e];
      t.data()[e] = orig + eps;
      const float up = fn().item();
      t.data()[e] = orig - eps;
      const float down = fn().item();
      t.data()[e] = orig;
      EXPECT_NEAR(analytic[e], (up - down) / (2.0f * eps), tol)
          << "input " << ti << " element " << e;
    }
  }
}

Tensor make(ag::Shape s, std::uint64_t seed) {
  par::Rng rng(seed);
  return Tensor::randn(s, rng, 0.7f, /*requires_grad=*/true);
}

TEST(Backend, MatmulBiasMatchesMatmulAddAndGradchecks) {
  Tensor a = make({5, 4}, 20), w = make({4, 3}, 21), bias = make({1, 3}, 22);
  Tensor fused = ag::matmul_bias(a, w, bias);
  Tensor ref = ag::add(ag::matmul(a, w), bias);
  ASSERT_EQ(fused.numel(), ref.numel());
  for (std::size_t i = 0; i < ref.numel(); ++i) {
    EXPECT_NEAR(fused.data()[i], ref.data()[i], 1e-5f);
  }
  gradcheck({a, w, bias}, [&] { return ag::sum(ag::matmul_bias(a, w, bias)); });
}

TEST(Backend, MatmulBiasTransposedWeightMatchesExplicitTranspose) {
  Tensor a = make({6, 4}, 23), w = make({5, 4}, 24), bias = make({1, 5}, 25);
  Tensor fused = ag::matmul_bias(a, w, bias, /*tw=*/true);
  Tensor ref = ag::add(ag::matmul(a, ag::transpose(w)), bias);
  for (std::size_t i = 0; i < ref.numel(); ++i) {
    EXPECT_NEAR(fused.data()[i], ref.data()[i], 1e-5f);
  }
  gradcheck({a, w, bias},
            [&] { return ag::sum(ag::matmul_bias(a, w, bias, true)); });
}

TEST(Backend, MatmulBiasTanhMatchesUnfusedChainAndGradchecks) {
  Tensor a = make({3, 7}, 26), w = make({7, 4}, 27), bias = make({1, 4}, 28);
  Tensor fused = ag::matmul_bias_tanh(a, w, bias);
  Tensor ref = ag::tanh_t(ag::add(ag::matmul(a, w), bias));
  for (std::size_t i = 0; i < ref.numel(); ++i) {
    EXPECT_NEAR(fused.data()[i], ref.data()[i], 1e-5f);
  }
  gradcheck({a, w, bias},
            [&] { return ag::sum(ag::matmul_bias_tanh(a, w, bias)); });
  gradcheck({a, w, bias},
            [&] { return ag::sum(ag::matmul_bias_tanh(a, w, bias)); });
}

TEST(Backend, MatmulBiasShapeMismatchThrows) {
  Tensor a = make({3, 4}, 29), w = make({5, 2}, 30), bias = make({1, 2}, 31);
  EXPECT_THROW((void)ag::matmul_bias(a, w, bias), ag::TensorError);
  Tensor w2 = make({4, 2}, 32), bad_bias = make({1, 3}, 33);
  EXPECT_THROW((void)ag::matmul_bias(a, w2, bad_bias), ag::TensorError);
}

TEST(Backend, SpmmTanhMatchesUnfusedAndGradchecksAgainstNewBackend) {
  // Includes an empty row (node 3 has no in-edges) to pin the tanh(0)=0 path.
  const std::vector<float> dense = {
      0.0f, 0.5f, 0.0f, 0.5f,  //
      1.0f, 0.0f, 0.0f, 0.0f,  //
      0.0f, 0.7f, 0.3f, 0.0f,  //
      0.0f, 0.0f, 0.0f, 0.0f,  //
  };
  const ag::CsrMatrix csr = csr_from(4, 4, dense);
  Tensor x = make({4, 3}, 34);
  Tensor fused = ag::spmm_tanh(csr, x);
  Tensor ref = ag::tanh_t(ag::spmm(csr, x));
  for (std::size_t i = 0; i < ref.numel(); ++i) {
    EXPECT_NEAR(fused.data()[i], ref.data()[i], 1e-5f);
  }
  gradcheck({x}, [&] { return ag::sum(ag::spmm_tanh(csr, x)); });
  // The plain spmm gradcheck re-run against the dispatched backend.
  gradcheck({x}, [&] { return ag::sum(ag::spmm(csr, x)); });
}

TEST(Backend, ForcedScalarAndActiveBackendAgreeThroughAutogradOps) {
  // End-to-end cross-backend agreement through the ag layer (what the CI
  // forced-scalar leg pins): forward values within 1e-5 of forced-scalar.
  Tensor a = make({33, 17}, 35), w = make({17, 21}, 36),
         bias = make({1, 21}, 37);
  std::vector<float> forced;
  {
    BackendGuard guard;
    ASSERT_TRUE(tensor::backend::force("scalar"));
    Tensor out = ag::matmul_bias_tanh(a, w, bias);
    forced.assign(out.data(), out.data() + out.numel());
  }
  Tensor out = ag::matmul_bias_tanh(a, w, bias);  // auto-dispatched
  for (std::size_t i = 0; i < forced.size(); ++i) {
    EXPECT_NEAR(out.data()[i], forced[i], 1e-5f);
  }
}

}  // namespace
