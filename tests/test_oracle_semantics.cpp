// Experimental soundness check of the expert oracle: if a loop is labeled
// parallelizable, executing its iterations in REVERSE order must produce
// the same observable result (for reductions, the same up to floating-point
// re-association, so the reduction bodies here use exactly-representable
// arithmetic). If it is labeled sequential, the reversed twin is built so
// the result demonstrably differs.
//
// This tests the *semantics* of the label, not just the implementation: a
// DOALL/reduction label is precisely a claim of execution-order freedom.
#include <gtest/gtest.h>

#include "analysis/tools.hpp"
#include "frontend/lower.hpp"
#include "profiler/profile.hpp"

namespace {

using namespace mvgnn;
using profiler::ArgInit;

struct Twin {
  const char* forward;
  const char* reversed;
  std::vector<ArgInit> args;
};

double run_value(const char* src, const std::vector<ArgInit>& args) {
  const ir::Module m = frontend::compile(src, "t");
  profiler::NullObserver obs;
  return profiler::run(m, "kernel", args, obs).return_value.f;
}

bool forward_label(const char* src, const std::vector<ArgInit>& args) {
  static std::vector<std::unique_ptr<ir::Module>> keep;
  keep.push_back(std::make_unique<ir::Module>(frontend::compile(src, "t")));
  const auto prof = profiler::profile(*keep.back(), "kernel", args);
  return analysis::oracle_classify(*prof.loops[0].fn, prof.loops[0].loop,
                                   prof.dep)
      .parallel;
}

TEST(OracleSemantics, ParallelizableLoopsAreOrderFree) {
  // Exactly representable arithmetic (x2, +1, integers-as-floats) so even
  // the reduction result is bitwise order-independent.
  const Twin twins[] = {
      // DOALL map.
      {R"(
const int N = 32;
float kernel(float[] a, float[] b) {
  for (int i = 0; i < N; i += 1) {
    b[i] = a[i] * 2.0 + 1.0;
  }
  float s = 0.0;
  for (int j = 0; j < N; j += 1) {
    s = s + b[j];
  }
  return s;
}
)",
       R"(
const int N = 32;
float kernel(float[] a, float[] b) {
  for (int i = N - 1; i >= 0; i -= 1) {
    b[i] = a[i] * 2.0 + 1.0;
  }
  float s = 0.0;
  for (int j = 0; j < N; j += 1) {
    s = s + b[j];
  }
  return s;
}
)",
       {ArgInit::of_array(32, 1), ArgInit::of_array(32, 2)}},
      // Max reduction (order-free exactly).
      {R"(
const int N = 32;
float kernel(float[] a) {
  float s = -1000000.0;
  for (int i = 0; i < N; i += 1) {
    s = fmax(s, a[i]);
  }
  return s;
}
)",
       R"(
const int N = 32;
float kernel(float[] a) {
  float s = -1000000.0;
  for (int i = N - 1; i >= 0; i -= 1) {
    s = fmax(s, a[i]);
  }
  return s;
}
)",
       {ArgInit::of_array(32, 1)}},
      // Privatizable temporary.
      {R"(
const int N = 32;
float kernel(float[] a, float[] b) {
  float t = 0.0;
  for (int i = 0; i < N; i += 1) {
    t = a[i] * 2.0;
    b[i] = t + 1.0;
  }
  float s = 0.0;
  for (int j = 0; j < N; j += 1) {
    s = s + b[j];
  }
  return s;
}
)",
       R"(
const int N = 32;
float kernel(float[] a, float[] b) {
  float t = 0.0;
  for (int i = N - 1; i >= 0; i -= 1) {
    t = a[i] * 2.0;
    b[i] = t + 1.0;
  }
  float s = 0.0;
  for (int j = 0; j < N; j += 1) {
    s = s + b[j];
  }
  return s;
}
)",
       {ArgInit::of_array(32, 1), ArgInit::of_array(32, 2)}},
  };
  for (const Twin& t : twins) {
    ASSERT_TRUE(forward_label(t.forward, t.args));
    EXPECT_DOUBLE_EQ(run_value(t.forward, t.args),
                     run_value(t.reversed, t.args));
  }
}

TEST(OracleSemantics, SequentialLoopsAreOrderSensitive) {
  const Twin twins[] = {
      // Forward recurrence: reversing it changes the result.
      {R"(
const int N = 32;
float kernel(float[] a) {
  for (int i = 1; i < N; i += 1) {
    a[i] = a[i] + a[i - 1];
  }
  return a[N - 1];
}
)",
       R"(
const int N = 32;
float kernel(float[] a) {
  for (int i = N - 1; i >= 1; i -= 1) {
    a[i] = a[i] + a[i - 1];
  }
  return a[N - 1];
}
)",
       {ArgInit::of_array(32, 1)}},
      // Carried scalar chain.
      {R"(
const int N = 32;
float kernel(float[] a, float[] b) {
  float s = 0.0;
  for (int i = 0; i < N; i += 1) {
    s = s * 0.5 + a[i];
    b[i] = s;
  }
  return b[0] + b[N - 1];
}
)",
       R"(
const int N = 32;
float kernel(float[] a, float[] b) {
  float s = 0.0;
  for (int i = N - 1; i >= 0; i -= 1) {
    s = s * 0.5 + a[i];
    b[i] = s;
  }
  return b[0] + b[N - 1];
}
)",
       {ArgInit::of_array(32, 1), ArgInit::of_array(32, 2)}},
  };
  for (const Twin& t : twins) {
    ASSERT_FALSE(forward_label(t.forward, t.args));
    EXPECT_NE(run_value(t.forward, t.args), run_value(t.reversed, t.args));
  }
}

}  // namespace
