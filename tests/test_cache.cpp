// Stage-boundary cache tests: key/hash stability, LRU eviction order,
// config-fingerprint invalidation of the chained stage keys, disk-tier
// round trips and corruption handling, single-flight get_or_compute under
// concurrency, and the headline guarantee — build_dataset output is
// byte-identical with the cache off, cold, and warm.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cache/cache.hpp"
#include "cache/key.hpp"
#include "data/corpus.hpp"
#include "data/dataset.hpp"
#include "data/serialize.hpp"
#include "parallel/task_group.hpp"
#include "pipe/item.hpp"

namespace {

using namespace mvgnn;
namespace fs = std::filesystem;

/// Fresh scratch directory per test; removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("mvgnn_cache_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

TEST(CacheKey, StableAcrossRunsAndSensitiveToInputs) {
  const cache::Key a = cache::Hasher().str("hello").u64(7).digest();
  const cache::Key b = cache::Hasher().str("hello").u64(7).digest();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, cache::Hasher().str("hello").u64(8).digest());
  EXPECT_NE(a, cache::Hasher().str("hellp").u64(7).digest());
  // Chaining from a different parent changes the child.
  const cache::Key c1 = cache::Hasher(a).str("child").digest();
  const cache::Key c2 = cache::Hasher(b).str("child").digest();
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, cache::Hasher(cache::Key{1, 2}).str("child").digest());
  EXPECT_EQ(a.hex().size(), 32u);
}

TEST(CacheKey, StageKeysChainConfigFingerprints) {
  pipe::ItemSpec spec;
  spec.source = "int kernel() { return 0; }";
  spec.module_name = "m";
  pipe::PipelineConfig cfg;
  const pipe::StageKeys base = pipe::stage_keys(spec, cfg);

  // Changing a walk parameter re-keys walks+featurize but leaves every
  // upstream stage (parse..peg) intact — the cache keeps those entries.
  pipe::PipelineConfig walk_cfg = cfg;
  walk_cfg.walk.gamma += 1;
  const pipe::StageKeys w = pipe::stage_keys(spec, walk_cfg);
  EXPECT_EQ(base.parse, w.parse);
  EXPECT_EQ(base.lower, w.lower);
  EXPECT_EQ(base.profile, w.profile);
  EXPECT_EQ(base.peg, w.peg);
  EXPECT_NE(base.walks, w.walks);
  EXPECT_NE(base.featurize, w.featurize);

  // Interpreter fuel enters at the profile stage.
  pipe::PipelineConfig fuel_cfg = cfg;
  fuel_cfg.interp.max_steps /= 2;
  const pipe::StageKeys f = pipe::stage_keys(spec, fuel_cfg);
  EXPECT_EQ(base.lower, f.lower);
  EXPECT_NE(base.profile, f.profile);
  EXPECT_NE(base.featurize, f.featurize);

  // Dependence noise enters at the peg stage.
  pipe::PipelineConfig noise_cfg = cfg;
  noise_cfg.dep_noise = 0.5;
  const pipe::StageKeys n = pipe::stage_keys(spec, noise_cfg);
  EXPECT_EQ(base.profile, n.profile);
  EXPECT_NE(base.peg, n.peg);

  // Source text enters at the very root.
  pipe::ItemSpec spec2 = spec;
  spec2.source += " ";
  const pipe::StageKeys s = pipe::stage_keys(spec2, cfg);
  EXPECT_NE(base.parse, s.parse);
  EXPECT_NE(base.featurize, s.featurize);
}

// ---------------------------------------------------------------------------
// LRU memory tier
// ---------------------------------------------------------------------------

TEST(Cache, LruEvictsLeastRecentlyUsedFirst) {
  cache::Config cfg;  // memory-only
  // Each entry charges its 64 payload bytes plus the fixed 128-byte
  // bookkeeping overhead; budget exactly two entries.
  cfg.mem_budget_bytes = 2 * (64 + 128);
  cache::Cache c(cfg);
  const cache::Key k1{1, 1}, k2{2, 2}, k3{3, 3};
  const std::string payload(64, 'x');
  c.put(k1, payload);
  c.put(k2, payload);
  ASSERT_TRUE(c.get(k1).has_value());  // touch k1 -> k2 is now LRU
  c.put(k3, payload);                  // evicts k2
  EXPECT_TRUE(c.get(k1).has_value());
  EXPECT_FALSE(c.get(k2).has_value());
  EXPECT_TRUE(c.get(k3).has_value());
  EXPECT_GE(c.stats().evictions, 1u);
}

TEST(Cache, TypedObjectsShareTheLru) {
  cache::Cache c(cache::Config{});
  const cache::Key k{9, 9};
  auto obj = std::make_shared<const int>(42);
  c.put_object<int>(k, obj, sizeof(int));
  auto back = c.get_object<int>(k);
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, 42);
  // Type confusion is a miss, not a reinterpretation.
  EXPECT_EQ(c.get_object<double>(k), nullptr);
}

// ---------------------------------------------------------------------------
// Disk tier
// ---------------------------------------------------------------------------

TEST(Cache, DiskEntriesSurviveAcrossInstances) {
  TempDir dir("disk");
  const cache::Key k = cache::Hasher().str("persist").digest();
  {
    cache::Cache c(cache::Config{dir.str(), 64ull << 20});
    c.put(k, "payload-bytes");
  }
  cache::Cache c2(cache::Config{dir.str(), 64ull << 20});
  auto v = c2.get(k);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "payload-bytes");
  EXPECT_EQ(c2.stats().hits, 1u);
}

TEST(Cache, CorruptDiskEntryIsEvictedAndMisses) {
  TempDir dir("corrupt");
  const cache::Key k = cache::Hasher().str("will-rot").digest();
  fs::path entry;
  {
    cache::Cache c(cache::Config{dir.str(), 64ull << 20});
    c.put(k, "precious");
    for (const auto& e : fs::directory_iterator(dir.path)) entry = e.path();
  }
  ASSERT_FALSE(entry.empty());
  // Flip payload bytes in place; the CRC no longer matches.
  {
    std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(16);
    f.write("XXXX", 4);
  }
  cache::Cache c2(cache::Config{dir.str(), 64ull << 20});
  EXPECT_FALSE(c2.get(k).has_value());
  EXPECT_EQ(c2.stats().corrupt, 1u);
  EXPECT_FALSE(fs::exists(entry));  // evicted, so the rot cannot recur
  // A fresh put repopulates and reads back fine.
  c2.put(k, "precious");
  EXPECT_TRUE(c2.get(k).has_value());
}

TEST(Cache, ClearDropsMemoryAndDisk) {
  TempDir dir("clear");
  cache::Cache c(cache::Config{dir.str(), 64ull << 20});
  c.put(cache::Key{1, 2}, "a");
  c.put(cache::Key{3, 4}, "b");
  c.clear();
  EXPECT_FALSE(c.get(cache::Key{1, 2}).has_value());
  const cache::Stats st = c.stats();
  EXPECT_EQ(st.mem_entries, 0u);
  EXPECT_EQ(st.disk_entries, 0u);
  EXPECT_TRUE(fs::is_empty(dir.path));
}

// ---------------------------------------------------------------------------
// Single-flight get_or_compute
// ---------------------------------------------------------------------------

TEST(Cache, ConcurrentGetOrComputeRunsComputeOnce) {
  cache::Cache c(cache::Config{});
  const cache::Key k = cache::Hasher().str("flight").digest();
  std::atomic<int> computes{0};
  par::TaskGroup group;
  constexpr int kCallers = 16;
  std::vector<std::string> results(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    group.run([&, i] {
      results[i] = c.get_or_compute(k, [&] {
        computes.fetch_add(1);
        return std::string("computed-value");
      });
    });
  }
  group.wait();
  EXPECT_EQ(computes.load(), 1);
  for (const auto& r : results) EXPECT_EQ(r, "computed-value");
}

TEST(Cache, GetOrComputePropagatesExceptionsToAllWaiters) {
  cache::Cache c(cache::Config{});
  const cache::Key k = cache::Hasher().str("doomed").digest();
  EXPECT_THROW(c.get_or_compute(
                   k, []() -> std::string { throw std::runtime_error("no"); }),
               std::runtime_error);
  // The failure was not cached: a later compute succeeds.
  EXPECT_EQ(c.get_or_compute(k, [] { return std::string("ok"); }), "ok");
}

// ---------------------------------------------------------------------------
// Feature-bundle serialization
// ---------------------------------------------------------------------------

TEST(Pipe, FeatureSerializationRoundTrips) {
  pipe::ItemSpec spec;
  spec.source =
      "int kernel(int n) {\n"
      "  int a[64]; int s = 0;\n"
      "  for (int i = 0; i < n; i = i + 1) { a[i] = i; }\n"
      "  for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }\n"
      "  return s;\n"
      "}\n";
  spec.module_name = "rt";
  spec.args.push_back(profiler::ArgInit{.int_val = 32});
  pipe::PipelineConfig cfg;
  const pipe::ItemFeatures f = pipe::run_item(spec, cfg, nullptr);
  ASSERT_FALSE(f.samples.empty());
  const std::string bytes = pipe::serialize_features(f);
  const pipe::ItemFeatures g = pipe::deserialize_features(bytes);
  EXPECT_EQ(pipe::serialize_features(g), bytes);
  EXPECT_EQ(f.tokens, g.tokens);
  EXPECT_EQ(f.context_pairs, g.context_pairs);
  ASSERT_EQ(f.samples.size(), g.samples.size());
  for (std::size_t i = 0; i < f.samples.size(); ++i) {
    EXPECT_EQ(f.samples[i].edges, g.samples[i].edges);
    EXPECT_EQ(f.samples[i].node_dynamic, g.samples[i].node_dynamic);
    EXPECT_EQ(f.samples[i].label, g.samples[i].label);
  }
  // Truncated payloads throw instead of reading out of bounds.
  EXPECT_THROW((void)pipe::deserialize_features(
                   std::string_view(bytes).substr(0, bytes.size() / 2)),
               std::runtime_error);
  EXPECT_THROW((void)pipe::deserialize_features("garbage"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// The headline guarantee: cache off == cold == warm, byte for byte
// ---------------------------------------------------------------------------

std::string dataset_bytes(const data::Dataset& ds) {
  std::ostringstream os;
  data::save_dataset(ds, os);
  return os.str();
}

TEST(Cache, DatasetBytesIdenticalOffColdAndWarm) {
  TempDir dir("identity");
  const auto programs = data::build_generated_corpus(12, 2024);
  data::DatasetOptions opts;
  opts.use_ir_variants = true;

  const data::Dataset off = data::build_dataset(programs, opts);
  const std::string off_bytes = dataset_bytes(off);

  cache::Cache c(cache::Config{dir.str(), 256ull << 20});
  opts.cache = &c;
  const data::Dataset cold = data::build_dataset(programs, opts);
  EXPECT_EQ(dataset_bytes(cold), off_bytes);
  const cache::Stats cold_st = c.stats();

  const data::Dataset warm = data::build_dataset(programs, opts);
  EXPECT_EQ(dataset_bytes(warm), off_bytes);
  const cache::Stats st = c.stats();
  // The warm pass is served entirely from the cache: one featurize-blob hit
  // per surviving item plus the embedding table, and not a single new miss.
  EXPECT_GE(st.hits - cold_st.hits, off.samples.size() > 0 ? 2u : 0u);
  EXPECT_EQ(st.misses, cold_st.misses);

  // A fresh instance over the same directory (disk tier only) still
  // reproduces the bytes.
  cache::Cache c2(cache::Config{dir.str(), 256ull << 20});
  opts.cache = &c2;
  const data::Dataset disk = data::build_dataset(programs, opts);
  EXPECT_EQ(dataset_bytes(disk), off_bytes);
  EXPECT_GT(c2.stats().hits, 0u);
}

}  // namespace
