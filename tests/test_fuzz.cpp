// Grammar fuzzing: randomly generated (but by-construction fault-free)
// MiniC programs must flow through the ENTIRE pipeline — compile, verify,
// every transform pipeline, profile, PEG, sub-PEGs, features, oracle and
// tool classification — without crashes, faults, or verifier complaints.
//
// The generator constrains itself so runtime faults cannot occur: every
// array subscript is reduced modulo the array length, there is no division,
// loop bounds are small constants, and nesting is capped. Anything the
// pipeline then throws is a real bug.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/tools.hpp"
#include "parallel/rng.hpp"
#include "frontend/lower.hpp"
#include "graph/peg.hpp"
#include "profiler/profile.hpp"
#include "transform/passes.hpp"

namespace {

using namespace mvgnn;

/// Random MiniC program generator. Scalars: i/j loop variables, s/t floats.
/// Arrays: a, b (float, length N).
class Fuzzer {
 public:
  explicit Fuzzer(std::uint64_t seed) : rng_(seed) {}

  std::string program() {
    os_.str("");
    n_ = 8 + 4 * rng_.uniform_int(0, 4);
    os_ << "const int N = " << n_ << ";\n";
    os_ << "float kernel(float[] a, float[] b) {\n";
    os_ << "  float s = 0.0;\n";
    os_ << "  float t = 1.0;\n";
    const int stmts = 2 + static_cast<int>(rng_.uniform_int(0, 4));
    for (int k = 0; k < stmts; ++k) stmt(1, 0);
    os_ << "  return s + t + a[0] + b[0];\n";
    os_ << "}\n";
    return os_.str();
  }

 private:
  void indent(int depth) {
    for (int i = 0; i < depth; ++i) os_ << "  ";
  }

  /// An int expression that stays small and non-negative.
  std::string int_expr(int loop_depth) {
    switch (rng_.uniform_int(0, 3)) {
      case 0: return std::to_string(rng_.uniform_int(0, n_ - 1));
      case 1:
        if (loop_depth >= 1) return "i";
        return std::to_string(rng_.uniform_int(0, 3));
      case 2:
        if (loop_depth >= 2) return "j";
        if (loop_depth >= 1) return "i + 1";
        return "2";
      default:
        if (loop_depth >= 1) {
          return "i * " + std::to_string(1 + rng_.uniform_int(0, 3));
        }
        return std::to_string(rng_.uniform_int(0, 5));
    }
  }

  /// A guaranteed-in-bounds subscript.
  std::string index(int loop_depth) {
    return "(" + int_expr(loop_depth) + ") % N";
  }

  /// A float expression (no division).
  std::string float_expr(int loop_depth, int budget = 2) {
    if (budget <= 0 || rng_.bernoulli(0.3)) {
      switch (rng_.uniform_int(0, 3)) {
        case 0: return "s";
        case 1: return "t";
        case 2: {
          std::ostringstream w;
          w << (0.1 + rng_.uniform());
          return w.str();
        }
        default:
          return std::string(rng_.bernoulli(0.5) ? "a" : "b") + "[" +
                 index(loop_depth) + "]";
      }
    }
    const char* ops[] = {" + ", " - ", " * "};
    const std::string lhs = float_expr(loop_depth, budget - 1);
    const std::string rhs = float_expr(loop_depth, budget - 1);
    if (rng_.bernoulli(0.2)) return "fabs(" + lhs + ")";
    if (rng_.bernoulli(0.15)) return "fmax(" + lhs + ", " + rhs + ")";
    return "(" + lhs + ops[rng_.uniform_u64(3)] + rhs + ")";
  }

  void stmt(int depth, int loop_depth) {
    // Loops only shallowly (bounds the program size and keeps i/j scoping
    // trivially correct).
    const bool allow_for = depth <= 2 && loop_depth < 2;
    switch (rng_.uniform_int(0, allow_for ? 4 : 3)) {
      case 0: {  // scalar assignment
        indent(depth);
        os_ << (rng_.bernoulli(0.5) ? "s" : "t") << " = "
            << float_expr(loop_depth) << ";\n";
        return;
      }
      case 1: {  // array store
        indent(depth);
        os_ << (rng_.bernoulli(0.5) ? "a" : "b") << "[" << index(loop_depth)
            << "] = " << float_expr(loop_depth) << ";\n";
        return;
      }
      case 2: {  // if/else
        indent(depth);
        os_ << "if (" << float_expr(loop_depth, 1) << " > "
            << float_expr(loop_depth, 1) << ") {\n";
        stmt(depth + 1, loop_depth);
        indent(depth);
        if (rng_.bernoulli(0.5)) {
          os_ << "} else {\n";
          stmt(depth + 1, loop_depth);
          indent(depth);
        }
        os_ << "}\n";
        return;
      }
      case 3: {  // compound array update (reduction-shaped)
        indent(depth);
        os_ << (rng_.bernoulli(0.5) ? "a" : "b") << "[" << index(loop_depth)
            << "] += " << float_expr(loop_depth, 1) << ";\n";
        return;
      }
      default: {  // for loop (bounded nesting)
        const char* iv = loop_depth == 0 ? "i" : "j";
        const int trip = 2 + static_cast<int>(rng_.uniform_int(0, 6));
        indent(depth);
        os_ << "for (int " << iv << " = 0; " << iv << " < " << trip << "; "
            << iv << " += 1) {\n";
        const int body = 1 + static_cast<int>(rng_.uniform_int(0, 2));
        for (int k = 0; k < body; ++k) stmt(depth + 1, loop_depth + 1);
        indent(depth);
        os_ << "}\n";
        return;
      }
    }
  }

  par::Rng rng_;
  std::ostringstream os_;
  std::int64_t n_ = 16;
};

class FuzzPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzPipeline, WholePipelineSurvivesRandomPrograms) {
  Fuzzer fuzz(GetParam());
  for (int round = 0; round < 8; ++round) {
    const std::string source = fuzz.program();
    SCOPED_TRACE(source);

    // Compile + verify.
    ir::Module m;
    ASSERT_NO_THROW(m = frontend::compile(source, "fuzz")) << source;

    // Every transform pipeline keeps it valid and semantics-stable.
    profiler::NullObserver obs;
    const std::vector<profiler::ArgInit> args = {
        profiler::ArgInit::of_array(64, 1), profiler::ArgInit::of_array(64, 2)};
    double reference = 0.0;
    ASSERT_NO_THROW(reference =
                        profiler::run(m, "kernel", args, obs).return_value.f);
    for (const auto& pipeline : transform::variant_pipelines()) {
      ir::Module v = frontend::compile(source, pipeline.name);
      ASSERT_NO_THROW(transform::run_pipeline(v, pipeline)) << pipeline.name;
      double out = 0.0;
      ASSERT_NO_THROW(out = profiler::run(v, "kernel", args, obs)
                                .return_value.f)
          << pipeline.name;
      EXPECT_DOUBLE_EQ(out, reference) << pipeline.name << "\n" << source;
    }

    // Full profile + graph + per-loop analyses.
    profiler::ProfileResult prof;
    ASSERT_NO_THROW(prof = profiler::profile(m, "kernel", args));
    const graph::Peg peg = graph::build_peg(m, prof);
    EXPECT_GE(peg.num_nodes(), 1u);
    for (const auto& loop : prof.loops) {
      const auto sub = graph::extract_sub_peg(peg, loop.fn, loop.loop);
      EXPECT_GE(sub.num_nodes(), 1u);
      EXPECT_NO_THROW(
          (void)analysis::oracle_classify(*loop.fn, loop.loop, prof.dep));
      EXPECT_NO_THROW((void)analysis::autopar_classify(*loop.fn, loop.loop));
      EXPECT_NO_THROW((void)analysis::pluto_classify(*loop.fn, loop.loop));
      EXPECT_NO_THROW(
          (void)analysis::discopop_classify(*loop.fn, loop.loop, prof.dep));
      EXPECT_NO_THROW(
          (void)analysis::oracle_pattern(*loop.fn, loop.loop, prof.dep));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
