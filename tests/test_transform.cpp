// IR transformation passes: semantic preservation (interpreter-checked),
// fold/DCE/strength-reduction effectiveness, arena compaction integrity.
#include <gtest/gtest.h>

#include <bit>
#include <span>

#include "analysis/suggest.hpp"
#include "data/kernels.hpp"
#include "frontend/lower.hpp"
#include "profiler/par_exec.hpp"
#include "profiler/profile.hpp"
#include "transform/parallelize.hpp"
#include "transform/passes.hpp"

namespace {

using namespace mvgnn;
using profiler::ArgInit;

constexpr const char* kProgram = R"(
const int N = 16;
float kernel(float[] a, float[] b) {
  float s = 0.0;
  for (int i = 0; i < N; i += 1) {
    float unused = a[i] * 3.0 + 2.0 * 4.0;
    s = s + a[i] * 1 + b[i] * 2 + 0;
  }
  for (int i = 1; i < N; i += 1) {
    b[i] = b[i - 1] * 0.5 + (float) (6 / 2);
  }
  return s + b[N - 1];
}
)";

double run(const ir::Module& m) {
  profiler::NullObserver obs;
  std::vector<ArgInit> args = {ArgInit::of_array(16, 1),
                               ArgInit::of_array(16, 2)};
  return profiler::run(m, "kernel", args, obs).return_value.f;
}

TEST(Transform, EveryPipelinePreservesSemantics) {
  const double reference = run(frontend::compile(kProgram, "ref"));
  for (const auto& pipeline : transform::variant_pipelines()) {
    ir::Module m = frontend::compile(kProgram, pipeline.name);
    transform::run_pipeline(m, pipeline);
    EXPECT_NO_THROW(ir::verify(m)) << pipeline.name;
    EXPECT_DOUBLE_EQ(run(m), reference) << pipeline.name;
  }
}

TEST(Transform, ConstantFoldEliminatesLiteralArithmetic) {
  ir::Module m = frontend::compile("int kernel() { return (2 + 3) * 4; }", "t");
  ir::Function& fn = *m.find("kernel");
  EXPECT_GT(transform::constant_fold(fn), 0u);
  // After fold + DCE the function is essentially `ret 20`.
  transform::dead_code_elim(fn);
  ir::verify(fn);
  std::size_t arith = 0;
  for (const auto& bb : fn.blocks) {
    for (const auto id : bb.instrs) {
      const auto op = fn.instr(id).op;
      if (op == ir::Opcode::Add || op == ir::Opcode::Mul) ++arith;
    }
  }
  EXPECT_EQ(arith, 0u);
  profiler::NullObserver obs;
  EXPECT_EQ(profiler::run(m, "kernel", {}, obs).return_value.i, 20);
}

TEST(Transform, DceRemovesUnusedComputation) {
  ir::Module m = frontend::compile(R"(
int kernel(int x) {
  int unused = x * 17 + 4;
  int dead = unused - 2;
  return x + 1;
}
)",
                                   "t");
  ir::Function& fn = *m.find("kernel");
  const std::size_t before = [&] {
    std::size_t n = 0;
    for (const auto& bb : fn.blocks) n += bb.instrs.size();
    return n;
  }();
  EXPECT_GT(transform::dead_code_elim(fn), 0u);
  const std::size_t after = [&] {
    std::size_t n = 0;
    for (const auto& bb : fn.blocks) n += bb.instrs.size();
    return n;
  }();
  EXPECT_LT(after, before);
  ir::verify(fn);
  profiler::NullObserver obs;
  std::vector<ArgInit> args = {ArgInit::of_int(5)};
  EXPECT_EQ(profiler::run(m, "kernel", args, obs).return_value.i, 6);
}

TEST(Transform, DceKeepsStoresAndCalls) {
  ir::Module m = frontend::compile(R"(
void helper(float[] a) { a[0] = 9.0; }
float kernel(float[] a) {
  helper(a);
  a[1] = 2.0;
  return a[0] + a[1];
}
)",
                                   "t");
  transform::dead_code_elim(*m.find("kernel"));
  ir::verify(m);
  profiler::NullObserver obs;
  std::vector<ArgInit> args = {ArgInit::of_array(4)};
  EXPECT_DOUBLE_EQ(profiler::run(m, "kernel", args, obs).return_value.f, 11.0);
}

TEST(Transform, StrengthReductionRewritesDoubling) {
  ir::Module m = frontend::compile("int kernel(int x) { return x * 2; }", "t");
  ir::Function& fn = *m.find("kernel");
  EXPECT_GT(transform::strength_reduce(fn), 0u);
  bool saw_mul = false;
  for (const auto& in : fn.instrs) {
    if (in.op == ir::Opcode::Mul) saw_mul = true;
  }
  EXPECT_FALSE(saw_mul);
  profiler::NullObserver obs;
  std::vector<ArgInit> args = {ArgInit::of_int(21)};
  EXPECT_EQ(profiler::run(m, "kernel", args, obs).return_value.i, 42);
}

TEST(Transform, CompactionKeepsLoopMetadataValid) {
  ir::Module m = frontend::compile(R"(
const int N = 8;
float kernel(float[] a) {
  float s = 0.0;
  for (int i = 0; i < N; i += 1) {
    float dead = a[i] * 99.0;
    s = s + a[i];
  }
  return s;
}
)",
                                   "t");
  ir::Function& fn = *m.find("kernel");
  transform::constant_fold(fn);
  transform::dead_code_elim(fn);
  ir::verify(fn);
  ASSERT_EQ(fn.loops.size(), 1u);
  // The induction slot must still point at an Alloca after renumbering.
  EXPECT_EQ(fn.instr(fn.loops[0].induction_slot).op, ir::Opcode::Alloca);
  profiler::NullObserver obs;
  std::vector<ArgInit> args = {ArgInit::of_array(8, 3)};
  EXPECT_GT(profiler::run(m, "kernel", args, obs).return_value.f, 0.0);
}

TEST(Transform, VariantsChangeTheInstructionMix) {
  // The whole point of the six pipelines: same semantics, different token
  // streams for the dataset.
  ir::Module base = frontend::compile(kProgram, "t0");
  ir::Module opt = frontend::compile(kProgram, "t1");
  transform::run_pipeline(opt, transform::variant_pipelines().back());
  EXPECT_LT(opt.find("kernel")->num_instrs(),
            base.find("kernel")->num_instrs());
}

}  // namespace

namespace inline_unroll_tests {

using namespace mvgnn;
using profiler::ArgInit;

TEST(Inline, LeafCallsDisappearAndSemanticsHold) {
  const char* src = R"(
const int N = 12;
float helper(float x, float y) {
  float t = x * 2.0;
  return t + y;
}
float kernel(float[] a) {
  float s = 0.0;
  for (int i = 0; i < N; i += 1) {
    s = s + helper(a[i], 1.5);
  }
  return s;
}
)";
  const std::vector<ArgInit> args = {ArgInit::of_array(12, 3)};
  profiler::NullObserver obs;
  ir::Module base = frontend::compile(src, "base");
  const double reference =
      profiler::run(base, "kernel", args, obs).return_value.f;

  ir::Module m = frontend::compile(src, "inl");
  EXPECT_EQ(transform::inline_functions(m), 1u);
  ir::verify(m);
  // No user calls remain in kernel.
  for (const auto& bb : m.find("kernel")->blocks) {
    for (const auto id : bb.instrs) {
      const auto& in = m.find("kernel")->instr(id);
      EXPECT_FALSE(in.op == ir::Opcode::Call && in.callee == "helper");
    }
  }
  EXPECT_DOUBLE_EQ(profiler::run(m, "kernel", args, obs).return_value.f,
                   reference);
  // The inlined body's instructions belong to the surrounding loop, so the
  // dependence analysis now sees them directly.
  const auto prof = profiler::profile(m, "kernel", args);
  EXPECT_EQ(prof.loops.size(), 1u);
}

TEST(Inline, BranchyCalleesAndVoidCallees) {
  const char* src = R"(
void mark(float[] out, float v) {
  if (v > 1.0) {
    out[0] = v;
  } else {
    out[1] = v;
  }
}
float clampit(float x) {
  if (x > 0.5) {
    return 0.5;
  }
  return x;
}
float kernel(float[] out) {
  mark(out, 2.5);
  mark(out, 0.5);
  return clampit(0.7) + clampit(0.2) + out[0] + out[1];
}
)";
  const std::vector<ArgInit> args = {ArgInit::of_array(4)};
  profiler::NullObserver obs;
  ir::Module base = frontend::compile(src, "base");
  const double reference =
      profiler::run(base, "kernel", args, obs).return_value.f;
  ir::Module m = frontend::compile(src, "inl");
  EXPECT_EQ(transform::inline_functions(m), 4u);
  ir::verify(m);
  EXPECT_DOUBLE_EQ(profiler::run(m, "kernel", args, obs).return_value.f,
                   reference);
}

TEST(Inline, RecursiveAndLoopyCalleesAreLeftAlone) {
  const char* src = R"(
int fib(int n) {
  if (n < 2) {
    return n;
  }
  return fib(n - 1) + fib(n - 2);
}
float sum3(float[] a) {
  float s = 0.0;
  for (int i = 0; i < 3; i += 1) {
    s = s + a[i];
  }
  return s;
}
float kernel(float[] a) {
  return (float) fib(8) + sum3(a);
}
)";
  ir::Module m = frontend::compile(src, "t");
  EXPECT_EQ(transform::inline_functions(m), 0u);
}

TEST(Unroll, TinyConstantLoopsBecomeStraightLine) {
  const char* src = R"(
float kernel(float[] a) {
  float s = 0.0;
  for (int i = 0; i < 4; i += 1) {
    s = s + a[i] * 2.0;
  }
  return s;
}
)";
  const std::vector<ArgInit> args = {ArgInit::of_array(4, 9)};
  profiler::NullObserver obs;
  ir::Module base = frontend::compile(src, "base");
  const double reference =
      profiler::run(base, "kernel", args, obs).return_value.f;

  ir::Module m = frontend::compile(src, "unr");
  ir::Function& fn = *m.find("kernel");
  EXPECT_EQ(transform::unroll_loops(fn, 4), 1u);
  EXPECT_TRUE(fn.loops.empty());
  // No loop markers survive.
  for (const auto& in : fn.instrs) {
    EXPECT_NE(in.op, ir::Opcode::LoopEnter);
    EXPECT_NE(in.op, ir::Opcode::LoopHead);
    EXPECT_NE(in.op, ir::Opcode::LoopExit);
  }
  EXPECT_DOUBLE_EQ(profiler::run(m, "kernel", args, obs).return_value.f,
                   reference);
}

TEST(Unroll, OnlyInnermostTinyLoopsAreTouched) {
  const char* src = R"(
const int N = 16;
float kernel(float[] a) {
  float s = 0.0;
  for (int i = 0; i < N; i += 1) {
    for (int j = 0; j < 3; j += 1) {
      s = s + a[i] * (float) j;
    }
  }
  return s;
}
)";
  const std::vector<ArgInit> args = {ArgInit::of_array(16, 2)};
  profiler::NullObserver obs;
  ir::Module base = frontend::compile(src, "base");
  const double reference =
      profiler::run(base, "kernel", args, obs).return_value.f;

  ir::Module m = frontend::compile(src, "unr");
  ir::Function& fn = *m.find("kernel");
  EXPECT_EQ(transform::unroll_loops(fn, 4), 1u);
  ASSERT_EQ(fn.loops.size(), 1u);  // the outer loop survives, renumbered
  EXPECT_EQ(fn.loops[0].id, 0u);
  EXPECT_TRUE(fn.loops[0].is_for);
  EXPECT_DOUBLE_EQ(profiler::run(m, "kernel", args, obs).return_value.f,
                   reference);
  // The unrolled instructions are attributed to the surviving outer loop.
  const auto prof = profiler::profile(m, "kernel", args);
  EXPECT_EQ(prof.loops.size(), 1u);
  EXPECT_EQ(prof.loops[0].features.exec_times, 16u);
}

TEST(Unroll, LoopsWithBranchesOrBigTripsAreSkipped) {
  const char* src = R"(
const int N = 64;
float kernel(float[] a) {
  float s = 0.0;
  for (int i = 0; i < N; i += 1) {
    s = s + a[i];
  }
  for (int i = 0; i < 4; i += 1) {
    if (a[i] > 1.0) {
      s = s + 1.0;
    }
  }
  return s;
}
)";
  ir::Module m = frontend::compile(src, "t");
  // Big trip count and a branchy body: neither qualifies.
  EXPECT_EQ(transform::unroll_loops(*m.find("kernel"), 4), 0u);
}

TEST(InlineUnroll, FullPipelinePreservesKernelSemantics) {
  const char* src = R"(
const int N = 16;
float weight(float x) {
  return x * 0.25 + 0.5;
}
float kernel(float[] a, float[] b) {
  float s = 0.0;
  for (int i = 0; i < N; i += 1) {
    for (int j = 0; j < 2; j += 1) {
      s = s + weight(a[i]) * b[i];
    }
  }
  return s;
}
)";
  const std::vector<ArgInit> args = {ArgInit::of_array(16, 1),
                                     ArgInit::of_array(16, 2)};
  profiler::NullObserver obs;
  ir::Module base = frontend::compile(src, "base");
  const double reference =
      profiler::run(base, "kernel", args, obs).return_value.f;
  ir::Module m = frontend::compile(src, "opt");
  transform::run_pipeline(m, transform::variant_pipelines().back());
  EXPECT_NEAR(profiler::run(m, "kernel", args, obs).return_value.f, reference,
              1e-9);
}

}  // namespace inline_unroll_tests

// ---------------------------------------------------------------------------
// Parallelize pass: plan + execute + prove equivalent, over the full
// generator corpus (the fuzz surface: every kernel family, rng-varied).
// ---------------------------------------------------------------------------
namespace parallelize_tests {

using namespace mvgnn;
using profiler::ArgInit;

struct PlannedRun {
  transform::ParallelPlanResult plan;
  profiler::ProfileResult prof;
};

PlannedRun plan_of(const ir::Module& m,
                   std::span<const ArgInit> args) {
  PlannedRun out{.plan = {}, .prof = profiler::profile(m, "kernel", args)};
  const auto suggestions = analysis::suggest_openmp(m, out.prof);
  out.plan = transform::plan_parallel(m, "kernel", suggestions, out.prof);
  return out;
}

TEST(Parallelize, GeneratorCorpusEquivalentAtEveryThreadCount) {
  using data::Pattern;
  const Pattern kAll[] = {
      Pattern::VecMap,         Pattern::VecScaleInPlace,
      Pattern::Saxpy,          Pattern::StencilCopy,
      Pattern::ReduceSum,      Pattern::ReduceMax,
      Pattern::DotProduct,     Pattern::PrivTemp,
      Pattern::PrivArrayTemp,  Pattern::Recurrence,
      Pattern::ScalarCarried,  Pattern::CondUpdateMax,
      Pattern::EarlyExit,      Pattern::CallMapPure,
      Pattern::CallAccumShared, Pattern::IndirectGather,
      Pattern::IndirectHistogram, Pattern::IndirectScatter,
      Pattern::DisjointCopy,   Pattern::MatMulNest,
      Pattern::Jacobi2D,       Pattern::Seidel2D,
      Pattern::TriangularUpdate, Pattern::ArrayAccumNest,
      Pattern::ColdPath,       Pattern::WhileWrapped,
      Pattern::FibDriver,      Pattern::NQueensStyle,
      Pattern::ChecksumOnly,   Pattern::OffsetStencil,
      Pattern::OffsetRecurrence, Pattern::ParamOffset,
      Pattern::SpMV,           Pattern::Transpose,
      Pattern::SeparableStencil, Pattern::Pipeline3,
      Pattern::Timestepped,
  };
  par::Rng rng(2026);
  std::size_t planned_total = 0;
  for (const Pattern p : kAll) {
    for (int variant = 0; variant < 2; ++variant) {
      const std::string name = std::string(data::pattern_name(p)) + "_v" +
                               std::to_string(variant);
      const data::GenKernel k = data::generate_kernel(p, name, rng);
      const ir::Module m = frontend::compile(k.source, name);
      PlannedRun pr;
      ASSERT_NO_THROW(pr = plan_of(m, k.args)) << name;
      planned_total += pr.plan.planned_loops();
      for (const std::uint32_t threads : {1u, 2u, 8u}) {
        const auto rep = transform::run_equivalence(m, "kernel", k.args,
                                                    pr.plan.plan, threads);
        ASSERT_TRUE(rep.ran) << name << " t=" << threads << ": " << rep.detail;
        EXPECT_TRUE(rep.equal) << name << " t=" << threads << ": "
                               << rep.detail;
      }
    }
  }
  // The corpus must actually exercise the pass: a planner that refuses
  // everything would vacuously "pass" the equivalence checks.
  EXPECT_GE(planned_total, 20u);
}

TEST(Parallelize, OutputsBitIdenticalAcrossThreadCounts) {
  // Stronger than run_equivalence: the *parallel* outputs (including
  // re-associated float reductions) must match bit-for-bit between every
  // worker-thread count — the fixed shard count + fixed merge order at work.
  using data::Pattern;
  par::Rng rng(7);
  for (const Pattern p : {Pattern::DotProduct, Pattern::IndirectHistogram,
                          Pattern::MatMulNest, Pattern::Jacobi2D}) {
    const std::string name = data::pattern_name(p);
    const data::GenKernel k = data::generate_kernel(p, name, rng);
    const ir::Module m = frontend::compile(k.source, name);
    const PlannedRun pr = plan_of(m, k.args);
    ASSERT_GE(pr.plan.planned_loops(), 1u) << name;

    std::vector<profiler::ParOutput> outs;
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
      profiler::ParRunOptions opts;
      opts.threads = threads;
      outs.push_back(
          profiler::run_parallel(m, "kernel", k.args, pr.plan.plan, opts));
    }
    for (std::size_t t = 1; t < outs.size(); ++t) {
      ASSERT_EQ(outs[t].arg_arrays.size(), outs[0].arg_arrays.size());
      for (std::size_t a = 0; a < outs[0].arg_arrays.size(); ++a) {
        const auto& x = outs[0].arg_arrays[a];
        const auto& y = outs[t].arg_arrays[a];
        ASSERT_EQ(x.size(), y.size()) << name;
        for (std::size_t i = 0; i < x.size(); ++i) {
          EXPECT_EQ(x[i].i, y[i].i) << name << " arg " << a << "[" << i << "]";
          EXPECT_EQ(std::bit_cast<std::uint64_t>(x[i].f),
                    std::bit_cast<std::uint64_t>(y[i].f))
              << name << " arg " << a << "[" << i << "]";
        }
      }
      EXPECT_EQ(outs[t].run.return_value.i, outs[0].run.return_value.i);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(outs[t].run.return_value.f),
                std::bit_cast<std::uint64_t>(outs[0].run.return_value.f));
    }
  }
}

TEST(Parallelize, MislabeledLoopIsRefusedNotMiscompiled) {
  // Force a DOALL label onto a genuine recurrence: the planner must refuse
  // it (the dependence profile is the authority), never emit a plan.
  const char* src = R"(
const int N = 64;
float kernel(float[] a) {
  for (int i = 1; i < N; i += 1) {
    a[i] = a[i - 1] * 0.5 + 1.0;
  }
  return a[N - 1];
}
)";
  const ir::Module m = frontend::compile(src, "recur");
  const std::vector<ArgInit> args = {ArgInit::of_array(64, 1)};
  const auto prof = profiler::profile(m, "kernel", args);

  analysis::Suggestion forced;
  forced.fn = m.find("kernel");
  forced.loop = 0;
  forced.kind = analysis::ParKind::DoAll;  // the lie
  forced.pragma = "#pragma omp parallel for";
  const auto result =
      transform::plan_parallel(m, "kernel", {forced}, prof);
  ASSERT_EQ(result.decisions.size(), 1u);
  EXPECT_FALSE(result.decisions[0].planned);
  EXPECT_FALSE(result.decisions[0].reason.empty());
  EXPECT_TRUE(result.plan.empty());

  // And an empty plan runs the program unchanged.
  const auto rep = transform::run_equivalence(m, "kernel", args,
                                              result.plan, 8);
  ASSERT_TRUE(rep.ran) << rep.detail;
  EXPECT_TRUE(rep.equal) << rep.detail;
  EXPECT_EQ(rep.parallel_loops, 0u);
}

TEST(Parallelize, AnnotateInsertsPragmaAboveLoop) {
  const char* src = R"(const int N = 32;
float kernel(float[] a) {
  float s = 0.0;
  for (int i = 0; i < N; i += 1) {
    s = s + a[i];
  }
  return s;
}
)";
  const ir::Module m = frontend::compile(src, "sum");
  const std::vector<ArgInit> args = {ArgInit::of_array(32, 1)};
  const auto prof = profiler::profile(m, "kernel", args);
  const auto suggestions = analysis::suggest_openmp(m, prof);
  const auto result = transform::plan_parallel(m, "kernel", suggestions, prof);
  ASSERT_EQ(result.planned_loops(), 1u);
  const std::string annotated = transform::annotate_source(src, result);
  const auto pragma_at = annotated.find("#pragma omp parallel for");
  const auto loop_at = annotated.find("for (int i");
  ASSERT_NE(pragma_at, std::string::npos);
  ASSERT_NE(loop_at, std::string::npos);
  EXPECT_LT(pragma_at, loop_at);
  EXPECT_NE(annotated.find("reduction(+:s)"), std::string::npos);
}

}  // namespace parallelize_tests
