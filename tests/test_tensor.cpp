// Autograd correctness: every op's analytic gradient is compared against a
// central-difference numerical gradient, plus shape/validation and
// optimizer behaviour tests.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/optim.hpp"

namespace {

using namespace mvgnn;
using ag::Shape;
using ag::Tensor;

/// Central-difference gradient check: builds the graph via `fn` (a scalar
/// function of `inputs`), backprops, and compares input gradients against
/// numerical estimates.
void gradcheck(const std::vector<Tensor>& inputs,
               const std::function<Tensor()>& fn, float eps = 1e-3f,
               float tol = 2e-2f) {
  Tensor out = fn();
  ASSERT_EQ(out.numel(), 1u) << "gradcheck needs a scalar objective";
  for (const Tensor& t : inputs) {
    const_cast<Tensor&>(t).zero_grad();
  }
  out.backward();

  for (std::size_t ti = 0; ti < inputs.size(); ++ti) {
    Tensor t = inputs[ti];
    const std::vector<float> analytic = t.grad();
    for (std::size_t k = 0; k < t.numel(); ++k) {
      const float orig = t.data()[k];
      t.data()[k] = orig + eps;
      const float up = fn().item();
      t.data()[k] = orig - eps;
      const float down = fn().item();
      t.data()[k] = orig;
      const float numeric = (up - down) / (2.0f * eps);
      EXPECT_NEAR(analytic[k], numeric, tol)
          << "input " << ti << " element " << k;
    }
  }
}

Tensor make(Shape s, std::uint64_t seed) {
  par::Rng rng(seed);
  return Tensor::randn(s, rng, 0.7f, /*requires_grad=*/true);
}

TEST(Autograd, MatmulGradients) {
  Tensor a = make({3, 4}, 1), b = make({4, 2}, 2);
  gradcheck({a, b}, [&] { return ag::sum(ag::matmul(a, b)); });
}

TEST(Autograd, MatmulShapeMismatchThrows) {
  Tensor a = make({3, 4}, 1), b = make({3, 2}, 2);
  EXPECT_THROW((void)ag::matmul(a, b), ag::TensorError);
}

TEST(Autograd, AddSubMulGradients) {
  Tensor a = make({2, 3}, 3), b = make({2, 3}, 4);
  gradcheck({a, b}, [&] { return ag::sum(ag::add(a, b)); });
  gradcheck({a, b}, [&] { return ag::sum(ag::sub(a, b)); });
  gradcheck({a, b}, [&] { return ag::sum(ag::mul(a, b)); });
}

TEST(Autograd, BiasBroadcastGradients) {
  Tensor a = make({4, 3}, 5), bias = make({1, 3}, 6);
  gradcheck({a, bias}, [&] { return ag::sum(ag::add(a, bias)); });
}

TEST(Autograd, UnaryGradients) {
  Tensor a = make({2, 5}, 7);
  gradcheck({a}, [&] { return ag::sum(ag::tanh_t(a)); });
  gradcheck({a}, [&] { return ag::sum(ag::sigmoid(a)); });
  gradcheck({a}, [&] { return ag::sum(ag::exp_t(a)); });
  gradcheck({a}, [&] { return ag::sum(ag::scale(a, -1.7f)); });
}

TEST(Autograd, ReluGradientAwayFromKink) {
  // Shift inputs away from 0 so the finite difference is well-defined.
  Tensor a = make({3, 3}, 8);
  for (std::size_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(a.data()[i]) < 0.05f) a.data()[i] = 0.3f;
  }
  gradcheck({a}, [&] { return ag::sum(ag::relu(a)); });
}

TEST(Autograd, ReductionGradients) {
  Tensor a = make({3, 4}, 9);
  gradcheck({a}, [&] { return ag::mean(a); });
  gradcheck({a}, [&] { return ag::sum(ag::mean_rows(a)); });
}

TEST(Autograd, MaxRowsGradient) {
  Tensor a = make({4, 3}, 10);
  gradcheck({a}, [&] { return ag::sum(ag::max_rows(a)); });
}

TEST(Autograd, ShapeOpsGradients) {
  Tensor a = make({2, 6}, 11), b = make({2, 3}, 12);
  gradcheck({a}, [&] { return ag::sum(ag::reshape(a, {3, 4})); });
  gradcheck({a}, [&] { return ag::sum(ag::transpose(a)); });
  gradcheck({a, b}, [&] { return ag::sum(ag::concat_cols(a, b)); });
  Tensor c = make({3, 6}, 13);
  gradcheck({a, c}, [&] { return ag::sum(ag::concat_rows(a, c)); });
  gradcheck({a}, [&] { return ag::sum(ag::slice_rows(a, 0, 1)); });
  gradcheck({a}, [&] { return ag::sum(ag::slice_cols(a, 2, 5)); });
}

TEST(Autograd, GatherRowsAccumulatesRepeats) {
  Tensor a = make({3, 2}, 14);
  gradcheck({a}, [&] {
    return ag::sum(ag::gather_rows(a, {0, 2, 0, 0}));
  });
  // Row 0 gathered three times -> its gradient must be 3x.
  a.zero_grad();
  Tensor s = ag::sum(ag::gather_rows(a, {0, 2, 0, 0}));
  s.backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 3.0f);
  EXPECT_FLOAT_EQ(a.grad()[2 * 2], 1.0f);
  EXPECT_FLOAT_EQ(a.grad()[1 * 2], 0.0f);
}

TEST(Autograd, SoftmaxRowsSumsToOneAndGradChecks) {
  Tensor a = make({2, 4}, 15);
  Tensor sm = ag::softmax_rows(a);
  for (std::size_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 4; ++c) sum += sm.at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  // Use a weighted sum so the softmax gradient is non-trivial.
  Tensor w = make({4, 1}, 16);
  w.set_requires_grad(false);
  gradcheck({a}, [&] { return ag::sum(ag::matmul(ag::softmax_rows(a), w)); });
}

TEST(Autograd, CrossEntropyGradients) {
  Tensor logits = make({3, 2}, 17);
  const std::vector<int> labels = {0, 1, 1};
  gradcheck({logits}, [&] {
    return ag::cross_entropy_logits(logits, labels);
  });
  // Loss decreases as the correct logit grows.
  const float before = ag::cross_entropy_logits(logits, labels).item();
  logits.data()[0 * 2 + 0] += 2.0f;
  const float after = ag::cross_entropy_logits(logits, labels).item();
  EXPECT_LT(after, before);
}

TEST(Autograd, SortPoolGradientsAndPadding) {
  Tensor a = make({5, 3}, 18);
  gradcheck({a}, [&] { return ag::sum(ag::sort_pool(a, 3)); });
  // Padding case: k > n leaves zero rows.
  Tensor sp = ag::sort_pool(a, 8);
  EXPECT_EQ(sp.rows(), 8u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(sp.at(7, c), 0.0f);
  }
  // Sorted descending on the last channel.
  for (std::size_t r = 0; r + 1 < 5; ++r) {
    EXPECT_GE(sp.at(r, 2), sp.at(r + 1, 2));
  }
  gradcheck({a}, [&] { return ag::sum(ag::sort_pool(a, 8)); });
}

TEST(Sparse, FromCooSumsDuplicatesAndOrders) {
  // Entries out of order, one duplicate (1,2) that must sum.
  const auto m = ag::CsrMatrix::from_coo(3, 4, {1, 0, 1, 2, 1}, {2, 3, 0, 1, 2},
                                         {1.0f, 2.0f, 3.0f, 4.0f, 5.0f});
  EXPECT_EQ(m.nnz(), 4u);
  const Tensor d = m.to_dense();
  EXPECT_FLOAT_EQ(d.at(1, 2), 6.0f);
  EXPECT_FLOAT_EQ(d.at(0, 3), 2.0f);
  EXPECT_FLOAT_EQ(d.at(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(d.at(2, 1), 4.0f);
  // Round trip through from_dense preserves the matrix.
  const auto m2 = ag::CsrMatrix::from_dense(d);
  EXPECT_EQ(m2.nnz(), 4u);
  const Tensor d2 = m2.to_dense();
  for (std::size_t i = 0; i < d.numel(); ++i) {
    EXPECT_FLOAT_EQ(d2.data()[i], d.data()[i]);
  }
}

TEST(Sparse, TransposeAndBlockDiag) {
  const auto m = ag::CsrMatrix::from_coo(2, 3, {0, 1, 1}, {2, 0, 1},
                                         {1.0f, 2.0f, 3.0f});
  const Tensor t = m.transposed().to_dense();
  const Tensor d = m.to_dense();
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(t.at(j, i), d.at(i, j));
    }
  }
  const auto bd = ag::CsrMatrix::block_diag({&m, &m});
  EXPECT_EQ(bd.rows(), 4u);
  EXPECT_EQ(bd.cols(), 6u);
  EXPECT_EQ(bd.nnz(), 6u);
  const Tensor b = bd.to_dense();
  EXPECT_FLOAT_EQ(b.at(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(b.at(2, 5), 1.0f);  // second block shifted by (2, 3)
  EXPECT_FLOAT_EQ(b.at(3, 3), 2.0f);
  EXPECT_FLOAT_EQ(b.at(0, 5), 0.0f);  // off-diagonal block stays empty
}

TEST(Sparse, SpmmMatchesDenseMatmulValuesAndGradients) {
  // Sparse adjacency vs its dense materialization: forward values and input
  // gradients must agree to 1e-5 through an identical downstream graph.
  const auto a = ag::CsrMatrix::from_coo(
      4, 4, {0, 0, 1, 2, 3, 3}, {1, 3, 2, 0, 1, 2},
      {0.5f, 0.5f, 1.0f, 1.0f, 0.25f, 0.75f});
  const Tensor ad = a.to_dense();
  Tensor xs = make({4, 3}, 40);
  Tensor xd = make({4, 3}, 40);  // same seed -> same values
  Tensor ys = ag::sum(ag::tanh_t(ag::spmm(a, xs)));
  Tensor yd = ag::sum(ag::tanh_t(ag::matmul(ad, xd)));
  EXPECT_NEAR(ys.item(), yd.item(), 1e-5f);
  xs.zero_grad();
  xd.zero_grad();
  ys.backward();
  yd.backward();
  for (std::size_t k = 0; k < xs.numel(); ++k) {
    EXPECT_NEAR(xs.grad()[k], xd.grad()[k], 1e-5f) << "element " << k;
  }
}

TEST(Sparse, SpmmGradcheckAndShapeValidation) {
  const auto a = ag::CsrMatrix::from_coo(3, 3, {0, 1, 2, 2}, {1, 0, 0, 2},
                                         {1.0f, 0.5f, 0.25f, 0.75f});
  Tensor x = make({3, 2}, 41);
  gradcheck({x}, [&] { return ag::sum(ag::tanh_t(ag::spmm(a, x))); });
  Tensor bad = make({4, 2}, 42);
  EXPECT_THROW((void)ag::spmm(a, bad), ag::TensorError);
}

TEST(Autograd, SortPoolSegmentsPoolsEachGraphIndependently) {
  // Segments: rows [0,2) and [2,5). Segment-aware pooling must equal the
  // two per-segment sort_pool results stacked.
  Tensor a = make({5, 3}, 43);
  const std::vector<std::uint32_t> offsets = {0, 2, 5};
  Tensor seg = ag::sort_pool_segments(a, 3, offsets);
  EXPECT_EQ(seg.rows(), 6u);
  Tensor top = ag::sort_pool(ag::slice_rows(a, 0, 2), 3);
  Tensor bot = ag::sort_pool(ag::slice_rows(a, 2, 5), 3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(seg.at(r, c), top.at(r, c));
      EXPECT_FLOAT_EQ(seg.at(3 + r, c), bot.at(r, c));
    }
  }
  gradcheck({a}, [&] { return ag::sum(ag::sort_pool_segments(a, 3, offsets)); });
  EXPECT_THROW((void)ag::sort_pool_segments(a, 3, {0, 2}), ag::TensorError);
}

TEST(Autograd, SegmentColsToRowsLayoutAndGradients) {
  // x[2, 6]; segments of width 2 at columns 0 and 4; column 2-3 is skipped
  // and must get zero gradient.
  Tensor x = make({2, 6}, 44);
  const std::vector<std::uint32_t> starts = {0, 4};
  Tensor r = ag::segment_cols_to_rows(x, starts, 2);
  EXPECT_EQ(r.rows(), 2u);
  EXPECT_EQ(r.cols(), 4u);
  // Row b flattens channels-major: [x(0,s), x(0,s+1), x(1,s), x(1,s+1)].
  EXPECT_FLOAT_EQ(r.at(0, 0), x.at(0, 0));
  EXPECT_FLOAT_EQ(r.at(0, 1), x.at(0, 1));
  EXPECT_FLOAT_EQ(r.at(0, 2), x.at(1, 0));
  EXPECT_FLOAT_EQ(r.at(1, 0), x.at(0, 4));
  EXPECT_FLOAT_EQ(r.at(1, 3), x.at(1, 5));
  gradcheck({x}, [&] {
    return ag::sum(ag::tanh_t(ag::segment_cols_to_rows(x, starts, 2)));
  });
  x.zero_grad();
  ag::Tensor s = ag::sum(ag::segment_cols_to_rows(x, starts, 2));
  s.backward();
  EXPECT_FLOAT_EQ(x.grad()[2], 0.0f);  // skipped column
  EXPECT_FLOAT_EQ(x.grad()[3], 0.0f);
  EXPECT_THROW((void)ag::segment_cols_to_rows(x, {5}, 2), ag::TensorError);
}

TEST(Autograd, Conv1dGradientsAndShape) {
  Tensor x = make({2, 9}, 19);           // 2 channels, length 9
  Tensor w = make({3, 2 * 3}, 20);       // 3 out-channels, kernel 3
  Tensor b = make({1, 3}, 21);
  Tensor y = ag::conv1d(x, w, b, 3, 2);  // stride 2 -> length (9-3)/2+1 = 4
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_EQ(y.cols(), 4u);
  gradcheck({x, w, b}, [&] { return ag::sum(ag::conv1d(x, w, b, 3, 2)); });
}

TEST(Autograd, Conv1dSegmentsMatchesPerSegmentConv) {
  // Two width-6 segments of a [2, 12] input, kernel 3, stride 1: the
  // segmented conv must equal running conv1d on each column slice, with no
  // outputs for windows that would straddle the segment boundary.
  Tensor x = make({2, 12}, 23);
  Tensor w = make({3, 2 * 3}, 24);
  Tensor b = make({1, 3}, 25);
  const std::vector<std::uint32_t> starts = {0, 6};
  Tensor seg = ag::conv1d_segments(x, w, b, 3, 1, starts, 6);
  EXPECT_EQ(seg.rows(), 3u);
  EXPECT_EQ(seg.cols(), 8u);  // 2 segments * ((6-3)/1+1)
  Tensor left = ag::conv1d(ag::slice_cols(x, 0, 6), w, b, 3, 1);
  Tensor right = ag::conv1d(ag::slice_cols(x, 6, 12), w, b, 3, 1);
  for (std::size_t o = 0; o < 3; ++o) {
    for (std::size_t t = 0; t < 4; ++t) {
      EXPECT_FLOAT_EQ(seg.at(o, t), left.at(o, t));
      EXPECT_FLOAT_EQ(seg.at(o, 4 + t), right.at(o, t));
    }
  }
  gradcheck({x, w, b}, [&] {
    return ag::sum(ag::conv1d_segments(x, w, b, 3, 1, starts, 6));
  });
  // A segment that runs past the end of the input must be rejected.
  EXPECT_THROW((void)ag::conv1d_segments(x, w, b, 3, 1, {8}, 6),
               ag::TensorError);
  EXPECT_THROW((void)ag::conv1d_segments(x, w, b, 3, 1, {}, 6),
               ag::TensorError);
}

TEST(Autograd, Maxpool1dGradients) {
  Tensor x = make({2, 8}, 22);
  Tensor y = ag::maxpool1d(x, 2);
  EXPECT_EQ(y.cols(), 4u);
  gradcheck({x}, [&] { return ag::sum(ag::maxpool1d(x, 2)); });
}

TEST(Autograd, DropoutInvertedScalingAndEvalIdentity) {
  par::Rng rng(5);
  Tensor a = Tensor::full({1, 1000}, 1.0f, true);
  Tensor d = ag::dropout(a, 0.4f, /*training=*/true, rng);
  double mean = 0.0;
  for (std::size_t i = 0; i < d.numel(); ++i) mean += d.data()[i];
  mean /= static_cast<double>(d.numel());
  EXPECT_NEAR(mean, 1.0, 0.1);  // inverted dropout preserves expectation
  Tensor e = ag::dropout(a, 0.4f, /*training=*/false, rng);
  EXPECT_EQ(e.node().get(), a.node().get());  // identity when not training
}

TEST(Autograd, BackwardRequiresScalar) {
  Tensor a = make({2, 2}, 23);
  EXPECT_THROW(a.backward(), ag::TensorError);
}

TEST(Autograd, GradDoesNotFlowIntoConstInputs) {
  Tensor a = make({2, 2}, 24);
  Tensor c = Tensor::full({2, 2}, 3.0f, /*requires_grad=*/false);
  Tensor s = ag::sum(ag::mul(a, c));
  s.backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 3.0f);
  EXPECT_TRUE(c.grad().empty() ||
              std::all_of(c.grad().begin(), c.grad().end(),
                          [](float g) { return g == 0.0f; }));
}

// ---------------------------------------------------------------------------
// GEMM kernel
// ---------------------------------------------------------------------------

TEST(Gemm, MatchesNaiveReferenceIncludingTransposes) {
  par::Rng rng(7);
  const std::size_t m = 17, k = 9, n = 13;
  std::vector<float> a(m * k), b(k * n), at(k * m), bt(n * k);
  for (auto* v : {&a, &b}) {
    for (float& x : *v) x = static_cast<float>(rng.normal());
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) at[p * m + i] = a[i * k + p];
  }
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t j = 0; j < n; ++j) bt[j * k + p] = b[p * n + j];
  }
  std::vector<float> ref(m * n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t j = 0; j < n; ++j) {
        ref[i * n + j] += a[i * k + p] * b[p * n + j];
      }
    }
  }
  std::vector<float> c(m * n);
  tensor::gemm(a.data(), b.data(), c.data(), m, k, n);
  for (std::size_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);

  tensor::gemm(at.data(), b.data(), c.data(), m, k, n, true, false);
  for (std::size_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);

  tensor::gemm(a.data(), bt.data(), c.data(), m, k, n, false, true);
  for (std::size_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);

  // accumulate=true adds on top.
  tensor::gemm(a.data(), b.data(), c.data(), m, k, n, false, false, true);
  for (std::size_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], 2 * ref[i], 1e-3f);
}

// ---------------------------------------------------------------------------
// Optimizers
// ---------------------------------------------------------------------------

TEST(Optim, SgdAndAdamMinimizeQuadratic) {
  for (const bool use_adam : {false, true}) {
    Tensor x = Tensor::from_data({1, 2}, {4.0f, -3.0f}, true);
    std::unique_ptr<ag::Optimizer> opt;
    if (use_adam) {
      opt = std::make_unique<ag::Adam>(0.1f);
    } else {
      opt = std::make_unique<ag::Sgd>(0.1f);
    }
    opt->add_param(x);
    for (int step = 0; step < 200; ++step) {
      Tensor loss = ag::sum(ag::mul(x, x));
      opt->zero_grad();
      loss.backward();
      opt->step();
    }
    EXPECT_NEAR(x.data()[0], 0.0f, 0.05f) << (use_adam ? "adam" : "sgd");
    EXPECT_NEAR(x.data()[1], 0.0f, 0.05f);
  }
}

TEST(Optim, GradientClippingBoundsGlobalNorm) {
  Tensor x = Tensor::from_data({1, 2}, {100.0f, 0.0f}, true);
  ag::Sgd opt(1.0f);
  opt.add_param(x);
  Tensor loss = ag::sum(ag::mul(x, x));  // grad = 2x = (200, 0)
  opt.zero_grad();
  loss.backward();
  opt.clip_gradients(1.0f);
  double norm = 0.0;
  for (const float g : x.grad()) norm += g * g;
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
}

}  // namespace
