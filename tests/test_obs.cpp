// Observability layer: metrics registry, scoped-span tracing, structured
// logging, and the thread pool's use of all three.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace mvgnn;

// ---------------------------------------------------------------------------
// A minimal JSON well-formedness checker (no values retained). Enough to
// prove the exported documents parse; structural asserts go through the
// recorder/registry APIs directly.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    for (++pos_; pos_ < s_.size(); ++pos_) {
      if (s_[pos_] == '\\') {
        ++pos_;
      } else if (s_[pos_] == '"') {
        ++pos_;
        return true;
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      digits |= std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0;
      ++pos_;
    }
    return digits && pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool expect(char c) { return peek(c); }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(ObsMetrics, CounterConcurrentIncrementsFromThreadPool) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("test.concurrent_total");
  par::ThreadPool pool(4);
  constexpr int kTasks = 64;
  constexpr int kPerTask = 1000;
  for (int t = 0; t < kTasks; ++t) {
    pool.submit([&c] {
      for (int i = 0; i < kPerTask; ++i) c.add(1);
    });
  }
  pool.wait();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kTasks) * kPerTask);
}

TEST(ObsMetrics, RegistryInstancesAreIndependent) {
  obs::Registry a, b;
  a.counter("x").add(3);
  EXPECT_EQ(a.counter("x").value(), 3u);
  EXPECT_EQ(b.counter("x").value(), 0u);
  // Same name, same instrument within one registry.
  a.counter("x").add(1);
  EXPECT_EQ(a.counter("x").value(), 4u);
  EXPECT_EQ(a.size(), 1u);
}

TEST(ObsMetrics, GaugeLastWriteWins) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("test.gauge");
  g.set(2.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  obs::Histogram h({1.0, 2.0, 5.0});
  // Upper edges are inclusive; above the last edge goes to overflow.
  h.observe(0.5);
  h.observe(1.0);
  h.observe(1.5);
  h.observe(2.0);
  h.observe(3.0);
  h.observe(7.0);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);  // <= 1
  EXPECT_EQ(counts[1], 2u);  // (1, 2]
  EXPECT_EQ(counts[2], 1u);  // (2, 5]
  EXPECT_EQ(counts[3], 1u);  // > 5
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 7.0);
}

TEST(ObsMetrics, HistogramPercentiles) {
  obs::Histogram h({1.0, 2.0, 5.0});
  for (const double v : {0.5, 0.9, 1.5, 1.6, 3.0, 7.0}) h.observe(v);
  // rank(p50) = 3 of 6 -> second bucket (cum 2 -> 4), midway: 1 + 0.5 = 1.5.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 1.5);
  // Everything above the last finite edge clamps to it.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(obs::Histogram({1.0}).percentile(0.5), 0.0);  // empty
}

TEST(ObsMetrics, ExponentialBoundsAre125Ladder) {
  const auto b = obs::Histogram::exponential_bounds(1.0, 1000.0);
  const std::vector<double> want = {1,  2,  5,  10,  20,  50,
                                    100, 200, 500, 1000};
  EXPECT_EQ(b, want);
}

/// Regression: lo<=0 used to yield an empty edge list (one useless
/// catch-all bucket) and a NaN/inf `hi` never terminated the ladder loop.
/// Degenerate inputs must clamp to a usable, finite, sorted layout.
TEST(ObsMetrics, ExponentialBoundsClampDegenerateInputs) {
  const auto check = [](const std::vector<double>& b) {
    ASSERT_FALSE(b.empty());
    EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
    for (const double v : b) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GT(v, 0.0);
    }
  };
  check(obs::Histogram::exponential_bounds(0.0, 100.0));    // lo == 0
  check(obs::Histogram::exponential_bounds(-5.0, 100.0));   // lo < 0
  check(obs::Histogram::exponential_bounds(10.0, 1.0));     // hi < lo
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  check(obs::Histogram::exponential_bounds(1.0, nan));      // must terminate
  check(obs::Histogram::exponential_bounds(1.0, inf));
  check(obs::Histogram::exponential_bounds(nan, nan));
  // The clamped ladders are still usable histogram layouts.
  obs::Histogram h(obs::Histogram::exponential_bounds(0.0, 0.0));
  h.observe(0.5);
  EXPECT_EQ(h.count(), 1u);
}

TEST(ObsMetrics, ExportsAreWellFormed) {
  obs::Registry reg;
  reg.counter("a.count_total").add(2);
  reg.gauge("b.value").set(0.5);
  reg.histogram("c.lat_us", {1.0, 10.0}).observe(3.0);
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"a.count_total\": 2"), std::string::npos);
  const std::string text = reg.to_text();
  EXPECT_NE(text.find("a.count_total 2"), std::string::npos);
  EXPECT_NE(text.find("c.lat_us{le=1} 0"), std::string::npos);
  EXPECT_NE(text.find("c.lat_us{le=10} 1"), std::string::npos);
  EXPECT_NE(text.find("c.lat_us_count 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

const obs::SpanEvent* find_span(const std::vector<obs::SpanEvent>& evs,
                                const char* name) {
  for (const auto& e : evs) {
    if (std::string(e.name) == name) return &e;
  }
  return nullptr;
}

TEST(ObsTrace, NestedSpanParentLinkage) {
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  rec.enable();
  {
    OBS_SPAN("t.outer");
    { OBS_SPAN("t.inner_a"); }
    {
      OBS_SPAN("t.inner_b");
      { OBS_SPAN("t.leaf"); }
    }
  }
  { OBS_SPAN("t.root2"); }
  rec.disable();

  const auto evs = rec.events();
  const auto* outer = find_span(evs, "t.outer");
  const auto* inner_a = find_span(evs, "t.inner_a");
  const auto* inner_b = find_span(evs, "t.inner_b");
  const auto* leaf = find_span(evs, "t.leaf");
  const auto* root2 = find_span(evs, "t.root2");
  ASSERT_TRUE(outer && inner_a && inner_b && leaf && root2);

  EXPECT_EQ(outer->parent, -1);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(root2->parent, -1);
  // All on one thread; parents are indices in begin order on that thread.
  EXPECT_EQ(inner_a->depth, 1);
  EXPECT_EQ(inner_b->depth, 1);
  EXPECT_EQ(leaf->depth, 2);
  // Begin order on this thread: outer=0, inner_a=1, inner_b=2, leaf=3.
  EXPECT_EQ(inner_a->parent, 0);
  EXPECT_EQ(inner_b->parent, 0);
  EXPECT_EQ(leaf->parent, 2);
  // Timestamps nest.
  EXPECT_GE(leaf->start_ns, inner_b->start_ns);
  EXPECT_LE(leaf->end_ns, inner_b->end_ns);
  EXPECT_GE(inner_b->start_ns, outer->start_ns);
  EXPECT_LE(inner_b->end_ns, outer->end_ns);
  rec.clear();
}

TEST(ObsTrace, DisabledRecordsNothing) {
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  rec.disable();
  { OBS_SPAN("t.should_not_appear"); }
  EXPECT_EQ(find_span(rec.events(), "t.should_not_appear"), nullptr);
}

TEST(ObsTrace, ChromeJsonIsWellFormed) {
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  rec.enable();
  {
    OBS_SPAN("t.json_outer");
    { OBS_SPAN("t.json \"quoted\\name\""); }  // exporter must escape this
  }
  rec.disable();
  const std::string json = rec.to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("t.json_outer"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\\name\\\""), std::string::npos);
  rec.clear();
}

// ---------------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------------

TEST(ObsLog, RenderMatchesLegacyPrintfTables) {
  const std::string line = obs::Logger::render(
      obs::LogLevel::Info, "",
      {{"epoch", obs::logfmt("%3zu", static_cast<std::size_t>(0))},
       {"loss", obs::logfmt("%.4f", 1.0986)},
       {"train_acc", obs::logfmt("%.4f", 0.3333)},
       {"test_acc", obs::logfmt("%.4f", 0.3333)}});
  EXPECT_EQ(line, "epoch   0  loss 1.0986  train_acc 0.3333  test_acc 0.3333");
  EXPECT_EQ(obs::Logger::render(obs::LogLevel::Warn, "careful", {}),
            "[warn] careful");
}

TEST(ObsLog, LevelFilteringAndSink) {
  obs::Logger log;
  std::vector<std::pair<obs::LogLevel, std::string>> captured;
  log.set_sink([&](obs::LogLevel lv, const std::string& line) {
    captured.emplace_back(lv, line);
  });
  log.set_level(obs::LogLevel::Warn);
  log.log(obs::LogLevel::Info, "dropped");
  log.log(obs::LogLevel::Error, "kept", {{"code", "7"}});
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].second, "[error] kept  code 7");
  EXPECT_FALSE(log.enabled(obs::LogLevel::Debug));
  EXPECT_TRUE(log.enabled(obs::LogLevel::Error));
}

TEST(ObsLog, ParseLevel) {
  EXPECT_EQ(obs::parse_log_level("warn"), obs::LogLevel::Warn);
  EXPECT_EQ(obs::parse_log_level("ERROR"), obs::LogLevel::Error);
  EXPECT_EQ(obs::parse_log_level("off"), obs::LogLevel::Off);
  EXPECT_EQ(obs::parse_log_level(nullptr), obs::LogLevel::Info);
  EXPECT_EQ(obs::parse_log_level("junk", obs::LogLevel::Debug),
            obs::LogLevel::Debug);
}

TEST(ObsLog, AsyncWriterDeliversEverythingInOrder) {
  obs::Logger log;
  std::mutex mu;
  std::vector<std::string> captured;
  log.set_sink([&](obs::LogLevel, const std::string& line) {
    std::lock_guard lock(mu);
    captured.push_back(line);
  });
  log.set_async(true);
  constexpr int kLines = 200;
  for (int i = 0; i < kLines; ++i) {
    log.log(obs::LogLevel::Info, "line " + std::to_string(i));
  }
  log.flush();
  log.set_async(false);
  ASSERT_EQ(captured.size(), static_cast<std::size_t>(kLines));
  for (int i = 0; i < kLines; ++i) {
    EXPECT_EQ(captured[static_cast<std::size_t>(i)],
              "line " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Thread pool integration: failures carry task context through the logger.
// ---------------------------------------------------------------------------

TEST(ObsThreadPool, TaskFailureLogsIndexAndRethrows) {
  std::mutex mu;
  std::vector<std::string> captured;
  obs::Logger::global().set_sink(
      [&](obs::LogLevel lv, const std::string& line) {
        if (lv == obs::LogLevel::Error) {
          std::lock_guard lock(mu);
          captured.push_back(line);
        }
      });

  par::ThreadPool pool(2);
  pool.submit([] {});  // task 0 is fine
  pool.submit([] { throw std::runtime_error("boom"); });  // task 1 fails
  EXPECT_THROW(pool.wait(), std::runtime_error);

  obs::Logger::global().set_sink(nullptr);  // restore default before asserting
  std::lock_guard lock(mu);
  bool found = false;
  for (const std::string& line : captured) {
    if (line.find("task failed") != std::string::npos &&
        line.find("task_index 1") != std::string::npos &&
        line.find("what boom") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "captured " << captured.size() << " error lines";
}

TEST(ObsThreadPool, TaskMetricsAdvance) {
  auto& reg = obs::Registry::global();
  const std::uint64_t before =
      reg.counter("thread_pool.tasks_executed_total").value();
  par::ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) pool.submit([] {});
  pool.wait();
  EXPECT_GE(reg.counter("thread_pool.tasks_executed_total").value(),
            before + 8);
  EXPECT_GE(reg.histogram("thread_pool.task_latency_us", {}).count(), 8u);
}

// ---------------------------------------------------------------------------
// Span args and cross-thread causality
// ---------------------------------------------------------------------------

TEST(ObsTrace, SpanArgsRecordedAndExported) {
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  rec.enable();
  {
    obs::ScopedSpan span("t.args");
    span.arg("rows", 7).arg("nnz", 123);
    // Past kMaxArgs the extras are dropped, never overflowed.
    span.arg("a3", 3).arg("a4", 4).arg("a5", 5);
  }
  rec.disable();
  const auto evs = rec.events();
  const auto* e = find_span(evs, "t.args");
  ASSERT_TRUE(e);
  ASSERT_EQ(e->nargs, obs::SpanEvent::kMaxArgs);
  EXPECT_STREQ(e->args[0].key, "rows");
  EXPECT_EQ(e->args[0].value, 7u);
  EXPECT_STREQ(e->args[1].key, "nnz");
  EXPECT_EQ(e->args[1].value, 123u);
  const std::string json = rec.to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"rows\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"nnz\": 123"), std::string::npos);
  rec.clear();
}

TEST(ObsTrace, CurrentContextTracksInnermostSpan) {
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  rec.disable();
  EXPECT_FALSE(rec.current_context());  // disabled -> zero context
  rec.enable();
  EXPECT_FALSE(rec.current_context());  // enabled but no span open
  {
    OBS_SPAN("t.ctx_outer");
    const obs::TraceContext outer = rec.current_context();
    EXPECT_TRUE(outer);
    {
      OBS_SPAN("t.ctx_inner");
      const obs::TraceContext inner = rec.current_context();
      EXPECT_TRUE(inner);
      EXPECT_NE(inner.span_id, outer.span_id);
    }
    EXPECT_EQ(rec.current_context().span_id, outer.span_id);
  }
  rec.disable();
  rec.clear();
}

/// Nested fan-out: every worker `thread_pool.task` span must carry a flow
/// link back to a `thread_pool.parallel_for` span, the link's capture time
/// must fall inside the source span (so the Chrome "s" event binds to the
/// producer slice and never orphans), and per-thread parent/depth fields
/// must stay mutually consistent. Run under TSan this also races adoption
/// against concurrent export.
TEST(ObsTrace, ParallelForWorkersAreFlowLinked) {
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  rec.enable();
  par::ThreadPool pool(3);
  {
    OBS_SPAN("t.flow_root");
    par::parallel_for_blocked(
        0, 16,
        [&](std::size_t, std::size_t) {
          // Nested fan-out from inside a worker task.
          par::parallel_for_blocked(
              0, 4, [](std::size_t, std::size_t) {}, pool, 1);
        },
        pool, 4);
  }
  rec.disable();
  const auto evs = rec.events();

  // Index spans by id, and group event indices by thread.
  std::map<std::uint64_t, const obs::SpanEvent*> by_id;
  std::map<std::uint32_t, std::vector<const obs::SpanEvent*>> by_tid;
  for (const auto& e : evs) {
    by_id[e.id] = &e;
    by_tid[e.tid].push_back(&e);
  }

  std::size_t tasks = 0, linked = 0;
  for (const auto& e : evs) {
    if (std::string(e.name) != "thread_pool.task") continue;
    ++tasks;
    if (e.flow_src == 0) continue;
    ++linked;
    const auto it = by_id.find(e.flow_src);
    ASSERT_NE(it, by_id.end()) << "flow link to an unrecorded span";
    const obs::SpanEvent& src = *it->second;
    EXPECT_STREQ(src.name, "thread_pool.parallel_for");
    EXPECT_EQ(e.flow_src_tid, src.tid);
    // The "s" endpoint must land inside the producer slice: Chrome binds
    // flow starts by (ts, tid) to the enclosing slice.
    EXPECT_GE(e.flow_ts_ns, src.start_ns);
    EXPECT_LE(e.flow_ts_ns, src.end_ns);
  }
  EXPECT_GT(tasks, 0u);
  EXPECT_EQ(linked, tasks) << "every pool task ran under an open span here";

  // Parent/depth consistency per thread (parent = index in begin order).
  for (const auto& [tid, group] : by_tid) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      const obs::SpanEvent& e = *group[i];
      if (e.parent < 0) {
        EXPECT_EQ(e.depth, 0) << e.name;
      } else {
        ASSERT_LT(static_cast<std::size_t>(e.parent), i) << e.name;
        const obs::SpanEvent& p = *group[static_cast<std::size_t>(e.parent)];
        EXPECT_EQ(e.depth, p.depth + 1) << e.name;
        EXPECT_GE(e.start_ns, p.start_ns) << e.name;
      }
    }
  }

  // The export carries paired flow events.
  const std::string json = rec.to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
  rec.clear();
}

// ---------------------------------------------------------------------------
// Snapshot + percentile export (satellite of the sampler/report work)
// ---------------------------------------------------------------------------

TEST(ObsMetrics, SnapshotReflectsRegistry) {
  obs::Registry reg;
  reg.counter("snap.count_total").add(11);
  reg.gauge("snap.gauge").set(2.5);
  auto& h = reg.histogram("snap.lat_us", {1.0, 10.0, 100.0});
  for (const double v : {0.5, 5.0, 50.0, 50.0}) h.observe(v);
  reg.histogram("snap.empty", {1.0});  // stays empty

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("snap.count_total"), 11u);
  EXPECT_EQ(snap.counter_or("absent", 42), 42u);
  EXPECT_DOUBLE_EQ(snap.gauge_or("snap.gauge"), 2.5);
  const auto* hs = snap.histogram("snap.lat_us");
  ASSERT_TRUE(hs);
  EXPECT_EQ(hs->count, 4u);
  EXPECT_DOUBLE_EQ(hs->sum, 105.5);
  EXPECT_GT(hs->p50, 0.0);
  EXPECT_GE(hs->p99, hs->p50);
  const auto* empty = snap.histogram("snap.empty");
  ASSERT_TRUE(empty);
  EXPECT_EQ(empty->count, 0u);
  EXPECT_DOUBLE_EQ(empty->p50, 0.0);
  EXPECT_EQ(snap.histogram("absent"), nullptr);
}

TEST(ObsMetrics, ToTextEmitsPercentilesOnlyWhenObserved) {
  obs::Registry reg;
  reg.histogram("seen.lat_us", {1.0, 10.0}).observe(3.0);
  reg.histogram("never.lat_us", {1.0, 10.0});
  const std::string text = reg.to_text();
  EXPECT_NE(text.find("seen.lat_us_p50"), std::string::npos) << text;
  EXPECT_NE(text.find("seen.lat_us_p99"), std::string::npos) << text;
  // An empty histogram printing p50 0 would read as a measurement.
  EXPECT_EQ(text.find("never.lat_us_p50"), std::string::npos) << text;
  EXPECT_EQ(text.find("never.lat_us_p99"), std::string::npos) << text;
  EXPECT_NE(text.find("never.lat_us_count 0"), std::string::npos) << text;
}

}  // namespace
