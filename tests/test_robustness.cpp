// Fault-tolerance tests: fault-injection layer semantics, atomic file
// writes, checkpoint round-trip and kill-and-resume trajectory equality,
// corruption/truncation matrices for both binary loaders, and quarantine of
// pathological corpus programs (infinite loop, OOM allocator, parse error,
// sema error, runtime trap).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "cache/cache.hpp"
#include "core/checkpoint.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/serialize.hpp"
#include "fault/fault.hpp"
#include "io/atomic_file.hpp"
#include "io/checked_stream.hpp"
#include "obs/metrics.hpp"
#include "parallel/rng.hpp"
#include "tensor/optim.hpp"

namespace {

using namespace mvgnn;
namespace fs = std::filesystem;

/// Fresh scratch directory per test; removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("mvgnn_test_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

/// Every test leaves the fault layer clean for the next one.
struct FaultGuard {
  ~FaultGuard() { fault::disarm_all(); }
};

// ---------------------------------------------------------------------------
// Fault layer
// ---------------------------------------------------------------------------

TEST(Fault, FiresOnExactlyTheNthHit) {
  FaultGuard guard;
  fault::arm("test.site", 3);
  EXPECT_TRUE(fault::enabled());
  EXPECT_FALSE(fault::hit("test.site"));
  EXPECT_FALSE(fault::hit("test.site"));
  EXPECT_TRUE(fault::hit("test.site"));   // 3rd hit fires
  EXPECT_FALSE(fault::hit("test.site"));  // and only the 3rd
  EXPECT_EQ(fault::hit_count("test.site"), 4u);
}

TEST(Fault, CheckThrowsInjectedFault) {
  FaultGuard guard;
  fault::arm("test.check", 1);
  EXPECT_THROW(fault::check("test.check"), fault::InjectedFault);
  fault::check("test.check");  // already fired; no-op
  fault::check("test.never_armed");
}

TEST(Fault, DisarmAllClearsEverything) {
  FaultGuard guard;
  fault::arm("test.a", 1);
  fault::disarm_all();
  EXPECT_FALSE(fault::hit("test.a"));
  EXPECT_EQ(fault::armed_nth("test.a"), std::nullopt);
}

// ---------------------------------------------------------------------------
// Atomic writes
// ---------------------------------------------------------------------------

TEST(AtomicWrite, WritesThroughATempFile) {
  TempDir dir("atomic");
  const std::string target = dir.str() + "/out.txt";
  io::atomic_write_file(target, [](std::ostream& os) { os << "payload"; });
  std::ifstream in(target);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "payload");
  EXPECT_FALSE(fs::exists(target + ".tmp"));
}

TEST(AtomicWrite, InjectedCrashLeavesNoTornFile) {
  FaultGuard guard;
  TempDir dir("atomic_crash");
  const std::string target = dir.str() + "/out.txt";
  // Survivor content must be untouched by the failed overwrite.
  io::atomic_write_file(target, [](std::ostream& os) { os << "old"; });
  fault::arm("io.write", 1);
  EXPECT_THROW(io::atomic_write_file(
                   target, [](std::ostream& os) { os << "new"; }),
               fault::InjectedFault);
  std::ifstream in(target);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "old");
  EXPECT_FALSE(fs::exists(target + ".tmp"));
}

// ---------------------------------------------------------------------------
// Rng and optimizer state round trips
// ---------------------------------------------------------------------------

TEST(Checkpoint, RngStateRoundTripContinuesTheSequence) {
  par::Rng a(42);
  (void)a.uniform();
  (void)a.normal();
  par::Rng b(7);
  ASSERT_TRUE(b.restore(a.state()));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_u64(1u << 30), b.uniform_u64(1u << 30));
  }
  EXPECT_FALSE(b.restore("not a state"));
}

TEST(Checkpoint, AdamStateRoundTripsExactly) {
  par::Rng rng(5);
  std::vector<ag::Tensor> params = {ag::Tensor::randn({3, 4}, rng),
                                    ag::Tensor::randn({4, 2}, rng)};
  ag::Adam a(1e-3f);
  a.add_params(params);
  a.step();
  a.step();
  std::ostringstream saved;
  a.save_state(saved);

  ag::Adam b(1e-3f);
  b.add_params(params);
  std::istringstream in(saved.str());
  b.load_state(in);
  std::ostringstream resaved;
  b.save_state(resaved);
  EXPECT_EQ(saved.str(), resaved.str());

  // Mismatched registration is rejected.
  ag::Adam c(1e-3f);
  c.add_params({params[0]});
  std::istringstream in2(saved.str());
  EXPECT_THROW(c.load_state(in2), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Checkpoint round trip + kill-and-resume
// ---------------------------------------------------------------------------

data::Dataset tiny_dataset(std::uint64_t seed) {
  par::Rng rng(seed);
  std::vector<data::ProgramSpec> programs;
  int i = 0;
  for (const auto p :
       {data::Pattern::VecMap, data::Pattern::ReduceSum,
        data::Pattern::Recurrence, data::Pattern::EarlyExit,
        data::Pattern::PrivTemp, data::Pattern::StencilCopy}) {
    data::ProgramSpec ps;
    ps.suite = "T";
    ps.app = "t";
    ps.pattern = p;
    ps.kernel = data::generate_kernel(p, "ck_k" + std::to_string(i++), rng);
    programs.push_back(std::move(ps));
  }
  data::DatasetOptions opts;
  opts.seed = 13;
  opts.walk.gamma = 8;
  return data::build_dataset(programs, opts);
}

struct TrainSetup {
  data::Dataset ds;
  core::Normalizer norm;
  std::unique_ptr<core::Featurizer> feats;
  std::vector<std::size_t> train, test;

  explicit TrainSetup(std::uint64_t seed) : ds(tiny_dataset(seed)) {
    for (std::size_t i = 0; i < ds.samples.size(); ++i) {
      (i % 4 == 3 ? test : train).push_back(i);
    }
    norm = core::Normalizer::fit(ds, train);
    feats = std::make_unique<core::Featurizer>(ds, norm);
  }

  [[nodiscard]] core::TrainConfig config() const {
    core::TrainConfig tc;
    tc.epochs = 3;
    tc.seed = 9;
    tc.batch_size = 2;
    return tc;
  }

  std::vector<core::EpochStat> run(const core::TrainConfig& tc) const {
    core::MvGnnTrainer trainer(*feats, core::default_config(*feats), tc);
    return trainer.fit(train, test);
  }
};

void expect_identical_curves(const std::vector<core::EpochStat>& a,
                             const std::vector<core::EpochStat>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit-identical, not approximately equal: resume must replay the
    // uninterrupted arithmetic exactly.
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(core::EpochStat)), 0)
        << "epoch " << i << ": " << a[i].loss << " vs " << b[i].loss;
  }
}

TEST(Checkpoint, ResumeReproducesTheUninterruptedTrajectory) {
  FaultGuard guard;
  const TrainSetup setup(21);
  TempDir dir_a("ck_base"), dir_b("ck_resume");

  core::TrainConfig tc = setup.config();
  tc.checkpoint_dir = dir_a.str();
  const auto full = setup.run(tc);
  ASSERT_EQ(full.size(), 3u);
  EXPECT_TRUE(fs::exists(core::checkpoint_path(dir_a.str(), 3)));

  // Same config, but the process "dies" when it tries to persist the
  // epoch-2 checkpoint — leaving only ckpt-1 behind.
  core::TrainConfig crash_tc = setup.config();
  crash_tc.checkpoint_dir = dir_b.str();
  fault::arm("ckpt.write", 2);
  EXPECT_THROW(setup.run(crash_tc), fault::InjectedFault);
  fault::disarm_all();

  core::TrainConfig tc2 = setup.config();
  tc2.checkpoint_dir = dir_b.str();
  tc2.resume_from = core::latest_checkpoint(dir_b.str());
  ASSERT_EQ(tc2.resume_from, core::checkpoint_path(dir_b.str(), 1));
  const auto tail = setup.run(tc2);

  expect_identical_curves(full, tail);
}

TEST(Checkpoint, InjectedKillMidEpochResumesBitIdentically) {
  FaultGuard guard;
  const TrainSetup setup(22);
  TempDir dir_a("kill_base"), dir_b("kill_crash");

  core::TrainConfig tc = setup.config();
  tc.checkpoint_dir = dir_a.str();
  const auto full = setup.run(tc);

  // "kill -9" stand-in: the trainer dies before an optimizer step in the
  // middle of epoch 1; only the periodic epoch-boundary checkpoints remain.
  core::TrainConfig crash_tc = setup.config();
  crash_tc.checkpoint_dir = dir_b.str();
  const std::size_t steps_per_epoch =
      (setup.train.size() + crash_tc.batch_size - 1) / crash_tc.batch_size;
  fault::arm("trainer.step", steps_per_epoch + 2);  // epoch 1, 2nd batch
  EXPECT_THROW(setup.run(crash_tc), fault::InjectedFault);
  fault::disarm_all();

  core::TrainConfig resume_tc = setup.config();
  resume_tc.checkpoint_dir = dir_b.str();
  resume_tc.resume_from = core::latest_checkpoint(dir_b.str());
  ASSERT_EQ(resume_tc.resume_from, core::checkpoint_path(dir_b.str(), 1));
  const auto tail = setup.run(resume_tc);

  expect_identical_curves(full, tail);
}

TEST(Checkpoint, StopFlagWritesSnapshotAndResumes) {
  const TrainSetup setup(23);
  TempDir dir_a("stop_base"), dir_b("stop_int");

  core::TrainConfig tc = setup.config();
  tc.checkpoint_dir = dir_a.str();
  const auto full = setup.run(tc);

  // The flag is already set, so the very first batch poll interrupts:
  // fit() persists the epoch-0 snapshot and reports interrupted().
  std::atomic<bool> stop{true};
  core::TrainConfig int_tc = setup.config();
  int_tc.checkpoint_dir = dir_b.str();
  int_tc.stop_requested = &stop;
  core::MvGnnTrainer trainer(*setup.feats, core::default_config(*setup.feats),
                             int_tc);
  const auto partial = trainer.fit(setup.train, setup.test);
  EXPECT_TRUE(trainer.interrupted());
  EXPECT_TRUE(partial.empty());
  ASSERT_EQ(core::latest_checkpoint(dir_b.str()),
            core::checkpoint_path(dir_b.str(), 0));

  core::TrainConfig resume_tc = setup.config();
  resume_tc.checkpoint_dir = dir_b.str();
  resume_tc.resume_from = core::latest_checkpoint(dir_b.str());
  const auto tail = setup.run(resume_tc);
  expect_identical_curves(full, tail);
}

// ---------------------------------------------------------------------------
// Corruption / truncation matrix
// ---------------------------------------------------------------------------

/// Flips one byte at each probe offset and truncates at each probe length;
/// `reload` must throw std::runtime_error (with an offset in the message)
/// for every damaged copy.
void corruption_matrix(const std::string& bytes,
                       const std::function<void(const std::string&)>& reload) {
  const std::size_t probes[] = {0,
                                2,
                                9,
                                bytes.size() / 3,
                                bytes.size() / 2,
                                bytes.size() - 5,
                                bytes.size() - 1};
  for (const std::size_t at : probes) {
    std::string bad = bytes;
    bad[at] = static_cast<char>(bad[at] ^ 0xFF);
    try {
      reload(bad);
      FAIL() << "byte flip at " << at << " was not detected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::strlen(e.what()), 0u) << "flip at " << at;
    }
  }
  for (const std::size_t len : {std::size_t{0}, std::size_t{3},
                                bytes.size() / 4, bytes.size() / 2,
                                bytes.size() - 6, bytes.size() - 1}) {
    try {
      reload(bytes.substr(0, len));
      FAIL() << "truncation to " << len << " was not detected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
          << "truncation to " << len << " lacks an offset: " << e.what();
    }
  }
}

TEST(Corruption, DatasetLoaderDetectsEveryDamagedCopy) {
  const data::Dataset ds = tiny_dataset(31);
  std::stringstream buf;
  data::save_dataset(ds, buf);
  corruption_matrix(buf.str(), [](const std::string& bytes) {
    std::stringstream in(bytes);
    (void)data::load_dataset(in);
  });
}

TEST(Corruption, DatasetLoaderRejectsAbsurdLengthsBeforeAllocating) {
  const data::Dataset ds = tiny_dataset(32);
  std::stringstream buf;
  data::save_dataset(ds, buf);
  std::string bytes = buf.str();
  // Overwrite the token-vocabulary count (the first u64 length field, right
  // after the inst2vec block) with 2^60. Its offset follows from the fixed
  // layout: 8-byte header, static_dim + aw_vocab, vocab/dim u32s, then
  // vocab*dim floats.
  std::uint32_t i2v_vocab = 0, i2v_dim = 0;
  std::memcpy(&i2v_vocab, bytes.data() + 16, sizeof i2v_vocab);
  std::memcpy(&i2v_dim, bytes.data() + 20, sizeof i2v_dim);
  const std::size_t count_off =
      24 + std::size_t{i2v_vocab} * i2v_dim * sizeof(float);
  ASSERT_LT(count_off + 8, bytes.size());
  const std::uint64_t absurd = 1ull << 60;
  std::memcpy(bytes.data() + count_off, &absurd, sizeof absurd);
  std::stringstream in(bytes);
  try {
    (void)data::load_dataset(in);
    FAIL() << "absurd length accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds cap"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(Corruption, CheckpointLoaderDetectsEveryDamagedCopy) {
  par::Rng rng(6);
  struct TwoTensorModel : nn::Module {
    std::vector<ag::Tensor> ps;
    [[nodiscard]] std::vector<ag::Tensor> parameters() const override {
      return ps;
    }
  } model;
  model.ps = {ag::Tensor::randn({5, 3}, rng), ag::Tensor::randn({3, 2}, rng)};
  ag::Adam opt(1e-3f);
  opt.add_params(model.ps);
  opt.step();

  core::CheckpointMeta meta;
  meta.epoch = 2;
  meta.step = 17;
  meta.rng_state = rng.state();
  meta.curve = {{0.5, 0.6, 0.7}, {0.4, 0.8, 0.9}};
  const std::string bytes = core::encode_checkpoint(meta, model, opt);

  // Clean load round-trips first.
  {
    std::istringstream in(bytes);
    const auto back = core::load_checkpoint(in, model, opt);
    EXPECT_EQ(back.epoch, 2u);
    EXPECT_EQ(back.step, 17u);
    EXPECT_EQ(back.rng_state, meta.rng_state);
    ASSERT_EQ(back.curve.size(), 2u);
    EXPECT_EQ(back.curve[1].loss, 0.4);
  }
  corruption_matrix(bytes, [&](const std::string& damaged) {
    std::istringstream in(damaged);
    (void)core::load_checkpoint(in, model, opt);
  });
}

TEST(Corruption, TruncateFaultSiteDriesUpTheStream) {
  FaultGuard guard;
  const data::Dataset ds = tiny_dataset(33);
  std::stringstream buf;
  data::save_dataset(ds, buf);
  // The payload reader sees only 64 bytes before EOF, as if the file had
  // been cut mid-write — without touching any real file.
  fault::arm("io.read.truncate", 64);
  try {
    (void)data::load_dataset(buf);
    FAIL() << "truncated stream accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Pathological corpus quarantine
// ---------------------------------------------------------------------------

data::ProgramSpec bad_program(const std::string& name,
                              const std::string& source,
                              std::vector<profiler::ArgInit> args) {
  data::ProgramSpec ps;
  ps.suite = "Bad";
  ps.app = "bad";
  ps.kernel.name = name;
  ps.kernel.source = source;
  ps.kernel.args = std::move(args);
  return ps;
}

TEST(Quarantine, PathologicalProgramsAreSkippedNotFatal) {
  par::Rng rng(41);
  std::vector<data::ProgramSpec> programs;
  // Two healthy programs the dataset must still be built from.
  for (const auto p : {data::Pattern::VecMap, data::Pattern::ReduceSum}) {
    data::ProgramSpec ps;
    ps.suite = "T";
    ps.app = "t";
    ps.pattern = p;
    ps.kernel = data::generate_kernel(p, std::string("good_") +
                                             data::pattern_name(p), rng);
    programs.push_back(std::move(ps));
  }
  // 1. Infinite loop: runs until the fuel budget traps it.
  programs.push_back(bad_program(
      "bad_infinite",
      "void kernel(int n) {\n"
      "  while (n < 1000000000) { n = n - (n - n); }\n"
      "}\n",
      {profiler::ArgInit::of_int(1)}));
  // 2. OOM allocator: a local array far past the memory cap.
  programs.push_back(bad_program(
      "bad_oom",
      "const int M = 8388608;\n"
      "void kernel(int n) {\n"
      "  for (int i = 0; i < 2; i = i + 1) {\n"
      "    float t[M];\n"
      "    t[0] = 1.0;\n"
      "  }\n"
      "}\n",
      {profiler::ArgInit::of_int(1)}));
  // 3. Parse error.
  programs.push_back(
      bad_program("bad_parse", "this is not a MiniC program {", {}));
  // 4. Sema error: assignment to an undeclared variable.
  programs.push_back(bad_program("bad_sema",
                                 "void kernel(int n) {\n"
                                 "  undeclared = n;\n"
                                 "}\n",
                                 {profiler::ArgInit::of_int(1)}));
  // 5. Runtime trap: integer division by zero.
  programs.push_back(bad_program("bad_trap",
                                 "void kernel(int n) {\n"
                                 "  int z = n - n;\n"
                                 "  n = n / z;\n"
                                 "}\n",
                                 {profiler::ArgInit::of_int(7)}));

  data::DatasetOptions opts;
  opts.seed = 19;
  opts.walk.gamma = 8;
  opts.interp.max_steps = 2'000'000;     // fuel: traps the infinite loop
  opts.interp.max_mem_cells = 1u << 20;  // traps the 8M-cell allocation

  const auto& quarantined_counter =
      obs::Registry::global().counter("corpus.quarantined_total");
  const auto& fuel_counter =
      obs::Registry::global().counter("interp.fuel_exhausted_total");
  const auto& mem_counter =
      obs::Registry::global().counter("interp.mem_cap_exceeded_total");
  const std::uint64_t quarantined0 = quarantined_counter.value();
  const std::uint64_t fuel0 = fuel_counter.value();
  const std::uint64_t mem0 = mem_counter.value();

  std::size_t skipped = 0;
  data::BuildReport report;
  const data::Dataset ds =
      data::build_dataset(programs, opts, &skipped, &report);

  EXPECT_EQ(skipped, 5u);
  ASSERT_EQ(report.quarantined.size(), 5u);
  // The healthy programs still produced their samples.
  EXPECT_GT(ds.samples.size(), 0u);
  for (const auto& s : ds.samples) {
    EXPECT_EQ(s.kernel.rfind("good_", 0), 0u) << s.kernel;
  }
  // Every entry names its program, stage, and error.
  std::map<std::string, data::QuarantineEntry> by_kernel;
  for (const auto& q : report.quarantined) by_kernel[q.kernel] = q;
  ASSERT_EQ(by_kernel.count("bad_infinite"), 1u);
  EXPECT_EQ(by_kernel["bad_infinite"].stage, "profile");
  EXPECT_NE(by_kernel["bad_infinite"].error.find("fuel exhausted"),
            std::string::npos);
  ASSERT_EQ(by_kernel.count("bad_oom"), 1u);
  EXPECT_EQ(by_kernel["bad_oom"].stage, "profile");
  EXPECT_NE(by_kernel["bad_oom"].error.find("memory cap"), std::string::npos);
  ASSERT_EQ(by_kernel.count("bad_parse"), 1u);
  EXPECT_EQ(by_kernel["bad_parse"].stage, "compile");
  ASSERT_EQ(by_kernel.count("bad_sema"), 1u);
  EXPECT_EQ(by_kernel["bad_sema"].stage, "compile");
  ASSERT_EQ(by_kernel.count("bad_trap"), 1u);
  EXPECT_EQ(by_kernel["bad_trap"].stage, "profile");
  EXPECT_NE(by_kernel["bad_trap"].error.find("division by zero"),
            std::string::npos);
  // Observability counters moved with the quarantine.
  EXPECT_EQ(quarantined_counter.value() - quarantined0, 5u);
  EXPECT_EQ(fuel_counter.value() - fuel0, 1u);
  EXPECT_EQ(mem_counter.value() - mem0, 1u);
}

// ---------------------------------------------------------------------------
// Stage-boundary cache faults (docs/pipeline.md)
// ---------------------------------------------------------------------------

std::string dataset_bytes(const data::Dataset& ds) {
  std::ostringstream os;
  data::save_dataset(ds, os);
  return os.str();
}

TEST(CacheFault, InjectedReadCorruptionDegradesToRecompute) {
  FaultGuard guard;
  TempDir dir("cache_rot");
  const auto programs = data::build_generated_corpus(6, 77);
  data::DatasetOptions opts;
  opts.seed = 5;

  cache::Cache warmup(cache::Config{dir.str(), 64ull << 20});
  opts.cache = &warmup;
  const std::string want = dataset_bytes(data::build_dataset(programs, opts));

  // A fresh instance over the same directory reads from disk; the armed
  // fault corrupts the CRC of the first disk read. The build must treat it
  // as a miss — evict, recompute, repopulate — and still produce the exact
  // same bytes.
  cache::Cache c(cache::Config{dir.str(), 64ull << 20});
  opts.cache = &c;
  fault::arm("cache.read.corrupt", 1);
  std::size_t skipped = 0;
  const data::Dataset ds = data::build_dataset(programs, opts, &skipped);
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(dataset_bytes(ds), want);
  EXPECT_EQ(c.stats().corrupt, 1u);
  EXPECT_GE(c.stats().misses, 1u);
}

TEST(CacheFault, InjectedWriteFailureLeavesEntryUncachedNotFatal) {
  FaultGuard guard;
  TempDir dir("cache_wfail");
  const auto programs = data::build_generated_corpus(6, 77);
  data::DatasetOptions opts;
  opts.seed = 5;
  const std::string want = dataset_bytes(data::build_dataset(programs, opts));

  cache::Cache c(cache::Config{dir.str(), 64ull << 20});
  opts.cache = &c;
  fault::arm("cache.write", 1);
  std::size_t skipped = 0;
  const data::Dataset ds = data::build_dataset(programs, opts, &skipped);
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(dataset_bytes(ds), want);
  EXPECT_EQ(c.stats().write_failures, 1u);
  // The failed entry simply stayed uncached; everything else landed on disk.
  EXPECT_GT(c.stats().disk_entries, 0u);
}

TEST(Quarantine, CooperativeStopReturnsEmptyInterruptedBuild) {
  const auto programs = data::build_generated_corpus(6, 77);
  data::DatasetOptions opts;
  opts.seed = 5;

  // Flag already up (a SIGINT that landed before the build): no item
  // starts, the dataset comes back empty — a partial dataset would
  // silently change downstream vocabularies — and the report says
  // interrupted so `mvgnn dataset` exits 130 instead of writing it.
  std::atomic<bool> stop{true};
  opts.stop_requested = &stop;
  std::size_t skipped = 0;
  data::BuildReport report;
  const data::Dataset ds =
      data::build_dataset(programs, opts, &skipped, &report);
  EXPECT_TRUE(report.interrupted);
  EXPECT_TRUE(ds.samples.empty());

  // Flag down: the same options build normally.
  stop.store(false);
  data::BuildReport clean;
  const data::Dataset full =
      data::build_dataset(programs, opts, &skipped, &clean);
  EXPECT_FALSE(clean.interrupted);
  EXPECT_GT(full.samples.size(), 0u);
}

TEST(Quarantine, InterpreterTrapSiteFiresAtTheArmedStep) {
  FaultGuard guard;
  par::Rng rng(47);
  data::ProgramSpec ps;
  ps.suite = "T";
  ps.app = "t";
  ps.kernel = data::generate_kernel(data::Pattern::VecMap, "trap_k", rng);
  data::DatasetOptions opts;
  opts.seed = 23;
  opts.walk.gamma = 8;
  fault::arm("interp.trap", 100);
  std::size_t skipped = 0;
  data::BuildReport report;
  (void)data::build_dataset({ps}, opts, &skipped, &report);
  fault::disarm_all();
  ASSERT_EQ(skipped, 1u);
  EXPECT_NE(report.quarantined[0].error.find("injected trap"),
            std::string::npos);
}

}  // namespace
