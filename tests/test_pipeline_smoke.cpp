// End-to-end smoke tests: MiniC source -> IR -> profile -> PEG -> labels.
// These pin the whole substrate chain before any model-level test runs.
#include <gtest/gtest.h>

#include "analysis/tools.hpp"
#include "frontend/lower.hpp"
#include "graph/peg.hpp"
#include "profiler/profile.hpp"

namespace {

using namespace mvgnn;

constexpr const char* kVecAdd = R"(
void kernel(float[] a, float[] b, float[] c, int n) {
  for (int i = 0; i < n; i += 1) {
    c[i] = a[i] + b[i];
  }
}
)";

constexpr const char* kPrefix = R"(
void kernel(float[] a, int n) {
  for (int i = 1; i < n; i += 1) {
    a[i] = a[i] + a[i - 1];
  }
}
)";

constexpr const char* kReduction = R"(
float kernel(float[] a, int n) {
  float s = 0.0;
  for (int i = 0; i < n; i += 1) {
    s = s + a[i];
  }
  return s;
}
)";

profiler::ProfileResult run_kernel(const ir::Module& m, std::uint64_t n) {
  std::vector<profiler::ArgInit> args;
  for (const auto& p : m.functions[0]->params) {
    if (ir::is_array(p.type)) {
      args.push_back(profiler::ArgInit::of_array(n));
    } else if (p.type == ir::TypeKind::Int) {
      args.push_back(profiler::ArgInit::of_int(static_cast<std::int64_t>(n)));
    } else {
      args.push_back(profiler::ArgInit::of_float(1.0));
    }
  }
  return profiler::profile(m, "kernel", args);
}

TEST(PipelineSmoke, VectorAddIsParallelizable) {
  const ir::Module m = frontend::compile(kVecAdd, "vecadd");
  const auto prof = run_kernel(m, 32);
  ASSERT_EQ(prof.loops.size(), 1u);
  const auto& s = prof.loops[0];
  EXPECT_EQ(s.features.exec_times, 32u);
  EXPECT_TRUE(analysis::oracle_classify(*s.fn, s.loop, prof.dep).parallel);
  EXPECT_TRUE(analysis::autopar_classify(*s.fn, s.loop).parallel);
  EXPECT_TRUE(analysis::discopop_classify(*s.fn, s.loop, prof.dep).parallel);
}

TEST(PipelineSmoke, PrefixSumIsNotParallelizable) {
  const ir::Module m = frontend::compile(kPrefix, "prefix");
  const auto prof = run_kernel(m, 32);
  ASSERT_EQ(prof.loops.size(), 1u);
  const auto& s = prof.loops[0];
  EXPECT_FALSE(analysis::oracle_classify(*s.fn, s.loop, prof.dep).parallel);
  EXPECT_FALSE(analysis::autopar_classify(*s.fn, s.loop).parallel);
  EXPECT_FALSE(analysis::discopop_classify(*s.fn, s.loop, prof.dep).parallel);
  EXPECT_FALSE(analysis::pluto_classify(*s.fn, s.loop).parallel);
}

TEST(PipelineSmoke, SumReductionIsParallelizableForExpertButNotPluto) {
  const ir::Module m = frontend::compile(kReduction, "reduce");
  const auto prof = run_kernel(m, 32);
  ASSERT_EQ(prof.loops.size(), 1u);
  const auto& s = prof.loops[0];
  EXPECT_TRUE(analysis::oracle_classify(*s.fn, s.loop, prof.dep).parallel);
  EXPECT_TRUE(analysis::autopar_classify(*s.fn, s.loop).parallel);
  EXPECT_TRUE(analysis::discopop_classify(*s.fn, s.loop, prof.dep).parallel);
  EXPECT_FALSE(analysis::pluto_classify(*s.fn, s.loop).parallel);
}

TEST(PipelineSmoke, PegHasLoopAndCuNodes) {
  const ir::Module m = frontend::compile(kVecAdd, "vecadd");
  const auto prof = run_kernel(m, 8);
  const graph::Peg peg = graph::build_peg(m, prof);
  int loops = 0, cus = 0, fns = 0;
  for (const auto& n : peg.nodes) {
    loops += n.kind == graph::NodeKind::Loop;
    cus += n.kind == graph::NodeKind::CU;
    fns += n.kind == graph::NodeKind::Function;
  }
  EXPECT_EQ(fns, 1);
  EXPECT_EQ(loops, 1);
  EXPECT_GE(cus, 1);

  const auto sub = graph::extract_sub_peg(peg, prof.loops[0].fn,
                                          prof.loops[0].loop);
  EXPECT_GE(sub.num_nodes(), 2u);
  EXPECT_EQ(peg.nodes[sub.nodes[0]].kind, graph::NodeKind::Loop);
  EXPECT_FALSE(graph::to_dot(peg, "t").empty());
}

TEST(PipelineSmoke, ReturnValueIsCorrect) {
  const ir::Module m = frontend::compile(kReduction, "reduce");
  profiler::NullObserver obs;
  std::vector<profiler::ArgInit> args = {profiler::ArgInit::of_array(16),
                                         profiler::ArgInit::of_int(16)};
  const auto res = profiler::run(m, "kernel", args, obs);
  // Array fill is in [0.5, 1.5): the sum of 16 elements lies in [8, 24).
  EXPECT_GE(res.return_value.f, 8.0);
  EXPECT_LT(res.return_value.f, 24.0);
}

}  // namespace
