// OpenMP suggestion generator tests: clause synthesis, ranking, and
// sequential explanations.
#include <gtest/gtest.h>

#include "analysis/suggest.hpp"
#include "frontend/lower.hpp"

namespace {

using namespace mvgnn;

struct Run {
  std::unique_ptr<ir::Module> module;
  profiler::ProfileResult prof;
  std::vector<analysis::Suggestion> suggestions;
};

Run run(const char* src, std::vector<profiler::ArgInit> args) {
  Run r;
  r.module = std::make_unique<ir::Module>(frontend::compile(src, "t"));
  r.prof = profiler::profile(*r.module, "kernel", args);
  r.suggestions = analysis::suggest_openmp(*r.module, r.prof);
  return r;
}

TEST(Suggest, ReductionClauseNamesTheAccumulator) {
  const auto r = run(R"(
const int N = 32;
float kernel(float[] a) {
  float total = 0.0;
  for (int i = 0; i < N; i += 1) {
    total = total + a[i];
  }
  return total;
}
)",
                     {profiler::ArgInit::of_array(32, 1)});
  ASSERT_EQ(r.suggestions.size(), 1u);
  EXPECT_EQ(r.suggestions[0].kind, analysis::ParKind::Reduction);
  EXPECT_NE(r.suggestions[0].pragma.find("reduction(+:total)"),
            std::string::npos)
      << r.suggestions[0].pragma;
}

TEST(Suggest, MinMaxClausesAndPrivateScalars) {
  const auto r = run(R"(
const int N = 32;
float kernel(float[] a, float[] b) {
  float best = -100000.0;
  float tmp = 0.0;
  for (int i = 0; i < N; i += 1) {
    tmp = a[i] * 2.0;
    b[i] = tmp;
    best = fmax(best, tmp);
  }
  return best;
}
)",
                     {profiler::ArgInit::of_array(32, 1),
                      profiler::ArgInit::of_array(32, 2)});
  ASSERT_EQ(r.suggestions.size(), 1u);
  const std::string& pragma = r.suggestions[0].pragma;
  EXPECT_NE(pragma.find("reduction(max:best)"), std::string::npos) << pragma;
  EXPECT_NE(pragma.find("private(tmp)"), std::string::npos) << pragma;
}

TEST(Suggest, SequentialLoopsGetExplanationsNotPragmas) {
  const auto r = run(R"(
const int N = 32;
void kernel(float[] a) {
  for (int i = 1; i < N; i += 1) {
    a[i] = a[i - 1] + 1.0;
  }
}
)",
                     {profiler::ArgInit::of_array(32, 1)});
  ASSERT_EQ(r.suggestions.size(), 1u);
  EXPECT_EQ(r.suggestions[0].kind, analysis::ParKind::Sequential);
  EXPECT_TRUE(r.suggestions[0].pragma.empty());
  EXPECT_FALSE(r.suggestions[0].explanation.empty());
  EXPECT_EQ(r.suggestions[0].rank, 0.0);
}

TEST(Suggest, RankingPutsHotParallelLoopsFirst) {
  const auto r = run(R"(
const int N = 64;
const int M = 4;
float kernel(float[] a, float[] b) {
  // cold parallel loop (M iterations)
  for (int i = 0; i < M; i += 1) {
    b[i] = a[i];
  }
  // hot parallel loop (N iterations, more work per iteration)
  for (int i = 0; i < N; i += 1) {
    b[i] = sqrt(fabs(a[i])) * 2.0 + a[i] * 0.5;
  }
  return b[0];
}
)",
                     {profiler::ArgInit::of_array(64, 1),
                      profiler::ArgInit::of_array(64, 2)});
  ASSERT_EQ(r.suggestions.size(), 2u);
  EXPECT_GT(r.suggestions[0].coverage, r.suggestions[1].coverage);
  EXPECT_EQ(r.suggestions[0].start_line, 10);  // the hot loop leads
  // to_string renders the pragma and the coverage annotation.
  const std::string text = analysis::to_string(r.suggestions[0]);
  EXPECT_NE(text.find("#pragma omp parallel for"), std::string::npos);
  EXPECT_NE(text.find("coverage"), std::string::npos);
}

TEST(Suggest, ArrayReductionNamesTheParameter) {
  const auto r = run(R"(
const int N = 32;
void kernel(int[] idx, float[] hist) {
  for (int i = 0; i < N; i += 1) {
    hist[idx[i]] += 1.0;
  }
}
)",
                     {profiler::ArgInit::of_array(32, 1),
                      profiler::ArgInit::of_array(32, 2)});
  ASSERT_EQ(r.suggestions.size(), 1u);
  EXPECT_NE(r.suggestions[0].pragma.find("reduction(+:hist)"),
            std::string::npos)
      << r.suggestions[0].pragma;
}

}  // namespace
