// OpenMP suggestion generator tests: clause synthesis, ranking, and
// sequential explanations.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analysis/suggest.hpp"
#include "frontend/lower.hpp"

namespace {

using namespace mvgnn;

struct Run {
  std::unique_ptr<ir::Module> module;
  profiler::ProfileResult prof;
  std::vector<analysis::Suggestion> suggestions;
};

Run run(const char* src, std::vector<profiler::ArgInit> args) {
  Run r;
  r.module = std::make_unique<ir::Module>(frontend::compile(src, "t"));
  r.prof = profiler::profile(*r.module, "kernel", args);
  r.suggestions = analysis::suggest_openmp(*r.module, r.prof);
  return r;
}

TEST(Suggest, ReductionClauseNamesTheAccumulator) {
  const auto r = run(R"(
const int N = 32;
float kernel(float[] a) {
  float total = 0.0;
  for (int i = 0; i < N; i += 1) {
    total = total + a[i];
  }
  return total;
}
)",
                     {profiler::ArgInit::of_array(32, 1)});
  ASSERT_EQ(r.suggestions.size(), 1u);
  EXPECT_EQ(r.suggestions[0].kind, analysis::ParKind::Reduction);
  EXPECT_NE(r.suggestions[0].pragma.find("reduction(+:total)"),
            std::string::npos)
      << r.suggestions[0].pragma;
}

TEST(Suggest, MinMaxClausesAndPrivateScalars) {
  const auto r = run(R"(
const int N = 32;
float kernel(float[] a, float[] b) {
  float best = -100000.0;
  float tmp = 0.0;
  for (int i = 0; i < N; i += 1) {
    tmp = a[i] * 2.0;
    b[i] = tmp;
    best = fmax(best, tmp);
  }
  return best;
}
)",
                     {profiler::ArgInit::of_array(32, 1),
                      profiler::ArgInit::of_array(32, 2)});
  ASSERT_EQ(r.suggestions.size(), 1u);
  const std::string& pragma = r.suggestions[0].pragma;
  EXPECT_NE(pragma.find("reduction(max:best)"), std::string::npos) << pragma;
  EXPECT_NE(pragma.find("private(tmp)"), std::string::npos) << pragma;
}

TEST(Suggest, SequentialLoopsGetExplanationsNotPragmas) {
  const auto r = run(R"(
const int N = 32;
void kernel(float[] a) {
  for (int i = 1; i < N; i += 1) {
    a[i] = a[i - 1] + 1.0;
  }
}
)",
                     {profiler::ArgInit::of_array(32, 1)});
  ASSERT_EQ(r.suggestions.size(), 1u);
  EXPECT_EQ(r.suggestions[0].kind, analysis::ParKind::Sequential);
  EXPECT_TRUE(r.suggestions[0].pragma.empty());
  EXPECT_FALSE(r.suggestions[0].explanation.empty());
  EXPECT_EQ(r.suggestions[0].rank, 0.0);
}

TEST(Suggest, RankingPutsHotParallelLoopsFirst) {
  const auto r = run(R"(
const int N = 64;
const int M = 4;
float kernel(float[] a, float[] b) {
  // cold parallel loop (M iterations)
  for (int i = 0; i < M; i += 1) {
    b[i] = a[i];
  }
  // hot parallel loop (N iterations, more work per iteration)
  for (int i = 0; i < N; i += 1) {
    b[i] = sqrt(fabs(a[i])) * 2.0 + a[i] * 0.5;
  }
  return b[0];
}
)",
                     {profiler::ArgInit::of_array(64, 1),
                      profiler::ArgInit::of_array(64, 2)});
  ASSERT_EQ(r.suggestions.size(), 2u);
  EXPECT_GT(r.suggestions[0].coverage, r.suggestions[1].coverage);
  EXPECT_EQ(r.suggestions[0].start_line, 10);  // the hot loop leads
  // to_string renders the pragma and the coverage annotation.
  const std::string text = analysis::to_string(r.suggestions[0]);
  EXPECT_NE(text.find("#pragma omp parallel for"), std::string::npos);
  EXPECT_NE(text.find("coverage"), std::string::npos);
}

TEST(Suggest, ArrayReductionNamesTheParameter) {
  const auto r = run(R"(
const int N = 32;
void kernel(int[] idx, float[] hist) {
  for (int i = 0; i < N; i += 1) {
    hist[idx[i]] += 1.0;
  }
}
)",
                     {profiler::ArgInit::of_array(32, 1),
                      profiler::ArgInit::of_array(32, 2)});
  ASSERT_EQ(r.suggestions.size(), 1u);
  EXPECT_NE(r.suggestions[0].pragma.find("reduction(+:hist)"),
            std::string::npos)
      << r.suggestions[0].pragma;
}


// ---------------------------------------------------------------------------
// Regression: degenerate profiles and ranking determinism.
// ---------------------------------------------------------------------------

TEST(Suggest, EmptyProfileYieldsZeroCoverageFiniteRank) {
  // A trap-truncated or never-run profile has zero total steps; coverage
  // must be exactly 0 and every rank finite (a NaN rank breaks the sort's
  // strict weak ordering — undefined behaviour).
  auto r = run(R"(
const int N = 16;
float kernel(float[] a) {
  float s = 0.0;
  for (int i = 0; i < N; i += 1) {
    s = s + a[i];
  }
  return s;
}
)",
               {profiler::ArgInit::of_array(16, 1)});
  r.prof.run.steps = 0;  // simulate the truncated run
  r.prof.dep.instr_counts.clear();
  const auto sug = analysis::suggest_openmp(*r.module, r.prof);
  ASSERT_EQ(sug.size(), 1u);
  EXPECT_EQ(sug[0].coverage, 0.0);
  EXPECT_TRUE(std::isfinite(sug[0].rank)) << sug[0].rank;
}

TEST(Suggest, NonFiniteSpeedupDoesNotPoisonTheRank) {
  auto r = run(R"(
const int N = 16;
float kernel(float[] a) {
  for (int i = 0; i < N; i += 1) {
    a[i] = a[i] * 2.0;
  }
  return a[0];
}
)",
               {profiler::ArgInit::of_array(16, 1)});
  ASSERT_EQ(r.prof.loops.size(), 1u);
  r.prof.loops[0].features.esp = std::numeric_limits<double>::infinity();
  auto sug = analysis::suggest_openmp(*r.module, r.prof);
  ASSERT_EQ(sug.size(), 1u);
  EXPECT_TRUE(std::isfinite(sug[0].rank));
  EXPECT_TRUE(std::isfinite(sug[0].est_speedup));

  r.prof.loops[0].features.esp = std::numeric_limits<double>::quiet_NaN();
  sug = analysis::suggest_openmp(*r.module, r.prof);
  ASSERT_EQ(sug.size(), 1u);
  EXPECT_TRUE(std::isfinite(sug[0].rank));
}

TEST(Suggest, EqualRankLoopsOrderDeterministically) {
  // Two identical DOALL loops tie on rank; the (function, loop id)
  // tie-break must order them identically no matter how the input list was
  // permuted upstream (different platforms/STLs permute stable_sort input
  // via the profiler's hash maps).
  auto r = run(R"(
const int N = 16;
float kernel(float[] a, float[] b) {
  for (int i = 0; i < N; i += 1) {
    a[i] = a[i] * 2.0;
  }
  for (int i = 0; i < N; i += 1) {
    b[i] = b[i] * 2.0;
  }
  return a[0] + b[0];
}
)",
               {profiler::ArgInit::of_array(16, 1),
                profiler::ArgInit::of_array(16, 2)});
  ASSERT_EQ(r.prof.loops.size(), 2u);
  // Force an exact tie so only the tie-break decides.
  r.prof.loops[0].features.esp = 2.0;
  r.prof.loops[1].features.esp = 2.0;
  r.prof.dep.instr_counts.clear();
  r.prof.run.steps = 0;

  const auto forward = analysis::suggest_openmp(*r.module, r.prof);
  std::swap(r.prof.loops[0], r.prof.loops[1]);
  const auto reversed = analysis::suggest_openmp(*r.module, r.prof);

  ASSERT_EQ(forward.size(), 2u);
  ASSERT_EQ(reversed.size(), 2u);
  for (std::size_t i = 0; i < forward.size(); ++i) {
    EXPECT_EQ(forward[i].rank, reversed[i].rank);
    EXPECT_EQ(forward[i].loop, reversed[i].loop) << "position " << i;
    EXPECT_EQ(forward[i].start_line, reversed[i].start_line);
  }
  // And the tie-break itself is the documented one: loop id ascending.
  EXPECT_LT(forward[0].loop, forward[1].loop);
}

}  // namespace
