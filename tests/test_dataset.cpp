// Corpus and dataset-construction tests: Table II loop populations, label
// sanity per pattern, split/balance invariants.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "data/dataset.hpp"
#include "data/serialize.hpp"

namespace {

using namespace mvgnn;
using data::Pattern;

data::Dataset small_dataset() {
  // A small but pattern-diverse corpus keeps this test fast.
  std::vector<data::ProgramSpec> programs;
  par::Rng rng(7);
  const Pattern pats[] = {
      Pattern::VecMap,         Pattern::ReduceSum,    Pattern::ReduceMax,
      Pattern::Recurrence,     Pattern::PrivTemp,     Pattern::PrivArrayTemp,
      Pattern::IndirectGather, Pattern::IndirectScatter,
      Pattern::EarlyExit,      Pattern::MatMulNest,   Pattern::Jacobi2D,
      Pattern::Seidel2D,       Pattern::CallMapPure,  Pattern::ColdPath,
      Pattern::DisjointCopy,   Pattern::ArrayAccumNest,
  };
  int i = 0;
  for (const Pattern p : pats) {
    data::ProgramSpec ps;
    ps.suite = "Test";
    ps.app = "t";
    ps.pattern = p;
    ps.kernel = data::generate_kernel(p, "t_k" + std::to_string(i++), rng);
    programs.push_back(std::move(ps));
  }
  data::DatasetOptions opts;
  opts.seed = 11;
  std::size_t skipped = 99;
  data::Dataset ds = data::build_dataset(programs, opts, &skipped);
  EXPECT_EQ(skipped, 0u);
  return ds;
}

TEST(Corpus, Table2LoopCountsMatchThePaper) {
  const auto programs = data::build_benchmark_corpus(123);
  std::map<std::string, int> loops;
  for (const auto& p : programs) loops[p.app] += p.kernel.for_loops;
  EXPECT_EQ(loops["BT"], 184);
  EXPECT_EQ(loops["SP"], 252);
  EXPECT_EQ(loops["LU"], 173);
  EXPECT_EQ(loops["IS"], 25);
  EXPECT_EQ(loops["EP"], 10);
  EXPECT_EQ(loops["CG"], 32);
  EXPECT_EQ(loops["MG"], 74);
  EXPECT_EQ(loops["FT"], 37);
  EXPECT_EQ(loops["2mm"], 17);
  EXPECT_EQ(loops["jacobi-2d"], 10);
  EXPECT_EQ(loops["syr2k"], 11);
  EXPECT_EQ(loops["trmm"], 9);
  EXPECT_EQ(loops["fib"], 2);
  EXPECT_EQ(loops["nqueens"], 4);
  int total = 0;
  for (const auto& [app, n] : loops) total += n;
  EXPECT_EQ(total, 840);
}

TEST(Corpus, EveryBenchmarkProgramCompilesAndProfiles) {
  const auto programs = data::build_benchmark_corpus(123);
  std::size_t skipped = 0;
  data::DatasetOptions opts;
  opts.walk.gamma = 8;  // keep this test fast
  const data::Dataset ds = data::build_dataset(programs, opts, &skipped);
  EXPECT_EQ(skipped, 0u);
  // Every for-loop became exactly one sample.
  EXPECT_EQ(ds.samples.size(), 840u);
}

TEST(Dataset, SampleShapesAreConsistent) {
  const data::Dataset ds = small_dataset();
  ASSERT_FALSE(ds.samples.empty());
  for (const auto& s : ds.samples) {
    EXPECT_GE(s.n, 1u);
    ASSERT_EQ(s.node_static.size(), s.n);
    ASSERT_EQ(s.node_dynamic.size(), s.n);
    ASSERT_EQ(s.aw_dist.size(), s.n);
    for (const auto& row : s.node_static) {
      EXPECT_EQ(row.size(), ds.static_dim);
    }
    for (const auto& row : s.aw_dist) {
      EXPECT_EQ(row.size(), ds.aw_vocab);
    }
    for (const auto& [a, b] : s.edges) {
      EXPECT_LT(a, s.n);
      EXPECT_LT(b, s.n);
    }
  }
}

TEST(Dataset, PatternLabelsMatchExpectations) {
  const data::Dataset ds = small_dataset();
  auto label_of = [&](const std::string& kernel_prefix, int loop_index) {
    int seen = 0;
    for (const auto& s : ds.samples) {
      if (s.kernel.rfind(kernel_prefix, 0) == 0) {
        if (seen++ == loop_index) return s.label;
      }
    }
    ADD_FAILURE() << "no sample for " << kernel_prefix;
    return -1;
  };
  EXPECT_EQ(label_of("t_k0", 0), 1);  // VecMap -> parallel
  EXPECT_EQ(label_of("t_k1", 0), 1);  // ReduceSum -> parallel (reduction)
  EXPECT_EQ(label_of("t_k2", 0), 1);  // ReduceMax -> parallel (expert)
  EXPECT_EQ(label_of("t_k3", 0), 0);  // Recurrence -> sequential
  EXPECT_EQ(label_of("t_k4", 0), 1);  // PrivTemp -> parallel
  EXPECT_EQ(label_of("t_k8", 0), 0);  // EarlyExit -> sequential
}

TEST(Dataset, ToolVerdictsShowTheCharacteristicGaps) {
  const data::Dataset ds = small_dataset();
  auto find = [&](const std::string& kernel, int loop_index) {
    int seen = 0;
    for (const auto& s : ds.samples) {
      if (s.kernel == kernel && seen++ == loop_index) return &s;
    }
    return static_cast<const data::GraphSample*>(nullptr);
  };
  // ReduceMax (t_k2): expert parallel, DiscoPoP misses min/max reductions.
  const auto* rmax = find("t_k2", 0);
  ASSERT_NE(rmax, nullptr);
  EXPECT_EQ(rmax->label, 1);
  EXPECT_FALSE(rmax->tool_discopop);
  // IndirectGather (t_k6): parallel; the indirection is read-only, so the
  // GCD-based tool can still prove it, but the polyhedral model cannot
  // represent the non-affine subscript at all.
  const auto* gather = find("t_k6", 0);
  ASSERT_NE(gather, nullptr);
  EXPECT_EQ(gather->label, 1);
  EXPECT_TRUE(gather->tool_discopop);
  EXPECT_TRUE(gather->tool_autopar);
  EXPECT_FALSE(gather->tool_pluto);
  // CallMapPure (t_k12): parallel, static tools give up at the call.
  const auto* call = find("t_k12", 0);
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(call->label, 1);
  EXPECT_TRUE(call->tool_discopop);
  EXPECT_FALSE(call->tool_autopar);
}

TEST(Dataset, SplitKeepsKernelsDisjointAndBalanceWorks) {
  const data::Dataset ds = small_dataset();
  const auto [train, test] = data::split_by_kernel(ds, 0.75, 5);
  EXPECT_EQ(train.size() + test.size(), ds.samples.size());
  std::set<std::string> train_kernels, test_kernels;
  for (const auto i : train) train_kernels.insert(ds.samples[i].kernel);
  for (const auto i : test) test_kernels.insert(ds.samples[i].kernel);
  for (const auto& k : train_kernels) {
    EXPECT_EQ(test_kernels.count(k), 0u) << k << " appears on both sides";
  }
  const auto balanced = data::balance_classes(ds, train, 5);
  int pos = 0, neg = 0;
  for (const auto i : balanced) {
    (ds.samples[i].label ? pos : neg)++;
  }
  EXPECT_EQ(pos, neg);
}

}  // namespace

namespace serialize_tests {

using namespace mvgnn;

TEST(Serialize, DatasetRoundTripsExactly) {
  par::Rng rng(3);
  std::vector<data::ProgramSpec> programs;
  for (const auto p : {data::Pattern::ReduceSum, data::Pattern::OffsetStencil,
                       data::Pattern::MatMulNest}) {
    data::ProgramSpec ps;
    ps.suite = "T";
    ps.app = "t";
    ps.pattern = p;
    ps.kernel = data::generate_kernel(p, std::string("sk_") +
                                             data::pattern_name(p), rng);
    programs.push_back(std::move(ps));
  }
  data::DatasetOptions opts;
  opts.walk.gamma = 8;
  const data::Dataset ds = data::build_dataset(programs, opts);

  std::stringstream buf;
  data::save_dataset(ds, buf);
  const data::Dataset back = data::load_dataset(buf);

  EXPECT_EQ(back.static_dim, ds.static_dim);
  EXPECT_EQ(back.aw_vocab, ds.aw_vocab);
  EXPECT_EQ(back.token_vocab.size(), ds.token_vocab.size());
  EXPECT_EQ(back.aw_vocab_table.size(), ds.aw_vocab_table.size());
  ASSERT_EQ(back.samples.size(), ds.samples.size());
  for (std::size_t i = 0; i < ds.samples.size(); ++i) {
    const auto& a = ds.samples[i];
    const auto& b = back.samples[i];
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.edges, b.edges);
    EXPECT_EQ(a.edge_kinds, b.edge_kinds);
    EXPECT_EQ(a.node_static, b.node_static);
    EXPECT_EQ(a.aw_dist, b.aw_dist);
    EXPECT_EQ(a.node_dynamic, b.node_dynamic);
    EXPECT_EQ(a.loop_features, b.loop_features);
    EXPECT_EQ(a.token_seq, b.token_seq);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.pattern_label, b.pattern_label);
    EXPECT_EQ(a.tool_autopar, b.tool_autopar);
    EXPECT_EQ(a.tool_pluto, b.tool_pluto);
    EXPECT_EQ(a.tool_discopop, b.tool_discopop);
    EXPECT_EQ(a.suite, b.suite);
    EXPECT_EQ(a.kernel, b.kernel);
    EXPECT_EQ(a.loop_line, b.loop_line);
  }
  // inst2vec rows survive bit-exactly.
  for (std::uint32_t v = 0; v < ds.inst2vec.vocab_size(); ++v) {
    const auto ra = ds.inst2vec.row(v);
    const auto rb = back.inst2vec.row(v);
    for (std::size_t d = 0; d < ra.size(); ++d) {
      EXPECT_EQ(ra[d], rb[d]);
    }
  }
}

TEST(Serialize, RejectsGarbageAndTruncation) {
  std::stringstream garbage("this is not a dataset");
  EXPECT_THROW((void)data::load_dataset(garbage), std::runtime_error);

  // Truncated valid stream.
  par::Rng rng(5);
  data::ProgramSpec ps;
  ps.suite = "T";
  ps.app = "t";
  ps.pattern = data::Pattern::VecMap;
  ps.kernel = data::generate_kernel(data::Pattern::VecMap, "sk_trunc", rng);
  data::DatasetOptions opts;
  opts.walk.gamma = 4;
  const data::Dataset ds = data::build_dataset({ps}, opts);
  std::stringstream buf;
  data::save_dataset(ds, buf);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)data::load_dataset(cut), std::runtime_error);
}

}  // namespace serialize_tests

namespace featurize_tests {

using namespace mvgnn;

TEST(Featurize, UnseenProgramMatchesReferenceWidths) {
  // Reference corpus.
  auto programs = data::build_generated_corpus(120, 33);
  data::DatasetOptions opts;
  opts.seed = 3;
  const data::Dataset ds = data::build_dataset(programs, opts);

  // A brand-new program (not in the corpus).
  par::Rng rng(99);
  data::ProgramSpec fresh;
  fresh.suite = "User";
  fresh.app = "user";
  fresh.pattern = data::Pattern::StencilCopy;
  fresh.kernel =
      data::generate_kernel(data::Pattern::StencilCopy, "fresh", rng);

  const auto samples = data::featurize_program(fresh, ds, opts);
  ASSERT_EQ(samples.size(), 1u);
  const auto& s = samples[0];
  EXPECT_EQ(s.label, 1);  // out-of-place stencil is parallel
  ASSERT_EQ(s.node_static.size(), s.n);
  for (const auto& row : s.node_static) {
    EXPECT_EQ(row.size(), ds.static_dim);
  }
  for (const auto& row : s.aw_dist) {
    EXPECT_EQ(row.size(), ds.aw_vocab);  // frozen vocab width
  }
  // Frozen vocabularies must not have grown.
  EXPECT_EQ(ds.aw_vocab_table.size(), ds.aw_vocab);
}

TEST(Featurize, WorksAfterDatasetReload) {
  auto programs = data::build_generated_corpus(60, 44);
  data::DatasetOptions opts;
  opts.seed = 4;
  opts.walk.gamma = 8;
  const data::Dataset ds = data::build_dataset(programs, opts);
  std::stringstream buf;
  data::save_dataset(ds, buf);
  const data::Dataset back = data::load_dataset(buf);

  par::Rng rng(5);
  data::ProgramSpec fresh;
  fresh.suite = "User";
  fresh.app = "user";
  fresh.kernel = data::generate_kernel(data::Pattern::ReduceSum, "fr", rng);
  const auto a = data::featurize_program(fresh, ds, opts);
  const auto b = data::featurize_program(fresh, back, opts);
  ASSERT_EQ(a.size(), b.size());
  // Identical featurization from the reloaded dataset.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node_static, b[i].node_static);
    EXPECT_EQ(a[i].aw_dist, b[i].aw_dist);
    EXPECT_EQ(a[i].label, b[i].label);
  }
}

}  // namespace featurize_tests
