// Classic-classifier baselines: correctness on synthetic separable data,
// weighting behaviour, and boosting improvement over a single stump.
#include <gtest/gtest.h>

#include "ml/classic.hpp"

namespace {

using namespace mvgnn;
using ml::FeatureRow;

/// Two-Gaussian blobs, linearly separable with margin.
void blobs(std::size_t n, std::vector<FeatureRow>& x, std::vector<int>& y,
           std::uint64_t seed) {
  par::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    const double cx = label ? 2.0 : -2.0;
    x.push_back({cx + rng.normal() * 0.5, -cx + rng.normal() * 0.5});
    y.push_back(label);
  }
}

/// XOR-style data: not linearly separable, easy for trees.
void xor_data(std::size_t n, std::vector<FeatureRow>& x, std::vector<int>& y,
              std::uint64_t seed) {
  par::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform() < 0.5 ? -1.0 : 1.0;
    const double b = rng.uniform() < 0.5 ? -1.0 : 1.0;
    x.push_back({a + rng.normal() * 0.2, b + rng.normal() * 0.2});
    y.push_back((a > 0) != (b > 0) ? 1 : 0);
  }
}

TEST(Svm, SeparatesBlobs) {
  std::vector<FeatureRow> x, xt;
  std::vector<int> y, yt;
  blobs(200, x, y, 1);
  blobs(100, xt, yt, 2);
  ml::LinearSvm svm;
  svm.fit(x, y);
  EXPECT_GE(ml::accuracy(svm, xt, yt), 0.97);
}

TEST(Svm, QuadraticMapHandlesXor) {
  std::vector<FeatureRow> x, xt;
  std::vector<int> y, yt;
  xor_data(400, x, y, 3);
  xor_data(200, xt, yt, 4);
  ml::LinearSvm quad;
  ml::LinearSvm::Params qp;
  qp.quadratic = true;
  qp.epochs = 120;
  quad.fit(x, y, qp);
  EXPECT_GE(ml::accuracy(quad, xt, yt), 0.9);
  // The purely linear machine cannot do better than chance-ish here.
  ml::LinearSvm lin;
  ml::LinearSvm::Params lp;
  lp.quadratic = false;
  lin.fit(x, y, lp);
  EXPECT_LE(ml::accuracy(lin, xt, yt), 0.75);
}

TEST(DecisionTree, SolvesXorGivenDepthAndRespectsDepthLimit) {
  std::vector<FeatureRow> x, xt;
  std::vector<int> y, yt;
  xor_data(400, x, y, 5);
  xor_data(200, xt, yt, 6);
  // Greedy gini splits have near-zero gain on balanced XOR, so the first
  // levels land at noise-driven thresholds; depth 7 is enough to recover.
  ml::DecisionTree tree;
  ml::DecisionTree::Params deep;
  deep.max_depth = 7;
  deep.min_leaf = 2;
  tree.fit(x, y, deep);
  EXPECT_GE(ml::accuracy(tree, xt, yt), 0.9);
  // Depth-1 stump can't express XOR.
  ml::DecisionTree stump;
  ml::DecisionTree::Params sp;
  sp.max_depth = 1;
  sp.min_leaf = 1;
  stump.fit(x, y, sp);
  EXPECT_LE(ml::accuracy(stump, xt, yt), 0.75);
}

TEST(DecisionTree, WeightedFitFollowsTheWeights) {
  // Three clusters; weights force the tree to prioritize the heavy points.
  std::vector<FeatureRow> x = {{0.0}, {1.0}, {2.0}, {3.0}};
  std::vector<int> y = {0, 0, 1, 1};
  std::vector<double> heavy_right = {0.01, 0.01, 10.0, 10.0};
  ml::DecisionTree tree;
  ml::DecisionTree::Params p;
  p.max_depth = 1;
  p.min_leaf = 1;
  tree.fit_weighted(x, y, heavy_right, p);
  EXPECT_EQ(tree.predict({2.5}), 1);
  EXPECT_EQ(tree.predict({0.5}), 0);
}

TEST(AdaBoost, BoostsStumpsOnDiagonalBoundary) {
  // A diagonal decision boundary (x0 + x1 > 0): a single axis-aligned
  // stump errs ~25%, boosting staircases the boundary far closer.
  auto diag = [](std::size_t n, std::vector<FeatureRow>& x,
                 std::vector<int>& y, std::uint64_t seed) {
    par::Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
      const double a = rng.uniform(-1.0, 1.0);
      const double b = rng.uniform(-1.0, 1.0);
      x.push_back({a, b});
      y.push_back(a + b > 0.0 ? 1 : 0);
    }
  };
  std::vector<FeatureRow> x, xt;
  std::vector<int> y, yt;
  diag(400, x, y, 7);
  diag(200, xt, yt, 8);
  ml::AdaBoost ada;
  ml::AdaBoost::Params ap;
  ap.rounds = 60;
  ada.fit(x, y, ap);
  ml::DecisionTree stump;
  ml::DecisionTree::Params sp;
  sp.max_depth = 1;
  sp.min_leaf = 1;
  stump.fit(x, y, sp);
  EXPECT_GT(ml::accuracy(ada, xt, yt), ml::accuracy(stump, xt, yt) + 0.05);
  EXPECT_GE(ml::accuracy(ada, xt, yt), 0.9);
}

TEST(AdaBoost, PerfectWeakLearnerStopsCleanly) {
  std::vector<FeatureRow> x, xt;
  std::vector<int> y, yt;
  blobs(100, x, y, 9);
  blobs(50, xt, yt, 10);
  ml::AdaBoost ada;
  ada.fit(x, y);
  EXPECT_GE(ml::accuracy(ada, xt, yt), 0.97);
}

TEST(Classifiers, DegenerateInputsDoNotCrash) {
  std::vector<FeatureRow> x = {{1.0, 2.0}};
  std::vector<int> y = {1};
  ml::DecisionTree tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.predict({1.0, 2.0}), 1);
  ml::AdaBoost ada;
  ada.fit(x, y);
  EXPECT_EQ(ada.predict({1.0, 2.0}), 1);
  ml::LinearSvm svm;
  svm.fit(x, y);
  (void)svm.predict({1.0, 2.0});
}

}  // namespace
