// Tests for the future-work extensions: parallel-pattern labels,
// decoupled static/dynamic inference, and unsupervised pretraining.
#include <gtest/gtest.h>

#include <set>

#include "analysis/tools.hpp"
#include "core/trainer.hpp"
#include "frontend/lower.hpp"
#include "profiler/profile.hpp"

namespace {

using namespace mvgnn;

analysis::ParKind pattern_of(const char* src,
                             std::vector<profiler::ArgInit> args) {
  static std::vector<std::unique_ptr<ir::Module>> keep;
  keep.push_back(std::make_unique<ir::Module>(frontend::compile(src, "t")));
  const auto prof = profiler::profile(*keep.back(), "kernel", args);
  const auto& loop = prof.loops.at(0);
  return analysis::oracle_pattern(*loop.fn, loop.loop, prof.dep);
}

TEST(ParallelPattern, ClassifiesTheThreeKinds) {
  EXPECT_EQ(pattern_of(R"(
const int N = 16;
void kernel(float[] a, float[] b) {
  for (int i = 0; i < N; i += 1) {
    b[i] = a[i] * 2.0;
  }
}
)",
                       {profiler::ArgInit::of_array(16, 1),
                        profiler::ArgInit::of_array(16, 2)}),
            analysis::ParKind::DoAll);

  EXPECT_EQ(pattern_of(R"(
const int N = 16;
float kernel(float[] a) {
  float s = 0.0;
  for (int i = 0; i < N; i += 1) {
    s = s + a[i];
  }
  return s;
}
)",
                       {profiler::ArgInit::of_array(16, 1)}),
            analysis::ParKind::Reduction);

  EXPECT_EQ(pattern_of(R"(
const int N = 16;
void kernel(float[] a) {
  for (int i = 1; i < N; i += 1) {
    a[i] = a[i - 1] + 1.0;
  }
}
)",
                       {profiler::ArgInit::of_array(16, 1)}),
            analysis::ParKind::Sequential);

  // Privatizable temporaries are DoAll (privatization, not a reduction).
  EXPECT_EQ(pattern_of(R"(
const int N = 16;
void kernel(float[] a, float[] b) {
  float t = 0.0;
  for (int i = 0; i < N; i += 1) {
    t = a[i] * 0.5;
    b[i] = t + t;
  }
}
)",
                       {profiler::ArgInit::of_array(16, 1),
                        profiler::ArgInit::of_array(16, 2)}),
            analysis::ParKind::DoAll);

  // fmax reductions are reductions too.
  EXPECT_EQ(pattern_of(R"(
const int N = 16;
float kernel(float[] a) {
  float s = -100000.0;
  for (int i = 0; i < N; i += 1) {
    s = fmax(s, a[i]);
  }
  return s;
}
)",
                       {profiler::ArgInit::of_array(16, 1)}),
            analysis::ParKind::Reduction);
}

TEST(ParallelPattern, NameRoundTrip) {
  EXPECT_STREQ(analysis::par_kind_name(analysis::ParKind::Sequential),
               "sequential");
  EXPECT_STREQ(analysis::par_kind_name(analysis::ParKind::DoAll), "doall");
  EXPECT_STREQ(analysis::par_kind_name(analysis::ParKind::Reduction),
               "reduction");
}

const data::Dataset& ext_dataset() {
  static const data::Dataset ds = [] {
    auto programs = data::build_generated_corpus(220, 88);
    data::DatasetOptions opts;
    opts.seed = 19;
    return data::build_dataset(programs, opts);
  }();
  return ds;
}

TEST(ParallelPattern, DatasetLabelsAreConsistentWithBinaryLabels) {
  const auto& ds = ext_dataset();
  int reductions = 0;
  for (const auto& s : ds.samples) {
    if (s.label == 0) {
      EXPECT_EQ(s.pattern_label, 0) << s.kernel;
    } else {
      EXPECT_NE(s.pattern_label, 0) << s.kernel;
    }
    reductions += (s.pattern_label == 2);
  }
  EXPECT_GT(reductions, 0);  // the corpus contains reductions
}

TEST(Decoupled, ZeroDynamicFeaturizerBlanksTheDynamicColumns) {
  const auto& ds = ext_dataset();
  const auto norm = core::Normalizer::fit(ds, ds.suite_indices(""));
  core::Featurizer full(ds, norm);
  core::Featurizer zeroed(ds, norm, core::LabelMode::Binary, true);
  const auto& a = full.get(0);
  const auto& b = zeroed.get(0);
  ASSERT_EQ(a.node_feats.shape(), b.node_feats.shape());
  const std::size_t d_static = ds.static_dim;
  for (std::size_t r = 0; r < a.node_feats.rows(); ++r) {
    for (std::size_t c = 0; c < a.node_feats.cols(); ++c) {
      if (c < d_static) {
        EXPECT_EQ(a.node_feats.at(r, c), b.node_feats.at(r, c));
      } else {
        EXPECT_EQ(b.node_feats.at(r, c), 0.0f);
      }
    }
  }
}

TEST(MultiClass, ThreeWayTrainerLearnsAboveChance) {
  const auto& ds = ext_dataset();
  auto [train, test] = data::split_by_kernel(ds, 0.75, 9);
  const auto norm = core::Normalizer::fit(ds, train);
  core::Featurizer feats(ds, norm, core::LabelMode::Pattern);
  EXPECT_EQ(feats.num_classes(), 3u);
  core::TrainConfig tc;
  tc.epochs = 18;
  core::MvGnnTrainer trainer(feats, core::default_config(feats), tc);
  trainer.fit(train, {});
  EXPECT_GE(trainer.accuracy(test), 0.55);  // 3-class chance is ~0.33
  // Predictions take all three values somewhere on the corpus.
  std::set<int> seen;
  for (std::size_t i = 0; i < ds.samples.size(); ++i) {
    seen.insert(trainer.predict(i).fused);
  }
  EXPECT_GE(seen.size(), 2u);
}

TEST(Pretrain, UnsupervisedObjectiveRunsAndHelpsOrAtLeastDoesNotBreak) {
  const auto& ds = ext_dataset();
  auto [train, test] = data::split_by_kernel(ds, 0.75, 29);
  train = data::balance_classes(ds, train, 29);
  const auto norm = core::Normalizer::fit(ds, train);
  core::Featurizer feats(ds, norm);
  core::TrainConfig tc;
  tc.epochs = 10;
  core::MvGnnTrainer trainer(feats, core::default_config(feats), tc);
  EXPECT_NO_THROW(trainer.pretrain_unsupervised(train, 2));
  trainer.fit(train, {});
  EXPECT_GE(trainer.accuracy(test), 0.6);
}

}  // namespace

namespace typed_edges_tests {

using namespace mvgnn;

TEST(TypedEdges, RelationAdjacencySeparatesKinds) {
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> edges = {
      {0, 1}, {1, 2}, {0, 2}};
  const std::vector<std::uint8_t> kinds = {0, 1, 1};
  const auto hier = nn::relation_adjacency(3, edges, kinds, 0).to_dense();
  const auto raw = nn::relation_adjacency(3, edges, kinds, 1).to_dense();
  // Hierarchy relation has only the 0-1 edge.
  EXPECT_GT(hier.at(0, 1), 0.0f);
  EXPECT_EQ(hier.at(1, 2), 0.0f);
  // RAW relation has 1-2 and 0-2 but not 0-1.
  EXPECT_EQ(raw.at(0, 1), 0.0f);
  EXPECT_GT(raw.at(1, 2), 0.0f);
  EXPECT_GT(raw.at(0, 2), 0.0f);
  // Rows normalize to 1 where they have edges, 0 where they do not.
  float row0 = 0.0f;
  for (std::size_t j = 0; j < 3; ++j) row0 += raw.at(0, j);
  EXPECT_NEAR(row0, 1.0f, 1e-6f);
  float hier_row2 = 0.0f;
  for (std::size_t j = 0; j < 3; ++j) hier_row2 += hier.at(2, j);
  EXPECT_EQ(hier_row2, 0.0f);
}

TEST(TypedEdges, RgcnConvShapesAndGradients) {
  par::Rng rng(4);
  nn::RgcnConv conv(6, 5, 3, rng);
  EXPECT_EQ(conv.num_relations(), 3u);
  EXPECT_EQ(conv.num_parameters(), (1 + 3) * 6 * 5);
  std::vector<ag::CsrMatrix> ahats;
  for (int r = 0; r < 3; ++r) {
    ahats.push_back(nn::relation_adjacency(
        4, {{0, 1}, {2, 3}}, {static_cast<std::uint8_t>(r), 1}, r));
  }
  par::Rng data_rng(5);
  ag::Tensor x = ag::Tensor::randn({4, 6}, data_rng, 1.0f, false);
  ag::Tensor z = conv.forward(ahats, x);
  EXPECT_EQ(z.rows(), 4u);
  EXPECT_EQ(z.cols(), 5u);
  ag::Tensor loss = ag::sum(z);
  EXPECT_NO_THROW(loss.backward());
  bool any_grad = false;
  for (const auto& p : conv.parameters()) {
    for (const float g : p.grad()) {
      if (g != 0.0f) any_grad = true;
    }
  }
  EXPECT_TRUE(any_grad);
}

TEST(TypedEdges, RelationalMvGnnTrainsEndToEnd) {
  const auto& ds = ext_dataset();
  auto [train, test] = data::split_by_kernel(ds, 0.75, 31);
  train = data::balance_classes(ds, train, 31);
  const auto norm = core::Normalizer::fit(ds, train);
  core::Featurizer feats(ds, norm, core::LabelMode::Binary, false,
                         /*typed_edges=*/true);
  core::MvGnnConfig cfg = core::default_config(feats);
  cfg.typed_edges = true;
  core::TrainConfig tc;
  tc.epochs = 12;
  core::MvGnnTrainer trainer(feats, cfg, tc);
  trainer.fit(train, {});
  EXPECT_GE(trainer.accuracy(test), 0.6);
}

}  // namespace typed_edges_tests
