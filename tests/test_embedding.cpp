// inst2vec-style embedding tests: statement normalization, context pair
// generation, and skip-gram training sanity.
#include <gtest/gtest.h>

#include "embedding/normalizer.hpp"
#include "embedding/skipgram.hpp"
#include "frontend/lower.hpp"

namespace {

using namespace mvgnn;

TEST(Normalizer, AbstractsIdentifiersAndConstants) {
  const ir::Module m = frontend::compile(R"(
float kernel(float[] a, float[] b) {
  float x = a[0] * 2.0;
  float y = b[1] * 3.5;
  return x + y;
}
)",
                                         "t");
  const ir::Function& fn = *m.find("kernel");
  // The two `arrayload * constant` statements normalize to the same token
  // despite different arrays and constants.
  std::vector<std::string> muls;
  for (const ir::Instruction& in : fn.instrs) {
    if (in.op == ir::Opcode::FMul) muls.push_back(embedding::normalize(in));
  }
  ASSERT_EQ(muls.size(), 2u);
  EXPECT_EQ(muls[0], muls[1]);
}

TEST(Normalizer, BuiltinsKeepTheirNamesUserCallsDoNot) {
  const ir::Module m = frontend::compile(R"(
float helper(float x) { return x; }
float kernel(float a) {
  return sqrt(a) + exp(a) + helper(a);
}
)",
                                         "t");
  const ir::Function& fn = *m.find("kernel");
  std::vector<std::string> calls;
  for (const ir::Instruction& in : fn.instrs) {
    if (in.op == ir::Opcode::Call) calls.push_back(embedding::normalize(in));
  }
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_NE(calls[0], calls[1]);  // sqrt vs exp differ
  EXPECT_NE(calls[2].find("@user"), std::string::npos);
}

TEST(Vocab, GrowsAndFreezes) {
  embedding::Vocab v;
  const auto a = v.id_of("tok_a", true);
  const auto b = v.id_of("tok_b", true);
  EXPECT_NE(a, b);
  EXPECT_NE(a, 0u);
  EXPECT_EQ(v.id_of("tok_a", true), a);
  v.freeze();
  EXPECT_EQ(v.id_of("tok_new", true), 0u);
  EXPECT_EQ(v.size(), 3u);
}

TEST(ContextPairs, SymmetricAndNonEmpty) {
  const ir::Module m = frontend::compile(R"(
float kernel(float a) {
  float x = a * 2.0;
  return x + 1.0;
}
)",
                                         "t");
  embedding::Vocab v;
  const auto pairs =
      embedding::context_pairs(*m.find("kernel"), v, /*grow=*/true);
  ASSERT_FALSE(pairs.empty());
  // Every (a, b) has its mirror (b, a).
  for (const auto& [x, y] : pairs) {
    EXPECT_NE(std::find(pairs.begin(), pairs.end(), std::make_pair(y, x)),
              pairs.end());
  }
}

TEST(SkipGram, CoOccurringTokensEndUpCloser) {
  // Synthetic vocabulary: tokens 1 and 2 always co-occur, token 3 only ever
  // pairs with 4. After training, sim(1,2) should beat sim(1,3).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (int i = 0; i < 400; ++i) {
    pairs.emplace_back(1, 2);
    pairs.emplace_back(2, 1);
    pairs.emplace_back(3, 4);
    pairs.emplace_back(4, 3);
  }
  embedding::SkipGramParams params;
  params.dim = 16;
  params.epochs = 4;
  par::Rng rng(11);
  const auto table = embedding::train_skipgram(5, pairs, params, rng);
  EXPECT_GT(table.cosine(1, 2), table.cosine(1, 3));
  EXPECT_GT(table.cosine(3, 4), table.cosine(3, 2));
}

TEST(SkipGram, MeanOfIsAverageAndHandlesEmpty) {
  embedding::EmbeddingTable t(3, 4);
  for (std::uint32_t d = 0; d < 4; ++d) {
    t.row(1)[d] = 1.0f;
    t.row(2)[d] = 3.0f;
  }
  const std::vector<std::uint32_t> ids = {1, 2};
  const auto mean = t.mean_of(ids);
  for (const float x : mean) EXPECT_FLOAT_EQ(x, 2.0f);
  const auto empty = t.mean_of(std::span<const std::uint32_t>{});
  for (const float x : empty) EXPECT_FLOAT_EQ(x, 0.0f);
}

TEST(SkipGram, DeterministicGivenSeed) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs = {
      {1, 2}, {2, 1}, {1, 3}, {3, 1}};
  embedding::SkipGramParams params;
  params.dim = 8;
  par::Rng r1(5), r2(5);
  const auto a = embedding::train_skipgram(4, pairs, params, r1);
  const auto b = embedding::train_skipgram(4, pairs, params, r2);
  for (std::uint32_t v = 0; v < 4; ++v) {
    for (std::uint32_t d = 0; d < 8; ++d) {
      EXPECT_FLOAT_EQ(a.row(v)[d], b.row(v)[d]);
    }
  }
}

}  // namespace
