// PEG construction, sub-PEG extraction, anonymous-walk machinery, and DOT
// rendering.
#include <gtest/gtest.h>

#include "frontend/lower.hpp"
#include "graph/anon_walk.hpp"
#include "graph/peg.hpp"
#include "profiler/profile.hpp"

namespace {

using namespace mvgnn;
using graph::AnonWalk;

TEST(AnonWalk, AnonymizationUsesFirstOccurrenceIndices) {
  // The paper's example: (v1, v2, v3, v4, v2) -> (0, 1, 2, 3, 1).
  EXPECT_EQ(graph::anonymize({10, 20, 30, 40, 20}),
            (AnonWalk{0, 1, 2, 3, 1}));
  EXPECT_EQ(graph::anonymize({7, 7, 7}), (AnonWalk{0, 0, 0}));
  EXPECT_EQ(graph::anonymize({}), AnonWalk{});
  // Isomorphic walks share one type regardless of concrete ids.
  EXPECT_EQ(graph::anonymize({1, 2, 1}), graph::anonymize({9, 4, 9}));
}

TEST(AnonWalk, VocabGrowsThenFreezes) {
  graph::AwVocab vocab;
  const auto id1 = vocab.id_of({0, 1, 0}, /*grow=*/true);
  const auto id2 = vocab.id_of({0, 1, 2}, /*grow=*/true);
  EXPECT_NE(id1, 0u);
  EXPECT_NE(id2, 0u);
  EXPECT_NE(id1, id2);
  EXPECT_EQ(vocab.id_of({0, 1, 0}, true), id1);  // stable
  vocab.freeze();
  EXPECT_EQ(vocab.id_of({0, 1, 2, 3}, true), 0u);  // unknown slot after freeze
  EXPECT_EQ(vocab.size(), 3u);  // two walks + unknown slot
}

TEST(AnonWalk, DistributionsAreNormalizedAndDeterministic) {
  graph::WalkGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  graph::AwVocab vocab;
  graph::AwParams params;
  params.gamma = 32;
  params.length = 4;
  par::Rng rng1(7), rng2(7);
  const auto d1 = graph::node_aw_distribution(g, 0, params, vocab, true, rng1);
  const auto d2 = graph::node_aw_distribution(g, 0, params, vocab, true, rng2);
  float sum = 0.0f;
  for (const float x : d1) sum += x;
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
  // Same seed, same vocab -> identical distribution (after aligning sizes).
  ASSERT_EQ(d1.size(), d2.size());
  for (std::size_t i = 0; i < d1.size(); ++i) EXPECT_EQ(d1[i], d2[i]);
}

TEST(AnonWalk, CycleAndPathNodesHaveDifferentSignatures) {
  // A triangle walker revisits its start much sooner than a path walker —
  // the AW distributions must differ (this is the structural signal the
  // paper's Fig. 1 argues for).
  graph::WalkGraph tri(3);
  tri.add_edge(0, 1);
  tri.add_edge(1, 2);
  tri.add_edge(2, 0);
  graph::WalkGraph path(5);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  path.add_edge(2, 3);
  path.add_edge(3, 4);
  graph::AwVocab vocab;
  graph::AwParams params;
  params.gamma = 64;
  params.length = 5;
  par::Rng rng(3);
  auto dt = graph::node_aw_distribution(tri, 0, params, vocab, true, rng);
  auto dp = graph::node_aw_distribution(path, 0, params, vocab, true, rng);
  dt.resize(vocab.size());
  dp.resize(vocab.size());
  float l1 = 0.0f;
  for (std::size_t i = 0; i < vocab.size(); ++i) {
    l1 += std::abs(dt[i] - dp[i]);
  }
  EXPECT_GT(l1, 0.3f);
}

TEST(AnonWalk, IsolatedNodeGetsTrivialWalks) {
  graph::WalkGraph g(2);  // no edges
  graph::AwVocab vocab;
  graph::AwParams params;
  par::Rng rng(1);
  const auto d = graph::node_aw_distribution(g, 0, params, vocab, true, rng);
  float sum = 0.0f;
  for (const float x : d) sum += x;
  EXPECT_NEAR(sum, 1.0f, 1e-5f);  // the length-1 walk type absorbs all mass
}

TEST(AnonWalk, GraphDistributionIsMeanOfNodes) {
  graph::WalkGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  graph::AwVocab vocab;
  graph::AwParams params;
  params.gamma = 16;
  par::Rng rng(5);
  const auto d = graph::graph_aw_distribution(g, params, vocab, true, rng);
  float sum = 0.0f;
  for (const float x : d) sum += x;
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

// ---------------------------------------------------------------------------
// PEG
// ---------------------------------------------------------------------------

struct Pipeline {
  std::unique_ptr<ir::Module> module;
  profiler::ProfileResult prof;
  graph::Peg peg;
};

Pipeline run_pipeline(const char* src, std::vector<profiler::ArgInit> args) {
  Pipeline p;
  p.module = std::make_unique<ir::Module>(frontend::compile(src, "t"));
  p.prof = profiler::profile(*p.module, "kernel", args);
  p.peg = graph::build_peg(*p.module, p.prof);
  return p;
}

TEST(Peg, HierarchyEdgesLinkFunctionLoopsAndCus) {
  const auto p = run_pipeline(R"(
const int N = 8;
void kernel(float[] a) {
  for (int i = 0; i < N; i += 1) {
    for (int j = 0; j < N; j += 1) {
      a[i * N + j] = 1.0;
    }
  }
}
)",
                              {profiler::ArgInit::of_array(64)});
  int hierarchy = 0, dep = 0;
  for (const auto& e : p.peg.edges) {
    (e.kind == graph::EdgeKind::Hierarchy ? hierarchy : dep)++;
  }
  EXPECT_GE(hierarchy, 3);  // fn->loop0, loop0->loop1, loop1->CUs
  // Every loop node's parent edge exists exactly once.
  std::vector<int> in_hier(p.peg.nodes.size(), 0);
  for (const auto& e : p.peg.edges) {
    if (e.kind == graph::EdgeKind::Hierarchy) in_hier[e.dst]++;
  }
  for (std::uint32_t i = 0; i < p.peg.nodes.size(); ++i) {
    if (p.peg.nodes[i].kind != graph::NodeKind::Function) {
      EXPECT_EQ(in_hier[i], 1) << "node " << i;
    }
  }
}

TEST(Peg, DepEdgesCarryTypesAndCounts) {
  const auto p = run_pipeline(R"(
const int N = 8;
void kernel(float[] a) {
  for (int i = 1; i < N; i += 1) {
    a[i] = a[i - 1] + 1.0;
  }
}
)",
                              {profiler::ArgInit::of_array(8)});
  bool raw_edge = false;
  for (const auto& e : p.peg.edges) {
    if (e.kind == graph::EdgeKind::Dep && e.dep == profiler::DepType::RAW) {
      raw_edge = true;
      EXPECT_GT(e.count, 0u);
    }
  }
  EXPECT_TRUE(raw_edge);
}

TEST(Peg, SubPegOfInnerLoopExcludesOuterNodes) {
  const auto p = run_pipeline(R"(
const int N = 8;
void kernel(float[] a, float[] b) {
  for (int i = 0; i < N; i += 1) {
    b[i] = a[i];
    for (int j = 0; j < N; j += 1) {
      a[j] = a[j] + 1.0;
    }
  }
}
)",
                              {profiler::ArgInit::of_array(8),
                               profiler::ArgInit::of_array(8)});
  const ir::Function* fn = p.module->find("kernel");
  const auto outer = graph::extract_sub_peg(p.peg, fn, 0);
  const auto inner = graph::extract_sub_peg(p.peg, fn, 1);
  EXPECT_GT(outer.num_nodes(), inner.num_nodes());
  // The inner sub-PEG's root is the inner loop and no node is a function.
  EXPECT_EQ(p.peg.nodes[inner.nodes[0]].kind, graph::NodeKind::Loop);
  EXPECT_EQ(p.peg.nodes[inner.nodes[0]].loop, 1u);
  for (const auto n : inner.nodes) {
    EXPECT_NE(p.peg.nodes[n].kind, graph::NodeKind::Function);
  }
  // Local edge indices are in range.
  for (const auto& e : inner.edges) {
    EXPECT_LT(e.src, inner.num_nodes());
    EXPECT_LT(e.dst, inner.num_nodes());
  }
}

TEST(Peg, DotOutputMentionsEveryNode) {
  const auto p = run_pipeline(R"(
void kernel(float[] a) {
  for (int i = 0; i < 4; i += 1) {
    a[i] = 1.0;
  }
}
)",
                              {profiler::ArgInit::of_array(4)});
  const std::string dot = graph::to_dot(p.peg, "test");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (std::uint32_t i = 0; i < p.peg.nodes.size(); ++i) {
    EXPECT_NE(dot.find("n" + std::to_string(i) + " ["), std::string::npos);
  }
  const auto sub = graph::extract_sub_peg(p.peg, p.module->find("kernel"), 0);
  EXPECT_NE(graph::to_dot(p.peg, sub, "sub").find("digraph"),
            std::string::npos);
}

}  // namespace
