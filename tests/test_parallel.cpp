// Parallel-runtime tests: TaskGroup scoping (per-group waits and error
// delivery, help-while-wait, nested parallel_for), Rng state restore
// hygiene, the GradAccumulator fixed-tree reduction, and the data-parallel
// trainer's determinism matrix — identical weights and curves for
// --threads 1/2/8 plus kill-and-resume under --threads 4.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/kernels.hpp"
#include "fault/fault.hpp"
#include "nn/module.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/rng.hpp"
#include "parallel/task_group.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/optim.hpp"

namespace {

using namespace mvgnn;
namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// TaskGroup semantics
// ---------------------------------------------------------------------------

TEST(TaskGroup, RunsTasksAndWaitReturnsAfterAll) {
  par::ThreadPool pool(2);
  par::TaskGroup group(pool);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    group.run([&done] { done.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(done.load(), 16);

  // The group is reusable after a wait.
  group.run([&done] { done.fetch_add(1); });
  group.wait();
  EXPECT_EQ(done.load(), 17);
}

/// Regression for the pool-global wait/error scoping bug: caller B used to
/// stall on caller A's tasks and could receive A's exception from the
/// shared `first_error_` slot. With groups, A's failure is delivered to A
/// and only A, and B's wait covers B's tasks and only B's.
TEST(TaskGroup, TwoConcurrentCallersGetTheirOwnErrorsAndWaits) {
  par::ThreadPool pool(2);

  // Gate A's failing task so it reliably overlaps B's wait.
  std::mutex mu;
  std::condition_variable cv;
  bool release_a = false;

  par::TaskGroup a(pool);
  a.run([&] {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return release_a; });
    throw std::runtime_error("caller A's private failure");
  });

  par::TaskGroup b(pool);
  std::atomic<int> b_done{0};
  for (int i = 0; i < 8; ++i) {
    b.run([&b_done] { b_done.fetch_add(1); });
  }
  // B's wait must complete while A's task is still blocked — and must not
  // surface A's exception, which has not even been thrown yet.
  EXPECT_NO_THROW(b.wait());
  EXPECT_EQ(b_done.load(), 8);

  {
    std::lock_guard lock(mu);
    release_a = true;
  }
  cv.notify_all();
  EXPECT_THROW(a.wait(), std::runtime_error);
  // After the rethrow the group is clean again.
  a.run([] {});
  EXPECT_NO_THROW(a.wait());
}

/// Regression: a pool task running parallel_for on its own pool used to
/// deadlock — the inner pool-global wait() could never observe quiescence
/// while the outer task it was called from counted as in-flight. With
/// per-fan-out groups and help-while-wait the nesting completes.
TEST(TaskGroup, NestedParallelForCompletes) {
  par::ThreadPool pool(2);
  std::atomic<int> cells{0};
  par::parallel_for(
      0, 8,
      [&](std::size_t) {
        par::parallel_for(
            0, 8, [&](std::size_t) { cells.fetch_add(1); }, pool,
            /*grain=*/1);
      },
      pool, /*grain=*/1);
  EXPECT_EQ(cells.load(), 64);
}

/// On a single-worker pool the worker is occupied by the outer task, so the
/// inner group's tasks can only ever run on the thread blocked in wait() —
/// observing completion proves help-while-wait executes queued tasks.
TEST(TaskGroup, WaiterHelpsWhenAllWorkersAreBusy) {
  auto& helped = obs::Registry::global().counter("pool.helped_tasks_total");
  const std::uint64_t before = helped.value();
  par::ThreadPool pool(1);
  par::TaskGroup outer(pool);
  std::atomic<int> inner_done{0};
  outer.run([&] {
    par::TaskGroup inner(pool);
    for (int i = 0; i < 4; ++i) {
      inner.run([&inner_done] { inner_done.fetch_add(1); });
    }
    inner.wait();
  });
  outer.wait();
  EXPECT_EQ(inner_done.load(), 4);
  EXPECT_GE(helped.value(), before + 4);
}

TEST(TaskGroup, NestedTaskFailurePropagatesThroughTheOuterGroup) {
  par::ThreadPool pool(2);
  EXPECT_THROW(
      par::parallel_for(
          0, 4,
          [&](std::size_t i) {
            par::parallel_for(
                0, 4,
                [&](std::size_t j) {
                  if (i == 2 && j == 3) throw std::runtime_error("inner boom");
                },
                pool, /*grain=*/1);
          },
          pool, /*grain=*/1),
      std::runtime_error);
}

TEST(TaskGroup, DestructionDropsQueuedTasksWithoutTerminating) {
  par::ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  bool release = false;
  std::atomic<int> first_done{0};
  std::atomic<int> queued_ran{0};
  std::thread releaser;
  {
    par::TaskGroup group(pool);
    group.run([&] {
      std::unique_lock lock(mu);
      started = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
      first_done.fetch_add(1);
    });
    {
      // The sole worker is provably inside the first task before anything
      // else is queued: the four tasks below can only ever sit in the queue.
      std::unique_lock lock(mu);
      cv.wait(lock, [&] { return started; });
    }
    for (int i = 0; i < 4; ++i) {
      group.run([&queued_ran] { queued_ran.fetch_add(1); });
    }
    // Unblock the first task only after ~TaskGroup has begun (it discards
    // the queued tasks at entry, then waits out the running one). The sleep
    // only needs to outlast the dtor's queue sweep, not any real work.
    releaser = std::thread([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      std::lock_guard lock(mu);
      release = true;
      cv.notify_all();
    });
    // No wait(): destruction drops the queued tasks, waits for the running
    // one, and must not throw or crash.
  }
  releaser.join();
  EXPECT_EQ(first_done.load(), 1);
  EXPECT_EQ(queued_ran.load(), 0);
}

// ---------------------------------------------------------------------------
// Rng restore hygiene
// ---------------------------------------------------------------------------

TEST(Rng, RestoreRejectsMalformedStatesAndLeavesEngineUntouched) {
  par::Rng rng(1234);
  (void)rng.uniform();
  const std::string good = rng.state();

  par::Rng probe(99);
  EXPECT_FALSE(probe.restore(""));
  EXPECT_FALSE(probe.restore("not a state"));
  EXPECT_FALSE(probe.restore("123"));  // truncated: engine only, no base
  EXPECT_FALSE(probe.restore(good + " trailing-garbage"));

  // Every failed restore above left `probe` exactly on its original
  // trajectory: it still produces the same draws as a fresh Rng(99).
  par::Rng fresh(99);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(probe.uniform_u64(1u << 20), fresh.uniform_u64(1u << 20));
  }

  EXPECT_TRUE(probe.restore(good));
  par::Rng cont(1234);
  (void)cont.uniform();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(probe.uniform_u64(1u << 20), cont.uniform_u64(1u << 20));
  }
}

TEST(Checkpoint, LoadRejectsMalformedRngFieldWithOffset) {
  // Encode a checkpoint whose RNG field is structurally intact (length and
  // CRC check out) but semantically garbage. The loader must flag it as
  // corruption at the field's byte offset rather than handing the trainer
  // an Rng whose engine state is unspecified.
  par::Rng rng(7);
  struct TwoTensorModel : nn::Module {
    std::vector<ag::Tensor> ps;
    [[nodiscard]] std::vector<ag::Tensor> parameters() const override {
      return ps;
    }
  } model;
  model.ps = {ag::Tensor::randn({5, 3}, rng), ag::Tensor::randn({3, 2}, rng)};
  ag::Adam opt(1e-3f);
  opt.add_params(model.ps);

  core::CheckpointMeta meta;
  meta.epoch = 1;
  meta.step = 1;
  meta.rng_state = "certainly not an engine dump";
  const std::string bytes = core::encode_checkpoint(meta, model, opt);

  std::istringstream is(bytes);
  try {
    (void)core::load_checkpoint(is, model, opt);
    FAIL() << "malformed RNG state must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::strstr(e.what(), "malformed RNG state"), nullptr)
        << e.what();
    EXPECT_NE(std::strstr(e.what(), "offset"), nullptr) << e.what();
  }
}

// ---------------------------------------------------------------------------
// GradAccumulator / tree_merge
// ---------------------------------------------------------------------------

/// Writes `v` into the parameter's gradient buffer (the optimizer-side
/// idiom: grad() exposes the node's storage).
void set_grad(const ag::Tensor& p, const std::vector<float>& v) {
  auto& g = const_cast<std::vector<float>&>(p.grad());
  ASSERT_EQ(g.size(), v.size());
  g = v;
}

TEST(GradAccumulator, AccumulateScalesAndMergeAdds) {
  par::Rng rng(3);
  std::vector<ag::Tensor> params = {ag::Tensor::randn({2, 2}, rng)};
  set_grad(params[0], {1.0f, 2.0f, 3.0f, 4.0f});

  ag::GradAccumulator a(params);
  a.accumulate(params, 0.5f);
  EXPECT_EQ(a.grads()[0], (std::vector<float>{0.5f, 1.0f, 1.5f, 2.0f}));
  a.accumulate(params, 0.5f);  // accumulates, not overwrites
  EXPECT_EQ(a.grads()[0], (std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f}));

  ag::GradAccumulator b(params);
  b.accumulate(params, 1.0f);
  a.merge(b);
  EXPECT_EQ(a.grads()[0], (std::vector<float>{2.0f, 4.0f, 6.0f, 8.0f}));

  a.store_to(params);
  EXPECT_EQ(params[0].grad(), (std::vector<float>{2.0f, 4.0f, 6.0f, 8.0f}));
}

TEST(GradAccumulator, TreeMergeUsesAFixedPairingOrder) {
  // Five shards with values chosen so float rounding distinguishes
  // association orders; the reduction must equal the documented pairing
  // ((s0+s1)+(s2+s3))+s4 bit for bit.
  const std::vector<float> vals = {1e8f, 1.0f, -1e8f, 1.5f, 0.25f};
  par::Rng rng(4);
  std::vector<ag::Tensor> params = {ag::Tensor::randn({1, 1}, rng)};

  std::vector<ag::GradAccumulator> shards;
  for (const float v : vals) {
    set_grad(params[0], {v});
    ag::GradAccumulator acc(params);
    acc.accumulate(params, 1.0f);
    shards.push_back(std::move(acc));
  }
  ag::tree_merge(shards);

  const float expected = ((vals[0] + vals[1]) + (vals[2] + vals[3])) + vals[4];
  EXPECT_EQ(shards[0].grads()[0][0], expected);
}

// ---------------------------------------------------------------------------
// Data-parallel trainer determinism
// ---------------------------------------------------------------------------

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("mvgnn_par_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

struct FaultGuard {
  ~FaultGuard() { fault::disarm_all(); }
};

/// Two instances of each generator pattern: ~12 samples, so a train split
/// of 9 gives every epoch multiple optimizer steps AND every full
/// mini-batch of 8 several kDpShardRows-sized shards — the partition the
/// determinism claims below are actually about.
data::Dataset tiny_dataset(std::uint64_t seed) {
  par::Rng rng(seed);
  std::vector<data::ProgramSpec> programs;
  int i = 0;
  for (int rep = 0; rep < 2; ++rep) {
    for (const auto p :
         {data::Pattern::VecMap, data::Pattern::ReduceSum,
          data::Pattern::Recurrence, data::Pattern::EarlyExit,
          data::Pattern::PrivTemp, data::Pattern::StencilCopy}) {
      data::ProgramSpec ps;
      ps.suite = "T";
      ps.app = "t";
      ps.pattern = p;
      ps.kernel = data::generate_kernel(p, "dp_k" + std::to_string(i++), rng);
      programs.push_back(std::move(ps));
    }
  }
  data::DatasetOptions opts;
  opts.seed = 13;
  opts.walk.gamma = 8;
  return data::build_dataset(programs, opts);
}

struct TrainSetup {
  data::Dataset ds;
  core::Normalizer norm;
  std::unique_ptr<core::Featurizer> feats;
  std::vector<std::size_t> train, test;

  explicit TrainSetup(std::uint64_t seed) : ds(tiny_dataset(seed)) {
    for (std::size_t i = 0; i < ds.samples.size(); ++i) {
      (i % 4 == 3 ? test : train).push_back(i);
    }
    norm = core::Normalizer::fit(ds, train);
    feats = std::make_unique<core::Featurizer>(ds, norm);
  }

  [[nodiscard]] core::TrainConfig config(std::size_t threads) const {
    core::TrainConfig tc;
    tc.epochs = 3;
    tc.seed = 9;
    // Big enough relative to kDpShardRows (4) that a mini-batch splits
    // into several shards — the partition the determinism claim is about.
    tc.batch_size = 8;
    tc.threads = threads;
    return tc;
  }

  struct Run {
    std::vector<core::EpochStat> curve;
    std::string weights;
  };

  [[nodiscard]] Run run(const core::TrainConfig& tc) const {
    core::MvGnnTrainer trainer(*feats, core::default_config(*feats), tc);
    Run r;
    r.curve = trainer.fit(train, test);
    std::ostringstream os(std::ios::binary);
    nn::save_weights(trainer.model(), os);
    r.weights = std::move(os).str();
    return r;
  }
};

void expect_identical_curves(const std::vector<core::EpochStat>& a,
                             const std::vector<core::EpochStat>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(core::EpochStat)), 0)
        << "epoch " << i << ": " << a[i].loss << " vs " << b[i].loss;
  }
}

TEST(DataParallel, ThreadCountMatrixIsBitIdentical) {
  const TrainSetup setup(41);
  const TrainSetup::Run t1 = setup.run(setup.config(1));
  const TrainSetup::Run t2 = setup.run(setup.config(2));
  const TrainSetup::Run t8 = setup.run(setup.config(8));

  ASSERT_EQ(t1.curve.size(), 3u);
  expect_identical_curves(t1.curve, t2.curve);
  expect_identical_curves(t1.curve, t8.curve);

  ASSERT_FALSE(t1.weights.empty());
  EXPECT_EQ(t1.weights, t2.weights) << "threads=2 diverged from threads=1";
  EXPECT_EQ(t1.weights, t8.weights) << "threads=8 diverged from threads=1";
}

TEST(DataParallel, TrainingAdvancesTheShardCounter) {
  auto& shards = obs::Registry::global().counter("trainer.shards_total");
  const std::uint64_t before = shards.value();
  const TrainSetup setup(42);
  (void)setup.run(setup.config(2));
  EXPECT_GT(shards.value(), before);
}

TEST(DataParallel, KillAndResumeAtFourThreadsMatchesSingleThreadCurve) {
  FaultGuard guard;
  const TrainSetup setup(43);
  TempDir dir("dp_resume");

  // Reference: the uninterrupted single-thread run.
  const TrainSetup::Run full = setup.run(setup.config(1));

  // A four-thread run dies mid-epoch-1 (the fault fires before the second
  // optimizer step of that epoch), leaving the epoch-1 checkpoint.
  core::TrainConfig crash_tc = setup.config(4);
  crash_tc.checkpoint_dir = dir.str();
  const std::size_t steps_per_epoch =
      (setup.train.size() + crash_tc.batch_size - 1) / crash_tc.batch_size;
  fault::arm("trainer.step", steps_per_epoch + 2);
  EXPECT_THROW(setup.run(crash_tc), fault::InjectedFault);
  fault::disarm_all();

  core::TrainConfig resume_tc = setup.config(4);
  resume_tc.checkpoint_dir = dir.str();
  resume_tc.resume_from = core::latest_checkpoint(dir.str());
  ASSERT_EQ(resume_tc.resume_from, core::checkpoint_path(dir.str(), 1));
  const TrainSetup::Run tail = setup.run(resume_tc);

  expect_identical_curves(full.curve, tail.curve);
  EXPECT_EQ(full.weights, tail.weights);
}

}  // namespace
