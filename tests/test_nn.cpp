// Layer tests: shapes, adjacency normalization, LSTM recurrence, weight
// serialization, and end-to-end trainability of small networks.
#include <gtest/gtest.h>

#include <sstream>

#include "nn/layers.hpp"
#include "tensor/optim.hpp"

namespace {

using namespace mvgnn;
using ag::Tensor;

TEST(Linear, ShapesAndBias) {
  par::Rng rng(1);
  nn::Linear lin(4, 3, rng);
  Tensor x = Tensor::full({5, 4}, 0.0f);
  Tensor y = lin.forward(x);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 3u);
  // Zero input -> bias rows; bias initializes to zero.
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], 0.0f);
  }
  EXPECT_EQ(lin.num_parameters(), 4 * 3 + 3);
}

TEST(Adjacency, RowsSumToOneAndSymmetrize) {
  const auto csr = nn::dgcnn_adjacency(3, {{0, 1}});
  const Tensor ahat = csr.to_dense();
  for (std::size_t r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) sum += ahat.at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
  // The directed edge 0->1 appears in both directions.
  EXPECT_GT(ahat.at(1, 0), 0.0f);
  EXPECT_GT(ahat.at(0, 1), 0.0f);
  // Node 2 is isolated: only its self loop.
  EXPECT_FLOAT_EQ(ahat.at(2, 2), 1.0f);
  // CSR invariants: 3 rows, nnz = 2 self loops + symmetric edge + 1.
  EXPECT_EQ(csr.rows(), 3u);
  EXPECT_EQ(csr.nnz(), 5u);
}

TEST(GcnConv, PropagatesNeighbourInformation) {
  par::Rng rng(2);
  nn::GcnConv conv(2, 2, rng);
  const auto ahat = nn::dgcnn_adjacency(2, {{0, 1}});
  // Distinct node features: after one conv the rows differ from a pure
  // self-transform because of neighbour mixing.
  Tensor x = Tensor::from_data({2, 2}, {1.0f, 0.0f, 0.0f, 1.0f});
  Tensor y = conv.forward(ahat, x);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 2u);
  // Both rows see the same mixed input (0.5, 0.5) here, so they're equal.
  EXPECT_NEAR(y.at(0, 0), y.at(1, 0), 1e-6f);
}

TEST(Lstm, OutputShapeAndStateEvolution) {
  par::Rng rng(3);
  nn::Lstm lstm(4, 6, rng);
  par::Rng data_rng(4);
  Tensor seq = Tensor::randn({5, 4}, data_rng, 1.0f, false);
  Tensor h = lstm.forward(seq);
  EXPECT_EQ(h.rows(), 5u);
  EXPECT_EQ(h.cols(), 6u);
  // Hidden states are bounded by tanh and change across steps.
  bool changed = false;
  for (std::size_t t = 1; t < 5; ++t) {
    for (std::size_t d = 0; d < 6; ++d) {
      EXPECT_LE(std::abs(h.at(t, d)), 1.0f);
      if (std::abs(h.at(t, d) - h.at(t - 1, d)) > 1e-6f) changed = true;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(Lstm, LearnsLastTokenClassification) {
  // Toy task: classify by the sign of the last input element.
  par::Rng rng(5);
  nn::Lstm lstm(1, 8, rng);
  nn::Linear head(8, 2, rng);
  ag::Adam opt(5e-2f);
  opt.add_params(lstm.parameters());
  opt.add_params(head.parameters());

  par::Rng data(6);
  auto make_seq = [&](int label) {
    std::vector<float> v(4);
    for (float& x : v) x = static_cast<float>(data.normal()) * 0.3f;
    v[3] = label ? 1.0f : -1.0f;
    return Tensor::from_data({4, 1}, std::move(v));
  };
  for (int step = 0; step < 300; ++step) {
    const int label = step % 2;
    Tensor h = lstm.forward(make_seq(label));
    Tensor logits = head.forward(ag::slice_rows(h, 3, 4));
    Tensor loss = ag::cross_entropy_logits(logits, {label});
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  int correct = 0;
  for (int i = 0; i < 40; ++i) {
    const int label = i % 2;
    Tensor h = lstm.forward(make_seq(label));
    Tensor logits = head.forward(ag::slice_rows(h, 3, 4));
    correct += ((logits.at(0, 1) > logits.at(0, 0)) == (label == 1));
  }
  EXPECT_GE(correct, 36);
}

TEST(Serialization, RoundTripsWeightsExactly) {
  par::Rng rng(7);
  nn::Linear a(6, 4, rng);
  nn::Linear b(6, 4, rng);  // different init
  std::stringstream buf;
  nn::save_weights(a, buf);
  nn::load_weights(b, buf);
  const auto pa = a.parameters(), pb = b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::size_t k = 0; k < pa[i].numel(); ++k) {
      EXPECT_FLOAT_EQ(pa[i].data()[k], pb[i].data()[k]);
    }
  }
}

TEST(Serialization, RejectsShapeMismatch) {
  par::Rng rng(8);
  nn::Linear a(6, 4, rng);
  nn::Linear wrong(6, 5, rng);
  std::stringstream buf;
  nn::save_weights(a, buf);
  EXPECT_THROW(nn::load_weights(wrong, buf), std::runtime_error);
  std::stringstream garbage("not a weights file");
  EXPECT_THROW(nn::load_weights(a, garbage), std::runtime_error);
}

TEST(Training, LinearLayerSolvesLinearlySeparableTask) {
  par::Rng rng(9);
  nn::Linear lin(2, 2, rng);
  ag::Adam opt(5e-2f);
  opt.add_params(lin.parameters());
  par::Rng data(10);
  for (int step = 0; step < 400; ++step) {
    const float x0 = static_cast<float>(data.normal());
    const float x1 = static_cast<float>(data.normal());
    const int label = (x0 + x1 > 0.0f) ? 1 : 0;
    Tensor x = Tensor::from_data({1, 2}, {x0, x1});
    Tensor loss = ag::cross_entropy_logits(lin.forward(x), {label});
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  int correct = 0;
  for (int i = 0; i < 100; ++i) {
    const float x0 = static_cast<float>(data.normal());
    const float x1 = static_cast<float>(data.normal());
    const int label = (x0 + x1 > 0.0f) ? 1 : 0;
    Tensor logits = lin.forward(Tensor::from_data({1, 2}, {x0, x1}));
    correct += ((logits.at(0, 1) > logits.at(0, 0)) == (label == 1));
  }
  EXPECT_GE(correct, 95);
}

}  // namespace
