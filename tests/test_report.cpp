// Report pipeline: the JSON reader, trace re-import, self-time/stage
// attribution, the bench-report schema + regression gate, and the
// background metrics sampler's JSONL output.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace {

using namespace mvgnn;

// ---------------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------------

TEST(ObsJson, ParsesScalarsContainersAndEscapes) {
  const auto v = obs::json::parse(
      R"({"a": 1.5, "b": [true, false, null], "s": "x\n\"y\" A",)"
      R"( "nested": {"k": -2e3}, "dup": 1, "dup": 2})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 1.5);
  const auto& arr = v.find("b")->as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[0].as_bool());
  EXPECT_FALSE(arr[1].as_bool());
  EXPECT_TRUE(arr[2].is_null());
  EXPECT_EQ(v.find("s")->as_string(), "x\n\"y\" A");
  EXPECT_DOUBLE_EQ(v.find("nested")->num_or("k", 0.0), -2000.0);
  EXPECT_DOUBLE_EQ(v.find("dup")->as_number(), 2.0);  // last wins
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(v.num_or("missing", 7.0), 7.0);
}

TEST(ObsJson, RejectsMalformedInput) {
  EXPECT_THROW((void)obs::json::parse(""), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("01x"), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("{} trailing"), std::runtime_error);
  // Nesting past the sanity cap must throw, not overflow the stack.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW((void)obs::json::parse(deep), std::runtime_error);
}

TEST(ObsJson, TypedAccessorsThrowOnKindMismatch) {
  const auto v = obs::json::parse(R"({"n": 3})");
  EXPECT_THROW((void)v.find("n")->as_string(), std::runtime_error);
  EXPECT_THROW((void)v.as_array(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// BenchReport schema + compare gate
// ---------------------------------------------------------------------------

std::string sample_report(double warm_s, double speedup) {
  obs::BenchReport r("abl_cache");
  r.config("loops", 700);
  r.config("mode", std::string("full"));
  r.metric("warm_s", warm_s, obs::MetricGoal::Lower, "s");
  r.metric("warm_speedup_vs_cold", speedup, obs::MetricGoal::Higher, "x");
  r.metric("disk_entries", 5701.0);  // informational
  return r.to_json();
}

TEST(BenchReport, JsonRoundTripsThroughParser) {
  const std::string doc = sample_report(0.5, 12.0);
  const auto v = obs::json::parse(doc);
  EXPECT_EQ(v.str_or("bench", ""), "abl_cache");
  EXPECT_DOUBLE_EQ(v.num_or("schema", 0), 1.0);
  EXPECT_DOUBLE_EQ(v.find("config")->num_or("loops", 0), 700.0);
  EXPECT_EQ(v.find("config")->str_or("mode", ""), "full");
  const auto* warm = v.find("metrics")->find("warm_s");
  ASSERT_TRUE(warm);
  EXPECT_DOUBLE_EQ(warm->num_or("value", 0), 0.5);
  EXPECT_EQ(warm->str_or("goal", ""), "lower");
  EXPECT_EQ(warm->str_or("unit", ""), "s");
  // Informational metric: no goal key at all.
  EXPECT_EQ(v.find("metrics")->find("disk_entries")->find("goal"), nullptr);
}

TEST(BenchReport, CompareWithinToleranceAndImprovementPass) {
  obs::CompareOptions opts;
  opts.tolerance = 0.10;
  // 5% slower warm_s: within tolerance. 2x speedup gain: improved.
  const auto res = obs::compare_bench_reports(sample_report(0.50, 12.0),
                                              sample_report(0.525, 24.0), opts);
  EXPECT_TRUE(res.ok) << obs::render_compare(res);
  bool saw_improved = false;
  for (const auto& row : res.rows) {
    saw_improved |= row.status == obs::MetricVerdict::Status::Improved;
    EXPECT_NE(row.status, obs::MetricVerdict::Status::Regressed);
  }
  EXPECT_TRUE(saw_improved);
}

TEST(BenchReport, CompareFlagsRegressionBeyondTolerance) {
  obs::CompareOptions opts;
  opts.tolerance = 0.10;
  // warm_s up 50% (goal=lower) and speedup halved (goal=higher): both gate.
  const auto res = obs::compare_bench_reports(sample_report(0.50, 12.0),
                                              sample_report(0.75, 6.0), opts);
  EXPECT_FALSE(res.ok);
  std::size_t regressed = 0;
  for (const auto& row : res.rows) {
    regressed += row.status == obs::MetricVerdict::Status::Regressed;
  }
  EXPECT_EQ(regressed, 2u);
  const std::string table = obs::render_compare(res);
  EXPECT_NE(table.find("FAIL"), std::string::npos) << table;
}

TEST(BenchReport, PerMetricToleranceAndZeroToleranceExactness) {
  obs::CompareOptions opts;
  opts.tolerance = 10.0;  // everything passes by default...
  opts.per_metric["warm_s"] = 0.0;  // ...but warm_s must not move at all
  const auto same = obs::compare_bench_reports(sample_report(0.5, 12.0),
                                               sample_report(0.5, 6.0), opts);
  EXPECT_TRUE(same.ok) << obs::render_compare(same);
  const auto moved = obs::compare_bench_reports(
      sample_report(0.5, 12.0), sample_report(0.5001, 12.0), opts);
  EXPECT_FALSE(moved.ok);
}

TEST(BenchReport, KeySubsetRestrictsAndGuardsTypos) {
  obs::CompareOptions opts;
  opts.tolerance = 0.10;
  opts.keys = {"warm_speedup_vs_cold"};
  // warm_s regressed badly but is not in the key set: gate still passes.
  const auto res = obs::compare_bench_reports(sample_report(0.5, 12.0),
                                              sample_report(5.0, 12.0), opts);
  EXPECT_TRUE(res.ok) << obs::render_compare(res);

  // A typo'd key must fail loudly, not silently gate nothing.
  opts.keys = {"warm_speedup_vs_cold_TYPO"};
  const auto typo = obs::compare_bench_reports(sample_report(0.5, 12.0),
                                               sample_report(0.5, 12.0), opts);
  EXPECT_FALSE(typo.ok);
}

TEST(BenchReport, MissingFreshMetricAndNameMismatchFail) {
  obs::BenchReport fresh("abl_cache");
  fresh.metric("warm_s", 0.5, obs::MetricGoal::Lower, "s");
  // Baseline has warm_speedup_vs_cold; the fresh run doesn't.
  const auto res = obs::compare_bench_reports(sample_report(0.5, 12.0),
                                              fresh.to_json(), {});
  EXPECT_FALSE(res.ok);

  obs::BenchReport other("abl_gemm");
  other.metric("warm_s", 0.5, obs::MetricGoal::Lower, "s");
  const auto mismatch = obs::compare_bench_reports(sample_report(0.5, 12.0),
                                                   other.to_json(), {});
  EXPECT_FALSE(mismatch.ok);
  EXPECT_FALSE(mismatch.names_match);
}

TEST(BenchReport, UnsupportedSchemaVersionThrows) {
  std::string doc = sample_report(0.5, 12.0);
  const auto pos = doc.find("\"schema\": 1");
  ASSERT_NE(pos, std::string::npos);
  doc.replace(pos, std::strlen("\"schema\": 1"), "\"schema\": 99");
  EXPECT_THROW(
      (void)obs::compare_bench_reports(doc, sample_report(0.5, 12.0), {}),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// build_report: self-time and stage attribution on synthetic events
// ---------------------------------------------------------------------------

obs::SpanEvent ev(const char* name, std::uint64_t start_us,
                  std::uint64_t end_us, std::uint32_t tid, std::int32_t parent,
                  std::int32_t depth) {
  obs::SpanEvent e;
  e.name = name;
  e.start_ns = start_us * 1000;
  e.end_ns = end_us * 1000;
  e.tid = tid;
  e.parent = parent;
  e.depth = depth;
  e.id = (static_cast<std::uint64_t>(tid + 1) << 40) | (start_us + 1);
  return e;
}

TEST(ObsReport, SelfTimeAndStagePercentagesSumTo100) {
  // Thread 0: pipe.profile [0,100) containing gemm [10,40) and gemm [50,70);
  // thread 1: pipe.featurize [0,80) containing pipe.walks [20,50).
  std::vector<obs::SpanEvent> evs;
  evs.push_back(ev("pipe.profile", 0, 100, 0, -1, 0));
  evs.push_back(ev("gemm", 10, 40, 0, 0, 1));
  evs.push_back(ev("gemm", 50, 70, 0, 0, 1));
  evs.push_back(ev("pipe.featurize", 0, 80, 1, -1, 0));
  evs.push_back(ev("pipe.walks", 20, 50, 1, 0, 1));

  const obs::Report r = obs::build_report(evs, nullptr);
  EXPECT_EQ(r.events, 5u);
  EXPECT_EQ(r.threads, 2u);
  // Total self time = (100-50) + 30 + 20 + (80-30) + 30 = 180 us.
  EXPECT_EQ(r.traced_self_ns, 180u * 1000);

  const auto stat_of = [&](const std::string& name) -> const obs::SpanStat* {
    for (const auto& s : r.spans) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  const auto* prof = stat_of("pipe.profile");
  ASSERT_TRUE(prof);
  EXPECT_EQ(prof->count, 1u);
  EXPECT_EQ(prof->total_ns, 100u * 1000);
  EXPECT_EQ(prof->self_ns, 50u * 1000);  // minus the two gemms
  const auto* gemm = stat_of("gemm");
  ASSERT_TRUE(gemm);
  EXPECT_EQ(gemm->count, 2u);
  EXPECT_EQ(gemm->self_ns, 50u * 1000);

  // Stage attribution: gemm self-time lands in Profile; walks in Featurize
  // (innermost pipe ancestor is pipe.walks itself -> Walks).
  double pct_sum = 0.0;
  std::uint64_t stage_self = 0;
  const auto stage_of = [&](const std::string& name) -> const obs::StageStat* {
    for (const auto& s : r.stages) {
      if (s.stage == name) return &s;
    }
    return nullptr;
  };
  for (const auto& s : r.stages) {
    pct_sum += s.pct;
    stage_self += s.self_ns;
  }
  EXPECT_NEAR(pct_sum, 100.0, 1e-6);
  EXPECT_EQ(stage_self, r.traced_self_ns);  // partition, no double counting
  const auto* profile_stage = stage_of("Profile");
  ASSERT_TRUE(profile_stage);
  EXPECT_EQ(profile_stage->self_ns, 100u * 1000);  // pipe.profile + 2x gemm
  const auto* walks_stage = stage_of("Walks");
  ASSERT_TRUE(walks_stage);
  EXPECT_EQ(walks_stage->self_ns, 30u * 1000);
  const auto* feat_stage = stage_of("Featurize");
  ASSERT_TRUE(feat_stage);
  EXPECT_EQ(feat_stage->self_ns, 50u * 1000);

  // All three render formats produce non-empty output; JSON parses.
  for (const auto fmt : {obs::ReportFormat::Text, obs::ReportFormat::Markdown,
                         obs::ReportFormat::Json}) {
    EXPECT_FALSE(obs::render_report(r, fmt).empty());
  }
  const auto parsed =
      obs::json::parse(obs::render_report(r, obs::ReportFormat::Json));
  EXPECT_TRUE(parsed.is_object());
}

TEST(ObsReport, EmptyTraceYieldsZeroReport) {
  const obs::Report r = obs::build_report({}, nullptr);
  EXPECT_EQ(r.events, 0u);
  EXPECT_EQ(r.traced_self_ns, 0u);
  EXPECT_FALSE(obs::render_report(r, obs::ReportFormat::Text).empty());
}

TEST(ObsReport, ChromeTraceRoundTripsThroughParser) {
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  rec.enable();
  {
    obs::ScopedSpan outer("pipe.profile");
    outer.arg("cus", 3);
    { OBS_SPAN("gemm"); }
  }
  rec.disable();
  const std::vector<obs::SpanEvent> direct = rec.events();
  const std::string json = rec.to_chrome_json();
  rec.clear();

  const obs::ParsedTrace parsed = obs::parse_chrome_trace(json);
  ASSERT_EQ(parsed.events.size(), direct.size());
  const obs::Report a = obs::build_report(direct, nullptr);
  const obs::Report b = obs::build_report(parsed.events, nullptr);
  EXPECT_EQ(a.traced_self_ns, b.traced_self_ns);
  EXPECT_EQ(a.spans.size(), b.spans.size());
  ASSERT_FALSE(b.spans.empty());
  EXPECT_EQ(a.spans[0].name, b.spans[0].name);
  EXPECT_EQ(a.spans[0].self_ns, b.spans[0].self_ns);
}

TEST(ObsReport, ParseChromeTraceRelinksFlowEvents) {
  // A producer slice on tid 0, a worker slice on tid 3, and an s/f pair
  // keyed by the worker's id with the f end bound to the worker's start —
  // the shape to_chrome_json emits for an adopted TraceContext.
  const std::string json = R"({"traceEvents": [
    {"name": "thread_pool.parallel_for", "ph": "X", "ts": 10.0,
     "dur": 500.0, "pid": 1, "tid": 0, "args": {"parent": -1, "depth": 0}},
    {"name": "thread_pool.task", "ph": "X", "ts": 120.0, "dur": 80.0,
     "pid": 1, "tid": 3, "args": {"parent": -1, "depth": 0}},
    {"name": "fanout", "cat": "mvgnn.flow", "ph": "s", "id": 77,
     "ts": 15.0, "pid": 1, "tid": 0},
    {"name": "fanout", "cat": "mvgnn.flow", "ph": "f", "bp": "e",
     "id": 77, "ts": 120.0, "pid": 1, "tid": 3}
  ]})";
  const obs::ParsedTrace parsed = obs::parse_chrome_trace(json);
  ASSERT_EQ(parsed.events.size(), 2u);
  const obs::SpanEvent& worker = parsed.events[1];
  EXPECT_EQ(worker.flow_src, 77u);
  EXPECT_EQ(worker.flow_src_tid, 0u);
  EXPECT_EQ(worker.flow_ts_ns, 15000u);
  EXPECT_EQ(parsed.events[0].flow_src, 0u);  // producer stays unlinked
  const obs::Report rep = obs::build_report(parsed.events, nullptr);
  EXPECT_EQ(rep.flow_links, 1u);
}

TEST(ObsReport, ParseChromeTraceRejectsGarbage) {
  EXPECT_THROW((void)obs::parse_chrome_trace("not json"),
               std::runtime_error);
  EXPECT_THROW((void)obs::parse_chrome_trace("{\"traceEvents\": 3}"),
               std::runtime_error);
}

TEST(ObsReport, MetricsJsonRoundTripFillsUtilization) {
  obs::Registry reg;
  reg.counter("cache.hits_total").add(90);
  reg.counter("cache.misses_total").add(10);
  reg.counter("thread_pool.tasks_executed_total").add(40);
  reg.histogram("thread_pool.task_latency_us", {10.0, 100.0}).observe(50.0);
  const obs::MetricsSnapshot snap =
      obs::parse_metrics_json(reg.to_json());
  EXPECT_EQ(snap.counter_or("cache.hits_total"), 90u);

  const obs::Report r = obs::build_report({}, &snap);
  EXPECT_TRUE(r.has_metrics);
  EXPECT_EQ(r.cache_hits, 90u);
  EXPECT_EQ(r.cache_misses, 10u);
  EXPECT_EQ(r.pool_executed, 40u);
  EXPECT_GT(r.task_p50_us, 0.0);
  const std::string text = obs::render_report(r, obs::ReportFormat::Text);
  EXPECT_NE(text.find("90.0%"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Metrics sampler
// ---------------------------------------------------------------------------

TEST(ObsSampler, WritesParseableJsonlRowsWithDeltas) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("samp.count_total");
  reg.gauge("samp.gauge").set(1.5);
  reg.histogram("samp.lat_us", {10.0, 100.0}).observe(42.0);
  reg.histogram("samp.empty", {1.0});

  const auto path = std::filesystem::temp_directory_path() /
                    "mvgnn_test_sampler.jsonl";
  obs::MetricsSampler::Options opts;
  opts.interval_ms = 20;
  opts.path = path.string();
  opts.registry = &reg;
  obs::MetricsSampler sampler(opts);
  ASSERT_TRUE(sampler.start());
  EXPECT_TRUE(sampler.running());
  c.add(5);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  c.add(3);
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  ASSERT_GE(sampler.rows_written(), 1u);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t rows = 0;
  double last_cum = 0.0, delta_sum = 0.0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++rows;
    const auto v = obs::json::parse(line);
    EXPECT_GE(v.num_or("t_ms", -1.0), 0.0);
    const auto* counters = v.find("counters");
    ASSERT_TRUE(counters);
    const auto* samp = counters->find("samp.count_total");
    ASSERT_TRUE(samp);
    last_cum = samp->num_or("v", -1.0);
    delta_sum += samp->num_or("d", 0.0);
    // Observed histograms appear with percentiles; empty ones are skipped.
    const auto* hists = v.find("histograms");
    ASSERT_TRUE(hists);
    EXPECT_TRUE(hists->find("samp.lat_us"));
    EXPECT_FALSE(hists->find("samp.empty"));
  }
  EXPECT_EQ(rows, sampler.rows_written());
  EXPECT_DOUBLE_EQ(last_cum, 8.0);   // final row sees both adds
  EXPECT_DOUBLE_EQ(delta_sum, 8.0);  // deltas telescope to the total
  std::filesystem::remove(path);
}

TEST(ObsSampler, StopBeforeStartLatchesAndSequentialRestartWorks) {
  obs::Registry reg;
  reg.counter("samp.race_total").add(1);
  const auto path = std::filesystem::temp_directory_path() /
                    "mvgnn_test_sampler_race.jsonl";
  obs::MetricsSampler::Options opts;
  opts.interval_ms = 10;
  opts.path = path.string();
  opts.registry = &reg;
  obs::MetricsSampler sampler(opts);

  // A stop() that races ahead of start() (e.g. a shutdown signal landing
  // mid-startup) must win: the next start() consumes the latch and stays
  // stopped instead of leaking a sampler thread nobody will join.
  sampler.stop();
  EXPECT_FALSE(sampler.start());
  EXPECT_FALSE(sampler.running());

  // The latch is one-shot: a later sequential start()/stop() cycle works.
  ASSERT_TRUE(sampler.start());
  EXPECT_TRUE(sampler.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.rows_written(), 1u);
}

TEST(ObsSampler, StartFailsCleanlyOnUnwritablePath) {
  obs::Registry reg;
  obs::MetricsSampler::Options opts;
  opts.path = "/nonexistent_dir_mvgnn/out.jsonl";
  opts.registry = &reg;
  obs::MetricsSampler sampler(opts);
  EXPECT_FALSE(sampler.start());
  EXPECT_FALSE(sampler.running());
  sampler.stop();  // must be a safe no-op
  EXPECT_EQ(sampler.rows_written(), 0u);
}

}  // namespace
