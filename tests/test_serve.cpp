// Robustness matrix for the `mvgnn serve` daemon (docs/serving.md): wire
// protocol, admission control / shedding, deadlines, fault injection on the
// serve.* sites, hot checkpoint reload under load, and graceful drain.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "fault/fault.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "parallel/rng.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "tensor/optim.hpp"

namespace mvgnn {
namespace {

// A 3-loop program (DOALL nest + reduction), the standard multi-loop
// request: one request contributes 3 samples to a batch.
const char* kMatvec = R"(
const int N = 24;
float kernel(float[] A, float[] x, float[] y) {
  for (int i = 0; i < N; i += 1) {
    float acc = 0.0;
    for (int j = 0; j < N; j += 1) {
      acc = acc + A[i * N + j] * x[j];
    }
    y[i] = acc;
  }
  float norm = 0.0;
  for (int i = 0; i < N; i += 1) {
    norm = norm + y[i] * y[i];
  }
  return sqrt(norm);
}
)";

const char* kNoLoops = "float kernel(float x) { return x + 1.0; }";

std::string request_line(const std::string& id, const std::string& source,
                         std::int64_t deadline_ms = -1) {
  std::string line = "{\"id\": \"" + serve::json_escape(id) +
                     "\", \"source\": \"" + serve::json_escape(source) + "\"";
  if (deadline_ms >= 0) {
    line += ", \"deadline_ms\": " + std::to_string(deadline_ms);
  }
  line += "}";
  return line;
}

/// Minimal blocking line-protocol client. read_line() returns "" on EOF or
/// error — which is exactly the "connection reset while awaiting a
/// response" signal the drain tests assert never happens.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    timeval tv{30, 0};  // a hung daemon should fail tests, not freeze them
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  bool send_raw(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::string read_line() {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char tmp[4096];
      const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
      if (n <= 0) return "";
      buf_.append(tmp, static_cast<std::size_t>(n));
    }
  }

  std::string rpc(const std::string& line) {
    if (!send_raw(line + "\n")) return "";
    return read_line();
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

obs::json::Value parse(const std::string& line) {
  return obs::json::parse(line);
}

bool is_ok(const obs::json::Value& v) {
  const obs::json::Value* ok = v.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

std::string error_code(const obs::json::Value& v) {
  const obs::json::Value* err = v.find("error");
  return err != nullptr ? err->str_or("code", "") : "";
}

/// One serving context + trained checkpoint, built once and shared by every
/// test (context build + 1-epoch training dominate the suite's runtime).
struct Env {
  serve::ServingContext ctx;
  std::string dir;
  std::string ckpt;
};

const Env& env() {
  static const Env* e = [] {
    auto* env = new Env;
    env->dir = (std::filesystem::temp_directory_path() / "mvgnn_serve_test")
                   .string();
    std::filesystem::create_directories(env->dir);
    env->ctx = serve::build_serving_context(16, nullptr);
    auto [train_raw, val] = data::split_by_kernel(env->ctx.ds, 0.85, 5);
    const std::vector<std::size_t> train =
        data::oversample_balance(env->ctx.ds, train_raw, 5);
    core::Featurizer feats(env->ctx.ds, env->ctx.norm);
    core::TrainConfig tc;
    tc.epochs = 1;
    core::MvGnnTrainer trainer(feats, env->ctx.model_cfg, tc);
    trainer.fit(train, {});
    ag::Adam opt(1e-3f);
    opt.add_params(trainer.model_mutable().parameters());
    core::CheckpointMeta meta;
    meta.epoch = 1;
    meta.rng_state = par::Rng(7).state();
    env->ckpt = env->dir + "/ckpt-1.mvck";
    core::save_checkpoint(env->ckpt, meta, trainer.model(), opt);
    return env;
  }();
  return *e;
}

std::unique_ptr<serve::Server> make_server(serve::ServerConfig cfg) {
  cfg.port = 0;  // ephemeral; Server::port() reports the bound one
  if (cfg.checkpoint.empty()) cfg.checkpoint = env().ckpt;
  auto server = std::make_unique<serve::Server>(env().ctx, cfg);
  server->start();
  return server;
}

// ---------------------------------------------------------------------------
// Wire protocol (no sockets)
// ---------------------------------------------------------------------------

TEST(ServeProtocol, ParsesRequestsControlsAndRejections) {
  auto req = serve::parse_line(
      "{\"id\": \"r1\", \"source\": \"float kernel() {}\", "
      "\"deadline_ms\": 250}");
  ASSERT_TRUE(req.request.has_value());
  EXPECT_EQ(req.request->id, "r1");
  EXPECT_EQ(req.request->deadline_ms, 250u);

  auto defaulted = serve::parse_line("{\"source\": \"x\"}");
  ASSERT_TRUE(defaulted.request.has_value());
  EXPECT_EQ(defaulted.request->deadline_ms, serve::Request::kUseDefault);

  auto numeric_id = serve::parse_line("{\"id\": 7, \"source\": \"x\"}");
  ASSERT_TRUE(numeric_id.request.has_value());
  EXPECT_EQ(numeric_id.request->id, "7");

  auto ctl = serve::parse_line(
      "{\"cmd\": \"reload\", \"checkpoint\": \"m.mvck\"}");
  ASSERT_TRUE(ctl.control.has_value());
  EXPECT_EQ(ctl.control->cmd, "reload");
  EXPECT_EQ(ctl.control->checkpoint, "m.mvck");

  auto missing = serve::parse_line("{\"id\": \"r2\"}");
  EXPECT_FALSE(missing.request.has_value());
  EXPECT_EQ(missing.code, serve::ErrorCode::BadRequest);
  EXPECT_EQ(missing.id, "r2");  // rejections still echo the id

  auto bad_deadline =
      serve::parse_line("{\"source\": \"x\", \"deadline_ms\": -5}");
  EXPECT_EQ(bad_deadline.code, serve::ErrorCode::BadRequest);

  auto torn = serve::parse_line("{\"id\": \"r3\", \"source\": ");
  EXPECT_EQ(torn.code, serve::ErrorCode::Malformed);
  ASSERT_TRUE(torn.offset.has_value());  // parse stop position, in bytes
  EXPECT_GT(*torn.offset, 0u);

  auto scalar = serve::parse_line("42");
  EXPECT_EQ(scalar.code, serve::ErrorCode::BadRequest);
}

TEST(ServeProtocol, RenderedResponsesParseBack) {
  const std::string ok = serve::render_ok(
      "a\"b", {{7, 1, 1, 0}, {9, 0, 0, 1}}, 3, 17, 9, 1234);
  const auto v = parse(ok);
  EXPECT_TRUE(is_ok(v));
  EXPECT_EQ(v.str_or("id", ""), "a\"b");
  EXPECT_EQ(v.num_or("model_version", 0), 3);
  EXPECT_EQ(v.num_or("batch_id", 0), 17);
  const auto& loops = v.find("loops")->as_array();
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_EQ(loops[0].str_or("verdict", ""), "parallelizable");
  EXPECT_EQ(loops[1].str_or("verdict", ""), "sequential");

  const std::string err = serve::render_error(
      "r1", serve::ErrorCode::Malformed, "broke\nat", 42);
  const auto ev = parse(err);
  EXPECT_FALSE(is_ok(ev));
  EXPECT_EQ(error_code(ev), "malformed");
  EXPECT_EQ(ev.find("error")->num_or("offset", 0), 42);
  EXPECT_EQ(ev.find("error")->str_or("message", ""), "broke\nat");
}

// ---------------------------------------------------------------------------
// Startup and the basic round trip
// ---------------------------------------------------------------------------

TEST(Serve, StartupRejectsCorruptCheckpoint) {
  const std::string bad = env().dir + "/corrupt-startup.mvck";
  {
    std::ofstream out(bad, std::ios::binary);
    out << "MVCKgarbage that is definitely not a checkpoint";
  }
  serve::ServerConfig cfg;
  cfg.checkpoint = bad;
  EXPECT_THROW(serve::Server(env().ctx, cfg), std::runtime_error);
}

TEST(Serve, RoundTripPingAndVerdicts) {
  auto server = make_server({});
  Client c(server->port());
  ASSERT_TRUE(c.connected());

  const auto pong = parse(c.rpc("{\"cmd\": \"ping\"}"));
  EXPECT_TRUE(is_ok(pong));
  EXPECT_EQ(pong.num_or("model_version", 0), 1);

  const auto resp = parse(c.rpc(request_line("r1", kMatvec)));
  ASSERT_TRUE(is_ok(resp)) << resp.str_or("error", "");
  EXPECT_EQ(resp.str_or("id", ""), "r1");
  EXPECT_EQ(resp.num_or("model_version", 0), 1);
  const auto& loops = resp.find("loops")->as_array();
  ASSERT_EQ(loops.size(), 3u);  // matvec has exactly 3 for-loops
  for (const auto& l : loops) {
    EXPECT_GT(l.num_or("line", 0), 0);
    const std::string verdict = l.str_or("verdict", "");
    EXPECT_TRUE(verdict == "parallelizable" || verdict == "sequential");
  }

  const auto stats = parse(c.rpc("{\"cmd\": \"stats\"}"));
  ASSERT_TRUE(is_ok(stats));
  EXPECT_GE(stats.find("stats")->num_or("ok_total", 0), 1);
}

TEST(Serve, HotProgramCacheServesRepeatsWithIdenticalVerdicts) {
  auto server = make_server({});
  Client c(server->port());
  ASSERT_TRUE(c.connected());

  obs::Counter& hits =
      obs::Registry::global().counter("serve.program_cache_hits_total");
  const std::uint64_t before = hits.value();

  const auto first = parse(c.rpc(request_line("h1", kMatvec)));
  ASSERT_TRUE(is_ok(first));
  const auto repeat = parse(c.rpc(request_line("h2", kMatvec)));
  ASSERT_TRUE(is_ok(repeat));
  // The repeat skipped the featurize pipeline but must answer identically.
  EXPECT_GE(hits.value(), before + 1);
  const auto& a = first.find("loops")->as_array();
  const auto& b = repeat.find("loops")->as_array();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].num_or("line", -1), b[i].num_or("line", -2));
    EXPECT_EQ(a[i].str_or("verdict", "x"), b[i].str_or("verdict", "y"));
  }

  // With the cache disabled every request re-featurizes; verdicts still
  // match the cached path.
  serve::ServerConfig no_cache;
  no_cache.program_cache_entries = 0;
  auto server2 = make_server(no_cache);
  Client c2(server2->port());
  ASSERT_TRUE(c2.connected());
  const std::uint64_t before2 = hits.value();
  const auto uncached = parse(c2.rpc(request_line("h3", kMatvec)));
  ASSERT_TRUE(is_ok(uncached));
  EXPECT_EQ(hits.value(), before2);
  const auto& u = uncached.find("loops")->as_array();
  ASSERT_EQ(u.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(u[i].str_or("verdict", "x"), a[i].str_or("verdict", "y"));
  }
}

TEST(Serve, TypedRequestErrorsNeverKillTheDaemon) {
  serve::ServerConfig cfg;
  cfg.max_request_bytes = 2048;
  cfg.interp.max_steps = 500;  // matvec needs far more fuel than this
  auto server = make_server(cfg);
  Client c(server->port());
  ASSERT_TRUE(c.connected());

  // Malformed JSON answers with the parse byte offset.
  const auto malformed = parse(c.rpc("{\"id\": \"m\", \"source\": 12 zz"));
  EXPECT_EQ(error_code(malformed), "malformed");
  EXPECT_GT(malformed.find("error")->num_or("offset", 0), 0);

  // Valid JSON, invalid request.
  EXPECT_EQ(error_code(parse(c.rpc("{\"id\": \"n\"}"))), "bad_request");
  EXPECT_EQ(error_code(parse(c.rpc("{\"cmd\": \"frobnicate\"}"))),
            "bad_request");

  // Programs that fail the frontend / run out of interpreter fuel.
  EXPECT_EQ(error_code(parse(c.rpc(request_line("c", "int kernel( {")))),
            "compile");
  EXPECT_EQ(error_code(parse(c.rpc(
                request_line("k", "float notkernel() { return 1.0; }")))),
            "compile");
  EXPECT_EQ(error_code(parse(c.rpc(request_line("f", kMatvec)))), "profile");

  // Oversized framed line: answered, stream stays framed.
  const std::string big = request_line("big", std::string(4096, 'x'));
  EXPECT_EQ(error_code(parse(c.rpc(big))), "oversized");

  // Oversized unframed line: answered mid-line, the tail is discarded.
  ASSERT_TRUE(c.send_raw(std::string(8192, 'y')));
  EXPECT_EQ(error_code(parse(c.read_line())), "oversized");
  ASSERT_TRUE(c.send_raw("tail-of-oversized-line\n"));

  // The same connection still serves valid work afterwards.
  const auto ok = parse(c.rpc(request_line("z", kNoLoops)));
  EXPECT_TRUE(is_ok(ok));
  EXPECT_EQ(ok.find("loops")->as_array().size(), 0u);
}

// ---------------------------------------------------------------------------
// Admission control and deadlines
// ---------------------------------------------------------------------------

TEST(Serve, ShedsBeyondQueueDepthUnderOverload) {
  serve::ServerConfig cfg;
  cfg.max_queue_depth = 2;
  cfg.batch_linger_ms = 500;  // hold the 2 admitted slots for the window
  cfg.batch_max_samples = 64;
  auto server = make_server(cfg);

  constexpr int kClients = 6;
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<Client>(server->port()));
    ASSERT_TRUE(clients.back()->connected());
  }
  std::atomic<int> ready{0};
  std::atomic<int> ok_count{0}, shed_count{0}, other{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      ready.fetch_add(1);
      while (ready.load() < kClients) std::this_thread::yield();
      const auto resp =
          parse(clients[i]->rpc(request_line("r" + std::to_string(i),
                                             kMatvec)));
      if (is_ok(resp)) {
        ok_count.fetch_add(1);
      } else if (error_code(resp) == "shed") {
        shed_count.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Exactly the queue depth is admitted; everyone else is shed before any
  // featurization work is spent on them.
  EXPECT_EQ(ok_count.load(), 2);
  EXPECT_EQ(shed_count.load(), 4);
  EXPECT_EQ(other.load(), 0);
}

TEST(Serve, DeadlineExpiresMidQueue) {
  serve::ServerConfig cfg;
  cfg.batch_linger_ms = 300;  // the queue wait that outlives the deadline
  auto server = make_server(cfg);
  Client c(server->port());
  ASSERT_TRUE(c.connected());
  const auto resp = parse(c.rpc(request_line("d", kMatvec, 1)));
  EXPECT_EQ(error_code(resp), "deadline");
  // The daemon keeps serving; without a deadline the same program passes.
  EXPECT_TRUE(is_ok(parse(c.rpc(request_line("d2", kMatvec, 0)))));
}

TEST(Serve, RejectsUnmeetableDeadlineEarly) {
  serve::ServerConfig cfg;
  cfg.batch_linger_ms = 200;
  auto server = make_server(cfg);
  Client c(server->port());
  ASSERT_TRUE(c.connected());
  // Prime the smoothed batch latency with one successful request.
  ASSERT_TRUE(is_ok(parse(c.rpc(request_line("p", kMatvec, 0)))));
  // Now a 1ms deadline is provably unmeetable (linger alone is 200ms):
  // rejected at admission, before featurization.
  const auto resp = parse(c.rpc(request_line("q", kMatvec, 1)));
  EXPECT_EQ(error_code(resp), "deadline");
  EXPECT_NE(resp.find("error")->str_or("message", "").find("cannot be met"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault injection on the serve.* sites
// ---------------------------------------------------------------------------

TEST(Serve, InjectedBatchFaultAnswersTypedErrorAndRecovers) {
  auto server = make_server({});
  Client c(server->port());
  ASSERT_TRUE(c.connected());
  fault::arm("serve.batch", 1);
  const auto failed = parse(c.rpc(request_line("r1", kMatvec)));
  fault::disarm_all();
  EXPECT_EQ(error_code(failed), "batch_failed");
  // The site fires once; the daemon and the connection keep serving.
  EXPECT_TRUE(is_ok(parse(c.rpc(request_line("r2", kMatvec)))));
}

TEST(Serve, InjectedReadFaultDropsOnlyThatConnection) {
  auto server = make_server({});
  Client victim(server->port());
  ASSERT_TRUE(victim.connected());
  fault::arm("serve.read", 1);
  victim.send_raw("{\"cmd\": \"ping\"}\n");
  EXPECT_EQ(victim.read_line(), "");  // connection killed by the fault
  fault::disarm_all();
  Client fresh(server->port());
  ASSERT_TRUE(fresh.connected());
  EXPECT_TRUE(is_ok(parse(fresh.rpc("{\"cmd\": \"ping\"}"))));
}

TEST(Serve, InjectedAcceptFaultDropsOnlyThatConnection) {
  auto server = make_server({});
  fault::arm("serve.accept", 1);
  Client dropped(server->port());
  if (dropped.connected()) {
    dropped.send_raw("{\"cmd\": \"ping\"}\n");
    EXPECT_EQ(dropped.read_line(), "");  // accepted then dropped
  }
  fault::disarm_all();
  Client fresh(server->port());
  ASSERT_TRUE(fresh.connected());
  EXPECT_TRUE(is_ok(parse(fresh.rpc("{\"cmd\": \"ping\"}"))));
}

// ---------------------------------------------------------------------------
// Hot checkpoint reload
// ---------------------------------------------------------------------------

TEST(Serve, CorruptOrFaultedReloadKeepsOldModelServing) {
  auto server = make_server({});
  Client c(server->port());
  ASSERT_TRUE(c.connected());

  // Corrupt file: flip bytes in a copy of the good checkpoint so the CRC
  // footer rejects it.
  const std::string bad = env().dir + "/corrupt-reload.mvck";
  {
    std::ifstream in(env().ckpt, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    for (std::size_t i = bytes.size() / 2; i < bytes.size() / 2 + 8; ++i) {
      bytes[i] = static_cast<char>(~bytes[i]);
    }
    std::ofstream out(bad, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const auto rejected = parse(
      c.rpc("{\"cmd\": \"reload\", \"checkpoint\": \"" + bad + "\"}"));
  EXPECT_EQ(error_code(rejected), "reload_failed");
  EXPECT_EQ(server->model_version(), 1u);

  // Injected fault in the loader: same containment.
  fault::arm("serve.reload", 1);
  const auto faulted = parse(c.rpc("{\"cmd\": \"reload\"}"));
  fault::disarm_all();
  EXPECT_EQ(error_code(faulted), "reload_failed");
  EXPECT_EQ(server->model_version(), 1u);

  // The old model is still serving, and a valid reload still works.
  EXPECT_TRUE(is_ok(parse(c.rpc(request_line("r", kMatvec)))));
  const auto reloaded = parse(c.rpc("{\"cmd\": \"reload\"}"));
  EXPECT_TRUE(is_ok(reloaded));
  EXPECT_EQ(reloaded.num_or("model_version", 0), 2);
  EXPECT_EQ(server->model_version(), 2u);
}

TEST(Serve, ReloadUnderLoadNeverMixesModelsInOneBatch) {
  serve::ServerConfig cfg;
  cfg.batch_linger_ms = 10;
  auto server = make_server(cfg);

  std::atomic<bool> stop{false};
  std::mutex mu;
  std::vector<std::string> responses;
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      Client c(server->port());
      ASSERT_TRUE(c.connected());
      int i = 0;
      while (!stop.load()) {
        const std::string resp = c.rpc(
            request_line("w" + std::to_string(w) + "-" + std::to_string(i++),
                         kMatvec, 0));
        ASSERT_NE(resp, "");  // no dropped requests during reloads
        std::lock_guard<std::mutex> lk(mu);
        responses.push_back(resp);
      }
    });
  }
  for (int r = 0; r < 3; ++r) {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    EXPECT_NO_THROW(server->reload(""));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  stop.store(true);
  for (auto& t : workers) t.join();

  // Every response is a verdict; within one batch_id there is exactly one
  // model_version (a reload mid-flush only affects the next batch).
  std::map<std::uint64_t, std::set<std::uint64_t>> versions_by_batch;
  std::set<std::uint64_t> versions;
  for (const auto& line : responses) {
    const auto v = parse(line);
    ASSERT_TRUE(is_ok(v)) << line;
    const auto batch = static_cast<std::uint64_t>(v.num_or("batch_id", 0));
    const auto ver = static_cast<std::uint64_t>(v.num_or("model_version", 0));
    versions_by_batch[batch].insert(ver);
    versions.insert(ver);
  }
  ASSERT_GT(responses.size(), 0u);
  for (const auto& [batch, vers] : versions_by_batch) {
    EXPECT_EQ(vers.size(), 1u) << "batch " << batch << " mixed models";
  }
  EXPECT_GE(versions.size(), 2u);  // the reloads actually took effect
  EXPECT_EQ(server->model_version(), 4u);
}

// ---------------------------------------------------------------------------
// Batching consistency and graceful drain
// ---------------------------------------------------------------------------

TEST(Serve, BatchedVerdictsMatchSoloVerdicts) {
  serve::ServerConfig cfg;
  cfg.batch_linger_ms = 100;  // wide window so concurrent requests co-batch
  auto server = make_server(cfg);

  constexpr int kClients = 5;
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<Client>(server->port()));
    ASSERT_TRUE(clients.back()->connected());
  }
  std::atomic<int> ready{0};
  std::vector<std::string> verdicts(kClients);
  std::vector<std::uint64_t> batch_ids(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      ready.fetch_add(1);
      while (ready.load() < kClients) std::this_thread::yield();
      const auto v = parse(clients[i]->rpc(
          request_line("c" + std::to_string(i), kMatvec, 0)));
      ASSERT_TRUE(is_ok(v));
      std::string sig;
      for (const auto& l : v.find("loops")->as_array()) {
        sig += l.str_or("verdict", "") + "|" + l.str_or("node_view", "") +
               "|" + l.str_or("struct_view", "") + ";";
      }
      verdicts[i] = sig;
      batch_ids[i] = static_cast<std::uint64_t>(v.num_or("batch_id", 0));
    });
  }
  for (auto& t : threads) t.join();
  // The concurrent copies actually co-batched (same flush) ...
  EXPECT_EQ(std::set<std::uint64_t>(batch_ids.begin(), batch_ids.end()).size(),
            1u);
  // ... and a solo (batch-of-one-request) run agrees with all of them.
  const auto solo = parse(clients[0]->rpc(request_line("solo", kMatvec, 0)));
  ASSERT_TRUE(is_ok(solo));
  std::string solo_sig;
  for (const auto& l : solo.find("loops")->as_array()) {
    solo_sig += l.str_or("verdict", "") + "|" + l.str_or("node_view", "") +
                "|" + l.str_or("struct_view", "") + ";";
  }
  for (int i = 0; i < kClients; ++i) EXPECT_EQ(verdicts[i], solo_sig);
}

TEST(Serve, GracefulDrainAnswersEveryInFlightRequest) {
  serve::ServerConfig cfg;
  cfg.batch_linger_ms = 30;
  auto server = make_server(cfg);

  std::atomic<int> resets{0};
  std::atomic<int> answered{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      Client c(server->port());
      if (!c.connected()) return;
      for (int i = 0; i < 1000; ++i) {
        if (!c.send_raw(request_line("w" + std::to_string(w), kMatvec, 0) +
                        "\n")) {
          break;  // connection closed between requests: clean drain
        }
        const std::string resp = c.read_line();
        if (resp.empty()) {
          // EOF while a response was owed — the one thing drain must
          // never do.
          resets.fetch_add(1);
          break;
        }
        answered.fetch_add(1);
        const auto v = parse(resp);
        if (!is_ok(v) && error_code(v) == "shutting_down") break;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  server->stop();  // blocks until drained
  for (auto& t : workers) t.join();
  EXPECT_EQ(resets.load(), 0);
  EXPECT_GT(answered.load(), 0);
}


TEST(Serve, ZeroLatencyFlushPermanentlyArmsEarlyRejection) {
  // Regression: the early-deadline-rejection estimate used `ewma == 0` as
  // its "no estimate yet" sentinel, so a genuinely sub-ns-rounded flush
  // disarmed it again. The first measured flush must arm it for good.
  serve::LatencyEwma ewma;
  EXPECT_FALSE(ewma.armed());
  EXPECT_EQ(ewma.value_ns(), 0u);

  ewma.record(0);  // a fast flush whose latency rounded down to zero
  EXPECT_TRUE(ewma.armed());
  EXPECT_EQ(ewma.value_ns(), 0u);

  ewma.record(1000);  // blends, never resets
  EXPECT_TRUE(ewma.armed());
  EXPECT_EQ(ewma.value_ns(), 250u);  // (3*0 + 1000) / 4

  ewma.record(1000);
  EXPECT_TRUE(ewma.armed());
  EXPECT_EQ(ewma.value_ns(), 437u);  // (3*250 + 1000) / 4
}

}  // namespace
}  // namespace mvgnn
