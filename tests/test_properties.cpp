// Property-based tests (parameterized gtest): invariants that must hold
// across every kernel pattern, every transform pipeline, and randomized
// shapes/seeds — not just hand-picked cases.
#include <gtest/gtest.h>

#include "analysis/tools.hpp"
#include "data/kernels.hpp"
#include "frontend/lower.hpp"
#include "graph/anon_walk.hpp"
#include "profiler/profile.hpp"
#include "tensor/ops.hpp"
#include "transform/passes.hpp"

namespace {

using namespace mvgnn;

// ---------------------------------------------------------------------------
// Property: every generator instance compiles, verifies, profiles without
// faults, reports the declared number of for-loops, and its oracle labels
// are deterministic.
// ---------------------------------------------------------------------------

class PatternProperty : public ::testing::TestWithParam<data::Pattern> {};

TEST_P(PatternProperty, GeneratesValidProfilableKernels) {
  const data::Pattern pattern = GetParam();
  par::Rng rng(static_cast<std::uint64_t>(pattern) * 7919 + 3);
  for (int instance = 0; instance < 4; ++instance) {
    const data::GenKernel k =
        data::generate_kernel(pattern, "prop", rng);
    ASSERT_EQ(k.for_loops, data::pattern_loops(pattern));
    ir::Module m;
    ASSERT_NO_THROW(m = frontend::compile(k.source, k.name))
        << data::pattern_name(pattern) << ":\n"
        << k.source;
    profiler::ProfileResult prof;
    ASSERT_NO_THROW(prof = profiler::profile(m, "kernel", k.args))
        << data::pattern_name(pattern) << ":\n"
        << k.source;
    // Declared loop count matches lowered for-loop count.
    EXPECT_EQ(static_cast<int>(prof.loops.size()), k.for_loops);
    // Oracle verdicts are deterministic across repeated classification.
    for (const auto& loop : prof.loops) {
      const bool a = analysis::oracle_classify(*loop.fn, loop.loop,
                                               prof.dep).parallel;
      const bool b = analysis::oracle_classify(*loop.fn, loop.loop,
                                               prof.dep).parallel;
      EXPECT_EQ(a, b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, PatternProperty,
    ::testing::Values(
        data::Pattern::VecMap, data::Pattern::VecScaleInPlace,
        data::Pattern::Saxpy, data::Pattern::StencilCopy,
        data::Pattern::ReduceSum, data::Pattern::ReduceMax,
        data::Pattern::DotProduct, data::Pattern::PrivTemp,
        data::Pattern::PrivArrayTemp, data::Pattern::Recurrence,
        data::Pattern::ScalarCarried, data::Pattern::CondUpdateMax,
        data::Pattern::EarlyExit, data::Pattern::CallMapPure,
        data::Pattern::CallAccumShared, data::Pattern::IndirectGather,
        data::Pattern::IndirectHistogram, data::Pattern::IndirectScatter,
        data::Pattern::DisjointCopy, data::Pattern::MatMulNest,
        data::Pattern::Jacobi2D, data::Pattern::Seidel2D,
        data::Pattern::TriangularUpdate, data::Pattern::ArrayAccumNest,
        data::Pattern::ColdPath, data::Pattern::WhileWrapped,
        data::Pattern::FibDriver, data::Pattern::NQueensStyle,
        data::Pattern::ChecksumOnly, data::Pattern::OffsetStencil,
        data::Pattern::OffsetRecurrence, data::Pattern::ParamOffset,
        data::Pattern::SpMV, data::Pattern::Transpose,
        data::Pattern::SeparableStencil, data::Pattern::Pipeline3,
        data::Pattern::Timestepped),
    [](const auto& info) { return data::pattern_name(info.param); });

// ---------------------------------------------------------------------------
// Property: oracle labels are invariant under every IR variant pipeline —
// the transforms change the instruction mix, never the semantics.
// ---------------------------------------------------------------------------

class VariantProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VariantProperty, OracleLabelsSurviveTransformPipelines) {
  const auto& pipeline = transform::variant_pipelines()[GetParam()];
  par::Rng rng(101);
  const data::Pattern patterns[] = {
      data::Pattern::ReduceSum, data::Pattern::Recurrence,
      data::Pattern::OffsetStencil, data::Pattern::PrivTemp,
      data::Pattern::IndirectHistogram};
  for (const data::Pattern p : patterns) {
    const data::GenKernel k = data::generate_kernel(p, "var", rng);
    ir::Module base = frontend::compile(k.source, "base");
    ir::Module variant = frontend::compile(k.source, "variant");
    transform::run_pipeline(variant, pipeline);
    const auto prof_base = profiler::profile(base, "kernel", k.args);
    const auto prof_var = profiler::profile(variant, "kernel", k.args);
    ASSERT_EQ(prof_base.loops.size(), prof_var.loops.size());
    for (std::size_t l = 0; l < prof_base.loops.size(); ++l) {
      const auto& lb = prof_base.loops[l];
      const auto& lv = prof_var.loops[l];
      EXPECT_EQ(analysis::oracle_classify(*lb.fn, lb.loop,
                                          prof_base.dep).parallel,
                analysis::oracle_classify(*lv.fn, lv.loop,
                                          prof_var.dep).parallel)
          << data::pattern_name(p) << " under " << pipeline.name;
      // Loop trip counts are semantics; they must also survive.
      EXPECT_EQ(lb.features.exec_times, lv.features.exec_times);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPipelines, VariantProperty,
    ::testing::Range<std::size_t>(0, 6),
    [](const auto& info) {
      std::string name = transform::variant_pipelines()[info.param].name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Property: matmul gradients check numerically for randomized shapes.
// ---------------------------------------------------------------------------

struct MatmulShape {
  std::size_t m, k, n;
};

class MatmulGradProperty : public ::testing::TestWithParam<MatmulShape> {};

TEST_P(MatmulGradProperty, AnalyticMatchesNumeric) {
  const auto [m, k, n] = GetParam();
  par::Rng rng(m * 131 + k * 17 + n);
  ag::Tensor a = ag::Tensor::randn({m, k}, rng, 0.5f, true);
  ag::Tensor b = ag::Tensor::randn({k, n}, rng, 0.5f, true);
  auto fn = [&] { return ag::sum(ag::matmul(a, b)); };
  ag::Tensor out = fn();
  a.zero_grad();
  b.zero_grad();
  out.backward();
  const auto ga = a.grad();
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < a.numel(); i += std::max<std::size_t>(1, a.numel() / 7)) {
    const float orig = a.data()[i];
    a.data()[i] = orig + eps;
    const float up = fn().item();
    a.data()[i] = orig - eps;
    const float down = fn().item();
    a.data()[i] = orig;
    EXPECT_NEAR(ga[i], (up - down) / (2 * eps), 3e-2f);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulGradProperty,
                         ::testing::Values(MatmulShape{1, 1, 1},
                                           MatmulShape{2, 7, 3},
                                           MatmulShape{5, 2, 9},
                                           MatmulShape{8, 8, 8},
                                           MatmulShape{1, 16, 4}));

// ---------------------------------------------------------------------------
// Property: anonymous-walk distributions are valid probability vectors on
// random graphs, and anonymization is permutation-invariant.
// ---------------------------------------------------------------------------

class WalkProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WalkProperty, DistributionsNormalizedOnRandomGraphs) {
  par::Rng rng(GetParam());
  const std::size_t n = 3 + rng.uniform_u64(12);
  graph::WalkGraph g(n);
  const std::size_t edges = rng.uniform_u64(2 * n) + 1;
  for (std::size_t e = 0; e < edges; ++e) {
    g.add_edge(static_cast<std::uint32_t>(rng.uniform_u64(n)),
               static_cast<std::uint32_t>(rng.uniform_u64(n)));
  }
  graph::AwVocab vocab;
  graph::AwParams params;
  params.gamma = 16;
  params.length = 4 + static_cast<std::uint32_t>(rng.uniform_u64(3));
  for (std::uint32_t v = 0; v < n; ++v) {
    const auto d =
        graph::node_aw_distribution(g, v, params, vocab, true, rng);
    float sum = 0.0f;
    for (const float x : d) {
      EXPECT_GE(x, 0.0f);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

TEST_P(WalkProperty, AnonymizationIsRelabelingInvariant) {
  par::Rng rng(GetParam() ^ 0xABCD);
  std::vector<std::uint32_t> walk(6);
  for (auto& v : walk) v = static_cast<std::uint32_t>(rng.uniform_u64(4));
  // Apply a random relabeling of node ids.
  std::uint32_t perm[4] = {13, 42, 7, 99};
  std::vector<std::uint32_t> relabeled;
  for (const auto v : walk) relabeled.push_back(perm[v]);
  EXPECT_EQ(graph::anonymize(walk), graph::anonymize(relabeled));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalkProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Property: the interpreter is deterministic — identical runs produce
// identical dependence profiles (edge multiset and loop runtimes).
// ---------------------------------------------------------------------------

class DeterminismProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismProperty, ProfilesAreBitStable) {
  par::Rng rng(GetParam());
  const data::GenKernel k =
      data::generate_kernel(data::Pattern::MatMulNest, "det", rng);
  const ir::Module m1 = frontend::compile(k.source, "a");
  const ir::Module m2 = frontend::compile(k.source, "b");
  const auto p1 = profiler::profile(m1, "kernel", k.args);
  const auto p2 = profiler::profile(m2, "kernel", k.args);
  EXPECT_EQ(p1.run.steps, p2.run.steps);
  ASSERT_EQ(p1.dep.edges.size(), p2.dep.edges.size());
  for (std::size_t i = 0; i < p1.dep.edges.size(); ++i) {
    EXPECT_EQ(p1.dep.edges[i].src.id, p2.dep.edges[i].src.id);
    EXPECT_EQ(p1.dep.edges[i].dst.id, p2.dep.edges[i].dst.id);
    EXPECT_EQ(p1.dep.edges[i].total_count, p2.dep.edges[i].total_count);
    EXPECT_EQ(p1.dep.edges[i].intra_count, p2.dep.edges[i].intra_count);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty,
                         ::testing::Values(11, 22, 33));

}  // namespace
