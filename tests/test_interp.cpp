// Interpreter semantics: arithmetic, control flow, builtins, recursion,
// faults, and deterministic argument synthesis.
#include <gtest/gtest.h>

#include "frontend/lower.hpp"
#include "profiler/interp.hpp"

namespace {

using namespace mvgnn;
using profiler::ArgInit;
using profiler::InterpError;

double run_f(const std::string& body, std::vector<ArgInit> args = {}) {
  const ir::Module m = frontend::compile(body, "t");
  profiler::NullObserver obs;
  return profiler::run(m, "kernel", args, obs).return_value.f;
}

std::int64_t run_i(const std::string& body, std::vector<ArgInit> args = {}) {
  const ir::Module m = frontend::compile(body, "t");
  profiler::NullObserver obs;
  return profiler::run(m, "kernel", args, obs).return_value.i;
}

TEST(Interp, IntegerArithmetic) {
  EXPECT_EQ(run_i("int kernel() { return (7 + 3) * 2 - 5 / 2 % 2; }"),
            (7 + 3) * 2 - 5 / 2 % 2);
  EXPECT_EQ(run_i("int kernel() { return -4 % 3; }"), -4 % 3);
  EXPECT_EQ(run_i("int kernel() { return 3 < 5 && 2 >= 2; }"), 1);
  EXPECT_EQ(run_i("int kernel() { return !(1 == 1) || 0 != 0; }"), 0);
}

TEST(Interp, FloatArithmeticAndCasts) {
  EXPECT_DOUBLE_EQ(run_f("float kernel() { return 1.5 * 4.0 - 1.0; }"), 5.0);
  EXPECT_EQ(run_i("int kernel() { return (int) 3.9; }"), 3);
  EXPECT_DOUBLE_EQ(run_f("float kernel() { return (float) 7 / 2.0; }"), 3.5);
}

TEST(Interp, Builtins) {
  EXPECT_DOUBLE_EQ(run_f("float kernel() { return sqrt(16.0); }"), 4.0);
  EXPECT_DOUBLE_EQ(run_f("float kernel() { return fmax(1.0, -3.0); }"), 1.0);
  EXPECT_DOUBLE_EQ(run_f("float kernel() { return fmin(1.0, -3.0); }"), -3.0);
  EXPECT_DOUBLE_EQ(run_f("float kernel() { return fabs(-2.5); }"), 2.5);
  EXPECT_DOUBLE_EQ(run_f("float kernel() { return pow(2.0, 10.0); }"), 1024.0);
  EXPECT_EQ(run_i("int kernel() { return imax(3, 9) + imin(3, 9) + iabs(-4); }"),
            9 + 3 + 4);
}

TEST(Interp, LoopsComputeCorrectValues) {
  EXPECT_EQ(run_i(R"(
int kernel() {
  int s = 0;
  for (int i = 1; i <= 10; i += 1) {
    s += i;
  }
  return s;
}
)"),
            55);
  EXPECT_EQ(run_i(R"(
int kernel() {
  int s = 0;
  int i = 0;
  while (i < 5) {
    s = s + 2;
    i = i + 1;
  }
  return s;
}
)"),
            10);
}

TEST(Interp, BreakAndContinueSemantics) {
  EXPECT_EQ(run_i(R"(
int kernel() {
  int s = 0;
  for (int i = 0; i < 10; i += 1) {
    if (i == 3) {
      continue;
    }
    if (i == 6) {
      break;
    }
    s += i;
  }
  return s;
}
)"),
            0 + 1 + 2 + 4 + 5);
}

TEST(Interp, RecursionComputesFib) {
  EXPECT_EQ(run_i(R"(
int fib(int n) {
  if (n < 2) {
    return n;
  }
  return fib(n - 1) + fib(n - 2);
}
int kernel() { return fib(12); }
)"),
            144);
}

TEST(Interp, LocalArraysAreZeroInitialized) {
  EXPECT_DOUBLE_EQ(run_f(R"(
const int N = 8;
float kernel() {
  float t[N];
  float s = 1.0;
  for (int i = 0; i < N; i += 1) {
    s = s + t[i];
  }
  return s;
}
)"),
                   1.0);
}

TEST(Interp, MutableScalarParameters) {
  EXPECT_EQ(run_i(R"(
int kernel(int n) {
  n = n + 5;
  return n * 2;
}
)",
                  {ArgInit::of_int(10)}),
            30);
}

TEST(Interp, ArrayArgumentsReadAndWrite) {
  const ir::Module m = frontend::compile(R"(
const int N = 4;
float kernel(float[] a) {
  for (int i = 0; i < N; i += 1) {
    a[i] = (float) i;
  }
  return a[3];
}
)",
                                         "t");
  profiler::NullObserver obs;
  std::vector<ArgInit> args = {ArgInit::of_array(4)};
  EXPECT_DOUBLE_EQ(profiler::run(m, "kernel", args, obs).return_value.f, 3.0);
}

TEST(Interp, DeterministicArgumentFill) {
  const char* src = R"(
const int N = 16;
float kernel(float[] a) {
  float s = 0.0;
  for (int i = 0; i < N; i += 1) {
    s = s + a[i];
  }
  return s;
}
)";
  const double a = run_f(src, {ArgInit::of_array(16, 3)});
  const double b = run_f(src, {ArgInit::of_array(16, 3)});
  const double c = run_f(src, {ArgInit::of_array(16, 4)});
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Interp, IntArrayFillStaysInBounds) {
  // Indirect self-indexing: every idx element must be < N.
  EXPECT_NO_THROW(run_f(R"(
const int N = 32;
float kernel(int[] idx, float[] a) {
  float s = 0.0;
  for (int i = 0; i < N; i += 1) {
    s = s + a[idx[idx[i]]];
  }
  return s;
}
)",
                        {ArgInit::of_array(32, 1), ArgInit::of_array(32, 2)}));
}

TEST(Interp, FaultsAreReported) {
  EXPECT_THROW(run_i("int kernel() { return 1 / 0; }"), InterpError);
  EXPECT_THROW(run_i("int kernel() { return 1 % 0; }"), InterpError);
  EXPECT_THROW(run_f(R"(
float kernel(float[] a) { return a[99]; }
)",
                     {ArgInit::of_array(4)}),
               InterpError);
  EXPECT_THROW(run_f(R"(
float kernel(float[] a) { return a[-1]; }
)",
                     {ArgInit::of_array(4)}),
               InterpError);
}

TEST(Interp, StepBudgetStopsRunaway) {
  const ir::Module m = frontend::compile(R"(
int kernel() {
  int i = 0;
  while (0 == 0) {
    i = i + 1;
  }
  return i;
}
)",
                                         "t");
  profiler::NullObserver obs;
  profiler::InterpOptions opts;
  opts.max_steps = 10'000;
  EXPECT_THROW(profiler::run(m, "kernel", {}, obs, opts), InterpError);
}

TEST(Interp, CallDepthLimitStopsInfiniteRecursion) {
  const ir::Module m = frontend::compile(R"(
int rec(int n) { return rec(n + 1); }
int kernel() { return rec(0); }
)",
                                         "t");
  profiler::NullObserver obs;
  profiler::InterpOptions opts;
  opts.max_call_depth = 64;
  EXPECT_THROW(profiler::run(m, "kernel", {}, obs, opts), InterpError);
}

TEST(Interp, MissingEntryAndArgMismatch) {
  const ir::Module m = frontend::compile("void f() {}", "t");
  profiler::NullObserver obs;
  EXPECT_THROW(profiler::run(m, "kernel", {}, obs), InterpError);
  std::vector<ArgInit> extra = {ArgInit::of_int(1)};
  EXPECT_THROW(profiler::run(m, "f", extra, obs), InterpError);
}

}  // namespace
