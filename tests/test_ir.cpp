// IR-level unit tests: builder invariants, verifier rejections on
// hand-built malformed IR, printer output, value equality.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/function.hpp"

namespace {

using namespace mvgnn;
using ir::BlockId;
using ir::Function;
using ir::Instruction;
using ir::IrBuilder;
using ir::Opcode;
using ir::TypeKind;
using ir::Value;

/// Minimal well-formed function: entry { ret 0 }.
Function make_trivial() {
  Function fn;
  fn.name = "f";
  fn.return_type = TypeKind::Int;
  IrBuilder b(fn);
  const BlockId entry = b.new_block("entry");
  b.set_insert(entry);
  b.ret(Value::imm(std::int64_t{0}));
  return fn;
}

TEST(IrVerifier, AcceptsWellFormedFunction) {
  const Function fn = make_trivial();
  EXPECT_NO_THROW(ir::verify(fn));
}

TEST(IrVerifier, RejectsMissingTerminator) {
  Function fn;
  fn.name = "f";
  IrBuilder b(fn);
  b.set_insert(b.new_block());
  b.emit(Opcode::Add, TypeKind::Int,
         {Value::imm(std::int64_t{1}), Value::imm(std::int64_t{2})});
  EXPECT_THROW(ir::verify(fn), std::runtime_error);
}

TEST(IrVerifier, RejectsTerminatorMidBlock) {
  Function fn = make_trivial();
  // Append another instruction after the ret by hand.
  Instruction extra;
  extra.op = Opcode::Ret;
  fn.instrs.push_back(extra);
  fn.blocks[0].instrs.push_back(1);
  EXPECT_THROW(ir::verify(fn), std::runtime_error);
}

TEST(IrVerifier, RejectsDanglingRegister) {
  Function fn;
  fn.name = "f";
  IrBuilder b(fn);
  b.set_insert(b.new_block());
  b.ret(Value::reg_of(99));
  EXPECT_THROW(ir::verify(fn), std::runtime_error);
}

TEST(IrVerifier, RejectsDanglingBlockTarget) {
  Function fn;
  fn.name = "f";
  IrBuilder b(fn);
  b.set_insert(b.new_block());
  b.br(7);  // no such block
  EXPECT_THROW(ir::verify(fn), std::runtime_error);
}

TEST(IrVerifier, RejectsBadArity) {
  Function fn = make_trivial();
  Instruction bad;
  bad.op = Opcode::Add;
  bad.type = TypeKind::Int;
  bad.operands = {Value::imm(std::int64_t{1})};  // Add wants 2
  fn.instrs.push_back(bad);
  fn.blocks[0].instrs.insert(fn.blocks[0].instrs.begin(), 1);
  EXPECT_THROW(ir::verify(fn), std::runtime_error);
}

TEST(IrVerifier, RejectsCallWithoutCallee) {
  Function fn = make_trivial();
  Instruction call;
  call.op = Opcode::Call;
  call.type = TypeKind::Void;
  fn.instrs.push_back(call);
  fn.blocks[0].instrs.insert(fn.blocks[0].instrs.begin(), 1);
  EXPECT_THROW(ir::verify(fn), std::runtime_error);
}

TEST(IrVerifier, RejectsMarkerWithDanglingLoop) {
  Function fn = make_trivial();
  Instruction marker;
  marker.op = Opcode::LoopHead;
  marker.type = TypeKind::Void;
  marker.loop = 3;  // no loops registered
  fn.instrs.push_back(marker);
  fn.blocks[0].instrs.insert(fn.blocks[0].instrs.begin(), 1);
  EXPECT_THROW(ir::verify(fn), std::runtime_error);
}

TEST(IrVerifier, RejectsDuplicatePlacement) {
  Function fn;
  fn.name = "f";
  IrBuilder b(fn);
  const BlockId entry = b.new_block();
  b.set_insert(entry);
  const Value v = b.emit(Opcode::Add, TypeKind::Int,
                         {Value::imm(std::int64_t{1}), Value::imm(std::int64_t{2})});
  b.ret(v);
  fn.blocks[0].instrs.insert(fn.blocks[0].instrs.begin(),
                             fn.blocks[0].instrs[0]);  // placed twice
  EXPECT_THROW(ir::verify(fn), std::runtime_error);
}

TEST(IrBuilder, BlockTerminationTracking) {
  Function fn;
  IrBuilder b(fn);
  b.set_insert(b.new_block());
  EXPECT_FALSE(b.block_terminated());
  b.ret();
  EXPECT_TRUE(b.block_terminated());
}

TEST(IrBuilder, LoopNestingBookkeeping) {
  Function fn;
  IrBuilder b(fn);
  b.set_insert(b.new_block());
  EXPECT_EQ(b.current_loop(), ir::kNoLoop);
  const auto outer = b.open_loop(ir::LoopInfo{});
  const auto inner = b.open_loop(ir::LoopInfo{});
  EXPECT_EQ(fn.loops[inner].parent, outer);
  EXPECT_EQ(fn.loops[inner].depth, 1);
  EXPECT_EQ(b.current_loop(), inner);
  b.close_loop();
  EXPECT_EQ(b.current_loop(), outer);
  b.close_loop();
  EXPECT_EQ(b.current_loop(), ir::kNoLoop);
}

TEST(IrPrinter, RendersRegistersTypesAndLocations) {
  Function fn;
  fn.name = "demo";
  fn.return_type = TypeKind::Int;
  fn.params.push_back({"x", TypeKind::Int});
  IrBuilder b(fn);
  b.set_insert(b.new_block("entry"));
  const Value v = b.emit(Opcode::Add, TypeKind::Int,
                         {Value::arg_of(0), Value::imm(std::int64_t{5})},
                         {3, 1});
  b.ret(v);
  const std::string text = ir::to_string(fn);
  EXPECT_NE(text.find("func @demo"), std::string::npos);
  EXPECT_NE(text.find("$0 x:i64"), std::string::npos);
  EXPECT_NE(text.find("add $0, 5"), std::string::npos);
  EXPECT_NE(text.find("line 3"), std::string::npos);
  EXPECT_NE(text.find("ret %"), std::string::npos);
}

TEST(IrValue, EqualityComparesKindAndPayload) {
  EXPECT_EQ(Value::imm(std::int64_t{3}), Value::imm(std::int64_t{3}));
  EXPECT_FALSE(Value::imm(std::int64_t{3}) == Value::imm(std::int64_t{4}));
  EXPECT_FALSE(Value::imm(std::int64_t{3}) == Value::imm(3.0));
  EXPECT_EQ(Value::reg_of(7), Value::reg_of(7));
  EXPECT_FALSE(Value::reg_of(7) == Value::arg_of(7));
  EXPECT_EQ(Value::block_of(2), Value::block_of(2));
}

TEST(IrTypes, HelpersBehave) {
  EXPECT_TRUE(ir::is_scalar(TypeKind::Int));
  EXPECT_TRUE(ir::is_array(TypeKind::ArrFloat));
  EXPECT_EQ(ir::element_type(TypeKind::ArrInt), TypeKind::Int);
  EXPECT_EQ(ir::element_type(TypeKind::Float), TypeKind::Void);
  EXPECT_EQ(std::string(ir::type_name(TypeKind::ArrFloat)), "f64*");
}

}  // namespace
