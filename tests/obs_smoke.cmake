# Observability smoke: run the CLI with --metrics-out/--trace-out and check
# both files land non-empty. Driven by ctest (see tests/CMakeLists.txt):
#   cmake -DCLI=... -DPROGRAM=... -DOUT_DIR=... -P obs_smoke.cmake
file(MAKE_DIRECTORY ${OUT_DIR})
set(METRICS ${OUT_DIR}/metrics.json)
set(TRACE ${OUT_DIR}/trace.json)
file(REMOVE ${METRICS} ${TRACE})

execute_process(
  COMMAND ${CLI} --quiet --metrics-out ${METRICS} --trace-out ${TRACE}
          profile ${PROGRAM}
  RESULT_VARIABLE rv
  OUTPUT_QUIET)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "mvgnn_cli exited with ${rv}")
endif()

foreach(out ${METRICS} ${TRACE})
  if(NOT EXISTS ${out})
    message(FATAL_ERROR "expected output ${out} was not produced")
  endif()
  file(SIZE ${out} sz)
  if(sz EQUAL 0)
    message(FATAL_ERROR "expected output ${out} is empty")
  endif()
endforeach()

# Cheap sanity on content: the snapshot names series, the trace names spans.
file(READ ${METRICS} metrics_text)
if(NOT metrics_text MATCHES "interp.instructions_total")
  message(FATAL_ERROR "metrics snapshot is missing expected series")
endif()
file(READ ${TRACE} trace_text)
if(NOT trace_text MATCHES "traceEvents")
  message(FATAL_ERROR "trace output is not a Chrome trace_event document")
endif()
