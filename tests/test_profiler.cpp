// Dependence recorder precision: RAW/WAR/WAW kinds, loop-carried vs
// iteration-local classification, nested carriers, cross-instance behaviour,
// CU construction, and Table I loop features.
#include <gtest/gtest.h>

#include "frontend/lower.hpp"
#include "profiler/profile.hpp"

namespace {

using namespace mvgnn;
using profiler::ArgInit;
using profiler::DepEdge;
using profiler::DepType;

profiler::ProfileResult prof(const char* src, std::vector<ArgInit> args) {
  // The module must outlive the profile (it holds Function pointers); keep
  // every test module alive for the process lifetime.
  static std::vector<std::unique_ptr<ir::Module>> keep;
  keep.push_back(std::make_unique<ir::Module>(frontend::compile(src, "t")));
  return profiler::profile(*keep.back(), "kernel", args);
}

/// Finds the first edge of `type` on an object named `obj`.
const DepEdge* find_edge(const profiler::ProfileResult& r, DepType type,
                         const std::string& obj) {
  for (const DepEdge& e : r.dep.edges) {
    if (e.type == type && r.dep.objects.object(e.object).name == obj) {
      return &e;
    }
  }
  return nullptr;
}

TEST(DepRecorder, ClassifiesCarriedRawOnRecurrence) {
  auto r = prof(R"(
const int N = 16;
void kernel(float[] a) {
  for (int i = 1; i < N; i += 1) {
    a[i] = a[i - 1] + 1.0;
  }
}
)",
                {ArgInit::of_array(16)});
  const DepEdge* raw = find_edge(r, DepType::RAW, "a");
  ASSERT_NE(raw, nullptr);
  EXPECT_TRUE(raw->loop_carried());
  EXPECT_EQ(raw->intra_count, 0u);
}

TEST(DepRecorder, SameIndexAccessIsIntraIterationOnly) {
  // a[i] read then written in the same iteration: the read-before-write
  // pair is a WAR dependence that must never be flagged loop-carried.
  auto r = prof(R"(
const int N = 16;
void kernel(float[] a) {
  for (int i = 0; i < N; i += 1) {
    a[i] = a[i] * 2.0;
  }
}
)",
                {ArgInit::of_array(16)});
  const DepEdge* war = find_edge(r, DepType::WAR, "a");
  ASSERT_NE(war, nullptr);
  EXPECT_FALSE(war->loop_carried());
  EXPECT_EQ(war->intra_count, 16u);
  // And a read-modify-write pair becomes an intra RAW once a store exists.
  auto r2 = prof(R"(
const int N = 16;
void kernel(float[] a) {
  for (int i = 0; i < N; i += 1) {
    a[i] = 1.0;
    a[i] = a[i] * 2.0;
  }
}
)",
                 {ArgInit::of_array(16)});
  const DepEdge* raw = find_edge(r2, DepType::RAW, "a");
  ASSERT_NE(raw, nullptr);
  EXPECT_FALSE(raw->loop_carried());
}

TEST(DepRecorder, AntiDependenceIsWarCarried) {
  auto r = prof(R"(
const int N = 16;
void kernel(float[] a) {
  for (int i = 0; i < N - 1; i += 1) {
    a[i] = a[i + 1] * 0.5;
  }
}
)",
                {ArgInit::of_array(16)});
  const DepEdge* war = find_edge(r, DepType::WAR, "a");
  ASSERT_NE(war, nullptr);
  EXPECT_TRUE(war->loop_carried());
  EXPECT_EQ(find_edge(r, DepType::RAW, "a"), nullptr);
}

TEST(DepRecorder, OutputDependenceIsWawCarried) {
  auto r = prof(R"(
const int N = 16;
void kernel(float[] a, float[] b) {
  for (int i = 0; i < N; i += 1) {
    a[0] = b[i];
  }
}
)",
                {ArgInit::of_array(16), ArgInit::of_array(16)});
  const DepEdge* waw = find_edge(r, DepType::WAW, "a");
  ASSERT_NE(waw, nullptr);
  EXPECT_TRUE(waw->loop_carried());
}

TEST(DepRecorder, NestedLoopsCarryAtTheRightLevel) {
  auto r = prof(R"(
const int N = 8;
void kernel(float[] a) {
  for (int i = 1; i < N; i += 1) {
    for (int j = 0; j < N; j += 1) {
      a[i * N + j] = a[(i - 1) * N + j] + 1.0;
    }
  }
}
)",
                {ArgInit::of_array(64)});
  // The i-1 -> i dependence must be carried by the OUTER loop (loop 0),
  // never by the inner one.
  const DepEdge* raw = find_edge(r, DepType::RAW, "a");
  ASSERT_NE(raw, nullptr);
  ASSERT_EQ(raw->carried.size(), 1u);
  EXPECT_EQ(raw->carried[0].first.loop, 0u);
}

TEST(DepRecorder, CrossInstanceIsNotCarried) {
  // Two back-to-back loops over the same array: deps between them are
  // loop-independent with respect to either loop.
  auto r = prof(R"(
const int N = 8;
void kernel(float[] a, float[] b) {
  for (int i = 0; i < N; i += 1) {
    a[i] = 1.5;
  }
  for (int j = 0; j < N; j += 1) {
    b[j] = a[j];
  }
}
)",
                {ArgInit::of_array(8), ArgInit::of_array(8)});
  const DepEdge* raw = find_edge(r, DepType::RAW, "a");
  ASSERT_NE(raw, nullptr);
  EXPECT_FALSE(raw->loop_carried());
  EXPECT_EQ(raw->intra_count, 8u);
}

TEST(DepRecorder, LoopRuntimeCountsBodiesAndInstances) {
  auto r = prof(R"(
const int N = 6;
void kernel(float[] a) {
  for (int i = 0; i < N; i += 1) {
    for (int j = 0; j < 4; j += 1) {
      a[j] = a[j] + 1.0;
    }
  }
}
)",
                {ArgInit::of_array(8)});
  ASSERT_EQ(r.loops.size(), 2u);
  EXPECT_EQ(r.loops[0].features.exec_times, 6u);     // outer iterations
  EXPECT_EQ(r.loops[1].features.exec_times, 24u);    // 6 instances x 4
  const auto rt =
      r.dep.loop_runtime.at(profiler::LoopRef{r.loops[1].fn, r.loops[1].loop});
  EXPECT_EQ(rt.instances, 6u);
}

TEST(DepRecorder, CalleeAccessesAttributeToCallerLoops) {
  auto r = prof(R"(
const int N = 8;
void bump(float[] acc) {
  acc[0] = acc[0] + 1.0;
}
void kernel(float[] acc) {
  for (int i = 0; i < N; i += 1) {
    bump(acc);
  }
}
)",
                {ArgInit::of_array(4)});
  // The accumulation happens inside bump(), yet it must show up as carried
  // by kernel's loop: the loop stack is not popped across calls.
  const DepEdge* raw = find_edge(r, DepType::RAW, "acc");
  ASSERT_NE(raw, nullptr);
  EXPECT_TRUE(raw->loop_carried());
}

TEST(Cu, Figure4ExampleYieldsTwoCus) {
  // The paper's Fig. 4 shape: x's read-compute-write chain and y's chain
  // form two separate CUs.
  const ir::Module m = frontend::compile(R"(
void kernel(float a, float b, float[] out) {
  float x = a * 2.0;
  float y = b + 1.0;
  float u = x * x;
  float v = x + 3.0;
  x = u + v;
  float w = y * y;
  y = w + 2.0;
  out[0] = x;
  out[1] = y;
}
)",
                                         "t");
  const auto cus = profiler::build_cus(*m.find("kernel"));
  // Exactly the x-chain and the y-chain, as in the paper's figure.
  ASSERT_EQ(cus.size(), 2u);
  EXPECT_GT(cus[0].instrs.size(), 5u);
  EXPECT_GT(cus[1].instrs.size(), 5u);
  // The chains end at their respective output lines (10 for x, 11 for y).
  const int last0 = cus[0].end_line, last1 = cus[1].end_line;
  EXPECT_EQ(std::min(last0, last1), 10);
  EXPECT_EQ(std::max(last0, last1), 11);
}

TEST(Cu, MembersShareTheInnermostCommonLoop) {
  const ir::Module m = frontend::compile(R"(
const int N = 4;
void kernel(float[] a) {
  for (int i = 0; i < N; i += 1) {
    a[i] = a[i] * 2.0;
  }
}
)",
                                         "t");
  const auto cus = profiler::build_cus(*m.find("kernel"));
  bool loop_cu = false;
  for (const auto& cu : cus) {
    if (cu.loop != ir::kNoLoop) loop_cu = true;
  }
  EXPECT_TRUE(loop_cu);
}

TEST(LoopFeatures, InternalDepCountsOnlyCarriedNonInduction) {
  auto clean = prof(R"(
const int N = 16;
void kernel(float[] a, float[] b) {
  for (int i = 0; i < N; i += 1) {
    b[i] = a[i] * 2.0;
  }
}
)",
                    {ArgInit::of_array(16), ArgInit::of_array(16)});
  EXPECT_EQ(clean.loops[0].features.internal_dep, 0u);

  auto carried = prof(R"(
const int N = 16;
void kernel(float[] a) {
  for (int i = 1; i < N; i += 1) {
    a[i] = a[i - 1] + 1.0;
  }
}
)",
                      {ArgInit::of_array(16)});
  EXPECT_GT(carried.loops[0].features.internal_dep, 0u);
}

TEST(LoopFeatures, EspIsAtLeastOneAndCflPositive) {
  auto r = prof(R"(
const int N = 16;
void kernel(float[] a, float[] b) {
  for (int i = 0; i < N; i += 1) {
    b[i] = sqrt(fabs(a[i])) * 2.0 + 1.0;
  }
}
)",
                {ArgInit::of_array(16), ArgInit::of_array(16)});
  const auto& f = r.loops[0].features;
  EXPECT_GE(f.esp, 1.0);
  EXPECT_GT(f.cfl, 0.0);
  EXPECT_GT(f.n_inst, 0u);
}

TEST(Profiler, ObserverOverheadIsPureAddition) {
  // NullObserver and DepRecorder runs must execute the same dynamic
  // instruction count.
  const ir::Module m = frontend::compile(R"(
const int N = 32;
float kernel(float[] a) {
  float s = 0.0;
  for (int i = 0; i < N; i += 1) {
    s = s + a[i];
  }
  return s;
}
)",
                                         "t");
  std::vector<ArgInit> args = {ArgInit::of_array(32)};
  profiler::NullObserver null_obs;
  const auto plain = profiler::run(m, "kernel", args, null_obs);
  const auto full = profiler::profile(m, "kernel", args);
  EXPECT_EQ(plain.steps, full.run.steps);
}

}  // namespace
