// MV-GNN model tests: shapes, configuration validation, training on a
// small dataset (the model must beat chance comfortably), view heads, and
// the single-view baseline.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/trainer.hpp"
#include "ml/ncc.hpp"

namespace {

using namespace mvgnn;

const data::Dataset& shared_dataset() {
  static const data::Dataset ds = [] {
    auto programs = data::build_generated_corpus(260, 21);
    data::DatasetOptions opts;
    opts.seed = 13;
    return data::build_dataset(programs, opts);
  }();
  return ds;
}

TEST(Dgcnn, ForwardShapesAndPadding) {
  par::Rng rng(1);
  core::DgcnnConfig cfg;
  cfg.in_dim = 8;
  cfg.gcn_channels = {16, 16, 1};
  cfg.sort_k = 12;
  core::Dgcnn net(cfg, rng);
  // Tiny graph (3 nodes, fewer than sort_k): padding must kick in.
  core::GraphInput g;
  g.ahat = nn::dgcnn_adjacency(3, {{0, 1}, {1, 2}});
  par::Rng data_rng(2);
  g.features = ag::Tensor::randn({3, 8}, data_rng, 1.0f, false);
  const auto out = net.forward(g, /*training=*/false, rng);
  EXPECT_EQ(out.logits.rows(), 1u);
  EXPECT_EQ(out.logits.cols(), 2u);
  EXPECT_EQ(out.pooled.cols(), net.rep_dim());
}

TEST(Dgcnn, BatchedForwardMatchesPerSampleForwards) {
  par::Rng rng(7);
  core::DgcnnConfig cfg;
  cfg.in_dim = 8;
  cfg.gcn_channels = {16, 16, 1};
  cfg.sort_k = 12;
  cfg.dropout = 0.0f;  // eval-mode comparison; keep the graph deterministic
  core::Dgcnn net(cfg, rng);

  // Three graphs of different sizes (one smaller than sort_k to exercise
  // per-segment padding inside the batch).
  const std::vector<std::uint32_t> sizes = {3, 14, 6};
  const std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      edge_lists = {{{0, 1}, {1, 2}},
                    {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 13}, {5, 9}, {7, 8}},
                    {{0, 5}, {1, 4}, {2, 3}}};
  std::vector<core::GraphInput> graphs(3);
  std::vector<const ag::CsrMatrix*> blocks;
  std::vector<std::uint32_t> offsets = {0};
  par::Rng data_rng(8);
  for (std::size_t g = 0; g < 3; ++g) {
    graphs[g].ahat = nn::dgcnn_adjacency(sizes[g], edge_lists[g]);
    graphs[g].features =
        ag::Tensor::randn({sizes[g], 8}, data_rng, 1.0f, false);
    blocks.push_back(&graphs[g].ahat);
    offsets.push_back(offsets.back() + sizes[g]);
  }
  const auto big = ag::CsrMatrix::block_diag(blocks);
  ag::Tensor feats = graphs[0].features;
  feats = ag::concat_rows(feats, graphs[1].features);
  feats = ag::concat_rows(feats, graphs[2].features);

  const auto batched =
      net.forward(big, {}, feats, offsets, /*training=*/false, rng);
  EXPECT_EQ(batched.logits.rows(), 3u);
  EXPECT_EQ(batched.pooled.rows(), 3u);
  for (std::size_t g = 0; g < 3; ++g) {
    const auto single = net.forward(graphs[g], /*training=*/false, rng);
    for (std::size_t c = 0; c < batched.logits.cols(); ++c) {
      EXPECT_NEAR(batched.logits.at(g, c), single.logits.at(0, c), 1e-5f)
          << "graph " << g << " logit " << c;
    }
    for (std::size_t c = 0; c < batched.pooled.cols(); ++c) {
      EXPECT_NEAR(batched.pooled.at(g, c), single.pooled.at(0, c), 1e-5f)
          << "graph " << g << " pooled " << c;
    }
  }
}

TEST(MvGnn, GraphBatchForwardMatchesPerSample) {
  const auto& ds = shared_dataset();
  core::Normalizer norm = core::Normalizer::fit(ds, ds.suite_indices(""));
  core::Featurizer feats(ds, norm);
  par::Rng rng(9);
  core::MvGnnConfig cfg = core::default_config(feats);
  cfg.node_view.dropout = 0.0f;
  cfg.struct_view.dropout = 0.0f;
  core::MvGnn model(cfg, rng);
  ASSERT_GE(ds.samples.size(), 3u);
  std::vector<const core::SampleInput*> chunk = {&feats.get(0), &feats.get(1),
                                                 &feats.get(2)};
  const core::GraphBatch gb = core::make_graph_batch(chunk);
  EXPECT_EQ(gb.size(), 3u);
  EXPECT_EQ(gb.offsets.size(), 4u);
  const auto batched = model.forward_batch(gb, /*training=*/false, rng);
  for (std::size_t b = 0; b < 3; ++b) {
    const auto single = model.forward(*chunk[b], /*training=*/false, rng);
    for (std::size_t c = 0; c < batched.logits.cols(); ++c) {
      EXPECT_NEAR(batched.logits.at(b, c), single.logits.at(0, c), 1e-5f);
      EXPECT_NEAR(batched.node_logits.at(b, c), single.node_logits.at(0, c),
                  1e-5f);
      EXPECT_NEAR(batched.struct_logits.at(b, c),
                  single.struct_logits.at(0, c), 1e-5f);
    }
  }
}

TEST(Trainer, EpochLossIdenticalAcrossBatchSizesAtZeroLr) {
  // With lr = 0 and dropout off, the model never moves, so the epoch loss
  // must equal the mean per-sample loss regardless of batching — including
  // a trailing partial batch (10 samples, batch 4 -> trailing 2).
  const auto& ds = shared_dataset();
  ASSERT_GE(ds.samples.size(), 10u);
  std::vector<std::size_t> train(10);
  std::iota(train.begin(), train.end(), 0);
  core::Normalizer norm = core::Normalizer::fit(ds, train);
  core::Featurizer feats(ds, norm);
  core::MvGnnConfig cfg = core::default_config(feats);
  cfg.node_view.dropout = 0.0f;
  cfg.struct_view.dropout = 0.0f;
  double ref = -1.0;
  for (const std::size_t batch : {std::size_t{1}, std::size_t{5},
                                  std::size_t{4}}) {
    core::TrainConfig tc;
    tc.epochs = 1;
    tc.lr = 0.0f;
    tc.weight_decay = 0.0f;
    tc.batch_size = batch;
    core::MvGnnTrainer trainer(feats, cfg, tc);
    const auto curve = trainer.fit(train, {});
    ASSERT_EQ(curve.size(), 1u);
    if (ref < 0.0) {
      ref = curve[0].loss;
    } else {
      EXPECT_NEAR(curve[0].loss, ref, 1e-5) << "batch " << batch;
    }
  }
}

TEST(Dgcnn, RejectsInvalidConfigs) {
  par::Rng rng(1);
  core::DgcnnConfig bad;
  bad.gcn_channels = {16, 8};  // last channel must be 1 for SortPooling
  EXPECT_THROW(core::Dgcnn(bad, rng), std::invalid_argument);
  core::DgcnnConfig tiny;
  tiny.gcn_channels = {16, 1};
  tiny.sort_k = 4;       // k/2 = 2 < conv2_kernel
  tiny.conv2_kernel = 5;
  EXPECT_THROW(core::Dgcnn(tiny, rng), std::invalid_argument);
}

TEST(MvGnn, ForwardBackwardRunsAndParametersCover) {
  const auto& ds = shared_dataset();
  core::Normalizer norm = core::Normalizer::fit(ds, ds.suite_indices(""));
  core::Featurizer feats(ds, norm);
  par::Rng rng(3);
  core::MvGnn model(core::default_config(feats), rng);
  const core::SampleInput& in = feats.get(0);
  auto out = model.forward(in, /*training=*/true, rng);
  ag::Tensor loss = ag::cross_entropy_logits(out.logits, {in.label});
  EXPECT_NO_THROW(loss.backward());
  EXPECT_GT(model.num_parameters(), 1000u);
  // Every parameter receives some gradient signal over a few samples.
  ag::Adam opt(1e-3f);
  opt.add_params(model.parameters());
  opt.zero_grad();
  for (std::size_t i = 0; i < 5 && i < ds.samples.size(); ++i) {
    auto o = model.forward(feats.get(i), true, rng);
    ag::Tensor l = ag::add(
        ag::cross_entropy_logits(o.logits, {feats.get(i).label}),
        ag::add(ag::cross_entropy_logits(o.node_logits, {feats.get(i).label}),
                ag::cross_entropy_logits(o.struct_logits,
                                         {feats.get(i).label})));
    l.backward();
  }
  std::size_t touched = 0, total = 0;
  for (const auto& p : model.parameters()) {
    bool any = false;
    for (const float g : p.grad()) {
      if (g != 0.0f) any = true;
    }
    touched += any;
    ++total;
  }
  EXPECT_GT(touched, total * 3 / 4);
}

TEST(Trainer, LearnsWellAboveChance) {
  const auto& ds = shared_dataset();
  auto [train, test] = data::split_by_kernel(ds, 0.75, 3);
  train = data::balance_classes(ds, train, 3);
  ASSERT_GE(train.size(), 20u);
  ASSERT_GE(test.size(), 10u);
  core::Normalizer norm = core::Normalizer::fit(ds, train);
  core::Featurizer feats(ds, norm);
  core::TrainConfig tc;
  tc.epochs = 25;
  core::MvGnnTrainer trainer(feats, core::default_config(feats), tc);
  const auto curve = trainer.fit(train, test);
  ASSERT_EQ(curve.size(), tc.epochs);
  // Loss decreases over training (compare first/last thirds).
  double early = 0, late = 0;
  for (std::size_t i = 0; i < 5; ++i) early += curve[i].loss;
  for (std::size_t i = curve.size() - 5; i < curve.size(); ++i) {
    late += curve[i].loss;
  }
  EXPECT_LT(late, early);
  EXPECT_GE(trainer.accuracy(test), 0.70);
  // View predictions exist and mostly agree with the fused head.
  int agree = 0;
  for (const std::size_t i : test) {
    const auto p = trainer.predict(i);
    agree += (p.node_view == p.fused);
  }
  EXPECT_GT(agree, static_cast<int>(test.size()) / 2);
}

TEST(Trainer, StaticGnnTrainsButUsesNoDynamicFeatures) {
  const auto& ds = shared_dataset();
  auto [train, test] = data::split_by_kernel(ds, 0.75, 4);
  train = data::balance_classes(ds, train, 4);
  core::Normalizer norm = core::Normalizer::fit(ds, train);
  core::Featurizer feats(ds, norm);
  core::TrainConfig tc;
  tc.epochs = 15;
  core::StaticGnnTrainer trainer(feats, core::default_config(feats).node_view,
                                 tc);
  trainer.fit(train, {});
  const double acc = trainer.accuracy(test);
  EXPECT_GE(acc, 0.5);  // learns something
}

TEST(Normalizer, ZeroMeanUnitVarianceOnTrainingNodes) {
  const auto& ds = shared_dataset();
  const auto idx = ds.suite_indices("");
  const auto norm = core::Normalizer::fit(ds, idx);
  std::array<double, 7> sum{}, sq{};
  std::size_t n = 0;
  for (const std::size_t i : idx) {
    for (const auto& row : ds.samples[i].node_dynamic) {
      const auto z = norm.apply(row);
      for (int k = 0; k < 7; ++k) {
        sum[k] += z[k];
        sq[k] += z[k] * z[k];
      }
      ++n;
    }
  }
  for (int k = 0; k < 7; ++k) {
    EXPECT_NEAR(sum[k] / n, 0.0, 0.05);
    EXPECT_NEAR(sq[k] / n, 1.0, 0.1);
  }
}

TEST(Ncc, OverfitsATinySubset) {
  const auto& ds = shared_dataset();
  // Pick a small balanced subset.
  std::vector<std::size_t> subset;
  int pos = 0, neg = 0;
  for (std::size_t i = 0; i < ds.samples.size(); ++i) {
    if (ds.samples[i].label && pos < 6) {
      subset.push_back(i);
      ++pos;
    } else if (!ds.samples[i].label && neg < 6) {
      subset.push_back(i);
      ++neg;
    }
  }
  ASSERT_EQ(subset.size(), 12u);
  ml::NccConfig cfg;
  ml::NccTrainConfig tc;
  tc.epochs = 30;
  ml::NccTrainer trainer(ds, cfg, tc);
  trainer.fit(subset);
  // Some corpus templates have identical token streams with different
  // labels (the offset patterns) — those are irreducible for a token-only
  // model, so even overfitting caps below 100%.
  EXPECT_GE(trainer.accuracy(subset), 0.65);
}

}  // namespace

namespace batch_tests {

using namespace mvgnn;

TEST(Trainer, MiniBatchAccumulationStillLearns) {
  const auto& ds = shared_dataset();
  auto [train, test] = data::split_by_kernel(ds, 0.75, 12);
  train = data::balance_classes(ds, train, 12);
  core::Normalizer norm = core::Normalizer::fit(ds, train);
  core::Featurizer feats(ds, norm);
  core::TrainConfig tc;
  tc.epochs = 20;
  tc.batch_size = 8;
  tc.lr = 3e-3f;  // larger batches tolerate a larger rate
  core::MvGnnTrainer trainer(feats, core::default_config(feats), tc);
  const auto curve = trainer.fit(train, {});
  EXPECT_LT(curve.back().loss, curve.front().loss);
  EXPECT_GE(trainer.accuracy(test), 0.65);
}

TEST(Trainer, OversampleBalanceKeepsAllSamples) {
  const auto& ds = shared_dataset();
  const auto idx = ds.suite_indices("");
  const auto balanced = data::oversample_balance(ds, idx, 1);
  EXPECT_GE(balanced.size(), idx.size());
  int pos = 0, neg = 0;
  for (const auto i : balanced) {
    (ds.samples[i].label ? pos : neg)++;
  }
  EXPECT_EQ(pos, neg);
  // Every original index still present.
  std::set<std::size_t> set(balanced.begin(), balanced.end());
  for (const auto i : idx) EXPECT_TRUE(set.count(i));
}

}  // namespace batch_tests

namespace determinism_tests {

using namespace mvgnn;

TEST(Trainer, TrainingIsDeterministicGivenSeeds) {
  const auto& ds = shared_dataset();
  auto [train, test] = data::split_by_kernel(ds, 0.75, 8);
  train = data::balance_classes(ds, train, 8);
  core::Normalizer norm = core::Normalizer::fit(ds, train);
  core::Featurizer feats(ds, norm);
  core::TrainConfig tc;
  tc.epochs = 6;

  core::MvGnnTrainer a(feats, core::default_config(feats), tc);
  const auto curve_a = a.fit(train, {});
  core::MvGnnTrainer b(feats, core::default_config(feats), tc);
  const auto curve_b = b.fit(train, {});

  ASSERT_EQ(curve_a.size(), curve_b.size());
  for (std::size_t e = 0; e < curve_a.size(); ++e) {
    EXPECT_DOUBLE_EQ(curve_a[e].loss, curve_b[e].loss) << "epoch " << e;
  }
  for (const std::size_t i : test) {
    EXPECT_EQ(a.predict(i).fused, b.predict(i).fused);
  }
}

TEST(Dataset, BuildIsDeterministicDespiteParallelism) {
  // The dataset builder fans out over the thread pool; results must be
  // identical run to run (per-item noise streams, ordered collection).
  auto programs = data::build_generated_corpus(90, 66);
  data::DatasetOptions opts;
  opts.seed = 9;
  opts.walk.gamma = 8;
  const data::Dataset a = data::build_dataset(programs, opts);
  const data::Dataset b = data::build_dataset(programs, opts);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].label, b.samples[i].label);
    EXPECT_EQ(a.samples[i].node_dynamic, b.samples[i].node_dynamic);
    EXPECT_EQ(a.samples[i].edges, b.samples[i].edges);
  }
}

}  // namespace determinism_tests
