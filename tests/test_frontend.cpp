// MiniC frontend tests: lexer, parser, semantic checks, lowering structure.
#include <gtest/gtest.h>

#include "frontend/lexer.hpp"
#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"

namespace {

using namespace mvgnn;
using frontend::FrontendError;
using frontend::Tok;

TEST(Lexer, TokenizesOperatorsAndLiterals) {
  const auto t2 = frontend::lex("a1 _b 12 1.5 == != <= >= && || ! ( ) [ ] ;");
  std::vector<Tok> kinds;
  for (const auto& t : t2) kinds.push_back(t.kind);
  const std::vector<Tok> want = {
      Tok::Ident, Tok::Ident, Tok::IntLit, Tok::FloatLit, Tok::Eq, Tok::Ne,
      Tok::Le, Tok::Ge, Tok::AndAnd, Tok::OrOr, Tok::Bang, Tok::LParen,
      Tok::RParen, Tok::LBracket, Tok::RBracket, Tok::Semi, Tok::End};
  EXPECT_EQ(kinds, want);
  EXPECT_EQ(t2[2].int_val, 12);
  EXPECT_DOUBLE_EQ(t2[3].float_val, 1.5);
  // Scientific notation and comments.
  const auto sci = frontend::lex("3.5e2 /*block*/ 2E-3 // tail\n7");
  EXPECT_EQ(sci[0].kind, Tok::FloatLit);
  EXPECT_DOUBLE_EQ(sci[0].float_val, 350.0);
  EXPECT_EQ(sci[1].kind, Tok::FloatLit);
  EXPECT_DOUBLE_EQ(sci[1].float_val, 0.002);
  EXPECT_EQ(sci[2].kind, Tok::IntLit);
}

TEST(Lexer, TracksLineAndColumn) {
  const auto toks = frontend::lex("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[1].loc.col, 3);
}

TEST(Lexer, RejectsBadInput) {
  EXPECT_THROW(frontend::lex("a @ b"), FrontendError);
  EXPECT_THROW(frontend::lex("a & b"), FrontendError);
  EXPECT_THROW(frontend::lex("/* unterminated"), FrontendError);
}

TEST(Parser, ConstExpressionsFold) {
  const auto prog = frontend::parse(
      "const int N = 4 * 8; const int M = N / 2 + (3 - 1); void f() {}");
  ASSERT_EQ(prog.consts.size(), 2u);
  EXPECT_EQ(prog.consts[0].value, 32);
  EXPECT_EQ(prog.consts[1].value, 18);
}

TEST(Parser, RejectsSyntaxErrors) {
  EXPECT_THROW(frontend::parse("void f( {}"), FrontendError);
  EXPECT_THROW(frontend::parse("void f() { x = ; }"), FrontendError);
  EXPECT_THROW(frontend::parse("void f() { for (1; 2; 3) {} }"), FrontendError);
  EXPECT_THROW(frontend::parse("const int N = 1/0;"), FrontendError);
  EXPECT_THROW(frontend::parse("void f() { 3 = x; }"), FrontendError);
}

TEST(Sema, CatchesTypeAndNameErrors) {
  auto check = [](const char* src) {
    auto prog = frontend::parse(src);
    frontend::analyze(prog);
  };
  EXPECT_THROW(check("void f() { x = 1; }"), FrontendError);
  EXPECT_THROW(check("void f() { int x = 1; int x = 2; }"), FrontendError);
  EXPECT_THROW(check("void f(float[] a) { a = a; }"), FrontendError);
  EXPECT_THROW(check("void f(int x) { if (1) { float y = x[0]; } }"),
               FrontendError);
  EXPECT_THROW(check("void f() { break; }"), FrontendError);
  EXPECT_THROW(check("int f() { return; }"), FrontendError);
  EXPECT_THROW(check("void f() { g(); }"), FrontendError);
  EXPECT_THROW(check("void f() { int x = sqrt(1.0); }"), FrontendError);
  EXPECT_THROW(check("float sqrt(float x) { return x; }"), FrontendError);
  // Valid: implicit int->float widening.
  EXPECT_NO_THROW(check("void f() { float x = 1; x = x + 2; }"));
}

TEST(Lowering, ForLoopStructureAndMarkers) {
  const ir::Module m = frontend::compile(R"(
const int N = 8;
void f(float[] a) {
  for (int i = 0; i < N; i += 1) {
    a[i] = 1.0;
  }
}
)",
                                         "t");
  const ir::Function* fn = m.find("f");
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->loops.size(), 1u);
  const ir::LoopInfo& l = fn->loops[0];
  EXPECT_TRUE(l.is_for);
  EXPECT_EQ(l.depth, 0);
  EXPECT_NE(l.induction_slot, ir::kNoInstr);
  // Marker placement: Enter in preheader, Head first in header, Exit first
  // in the exit block.
  EXPECT_EQ(fn->instr(fn->block(l.preheader).instrs[0]).op,
            ir::Opcode::LoopEnter);
  EXPECT_EQ(fn->instr(fn->block(l.header).instrs[0]).op, ir::Opcode::LoopHead);
  EXPECT_EQ(fn->instr(fn->block(l.exit).instrs[0]).op, ir::Opcode::LoopExit);
  // Printing works and mentions the loop markers.
  const std::string text = ir::to_string(*fn);
  EXPECT_NE(text.find("loop.enter"), std::string::npos);
}

TEST(Lowering, NestedLoopsRecordParents) {
  const ir::Module m = frontend::compile(R"(
void f(float[] a) {
  for (int i = 0; i < 4; i += 1) {
    for (int j = 0; j < 4; j += 1) {
      a[i * 4 + j] = 0.0;
    }
  }
}
)",
                                         "t");
  const ir::Function* fn = m.find("f");
  ASSERT_EQ(fn->loops.size(), 2u);
  EXPECT_EQ(fn->loops[0].parent, ir::kNoLoop);
  EXPECT_EQ(fn->loops[1].parent, fn->loops[0].id);
  EXPECT_EQ(fn->loops[1].depth, 1);
}

TEST(Lowering, WhileLoopsAreNotForLoops) {
  const ir::Module m = frontend::compile(R"(
void f() {
  int i = 0;
  while (i < 4) {
    i = i + 1;
  }
}
)",
                                         "t");
  const ir::Function* fn = m.find("f");
  ASSERT_EQ(fn->loops.size(), 1u);
  EXPECT_FALSE(fn->loops[0].is_for);
}

TEST(Lowering, GlobalConstsBecomeImmediates) {
  const ir::Module m = frontend::compile(
      "const int N = 7; int f() { return N; }", "t");
  const ir::Function* fn = m.find("f");
  bool found = false;
  for (const ir::Instruction& in : fn->instrs) {
    if (in.op == ir::Opcode::Ret && !in.operands.empty() &&
        in.operands[0].kind == ir::Value::Kind::ImmInt) {
      EXPECT_EQ(in.operands[0].imm_int, 7);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lowering, VerifierAcceptsEveryCorpusModule) {
  // compile() runs ir::verify internally; this exercises dead-code paths
  // (return inside loops, break/continue, if-else chains).
  EXPECT_NO_THROW(frontend::compile(R"(
int f(float[] a) {
  for (int i = 0; i < 8; i += 1) {
    if (a[i] > 1.0) {
      return i;
    } else {
      if (a[i] < 0.1) {
        continue;
      }
    }
    a[i] = 0.5;
    if (a[i] > 0.4) {
      break;
    }
  }
  return -1;
}
)",
                                    "t"));
}

TEST(Lowering, SourceLinesSurviveLowering) {
  const ir::Module m = frontend::compile(R"(
void f(float[] a) {
  for (int i = 0; i < 4; i += 1) {
    a[i] = 2.0;
  }
}
)",
                                         "t");
  const ir::Function* fn = m.find("f");
  EXPECT_EQ(fn->loops[0].start_line, 3);
  EXPECT_EQ(fn->loops[0].end_line, 5);
}

}  // namespace
