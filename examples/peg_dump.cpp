// Renders the Program Execution Graph of a program as Graphviz DOT —
// the paper's Fig. 5. Pass a MiniC file as argv[1] (entry function must be
// `kernel` taking float arrays), or run without arguments for a built-in
// stencil example. Pipe through `dot -Tpng` to plot.
//
//   ./build/examples/peg_dump > peg.dot && dot -Tpng peg.dot -o peg.png
#include <cstdio>
#include <fstream>
#include <sstream>

#include "frontend/lower.hpp"
#include "graph/peg.hpp"
#include "profiler/profile.hpp"

int main(int argc, char** argv) {
  using namespace mvgnn;

  std::string source = R"(
const int N = 16;
void kernel(float[] a, float[] b) {
  for (int i = 1; i < N - 1; i += 1) {
    b[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1];
  }
  float s = 0.0;
  for (int i = 0; i < N; i += 1) {
    s = s + b[i];
  }
  a[0] = s;
}
)";
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  const ir::Module module = frontend::compile(source, "peg_dump");
  const ir::Function* kernel = module.find("kernel");
  if (!kernel) {
    std::fprintf(stderr, "no `kernel` function found\n");
    return 1;
  }
  std::vector<profiler::ArgInit> args;
  for (const auto& p : kernel->params) {
    if (ir::is_array(p.type)) {
      args.push_back(profiler::ArgInit::of_array(4096, args.size() + 1));
    } else if (p.type == ir::TypeKind::Int) {
      args.push_back(profiler::ArgInit::of_int(8));
    } else {
      args.push_back(profiler::ArgInit::of_float(1.0));
    }
  }
  const auto prof = profiler::profile(module, "kernel", args);
  const graph::Peg peg = graph::build_peg(module, prof);

  // Whole-program PEG on stdout; per-loop sub-PEGs as comments after it.
  std::fputs(graph::to_dot(peg, "PEG").c_str(), stdout);
  for (const profiler::LoopSample& loop : prof.loops) {
    const auto sub = graph::extract_sub_peg(peg, loop.fn, loop.loop);
    std::printf("\n// sub-PEG of the loop at line %d (%zu nodes):\n",
                loop.fn->loops[loop.loop].start_line, sub.num_nodes());
    std::ostringstream name;
    name << "subpeg_line" << loop.fn->loops[loop.loop].start_line;
    // Emit as a comment block so the main DOT file stays valid.
    std::istringstream dot(graph::to_dot(peg, sub, name.str()));
    std::string line;
    while (std::getline(dot, line)) {
      std::printf("// %s\n", line.c_str());
    }
  }
  return 0;
}
