// Parallelization suggestions (DiscoPoP phases 2-3): profiles a MiniC
// program and prints ranked OpenMP pragma suggestions per loop, with
// reduction/private clauses filled in and coverage/speedup-based ranking.
//
//   ./build/examples/suggest_pragmas [program.minic]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/suggest.hpp"
#include "frontend/lower.hpp"

int main(int argc, char** argv) {
  using namespace mvgnn;

  std::string source = R"(
const int N = 96;
float kernel(float[] a, float[] b, float[] h, int[] idx) {
  // hot DOALL with a privatizable temporary
  float t = 0.0;
  for (int i = 0; i < N; i += 1) {
    t = a[i] * 0.5 + 1.0;
    b[i] = t * t;
  }
  // histogram: array reduction through an indirect subscript
  for (int i = 0; i < N; i += 1) {
    h[idx[i]] += 1.0;
  }
  // min/max reduction pair
  float lo = 1000000.0;
  float hi = -1000000.0;
  for (int i = 0; i < N; i += 1) {
    lo = fmin(lo, b[i]);
    hi = fmax(hi, b[i]);
  }
  // genuinely sequential recurrence
  for (int i = 1; i < N; i += 1) {
    a[i] = a[i - 1] * 0.25 + b[i];
  }
  return lo + hi;
}
)";
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  const ir::Module module = frontend::compile(source, "suggest");
  const ir::Function* kernel = module.find("kernel");
  if (!kernel) {
    std::fprintf(stderr, "no `kernel` function found\n");
    return 1;
  }
  std::vector<profiler::ArgInit> args;
  for (const auto& p : kernel->params) {
    if (ir::is_array(p.type)) {
      args.push_back(profiler::ArgInit::of_array(4096, args.size() + 1));
    } else if (p.type == ir::TypeKind::Int) {
      args.push_back(profiler::ArgInit::of_int(8));
    } else {
      args.push_back(profiler::ArgInit::of_float(1.0));
    }
  }
  const auto prof = profiler::profile(module, "kernel", args);
  const auto suggestions = analysis::suggest_openmp(module, prof);

  std::printf("ranked parallelization suggestions:\n\n");
  for (const auto& s : suggestions) {
    std::printf("  %s\n", analysis::to_string(s).c_str());
  }
  std::printf(
      "\nEvery pragma is derived from the dynamic dependence profile: the\n"
      "clauses name the recognized reduction accumulators and write-first\n"
      "privatizable scalars; ranking weighs loop coverage by the Amdahl\n"
      "gain of its estimated speedup.\n");
  return 0;
}
