// Quickstart: the full pipeline on one small program.
//
//   MiniC source -> IR -> dependence profile (DiscoPoP phase 1) -> PEG ->
//   per-loop Table I features, oracle label, and tool verdicts.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "analysis/tools.hpp"
#include "frontend/lower.hpp"
#include "graph/peg.hpp"
#include "profiler/profile.hpp"

int main() {
  using namespace mvgnn;

  // A tiny program with three characteristically different loops.
  const char* source = R"(
const int N = 64;
float kernel(float[] a, float[] b) {
  // DOALL: independent iterations.
  for (int i = 0; i < N; i += 1) {
    b[i] = a[i] * 2.0 + 1.0;
  }
  // Reduction: loop-carried, but parallelizable with a reduction clause.
  float s = 0.0;
  for (int i = 0; i < N; i += 1) {
    s = s + b[i];
  }
  // Recurrence: genuinely sequential.
  for (int i = 1; i < N; i += 1) {
    a[i] = a[i - 1] * 0.5 + b[i];
  }
  return s;
}
)";

  std::printf("== 1. compile (lex / parse / sema / lower / verify)\n");
  const ir::Module module = frontend::compile(source, "quickstart");
  std::printf("   module '%s': %zu function(s), %zu loops\n\n",
              module.name.c_str(), module.functions.size(),
              module.functions[0]->num_loops());

  std::printf("== 2. profile (instrumented execution, shadow-memory deps)\n");
  const std::vector<profiler::ArgInit> args = {
      profiler::ArgInit::of_array(64, 1), profiler::ArgInit::of_array(64, 2)};
  const profiler::ProfileResult prof =
      profiler::profile(module, "kernel", args);
  std::printf("   %llu dynamic instructions, %zu dependence edges, %zu CUs\n\n",
              static_cast<unsigned long long>(prof.run.steps),
              prof.dep.edges.size(), prof.cus.size());

  std::printf("== 3. program execution graph\n");
  const graph::Peg peg = graph::build_peg(module, prof);
  std::printf("   PEG: %zu nodes, %zu edges\n\n", peg.nodes.size(),
              peg.edges.size());

  std::printf("== 4. per-loop features and verdicts\n");
  std::printf("%6s %7s %10s %6s %6s %9s | %7s %8s %6s %6s\n", "line",
              "N_Inst", "exec", "CFL", "ESP", "carried", "oracle", "DiscoPoP",
              "AutoPar", "Pluto");
  for (const profiler::LoopSample& loop : prof.loops) {
    const auto& f = loop.features;
    const auto oracle =
        analysis::oracle_classify(*loop.fn, loop.loop, prof.dep);
    const auto dp = analysis::discopop_classify(*loop.fn, loop.loop, prof.dep);
    const auto ap = analysis::autopar_classify(*loop.fn, loop.loop);
    const auto pl = analysis::pluto_classify(*loop.fn, loop.loop);
    std::printf("%6d %7llu %10llu %6.0f %6.2f %9llu | %7s %8s %6s %6s\n",
                loop.fn->loops[loop.loop].start_line,
                static_cast<unsigned long long>(f.n_inst),
                static_cast<unsigned long long>(f.exec_times), f.cfl, f.esp,
                static_cast<unsigned long long>(f.internal_dep),
                oracle.parallel ? "PAR" : "SEQ", dp.parallel ? "PAR" : "SEQ",
                ap.parallel ? "PAR" : "SEQ", pl.parallel ? "PAR" : "SEQ");
    if (!oracle.parallel) {
      std::printf("         reason: %s\n", oracle.reason.c_str());
    }
  }
  std::printf(
      "\nNext steps: examples/peg_dump renders the PEG (paper Fig. 5),\n"
      "examples/classify_loops trains the MV-GNN and classifies a file.\n");
  return 0;
}
