// Computational-unit decomposition demo — the paper's Fig. 4: a code block
// whose statements fold into two read-compute-write CUs, one per variable
// chain.
#include <cstdio>

#include "frontend/lower.hpp"
#include "profiler/cu.hpp"

int main() {
  using namespace mvgnn;

  // The Fig. 4 shape: x's chain spans lines 3/5/6/7, y's spans 4/8/9/11.
  const char* source = R"(
void kernel(float a, float b, float[] out) {
  float x = a * 2.0;
  float y = b + 1.0;
  float u = x * x;
  float v = x + 3.0;
  x = u + v;
  float w = y * y;
  y = w + 2.0;
  out[0] = x;
  out[1] = y;
}
)";
  std::printf("source:\n%s\n", source);

  const ir::Module module = frontend::compile(source, "cu_demo");
  const ir::Function& fn = *module.find("kernel");
  const auto cus = profiler::build_cus(fn);

  std::printf("CU decomposition (%zu units):\n", cus.size());
  for (const auto& cu : cus) {
    std::printf("  CU%u: lines %d..%d, %zu instructions\n", cu.id,
                cu.start_line, cu.end_line, cu.instrs.size());
    for (const ir::InstrId id : cu.instrs) {
      std::printf("    %%%-3u %s (line %d)\n", id,
                  ir::opcode_name(fn.instr(id).op), fn.instr(id).loc.line);
    }
  }
  std::printf(
      "\nAs in the paper's Fig. 4, the statements that read, compute and\n"
      "write one variable group form one CU; the two independent variable\n"
      "chains (x and y) become two separate PEG vertices.\n");
  return 0;
}
