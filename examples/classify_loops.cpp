// End-to-end MV-GNN deployment flow: train once (cached), then classify
// every for-loop of any MiniC program through the inference path
// (data::featurize_program + core::build_input + the trained model).
//
//   ./build/examples/classify_loops [program.minic] [--cache DIR]
//
// With --cache, the built dataset, fitted normalizer and trained ensemble
// weights are stored in DIR and reused on later runs (a fresh run trains a
// 3-seed ensemble in ~2 minutes; cached runs classify in milliseconds).
// The program's entry function must be named `kernel`; array parameters
// are synthesized with deterministic contents, int parameters get 8.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <sys/stat.h>

#include "core/trainer.hpp"
#include "data/serialize.hpp"
#include "frontend/lower.hpp"
#include "nn/module.hpp"

namespace {

using namespace mvgnn;

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

void save_normalizer(const core::Normalizer& n, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  os.write(reinterpret_cast<const char*>(n.mean.data()), sizeof n.mean);
  os.write(reinterpret_cast<const char*>(n.stdev.data()), sizeof n.stdev);
}

core::Normalizer load_normalizer(const std::string& path) {
  core::Normalizer n;
  std::ifstream is(path, std::ios::binary);
  is.read(reinterpret_cast<char*>(n.mean.data()), sizeof n.mean);
  is.read(reinterpret_cast<char*>(n.stdev.data()), sizeof n.stdev);
  if (!is) throw std::runtime_error("bad normalizer cache: " + path);
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  std::string user_source = R"(
const int N = 48;
float kernel(float[] a, float[] b) {
  for (int i = 0; i < N; i += 1) {
    b[i] = sqrt(fabs(a[i])) + 0.5;
  }
  float mx = -100000.0;
  for (int i = 0; i < N; i += 1) {
    mx = fmax(mx, b[i]);
  }
  float carry = 0.0;
  for (int i = 0; i < N; i += 1) {
    carry = carry * 0.9 + a[i];
    b[i] = carry;
  }
  return mx;
}
)";
  std::string cache_dir;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--cache") == 0 && a + 1 < argc) {
      cache_dir = argv[++a];
    } else {
      std::ifstream in(argv[a]);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[a]);
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      user_source = buf.str();
    }
  }

  data::DatasetOptions opts;
  opts.seed = 5;

  // ---- dataset: build or load from cache --------------------------------
  data::Dataset ds;
  const std::string ds_path = cache_dir + "/dataset.bin";
  if (!cache_dir.empty() && file_exists(ds_path)) {
    std::printf("loading cached dataset from %s...\n", ds_path.c_str());
    ds = data::load_dataset(ds_path);
  } else {
    std::printf("building training corpus...\n");
    ds = data::build_dataset(data::build_generated_corpus(760, 2024), opts);
    if (!cache_dir.empty()) data::save_dataset(ds, ds_path);
  }
  // 85/15 train/validation split; balance by oversampling so no sample is
  // discarded.
  auto [train_raw, val] = data::split_by_kernel(ds, 0.85, 5);
  std::vector<std::size_t> train = data::oversample_balance(ds, train_raw, 5);

  // ---- normalizer + model: fit/train or load ----------------------------
  const std::string norm_path = cache_dir + "/normalizer.bin";
  const std::string weights_path = cache_dir + "/weights.bin";
  core::Normalizer norm;
  if (!cache_dir.empty() && file_exists(norm_path)) {
    norm = load_normalizer(norm_path);
  } else {
    norm = core::Normalizer::fit(ds, train);
    if (!cache_dir.empty()) save_normalizer(norm, norm_path);
  }
  core::Featurizer feats(ds, norm);
  core::TrainConfig tc;
  tc.epochs = 30;
  // A 3-seed ensemble: majority vote is markedly more stable than any
  // single model near the decision boundary.
  const std::uint64_t seeds[] = {1, 7, 13};
  std::vector<std::unique_ptr<core::MvGnnTrainer>> ensemble;
  if (!cache_dir.empty() && file_exists(weights_path)) {
    std::printf("loading cached ensemble from %s...\n", weights_path.c_str());
    std::ifstream is(weights_path, std::ios::binary);
    for (const std::uint64_t seed : seeds) {
      core::TrainConfig tcs = tc;
      tcs.seed = seed;
      auto t = std::make_unique<core::MvGnnTrainer>(
          feats, core::default_config(feats), tcs);
      nn::load_weights(t->model_mutable(), is);
      ensemble.push_back(std::move(t));
    }
  } else {
    for (const std::uint64_t seed : seeds) {
      core::TrainConfig tcs = tc;
      tcs.seed = seed;
      auto t = std::make_unique<core::MvGnnTrainer>(
          feats, core::default_config(feats), tcs);
      std::printf("training MV-GNN (seed %llu) on %zu loops...\n",
                  static_cast<unsigned long long>(seed), train.size());
      t->fit(train, {});
      std::printf("  validation accuracy: %.1f%%\n",
                  100.0 * t->accuracy(val));
      ensemble.push_back(std::move(t));
    }
    if (!cache_dir.empty()) {
      std::ofstream os(weights_path, std::ios::binary);
      for (const auto& t : ensemble) nn::save_weights(t->model(), os);
    }
  }

  // ---- inference on the user program -------------------------------------
  data::ProgramSpec user;
  user.suite = "User";
  user.app = "user";
  user.kernel.name = "user_program";
  user.kernel.source = user_source;
  {
    const ir::Module probe = frontend::compile(user_source, "probe");
    const ir::Function* kernel = probe.find("kernel");
    if (!kernel) {
      std::fprintf(stderr, "no `kernel` function in the input\n");
      return 1;
    }
    std::uint64_t seed = 1;
    for (const auto& p : kernel->params) {
      if (ir::is_array(p.type)) {
        user.kernel.args.push_back(profiler::ArgInit::of_array(4096, seed++));
      } else if (p.type == ir::TypeKind::Int) {
        user.kernel.args.push_back(profiler::ArgInit::of_int(8));
      } else {
        user.kernel.args.push_back(profiler::ArgInit::of_float(1.0));
      }
    }
  }
  // Inference uses the clean profile: the dependence-dropout in `opts`
  // models *training-corpus* input sensitivity, not the user's own run.
  data::DatasetOptions inference_opts = opts;
  inference_opts.dep_noise = 0.0;
  inference_opts.walk.gamma = 96;  // denoise the structural view's sampling
  const auto samples = data::featurize_program(user, ds, inference_opts);

  std::printf("\nloop classification for the input program:\n");
  std::printf("%6s | %-16s | %-14s | %s\n", "line", "MV-GNN", "node/struct",
              "expert oracle");
  for (const auto& s : samples) {
    const auto in = core::build_input(s, ds, norm);
    int fused_votes = 0, node_votes = 0, struct_votes = 0;
    for (const auto& t : ensemble) {
      const auto p = t->predict_input(in);
      fused_votes += p.fused;
      node_votes += p.node_view;
      struct_votes += p.struct_view;
    }
    const int majority = static_cast<int>(ensemble.size()) / 2;
    std::printf("%6d | %-16s | %5s / %-6s | %s\n", s.loop_line,
                fused_votes > majority ? "PARALLELIZABLE" : "sequential",
                node_votes > majority ? "par" : "seq",
                struct_votes > majority ? "par" : "seq",
                s.label ? "parallelizable" : "sequential");
  }
  return 0;
}
