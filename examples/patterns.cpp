// Fig. 1 illustration: stencil vs reduction parallelization patterns and
// why graph *structure* separates them. Builds both kernels, prints their
// loop sub-PEGs, and shows that their anonymous-walk distributions diverge
// even though both loops are parallelizable.
#include <cmath>
#include <cstdio>

#include "frontend/lower.hpp"
#include "graph/anon_walk.hpp"
#include "graph/peg.hpp"
#include "profiler/profile.hpp"

namespace {

using namespace mvgnn;

struct Built {
  std::unique_ptr<ir::Module> module;
  profiler::ProfileResult prof;
  graph::Peg peg;
  graph::SubPeg sub;  // first for-loop
};

Built build(const char* source, std::vector<profiler::ArgInit> args) {
  Built b;
  b.module = std::make_unique<ir::Module>(frontend::compile(source, "p"));
  b.prof = profiler::profile(*b.module, "kernel", args);
  b.peg = graph::build_peg(*b.module, b.prof);
  b.sub = graph::extract_sub_peg(b.peg, b.prof.loops[0].fn,
                                 b.prof.loops[0].loop);
  return b;
}

std::vector<float> aw_signature(const Built& b, graph::AwVocab& vocab) {
  graph::WalkGraph g(b.sub.num_nodes());
  for (const auto& e : b.sub.edges) g.add_edge(e.src, e.dst);
  graph::AwParams params;
  params.gamma = 64;
  params.length = 5;
  par::Rng rng(9);
  return graph::graph_aw_distribution(g, params, vocab, /*grow=*/true, rng);
}

}  // namespace

int main() {
  const char* stencil_src = R"(
const int N = 32;
void kernel(float[] a, float[] b) {
  for (int i = 1; i < N - 1; i += 1) {
    b[i] = 0.3 * a[i - 1] + 0.4 * a[i] + 0.3 * a[i + 1];
  }
}
)";
  const char* reduction_src = R"(
const int N = 32;
float kernel(float[] a) {
  float s = 0.0;
  for (int i = 0; i < N; i += 1) {
    s = s + a[i];
  }
  return s;
}
)";

  Built stencil = build(
      stencil_src,
      {profiler::ArgInit::of_array(32, 1), profiler::ArgInit::of_array(32, 2)});
  Built reduction = build(reduction_src, {profiler::ArgInit::of_array(32, 1)});

  std::printf("Fig. 1 — stencil (left) vs reduction (right) patterns\n\n");
  std::printf("stencil loop sub-PEG:  %zu nodes, %zu edges\n",
              stencil.sub.num_nodes(), stencil.sub.edges.size());
  std::printf("reduction loop sub-PEG: %zu nodes, %zu edges\n\n",
              reduction.sub.num_nodes(), reduction.sub.edges.size());

  // Structural separability: anonymous-walk distributions over a shared
  // vocabulary.
  graph::AwVocab vocab;
  auto ds = aw_signature(stencil, vocab);
  auto dr = aw_signature(reduction, vocab);
  ds.resize(vocab.size(), 0.0f);
  dr.resize(vocab.size(), 0.0f);
  double l1 = 0.0;
  for (std::size_t i = 0; i < vocab.size(); ++i) {
    l1 += std::fabs(ds[i] - dr[i]);
  }
  std::printf("anonymous-walk vocabulary: %u walk types\n", vocab.size());
  std::printf("L1 distance between the two AW signatures: %.3f\n", l1);
  std::printf(
      "\nBoth loops are parallelizable, but the reduction's accumulation\n"
      "cycle and the stencil's fan-in produce different local walk\n"
      "statistics — the structural view's signal (paper section III-C).\n");

  std::printf("\nstencil sub-PEG (DOT):\n%s\n",
              graph::to_dot(stencil.peg, stencil.sub, "stencil").c_str());
  std::printf("reduction sub-PEG (DOT):\n%s\n",
              graph::to_dot(reduction.peg, reduction.sub, "reduction").c_str());
  return 0;
}
