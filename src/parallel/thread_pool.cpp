#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mvgnn::par {

namespace {

/// Shared across all pools (tests construct private ones): the series
/// describe process-wide scheduling behaviour, not one pool instance.
struct PoolMetrics {
  obs::Counter& submitted =
      obs::Registry::global().counter("thread_pool.tasks_submitted_total");
  obs::Counter& executed =
      obs::Registry::global().counter("thread_pool.tasks_executed_total");
  obs::Counter& failed =
      obs::Registry::global().counter("thread_pool.task_failures_total");
  obs::Gauge& queue_depth =
      obs::Registry::global().gauge("thread_pool.queue_depth");
  obs::Histogram& latency_us = obs::Registry::global().histogram(
      "thread_pool.task_latency_us",
      obs::Histogram::exponential_bounds(1.0, 1e6));

  static PoolMetrics& get() {
    static PoolMetrics m;
    return m;
  }
};

/// Per-worker executed-task counters, capped so a pathological pool size
/// cannot flood the registry with series.
obs::Counter& worker_counter(std::size_t worker) {
  constexpr std::size_t kMaxTracked = 64;
  return obs::Registry::global().counter(
      "thread_pool.worker." + std::to_string(std::min(worker, kMaxTracked)) +
      ".tasks_total");
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  PoolMetrics& m = PoolMetrics::get();
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(Task{next_task_++, std::move(task)});
    ++in_flight_;
    m.queue_depth.set(static_cast<double>(queue_.size()));
  }
  m.submitted.add(1);
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    const std::uint64_t task = first_error_task_;
    lock.unlock();
    obs::log_error("thread_pool rethrowing first captured task failure",
                   {{"task_index", std::to_string(task)}});
    std::rethrow_exception(err);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop(std::size_t worker) {
  PoolMetrics& m = PoolMetrics::get();
  obs::Counter& my_tasks = worker_counter(worker);
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stop_ is set and no work remains.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      m.queue_depth.set(static_cast<double>(queue_.size()));
    }
    const auto t0 = std::chrono::steady_clock::now();
    try {
      OBS_SPAN("thread_pool.task");
      task.fn();
    } catch (...) {
      const std::exception_ptr err = std::current_exception();
      std::string what = "unknown exception";
      try {
        std::rethrow_exception(err);
      } catch (const std::exception& e) {
        what = e.what();
      } catch (...) {
      }
      m.failed.add(1);
      obs::log_error("thread_pool task failed",
                     {{"task_index", std::to_string(task.index)},
                      {"worker", std::to_string(worker)},
                      {"what", what}});
      std::lock_guard lock(mutex_);
      if (!first_error_) {
        first_error_ = err;
        first_error_task_ = task.index;
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    m.latency_us.observe(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    m.executed.add(1);
    my_tasks.add(1);
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    cv_done_.notify_all();
  }
}

}  // namespace mvgnn::par
