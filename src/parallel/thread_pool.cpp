#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <utility>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/task_group.hpp"

namespace mvgnn::par {

namespace {

/// Sentinel worker index for threads that execute tasks while blocked in a
/// group wait (help-while-wait) rather than from the worker loop.
constexpr std::size_t kHelper = std::numeric_limits<std::size_t>::max();

/// Shared across all pools (tests construct private ones): the series
/// describe process-wide scheduling behaviour, not one pool instance.
struct PoolMetrics {
  obs::Counter& submitted =
      obs::Registry::global().counter("thread_pool.tasks_submitted_total");
  obs::Counter& executed =
      obs::Registry::global().counter("thread_pool.tasks_executed_total");
  obs::Counter& failed =
      obs::Registry::global().counter("thread_pool.task_failures_total");
  obs::Counter& helped =
      obs::Registry::global().counter("pool.helped_tasks_total");
  obs::Gauge& queue_depth =
      obs::Registry::global().gauge("thread_pool.queue_depth");
  obs::Histogram& latency_us = obs::Registry::global().histogram(
      "thread_pool.task_latency_us",
      obs::Histogram::exponential_bounds(1.0, 1e6));

  static PoolMetrics& get() {
    static PoolMetrics m;
    return m;
  }
};

/// Per-worker executed-task counters, capped so a pathological pool size
/// cannot flood the registry with series.
obs::Counter& worker_counter(std::size_t worker) {
  constexpr std::size_t kMaxTracked = 64;
  return obs::Registry::global().counter(
      "thread_pool.worker." + std::to_string(std::min(worker, kMaxTracked)) +
      ".tasks_total");
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads)
    : default_group_(std::make_shared<detail::TaskGroupState>()) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  submit_to(default_group_, std::move(task));
}

void ThreadPool::wait() { wait_group(*default_group_); }

void ThreadPool::submit_to(GroupPtr group, std::function<void()> task) {
  PoolMetrics& m = PoolMetrics::get();
  // Capture the submitting span (if tracing is on) so the worker-side task
  // span can flow-link back to this call site.
  obs::TraceContext ctx = obs::TraceRecorder::global().current_context();
  {
    std::lock_guard lock(mutex_);
    ++group->in_flight;
    queue_.push_back(Task{next_task_++, std::move(task), std::move(group), ctx});
    m.queue_depth.set(static_cast<double>(queue_.size()));
  }
  m.submitted.add(1);
  cv_task_.notify_one();
  // Waiters help with tasks of their own group; wake them so a nested
  // submission does not sit in the queue while its owner sleeps.
  cv_done_.notify_all();
}

bool ThreadPool::run_one(std::unique_lock<std::mutex>& lock,
                         const detail::TaskGroupState* filter,
                         std::size_t worker) {
  PoolMetrics& m = PoolMetrics::get();
  auto it = queue_.begin();
  if (filter != nullptr) {
    while (it != queue_.end() && it->group.get() != filter) ++it;
  }
  if (it == queue_.end()) return false;
  Task task = std::move(*it);
  queue_.erase(it);
  m.queue_depth.set(static_cast<double>(queue_.size()));
  lock.unlock();

  if (worker == kHelper) m.helped.add(1);
  const auto t0 = std::chrono::steady_clock::now();
  std::exception_ptr err;
  try {
    obs::ScopedSpan span("thread_pool.task", task.trace_ctx);
    task.fn();
  } catch (...) {
    err = std::current_exception();
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (err) {
    std::string what = "unknown exception";
    try {
      std::rethrow_exception(err);
    } catch (const std::exception& e) {
      what = e.what();
    } catch (...) {
    }
    m.failed.add(1);
    obs::log_error("thread_pool task failed",
                   {{"task_index", std::to_string(task.index)},
                    {"worker", worker == kHelper ? std::string("helper")
                                                 : std::to_string(worker)},
                    {"what", what}});
  }
  m.latency_us.observe(
      std::chrono::duration<double, std::micro>(t1 - t0).count());
  m.executed.add(1);
  if (worker != kHelper) worker_counter(worker).add(1);

  lock.lock();
  if (err && !task.group->first_error) {
    task.group->first_error = err;
    task.group->first_error_task = task.index;
  }
  --task.group->in_flight;
  cv_done_.notify_all();
  return true;
}

void ThreadPool::wait_group(detail::TaskGroupState& g) {
  std::unique_lock lock(mutex_);
  while (g.in_flight > 0) {
    // Help first: run queued tasks of this group on the waiting thread.
    if (run_one(lock, &g, kHelper)) continue;
    // Nothing of ours queued — the stragglers are running on workers (or
    // on other helpers). Sleep until the group retires completely or a
    // nested submission gives us something to help with.
    cv_done_.wait(lock, [&] {
      if (g.in_flight == 0) return true;
      for (const Task& t : queue_) {
        if (t.group.get() == &g) return true;
      }
      return false;
    });
  }
  if (g.first_error) {
    std::exception_ptr err = std::exchange(g.first_error, nullptr);
    const std::uint64_t task = g.first_error_task;
    lock.unlock();
    obs::log_error("thread_pool rethrowing first captured task failure",
                   {{"task_index", std::to_string(task)}});
    std::rethrow_exception(err);
  }
}

void ThreadPool::cancel_group(detail::TaskGroupState& g) noexcept {
  std::unique_lock lock(mutex_);
  std::size_t dropped = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->group.get() == &g) {
      it = queue_.erase(it);
      --g.in_flight;
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped != 0) {
    PoolMetrics::get().queue_depth.set(static_cast<double>(queue_.size()));
  }
  cv_done_.wait(lock, [&] { return g.in_flight == 0; });
  if (g.first_error) {
    const std::uint64_t task = g.first_error_task;
    g.first_error = nullptr;
    lock.unlock();
    obs::log_warn("task group destroyed with an unobserved failure",
                  {{"task_index", std::to_string(task)},
                   {"dropped_tasks", std::to_string(dropped)}});
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::unique_lock lock(mutex_);
  for (;;) {
    cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      // stop_ is set and no work remains.
      return;
    }
    run_one(lock, /*filter=*/nullptr, worker);
  }
}

}  // namespace mvgnn::par
