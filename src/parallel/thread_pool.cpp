#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace mvgnn::par {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stop_ is set and no work remains.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    cv_done_.notify_all();
  }
}

}  // namespace mvgnn::par
