// Thread pool used by the tensor GEMM kernels and batched profiling runs.
//
// Design notes (guided by C++ Core Guidelines CP.*):
//  * All synchronization is owned by the pool; callers never see mutexes.
//  * Tasks are type-erased `std::function<void()>`; exceptions thrown by a
//    task are captured and rethrown on `wait()` so failures are not lost.
//  * The pool is a process-wide singleton by default (`ThreadPool::global()`)
//    because oversubscribing CPU threads with nested pools destroys GEMM
//    throughput, but independent pools can be constructed for tests.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mvgnn::par {

/// Fixed-size worker pool with a single shared FIFO queue.
///
/// The queue is deliberately simple: the workloads submitted by this project
/// are coarse (blocked GEMM panels, whole-program profiling runs), so a
/// lock-protected deque is never the bottleneck.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers. `num_threads == 0` selects
  /// `std::thread::hardware_concurrency()` (minimum 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers. Pending tasks are drained before destruction.
  ~ThreadPool();

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw, the
  /// first captured exception is rethrown here (remaining ones are dropped).
  void wait();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Process-wide shared pool sized to the hardware concurrency.
  static ThreadPool& global();

 private:
  struct Task {
    std::uint64_t index = 0;  // submission sequence number (pool-local)
    std::function<void()> fn;
  };

  void worker_loop(std::size_t worker);

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;   // signalled when work arrives / stopping
  std::condition_variable cv_done_;   // signalled when a task retires
  std::size_t in_flight_ = 0;         // queued + running tasks
  std::uint64_t next_task_ = 0;       // submission counter for diagnostics
  std::exception_ptr first_error_;
  std::uint64_t first_error_task_ = 0;
  bool stop_ = false;
};

}  // namespace mvgnn::par
