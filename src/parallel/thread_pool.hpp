// Thread pool used by the tensor GEMM kernels, batched profiling runs and
// the data-parallel trainer.
//
// Design notes (guided by C++ Core Guidelines CP.*):
//  * All synchronization is owned by the pool; callers never see mutexes.
//  * Work is scoped through `TaskGroup`: every task belongs to exactly one
//    group, the group tracks its own in-flight count and captures the first
//    exception thrown by one of its tasks, and `TaskGroup::wait()` rethrows
//    that exception to the one caller that owns the group. Two concurrent
//    callers sharing a pool therefore never stall on each other's work or
//    receive each other's failures.
//  * A blocked `wait()` does not sleep while tasks of its own group sit in
//    the queue: it pops and runs them itself (help-while-wait). That makes
//    nested fan-out (a pool task that itself runs a `parallel_for`) safe —
//    the inner wait executes its own sub-tasks instead of deadlocking the
//    worker it occupies.
//  * The pool is a process-wide singleton by default (`ThreadPool::global()`)
//    because oversubscribing CPU threads with nested pools destroys GEMM
//    throughput, but independent pools can be constructed for tests.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace mvgnn::par {

class TaskGroup;

namespace detail {

/// Per-group bookkeeping; all fields are guarded by the owning pool's mutex.
struct TaskGroupState {
  std::size_t in_flight = 0;  // queued + running tasks of this group
  std::exception_ptr first_error;
  std::uint64_t first_error_task = 0;
};

}  // namespace detail

/// Fixed-size worker pool with a single shared FIFO queue.
///
/// The queue is deliberately simple: the workloads submitted by this project
/// are coarse (blocked GEMM panels, whole-program profiling runs, trainer
/// shards), so a lock-protected deque is never the bottleneck.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers. `num_threads == 0` selects
  /// `std::thread::hardware_concurrency()` (minimum 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers. Pending tasks are drained before destruction.
  ~ThreadPool();

  /// Enqueues a task into the pool's default group. Prefer a `TaskGroup`:
  /// this legacy entry point shares one error slot and one wait scope among
  /// every caller that uses it on the same pool.
  void submit(std::function<void()> task);

  /// Waits for the pool's default group (the tasks enqueued via `submit`).
  /// If any of them threw, the first captured exception is rethrown here
  /// (remaining ones are dropped). Calling this from inside a pool task
  /// that itself belongs to the default group deadlocks — use `TaskGroup`s
  /// for nested fan-out.
  void wait();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Process-wide shared pool sized to the hardware concurrency.
  static ThreadPool& global();

 private:
  friend class TaskGroup;

  using GroupPtr = std::shared_ptr<detail::TaskGroupState>;

  struct Task {
    std::uint64_t index = 0;  // submission sequence number (pool-local)
    std::function<void()> fn;
    GroupPtr group;
    // Trace context captured on the submitting thread: the worker's
    // `thread_pool.task` span adopts it so the exported trace links the
    // fan-out site to the execution (zero when tracing is off — free).
    obs::TraceContext trace_ctx;
  };

  void worker_loop(std::size_t worker);
  void submit_to(GroupPtr group, std::function<void()> task);
  /// Blocks until `g.in_flight == 0`, running queued tasks of `g` while
  /// waiting; rethrows the group's first captured error.
  void wait_group(detail::TaskGroupState& g);
  /// Discards queued tasks of `g` and waits for its running ones; any
  /// captured error is logged and dropped. Used by ~TaskGroup.
  void cancel_group(detail::TaskGroupState& g) noexcept;
  /// Pops one task under `lock` — the queue front, or (when `filter` is
  /// set) the oldest task belonging to `filter` — and executes it with the
  /// lock released. Returns false when no eligible task was queued.
  /// `worker` indexes the per-worker counter; pass SIZE_MAX for helpers.
  bool run_one(std::unique_lock<std::mutex>& lock,
               const detail::TaskGroupState* filter, std::size_t worker);

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;   // signalled when work arrives / stopping
  std::condition_variable cv_done_;   // signalled when a task retires
  std::uint64_t next_task_ = 0;       // submission counter for diagnostics
  GroupPtr default_group_;            // scope of the legacy submit()/wait()
  bool stop_ = false;
};

}  // namespace mvgnn::par
