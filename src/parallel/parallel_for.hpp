// Blocked parallel-for on top of ThreadPool.
//
// The grain size is chosen by the caller (default 1024 index units) because
// only the caller knows the per-iteration cost; the helper merely splits the
// range into contiguous blocks so that cache lines written by one worker are
// never shared with another.
#pragma once

#include <algorithm>
#include <cstddef>

#include "obs/trace.hpp"
#include "parallel/task_group.hpp"
#include "parallel/thread_pool.hpp"

namespace mvgnn::par {

/// Runs `body(begin, end)` over contiguous sub-ranges of [first, last) on the
/// given pool. Falls back to a serial call when the range is small or the
/// pool has a single worker — that keeps unit tests deterministic and avoids
/// pool overhead for tiny tensors.
template <typename Body>
void parallel_for_blocked(std::size_t first, std::size_t last, Body&& body,
                          ThreadPool& pool = ThreadPool::global(),
                          std::size_t grain = 1024) {
  if (last <= first) return;
  // The span covers fan-out + wait; on the serial fallback it is the whole
  // body, which keeps single-worker traces honest about where time went.
  OBS_SPAN("thread_pool.parallel_for");
  const std::size_t n = last - first;
  if (n <= grain || pool.size() <= 1) {
    body(first, last);
    return;
  }
  const std::size_t max_blocks = pool.size() * 4;
  const std::size_t block = std::max(grain, (n + max_blocks - 1) / max_blocks);
  // A fresh group per fan-out: the wait below is scoped to exactly these
  // blocks (not to other callers' tasks on the shared pool), and a nested
  // parallel_for issued from inside `body` opens its own inner group — the
  // inner wait helps run its sub-blocks instead of deadlocking the worker.
  TaskGroup group(pool);
  for (std::size_t b = first; b < last; b += block) {
    const std::size_t e = std::min(last, b + block);
    group.run([&body, b, e] { body(b, e); });
  }
  group.wait();
}

/// Element-wise parallel for: `body(i)` for each i in [first, last).
template <typename Body>
void parallel_for(std::size_t first, std::size_t last, Body&& body,
                  ThreadPool& pool = ThreadPool::global(),
                  std::size_t grain = 1024) {
  parallel_for_blocked(
      first, last,
      [&body](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) body(i);
      },
      pool, grain);
}

}  // namespace mvgnn::par
