// Deterministic, splittable random number generation.
//
// Every stochastic component in this project (walk sampling, negative
// sampling, weight init, data augmentation) draws from an Rng seeded from an
// explicit stream id, so experiments are reproducible run-to-run and
// independent of thread scheduling.
#pragma once

#include <cstdint>
#include <random>
#include <sstream>
#include <string>

namespace mvgnn::par {

/// Thin wrapper over a SplitMix64-seeded xoshiro-style engine (std::mt19937_64
/// underneath, seeded through SplitMix64 so nearby seeds decorrelate).
class Rng {
 public:
  explicit Rng(std::uint64_t seed)
      : engine_(splitmix64(seed)), seed_base_(splitmix64(seed)) {}

  /// Derives an independent child stream; used to give each worker thread or
  /// each dataset shard its own generator.
  [[nodiscard]] Rng split(std::uint64_t stream) const {
    return Rng(splitmix64(seed_base_ + 0x9E3779B97F4A7C15ULL * (stream + 1)));
  }

  /// Uniform integer in [0, n). `n` must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal draw.
  double normal() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

  /// Bernoulli draw with probability p.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  std::mt19937_64& engine() { return engine_; }

  /// Full generator state (engine + split base) as text. An Rng restored
  /// from it continues the exact draw sequence — training checkpoints save
  /// this so a resumed run replays the uninterrupted one bit for bit.
  [[nodiscard]] std::string state() const {
    std::ostringstream os;
    os << engine_ << ' ' << seed_base_;
    return os.str();
  }

  /// Restores a state produced by state(). Returns false on a malformed
  /// string — truncated, non-numeric, or carrying trailing garbage — and
  /// leaves this generator completely untouched then, so a caller can map
  /// the failure into its own error domain (checkpoint load reports it as
  /// corruption with a byte offset) without ending up on garbage state.
  [[nodiscard]] bool restore(const std::string& s) {
    std::istringstream is(s);
    std::mt19937_64 engine;
    std::uint64_t base = 0;
    is >> engine >> base;
    if (!is) return false;
    is >> std::ws;
    if (!is.eof()) return false;  // trailing garbage is corruption, not noise
    engine_ = engine;
    seed_base_ = base;
    return true;
  }

 private:
  static std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  std::mt19937_64 engine_;
  std::uint64_t seed_base_ = 0;
};

}  // namespace mvgnn::par
