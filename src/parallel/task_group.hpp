// Task-group-scoped waiting with help-while-wait (docs/parallelism.md).
//
// A TaskGroup is the unit of fan-out/fan-in on a ThreadPool: tasks run()
// on the group execute on the pool's workers, and wait() blocks the caller
// until exactly this group's tasks have retired — running queued group
// tasks on the calling thread instead of sleeping, and rethrowing the
// first exception the group's tasks produced. Waiting and error delivery
// are scoped per group, so concurrent callers sharing one pool never stall
// on each other's work or receive each other's failures, and a pool task
// can open a nested group without deadlocking the worker it occupies.
#pragma once

#include <functional>
#include <memory>

#include "parallel/thread_pool.hpp"

namespace mvgnn::par {

/// A caller-owned scope of pool tasks: `run()` fans work out, `wait()`
/// blocks until exactly this group's tasks are done — helping execute them
/// instead of sleeping while any are still queued — and rethrows the first
/// exception one of them threw. Groups are cheap; create one per fan-out
/// (that is what `parallel_for` does), and nest freely: a pool task may
/// open its own group and wait on it.
///
/// The one illegal shape is waiting on a group from inside one of that
/// same group's tasks — the task can never retire while it blocks on
/// itself. Nested fan-out always goes through a fresh inner group.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool = ThreadPool::global());

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Waits for stragglers. Tasks still queued are discarded, running ones
  /// are waited out, and a pending error is logged and dropped — call
  /// `wait()` before destruction to observe failures.
  ~TaskGroup();

  /// Enqueues a task scoped to this group.
  void run(std::function<void()> task);

  /// Blocks until every task run() on this group has finished, executing
  /// queued group tasks on the calling thread while it waits. If any task
  /// threw, the first captured exception is rethrown (the group is left
  /// clean and can be reused afterwards).
  void wait();

  [[nodiscard]] ThreadPool& pool() const noexcept { return *pool_; }

 private:
  ThreadPool* pool_;
  std::shared_ptr<detail::TaskGroupState> state_;
};

}  // namespace mvgnn::par
