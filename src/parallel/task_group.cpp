#include "parallel/task_group.hpp"

#include <utility>

namespace mvgnn::par {

TaskGroup::TaskGroup(ThreadPool& pool)
    : pool_(&pool), state_(std::make_shared<detail::TaskGroupState>()) {}

TaskGroup::~TaskGroup() { pool_->cancel_group(*state_); }

void TaskGroup::run(std::function<void()> task) {
  pool_->submit_to(state_, std::move(task));
}

void TaskGroup::wait() { pool_->wait_group(*state_); }

}  // namespace mvgnn::par
