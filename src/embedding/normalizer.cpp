#include "embedding/normalizer.hpp"

#include "frontend/sema.hpp"

namespace mvgnn::embedding {

std::string normalize(const ir::Instruction& in) {
  std::string tok = ir::opcode_name(in.op);
  tok += '|';
  tok += ir::type_name(in.type);
  tok += '|';
  for (std::size_t i = 0; i < in.operands.size(); ++i) {
    if (i) tok += ',';
    switch (in.operands[i].kind) {
      case ir::Value::Kind::Reg: tok += '%'; break;
      case ir::Value::Kind::ImmInt: tok += "ci"; break;
      case ir::Value::Kind::ImmFloat: tok += "cf"; break;
      case ir::Value::Kind::Arg: tok += "arg"; break;
      case ir::Value::Kind::Block: tok += "bb"; break;
      case ir::Value::Kind::None: tok += '?'; break;
    }
  }
  if (in.op == ir::Opcode::Call) {
    tok += '|';
    // Builtins keep their name (sqrt and exp differ semantically); user
    // functions are abstracted to one token, as inst2vec abstracts symbols.
    tok += frontend::find_builtin(in.callee) ? in.callee : "@user";
  }
  return tok;
}

std::uint32_t Vocab::id_of(const std::string& token, bool grow) {
  const auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  if (!grow || frozen_) return 0;
  const std::uint32_t id = static_cast<std::uint32_t>(ids_.size()) + 1;
  ids_.emplace(token, id);
  return id;
}

TokenizedFunction tokenize_function(const ir::Function& fn,
                                    std::uint32_t window) {
  TokenizedFunction out;
  // Token per instruction (markers/terminators included: control tokens
  // carry signal about branching structure).
  out.tokens.reserve(fn.instrs.size());
  for (ir::InstrId id = 0; id < fn.instrs.size(); ++id) {
    out.tokens.push_back(normalize(fn.instr(id)));
  }
  // Flow neighbours within each block.
  for (const ir::BasicBlock& bb : fn.blocks) {
    for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
      for (std::size_t d = 1; d <= window && i + d < bb.instrs.size(); ++d) {
        out.pairs.emplace_back(bb.instrs[i], bb.instrs[i + d]);
        out.pairs.emplace_back(bb.instrs[i + d], bb.instrs[i]);
      }
    }
  }
  // Register def-use neighbours (possibly cross-block).
  for (ir::InstrId id = 0; id < fn.instrs.size(); ++id) {
    for (const ir::Value& v : fn.instr(id).operands) {
      if (v.is_reg()) {
        out.pairs.emplace_back(v.reg, id);
        out.pairs.emplace_back(id, v.reg);
      }
    }
  }
  return out;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> context_pairs(
    const ir::Function& fn, Vocab& vocab, bool grow, std::uint32_t window) {
  const TokenizedFunction tf = tokenize_function(fn, window);
  // Map tokens in instruction order first — this is the vocabulary growth
  // order the pipeline replay must (and does) reproduce.
  std::vector<std::uint32_t> tok(tf.tokens.size());
  for (std::size_t i = 0; i < tf.tokens.size(); ++i) {
    tok[i] = vocab.id_of(tf.tokens[i], grow);
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(tf.pairs.size());
  for (const auto& [a, b] : tf.pairs) pairs.emplace_back(tok[a], tok[b]);
  return pairs;
}

}  // namespace mvgnn::embedding
