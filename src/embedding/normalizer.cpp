#include "embedding/normalizer.hpp"

#include "frontend/sema.hpp"

namespace mvgnn::embedding {

std::string normalize(const ir::Instruction& in) {
  std::string tok = ir::opcode_name(in.op);
  tok += '|';
  tok += ir::type_name(in.type);
  tok += '|';
  for (std::size_t i = 0; i < in.operands.size(); ++i) {
    if (i) tok += ',';
    switch (in.operands[i].kind) {
      case ir::Value::Kind::Reg: tok += '%'; break;
      case ir::Value::Kind::ImmInt: tok += "ci"; break;
      case ir::Value::Kind::ImmFloat: tok += "cf"; break;
      case ir::Value::Kind::Arg: tok += "arg"; break;
      case ir::Value::Kind::Block: tok += "bb"; break;
      case ir::Value::Kind::None: tok += '?'; break;
    }
  }
  if (in.op == ir::Opcode::Call) {
    tok += '|';
    // Builtins keep their name (sqrt and exp differ semantically); user
    // functions are abstracted to one token, as inst2vec abstracts symbols.
    tok += frontend::find_builtin(in.callee) ? in.callee : "@user";
  }
  return tok;
}

std::uint32_t Vocab::id_of(const std::string& token, bool grow) {
  const auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  if (!grow || frozen_) return 0;
  const std::uint32_t id = static_cast<std::uint32_t>(ids_.size()) + 1;
  ids_.emplace(token, id);
  return id;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> context_pairs(
    const ir::Function& fn, Vocab& vocab, bool grow, std::uint32_t window) {
  // Token id per instruction (markers/terminators included: control tokens
  // carry signal about branching structure).
  std::vector<std::uint32_t> tok(fn.instrs.size());
  for (ir::InstrId id = 0; id < fn.instrs.size(); ++id) {
    tok[id] = vocab.id_of(normalize(fn.instr(id)), grow);
  }

  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  // Flow neighbours within each block.
  for (const ir::BasicBlock& bb : fn.blocks) {
    for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
      for (std::size_t d = 1; d <= window && i + d < bb.instrs.size(); ++d) {
        pairs.emplace_back(tok[bb.instrs[i]], tok[bb.instrs[i + d]]);
        pairs.emplace_back(tok[bb.instrs[i + d]], tok[bb.instrs[i]]);
      }
    }
  }
  // Register def-use neighbours (possibly cross-block).
  for (ir::InstrId id = 0; id < fn.instrs.size(); ++id) {
    for (const ir::Value& v : fn.instr(id).operands) {
      if (v.is_reg()) {
        pairs.emplace_back(tok[v.reg], tok[id]);
        pairs.emplace_back(tok[id], tok[v.reg]);
      }
    }
  }
  return pairs;
}

}  // namespace mvgnn::embedding
