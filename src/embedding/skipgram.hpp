// Skip-gram with negative sampling over normalized IR tokens — a from-
// scratch inst2vec. Trained once over the whole corpus; the resulting
// per-token vectors become the static part of every PEG node's features.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "parallel/rng.hpp"

namespace mvgnn::embedding {

struct SkipGramParams {
  std::uint32_t dim = 32;
  std::uint32_t negatives = 5;
  float lr = 0.025f;
  std::uint32_t epochs = 3;
};

/// Trained embedding table: one row per vocabulary slot.
class EmbeddingTable {
 public:
  EmbeddingTable() = default;
  EmbeddingTable(std::uint32_t vocab, std::uint32_t dim)
      : vocab_(vocab), dim_(dim), data_(std::size_t{vocab} * dim, 0.0f) {}

  [[nodiscard]] std::uint32_t vocab_size() const { return vocab_; }
  [[nodiscard]] std::uint32_t dim() const { return dim_; }
  [[nodiscard]] std::span<const float> row(std::uint32_t id) const {
    return {data_.data() + std::size_t{id} * dim_, dim_};
  }
  [[nodiscard]] std::span<float> row(std::uint32_t id) {
    return {data_.data() + std::size_t{id} * dim_, dim_};
  }
  /// Mean of several rows (a node's instruction-set embedding); returns a
  /// zero vector for an empty id list.
  [[nodiscard]] std::vector<float> mean_of(
      std::span<const std::uint32_t> ids) const;
  /// Cosine similarity between two vocabulary rows.
  [[nodiscard]] float cosine(std::uint32_t a, std::uint32_t b) const;

 private:
  std::uint32_t vocab_ = 0;
  std::uint32_t dim_ = 0;
  std::vector<float> data_;
};

/// Trains skip-gram/negative-sampling embeddings from (center, context) id
/// pairs. The unigram^0.75 negative-sampling distribution is estimated from
/// the pair stream itself.
[[nodiscard]] EmbeddingTable train_skipgram(
    std::uint32_t vocab_size,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs,
    const SkipGramParams& params, par::Rng& rng);

}  // namespace mvgnn::embedding
