#include "embedding/skipgram.hpp"

#include <algorithm>
#include <cmath>

namespace mvgnn::embedding {

std::vector<float> EmbeddingTable::mean_of(
    std::span<const std::uint32_t> ids) const {
  std::vector<float> out(dim_, 0.0f);
  if (ids.empty()) return out;
  for (const std::uint32_t id : ids) {
    const auto r = row(std::min(id, vocab_ - 1));
    for (std::uint32_t d = 0; d < dim_; ++d) out[d] += r[d];
  }
  const float inv = 1.0f / static_cast<float>(ids.size());
  for (float& x : out) x *= inv;
  return out;
}

float EmbeddingTable::cosine(std::uint32_t a, std::uint32_t b) const {
  const auto ra = row(a), rb = row(b);
  float dot = 0.0f, na = 0.0f, nb = 0.0f;
  for (std::uint32_t d = 0; d < dim_; ++d) {
    dot += ra[d] * rb[d];
    na += ra[d] * ra[d];
    nb += rb[d] * rb[d];
  }
  const float denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0.0f ? dot / denom : 0.0f;
}

EmbeddingTable train_skipgram(
    std::uint32_t vocab_size,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs,
    const SkipGramParams& params, par::Rng& rng) {
  const std::uint32_t dim = params.dim;
  EmbeddingTable in_table(vocab_size, dim);
  std::vector<float> out_table(std::size_t{vocab_size} * dim, 0.0f);

  // Uniform(-0.5/dim, 0.5/dim) init for input vectors (word2vec convention).
  for (std::uint32_t v = 0; v < vocab_size; ++v) {
    auto r = in_table.row(v);
    for (float& x : r) {
      x = static_cast<float>((rng.uniform() - 0.5) / dim);
    }
  }

  // Negative-sampling table: unigram counts over contexts, raised to 0.75.
  std::vector<double> freq(vocab_size, 1.0);  // +1 smoothing
  for (const auto& [c, ctx] : pairs) {
    (void)c;
    freq[ctx] += 1.0;
  }
  std::vector<std::uint32_t> neg_table;
  neg_table.reserve(1 << 16);
  double total = 0.0;
  for (double& f : freq) {
    f = std::pow(f, 0.75);
    total += f;
  }
  for (std::uint32_t v = 0; v < vocab_size; ++v) {
    const auto slots = static_cast<std::size_t>(freq[v] / total * (1 << 16)) + 1;
    for (std::size_t s = 0; s < slots; ++s) neg_table.push_back(v);
  }

  auto sigmoid = [](float x) {
    return 1.0f / (1.0f + std::exp(-std::clamp(x, -8.0f, 8.0f)));
  };

  std::vector<float> grad_center(dim);
  const std::uint64_t total_updates =
      std::uint64_t{params.epochs} * pairs.size();
  std::uint64_t done = 0;
  for (std::uint32_t epoch = 0; epoch < params.epochs; ++epoch) {
    for (const auto& [center, context] : pairs) {
      // Linear learning-rate decay to 10% of the initial rate.
      const float lr =
          params.lr *
          std::max(0.1f, 1.0f - static_cast<float>(done++) /
                                    static_cast<float>(total_updates));
      auto vc = in_table.row(center);
      std::fill(grad_center.begin(), grad_center.end(), 0.0f);
      for (std::uint32_t k = 0; k <= params.negatives; ++k) {
        const bool positive = (k == 0);
        const std::uint32_t target =
            positive ? context
                     : neg_table[rng.uniform_u64(neg_table.size())];
        if (!positive && target == context) continue;
        float* vo = out_table.data() + std::size_t{target} * dim;
        float dot = 0.0f;
        for (std::uint32_t d = 0; d < dim; ++d) dot += vc[d] * vo[d];
        const float g = (positive ? 1.0f : 0.0f) - sigmoid(dot);
        for (std::uint32_t d = 0; d < dim; ++d) {
          grad_center[d] += g * vo[d];
          vo[d] += lr * g * vc[d];
        }
      }
      for (std::uint32_t d = 0; d < dim; ++d) vc[d] += lr * grad_center[d];
    }
  }
  return in_table;
}

}  // namespace mvgnn::embedding
