// IR statement normalization — the inst2vec preprocessing step.
//
// Ben-Nun et al. build their vocabulary over LLVM-IR statements with
// identifiers abstracted away; we do the same over MiniC IR: a token is
// "opcode|result-type|operand-kind-list[|callee]", e.g. "fadd|f64|%,%" or
// "loadidx|f64|arg,%". Register names, constants' values and variable names
// are abstracted so semantically identical statements share one token.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ir/function.hpp"

namespace mvgnn::embedding {

/// Normalized token of one instruction.
[[nodiscard]] std::string normalize(const ir::Instruction& in);

/// Token vocabulary. Slot 0 is the unknown token.
class Vocab {
 public:
  /// Id of `token`, inserting when `grow` and not frozen; 0 otherwise.
  std::uint32_t id_of(const std::string& token, bool grow);

  void freeze() { frozen_ = true; }
  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(ids_.size()) + 1;
  }
  [[nodiscard]] const std::unordered_map<std::string, std::uint32_t>& map()
      const {
    return ids_;
  }
  /// Serialization access.
  [[nodiscard]] bool frozen() const { return frozen_; }
  void restore(std::unordered_map<std::string, std::uint32_t> ids,
               bool frozen) {
    ids_ = std::move(ids);
    frozen_ = frozen;
  }

 private:
  std::unordered_map<std::string, std::uint32_t> ids_;
  bool frozen_ = false;
};

/// Per-instruction normalized tokens of one function plus the skip-gram
/// context pairs as *indices into that token list*. This is the
/// vocabulary-free form the staged pipeline (src/pipe) caches: vocabulary
/// ids are assigned later, at replay, by mapping `tokens` in order —
/// exactly the growth order context_pairs() uses.
struct TokenizedFunction {
  std::vector<std::string> tokens;  // one per instruction, arena order
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;  // token indices
};

/// Tokenizes `fn`: flow neighbours within `window` in the same basic block
/// plus register def-use neighbours — inst2vec's "contextual flow graph"
/// adapted to our IR.
[[nodiscard]] TokenizedFunction tokenize_function(const ir::Function& fn,
                                                  std::uint32_t window = 2);

/// Skip-gram (token, context) pairs of one function with ids resolved
/// against `vocab` (growing it when `grow`). Equivalent to mapping
/// tokenize_function(fn).tokens in order, then its pairs.
[[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>>
context_pairs(const ir::Function& fn, Vocab& vocab, bool grow,
              std::uint32_t window = 2);

}  // namespace mvgnn::embedding
