// Crash-safe file writes: temp file + fsync + rename + directory fsync.
//
// Every durable artifact the pipeline produces (checkpoints, metrics
// snapshots, traces, saved datasets) goes through atomic_write_file so an
// interrupted process can never leave a half-written file under the final
// name: the content lands in `<path>.tmp` first, is flushed and fsync'd,
// and only then renamed over `path` (rename is atomic on POSIX); finally
// the parent directory is fsync'd so the rename survives a power loss —
// without it the directory entry could still be lost even though the file
// content had reached stable storage. On any failure — including an
// injected one at the "io.write" fault site — the temp file is removed and
// `path` is untouched.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace mvgnn::io {

/// Writes `path` atomically: `writer` streams the content into a temp file
/// in the same directory, which is fsync'd and renamed over `path` on
/// success. Throws std::runtime_error (with the path in the message) on any
/// I/O failure and fault::InjectedFault at the "io.write" site; in both
/// cases the temp file is cleaned up and the destination left untouched.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

}  // namespace mvgnn::io
