#include "io/checked_stream.hpp"

#include <array>
#include <limits>

#include "fault/fault.hpp"

namespace mvgnn::io {

namespace {

/// Reflected CRC32 table for polynomial 0xEDB88320, built once.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t n) noexcept {
  const auto& table = crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

// ---- Crc32OutStream -------------------------------------------------------

Crc32OutStream::Crc32OutStream(std::ostream& sink)
    : std::ostream(nullptr), buf_(sink) {
  rdbuf(&buf_);
}

Crc32OutStream::Buf::int_type Crc32OutStream::Buf::overflow(int_type ch) {
  if (traits_type::eq_int_type(ch, traits_type::eof())) return ch;
  const char c = traits_type::to_char_type(ch);
  return xsputn(&c, 1) == 1 ? ch : traits_type::eof();
}

std::streamsize Crc32OutStream::Buf::xsputn(const char* s, std::streamsize n) {
  sink_->write(s, n);
  if (!*sink_) return 0;
  crc_ = crc32_update(crc_, s, static_cast<std::size_t>(n));
  bytes_ += static_cast<std::uint64_t>(n);
  return n;
}

// ---- Crc32InStream --------------------------------------------------------

Crc32InStream::Crc32InStream(std::istream& source)
    : std::istream(nullptr), buf_(source) {
  rdbuf(&buf_);
}

Crc32InStream::Buf::Buf(std::istream& source)
    : source_(&source),
      limit_(fault::armed_nth("io.read.truncate")
                 .value_or(std::numeric_limits<std::uint64_t>::max())) {
  const auto pos = source.tellg();
  if (pos >= 0) {
    start_ = static_cast<std::uint64_t>(pos);
    offset_ = start_;
  }
}

std::streamsize Crc32InStream::Buf::xsgetn(char* s, std::streamsize n) {
  std::streamsize got = 0;
  if (has_pending_ && n > 0) {
    s[got++] = pending_;
    has_pending_ = false;
  }
  if (got < n) {
    const std::uint64_t consumed = offset_ - start_;
    const std::uint64_t budget = limit_ > consumed ? limit_ - consumed : 0;
    const std::streamsize want =
        static_cast<std::streamsize>(std::min<std::uint64_t>(
            static_cast<std::uint64_t>(n - got), budget));
    if (want > 0) {
      source_->read(s + got, want);
      const std::streamsize r = source_->gcount();
      crc_ = crc32_update(crc_, s + got, static_cast<std::size_t>(r));
      offset_ += static_cast<std::uint64_t>(r);
      got += r;
    }
  }
  return got;
}

Crc32InStream::Buf::int_type Crc32InStream::Buf::uflow() {
  char c = 0;
  if (has_pending_) {
    has_pending_ = false;
    return traits_type::to_int_type(pending_);
  }
  return xsgetn(&c, 1) == 1 ? traits_type::to_int_type(c)
                            : traits_type::eof();
}

Crc32InStream::Buf::int_type Crc32InStream::Buf::underflow() {
  if (!has_pending_) {
    char c = 0;
    if (xsgetn(&c, 1) != 1) return traits_type::eof();
    pending_ = c;
    has_pending_ = true;
  }
  return traits_type::to_int_type(pending_);
}

Crc32InStream::Buf::pos_type Crc32InStream::Buf::seekoff(
    off_type off, std::ios_base::seekdir dir, std::ios_base::openmode which) {
  // Only "where am I" queries are supported: tellg() == consumed offset.
  if (off == 0 && dir == std::ios_base::cur &&
      (which & std::ios_base::in) != 0) {
    const std::uint64_t pos = offset_ - (has_pending_ ? 1 : 0);
    return pos_type(static_cast<off_type>(pos));
  }
  return pos_type(off_type(-1));
}

}  // namespace mvgnn::io
