#include "io/atomic_file.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "fault/fault.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace mvgnn::io {

namespace {

/// Flushes OS buffers for `path` to stable storage. Best-effort on
/// platforms without fsync; the rename below is what guarantees atomicity,
/// fsync only narrows the window where a power loss drops the content.
void fsync_path(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

/// Flushes the directory entry for `path` after a rename into it. fsync on
/// the temp file alone makes the *content* durable; the rename itself lives
/// in the parent directory's metadata, and a power loss between rename and
/// the directory flush can resurrect the old file (or nothing) under the
/// final name. Best-effort like fsync_path: directories that refuse to open
/// (exotic filesystems) degrade to the old behavior, never to an error.
void fsync_parent_dir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  const std::string tmp = path + ".tmp";
  try {
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os) {
        throw std::runtime_error("cannot open " + tmp + " for writing");
      }
      writer(os);
      os.flush();
      if (!os) throw std::runtime_error("write failed for " + tmp);
    }
    // The injected crash point: content is fully in the temp file but the
    // rename has not happened — exactly the window a real crash would hit.
    fault::check("io.write");
    fsync_path(tmp);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw std::runtime_error("cannot rename " + tmp + " to " + path);
    }
    // Make the rename itself durable: without this a crash right after a
    // checkpoint commit could lose the directory entry even though the
    // bytes were fsynced.
    fsync_parent_dir(path);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
}

}  // namespace mvgnn::io
