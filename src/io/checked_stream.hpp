// CRC32-checked stream wrappers for durable on-disk formats.
//
// The dataset and checkpoint files are "header + self-describing payload +
// footer(length, crc32)". These wrappers let the writers and readers stream
// the payload once while the checksum and byte offset accumulate on the
// side:
//
//   * Crc32OutStream wraps a sink std::ostream; everything written through
//     it is forwarded verbatim while crc()/bytes() accumulate.
//   * Crc32InStream wraps a source std::istream; tellg() on it reports the
//     payload offset (so every parse error can say *where* the file went
//     bad), and the "io.read.truncate" fault site can make it run dry after
//     N bytes to drive truncation tests.
//
// CRC32 is the standard reflected polynomial 0xEDB88320 (zlib-compatible).
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <streambuf>

namespace mvgnn::io {

/// Incremental CRC32 update over `n` bytes. Seed with 0; feed the previous
/// return value to continue.
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                                         std::size_t n) noexcept;

/// One-shot CRC32 of a buffer.
[[nodiscard]] inline std::uint32_t crc32(const void* data,
                                         std::size_t n) noexcept {
  return crc32_update(0, data, n);
}

/// std::ostream that forwards to `sink` while accumulating CRC32 and byte
/// count. Not seekable. The sink must outlive the wrapper.
class Crc32OutStream : public std::ostream {
 public:
  explicit Crc32OutStream(std::ostream& sink);

  [[nodiscard]] std::uint32_t crc() const noexcept { return buf_.crc_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return buf_.bytes_; }

 private:
  struct Buf : std::streambuf {
    explicit Buf(std::ostream& sink) : sink_(&sink) {}
    int_type overflow(int_type ch) override;
    std::streamsize xsputn(const char* s, std::streamsize n) override;
    std::ostream* sink_;
    std::uint32_t crc_ = 0;
    std::uint64_t bytes_ = 0;
  };
  Buf buf_;
};

/// std::istream that forwards from `source` while accumulating CRC32 and
/// the byte offset. The offset starts at the source's current position when
/// that is known (so tellg() on the wrapper reports *file-absolute* offsets
/// for error messages); bytes() counts only what was consumed through the
/// wrapper (what a CRC footer covers). When the "io.read.truncate" fault
/// site is armed with N, the stream delivers at most N bytes and then
/// reports EOF — simulating a truncated file without touching the disk.
class Crc32InStream : public std::istream {
 public:
  explicit Crc32InStream(std::istream& source);

  [[nodiscard]] std::uint32_t crc() const noexcept { return buf_.crc_; }
  /// File-absolute offset of the next unread byte.
  [[nodiscard]] std::uint64_t offset() const noexcept { return buf_.offset_; }
  /// Bytes consumed through this wrapper.
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    return buf_.offset_ - buf_.start_;
  }

 private:
  struct Buf : std::streambuf {
    explicit Buf(std::istream& source);
    int_type underflow() override;
    int_type uflow() override;
    std::streamsize xsgetn(char* s, std::streamsize n) override;
    pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                     std::ios_base::openmode which) override;
    std::istream* source_;
    std::uint32_t crc_ = 0;
    std::uint64_t offset_ = 0;
    std::uint64_t start_ = 0;
    std::uint64_t limit_;  // truncate-fault consumed-bytes budget
    char pending_ = 0;     // one-byte buffer for underflow()
    bool has_pending_ = false;
  };
  Buf buf_;
};

}  // namespace mvgnn::io
