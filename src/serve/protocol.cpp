#include "serve/protocol.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/json.hpp"

namespace mvgnn::serve {

namespace {

/// Recovers the byte offset from an obs::json parse error ("json: ... at
/// byte offset N"). The reader always appends the offset, but be defensive
/// about message drift: nullopt when the suffix is missing.
std::optional<std::uint64_t> offset_of(const std::string& what) {
  const std::string needle = "byte offset ";
  const std::size_t pos = what.rfind(needle);
  if (pos == std::string::npos) return std::nullopt;
  const char* digits = what.c_str() + pos + needle.size();
  char* end = nullptr;
  const unsigned long long v = std::strtoull(digits, &end, 10);
  if (end == digits) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

/// The request id may arrive as a string or a number; normalize to string.
std::string id_of(const obs::json::Value& obj) {
  const obs::json::Value* id = obj.find("id");
  if (id == nullptr) return "";
  if (id->is_string()) return id->as_string();
  if (id->is_number()) {
    char buf[40];
    const double v = id->as_number();
    if (v == static_cast<double>(static_cast<long long>(v))) {
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    } else {
      std::snprintf(buf, sizeof buf, "%.10g", v);
    }
    return buf;
  }
  return "";
}

}  // namespace

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::Malformed: return "malformed";
    case ErrorCode::Oversized: return "oversized";
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::Shed: return "shed";
    case ErrorCode::DeadlineExpired: return "deadline";
    case ErrorCode::Compile: return "compile";
    case ErrorCode::Profile: return "profile";
    case ErrorCode::Featurize: return "featurize";
    case ErrorCode::BatchFailed: return "batch_failed";
    case ErrorCode::ReloadFailed: return "reload_failed";
    case ErrorCode::ShuttingDown: return "shutting_down";
  }
  return "internal";
}

ParsedLine parse_line(const std::string& line) {
  ParsedLine out;
  obs::json::Value doc;
  try {
    doc = obs::json::parse(line);
  } catch (const std::exception& e) {
    out.code = ErrorCode::Malformed;
    out.error = e.what();
    out.offset = offset_of(out.error);
    return out;
  }
  if (!doc.is_object()) {
    out.code = ErrorCode::BadRequest;
    out.error = "request must be a JSON object";
    return out;
  }
  out.id = id_of(doc);

  if (const obs::json::Value* cmd = doc.find("cmd")) {
    if (!cmd->is_string()) {
      out.code = ErrorCode::BadRequest;
      out.error = "`cmd` must be a string";
      return out;
    }
    ControlCommand ctl;
    ctl.cmd = cmd->as_string();
    ctl.checkpoint = doc.str_or("checkpoint", "");
    out.control = std::move(ctl);
    return out;
  }

  const obs::json::Value* source = doc.find("source");
  if (source == nullptr || !source->is_string()) {
    out.code = ErrorCode::BadRequest;
    out.error = "missing required string field `source`";
    return out;
  }
  Request req;
  req.id = out.id;
  req.source = source->as_string();
  if (const obs::json::Value* dl = doc.find("deadline_ms")) {
    if (!dl->is_number() || dl->as_number() < 0) {
      out.code = ErrorCode::BadRequest;
      out.error = "`deadline_ms` must be a non-negative number";
      return out;
    }
    req.deadline_ms = static_cast<std::uint64_t>(dl->as_number());
  }
  out.request = std::move(req);
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_ok(const std::string& id,
                      const std::vector<LoopVerdict>& loops,
                      std::uint64_t model_version, std::uint64_t batch_id,
                      std::size_t batch_size, std::uint64_t latency_us) {
  std::string out;
  out.reserve(128 + loops.size() * 96);
  out += "{\"id\": \"";
  out += json_escape(id);
  out += "\", \"ok\": true, \"model_version\": ";
  out += std::to_string(model_version);
  out += ", \"batch_id\": ";
  out += std::to_string(batch_id);
  out += ", \"batch_size\": ";
  out += std::to_string(batch_size);
  out += ", \"latency_us\": ";
  out += std::to_string(latency_us);
  out += ", \"loops\": [";
  for (std::size_t i = 0; i < loops.size(); ++i) {
    const LoopVerdict& v = loops[i];
    if (i != 0) out += ", ";
    out += "{\"line\": ";
    out += std::to_string(v.line);
    out += ", \"verdict\": \"";
    out += v.fused ? "parallelizable" : "sequential";
    out += "\", \"node_view\": \"";
    out += v.node_view ? "par" : "seq";
    out += "\", \"struct_view\": \"";
    out += v.struct_view ? "par" : "seq";
    out += "\"}";
  }
  out += "]}";
  return out;
}

std::string render_error(const std::string& id, ErrorCode code,
                         const std::string& message,
                         std::optional<std::uint64_t> offset) {
  std::string out;
  out.reserve(96 + message.size());
  out += "{\"id\": \"";
  out += json_escape(id);
  out += "\", \"ok\": false, \"error\": {\"code\": \"";
  out += to_string(code);
  out += "\", \"message\": \"";
  out += json_escape(message);
  out += '"';
  if (offset) {
    out += ", \"offset\": ";
    out += std::to_string(*offset);
  }
  out += "}}";
  return out;
}

}  // namespace mvgnn::serve
