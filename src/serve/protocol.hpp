// Wire protocol for the `mvgnn serve` daemon: line-delimited JSON over a
// TCP stream (docs/serving.md). One request per line, one response line per
// request, in order. No external dependencies — requests are parsed with
// the same obs::json reader the observability tooling uses, responses are
// rendered by hand.
//
// Inference request:
//   {"id": "r1", "source": "float kernel(...) {...}", "deadline_ms": 500}
//     id           optional; echoed verbatim in the response (numbers are
//                  echoed as their decimal rendering)
//     source       required; a MiniC program whose entry is `kernel`
//     deadline_ms  optional; relative to arrival. Omitted = the server
//                  default; 0 = no deadline.
//
// Control commands (bypass admission control):
//   {"cmd": "ping"}
//   {"cmd": "stats"}
//   {"cmd": "reload", "checkpoint": "path.mvck"}   // path optional: omitted
//                                                  // re-reads the startup
//                                                  // checkpoint path
//
// Success response:
//   {"id":"r1","ok":true,"model_version":2,"batch_id":17,"batch_size":9,
//    "latency_us":1834,
//    "loops":[{"line":4,"verdict":"parallelizable","node_view":"par",
//              "struct_view":"seq"}]}
//
// Error response (always a response — the daemon never answers a framed
// request by dropping the connection):
//   {"id":"r1","ok":false,
//    "error":{"code":"malformed","message":"...","offset":17}}
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mvgnn::serve {

/// Typed request-level failure classes. Every failed request is answered
/// with exactly one of these so clients can distinguish "back off" (Shed)
/// from "your program is broken" (Compile/Profile/Featurize) from "the
/// server is going away" (ShuttingDown).
enum class ErrorCode : std::uint8_t {
  Malformed,        ///< request line is not valid JSON (offset = parse stop)
  Oversized,        ///< request line exceeds the configured byte cap
  BadRequest,       ///< valid JSON but not a valid request (e.g. no source)
  Shed,             ///< admission control rejected: queue/byte budget full
  DeadlineExpired,  ///< the request's deadline passed before its batch ran
  Compile,          ///< MiniC frontend rejected the program
  Profile,          ///< interpreter trap (incl. fuel/memory cap exhaustion)
  Featurize,        ///< PEG/walk/featurization failure
  BatchFailed,      ///< the whole batch's forward failed (fault injection /
                    ///< internal error); the daemon keeps serving
  ReloadFailed,     ///< hot reload rejected; the old model keeps serving
  ShuttingDown,     ///< request arrived during drain
};

/// Stable wire name for an error code ("shed", "deadline", ...).
[[nodiscard]] const char* to_string(ErrorCode code);

struct Request {
  std::string id;
  std::string source;
  /// 0 = no deadline. kUseDefault = field absent, apply the server default.
  static constexpr std::uint64_t kUseDefault = ~0ull;
  std::uint64_t deadline_ms = kUseDefault;
};

struct ControlCommand {
  std::string cmd;         // "ping" | "stats" | "reload"
  std::string checkpoint;  // reload only; may be empty
};

/// Outcome of parsing one request line. Exactly one of `request`/`control`
/// is set on success; otherwise `code`/`error` (and `offset` when the
/// failure has a byte position) describe the rejection. `id` is recovered
/// when the line was at least valid JSON, so even rejections echo it.
struct ParsedLine {
  std::optional<Request> request;
  std::optional<ControlCommand> control;
  ErrorCode code = ErrorCode::Malformed;
  std::string error;
  std::optional<std::uint64_t> offset;
  std::string id;
};

[[nodiscard]] ParsedLine parse_line(const std::string& line);

/// Per-loop verdict, one row of the batched forward.
struct LoopVerdict {
  int line = 0;         ///< source line of the `for` statement
  int fused = 0;        ///< 1 = parallelizable (the MV-GNN prediction)
  int node_view = 0;    ///< node-feature view head
  int struct_view = 0;  ///< structural view head
};

/// Renders one success response line (no trailing newline).
[[nodiscard]] std::string render_ok(const std::string& id,
                                    const std::vector<LoopVerdict>& loops,
                                    std::uint64_t model_version,
                                    std::uint64_t batch_id,
                                    std::size_t batch_size,
                                    std::uint64_t latency_us);

/// Renders one error response line (no trailing newline).
[[nodiscard]] std::string render_error(
    const std::string& id, ErrorCode code, const std::string& message,
    std::optional<std::uint64_t> offset = std::nullopt);

/// JSON string-escapes `s` (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace mvgnn::serve
