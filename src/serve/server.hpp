// `mvgnn serve` — a fault-tolerant batched inference daemon (docs/serving.md).
//
// Accepts line-delimited JSON requests over TCP (serve/protocol.hpp), each
// carrying one MiniC program, and answers with per-loop parallelizability
// verdicts from a trained MV-GNN checkpoint. The interesting parts:
//
//  * Deadline-aware dynamic batching: connection threads compile, profile
//    and featurize requests concurrently, then hand the featurized samples
//    to a single batcher thread that drains a bounded queue into one
//    block-diagonal core::GraphBatch per flush (linger-or-full policy) and
//    runs one forward_batch. A request whose deadline expires while queued
//    is answered with a typed `deadline` error instead of stale results,
//    and admission rejects early when the smoothed batch latency says the
//    deadline cannot be met. A bounded hot-program LRU keeps featurized
//    inputs for recently seen sources, so a repeated program skips the
//    compile/profile/featurize pipeline and goes straight to the queue.
//  * Admission control: a bounded queue depth plus an in-flight source-byte
//    budget. Requests beyond either budget are shed with a typed `shed`
//    error before any featurization work is spent; per-request size and
//    interpreter fuel caps bound what one request can cost. Compile,
//    profile and featurize failures are quarantined per request — they
//    answer a typed error and never take the daemon down.
//  * Hot checkpoint reload: a `{"cmd":"reload"}` control line (or SIGHUP
//    via the CLI) loads and CRC-validates the new .mvck off to the side,
//    then atomically swaps the model pointer. In-flight batches finish on
//    the model they started with — one batch never mixes models, which is
//    why every response carries `model_version` and `batch_id`. A corrupt
//    or shape-mismatched checkpoint is rejected with `reload_failed` and
//    the old model keeps serving.
//  * Graceful drain: stop() closes the listener, lets every in-flight
//    request finish and flush its response, then retires the batcher.
//    Requests that arrive during the drain get `shutting_down`.
//
// Fault sites (docs/robustness.md): serve.accept, serve.read, serve.batch,
// serve.reload.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/mvgnn.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "obs/stop_token.hpp"
#include "parallel/rng.hpp"
#include "profiler/interp.hpp"
#include "serve/protocol.hpp"

namespace mvgnn::cache {
class Cache;
}

namespace mvgnn::serve {

/// Everything checkpoint weights alone cannot provide: the frozen
/// vocabularies, inst2vec table and normalizer the model was trained
/// against. Rebuilt deterministically from the same corpus recipe
/// `mvgnn train` uses, so a checkpoint produced by `mvgnn train --corpus N`
/// serves correctly under `mvgnn serve --corpus N` (a mismatched corpus
/// changes feature widths and the checkpoint loader rejects the shapes).
struct ServingContext {
  data::Dataset ds;
  core::Normalizer norm;
  core::MvGnnConfig model_cfg;
  /// featurize_program options for incoming requests: the training recipe
  /// minus dependence noise (a live request's own profile is not noisy).
  data::DatasetOptions feat_opts;
};

/// Rebuilds the `mvgnn train` featurization context for `corpus_loops`
/// (corpus seed 2024, dataset seed 5, split 0.85/seed 5 — the exact
/// cmd_train recipe). `cache` feeds the stage cache so a warm --cache-dir
/// makes startup cheap.
[[nodiscard]] ServingContext build_serving_context(int corpus_loops,
                                                   cache::Cache* cache);

/// One loaded, validated model generation. Immutable after load; the server
/// hot-swaps a shared_ptr to the current generation and batches pin the
/// generation they started with.
struct Model {
  std::unique_ptr<core::MvGnn> net;
  std::uint64_t version = 0;  ///< monotonically increasing reload counter
  std::string path;
  core::CheckpointMeta meta;
};

/// Loads and CRC-validates `path` against the context's model shape.
/// Honors the "serve.reload" fault site. Throws std::runtime_error (with
/// the failing byte offset) on corruption or shape mismatch — the caller
/// decides whether that is fatal (startup) or answered as `reload_failed`
/// (hot reload).
[[nodiscard]] std::shared_ptr<const Model> load_model(
    const ServingContext& ctx, const std::string& path,
    std::uint64_t version);

/// Smoothed flush-latency estimate (EWMA, alpha = 1/4) feeding early
/// deadline rejection. Armed by an explicit flag, not by a zero sentinel:
/// a genuinely sub-ns-rounded flush measures 0 and must keep early
/// rejection enabled — the first measured flush arms it permanently.
/// Writer is the batcher thread; readers are connection threads (relaxed
/// atomics, the estimate is advisory).
class LatencyEwma {
 public:
  void record(std::uint64_t sample_ns) {
    const std::uint64_t prev = value_.load(std::memory_order_relaxed);
    const bool was_armed = armed_.load(std::memory_order_relaxed);
    value_.store(was_armed ? (3 * prev + sample_ns) / 4 : sample_ns,
                 std::memory_order_relaxed);
    if (!was_armed) armed_.store(true, std::memory_order_relaxed);
  }
  /// True once any flush has been measured — even one that rounded to 0.
  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value_ns() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_ = {0};
  std::atomic<bool> armed_ = {false};
};

struct ServerConfig {
  /// 0 = pick an ephemeral port; Server::port() reports the bound one.
  int port = 0;
  /// Startup checkpoint; also the default target of a bare
  /// `{"cmd":"reload"}` / SIGHUP reload.
  std::string checkpoint;
  std::size_t max_connections = 64;
  /// Admission: queued-request cap (requests admitted but not yet answered
  /// by the batcher).
  std::size_t max_queue_depth = 128;
  /// Admission: total source bytes admitted but not yet answered.
  std::size_t max_inflight_bytes = 8u << 20;
  /// Per-request line cap; longer lines are answered `oversized` and the
  /// remainder of the line is discarded so the stream stays framed.
  std::size_t max_request_bytes = 1u << 20;
  /// Batch flush policy: flush when this many loop samples are pending...
  std::size_t batch_max_samples = 32;
  /// ...or when the oldest admitted request has waited this long.
  std::uint64_t batch_linger_ms = 5;
  /// Applied when a request omits `deadline_ms`. 0 = no deadline.
  std::uint64_t default_deadline_ms = 10'000;
  /// Per-request interpreter fuel/memory/depth caps (PR 4 limits): a
  /// pathological program traps and is answered `profile`, never hangs the
  /// daemon. Default is a tenth of the dataset-build budget.
  profiler::InterpOptions interp{.max_steps = 20'000'000,
                                 .max_call_depth = 256,
                                 .max_mem_cells = 1ull << 22};
  /// Hot-program cache: featurized inputs for the most recent distinct
  /// program sources are kept in memory, so a repeated program skips the
  /// compile/profile/featurize pipeline entirely. 0 disables.
  std::size_t program_cache_entries = 64;
};

class Server {
 public:
  /// Binds the listen socket and loads the startup checkpoint. Throws on
  /// bind failure or an unloadable checkpoint — startup is the one moment a
  /// bad checkpoint is fatal.
  Server(ServingContext ctx, ServerConfig cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the accept and batcher threads. Call once.
  void start();

  /// Graceful drain: stop accepting, let in-flight requests finish and
  /// flush their responses, retire the batcher. Idempotent.
  void stop();

  /// The bound TCP port (resolves port 0 to the kernel's pick).
  [[nodiscard]] int port() const { return port_; }

  /// Loads `path` (empty = the startup checkpoint path) and swaps it in.
  /// Returns the new version on success; throws on a rejected checkpoint —
  /// the current model keeps serving either way.
  std::uint64_t reload(const std::string& path);

  /// Current model generation (for tests and the stats command).
  [[nodiscard]] std::uint64_t model_version() const;

 private:
  /// The featurized form of one program source: immutable once built, shared
  /// between the hot-program cache and any request in flight that uses it.
  struct Prepared {
    std::vector<core::SampleInput> inputs;  // one per for-loop
    std::vector<int> loop_lines;
  };

  /// One admitted request waiting for (or being processed by) the batcher.
  struct Pending {
    std::shared_ptr<const Prepared> prog;
    std::string id;
    std::size_t bytes = 0;  // admission accounting (source size)
    std::uint64_t enqueue_ns = 0;
    std::uint64_t deadline_ns = 0;  // 0 = none; absolute steady-clock ns
    std::promise<std::string> response;
  };

  void accept_loop();
  void connection_loop(int fd);
  void batcher_loop();

  /// Processes one framed request line; returns the response line.
  std::string handle_line(const std::string& line);
  std::string handle_request(const Request& req);
  std::string handle_control(const ControlCommand& ctl);

  /// Reserves queue and byte budget; false = shed.
  bool try_admit(std::size_t bytes);
  void release(std::size_t bytes);

  /// Hot-program cache (LRU by program source). Only successful
  /// featurizations are cached — errors always re-run the pipeline.
  [[nodiscard]] std::shared_ptr<const Prepared> program_cache_get(
      const std::string& source);
  void program_cache_put(const std::string& source,
                         std::shared_ptr<const Prepared> prog);

  /// Flushes one batch: everything queued, up to batch_max_samples loop
  /// samples (at least one request). Expired requests are answered
  /// `deadline` instead of being forwarded.
  void run_batch(std::vector<std::unique_ptr<Pending>> batch);

  ServingContext ctx_;
  ServerConfig cfg_;
  int listen_fd_ = -1;
  int port_ = 0;

  // Current model generation; swapped under model_mu_, read by taking a
  // shared_ptr copy so a batch in flight keeps its generation alive.
  // reload_mu_ serializes whole reloads (load + validate can be slow and
  // must not hold model_mu_); next_version_ is guarded by it.
  mutable std::mutex model_mu_;
  std::mutex reload_mu_;
  std::shared_ptr<const Model> model_;
  std::uint64_t next_version_ = 1;

  // Batch queue (admitted requests) + admission accounting.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<Pending>> queue_;
  std::size_t queued_samples_ = 0;
  bool queue_closed_ = false;
  std::atomic<std::size_t> inflight_ = {0};        // admitted, unanswered
  std::atomic<std::size_t> inflight_bytes_ = {0};

  // Hot-program cache: source → featurized inputs, LRU-evicted at
  // cfg_.program_cache_entries.
  std::mutex prog_mu_;
  std::list<std::pair<std::string, std::shared_ptr<const Prepared>>>
      prog_lru_;
  std::unordered_map<
      std::string,
      std::list<std::pair<std::string,
                          std::shared_ptr<const Prepared>>>::iterator>
      prog_map_;
  /// Smoothed per-flush batch latency for early deadline rejection.
  LatencyEwma ewma_batch_;

  obs::StopToken stop_;  // shared stop signal: accept + connection loops
  std::thread accept_thread_;
  std::thread batcher_thread_;
  struct Conn {
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<std::size_t> open_conns_ = {0};
  std::atomic<std::uint64_t> next_batch_id_ = {1};
  par::Rng rng_;  // batcher-only (training=false forwards)
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace mvgnn::serve
