#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "data/corpus.hpp"
#include "fault/fault.hpp"
#include "frontend/lexer.hpp"
#include "frontend/lower.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipe/stage.hpp"

namespace mvgnn::serve {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// All serve instruments, fetched once (registration is mutex-protected;
/// the hot path must not re-look-up by name per request).
struct Metrics {
  obs::Counter& requests = reg().counter("serve.requests_total");
  obs::Counter& ok = reg().counter("serve.ok_total");
  obs::Counter& errors = reg().counter("serve.errors_total");
  obs::Counter& shed = reg().counter("serve.shed_total");
  obs::Counter& deadline = reg().counter("serve.deadline_expired_total");
  obs::Counter& malformed = reg().counter("serve.malformed_total");
  obs::Counter& oversized = reg().counter("serve.oversized_total");
  obs::Counter& batches = reg().counter("serve.batches_total");
  obs::Counter& batch_failures = reg().counter("serve.batch_failures_total");
  obs::Counter& reloads = reg().counter("serve.reloads_total");
  obs::Counter& reload_failures =
      reg().counter("serve.reload_failures_total");
  obs::Counter& connections_total = reg().counter("serve.connections_total");
  obs::Counter& faults = reg().counter("serve.injected_faults_total");
  obs::Counter& program_cache_hits =
      reg().counter("serve.program_cache_hits_total");
  obs::Gauge& queue_depth = reg().gauge("serve.queue_depth");
  obs::Gauge& inflight_bytes = reg().gauge("serve.inflight_bytes");
  obs::Gauge& connections = reg().gauge("serve.connections");
  obs::Gauge& model_version = reg().gauge("serve.model_version");
  obs::Histogram& batch_size = reg().histogram(
      "serve.batch_size", obs::Histogram::exponential_bounds(1, 200));
  obs::Histogram& batch_forward_us = reg().histogram(
      "serve.batch_forward_us", obs::Histogram::exponential_bounds(100, 1e7));
  obs::Histogram& request_latency_us =
      reg().histogram("serve.request_latency_us",
                      obs::Histogram::exponential_bounds(100, 1e8));

  static obs::Registry& reg() { return obs::Registry::global(); }
  static Metrics& get() {
    static Metrics m;
    return m;
  }
};

/// Deterministic entry-function arguments, same recipe as the CLI: arrays
/// get 4096 elements, ints 8, floats 1.0.
std::vector<profiler::ArgInit> synth_args(const ir::Function& kernel) {
  std::vector<profiler::ArgInit> args;
  for (const auto& p : kernel.params) {
    if (ir::is_array(p.type)) {
      args.push_back(profiler::ArgInit::of_array(4096, args.size() + 1));
    } else if (p.type == ir::TypeKind::Int) {
      args.push_back(profiler::ArgInit::of_int(8));
    } else {
      args.push_back(profiler::ArgInit::of_float(1.0));
    }
  }
  return args;
}

/// Writes all of `data` to `fd`; false on a connection error. MSG_NOSIGNAL
/// keeps a peer that hung up from killing the daemon with SIGPIPE.
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

int argmax_row(const ag::Tensor& logits, std::size_t row) {
  int best = 0;
  for (std::size_t c = 1; c < logits.cols(); ++c) {
    if (logits.at(row, c) > logits.at(row, static_cast<std::size_t>(best))) {
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace

ServingContext build_serving_context(int corpus_loops, cache::Cache* cache) {
  OBS_SPAN("serve.build_context");
  ServingContext ctx;
  data::DatasetOptions opts;
  opts.seed = 5;
  opts.cache = cache;
  ctx.ds = data::build_dataset(
      data::build_generated_corpus(corpus_loops, 2024), opts);
  auto [train_raw, val] = data::split_by_kernel(ctx.ds, 0.85, 5);
  const std::vector<std::size_t> train =
      data::oversample_balance(ctx.ds, train_raw, 5);
  ctx.norm = core::Normalizer::fit(ctx.ds, train);
  const core::Featurizer feats(ctx.ds, ctx.norm);
  ctx.model_cfg = core::default_config(feats);
  ctx.feat_opts = opts;
  ctx.feat_opts.dep_noise = 0.0;  // a live request's own run is not noisy
  return ctx;
}

std::shared_ptr<const Model> load_model(const ServingContext& ctx,
                                        const std::string& path,
                                        std::uint64_t version) {
  OBS_SPAN("serve.reload");
  fault::check("serve.reload");
  auto m = std::make_shared<Model>();
  // The init Rng only seeds weights that load_checkpoint overwrites; any
  // fixed seed gives a correctly shaped parameter set to restore into.
  par::Rng init_rng(1);
  m->net = std::make_unique<core::MvGnn>(ctx.model_cfg, init_rng);
  // The checkpoint footer carries Adam state; restoring through a throwaway
  // optimizer validates the full file (CRC + shapes) even though serving
  // never steps it.
  ag::Adam opt(1e-3f);
  opt.add_params(m->net->parameters());
  m->meta = core::load_checkpoint(path, *m->net, opt);
  m->version = version;
  m->path = path;
  return m;
}

Server::Server(ServingContext ctx, ServerConfig cfg)
    : ctx_(std::move(ctx)), cfg_(std::move(cfg)), rng_(7) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(listen_fd_);
    throw std::runtime_error("serve: cannot bind port " +
                             std::to_string(cfg_.port) + ": " +
                             std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    throw std::runtime_error(std::string("serve: listen failed: ") +
                             std::strerror(err));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  // Startup is the one moment a bad checkpoint is fatal: there is no older
  // generation to keep serving.
  model_ = load_model(ctx_, cfg_.checkpoint, next_version_);
  next_version_ = 2;
  Metrics::get().model_version.set(1.0);
  obs::log_info("serve: model loaded",
                {{"checkpoint", cfg_.checkpoint},
                 {"epoch", std::to_string(model_->meta.epoch)},
                 {"port", std::to_string(port_)}});
}

Server::~Server() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::start() {
  if (started_) return;
  started_ = true;
  batcher_thread_ = std::thread([this] { batcher_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stop_.request_stop();
  // Unblock accept(); the loop re-checks the token and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Connection threads only exit between requests, so every request that
  // was read gets its response written before the socket closes. No new
  // threads can appear: the accept loop is gone.
  for (auto& c : conns_) {
    if (c->thread.joinable()) c->thread.join();
  }
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  if (batcher_thread_.joinable()) batcher_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  obs::log_info("serve: drained and stopped");
}

std::uint64_t Server::model_version() const {
  std::lock_guard<std::mutex> lk(model_mu_);
  return model_->version;
}

std::uint64_t Server::reload(const std::string& path) {
  Metrics& m = Metrics::get();
  std::lock_guard<std::mutex> rl(reload_mu_);
  const std::string target = path.empty() ? cfg_.checkpoint : path;
  const std::uint64_t version = next_version_;
  std::shared_ptr<const Model> fresh;
  try {
    fresh = load_model(ctx_, target, version);
  } catch (const std::exception& e) {
    m.reload_failures.add();
    obs::log_warn("serve: reload rejected; old model keeps serving",
                  {{"checkpoint", target}, {"error", e.what()}});
    throw;
  }
  {
    std::lock_guard<std::mutex> lk(model_mu_);
    model_ = std::move(fresh);
  }
  next_version_ = version + 1;
  m.reloads.add();
  m.model_version.set(static_cast<double>(version));
  obs::log_info("serve: checkpoint reloaded",
                {{"checkpoint", target}, {"version", std::to_string(version)}});
  return version;
}

bool Server::try_admit(std::size_t bytes) {
  Metrics& m = Metrics::get();
  // Optimistic reserve, undo on overshoot: the common case takes two
  // relaxed RMWs and no lock.
  const std::size_t depth = inflight_.fetch_add(1) + 1;
  const std::size_t total = inflight_bytes_.fetch_add(bytes) + bytes;
  if (depth > cfg_.max_queue_depth || total > cfg_.max_inflight_bytes) {
    inflight_.fetch_sub(1);
    inflight_bytes_.fetch_sub(bytes);
    return false;
  }
  m.queue_depth.set(static_cast<double>(depth));
  m.inflight_bytes.set(static_cast<double>(total));
  return true;
}

void Server::release(std::size_t bytes) {
  Metrics& m = Metrics::get();
  m.queue_depth.set(static_cast<double>(inflight_.fetch_sub(1) - 1));
  m.inflight_bytes.set(
      static_cast<double>(inflight_bytes_.fetch_sub(bytes) - bytes));
}

std::shared_ptr<const Server::Prepared> Server::program_cache_get(
    const std::string& source) {
  if (cfg_.program_cache_entries == 0) return nullptr;
  std::lock_guard<std::mutex> lk(prog_mu_);
  const auto it = prog_map_.find(source);
  if (it == prog_map_.end()) return nullptr;
  prog_lru_.splice(prog_lru_.begin(), prog_lru_, it->second);
  return it->second->second;
}

void Server::program_cache_put(const std::string& source,
                               std::shared_ptr<const Prepared> prog) {
  if (cfg_.program_cache_entries == 0) return;
  std::lock_guard<std::mutex> lk(prog_mu_);
  if (prog_map_.count(source) != 0) return;  // raced with another conn
  prog_lru_.emplace_front(source, std::move(prog));
  prog_map_[source] = prog_lru_.begin();
  while (prog_lru_.size() > cfg_.program_cache_entries) {
    prog_map_.erase(prog_lru_.back().first);
    prog_lru_.pop_back();
  }
}

void Server::accept_loop() {
  Metrics& m = Metrics::get();
  while (!stop_.stop_requested()) {
    sockaddr_in peer{};
    socklen_t len = sizeof peer;
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (stop_.stop_requested()) break;
      if (errno == EINTR) continue;
      // Transient accept failure (fd pressure etc.): log and keep serving.
      obs::log_warn("serve: accept failed",
                    {{"error", std::strerror(errno)}});
      stop_.wait_for_stop(std::chrono::milliseconds(10));
      continue;
    }
    if (fault::enabled() && fault::hit("serve.accept")) {
      m.faults.add();
      obs::log_warn("serve: injected fault at serve.accept; "
                    "dropping connection");
      ::close(fd);
      continue;
    }
    if (open_conns_.load() >= cfg_.max_connections) {
      m.shed.add();
      send_all(fd, render_error("", ErrorCode::Shed,
                                "connection limit reached") +
                       "\n");
      ::close(fd);
      continue;
    }
    std::lock_guard<std::mutex> lk(conns_mu_);
    // Reap finished connection threads so the list stays bounded by the
    // concurrent-connection count, not the lifetime total.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load() && (*it)->thread.joinable()) {
        (*it)->thread.join();
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    auto conn = std::make_unique<Conn>();
    Conn* cp = conn.get();
    open_conns_.fetch_add(1);
    conn->thread = std::thread([this, fd, cp] {
      connection_loop(fd);
      open_conns_.fetch_sub(1);
      Metrics::get().connections.set(static_cast<double>(open_conns_.load()));
      cp->done.store(true);
    });
    conns_.push_back(std::move(conn));
  }
}

void Server::connection_loop(int fd) {
  Metrics& m = Metrics::get();
  m.connections_total.add();
  m.connections.set(static_cast<double>(open_conns_.load()));
  std::string buf;
  bool discarding = false;  // inside an oversized, already-answered line
  char tmp[4096];
  bool alive = true;
  // Once stop is requested the connection keeps answering (requests get
  // `shutting_down` from handle_request) until the client closes or a grace
  // period expires — closing at the first stop tick would reset a request
  // the client had already put on the wire.
  std::uint64_t drain_deadline_ns = 0;
  while (alive) {
    if (stop_.stop_requested()) {
      if (drain_deadline_ns == 0) {
        drain_deadline_ns = now_ns() + 1'000'000'000ull;
      } else if (now_ns() >= drain_deadline_ns) {
        break;
      }
    }
    std::size_t nl;
    while (alive && (nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (discarding) {  // tail of a line answered `oversized` earlier
        discarding = false;
        continue;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string resp;
      if (line.size() > cfg_.max_request_bytes) {
        m.oversized.add();
        m.errors.add();
        resp = render_error(
            "", ErrorCode::Oversized,
            "request line of " + std::to_string(line.size()) +
                " bytes exceeds the " +
                std::to_string(cfg_.max_request_bytes) + " byte cap");
      } else {
        resp = handle_line(line);
      }
      resp += '\n';
      if (!send_all(fd, resp)) alive = false;
    }
    if (!alive) break;
    if (discarding) {
      buf.clear();  // still inside the oversized line; drop and keep reading
    } else if (buf.size() > cfg_.max_request_bytes) {
      // Unframed oversized line: answer immediately, then discard input
      // until the next newline so the stream stays framed.
      discarding = true;
      buf.clear();
      m.oversized.add();
      m.errors.add();
      if (!send_all(fd, render_error(
                            "", ErrorCode::Oversized,
                            "request line exceeds the " +
                                std::to_string(cfg_.max_request_bytes) +
                                " byte cap") +
                            "\n")) {
        break;
      }
    }
    pollfd p{fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, 100);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;  // tick: re-check the stop token
    if (fault::enabled() && fault::hit("serve.read")) {
      m.faults.add();
      obs::log_warn("serve: injected fault at serve.read; "
                    "closing connection");
      break;
    }
    const ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
    if (n <= 0) break;  // EOF between requests is the clean close
    buf.append(tmp, static_cast<std::size_t>(n));
  }
  ::close(fd);
}

std::string Server::handle_line(const std::string& line) {
  OBS_SPAN("serve.request");
  Metrics& m = Metrics::get();
  const ParsedLine p = parse_line(line);
  if (p.request) return handle_request(*p.request);
  if (p.control) return handle_control(*p.control);
  m.errors.add();
  if (p.code == ErrorCode::Malformed) m.malformed.add();
  return render_error(p.id, p.code, p.error, p.offset);
}

std::string Server::handle_request(const Request& req) {
  Metrics& m = Metrics::get();
  m.requests.add();
  const std::uint64_t t0 = now_ns();
  std::uint64_t deadline_ns = 0;
  const std::uint64_t deadline_ms = req.deadline_ms == Request::kUseDefault
                                        ? cfg_.default_deadline_ms
                                        : req.deadline_ms;
  if (deadline_ms != 0) deadline_ns = t0 + deadline_ms * 1'000'000ull;

  if (stop_.stop_requested()) {
    m.errors.add();
    return render_error(req.id, ErrorCode::ShuttingDown,
                        "server is draining");
  }
  if (!try_admit(req.source.size())) {
    m.shed.add();
    m.errors.add();
    return render_error(req.id, ErrorCode::Shed,
                        "queue full (" + std::to_string(inflight_.load()) +
                            " in flight); retry with backoff");
  }
  // Early deadline rejection: if the smoothed batch latency already says
  // this deadline cannot be met, answer now instead of burning featurize
  // work on a result nobody will accept.
  const std::uint64_t ewma = ewma_batch_.value_ns();
  if (deadline_ns != 0 && ewma_batch_.armed() &&
      deadline_ns < t0 + cfg_.batch_linger_ms * 1'000'000ull + ewma) {
    release(req.source.size());
    m.deadline.add();
    m.errors.add();
    return render_error(req.id, ErrorCode::DeadlineExpired,
                        "deadline_ms=" + std::to_string(deadline_ms) +
                            " cannot be met (smoothed batch latency " +
                            std::to_string(ewma / 1000) + "us)");
  }

  auto pending = std::make_unique<Pending>();
  pending->id = req.id;
  pending->bytes = req.source.size();
  pending->enqueue_ns = t0;
  pending->deadline_ns = deadline_ns;
  pending->prog = program_cache_get(req.source);
  if (pending->prog != nullptr) {
    m.program_cache_hits.add();
  } else {
    try {
      OBS_SPAN("serve.featurize");
      data::ProgramSpec spec;
      spec.suite = "Serve";
      spec.app = "request";
      spec.kernel.name = "request";
      spec.kernel.source = req.source;
      {
        const ir::Module probe = frontend::compile(req.source, "request");
        const ir::Function* kernel = probe.find("kernel");
        if (kernel == nullptr) {
          release(pending->bytes);
          m.errors.add();
          return render_error(req.id, ErrorCode::Compile,
                              "no `kernel` function in the program");
        }
        spec.kernel.args = synth_args(*kernel);
      }
      data::DatasetOptions opts = ctx_.feat_opts;
      opts.interp = cfg_.interp;  // per-request fuel/memory/depth caps
      const auto samples = data::featurize_program(spec, ctx_.ds, opts);
      auto prepared = std::make_shared<Prepared>();
      prepared->inputs.reserve(samples.size());
      for (const auto& s : samples) {
        prepared->inputs.push_back(core::build_input(s, ctx_.ds, ctx_.norm));
        prepared->loop_lines.push_back(s.loop_line);
      }
      pending->prog = prepared;
      program_cache_put(req.source, std::move(prepared));
    } catch (const frontend::FrontendError& e) {
      release(pending->bytes);
      m.errors.add();
      return render_error(req.id, ErrorCode::Compile, e.what());
    } catch (const profiler::InterpError& e) {
      release(pending->bytes);
      m.errors.add();
      return render_error(req.id, ErrorCode::Profile, e.what());
    } catch (const pipe::StageError& e) {
      // featurize_program wraps stage failures; map the stage back to the
      // request-level error class (fuel exhaustion is a Profile failure,
      // not a generic featurize one).
      release(pending->bytes);
      m.errors.add();
      ErrorCode code = ErrorCode::Featurize;
      if (e.stage == pipe::Stage::Parse || e.stage == pipe::Stage::Lower) {
        code = ErrorCode::Compile;
      } else if (e.stage == pipe::Stage::Profile) {
        code = ErrorCode::Profile;
      }
      return render_error(req.id, code, e.what());
    } catch (const std::exception& e) {
      release(pending->bytes);
      m.errors.add();
      return render_error(req.id, ErrorCode::Featurize, e.what());
    }
  }

  if (pending->prog->inputs.empty()) {
    // A program with no for-loops is a valid (if pointless) request.
    release(pending->bytes);
    m.ok.add();
    m.request_latency_us.observe(static_cast<double>((now_ns() - t0) / 1000));
    return render_ok(req.id, {}, model_version(), 0, 0,
                     (now_ns() - t0) / 1000);
  }

  std::future<std::string> response = pending->response.get_future();
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (queue_closed_) {
      release(pending->bytes);
      m.errors.add();
      return render_error(req.id, ErrorCode::ShuttingDown,
                          "server is draining");
    }
    queued_samples_ += pending->prog->inputs.size();
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  try {
    return response.get();
  } catch (const std::exception& e) {
    // Broken promise — only possible if the batcher died, which it is
    // designed never to do. Answer rather than hang the connection.
    m.errors.add();
    return render_error(req.id, ErrorCode::BatchFailed, e.what());
  }
}

std::string Server::handle_control(const ControlCommand& ctl) {
  Metrics& m = Metrics::get();
  if (ctl.cmd == "ping") {
    return "{\"ok\": true, \"pong\": true, \"model_version\": " +
           std::to_string(model_version()) + "}";
  }
  if (ctl.cmd == "stats") {
    std::string out = "{\"ok\": true, \"stats\": {";
    out += "\"model_version\": " + std::to_string(model_version());
    out += ", \"queue_depth\": " + std::to_string(inflight_.load());
    out += ", \"inflight_bytes\": " + std::to_string(inflight_bytes_.load());
    out += ", \"connections\": " + std::to_string(open_conns_.load());
    out += ", \"requests_total\": " + std::to_string(m.requests.value());
    out += ", \"ok_total\": " + std::to_string(m.ok.value());
    out += ", \"shed_total\": " + std::to_string(m.shed.value());
    out += ", \"deadline_expired_total\": " + std::to_string(m.deadline.value());
    out += ", \"batches_total\": " + std::to_string(m.batches.value());
    out += ", \"reloads_total\": " + std::to_string(m.reloads.value());
    out += ", \"reload_failures_total\": " +
           std::to_string(m.reload_failures.value());
    out += "}}";
    return out;
  }
  if (ctl.cmd == "reload") {
    try {
      const std::uint64_t v = reload(ctl.checkpoint);
      return "{\"ok\": true, \"reloaded\": true, \"model_version\": " +
             std::to_string(v) + "}";
    } catch (const std::exception& e) {
      m.errors.add();
      return render_error("", ErrorCode::ReloadFailed, e.what());
    }
  }
  m.errors.add();
  return render_error("", ErrorCode::BadRequest,
                      "unknown control command `" + ctl.cmd + "`");
}

void Server::batcher_loop() {
  const std::uint64_t linger_ns = cfg_.batch_linger_ms * 1'000'000ull;
  for (;;) {
    std::vector<std::unique_ptr<Pending>> batch;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [&] { return queue_closed_ || !queue_.empty(); });
      if (queue_.empty() && queue_closed_) break;
      // Linger: wait for more work unless the batch is already full or the
      // server is draining (drain flushes immediately).
      while (!queue_closed_ && queued_samples_ < cfg_.batch_max_samples) {
        const std::uint64_t oldest = queue_.front()->enqueue_ns;
        const std::uint64_t now = now_ns();
        if (now >= oldest + linger_ns) break;
        queue_cv_.wait_for(lk,
                           std::chrono::nanoseconds(oldest + linger_ns - now));
      }
      std::size_t samples = 0;
      while (!queue_.empty()) {
        const std::size_t n = queue_.front()->prog->inputs.size();
        if (!batch.empty() && samples + n > cfg_.batch_max_samples) break;
        samples += n;
        queued_samples_ -= n;
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (!batch.empty()) run_batch(std::move(batch));
  }
}

void Server::run_batch(std::vector<std::unique_ptr<Pending>> batch) {
  Metrics& m = Metrics::get();
  const std::uint64_t now = now_ns();

  // Expired requests get a typed error, not stale-late results.
  std::vector<std::unique_ptr<Pending>> live;
  live.reserve(batch.size());
  for (auto& p : batch) {
    if (p->deadline_ns != 0 && p->deadline_ns < now) {
      m.deadline.add();
      m.errors.add();
      p->response.set_value(render_error(
          p->id, ErrorCode::DeadlineExpired,
          "deadline expired after " +
              std::to_string((now - p->enqueue_ns) / 1'000'000ull) +
              "ms in queue"));
      release(p->bytes);
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;

  // Pin the model generation for the whole batch: a reload that lands
  // mid-flush only affects the *next* batch, so one batch never mixes
  // model versions (asserted by tests via model_version + batch_id).
  std::shared_ptr<const Model> model;
  {
    std::lock_guard<std::mutex> lk(model_mu_);
    model = model_;
  }
  const std::uint64_t batch_id = next_batch_id_.fetch_add(1);

  std::vector<const core::SampleInput*> ptrs;
  for (const auto& p : live) {
    for (const auto& in : p->prog->inputs) ptrs.push_back(&in);
  }
  OBS_SPAN("serve.batch");
  // One flush may carry more samples than `batch_max_samples` (a single
  // request's loops are never split across flushes), so the forward itself is
  // chunked: the cap bounds peak tensor size even for a pathological
  // many-loop request. Per-sample verdict rows accumulate across chunks.
  std::vector<int> fused_rows, node_rows, struct_rows;
  fused_rows.reserve(ptrs.size());
  node_rows.reserve(ptrs.size());
  struct_rows.reserve(ptrs.size());
  const std::size_t chunk_cap =
      cfg_.batch_max_samples == 0 ? ptrs.size() : cfg_.batch_max_samples;
  const std::uint64_t fwd0 = now_ns();
  try {
    fault::check("serve.batch");
    for (std::size_t base = 0; base < ptrs.size(); base += chunk_cap) {
      const std::size_t n = std::min(chunk_cap, ptrs.size() - base);
      std::vector<const core::SampleInput*> chunk(ptrs.begin() + base,
                                                  ptrs.begin() + base + n);
      const core::GraphBatch gb = core::make_graph_batch(chunk);
      const core::MvGnn::Output out =
          model->net->forward_batch(gb, /*training=*/false, rng_);
      for (std::size_t r = 0; r < n; ++r) {
        fused_rows.push_back(argmax_row(out.logits, r));
        node_rows.push_back(argmax_row(out.node_logits, r));
        struct_rows.push_back(argmax_row(out.struct_logits, r));
      }
    }
  } catch (const std::exception& e) {
    // The whole flush failed (fault injection or an internal error). Every
    // request gets a typed answer; the daemon keeps serving.
    m.batch_failures.add();
    if (dynamic_cast<const fault::InjectedFault*>(&e) != nullptr) {
      m.faults.add();
    }
    obs::log_warn("serve: batch forward failed", {{"error", e.what()}});
    for (auto& p : live) {
      m.errors.add();
      p->response.set_value(
          render_error(p->id, ErrorCode::BatchFailed, e.what()));
      release(p->bytes);
    }
    return;
  }
  const std::uint64_t fwd_ns = now_ns() - fwd0;
  m.batches.add();
  m.batch_size.observe(static_cast<double>(ptrs.size()));
  m.batch_forward_us.observe(static_cast<double>(fwd_ns / 1000));
  // EWMA of the flush latency feeds early deadline rejection; the first
  // measured flush arms it permanently (see LatencyEwma).
  ewma_batch_.record(fwd_ns);

  std::size_t row = 0;
  const std::uint64_t done = now_ns();
  for (auto& p : live) {
    std::vector<LoopVerdict> verdicts;
    verdicts.reserve(p->prog->inputs.size());
    for (std::size_t i = 0; i < p->prog->inputs.size(); ++i, ++row) {
      LoopVerdict v;
      v.line = p->prog->loop_lines[i];
      v.fused = fused_rows[row];
      v.node_view = node_rows[row];
      v.struct_view = struct_rows[row];
      verdicts.push_back(v);
    }
    const std::uint64_t latency_us = (done - p->enqueue_ns) / 1000;
    m.ok.add();
    m.request_latency_us.observe(static_cast<double>(latency_us));
    p->response.set_value(render_ok(p->id, verdicts, model->version,
                                    batch_id, ptrs.size(), latency_us));
    release(p->bytes);
  }
}

}  // namespace mvgnn::serve
