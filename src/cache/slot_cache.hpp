// Fixed-index-space build-once cache.
//
// The trainer's featurizer caches one model input per dataset sample; the
// index space is dense and known up front, so the right structure is a slot
// vector, not a hash map: lookups are one pointer load, and parallel
// prefetch workers fill *distinct* slots without any lock (each slot is
// written at most once per owner, never concurrently — the caller dedupes
// indices first). This lives in src/cache so every cache tier in the system
// reports through the same counter scheme.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace mvgnn::cache {

template <typename T>
class SlotCache {
 public:
  /// `hits`/`misses` name the obs counters this cache reports to.
  SlotCache(std::size_t n, std::string hits, std::string misses)
      : slots_(n),
        hits_(&obs::Registry::global().counter(hits)),
        misses_(&obs::Registry::global().counter(misses)) {}

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] bool filled(std::size_t i) const { return slots_[i] != nullptr; }

  /// The cached value, or nullptr (counts a hit/miss either way).
  [[nodiscard]] const T* lookup(std::size_t i) const {
    if (slots_[i]) {
      hits_->add(1);
      return slots_[i].get();
    }
    misses_->add(1);
    return nullptr;
  }

  /// Fills slot `i`. Distinct slots may be stored concurrently; one slot
  /// must have a single writer (see class comment).
  const T& store(std::size_t i, std::unique_ptr<T> value) const {
    slots_[i] = std::move(value);
    return *slots_[i];
  }

 private:
  mutable std::vector<std::unique_ptr<T>> slots_;
  obs::Counter* hits_;
  obs::Counter* misses_;
};

}  // namespace mvgnn::cache
