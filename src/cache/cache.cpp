#include "cache/cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "fault/fault.hpp"
#include "io/atomic_file.hpp"
#include "io/checked_stream.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mvgnn::cache {

namespace {

constexpr std::uint32_t kMagic = 0x4D56'4343;  // "MVCC"
constexpr std::uint32_t kVersion = 1;
/// Disk payloads past this are rejected as corruption (a flipped length
/// byte must fail the read, not drive a giant allocation).
constexpr std::uint64_t kMaxPayload = 1ull << 32;
/// Fixed per-entry bookkeeping charge against the memory budget, covering
/// list/map nodes and the key, so thousands of tiny blobs cannot slip
/// under a bytes-only accounting.
constexpr std::size_t kEntryOverhead = 128;

struct Counters {
  obs::Counter& hits = obs::Registry::global().counter("cache.hits_total");
  obs::Counter& misses = obs::Registry::global().counter("cache.misses_total");
  obs::Counter& evictions =
      obs::Registry::global().counter("cache.evictions_total");
  obs::Counter& corrupt =
      obs::Registry::global().counter("cache.corrupt_total");
  obs::Counter& write_failures =
      obs::Registry::global().counter("cache.write_failures_total");
  obs::Gauge& disk_bytes = obs::Registry::global().gauge("cache.disk_bytes");
  obs::Gauge& mem_bytes = obs::Registry::global().gauge("cache.mem_bytes");
};

Counters& counters() {
  static Counters c;
  return c;
}

}  // namespace

std::string Key::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf, 32);
}

Cache::Cache(Config cfg) : cfg_(std::move(cfg)) {
  if (!cfg_.dir.empty()) {
    std::filesystem::create_directories(cfg_.dir);
    scan_disk();
  }
}

std::string Cache::path_of(const Key& key) const {
  return cfg_.dir + "/" + key.hex() + ".mvcc";
}

void Cache::scan_disk() {
  std::uint64_t bytes = 0, entries = 0;
  std::error_code ec;
  for (const auto& de : std::filesystem::directory_iterator(cfg_.dir, ec)) {
    if (de.path().extension() == ".mvcc" && de.is_regular_file(ec)) {
      bytes += de.file_size(ec);
      ++entries;
    }
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.disk_bytes = bytes;
  stats_.disk_entries = entries;
  counters().disk_bytes.set(static_cast<double>(bytes));
}

std::optional<std::string> Cache::get(const Key& key) {
  // hit: 0 = miss, 1 = memory tier, 2 = disk tier (promoted).
  obs::ScopedSpan span("cache.get");
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end() && it->second->type == nullptr) {
      lru_.splice(lru_.begin(), lru_, it->second);
      std::string bytes = it->second->bytes;
      {
        std::lock_guard<std::mutex> slock(stats_mu_);
        ++stats_.hits;
      }
      counters().hits.add(1);
      span.arg("hit", 1);
      return bytes;
    }
  }
  if (!cfg_.dir.empty()) {
    if (auto bytes = read_disk(key)) {
      // Promote into the memory tier.
      Entry e;
      e.key = key;
      e.bytes = *bytes;
      e.charge = e.bytes.size() + kEntryOverhead;
      {
        std::lock_guard<std::mutex> lock(mu_);
        insert_locked(std::move(e));
      }
      {
        std::lock_guard<std::mutex> slock(stats_mu_);
        ++stats_.hits;
      }
      counters().hits.add(1);
      span.arg("hit", 2);
      return bytes;
    }
  }
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.misses;
  }
  counters().misses.add(1);
  span.arg("hit", 0);
  return std::nullopt;
}

void Cache::put(const Key& key, std::string_view bytes) {
  Entry e;
  e.key = key;
  e.bytes.assign(bytes.data(), bytes.size());
  e.charge = e.bytes.size() + kEntryOverhead;
  {
    std::lock_guard<std::mutex> lock(mu_);
    insert_locked(std::move(e));
  }
  if (!cfg_.dir.empty()) write_disk(key, bytes);
}

std::string Cache::get_or_compute(
    const Key& key, const std::function<std::string()>& compute) {
  if (auto hit = get(key)) return std::move(*hit);

  std::shared_ptr<Flight> flight;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    auto& slot = flights_[key];
    if (!slot) {
      slot = std::make_shared<Flight>();
      owner = true;
    }
    flight = slot;
  }
  if (!owner) {
    std::unique_lock<std::mutex> lock(flight->m);
    flight->cv.wait(lock, [&] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    return flight->bytes;
  }

  std::string bytes;
  std::exception_ptr error;
  try {
    bytes = compute();
    put(key, bytes);
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(flight->m);
    flight->done = true;
    flight->bytes = bytes;
    flight->error = error;
  }
  flight->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    flights_.erase(key);
  }
  if (error) std::rethrow_exception(error);
  return bytes;
}

std::pair<std::shared_ptr<const void>, const std::type_info*>
Cache::get_object_erased(const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end() || it->second->type == nullptr) {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.misses;
    counters().misses.add(1);
    return {nullptr, nullptr};
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.hits;
  }
  counters().hits.add(1);
  return {it->second->obj, it->second->type};
}

void Cache::put_object_erased(const Key& key,
                              std::shared_ptr<const void> value,
                              const std::type_info& type,
                              std::size_t approx_bytes) {
  Entry e;
  e.key = key;
  e.obj = std::move(value);
  e.type = &type;
  e.charge = approx_bytes + kEntryOverhead;
  std::lock_guard<std::mutex> lock(mu_);
  insert_locked(std::move(e));
}

void Cache::insert_locked(Entry entry) {
  const auto it = index_.find(entry.key);
  if (it != index_.end()) {
    mem_bytes_ -= it->second->charge;
    lru_.erase(it->second);
    index_.erase(it);
  }
  mem_bytes_ += entry.charge;
  lru_.push_front(std::move(entry));
  index_[lru_.front().key] = lru_.begin();
  evict_to_budget_locked();
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.mem_entries = index_.size();
    stats_.mem_bytes = mem_bytes_;
  }
  counters().mem_bytes.set(static_cast<double>(mem_bytes_));
}

void Cache::evict_to_budget_locked() {
  while (mem_bytes_ > cfg_.mem_budget_bytes && !lru_.empty()) {
    // Never evict the entry just inserted: a single blob larger than the
    // whole budget should still serve the caller that produced it.
    if (lru_.size() == 1) break;
    Entry& victim = lru_.back();
    mem_bytes_ -= victim.charge;
    index_.erase(victim.key);
    lru_.pop_back();
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.evictions;
    }
    counters().evictions.add(1);
  }
}

std::optional<std::string> Cache::read_disk(const Key& key) {
  const std::string path = path_of(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // plain absence: not corruption

  auto corrupt = [&](const char* what) -> std::optional<std::string> {
    in.close();
    std::error_code ec;
    std::uint64_t removed = 0;
    if (std::filesystem::exists(path, ec)) {
      removed = std::filesystem::file_size(path, ec);
      std::filesystem::remove(path, ec);
    }
    obs::log_warn("evicting corrupt cache entry",
                  {{"path", path}, {"reason", what}});
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.corrupt;
    if (stats_.disk_entries > 0) --stats_.disk_entries;
    stats_.disk_bytes -= std::min(stats_.disk_bytes, removed);
    counters().corrupt.add(1);
    counters().disk_bytes.set(static_cast<double>(stats_.disk_bytes));
    return std::nullopt;
  };

  std::uint32_t magic = 0, version = 0;
  std::uint64_t len = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  in.read(reinterpret_cast<char*>(&len), sizeof len);
  if (!in || magic != kMagic) return corrupt("bad header");
  if (version != kVersion) return corrupt("version mismatch");
  if (len > kMaxPayload) return corrupt("length exceeds cap");
  std::string payload(len, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(len));
  std::uint32_t want_crc = 0;
  in.read(reinterpret_cast<char*>(&want_crc), sizeof want_crc);
  if (!in) return corrupt("truncated");
  std::uint32_t crc = io::crc32(payload.data(), payload.size());
  if (fault::enabled() && fault::hit("cache.read.corrupt")) {
    crc = ~crc;  // injected corruption: force the mismatch path
  }
  if (crc != want_crc) return corrupt("checksum mismatch");
  return payload;
}

void Cache::write_disk(const Key& key, std::string_view bytes) {
  const std::string path = path_of(key);
  try {
    fault::check("cache.write");
    io::atomic_write_file(path, [&](std::ostream& os) {
      const std::uint64_t len = bytes.size();
      const std::uint32_t crc = io::crc32(bytes.data(), bytes.size());
      os.write(reinterpret_cast<const char*>(&kMagic), sizeof kMagic);
      os.write(reinterpret_cast<const char*>(&kVersion), sizeof kVersion);
      os.write(reinterpret_cast<const char*>(&len), sizeof len);
      os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      os.write(reinterpret_cast<const char*>(&crc), sizeof crc);
    });
  } catch (const std::exception& e) {
    // A cache write failure degrades to "uncached", never to a build
    // failure.
    obs::log_warn("cache write failed", {{"path", path}, {"error", e.what()}});
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.write_failures;
    counters().write_failures.add(1);
    return;
  }
  std::error_code ec;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  std::lock_guard<std::mutex> slock(stats_mu_);
  ++stats_.disk_entries;
  stats_.disk_bytes += ec ? 0 : size;
  counters().disk_bytes.set(static_cast<double>(stats_.disk_bytes));
}

void Cache::clear() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    index_.clear();
    mem_bytes_ = 0;
  }
  if (!cfg_.dir.empty()) {
    std::error_code ec;
    for (const auto& de : std::filesystem::directory_iterator(cfg_.dir, ec)) {
      if (de.path().extension() == ".mvcc") {
        std::filesystem::remove(de.path(), ec);
      }
    }
  }
  std::lock_guard<std::mutex> slock(stats_mu_);
  stats_.mem_entries = 0;
  stats_.mem_bytes = 0;
  stats_.disk_entries = 0;
  stats_.disk_bytes = 0;
  counters().mem_bytes.set(0.0);
  counters().disk_bytes.set(0.0);
}

Stats Cache::stats() const {
  std::lock_guard<std::mutex> slock(stats_mu_);
  return stats_;
}

void Cache::reconfigure(Config cfg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    index_.clear();
    mem_bytes_ = 0;
    cfg_ = std::move(cfg);
  }
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.mem_entries = 0;
    stats_.mem_bytes = 0;
    stats_.disk_entries = 0;
    stats_.disk_bytes = 0;
  }
  if (!cfg_.dir.empty()) {
    std::filesystem::create_directories(cfg_.dir);
    scan_disk();
  }
}

Cache& Cache::global() {
  static Cache* c = new Cache();  // leaked: usable from teardown paths
  return *c;
}

void Cache::configure_global(Config cfg) { global().reconfigure(std::move(cfg)); }

}  // namespace mvgnn::cache
