// Content-addressed cache: a thread-safe in-memory LRU in front of an
// optional on-disk tier.
//
// The staged pipeline (src/pipe) keys every stage boundary by content hash;
// this layer stores the serialized stage outputs. Two kinds of entries
// share one LRU and one memory budget:
//
//   * byte blobs — serialized artifacts, spillable to the disk tier;
//   * typed objects — in-memory-only artifacts (e.g. a compiled+profiled
//     module, which holds pointers and cannot be serialized cheaply).
//
// Disk entries are "MVCC" files (magic, version, length, payload, CRC32)
// written through io::atomic_write_file, so a crash mid-write never leaves
// a torn entry under a valid name. Corruption is *never* fatal: a bad
// magic, length or CRC on read counts `cache.corrupt_total`, evicts the
// file and reports a miss — the caller recomputes. A failed write (disk
// full, injected "cache.write" fault) counts `cache.write_failures_total`
// and the entry simply stays uncached.
//
// Fault sites (docs/robustness.md): "cache.write" fails a disk-tier write,
// "cache.read.corrupt" corrupts the CRC of the N-th disk-tier read.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <typeindex>
#include <unordered_map>

#include "cache/key.hpp"

namespace mvgnn::cache {

struct Config {
  /// Disk-tier directory; empty = memory-only cache.
  std::string dir;
  /// Memory budget for the LRU tier (blobs + typed objects).
  std::size_t mem_budget_bytes = 256ull << 20;
};

/// Point-in-time view of one cache instance. hits/misses/... also feed the
/// process-wide obs counters (cache.hits_total etc.), so --metrics-out
/// snapshots carry them.
struct Stats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t write_failures = 0;
  std::uint64_t mem_entries = 0;
  std::uint64_t mem_bytes = 0;
  std::uint64_t disk_entries = 0;
  std::uint64_t disk_bytes = 0;

  [[nodiscard]] double hit_ratio() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class Cache {
 public:
  Cache() : Cache(Config{}) {}
  explicit Cache(Config cfg);

  // ---- byte-blob tier (memory LRU + disk) --------------------------------

  /// Memory first, then disk (promoting a disk hit into memory). nullopt =
  /// miss (including any corrupt disk entry, which is evicted on the way).
  [[nodiscard]] std::optional<std::string> get(const Key& key);

  /// Stores in memory (evicting LRU entries past the budget) and, when a
  /// disk tier is configured, on disk. Never throws for I/O reasons.
  void put(const Key& key, std::string_view bytes);

  /// get(); on a miss runs `compute`, stores and returns its result.
  /// Concurrent callers with the same key are single-flight: one computes,
  /// the rest wait and share the value (or the thrown exception).
  std::string get_or_compute(const Key& key,
                             const std::function<std::string()>& compute);

  // ---- typed object tier (memory only) -----------------------------------

  template <typename T>
  [[nodiscard]] std::shared_ptr<const T> get_object(const Key& key) {
    auto [p, type] = get_object_erased(key);
    if (!p || *type != typeid(T)) return nullptr;
    return std::static_pointer_cast<const T>(p);
  }

  template <typename T>
  void put_object(const Key& key, std::shared_ptr<const T> value,
                  std::size_t approx_bytes) {
    put_object_erased(key, std::move(value), typeid(T), approx_bytes);
  }

  // ---- maintenance -------------------------------------------------------

  /// Drops every memory entry and deletes every disk entry.
  void clear();
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Process-wide instance the CLI wires --cache-dir/--cache-mem-mb into.
  /// Defaults to memory-only with the default budget.
  static Cache& global();
  /// Reconfigures global(): clears the memory tier, then adopts `cfg`
  /// (existing disk entries under cfg.dir become visible).
  static void configure_global(Config cfg);

 private:
  struct Entry {
    Key key;
    std::string bytes;                  // blob entries
    std::shared_ptr<const void> obj;    // typed entries
    const std::type_info* type = nullptr;
    std::size_t charge = 0;
  };
  using LruList = std::list<Entry>;

  std::pair<std::shared_ptr<const void>, const std::type_info*>
  get_object_erased(const Key& key);
  void put_object_erased(const Key& key, std::shared_ptr<const void> value,
                         const std::type_info& type, std::size_t approx_bytes);

  /// Inserts/replaces under mu_; evicts LRU tail past the budget.
  void insert_locked(Entry entry);
  void evict_to_budget_locked();
  [[nodiscard]] std::string path_of(const Key& key) const;
  /// Reads + verifies one disk entry; corrupt entries are deleted and
  /// reported as nullopt. Called without mu_ held (file I/O).
  [[nodiscard]] std::optional<std::string> read_disk(const Key& key);
  void write_disk(const Key& key, std::string_view bytes);
  void scan_disk();  // initializes disk_bytes/disk_entries from cfg_.dir
  void reconfigure(Config cfg);

  Config cfg_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recently used
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
  std::size_t mem_bytes_ = 0;

  struct Flight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::string bytes;
    std::exception_ptr error;
  };
  std::mutex flights_mu_;
  std::unordered_map<Key, std::shared_ptr<Flight>, KeyHash> flights_;

  // Instance-local stats (obs counters are process-global).
  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace mvgnn::cache
