// Content-hash cache keys.
//
// A Key is a 128-bit digest built by hashing a stage's inputs: the parent
// stage's key, the stage name, the stage's configuration fingerprint, and
// the content itself. Two independent FNV-1a lanes with distinct offset
// bases give 128 bits — far past birthday-collision territory for any
// realistic corpus, while staying dependency-free and byte-order stable
// (the digest is a pure function of the byte stream fed in).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace mvgnn::cache {

struct Key {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Key&, const Key&) = default;
  friend bool operator<(const Key& a, const Key& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  /// 32 lowercase hex characters — the on-disk entry's file stem.
  [[nodiscard]] std::string hex() const;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const noexcept {
    return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9E3779B97F4A7C15ULL));
  }
};

/// Incremental two-lane FNV-1a hasher. Feed bytes, take a Key. Every
/// variable-length field goes through str()/vec-style helpers that prefix
/// the length, so concatenation ambiguity cannot alias two different input
/// sequences onto one digest.
class Hasher {
 public:
  Hasher() = default;
  /// Chain constructor: absorbs a parent key first.
  explicit Hasher(const Key& parent) { key(parent); }

  Hasher& bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      a_ = (a_ ^ b[i]) * kPrime;
      b_ = (b_ ^ b[i]) * kPrime;
    }
    return *this;
  }
  Hasher& u64(std::uint64_t v) { return bytes(&v, sizeof v); }
  Hasher& u32(std::uint32_t v) { return bytes(&v, sizeof v); }
  Hasher& f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    return u64(bits);
  }
  Hasher& str(std::string_view s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }
  Hasher& key(const Key& k) { return u64(k.hi), u64(k.lo), *this; }

  [[nodiscard]] Key digest() const {
    // Final avalanche so short inputs still spread across all bits.
    return Key{fmix(a_), fmix(b_ ^ 0x9E3779B97F4A7C15ULL)};
  }

 private:
  static constexpr std::uint64_t kPrime = 1099511628211ULL;
  static std::uint64_t fmix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    return x;
  }
  std::uint64_t a_ = 14695981039346656037ULL;  // FNV-1a offset basis
  std::uint64_t b_ = 0x6C62272E07BB0142ULL;    // second lane basis
};

}  // namespace mvgnn::cache
