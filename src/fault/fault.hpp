// Deterministic fault injection.
//
// A tiny hook layer that lets tests (and operators chasing a bug) make the
// pipeline fail in precisely controlled places: the N-th write to a
// checkpoint, a read stream that goes dry after K bytes, an interpreter
// trap at dynamic instruction S, a simulated crash at optimizer step N.
// Every site is named; a site fires exactly once, on its N-th hit, and the
// whole layer compiles down to one relaxed atomic load when nothing is
// armed — cheap enough to leave the hooks in production builds.
//
// Arming:
//   * programmatically: fault::arm("trainer.step", 7);
//   * from the environment: MVGNN_FAULT="trainer.step@7,io.write@2"
//     (parsed once, on first use).
//
// Well-known sites (see docs/robustness.md):
//   io.write          atomic_write_file fails between temp write and rename
//   io.read.truncate  checked input streams deliver only N bytes, then EOF
//   interp.trap       interpreter traps at dynamic instruction N
//   trainer.step      trainer throws before optimizer step N (kill test)
//   ckpt.write        checkpoint save fails before writing
//   cache.write       cache disk-tier write fails (entry stays uncached)
//   cache.read.corrupt  N-th cache disk read sees a CRC mismatch (the entry
//                     is evicted and recomputed, never fatal)
//   serve.accept      daemon drops the N-th accepted connection
//   serve.read        daemon closes a connection at the N-th socket read
//   serve.batch       N-th batched forward fails; every request in the
//                     batch is answered `batch_failed`, the daemon lives
//   serve.reload      N-th checkpoint (re)load fails; a hot reload answers
//                     `reload_failed` and the old model keeps serving
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace mvgnn::fault {

/// Thrown by check() at an armed site's firing hit. Distinct type so tests
/// can tell an injected fault from an organic failure.
struct InjectedFault : std::runtime_error {
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

/// Arms `site` to fire on its `nth` hit (1-based). Re-arming replaces the
/// previous setting and resets the hit counter.
void arm(const std::string& site, std::uint64_t nth);

/// Disarms everything and clears all hit counters.
void disarm_all();

/// True when at least one site is armed. Single relaxed atomic load — the
/// fast path for hot loops.
[[nodiscard]] bool enabled() noexcept;

/// Counts a hit against `site`; returns true exactly on the armed firing
/// hit (false before, after, and whenever the site is not armed).
[[nodiscard]] bool hit(const char* site);

/// Like hit(), but throws InjectedFault("injected fault at <site>") when it
/// fires. The usual form at call sites.
void check(const char* site);

/// The armed threshold for `site` without counting a hit (nullopt when not
/// armed). Used by components that precompute the fault point instead of
/// probing per event — e.g. the interpreter folds "interp.trap" into its
/// step-budget compare.
[[nodiscard]] std::optional<std::uint64_t> armed_nth(const char* site);

/// Hits recorded against `site` since it was last armed (0 if never armed).
[[nodiscard]] std::uint64_t hit_count(const std::string& site);

}  // namespace mvgnn::fault
