#include "fault/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace mvgnn::fault {

namespace {

struct Site {
  std::uint64_t nth = 0;   // 1-based firing hit; 0 = disarmed
  std::uint64_t hits = 0;  // hits since last arm
};

struct State {
  std::mutex mu;
  std::unordered_map<std::string, Site> sites;
};

// Leaked singletons so worker threads may probe sites during teardown.
State& state() {
  static State* s = new State();
  return *s;
}

std::atomic<bool> g_enabled{false};

void refresh_enabled_locked(const State& s) {
  bool any = false;
  for (const auto& [name, site] : s.sites) {
    if (site.nth != 0) any = true;
  }
  g_enabled.store(any, std::memory_order_relaxed);
}

/// Parses MVGNN_FAULT ("site@N,site@N,...") exactly once, before the first
/// lookup. Malformed entries are ignored — fault injection must never be
/// the thing that crashes the pipeline.
void arm_from_env_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("MVGNN_FAULT");
    if (!env) return;
    std::string spec(env);
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      const std::string entry = spec.substr(pos, comma - pos);
      pos = comma + 1;
      const std::size_t at = entry.find('@');
      if (at == std::string::npos || at == 0) continue;
      const char* num = entry.c_str() + at + 1;
      char* end = nullptr;
      const unsigned long long n = std::strtoull(num, &end, 10);
      if (end == num || n == 0) continue;
      arm(entry.substr(0, at), n);
    }
  });
}

}  // namespace

void arm(const std::string& site, std::uint64_t nth) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.sites[site] = Site{nth, 0};
  refresh_enabled_locked(s);
}

void disarm_all() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.sites.clear();
  g_enabled.store(false, std::memory_order_relaxed);
}

bool enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

bool hit(const char* site) {
  arm_from_env_once();
  if (!enabled()) return false;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.sites.find(site);
  if (it == s.sites.end() || it->second.nth == 0) return false;
  return ++it->second.hits == it->second.nth;
}

void check(const char* site) {
  if (hit(site)) {
    throw InjectedFault(std::string("injected fault at ") + site);
  }
}

std::optional<std::uint64_t> armed_nth(const char* site) {
  arm_from_env_once();
  if (!enabled()) return std::nullopt;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.sites.find(site);
  if (it == s.sites.end() || it->second.nth == 0) return std::nullopt;
  return it->second.nth;
}

std::uint64_t hit_count(const std::string& site) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.sites.find(site);
  return it == s.sites.end() ? 0 : it->second.hits;
}

}  // namespace mvgnn::fault
