// IR-to-IR transformation passes.
//
// The paper compiles each source with six clang optimization options to get
// six LLVM-IR variants per program (section IV-A, "Transformed dataset").
// These passes play that role for MiniC IR: they change the instruction mix
// (and hence the inst2vec tokens and graph shapes) while preserving
// semantics and loop labels.
#pragma once

#include <string>
#include <vector>

#include "ir/function.hpp"

namespace mvgnn::transform {

/// Folds constant integer/float arithmetic, comparisons and casts whose
/// operands are immediates. Returns the number of folded instructions.
std::size_t constant_fold(ir::Function& fn);

/// Removes side-effect-free instructions whose results are never used.
/// Returns the number of removed instructions.
std::size_t dead_code_elim(ir::Function& fn);

/// Strength reduction: multiplications/divisions by powers of two become
/// shifts-by-addition chains (x*2 -> x+x), x*1/x+0 simplify away.
/// Returns the number of rewritten instructions.
std::size_t strength_reduce(ir::Function& fn);

/// Inlines calls to small leaf functions (no loops, no further user calls,
/// single return at the end, at most `max_callee_instrs` instructions).
/// Returns the number of call sites inlined. The callee's loop metadata is
/// irrelevant by construction (leaf functions with loops are not inlined),
/// so caller loop metadata stays valid.
std::size_t inline_functions(ir::Module& m, std::size_t max_callee_instrs = 48);

/// Unrolls innermost `for` loops with constant trip count at most
/// `max_trip` by the full factor, replacing the loop with straight-line
/// code. The loop's LoopInfo (and its markers) are removed, so unrolled
/// loops stop being classification samples — exactly what clang -O does to
/// tiny loops before any analysis sees them. Returns loops unrolled.
std::size_t unroll_loops(ir::Function& fn, std::int64_t max_trip = 4);

/// A named pass pipeline applied to every function of a module.
struct Pipeline {
  std::string name;
  bool fold = false;
  bool dce = false;
  bool strength = false;
  bool inline_calls = false;  // module-level, runs before per-function passes
  bool unroll = false;
  int repeat = 1;
};

/// The six variant pipelines used by the dataset builder (variant 0 is the
/// identity, matching -O0).
[[nodiscard]] const std::vector<Pipeline>& variant_pipelines();

/// Applies `p` to every function in `m`.
void run_pipeline(ir::Module& m, const Pipeline& p);

}  // namespace mvgnn::transform
