#include "transform/passes.hpp"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace mvgnn::transform {

namespace {

using ir::InstrId;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

bool has_side_effects(const Instruction& in) {
  switch (in.op) {
    case Opcode::Store:
    case Opcode::StoreIdx:
    case Opcode::Br:
    case Opcode::CondBr:
    case Opcode::Ret:
    case Opcode::Call:  // user calls mutate memory; builtins kept for safety
    case Opcode::LoopEnter:
    case Opcode::LoopHead:
    case Opcode::LoopExit:
      return true;
    default:
      return false;
  }
}

/// Renumbers the arena to contain exactly the placed instructions, in block
/// order, and remaps every register reference. Keeps "arena index ==
/// program order" true after passes delete or orphan instructions.
void compact(ir::Function& fn) {
  std::vector<InstrId> remap(fn.instrs.size(), ir::kNoInstr);
  std::vector<Instruction> fresh;
  for (const ir::BasicBlock& bb : fn.blocks) {
    for (const InstrId id : bb.instrs) {
      remap[id] = static_cast<InstrId>(fresh.size());
      fresh.push_back(std::move(fn.instrs[id]));
    }
  }
  for (ir::BasicBlock& bb : fn.blocks) {
    for (InstrId& id : bb.instrs) id = remap[id];
  }
  for (Instruction& in : fresh) {
    for (Value& v : in.operands) {
      if (v.is_reg()) v.reg = remap[v.reg];
    }
  }
  for (ir::LoopInfo& l : fn.loops) {
    if (l.induction_slot != ir::kNoInstr &&
        remap[l.induction_slot] != ir::kNoInstr) {
      l.induction_slot = remap[l.induction_slot];
    }
  }
  fn.instrs = std::move(fresh);
}

}  // namespace

std::size_t constant_fold(ir::Function& fn) {
  std::unordered_map<InstrId, Value> known;  // reg -> folded immediate
  std::size_t folded = 0;

  auto imm_of = [&known](const Value& v) -> const Value* {
    if (v.is_imm()) return &v;
    if (v.is_reg()) {
      const auto it = known.find(v.reg);
      if (it != known.end()) return &it->second;
    }
    return nullptr;
  };

  for (ir::BasicBlock& bb : fn.blocks) {
    for (const InstrId id : bb.instrs) {
      Instruction& in = fn.instr(id);
      // Propagate already-known constants into operands.
      for (Value& v : in.operands) {
        if (const Value* imm = imm_of(v); imm && &v != imm) v = *imm;
      }
      if (has_side_effects(in) || in.op == Opcode::Alloca ||
          in.op == Opcode::AllocArr || in.op == Opcode::Load ||
          in.op == Opcode::LoadIdx) {
        continue;
      }
      const bool all_imm = [&] {
        for (const Value& v : in.operands) {
          if (!v.is_imm()) return false;
        }
        return !in.operands.empty();
      }();
      if (!all_imm) continue;

      auto iop = [&](std::size_t k) { return in.operands[k].imm_int; };
      auto fop = [&](std::size_t k) { return in.operands[k].imm_float; };
      Value out;
      bool ok = true;
      switch (in.op) {
        case Opcode::Add: out = Value::imm(iop(0) + iop(1)); break;
        case Opcode::Sub: out = Value::imm(iop(0) - iop(1)); break;
        case Opcode::Mul: out = Value::imm(iop(0) * iop(1)); break;
        case Opcode::Div:
          ok = iop(1) != 0;
          if (ok) out = Value::imm(iop(0) / iop(1));
          break;
        case Opcode::Rem:
          ok = iop(1) != 0;
          if (ok) out = Value::imm(iop(0) % iop(1));
          break;
        case Opcode::Neg: out = Value::imm(-iop(0)); break;
        case Opcode::FAdd: out = Value::imm(fop(0) + fop(1)); break;
        case Opcode::FSub: out = Value::imm(fop(0) - fop(1)); break;
        case Opcode::FMul: out = Value::imm(fop(0) * fop(1)); break;
        case Opcode::FDiv: out = Value::imm(fop(0) / fop(1)); break;
        case Opcode::FNeg: out = Value::imm(-fop(0)); break;
        case Opcode::CmpEq: out = Value::imm(std::int64_t{iop(0) == iop(1)}); break;
        case Opcode::CmpNe: out = Value::imm(std::int64_t{iop(0) != iop(1)}); break;
        case Opcode::CmpLt: out = Value::imm(std::int64_t{iop(0) < iop(1)}); break;
        case Opcode::CmpLe: out = Value::imm(std::int64_t{iop(0) <= iop(1)}); break;
        case Opcode::CmpGt: out = Value::imm(std::int64_t{iop(0) > iop(1)}); break;
        case Opcode::CmpGe: out = Value::imm(std::int64_t{iop(0) >= iop(1)}); break;
        case Opcode::And: out = Value::imm(std::int64_t{iop(0) != 0 && iop(1) != 0}); break;
        case Opcode::Or: out = Value::imm(std::int64_t{iop(0) != 0 || iop(1) != 0}); break;
        case Opcode::Not: out = Value::imm(std::int64_t{iop(0) == 0}); break;
        case Opcode::IntToFloat: out = Value::imm(static_cast<double>(iop(0))); break;
        case Opcode::FloatToInt: out = Value::imm(static_cast<std::int64_t>(fop(0))); break;
        default: ok = false; break;
      }
      if (ok) {
        known.emplace(id, out);
        ++folded;
      }
    }
  }
  return folded;
}

std::size_t strength_reduce(ir::Function& fn) {
  std::size_t changed = 0;
  // Identity rewrites (x*1, x+0, x-0) forward the operand into later uses.
  std::unordered_map<InstrId, Value> forward;
  auto resolve = [&forward](Value v) {
    while (v.is_reg()) {
      const auto it = forward.find(v.reg);
      if (it == forward.end()) break;
      v = it->second;
    }
    return v;
  };

  for (ir::BasicBlock& bb : fn.blocks) {
    for (const InstrId id : bb.instrs) {
      Instruction& in = fn.instr(id);
      for (Value& v : in.operands) v = resolve(v);

      auto is_int_const = [&](std::size_t k, std::int64_t c) {
        return in.operands.size() > k &&
               in.operands[k].kind == Value::Kind::ImmInt &&
               in.operands[k].imm_int == c;
      };
      switch (in.op) {
        case Opcode::Mul:
          if (is_int_const(1, 1)) {
            forward.emplace(id, in.operands[0]);
            ++changed;
          } else if (is_int_const(0, 1)) {
            forward.emplace(id, in.operands[1]);
            ++changed;
          } else if (is_int_const(1, 2)) {
            in.op = Opcode::Add;  // x*2 -> x+x
            in.operands[1] = in.operands[0];
            ++changed;
          }
          break;
        case Opcode::Add:
          if (is_int_const(1, 0)) {
            forward.emplace(id, in.operands[0]);
            ++changed;
          } else if (is_int_const(0, 0)) {
            forward.emplace(id, in.operands[1]);
            ++changed;
          }
          break;
        case Opcode::Sub:
          if (is_int_const(1, 0)) {
            forward.emplace(id, in.operands[0]);
            ++changed;
          }
          break;
        default:
          break;
      }
    }
  }
  return changed;
}

std::size_t dead_code_elim(ir::Function& fn) {
  // Dead-store pre-pass: a Store into a scalar slot that is never loaded
  // anywhere in the function has no observable effect.
  std::unordered_set<InstrId> loaded_slots;
  for (const Instruction& in : fn.instrs) {
    if (in.op == Opcode::Load && in.operands[0].is_reg()) {
      loaded_slots.insert(in.operands[0].reg);
    }
  }
  auto dead_store = [&](const Instruction& in) {
    return in.op == Opcode::Store && in.operands[0].is_reg() &&
           !loaded_slots.count(in.operands[0].reg);
  };

  // Mark: everything with side effects is live; liveness flows into
  // register operands until fixpoint.
  std::vector<char> live(fn.instrs.size(), 0);
  std::vector<InstrId> worklist;
  for (const ir::BasicBlock& bb : fn.blocks) {
    for (const InstrId id : bb.instrs) {
      if (has_side_effects(fn.instr(id)) && !dead_store(fn.instr(id))) {
        live[id] = 1;
        worklist.push_back(id);
      }
    }
  }
  while (!worklist.empty()) {
    const InstrId id = worklist.back();
    worklist.pop_back();
    for (const Value& v : fn.instr(id).operands) {
      if (v.is_reg() && !live[v.reg]) {
        live[v.reg] = 1;
        worklist.push_back(v.reg);
      }
    }
  }
  // Sweep.
  std::size_t removed = 0;
  for (ir::BasicBlock& bb : fn.blocks) {
    const auto old = bb.instrs.size();
    std::erase_if(bb.instrs, [&live](InstrId id) { return !live[id]; });
    removed += old - bb.instrs.size();
  }
  // Always compact: other passes (unrolling, inlining) orphan arena entries
  // without unplacing anything through this sweep.
  compact(fn);
  return removed;
}

const std::vector<Pipeline>& variant_pipelines() {
  static const std::vector<Pipeline> pipelines = {
      {"O0-none", false, false, false, false, false, 1},
      {"O1-fold", true, false, false, false, false, 1},
      {"O1-dce", false, true, false, false, false, 1},
      {"O2-fold-dce", true, true, false, false, false, 1},
      {"O2-strength", true, true, true, false, false, 1},
      {"O3-inline-unroll", true, true, true, true, true, 2},
  };
  return pipelines;
}

void run_pipeline(ir::Module& m, const Pipeline& p) {
  if (p.inline_calls) inline_functions(m);
  for (auto& fn : m.functions) {
    for (int r = 0; r < p.repeat; ++r) {
      if (p.fold) constant_fold(*fn);
      if (p.strength) strength_reduce(*fn);
      if (p.unroll) unroll_loops(*fn);
      if (p.dce) dead_code_elim(*fn);
    }
    ir::verify(*fn);
  }
}

}  // namespace mvgnn::transform
