// The parallelize pass: turns suggestion-layer verdicts into an executable
// parallel plan, runs it, and proves it equivalent.
//
// This closes the loop the paper leaves open — discovery verdicts (DOALL /
// reduction) are *acted on*: plan_parallel re-validates each suggested loop
// against the IR shape and the dynamic dependence profile (a mislabeled
// loop is refused, never miscompiled), emits a profiler::ParPlan, and
// run_equivalence executes sequential vs. parallel and compares the
// observable outputs (final array-argument memory + return value).
//
// Safety model (docs/parallelize.md): a loop is planned only when
//   1. the suggestion's own classification is DOALL or reduction, AND
//   2. oracle_pattern over the dependence profile agrees (the profile is
//      the authority: a label that contradicts it is refused), AND
//   3. the IR matches the canonical for-loop shape (recoverable bounds,
//      single latch increment, no early exit, no other store to the
//      induction variable), AND
//   4. every write target classifies cleanly: reduction chain, privatizable
//      scalar/local array, or an iteration-disjoint shared array.
// Verdicts 2 and 4 are dynamic: they hold for the profiled inputs (the same
// inputs run_equivalence replays), exactly like DiscoPoP's hybrid verdicts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/suggest.hpp"
#include "profiler/par_exec.hpp"
#include "profiler/profile.hpp"

namespace mvgnn::transform {

/// Outcome of planning one suggested loop.
struct LoopDecision {
  const ir::Function* fn = nullptr;
  ir::LoopId loop = ir::kNoLoop;
  int start_line = 0;
  int end_line = 0;
  analysis::ParKind kind = analysis::ParKind::Sequential;
  bool planned = false;
  std::string pragma;  // the suggestion's pragma (planned loops only)
  std::string reason;  // why the loop was refused (empty when planned)
};

struct ParallelPlanResult {
  profiler::ParPlan plan;
  std::vector<LoopDecision> decisions;

  [[nodiscard]] std::size_t planned_loops() const {
    std::size_t n = 0;
    for (const LoopDecision& d : decisions) n += d.planned;
    return n;
  }
};

/// Builds a parallel plan for the entry function from ranked suggestions.
/// Every suggested parallel loop is either planned or refused with a
/// reason; loops outside the entry function are refused (the parallel
/// engine shards only entry-frame loops).
[[nodiscard]] ParallelPlanResult plan_parallel(
    const ir::Module& m, const std::string& entry,
    const std::vector<analysis::Suggestion>& suggestions,
    const profiler::ProfileResult& prof);

/// Sequential vs. parallel execution with output comparison.
struct EquivalenceReport {
  bool ran = false;    // both runs completed without faulting
  bool equal = false;  // observable outputs match (see compare rules)
  std::string detail;  // first mismatch / fault description
  std::uint64_t parallel_loops = 0;  // sharded loop instances in the par run
  std::uint64_t seq_steps = 0;
  std::uint64_t par_steps = 0;
  double seq_seconds = 0.0;  // wall time of the captured sequential run
  double par_seconds = 0.0;  // wall time of the parallel run
};

/// Runs `entry(args...)` sequentially (profiler::run_capture) and in
/// parallel mode under `plan`, then compares the observable outputs: final
/// contents of every array argument plus the return value. Integer data and
/// min/max-reduced floats must match bit-for-bit; float +/* reduction
/// targets are compared within relative tolerance `float_tol` (the shards
/// re-associate those sums/products — see the determinism contract).
[[nodiscard]] EquivalenceReport run_equivalence(
    const ir::Module& m, const std::string& entry,
    std::span<const profiler::ArgInit> args, const profiler::ParPlan& plan,
    std::uint32_t threads, const profiler::InterpOptions& opts = {},
    double float_tol = 1e-9);

/// Inserts each planned loop's pragma line directly above the loop
/// statement in the MiniC source, matching its indentation. Refused loops
/// are left untouched.
[[nodiscard]] std::string annotate_source(const std::string& source,
                                          const ParallelPlanResult& result);

}  // namespace mvgnn::transform
