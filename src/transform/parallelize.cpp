#include "transform/parallelize.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <unordered_set>

#include "analysis/reduction.hpp"
#include "analysis/tools.hpp"

namespace mvgnn::transform {

namespace {

using analysis::ArrayKey;
using analysis::ParKind;
using analysis::ReductionChain;
using analysis::ReductionOp;
using ir::Function;
using ir::Instruction;
using ir::InstrId;
using ir::LoopId;
using ir::Opcode;
using ir::TypeKind;
using ir::Value;
using profiler::ParArrayRef;
using profiler::ParLoop;
using profiler::ParReduceOp;

ParReduceOp to_par_op(ReductionOp op) {
  switch (op) {
    case ReductionOp::Sum: return ParReduceOp::Sum;
    case ReductionOp::Product: return ParReduceOp::Product;
    case ReductionOp::Min: return ParReduceOp::Min;
    case ReductionOp::Max: return ParReduceOp::Max;
  }
  return ParReduceOp::Sum;
}

bool object_matches(const profiler::MemObject& o, const Function* fn,
                    const ArrayKey& key) {
  switch (key.kind) {
    case ArrayKey::Kind::Arg:
      return o.kind == profiler::ObjKind::ArgArray &&
             o.name == fn->params[key.arg].name;
    case ArrayKey::Kind::Local:
      return o.kind == profiler::ObjKind::ArrayLocal && o.fn == fn &&
             o.alloca_id == key.alloca_id;
    case ArrayKey::Kind::Unknown:
      return false;
  }
  return false;
}

/// Dynamic dependence evidence for one static array inside one loop, folded
/// over every runtime object the array materialized as.
struct DynEvidence {
  bool seen = false;
  bool carried_raw = false;
  bool carried_war = false;
  bool carried_waw = false;
};

DynEvidence dyn_evidence(const profiler::DepProfile& dep, const Function* fn,
                         LoopId l, const ArrayKey& key) {
  DynEvidence ev;
  const auto it = dep.loop_objects.find(profiler::LoopRef{fn, l});
  if (it == dep.loop_objects.end()) return ev;
  for (const auto& [obj_id, summary] : it->second) {
    if (!object_matches(dep.objects.object(obj_id), fn, key)) continue;
    ev.seen = true;
    ev.carried_raw |= summary.carried_raw;
    ev.carried_war |= summary.carried_war;
    ev.carried_waw |= summary.carried_waw;
  }
  return ev;
}

std::string array_name(const Function& fn, const ArrayKey& key) {
  if (key.kind == ArrayKey::Kind::Arg) return fn.params[key.arg].name;
  if (key.kind == ArrayKey::Kind::Local) return fn.instr(key.alloca_id).name;
  return "?";
}

/// Plans one suggested loop. Returns the empty string and fills `out` on
/// success; otherwise returns the refusal reason.
std::string plan_loop(const Function& fn, LoopId l,
                      const profiler::ProfileResult& prof, ParLoop& out) {
  const ir::LoopInfo& loop = fn.loops[l];
  const InstrId iv = loop.induction_slot;
  if (iv == ir::kNoInstr) return "no induction variable recorded";

  // The dependence profile is the authority: a suggestion whose label
  // contradicts it (e.g. an oracle-label override on a recurrence) is
  // refused here rather than miscompiled.
  if (analysis::oracle_pattern(fn, l, prof.dep) == ParKind::Sequential) {
    return "dependence profile contradicts the parallel label";
  }
  if (analysis::has_early_exit(fn, l)) {
    return "loop has an early exit (break/return)";
  }

  // Canonical shape: recoverable bounds and a single latch increment.
  const analysis::LoopBounds bounds = analysis::derive_bounds(fn, l);
  if (!bounds.known || bounds.step == 0) {
    return "loop bounds not statically recoverable";
  }
  out.loop = l;
  out.step = bounds.step;

  // Every store to the induction variable must be the latch increment.
  for (InstrId id = 0; id < fn.instrs.size(); ++id) {
    const Instruction& in = fn.instr(id);
    if (in.op != Opcode::Store || !in.operands[0].is_reg() ||
        in.operands[0].reg != iv ||
        !profiler::instr_in_loop(fn, id, l)) {
      continue;
    }
    const auto& latch = fn.block(loop.latch).instrs;
    if (std::find(latch.begin(), latch.end(), id) == latch.end()) {
      return "induction variable is modified inside the loop body";
    }
  }

  // Re-match the header compare to record the bound recipe the parallel
  // engine re-evaluates at LoopEnter.
  auto is_load_of_iv = [&](const Value& v) {
    return v.is_reg() && fn.instr(v.reg).op == Opcode::Load &&
           fn.instr(v.reg).operands[0].is_reg() &&
           fn.instr(v.reg).operands[0].reg == iv;
  };
  const ir::BasicBlock& header = fn.block(loop.header);
  const Instruction& term = fn.instr(header.instrs.back());
  if (term.op != Opcode::CondBr || !term.operands[0].is_reg()) {
    return "header does not end in a conditional branch";
  }
  if (!term.operands[2].is_block() || term.operands[2].block != loop.exit) {
    return "header branch does not fall through to the loop exit";
  }
  const Instruction& cmp = fn.instr(term.operands[0].reg);
  switch (cmp.op) {
    case Opcode::CmpLt:
    case Opcode::CmpLe:
      if (bounds.step < 0) return "bound direction contradicts the step";
      break;
    case Opcode::CmpGt:
    case Opcode::CmpGe:
      if (bounds.step > 0) return "bound direction contradicts the step";
      break;
    default:
      return "header compare is not an integer ordering";
  }
  if (!is_load_of_iv(cmp.operands[0])) {
    return "header compare is not 'iv OP bound'";
  }
  const analysis::AffineExpr bound_expr =
      analysis::analyze_affine(fn, l, cmp.operands[1]);
  if (!bound_expr.affine || !bound_expr.iv_coeffs.empty()) {
    return "loop bound is not loop-invariant affine";
  }
  out.bound.value = cmp.operands[1];
  out.bound.cmp = cmp.op;

  // Reduction chains. Mixed operators on one accumulator have no single
  // identity/merge, so they are refused.
  const std::vector<ReductionChain> chains = analysis::detect_reductions(fn, l);
  std::map<InstrId, ParReduceOp> scalar_red;  // slot -> op
  std::map<ArrayKey, ParReduceOp> array_red;
  for (const ReductionChain& c : chains) {
    if (c.is_array) {
      if (c.array.kind == ArrayKey::Kind::Unknown) {
        return "reduction on an unidentifiable array";
      }
      auto [it, fresh] = array_red.try_emplace(c.array, to_par_op(c.op));
      if (!fresh && it->second != to_par_op(c.op)) {
        return "mixed reduction operators on array '" +
               array_name(fn, c.array) + "'";
      }
    } else {
      auto [it, fresh] = scalar_red.try_emplace(c.scalar_slot, to_par_op(c.op));
      if (!fresh && it->second != to_par_op(c.op)) {
        return "mixed reduction operators on '" + fn.instr(c.scalar_slot).name +
               "'";
      }
    }
  }
  for (const auto& [slot, op] : scalar_red) {
    out.scalar_reductions.push_back(profiler::ParScalarReduction{
        slot, op, fn.instr(slot).type == TypeKind::Float});
  }
  auto array_ref = [&](const ArrayKey& key) {
    ParArrayRef r;
    r.is_arg = key.kind == ArrayKey::Kind::Arg;
    r.arg = key.arg;
    r.alloca_id = key.alloca_id;
    return r;
  };
  for (const auto& [key, op] : array_red) {
    const bool is_float = key.kind == ArrayKey::Kind::Arg
                              ? fn.params[key.arg].type == TypeKind::ArrFloat
                              : fn.instr(key.alloca_id).type == TypeKind::ArrFloat;
    out.array_reductions.push_back(
        profiler::ParArrayReduction{array_ref(key), op, is_float});
  }

  // Privatized scalars: every slot stored inside the loop whose Alloca
  // lives outside it, minus the induction variable and the accumulators.
  // (Slots alloca'd inside the loop are shard-arena locals automatically.)
  std::set<InstrId> stored_slots;
  for (InstrId id = 0; id < fn.instrs.size(); ++id) {
    const Instruction& in = fn.instr(id);
    if (in.op == Opcode::Store && in.operands[0].is_reg() &&
        profiler::instr_in_loop(fn, id, l)) {
      stored_slots.insert(in.operands[0].reg);
    }
  }
  for (const InstrId slot : stored_slots) {
    if (slot == iv || scalar_red.count(slot)) continue;
    if (profiler::instr_in_loop(fn, slot, l)) continue;
    out.private_slots.push_back(slot);
  }

  // Written arrays: classify each as reduction target (handled above),
  // iteration-disjoint shared, privatizable local temp — or refuse.
  const std::vector<analysis::ArrayAccess> accesses =
      analysis::collect_array_accesses(fn, l);
  struct ArrayUse {
    bool written = false;
    bool writes_disjoint = true;  // every write index affine, iv coeff != 0
  };
  std::map<ArrayKey, ArrayUse> uses;
  for (const analysis::ArrayAccess& a : accesses) {
    ArrayUse& u = uses[a.array];
    if (!a.is_write) continue;
    u.written = true;
    if (!a.index.affine || a.index.coeff_of(iv) == 0) {
      u.writes_disjoint = false;
    }
  }
  for (const auto& [key, use] : uses) {
    if (!use.written || array_red.count(key)) continue;
    if (key.kind == ArrayKey::Kind::Unknown) {
      return "write through an unidentifiable array reference";
    }
    if (key.kind == ArrayKey::Kind::Local &&
        profiler::instr_in_loop(fn, key.alloca_id, l)) {
      continue;  // allocated per iteration: shard-arena local
    }
    const DynEvidence ev = dyn_evidence(prof.dep, &fn, l, key);
    if (ev.carried_raw) {
      return "loop-carried flow dependence on array '" + array_name(fn, key) +
             "'";
    }
    const bool clean_dynamic = ev.seen && !ev.carried_war && !ev.carried_waw;
    if (use.writes_disjoint || (key.kind == ArrayKey::Kind::Arg && clean_dynamic)) {
      continue;  // iteration-disjoint writes: safe to share
    }
    if (key.kind == ArrayKey::Kind::Local) {
      // Per-iteration temp: private copy, last-storing-shard copy-out.
      out.private_arrays.push_back(array_ref(key));
      continue;
    }
    return "write pattern on array '" + array_name(fn, key) +
           "' is neither disjoint nor a reduction";
  }
  return "";
}

}  // namespace

ParallelPlanResult plan_parallel(
    const ir::Module& m, const std::string& entry,
    const std::vector<analysis::Suggestion>& suggestions,
    const profiler::ProfileResult& prof) {
  (void)m;
  ParallelPlanResult res;
  res.plan.fn = entry;
  for (const analysis::Suggestion& s : suggestions) {
    if (s.kind == ParKind::Sequential || !s.fn) continue;
    LoopDecision d;
    d.fn = s.fn;
    d.loop = s.loop;
    d.start_line = s.start_line;
    d.end_line = s.end_line;
    d.kind = s.kind;
    d.pragma = s.pragma;
    if (s.fn->name != entry) {
      d.reason = "loop is outside the entry function";
      res.decisions.push_back(std::move(d));
      continue;
    }
    ParLoop pl;
    d.reason = plan_loop(*s.fn, s.loop, prof, pl);
    d.planned = d.reason.empty();
    if (d.planned) res.plan.loops.push_back(std::move(pl));
    res.decisions.push_back(std::move(d));
  }
  return res;
}

namespace {

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool within_tol(double a, double b, double tol) {
  if (bits_equal(a, b)) return true;
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace

EquivalenceReport run_equivalence(const ir::Module& m, const std::string& entry,
                                  std::span<const profiler::ArgInit> args,
                                  const profiler::ParPlan& plan,
                                  std::uint32_t threads,
                                  const profiler::InterpOptions& opts,
                                  double float_tol) {
  using clock = std::chrono::steady_clock;
  EquivalenceReport rep;
  const Function* fn = m.find(entry);
  if (!fn) {
    rep.detail = "entry function '" + entry + "' not found";
    return rep;
  }

  profiler::CapturedRun seq;
  profiler::ParOutput par;
  try {
    const auto t0 = clock::now();
    seq = profiler::run_capture(m, entry, args, opts);
    const auto t1 = clock::now();
    profiler::ParRunOptions popts;
    static_cast<profiler::InterpOptions&>(popts) = opts;
    popts.threads = threads;
    par = profiler::run_parallel(m, entry, args, plan, popts);
    const auto t2 = clock::now();
    rep.seq_seconds = std::chrono::duration<double>(t1 - t0).count();
    rep.par_seconds = std::chrono::duration<double>(t2 - t1).count();
  } catch (const profiler::InterpError& e) {
    rep.detail = std::string("run faulted: ") + e.what();
    return rep;
  }
  rep.ran = true;
  rep.parallel_loops = par.parallel_loops;
  rep.seq_steps = seq.run.steps;
  rep.par_steps = par.run.steps;

  // Which outputs the shards re-associate: float +/* scalar reductions show
  // up in the return value, float +/* array reductions in that argument.
  bool ret_tolerant = false;
  std::set<std::uint32_t> tolerant_args;
  for (const ParLoop& pl : plan.loops) {
    for (const profiler::ParScalarReduction& r : pl.scalar_reductions) {
      if (r.is_float &&
          (r.op == ParReduceOp::Sum || r.op == ParReduceOp::Product)) {
        ret_tolerant = true;
      }
    }
    for (const profiler::ParArrayReduction& r : pl.array_reductions) {
      if (r.array.is_arg && r.is_float &&
          (r.op == ParReduceOp::Sum || r.op == ParReduceOp::Product)) {
        tolerant_args.insert(r.array.arg);
      }
    }
  }

  auto mismatch = [&](std::string d) {
    rep.equal = false;
    rep.detail = std::move(d);
  };
  rep.equal = true;

  for (std::size_t a = 0; a < fn->params.size(); ++a) {
    const TypeKind t = fn->params[a].type;
    if (t != TypeKind::ArrInt && t != TypeKind::ArrFloat) continue;
    const auto& s = seq.arg_arrays[a];
    const auto& p = par.arg_arrays[a];
    if (s.size() != p.size()) {
      mismatch("arg '" + fn->params[a].name + "': size " +
               std::to_string(s.size()) + " vs " + std::to_string(p.size()));
      return rep;
    }
    const bool tol = tolerant_args.count(static_cast<std::uint32_t>(a)) > 0;
    for (std::size_t k = 0; k < s.size(); ++k) {
      bool ok;
      std::ostringstream diff;
      if (t == TypeKind::ArrInt) {
        ok = s[k].i == p[k].i;
        if (!ok) diff << s[k].i << " vs " << p[k].i;
      } else if (tol) {
        ok = within_tol(s[k].f, p[k].f, float_tol);
        if (!ok) diff << s[k].f << " vs " << p[k].f;
      } else {
        ok = bits_equal(s[k].f, p[k].f);
        if (!ok) diff << s[k].f << " vs " << p[k].f;
      }
      if (!ok) {
        mismatch("arg '" + fn->params[a].name + "'[" + std::to_string(k) +
                 "]: " + diff.str());
        return rep;
      }
    }
  }

  const profiler::RtVal& sr = seq.run.return_value;
  const profiler::RtVal& pr = par.run.return_value;
  if (sr.kind == profiler::RtVal::Kind::Int &&
      pr.kind == profiler::RtVal::Kind::Int) {
    if (sr.i != pr.i) {
      mismatch("return value: " + std::to_string(sr.i) + " vs " +
               std::to_string(pr.i));
    }
  } else if (sr.kind == profiler::RtVal::Kind::Float &&
             pr.kind == profiler::RtVal::Kind::Float) {
    const bool ok = ret_tolerant ? within_tol(sr.f, pr.f, float_tol)
                                 : bits_equal(sr.f, pr.f);
    if (!ok) {
      mismatch("return value: " + std::to_string(sr.f) + " vs " +
               std::to_string(pr.f));
    }
  }
  return rep;
}

std::string annotate_source(const std::string& source,
                            const ParallelPlanResult& result) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : source) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(std::move(cur));

  // (line, pragma), deduplicated, inserted bottom-up so earlier insertions
  // do not shift later line numbers.
  std::set<std::pair<int, std::string>> pragmas;
  for (const LoopDecision& d : result.decisions) {
    if (d.planned && d.start_line >= 1 && !d.pragma.empty()) {
      pragmas.emplace(d.start_line, d.pragma);
    }
  }
  for (auto it = pragmas.rbegin(); it != pragmas.rend(); ++it) {
    const std::size_t at =
        std::min<std::size_t>(static_cast<std::size_t>(it->first) - 1,
                              lines.size());
    std::string indent;
    if (at < lines.size()) {
      const std::string& l = lines[at];
      indent = l.substr(0, l.find_first_not_of(" \t"));
    }
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at),
                 indent + it->second);
  }

  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace mvgnn::transform
