// Function inlining and full loop unrolling — the heavyweight members of
// the variant-pipeline family (what clang -O2/-O3 do to small callees and
// tiny loops before any analysis sees them).
#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "analysis/affine.hpp"
#include "frontend/sema.hpp"
#include "transform/passes.hpp"

namespace mvgnn::transform {

namespace {

using ir::BasicBlock;
using ir::BlockId;
using ir::Function;
using ir::InstrId;
using ir::Instruction;
using ir::LoopId;
using ir::Opcode;
using ir::Value;

/// True when `fn` is a small leaf suitable for inlining: no loops, no user
/// calls, and small enough.
bool inlinable_leaf(const ir::Module& m, const Function& fn,
                    std::size_t max_instrs) {
  if (!fn.loops.empty()) return false;
  std::size_t placed = 0;
  for (const BasicBlock& bb : fn.blocks) {
    for (const InstrId id : bb.instrs) {
      ++placed;
      const Instruction& in = fn.instr(id);
      if (in.op == Opcode::Call && !frontend::find_builtin(in.callee)) {
        return false;
      }
    }
  }
  (void)m;
  return placed <= max_instrs;
}

/// Is `block` structurally load-bearing for any loop of `fn` (header,
/// latch, preheader or exit)? Splitting such a block would corrupt the
/// loop metadata.
bool loop_structural_block(const Function& fn, BlockId block) {
  for (const ir::LoopInfo& l : fn.loops) {
    if (l.header == block || l.latch == block || l.preheader == block ||
        l.exit == block) {
      return true;
    }
  }
  return false;
}

/// Inlines one call site. `call_block`/`call_pos` locate the Call inside
/// `caller`. Returns true on success.
bool inline_call_site(Function& caller, const Function& callee,
                      BlockId call_block, std::size_t call_pos) {
  BasicBlock& bb = caller.blocks[call_block];
  const InstrId call_id = bb.instrs[call_pos];
  const Instruction call = caller.instr(call_id);  // copy: arena may realloc
  const LoopId site_loop = call.loop;

  // ---- split the caller block: B = [prefix], POST = [suffix] -----------
  const BlockId post_id = static_cast<BlockId>(caller.blocks.size());
  {
    BasicBlock post;
    post.id = post_id;
    post.label = "inl.post";
    post.instrs.assign(bb.instrs.begin() + call_pos + 1, bb.instrs.end());
    caller.blocks.push_back(std::move(post));
  }
  caller.blocks[call_block].instrs.resize(call_pos);

  auto append_instr = [&caller](BlockId block, Instruction in) {
    const InstrId id = static_cast<InstrId>(caller.instrs.size());
    caller.instrs.push_back(std::move(in));
    caller.blocks[block].instrs.push_back(id);
    return id;
  };

  // Return-value slot (void callees need none).
  InstrId ret_slot = ir::kNoInstr;
  if (callee.return_type != ir::TypeKind::Void) {
    Instruction slot;
    slot.op = Opcode::Alloca;
    slot.type = callee.return_type;
    slot.name = "inl.ret";
    slot.loc = call.loc;
    slot.loop = site_loop;
    ret_slot = append_instr(call_block, std::move(slot));
  }

  // ---- clone the callee body ----------------------------------------
  // Block id mapping: callee block b -> caller block base + b.
  const BlockId base = static_cast<BlockId>(caller.blocks.size());
  for (const BasicBlock& cb : callee.blocks) {
    BasicBlock nb;
    nb.id = static_cast<BlockId>(base + cb.id);
    nb.label = "inl." + (cb.label.empty() ? std::to_string(cb.id) : cb.label);
    caller.blocks.push_back(std::move(nb));
  }
  // Instruction id mapping, filled while cloning in placement order.
  std::unordered_map<InstrId, InstrId> imap;
  for (const BasicBlock& cb : callee.blocks) {
    for (const InstrId cid : cb.instrs) {
      Instruction in = callee.instr(cid);
      in.loop = site_loop;
      // Remap operands.
      bool is_ret = (in.op == Opcode::Ret);
      for (Value& v : in.operands) {
        switch (v.kind) {
          case Value::Kind::Reg: v.reg = imap.at(v.reg); break;
          case Value::Kind::Arg: v = call.operands[v.arg]; break;
          case Value::Kind::Block: v.block = base + v.block; break;
          default: break;
        }
      }
      if (is_ret) {
        // ret v  =>  store ret_slot, v ; br POST
        if (!in.operands.empty() && ret_slot != ir::kNoInstr) {
          Instruction st;
          st.op = Opcode::Store;
          st.type = ir::TypeKind::Void;
          st.operands = {Value::reg_of(ret_slot), in.operands[0]};
          st.loc = in.loc;
          st.loop = site_loop;
          append_instr(base + cb.id, std::move(st));
        }
        Instruction br;
        br.op = Opcode::Br;
        br.type = ir::TypeKind::Void;
        br.operands = {Value::block_of(post_id)};
        br.loc = in.loc;
        br.loop = site_loop;
        const InstrId nid = append_instr(base + cb.id, std::move(br));
        imap.emplace(cid, nid);
      } else {
        const InstrId nid = append_instr(base + cb.id, std::move(in));
        imap.emplace(cid, nid);
      }
    }
  }

  // ---- stitch: B -> callee entry; call uses -> load of ret_slot --------
  {
    Instruction br;
    br.op = Opcode::Br;
    br.type = ir::TypeKind::Void;
    br.operands = {Value::block_of(base)};  // callee entry is block 0
    br.loc = call.loc;
    br.loop = site_loop;
    append_instr(call_block, std::move(br));
  }
  InstrId ret_load = ir::kNoInstr;
  if (ret_slot != ir::kNoInstr) {
    Instruction ld;
    ld.op = Opcode::Load;
    ld.type = callee.return_type;
    ld.operands = {Value::reg_of(ret_slot)};
    ld.loc = call.loc;
    ld.loop = site_loop;
    // Prepend to POST.
    const InstrId id = static_cast<InstrId>(caller.instrs.size());
    caller.instrs.push_back(std::move(ld));
    auto& post = caller.blocks[post_id].instrs;
    post.insert(post.begin(), id);
    ret_load = id;
  }
  // Rewrite every use of the call's register.
  for (Instruction& in : caller.instrs) {
    for (Value& v : in.operands) {
      if (v.is_reg() && v.reg == call_id) {
        v = (ret_load != ir::kNoInstr) ? Value::reg_of(ret_load)
                                       : Value();  // void call: no uses exist
      }
    }
  }
  return true;
}

}  // namespace

std::size_t inline_functions(ir::Module& m, std::size_t max_callee_instrs) {
  std::size_t inlined = 0;
  for (auto& fn : m.functions) {
    bool changed = true;
    int guard = 0;
    while (changed && guard++ < 8) {
      changed = false;
      for (BlockId b = 0; b < fn->blocks.size() && !changed; ++b) {
        if (loop_structural_block(*fn, b)) continue;
        const auto& instrs = fn->blocks[b].instrs;
        for (std::size_t pos = 0; pos < instrs.size(); ++pos) {
          const Instruction& in = fn->instr(instrs[pos]);
          if (in.op != Opcode::Call || frontend::find_builtin(in.callee)) {
            continue;
          }
          const ir::Function* callee = m.find(in.callee);
          if (!callee || callee == fn.get() ||
              !inlinable_leaf(m, *callee, max_callee_instrs)) {
            continue;
          }
          if (inline_call_site(*fn, *callee, b, pos)) {
            ++inlined;
            changed = true;
            break;
          }
        }
      }
    }
    if (inlined) ir::verify(*fn);
  }
  return inlined;
}

// ---------------------------------------------------------------------------
// Loop unrolling
// ---------------------------------------------------------------------------

namespace {

/// Candidate: innermost for-loop whose subtree is exactly {header, one body
/// block, latch} with body -> latch -> header edges and a constant trip
/// count <= max_trip.
struct UnrollPlan {
  LoopId loop = ir::kNoLoop;
  std::int64_t trip = 0;
};

bool find_candidate(const Function& fn, std::int64_t max_trip,
                    UnrollPlan& plan) {
  for (const ir::LoopInfo& l : fn.loops) {
    if (!l.is_for) continue;
    // Innermost only.
    bool has_child = false;
    for (const ir::LoopInfo& other : fn.loops) {
      if (other.parent == l.id) has_child = true;
    }
    if (has_child) continue;
    const analysis::LoopBounds b = analysis::derive_bounds(fn, l.id);
    if (!b.constant_trip || b.step <= 0) continue;
    const std::int64_t trip =
        b.hi > b.lo ? (b.hi - b.lo + b.step - 1) / b.step : 0;
    if (trip > max_trip) continue;
    // Shape check: the loop's blocks are exactly body and latch, body ends
    // br latch, latch ends br header (no break/continue/ifs inside).
    if (l.body == l.latch) continue;
    const BasicBlock& body = fn.block(l.body);
    const BasicBlock& latch = fn.block(l.latch);
    const Instruction& bt = fn.instr(body.instrs.back());
    const Instruction& lt = fn.instr(latch.instrs.back());
    if (bt.op != Opcode::Br || bt.operands[0].block != l.latch) continue;
    if (lt.op != Opcode::Br || lt.operands[0].block != l.header) continue;
    bool extra_block = false;
    for (const BasicBlock& bb : fn.blocks) {
      if (bb.id == l.body || bb.id == l.latch) continue;
      for (const InstrId id : bb.instrs) {
        if (fn.instr(id).loop == l.id && bb.id != l.header &&
            bb.id != l.preheader && bb.id != l.exit) {
          extra_block = true;
        }
      }
    }
    if (extra_block) continue;
    plan.loop = l.id;
    plan.trip = trip;
    return true;
  }
  return false;
}

void apply_unroll(Function& fn, const UnrollPlan& plan) {
  const ir::LoopInfo l = fn.loops[plan.loop];  // copy
  const LoopId parent = l.parent;

  // Collect the loop's straight-line payload (body without its terminator,
  // then latch without its terminator).
  std::vector<InstrId> payload;
  {
    const auto& bi = fn.block(l.body).instrs;
    payload.insert(payload.end(), bi.begin(), bi.end() - 1);
    const auto& li = fn.block(l.latch).instrs;
    payload.insert(payload.end(), li.begin(), li.end() - 1);
  }

  // Rebuild the preheader: strip LoopEnter, then splice `trip` clones of
  // the payload directly into it, then jump to the exit block.
  BasicBlock& pre = fn.blocks[l.preheader];
  pre.instrs.clear();
  for (std::int64_t k = 0; k < plan.trip; ++k) {
    std::unordered_map<InstrId, InstrId> imap;
    for (const InstrId src : payload) {
      Instruction in = fn.instr(src);
      in.loop = parent;
      for (Value& v : in.operands) {
        if (v.is_reg()) {
          const auto it = imap.find(v.reg);
          if (it != imap.end()) v.reg = it->second;
        }
      }
      const InstrId nid = static_cast<InstrId>(fn.instrs.size());
      fn.instrs.push_back(std::move(in));
      pre.instrs.push_back(nid);
      imap.emplace(src, nid);
    }
  }
  {
    Instruction br;
    br.op = Opcode::Br;
    br.type = ir::TypeKind::Void;
    br.operands = {Value::block_of(l.exit)};
    br.loop = parent;
    const InstrId nid = static_cast<InstrId>(fn.instrs.size());
    fn.instrs.push_back(std::move(br));
    pre.instrs.push_back(nid);
  }

  // Strip the LoopExit marker from the exit block.
  auto& exit_instrs = fn.blocks[l.exit].instrs;
  std::erase_if(exit_instrs, [&fn, &l](InstrId id) {
    const Instruction& in = fn.instr(id);
    return in.op == Opcode::LoopExit && in.loop == l.id;
  });

  // Empty the now-unreachable header/body/latch by replacing their contents
  // with a bare branch to the exit (keeps every block well-formed without
  // renumbering).
  for (const BlockId dead : {l.header, l.body, l.latch}) {
    Instruction br;
    br.op = Opcode::Br;
    br.type = ir::TypeKind::Void;
    br.operands = {Value::block_of(l.exit)};
    br.loop = parent;
    const InstrId nid = static_cast<InstrId>(fn.instrs.size());
    fn.instrs.push_back(std::move(br));
    fn.blocks[dead].instrs.clear();
    fn.blocks[dead].instrs.push_back(nid);
  }

  // Delete the LoopInfo and renumber the remaining loops (LoopId is an
  // index): fix parents, ids, and every instruction's loop field.
  std::vector<LoopId> remap(fn.loops.size());
  {
    LoopId next = 0;
    for (LoopId i = 0; i < fn.loops.size(); ++i) {
      remap[i] = (i == plan.loop) ? ir::kNoLoop : next++;
    }
  }
  std::vector<ir::LoopInfo> kept;
  for (LoopId i = 0; i < fn.loops.size(); ++i) {
    if (i == plan.loop) continue;
    ir::LoopInfo info = fn.loops[i];
    info.id = remap[i];
    if (info.parent != ir::kNoLoop) info.parent = remap[info.parent];
    kept.push_back(info);
  }
  fn.loops = std::move(kept);
  for (Instruction& in : fn.instrs) {
    if (in.loop != ir::kNoLoop) {
      in.loop = (in.loop == plan.loop) ? parent : remap[in.loop];
    }
  }
}

}  // namespace

std::size_t unroll_loops(ir::Function& fn, std::int64_t max_trip) {
  std::size_t unrolled = 0;
  UnrollPlan plan;
  int guard = 0;
  while (find_candidate(fn, max_trip, plan) && guard++ < 16) {
    apply_unroll(fn, plan);
    ++unrolled;
  }
  if (unrolled) {
    dead_code_elim(fn);  // compacts and cleans the orphaned instructions
    ir::verify(fn);
  }
  return unrolled;
}

}  // namespace mvgnn::transform
