// Registry of dynamically allocated memory objects (scalar slots, local
// arrays, argument arrays). Dependences are reported against object ids so
// the analyses can reason per-variable instead of per-raw-address.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.hpp"

namespace mvgnn::profiler {

using Addr = std::uint64_t;

enum class ObjKind : std::uint8_t { ScalarLocal, ArrayLocal, ArgArray };

struct MemObject {
  ObjKind kind = ObjKind::ScalarLocal;
  std::string name;              // variable / parameter name
  const ir::Function* fn = nullptr;  // owner (null for argument arrays)
  ir::InstrId alloca_id = ir::kNoInstr;  // defining Alloca/AllocArr
  Addr base = 0;
  std::uint64_t size = 0;  // element count
};

/// Monotonic allocator + addr -> object reverse lookup. Addresses are never
/// reused within one profiling run, which is what makes the "same address in
/// a later iteration" dependence test sound.
class ObjectTable {
 public:
  /// Reserves `size` cells and registers the object. Returns its base addr.
  Addr allocate(MemObject obj, std::uint64_t size) {
    obj.base = next_;
    obj.size = size;
    next_ += std::max<std::uint64_t>(size, 1);
    objects_.push_back(std::move(obj));
    return objects_.back().base;
  }

  /// Object covering `addr`; objects are sorted by base, so binary search.
  [[nodiscard]] std::uint32_t object_of(Addr addr) const {
    auto it = std::upper_bound(
        objects_.begin(), objects_.end(), addr,
        [](Addr a, const MemObject& o) { return a < o.base; });
    return static_cast<std::uint32_t>(it - objects_.begin()) - 1;
  }

  [[nodiscard]] const MemObject& object(std::uint32_t id) const {
    return objects_[id];
  }
  [[nodiscard]] std::size_t size() const { return objects_.size(); }
  [[nodiscard]] Addr high_water() const { return next_; }

 private:
  std::vector<MemObject> objects_;
  Addr next_ = 0;
};

}  // namespace mvgnn::profiler
