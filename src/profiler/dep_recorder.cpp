#include "profiler/dep_recorder.hpp"

#include <algorithm>
#include <cassert>

namespace mvgnn::profiler {

bool loop_contains(const ir::Function& fn, ir::LoopId l, ir::LoopId inner) {
  while (inner != ir::kNoLoop) {
    if (inner == l) return true;
    inner = fn.loops[inner].parent;
  }
  return false;
}

bool instr_in_loop(const ir::Function& fn, ir::InstrId id, ir::LoopId l) {
  return loop_contains(fn, l, fn.instr(id).loop);
}

void DepRecorder::on_instr(const ir::Function& fn, ir::InstrId id) {
  if (&fn != last_fn_) {
    last_fn_ = &fn;
    auto& v = counts_[&fn];
    if (v.size() < fn.instrs.size()) v.resize(fn.instrs.size(), 0);
    last_counts_ = &v;
  }
  ++(*last_counts_)[id];
}

void DepRecorder::on_loop_enter(const ir::Function& fn, ir::LoopId loop) {
  stack_.push_back({&fn, loop, next_instance_++, -1});
  cur_snap_ = kNoSnap;
  ++loop_runtime_[LoopRef{&fn, loop}].instances;
}

void DepRecorder::on_loop_iter(const ir::Function& fn, ir::LoopId loop) {
  assert(!stack_.empty() && stack_.back().loop == loop &&
         stack_.back().fn == &fn);
  (void)fn;
  (void)loop;
  ++stack_.back().iter;
  cur_snap_ = kNoSnap;
  ++loop_runtime_[LoopRef{stack_.back().fn, stack_.back().loop}].iterations;
}

void DepRecorder::on_loop_exit(const ir::Function& fn, ir::LoopId loop) {
  assert(!stack_.empty() && stack_.back().loop == loop &&
         stack_.back().fn == &fn);
  (void)fn;
  (void)loop;
  stack_.pop_back();
  cur_snap_ = kNoSnap;
}

DepRecorder::SnapId DepRecorder::current_snapshot() {
  if (cur_snap_ == kNoSnap) {
    cur_snap_ = static_cast<SnapId>(snapshots_.size());
    snapshots_.push_back(stack_);
  }
  return cur_snap_;
}

void DepRecorder::on_load(const ir::Function& fn, ir::InstrId id, Addr addr) {
  const InstrRef ref{&fn, id};
  const SnapId snap = current_snapshot();
  Shadow& sh = shadow_[addr];
  if (sh.last_write.valid) {
    record(sh.last_write.ref, sh.last_write.snap, ref, snap, DepType::RAW,
           addr);
  }
  for (Access& r : sh.last_reads) {
    if (r.ref == ref) {
      r.snap = snap;
      return;
    }
  }
  sh.last_reads.push_back({ref, snap, true});
}

void DepRecorder::on_store(const ir::Function& fn, ir::InstrId id, Addr addr) {
  const InstrRef ref{&fn, id};
  const SnapId snap = current_snapshot();
  Shadow& sh = shadow_[addr];
  if (sh.last_write.valid) {
    record(sh.last_write.ref, sh.last_write.snap, ref, snap, DepType::WAW,
           addr);
  }
  for (const Access& r : sh.last_reads) {
    record(r.ref, r.snap, ref, snap, DepType::WAR, addr);
  }
  sh.last_reads.clear();
  sh.last_write = {ref, snap, true};
}

void DepRecorder::record(const InstrRef& src, SnapId src_snap,
                         const InstrRef& dst, SnapId dst_snap, DepType type,
                         Addr addr) {
  // Carrying loop: outermost common instance whose iterations diverge.
  // Once instances diverge the accesses are in unrelated loop executions, so
  // nothing deeper can carry the dependence either.
  const std::vector<Frame>& a = snapshots_[src_snap];
  const std::vector<Frame>& b = snapshots_[dst_snap];
  LoopRef carrier;  // fn == nullptr means loop-independent
  const std::size_t depth = std::min(a.size(), b.size());
  for (std::size_t k = 0; k < depth; ++k) {
    if (a[k].instance != b[k].instance) break;
    if (a[k].iter != b[k].iter) {
      carrier = LoopRef{a[k].fn, a[k].loop};
      break;
    }
  }

  const std::uint32_t obj = objects_.object_of(addr);
  DepStat& stat = agg_[DepKey{src, dst, type}];
  ++stat.total;
  stat.object = obj;
  if (carrier.fn == nullptr) {
    ++stat.intra;
    return;
  }
  ++stat.carried[carrier];

  ObjLoopSummary& sum = loop_objects_[carrier][obj];
  switch (type) {
    case DepType::RAW: {
      sum.carried_raw = true;
      const auto pair = std::make_pair(src, dst);
      if (std::find(sum.carried_raw_pairs.begin(), sum.carried_raw_pairs.end(),
                    pair) == sum.carried_raw_pairs.end()) {
        sum.carried_raw_pairs.push_back(pair);
      }
      break;
    }
    case DepType::WAR: sum.carried_war = true; break;
    case DepType::WAW: sum.carried_waw = true; break;
  }
}

DepProfile DepRecorder::finalize() const {
  DepProfile p;
  p.edges.reserve(agg_.size());
  for (const auto& [key, stat] : agg_) {
    DepEdge e;
    e.src = key.src;
    e.dst = key.dst;
    e.type = key.type;
    e.total_count = stat.total;
    e.intra_count = stat.intra;
    e.object = stat.object;
    e.carried.assign(stat.carried.begin(), stat.carried.end());
    p.edges.push_back(std::move(e));
  }
  // Deterministic order: by function pointer is unstable across runs of the
  // process, but (function name, id) is stable — sort on that.
  std::sort(p.edges.begin(), p.edges.end(),
            [](const DepEdge& x, const DepEdge& y) {
              const auto kx = std::make_tuple(x.src.fn->name, x.src.id,
                                              x.dst.fn->name, x.dst.id,
                                              static_cast<int>(x.type));
              const auto ky = std::make_tuple(y.src.fn->name, y.src.id,
                                              y.dst.fn->name, y.dst.id,
                                              static_cast<int>(y.type));
              return kx < ky;
            });
  // on_loop_iter fires at every header entry, including the final failing
  // test; report body executions by discounting one test per instance.
  p.loop_runtime = loop_runtime_;
  for (auto& [ref, rt] : p.loop_runtime) {
    rt.iterations -= std::min(rt.iterations, rt.instances);
  }
  p.loop_objects = loop_objects_;
  p.instr_counts = counts_;
  return p;
}

}  // namespace mvgnn::profiler
