#include "profiler/profile.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "profiler/dep_recorder.hpp"

namespace mvgnn::profiler {

ProfileResult profile(const ir::Module& m, const std::string& entry,
                      std::span<const ArgInit> args,
                      const InterpOptions& opts) {
  OBS_SPAN("profiler.profile");
  ProfileResult res;
  ObjectTable objects;
  DepRecorder recorder(objects);
  {
    OBS_SPAN("profiler.record_deps");
    res.run = run(m, entry, args, recorder, objects, opts);
    res.dep = recorder.finalize();
    res.dep.objects = std::move(objects);
  }

  {
    OBS_SPAN("profiler.loop_features");
    for (const auto& fn : m.functions) {
      auto cus = build_cus(*fn);
      res.cus.insert(res.cus.end(), cus.begin(), cus.end());
      for (const ir::LoopInfo& l : fn->loops) {
        if (!l.is_for) continue;
        LoopSample s;
        s.fn = fn.get();
        s.loop = l.id;
        s.features = compute_loop_features(*fn, l.id, res.dep);
        res.loops.push_back(std::move(s));
      }
    }
  }

  struct ProfileMetrics {
    obs::Counter& profiles =
        obs::Registry::global().counter("profiler.profiles_total");
    obs::Counter& dep_edges =
        obs::Registry::global().counter("profiler.dep_edges_total");
    obs::Counter& loops =
        obs::Registry::global().counter("profiler.loops_profiled_total");
  };
  static ProfileMetrics metrics;
  metrics.profiles.add(1);
  metrics.dep_edges.add(res.dep.edges.size());
  metrics.loops.add(res.loops.size());
  return res;
}

}  // namespace mvgnn::profiler
