#include "profiler/profile.hpp"

#include <utility>

#include "profiler/dep_recorder.hpp"

namespace mvgnn::profiler {

ProfileResult profile(const ir::Module& m, const std::string& entry,
                      std::span<const ArgInit> args,
                      const InterpOptions& opts) {
  ProfileResult res;
  ObjectTable objects;
  DepRecorder recorder(objects);
  res.run = run(m, entry, args, recorder, objects, opts);
  res.dep = recorder.finalize();
  res.dep.objects = std::move(objects);

  for (const auto& fn : m.functions) {
    auto cus = build_cus(*fn);
    res.cus.insert(res.cus.end(), cus.begin(), cus.end());
    for (const ir::LoopInfo& l : fn->loops) {
      if (!l.is_for) continue;
      LoopSample s;
      s.fn = fn.get();
      s.loop = l.id;
      s.features = compute_loop_features(*fn, l.id, res.dep);
      res.loops.push_back(std::move(s));
    }
  }
  return res;
}

}  // namespace mvgnn::profiler
