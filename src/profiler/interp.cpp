#include "profiler/interp.hpp"

#include <cassert>
#include <cmath>

#include "fault/fault.hpp"
#include "frontend/sema.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mvgnn::profiler {

namespace {

using ir::Function;
using ir::Instruction;
using ir::InstrId;
using ir::Opcode;
using ir::TypeKind;
using ir::Value;

/// One memory cell holds both representations; the instruction type decides
/// which side is live. Keeps typed load/store trivially correct.
using Cell = MemCell;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

class Interp {
 public:
  Interp(const ir::Module& m, ExecObserver& obs, ObjectTable& objects,
         const InterpOptions& opts)
      : m_(m), obs_(obs), objects_(objects), opts_(opts) {}

  RunResult run_entry(const std::string& entry,
                      std::span<const ArgInit> inits) {
    OBS_SPAN("interp.run");
    // Fault injection: fold the armed trap step into a plain per-step
    // compare (no per-instruction lock or map lookup on the hot path).
    trap_step_ = fault::armed_nth("interp.trap").value_or(0);
    const Function* fn = m_.find(entry);
    if (!fn) throw InterpError("entry function '" + entry + "' not found");
    if (inits.size() != fn->params.size()) {
      throw InterpError("argument count mismatch for '" + entry + "'");
    }
    std::vector<RtVal> args;
    args.reserve(inits.size());
    for (std::size_t i = 0; i < inits.size(); ++i) {
      args.push_back(make_arg(fn->params[i], inits[i]));
    }
    entry_args_ = args;
    RunResult res;
    res.return_value = call(*fn, std::move(args));
    res.steps = steps_;
    // Interpreted instructions are counted locally (`steps_`, which the
    // step-budget check needs anyway) and flushed once per run so the
    // dispatch loop never touches a shared atomic.
    struct InterpMetrics {
      obs::Counter& runs =
          obs::Registry::global().counter("interp.runs_total");
      obs::Counter& instrs =
          obs::Registry::global().counter("interp.instructions_total");
    };
    static InterpMetrics metrics;
    metrics.runs.add(1);
    metrics.instrs.add(steps_);
    return res;
  }

  /// Final contents of every entry array argument (empty for scalars).
  [[nodiscard]] std::vector<std::vector<Cell>> dump_arg_arrays() const {
    std::vector<std::vector<Cell>> out;
    out.reserve(entry_args_.size());
    for (const RtVal& a : entry_args_) {
      std::vector<Cell> cells;
      if (a.kind == RtVal::Kind::ArrayRef) {
        cells.assign(mem_.begin() + static_cast<std::ptrdiff_t>(a.base),
                     mem_.begin() + static_cast<std::ptrdiff_t>(a.base + a.size));
      }
      out.push_back(std::move(cells));
    }
    return out;
  }

 private:
  RtVal make_arg(const ir::Param& p, const ArgInit& init) {
    RtVal v;
    switch (p.type) {
      case TypeKind::Int:
        v.kind = RtVal::Kind::Int;
        v.i = init.int_val;
        return v;
      case TypeKind::Float:
        v.kind = RtVal::Kind::Float;
        v.f = init.float_val;
        return v;
      case TypeKind::ArrInt:
      case TypeKind::ArrFloat: {
        MemObject obj;
        obj.kind = ObjKind::ArgArray;
        obj.name = p.name;
        const Addr base = objects_.allocate(obj, init.array_size);
        ensure_mem();
        // Deterministic fill. Int arrays get in-range indices so indirect
        // subscripts (A[B[i]]) stay in bounds; float arrays get values in
        // [0.5, 1.5) to keep reductions numerically tame.
        for (std::uint64_t k = 0; k < init.array_size; ++k) {
          const std::uint64_t h = splitmix64(init.fill_seed * 0x9E37 + k);
          Cell& c = mem_[base + k];
          if (p.type == TypeKind::ArrInt) {
            c.i = init.array_size ? static_cast<std::int64_t>(h % init.array_size) : 0;
          } else {
            c.f = 0.5 + static_cast<double>(h % (1u << 20)) / (1u << 20);
          }
        }
        v.kind = RtVal::Kind::ArrayRef;
        v.base = base;
        v.size = init.array_size;
        v.elem = element_type(p.type);
        return v;
      }
      case TypeKind::Void:
        throw InterpError("void parameter");
    }
    return v;
  }

  void ensure_mem() {
    const Addr hw = objects_.high_water();
    if (hw > opts_.max_mem_cells) {
      obs::Registry::global()
          .counter("interp.mem_cap_exceeded_total")
          .add(1);
      throw InterpError("memory cap exceeded: " + std::to_string(hw) +
                        " cells > cap " +
                        std::to_string(opts_.max_mem_cells));
    }
    if (mem_.size() < hw) {
      mem_.resize(hw);
    }
  }

  [[noreturn]] void fault(const Function& fn, const Instruction& in,
                          const std::string& msg) {
    throw InterpError("@" + fn.name + " line " + std::to_string(in.loc.line) +
                      ": " + msg);
  }

  RtVal call(const Function& fn, std::vector<RtVal> args) {
    if (++depth_ > opts_.max_call_depth) {
      throw InterpError("call depth exceeded in @" + fn.name);
    }
    std::vector<RtVal> regs(fn.instrs.size());
    const ir::BasicBlock* bb = &fn.blocks[0];
    std::size_t ip = 0;
    RtVal ret;

    auto operand = [&](const Value& v) -> RtVal {
      switch (v.kind) {
        case Value::Kind::Reg: return regs[v.reg];
        case Value::Kind::ImmInt: {
          RtVal r;
          r.kind = RtVal::Kind::Int;
          r.i = v.imm_int;
          return r;
        }
        case Value::Kind::ImmFloat: {
          RtVal r;
          r.kind = RtVal::Kind::Float;
          r.f = v.imm_float;
          return r;
        }
        case Value::Kind::Arg: return args[v.arg];
        default: throw InterpError("bad operand kind at runtime");
      }
    };
    auto as_int = [&](const Value& v) { return operand(v).i; };
    auto as_float = [&](const Value& v) { return operand(v).f; };

    for (;;) {
      if (ip >= bb->instrs.size()) {
        throw InterpError("fell off block in @" + fn.name);
      }
      const InstrId id = bb->instrs[ip++];
      const Instruction& in = fn.instr(id);
      if (++steps_ > opts_.max_steps) {
        obs::Registry::global().counter("interp.fuel_exhausted_total").add(1);
        throw InterpError("fuel exhausted: step budget " +
                          std::to_string(opts_.max_steps) + " exceeded in @" +
                          fn.name);
      }
      if (steps_ == trap_step_) {
        throw InterpError("injected trap at step " + std::to_string(steps_) +
                          " in @" + fn.name);
      }
      obs_.on_instr(fn, id);
      RtVal& out = regs[id];

      switch (in.op) {
        // ---- integer arithmetic ----
        case Opcode::Add: out.kind = RtVal::Kind::Int; out.i = as_int(in.operands[0]) + as_int(in.operands[1]); break;
        case Opcode::Sub: out.kind = RtVal::Kind::Int; out.i = as_int(in.operands[0]) - as_int(in.operands[1]); break;
        case Opcode::Mul: out.kind = RtVal::Kind::Int; out.i = as_int(in.operands[0]) * as_int(in.operands[1]); break;
        case Opcode::Div: {
          const std::int64_t d = as_int(in.operands[1]);
          if (d == 0) fault(fn, in, "integer division by zero");
          out.kind = RtVal::Kind::Int;
          out.i = as_int(in.operands[0]) / d;
          break;
        }
        case Opcode::Rem: {
          const std::int64_t d = as_int(in.operands[1]);
          if (d == 0) fault(fn, in, "integer modulo by zero");
          out.kind = RtVal::Kind::Int;
          out.i = as_int(in.operands[0]) % d;
          break;
        }
        case Opcode::Neg: out.kind = RtVal::Kind::Int; out.i = -as_int(in.operands[0]); break;

        // ---- float arithmetic ----
        case Opcode::FAdd: out.kind = RtVal::Kind::Float; out.f = as_float(in.operands[0]) + as_float(in.operands[1]); break;
        case Opcode::FSub: out.kind = RtVal::Kind::Float; out.f = as_float(in.operands[0]) - as_float(in.operands[1]); break;
        case Opcode::FMul: out.kind = RtVal::Kind::Float; out.f = as_float(in.operands[0]) * as_float(in.operands[1]); break;
        case Opcode::FDiv: out.kind = RtVal::Kind::Float; out.f = as_float(in.operands[0]) / as_float(in.operands[1]); break;
        case Opcode::FNeg: out.kind = RtVal::Kind::Float; out.f = -as_float(in.operands[0]); break;

        // ---- comparisons ----
        case Opcode::CmpEq: out.kind = RtVal::Kind::Int; out.i = as_int(in.operands[0]) == as_int(in.operands[1]); break;
        case Opcode::CmpNe: out.kind = RtVal::Kind::Int; out.i = as_int(in.operands[0]) != as_int(in.operands[1]); break;
        case Opcode::CmpLt: out.kind = RtVal::Kind::Int; out.i = as_int(in.operands[0]) < as_int(in.operands[1]); break;
        case Opcode::CmpLe: out.kind = RtVal::Kind::Int; out.i = as_int(in.operands[0]) <= as_int(in.operands[1]); break;
        case Opcode::CmpGt: out.kind = RtVal::Kind::Int; out.i = as_int(in.operands[0]) > as_int(in.operands[1]); break;
        case Opcode::CmpGe: out.kind = RtVal::Kind::Int; out.i = as_int(in.operands[0]) >= as_int(in.operands[1]); break;
        case Opcode::FCmpEq: out.kind = RtVal::Kind::Int; out.i = as_float(in.operands[0]) == as_float(in.operands[1]); break;
        case Opcode::FCmpNe: out.kind = RtVal::Kind::Int; out.i = as_float(in.operands[0]) != as_float(in.operands[1]); break;
        case Opcode::FCmpLt: out.kind = RtVal::Kind::Int; out.i = as_float(in.operands[0]) < as_float(in.operands[1]); break;
        case Opcode::FCmpLe: out.kind = RtVal::Kind::Int; out.i = as_float(in.operands[0]) <= as_float(in.operands[1]); break;
        case Opcode::FCmpGt: out.kind = RtVal::Kind::Int; out.i = as_float(in.operands[0]) > as_float(in.operands[1]); break;
        case Opcode::FCmpGe: out.kind = RtVal::Kind::Int; out.i = as_float(in.operands[0]) >= as_float(in.operands[1]); break;

        // ---- logic ----
        case Opcode::And: out.kind = RtVal::Kind::Int; out.i = (as_int(in.operands[0]) != 0) && (as_int(in.operands[1]) != 0); break;
        case Opcode::Or: out.kind = RtVal::Kind::Int; out.i = (as_int(in.operands[0]) != 0) || (as_int(in.operands[1]) != 0); break;
        case Opcode::Not: out.kind = RtVal::Kind::Int; out.i = as_int(in.operands[0]) == 0; break;

        // ---- conversions ----
        case Opcode::IntToFloat: out.kind = RtVal::Kind::Float; out.f = static_cast<double>(as_int(in.operands[0])); break;
        case Opcode::FloatToInt: out.kind = RtVal::Kind::Int; out.i = static_cast<std::int64_t>(as_float(in.operands[0])); break;

        // ---- memory ----
        case Opcode::Alloca: {
          MemObject obj;
          obj.kind = ObjKind::ScalarLocal;
          obj.name = in.name;
          obj.fn = &fn;
          obj.alloca_id = id;
          const Addr base = objects_.allocate(obj, 1);
          ensure_mem();
          mem_[base] = Cell{};
          out.kind = RtVal::Kind::ArrayRef;
          out.base = base;
          out.size = 1;
          out.elem = in.type;
          break;
        }
        case Opcode::AllocArr: {
          const std::int64_t n = as_int(in.operands[0]);
          if (n < 0) fault(fn, in, "negative array size");
          MemObject obj;
          obj.kind = ObjKind::ArrayLocal;
          obj.name = in.name;
          obj.fn = &fn;
          obj.alloca_id = id;
          const Addr base = objects_.allocate(obj, static_cast<std::uint64_t>(n));
          ensure_mem();
          for (std::int64_t k = 0; k < n; ++k) mem_[base + k] = Cell{};
          out.kind = RtVal::Kind::ArrayRef;
          out.base = base;
          out.size = static_cast<std::uint64_t>(n);
          out.elem = element_type(in.type);
          break;
        }
        case Opcode::Load: {
          const RtVal slot = operand(in.operands[0]);
          obs_.on_load(fn, id, slot.base);
          const Cell& c = mem_[slot.base];
          if (in.type == TypeKind::Float) {
            out.kind = RtVal::Kind::Float;
            out.f = c.f;
          } else {
            out.kind = RtVal::Kind::Int;
            out.i = c.i;
          }
          break;
        }
        case Opcode::Store: {
          const RtVal slot = operand(in.operands[0]);
          const RtVal v = operand(in.operands[1]);
          obs_.on_store(fn, id, slot.base);
          Cell& c = mem_[slot.base];
          if (v.kind == RtVal::Kind::Float) {
            c.f = v.f;
          } else {
            c.i = v.i;
          }
          break;
        }
        case Opcode::LoadIdx: {
          const RtVal arr = operand(in.operands[0]);
          const std::int64_t idx = as_int(in.operands[1]);
          if (idx < 0 || static_cast<std::uint64_t>(idx) >= arr.size) {
            fault(fn, in, "index " + std::to_string(idx) + " out of bounds [0," +
                              std::to_string(arr.size) + ")");
          }
          const Addr a = arr.base + static_cast<Addr>(idx);
          obs_.on_load(fn, id, a);
          const Cell& c = mem_[a];
          if (in.type == TypeKind::Float) {
            out.kind = RtVal::Kind::Float;
            out.f = c.f;
          } else {
            out.kind = RtVal::Kind::Int;
            out.i = c.i;
          }
          break;
        }
        case Opcode::StoreIdx: {
          const RtVal arr = operand(in.operands[0]);
          const std::int64_t idx = as_int(in.operands[1]);
          const RtVal v = operand(in.operands[2]);
          if (idx < 0 || static_cast<std::uint64_t>(idx) >= arr.size) {
            fault(fn, in, "index " + std::to_string(idx) + " out of bounds [0," +
                              std::to_string(arr.size) + ")");
          }
          const Addr a = arr.base + static_cast<Addr>(idx);
          obs_.on_store(fn, id, a);
          Cell& c = mem_[a];
          if (v.kind == RtVal::Kind::Float) {
            c.f = v.f;
          } else {
            c.i = v.i;
          }
          break;
        }

        // ---- control ----
        case Opcode::Br:
          bb = &fn.block(in.operands[0].block);
          ip = 0;
          break;
        case Opcode::CondBr: {
          const bool t = as_int(in.operands[0]) != 0;
          bb = &fn.block(in.operands[t ? 1 : 2].block);
          ip = 0;
          break;
        }
        case Opcode::Ret:
          if (!in.operands.empty()) ret = operand(in.operands[0]);
          --depth_;
          return ret;

        // ---- calls ----
        case Opcode::Call: {
          if (const frontend::BuiltinSig* b = frontend::find_builtin(in.callee)) {
            out = eval_builtin(fn, in, *b, operand);
          } else {
            const Function* callee = m_.find(in.callee);
            if (!callee) fault(fn, in, "unknown function '" + in.callee + "'");
            std::vector<RtVal> cargs;
            cargs.reserve(in.operands.size());
            for (const Value& v : in.operands) cargs.push_back(operand(v));
            out = call(*callee, std::move(cargs));
          }
          break;
        }

        // ---- loop markers ----
        case Opcode::LoopEnter: obs_.on_loop_enter(fn, in.loop); break;
        case Opcode::LoopHead: obs_.on_loop_iter(fn, in.loop); break;
        case Opcode::LoopExit: obs_.on_loop_exit(fn, in.loop); break;
      }
    }
  }

  template <typename OperandFn>
  RtVal eval_builtin(const Function& fn, const Instruction& in,
                     const frontend::BuiltinSig& sig, OperandFn&& operand) {
    (void)fn;
    RtVal out;
    auto farg = [&](std::size_t i) { return operand(in.operands[i]).f; };
    auto iarg = [&](std::size_t i) { return operand(in.operands[i]).i; };
    out.kind = (sig.ret == TypeKind::Float) ? RtVal::Kind::Float : RtVal::Kind::Int;
    const std::string& c = in.callee;
    if (c == "sqrt") out.f = std::sqrt(farg(0));
    else if (c == "exp") out.f = std::exp(farg(0));
    else if (c == "log") out.f = std::log(farg(0));
    else if (c == "sin") out.f = std::sin(farg(0));
    else if (c == "cos") out.f = std::cos(farg(0));
    else if (c == "fabs") out.f = std::fabs(farg(0));
    else if (c == "pow") out.f = std::pow(farg(0), farg(1));
    else if (c == "fmin") out.f = std::fmin(farg(0), farg(1));
    else if (c == "fmax") out.f = std::fmax(farg(0), farg(1));
    else if (c == "imin") out.i = std::min(iarg(0), iarg(1));
    else if (c == "imax") out.i = std::max(iarg(0), iarg(1));
    else if (c == "iabs") out.i = std::llabs(iarg(0));
    else throw InterpError("unknown builtin '" + c + "'");
    return out;
  }

  const ir::Module& m_;
  ExecObserver& obs_;
  ObjectTable& objects_;
  InterpOptions opts_;
  std::vector<RtVal> entry_args_;
  std::vector<Cell> mem_;
  std::uint64_t steps_ = 0;
  std::uint64_t trap_step_ = 0;  // 0 = no injected trap armed
  std::uint32_t depth_ = 0;
};

}  // namespace

RunResult run(const ir::Module& m, const std::string& entry,
              std::span<const ArgInit> args, ExecObserver& obs,
              ObjectTable& objects, const InterpOptions& opts) {
  return Interp(m, obs, objects, opts).run_entry(entry, args);
}

RunResult run(const ir::Module& m, const std::string& entry,
              std::span<const ArgInit> args, ExecObserver& obs,
              const InterpOptions& opts) {
  ObjectTable objects;
  return run(m, entry, args, obs, objects, opts);
}

CapturedRun run_capture(const ir::Module& m, const std::string& entry,
                        std::span<const ArgInit> args,
                        const InterpOptions& opts) {
  NullObserver obs;
  ObjectTable objects;
  Interp interp(m, obs, objects, opts);
  CapturedRun out;
  out.run = interp.run_entry(entry, args);
  out.arg_arrays = interp.dump_arg_arrays();
  return out;
}

}  // namespace mvgnn::profiler
