#include "profiler/loop_stats.hpp"

#include <algorithm>
#include <array>
#include <unordered_map>
#include <vector>

namespace mvgnn::profiler {

namespace {

bool countable(const ir::Instruction& in) {
  switch (in.op) {
    case ir::Opcode::LoopEnter:
    case ir::Opcode::LoopHead:
    case ir::Opcode::LoopExit:
      return false;
    default:
      return true;
  }
}

}  // namespace

LoopFeatures compute_loop_features(const ir::Function& fn, ir::LoopId l,
                                   const DepProfile& profile) {
  LoopFeatures out;

  // --- N_Inst: static instruction count of the loop subtree -------------
  std::vector<ir::InstrId> members;
  for (ir::InstrId id = 0; id < fn.instrs.size(); ++id) {
    if (!countable(fn.instr(id))) continue;
    if (instr_in_loop(fn, id, l)) members.push_back(id);
  }
  out.n_inst = members.size();

  // --- exec_times: total dynamic iterations ------------------------------
  if (const auto it = profile.loop_runtime.find(LoopRef{&fn, l});
      it != profile.loop_runtime.end()) {
    out.exec_times = it->second.iterations;
  }

  // --- Intra-iteration dependence DAG ------------------------------------
  // Dense renumbering of the loop's members.
  std::unordered_map<ir::InstrId, std::uint32_t> index;
  index.reserve(members.size());
  for (std::uint32_t i = 0; i < members.size(); ++i) index[members[i]] = i;

  std::vector<std::vector<std::uint32_t>> preds(members.size());
  auto add_edge = [&](ir::InstrId from, ir::InstrId to) {
    // Keep only edges consistent with program order (arena order is emission
    // order): this breaks spurious cycles in the aggregated memory deps.
    if (from >= to) return;
    const auto a = index.find(from);
    const auto b = index.find(to);
    if (a == index.end() || b == index.end()) return;
    preds[b->second].push_back(a->second);
  };

  for (const ir::InstrId id : members) {
    for (const ir::Value& v : fn.instr(id).operands) {
      if (v.is_reg()) add_edge(v.reg, id);
    }
  }
  for (const DepEdge& e : profile.edges) {
    if (e.src.fn != &fn || e.dst.fn != &fn || e.intra_count == 0) continue;
    add_edge(e.src.id, e.dst.id);
  }

  // Longest path (CFL) + per-level breadth; members are already in program
  // (and hence topological) order because add_edge enforces from < to.
  std::vector<std::uint32_t> depth(members.size(), 1);
  std::uint32_t cfl = members.empty() ? 0 : 1;
  for (std::uint32_t i = 0; i < members.size(); ++i) {
    for (const std::uint32_t p : preds[i]) {
      depth[i] = std::max(depth[i], depth[p] + 1);
    }
    cfl = std::max(cfl, depth[i]);
  }
  std::vector<std::uint32_t> level_count(cfl + 1, 0);
  std::uint32_t max_breadth = members.empty() ? 1 : 0;
  for (const std::uint32_t d : depth) {
    max_breadth = std::max(max_breadth, ++level_count[d]);
  }
  out.cfl = cfl;

  // --- ESP: Amdahl bound with P = max breadth ----------------------------
  const double n = std::max<double>(1.0, static_cast<double>(out.n_inst));
  const double serial_fraction = std::min(1.0, static_cast<double>(cfl) / n);
  const double p = std::max<std::uint32_t>(1, max_breadth);
  out.esp = 1.0 / (serial_fraction + (1.0 - serial_fraction) / p);

  // --- dependence direction counts ---------------------------------------
  // internal_dep counts the *loop-carried* dependences between the loop's
  // instructions: those are the ones that matter for parallelization, which
  // is how Fried et al.'s "dependency count between loop instructions" is
  // read here (an iteration-local def-use chain constrains nothing).
  // Induction-variable traffic (i = i + 1 and friends) is filtered out, as
  // DiscoPoP does: it is recomputed under any parallelization and would
  // otherwise make every loop look dependence-laden.
  auto is_induction_object = [&](std::uint32_t obj_id) {
    const MemObject& obj = profile.objects.object(obj_id);
    if (obj.kind != ObjKind::ScalarLocal || obj.fn == nullptr) return false;
    for (const ir::LoopInfo& loop : obj.fn->loops) {
      if (loop.induction_slot == obj.alloca_id) return true;
    }
    return false;
  };
  const LoopRef self{&fn, l};
  for (const DepEdge& e : profile.edges) {
    if (is_induction_object(e.object)) continue;
    const bool src_in =
        e.src.fn == &fn && instr_in_loop(fn, e.src.id, l);
    const bool dst_in =
        e.dst.fn == &fn && instr_in_loop(fn, e.dst.id, l);
    if (src_in && dst_in) {
      if (e.carried_by(self)) ++out.internal_dep;
    } else if (dst_in) {
      ++out.incoming_dep;
    } else if (src_in) {
      ++out.outgoing_dep;
    }
  }
  return out;
}

}  // namespace mvgnn::profiler
