// Aggregated dynamic data-dependence graph produced by one profiled run.
//
// Terminology follows the paper / DiscoPoP: a dependence instance is
// *carried* by loop L when source and sink execute in the same dynamic
// instance of L but in different iterations; the carrying loop is unique
// (the outermost level at which the iteration vectors diverge).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ir/function.hpp"
#include "profiler/mem_object.hpp"

namespace mvgnn::profiler {

enum class DepType : std::uint8_t { RAW, WAR, WAW };

[[nodiscard]] inline const char* dep_name(DepType t) {
  switch (t) {
    case DepType::RAW: return "RAW";
    case DepType::WAR: return "WAR";
    case DepType::WAW: return "WAW";
  }
  return "?";
}

/// A static instruction reference (function + arena index).
struct InstrRef {
  const ir::Function* fn = nullptr;
  ir::InstrId id = ir::kNoInstr;

  friend bool operator==(const InstrRef&, const InstrRef&) = default;
};

/// A static loop reference.
struct LoopRef {
  const ir::Function* fn = nullptr;
  ir::LoopId loop = ir::kNoLoop;

  friend bool operator==(const LoopRef&, const LoopRef&) = default;
};

struct InstrRefHash {
  std::size_t operator()(const InstrRef& r) const {
    return std::hash<const void*>()(r.fn) * 1315423911u ^ r.id;
  }
};
struct LoopRefHash {
  std::size_t operator()(const LoopRef& r) const {
    return std::hash<const void*>()(r.fn) * 2654435761u ^ r.loop;
  }
};

/// One aggregated static dependence edge (all dynamic instances of the
/// (src, dst, type) triple folded together).
struct DepEdge {
  InstrRef src;  // earlier access (the dependence source)
  InstrRef dst;  // later access (the sink)
  DepType type = DepType::RAW;
  std::uint64_t total_count = 0;
  std::uint64_t intra_count = 0;  // loop-independent (or cross-instance)
  /// Dynamic occurrences carried by each loop level.
  std::vector<std::pair<LoopRef, std::uint64_t>> carried;
  std::uint32_t object = 0;  // representative memory object id

  [[nodiscard]] bool carried_by(const LoopRef& l) const {
    for (const auto& [ref, n] : carried) {
      if (ref == l && n > 0) return true;
    }
    return false;
  }
  [[nodiscard]] bool loop_carried() const { return !carried.empty(); }
};

/// Per (loop, memory object) summary used by the label oracle and the
/// DiscoPoP-like classifier: which dependence kinds does loop L carry on
/// object O, and between which instruction pairs do the carried RAWs run.
struct ObjLoopSummary {
  bool carried_raw = false;
  bool carried_war = false;
  bool carried_waw = false;
  std::vector<std::pair<InstrRef, InstrRef>> carried_raw_pairs;  // deduped
};

struct LoopRuntime {
  std::uint64_t instances = 0;   // dynamic LoopEnter count
  std::uint64_t iterations = 0;  // dynamic LoopHead count
};

/// Full dependence profile of one run.
struct DepProfile {
  std::vector<DepEdge> edges;
  std::unordered_map<LoopRef, LoopRuntime, LoopRefHash> loop_runtime;
  std::unordered_map<LoopRef,
                     std::unordered_map<std::uint32_t, ObjLoopSummary>,
                     LoopRefHash>
      loop_objects;
  /// Per-function dynamic instruction execution counts (arena-indexed).
  std::unordered_map<const ir::Function*, std::vector<std::uint64_t>>
      instr_counts;
  ObjectTable objects;

  [[nodiscard]] std::uint64_t exec_count(const ir::Function* fn,
                                         ir::InstrId id) const {
    const auto it = instr_counts.find(fn);
    if (it == instr_counts.end()) return 0;
    return id < it->second.size() ? it->second[id] : 0;
  }
};

/// True if static loop `l` (in `fn`) contains the loop `inner` (reflexive).
[[nodiscard]] bool loop_contains(const ir::Function& fn, ir::LoopId l,
                                 ir::LoopId inner);

/// True if instruction `id` of `fn` lies statically inside loop `l`.
[[nodiscard]] bool instr_in_loop(const ir::Function& fn, ir::InstrId id,
                                 ir::LoopId l);

}  // namespace mvgnn::profiler
