// Parallel interpreter mode: executes a program whose DOALL / reduction
// loops have been rewritten (by transform::parallelize) into iteration-range
// shards that run concurrently on par::TaskGroup.
//
// Execution model. The master engine interprets the program normally until
// it reaches the LoopEnter of a planned loop in the entry function. There it
// evaluates the loop's trip count from the recorded bound recipe, splits the
// iteration space [0, trip) into a *fixed* number of shards (independent of
// the worker-thread count), and hands each shard a private execution
// context:
//   - privatized scalar slots (including the induction variable) live in a
//     per-shard overlay, copy-in / last-writer-wins copy-out;
//   - per-iteration temporary arrays get a private copy of the backing
//     range;
//   - reduction accumulators (scalar or array) start at the operator's
//     identity and are combined with the deterministic stride-doubling
//     tree-merge order (the ag::tree_merge pattern), then folded into the
//     shared cell once;
//   - Alloca/AllocArr executed inside a shard (loop-body locals, callee
//     frames) allocate from a shard-local arena, so shards never grow the
//     shared memory image.
// Everything else reads and writes the shared memory image directly — the
// planner guarantees those accesses are iteration-disjoint.
//
// Determinism contract (docs/parallelize.md): the shard count and the merge
// order are fixed, so a parallel run's outputs are bit-identical for every
// worker-thread count. Integer and min/max reductions are additionally
// bit-identical to the sequential run; float +/* reductions are
// re-associated (validated within tolerance by transform::run_equivalence).
//
// The engine is also the "release build" of the interpreter: it has no
// observer hooks and no fault-injection compare on the step path, which is
// what the measured speedup over profiler::run reflects on one core.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ir/function.hpp"
#include "profiler/interp.hpp"

namespace mvgnn::profiler {

/// Reduction operator a shard accumulates under (mirrors
/// analysis::ReductionOp; redeclared here so the profiler layer does not
/// depend on the analysis layer).
enum class ParReduceOp : std::uint8_t { Sum, Product, Min, Max };

/// How the master evaluates the loop bound at LoopEnter: the header
/// compare's right-hand operand, re-evaluated over loop-invariant slots,
/// integer arguments and immediates.
struct ParBound {
  ir::Value value;                      // cmp RHS in the header block
  ir::Opcode cmp = ir::Opcode::CmpLt;   // CmpLt/CmpLe (step>0), CmpGt/CmpGe
};

struct ParScalarReduction {
  ir::InstrId slot = ir::kNoInstr;  // Alloca of the accumulator
  ParReduceOp op = ParReduceOp::Sum;
  bool is_float = false;
};

/// Array identity shared by array reductions and privatized temp arrays:
/// either an entry-function array parameter or a local AllocArr register.
struct ParArrayRef {
  bool is_arg = false;
  std::uint32_t arg = 0;
  ir::InstrId alloca_id = ir::kNoInstr;
};

struct ParArrayReduction {
  ParArrayRef array;
  ParReduceOp op = ParReduceOp::Sum;
  bool is_float = false;
};

/// One planned loop of the entry function.
struct ParLoop {
  ir::LoopId loop = ir::kNoLoop;
  std::int64_t step = 1;  // immediate latch increment, never 0
  ParBound bound;
  /// Scalar Allocas privatized per shard (copy-in, last-storing-shard
  /// copy-out). Never contains the induction slot (handled separately) or a
  /// reduction accumulator.
  std::vector<ir::InstrId> private_slots;
  std::vector<ParScalarReduction> scalar_reductions;
  std::vector<ParArrayReduction> array_reductions;
  /// Per-iteration temporary arrays: private copy per shard, copy-out from
  /// the last shard that stored.
  std::vector<ParArrayRef> private_arrays;
};

/// A parallel execution plan for one entry function, produced by
/// transform::plan_parallel. Loops planned inside another planned loop are
/// legal but only the dynamically outermost one is sharded (shards execute
/// inner planned loops sequentially).
struct ParPlan {
  std::string fn;  // entry function name; all planned loops live in it
  std::vector<ParLoop> loops;

  [[nodiscard]] bool empty() const { return loops.empty(); }
};

struct ParRunOptions : InterpOptions {
  /// Worker threads the shards fan out over (<=1 runs them inline on the
  /// caller). Outputs are bit-identical for every value; the shard count is
  /// fixed by kParShards, not by this.
  std::uint32_t threads = 1;
};

/// Fixed shard count per parallel loop instance (the determinism anchor).
inline constexpr std::uint32_t kParShards = 8;

/// Result of a parallel-mode run, with the observable output memory (the
/// final contents of every array argument) captured for equality checks.
struct ParOutput {
  RunResult run;
  /// One entry per entry-function argument; empty for scalar parameters.
  std::vector<std::vector<MemCell>> arg_arrays;
  /// Dynamic count of sharded loop instances (0 means the plan never
  /// intercepted — e.g. every planned loop had trip count 0).
  std::uint64_t parallel_loops = 0;
};

/// Executes `entry(args...)` in parallel mode under `plan`. Throws
/// InterpError on the same faults as profiler::run, plus plan/runtime
/// mismatches (e.g. a privatized slot whose Alloca never executed).
[[nodiscard]] ParOutput run_parallel(const ir::Module& m,
                                     const std::string& entry,
                                     std::span<const ArgInit> args,
                                     const ParPlan& plan,
                                     const ParRunOptions& opts = {});

}  // namespace mvgnn::profiler
