// One-call profiling pipeline (the paper's Fig. 2 "phase 1"): execute the
// instrumented program, collect the dependence graph, build CUs, and compute
// Table I features for every `for` loop.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "profiler/cu.hpp"
#include "profiler/dep_graph.hpp"
#include "profiler/interp.hpp"
#include "profiler/loop_stats.hpp"

namespace mvgnn::profiler {

/// One `for` loop of the profiled module — the unit of classification.
struct LoopSample {
  const ir::Function* fn = nullptr;
  ir::LoopId loop = ir::kNoLoop;
  LoopFeatures features;
};

struct ProfileResult {
  DepProfile dep;
  std::vector<CU> cus;             // CUs of every function in the module
  std::vector<LoopSample> loops;   // every `for` loop (even unexecuted ones)
  RunResult run;
};

/// Runs `entry(args...)` under the dependence recorder and assembles the
/// full profile. Throws InterpError on runtime faults.
[[nodiscard]] ProfileResult profile(const ir::Module& m,
                                    const std::string& entry,
                                    std::span<const ArgInit> args,
                                    const InterpOptions& opts = {});

}  // namespace mvgnn::profiler
