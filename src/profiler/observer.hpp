// Instrumentation interface: the interpreter calls back into an observer at
// every dynamic event, mirroring how DiscoPoP's LLVM pass injects runtime
// hooks into the compiled program.
#pragma once

#include <cstdint>

#include "ir/function.hpp"
#include "profiler/mem_object.hpp"

namespace mvgnn::profiler {

class ExecObserver {
 public:
  virtual ~ExecObserver() = default;

  /// Every executed instruction (before its effect).
  virtual void on_instr(const ir::Function& fn, ir::InstrId id) {
    (void)fn;
    (void)id;
  }
  /// Scalar or array-element read at `addr` by instruction `id`.
  virtual void on_load(const ir::Function& fn, ir::InstrId id, Addr addr) {
    (void)fn;
    (void)id;
    (void)addr;
  }
  /// Scalar or array-element write at `addr` by instruction `id`.
  virtual void on_store(const ir::Function& fn, ir::InstrId id, Addr addr) {
    (void)fn;
    (void)id;
    (void)addr;
  }
  /// A dynamic loop instance begins (LoopEnter marker).
  virtual void on_loop_enter(const ir::Function& fn, ir::LoopId loop) {
    (void)fn;
    (void)loop;
  }
  /// A new iteration of the innermost active instance begins (LoopHead).
  virtual void on_loop_iter(const ir::Function& fn, ir::LoopId loop) {
    (void)fn;
    (void)loop;
  }
  /// The instance ends (LoopExit marker).
  virtual void on_loop_exit(const ir::Function& fn, ir::LoopId loop) {
    (void)fn;
    (void)loop;
  }
};

/// No-op observer used to measure plain interpretation cost in the
/// profiler-overhead ablation bench.
class NullObserver final : public ExecObserver {};

}  // namespace mvgnn::profiler
