// Shadow-memory dependence recorder (DiscoPoP phase-1 equivalent).
//
// For every memory cell it remembers the last write and the last read per
// static instruction; each new access emits RAW/WAR/WAW dependences against
// those. Loop context is tracked as a stack of (loop instance, iteration)
// frames; the outermost level at which source and sink iteration vectors
// diverge is the carrying loop of the dependence instance.
#pragma once

#include <cstdint>
#include <vector>

#include "profiler/dep_graph.hpp"
#include "profiler/observer.hpp"

namespace mvgnn::profiler {

class DepRecorder final : public ExecObserver {
 public:
  /// `objects` must be the same table the interpreter allocates from.
  explicit DepRecorder(const ObjectTable& objects) : objects_(objects) {}

  void on_instr(const ir::Function& fn, ir::InstrId id) override;
  void on_load(const ir::Function& fn, ir::InstrId id, Addr addr) override;
  void on_store(const ir::Function& fn, ir::InstrId id, Addr addr) override;
  void on_loop_enter(const ir::Function& fn, ir::LoopId loop) override;
  void on_loop_iter(const ir::Function& fn, ir::LoopId loop) override;
  void on_loop_exit(const ir::Function& fn, ir::LoopId loop) override;

  /// Builds the aggregated profile. Call once, after the run; `objects` is
  /// copied into the result so the profile owns everything it references.
  [[nodiscard]] DepProfile finalize() const;

 private:
  using SnapId = std::uint32_t;
  static constexpr SnapId kNoSnap = static_cast<SnapId>(-1);

  struct Frame {
    const ir::Function* fn;
    ir::LoopId loop;
    std::uint64_t instance;
    std::int64_t iter;
  };

  struct Access {
    InstrRef ref;
    SnapId snap = kNoSnap;
    bool valid = false;
  };

  struct Shadow {
    Access last_write;
    // Last read per static instruction; small linear vector — the number of
    // distinct static readers of one address is tiny in practice.
    std::vector<Access> last_reads;
  };

  struct DepKey {
    InstrRef src, dst;
    DepType type;
    friend bool operator==(const DepKey&, const DepKey&) = default;
  };
  struct DepKeyHash {
    std::size_t operator()(const DepKey& k) const {
      const InstrRefHash h;
      return h(k.src) * 40503u ^ h(k.dst) * 69069u ^
             static_cast<std::size_t>(k.type);
    }
  };
  struct DepStat {
    std::uint64_t total = 0;
    std::uint64_t intra = 0;
    std::unordered_map<LoopRef, std::uint64_t, LoopRefHash> carried;
    std::uint32_t object = 0;
  };

  SnapId current_snapshot();
  void record(const InstrRef& src, SnapId src_snap, const InstrRef& dst,
              SnapId dst_snap, DepType type, Addr addr);

  const ObjectTable& objects_;
  std::vector<Frame> stack_;
  std::vector<std::vector<Frame>> snapshots_;
  SnapId cur_snap_ = kNoSnap;
  std::uint64_t next_instance_ = 0;

  std::unordered_map<Addr, Shadow> shadow_;
  std::unordered_map<DepKey, DepStat, DepKeyHash> agg_;
  std::unordered_map<LoopRef, LoopRuntime, LoopRefHash> loop_runtime_;
  std::unordered_map<LoopRef, std::unordered_map<std::uint32_t, ObjLoopSummary>,
                     LoopRefHash>
      loop_objects_;
  std::unordered_map<const ir::Function*, std::vector<std::uint64_t>> counts_;
  const ir::Function* last_fn_ = nullptr;
  std::vector<std::uint64_t>* last_counts_ = nullptr;
};

}  // namespace mvgnn::profiler
