// Computational-unit (CU) construction.
//
// DiscoPoP's CUs group instructions that follow one read-compute-write
// pattern on a variable (paper Fig. 4). We approximate that statically with
// a union-find over (a) register def-use edges and (b) load-after-store
// links on the same scalar slot within a basic block, which yields exactly
// the paper's two-CU decomposition on the Fig. 4 example while keeping
// separate statements (stencil points, distinct outputs) in separate CUs.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/function.hpp"

namespace mvgnn::profiler {

struct CU {
  std::uint32_t id = 0;
  const ir::Function* fn = nullptr;
  std::vector<ir::InstrId> instrs;  // sorted by arena index
  int start_line = 0;
  int end_line = 0;
  ir::LoopId loop = ir::kNoLoop;  // innermost loop containing every member
};

/// Builds the CUs of one function. Markers, terminators and allocas are not
/// CU members (they carry no computation).
[[nodiscard]] std::vector<CU> build_cus(const ir::Function& fn);

}  // namespace mvgnn::profiler
