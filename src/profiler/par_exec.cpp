// Parallel interpreter mode (see par_exec.hpp for the execution model).
//
// Layout of the address space during a parallel section:
//
//   [0, high_water)            shared memory image, owned by the master
//   [kArenaBase * (s+1), ...)  shard s's private allocation arena
//
// The shared image never grows while shards run (shard Alloca/AllocArr go
// to the arena), so concurrent shards index a stable vector and the
// planner's iteration-disjointness guarantee makes their shared writes
// race-free. Privatized cells are resolved in the shard overlay before the
// shared image is consulted.
#include "profiler/par_exec.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>

#include "frontend/sema.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/task_group.hpp"

namespace mvgnn::profiler {

namespace {

using ir::Function;
using ir::Instruction;
using ir::InstrId;
using ir::LoopId;
using ir::Opcode;
using ir::TypeKind;
using ir::Value;

using Cell = MemCell;

/// Shard arenas start far above any shared address (the shared image is
/// capped at max_mem_cells <= 2^24 cells in practice; anything at or above
/// kArenaBase is arena-resident by construction).
constexpr Addr kArenaBase = 1ull << 40;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Cell reduce_identity(ParReduceOp op, bool is_float) {
  Cell c;
  switch (op) {
    case ParReduceOp::Sum:
      c.i = 0;
      c.f = 0.0;
      break;
    case ParReduceOp::Product:
      c.i = 1;
      c.f = 1.0;
      break;
    case ParReduceOp::Min:
      c.i = std::numeric_limits<std::int64_t>::max();
      c.f = std::numeric_limits<double>::infinity();
      break;
    case ParReduceOp::Max:
      c.i = std::numeric_limits<std::int64_t>::min();
      c.f = -std::numeric_limits<double>::infinity();
      break;
  }
  (void)is_float;  // both sides are initialized; the access type picks one
  return c;
}

void reduce_into(Cell& a, const Cell& b, ParReduceOp op, bool is_float) {
  switch (op) {
    case ParReduceOp::Sum:
      if (is_float) a.f += b.f; else a.i += b.i;
      break;
    case ParReduceOp::Product:
      if (is_float) a.f *= b.f; else a.i *= b.i;
      break;
    case ParReduceOp::Min:
      if (is_float) a.f = std::fmin(a.f, b.f); else a.i = std::min(a.i, b.i);
      break;
    case ParReduceOp::Max:
      if (is_float) a.f = std::fmax(a.f, b.f); else a.i = std::max(a.i, b.i);
      break;
  }
}

// ---- pre-decoded program form --------------------------------------------
//
// The engine never executes ir::Instruction directly: each function is
// decoded once per run into contiguous micro-ops with inline operand copies
// and pre-resolved callees. That removes the two dependent loads per step
// (block -> instr id -> arena slot), the heap hop into each instruction's
// operand vector, and the per-call builtin-name string compares that
// dominate the observed interpreter's dispatch cost — the concrete reason a
// parallel run beats profiler::run even before sharding.

enum class BuiltinId : std::uint8_t {
  Sqrt, Exp, Log, Sin, Cos, Fabs, Pow, Fmin, Fmax, Imin, Imax, Iabs, None
};

BuiltinId builtin_id(const std::string& name) {
  if (name == "sqrt") return BuiltinId::Sqrt;
  if (name == "exp") return BuiltinId::Exp;
  if (name == "log") return BuiltinId::Log;
  if (name == "sin") return BuiltinId::Sin;
  if (name == "cos") return BuiltinId::Cos;
  if (name == "fabs") return BuiltinId::Fabs;
  if (name == "pow") return BuiltinId::Pow;
  if (name == "fmin") return BuiltinId::Fmin;
  if (name == "fmax") return BuiltinId::Fmax;
  if (name == "imin") return BuiltinId::Imin;
  if (name == "imax") return BuiltinId::Imax;
  if (name == "iabs") return BuiltinId::Iabs;
  return BuiltinId::None;
}

struct MicroOp {
  Opcode op = Opcode::Ret;
  TypeKind type = TypeKind::Void;
  std::uint8_t nops = 0;
  BuiltinId builtin = BuiltinId::None;
  InstrId id = ir::kNoInstr;       // result register (arena index)
  LoopId loop = ir::kNoLoop;       // loop markers only
  Value ops[3];  // inline operands (user calls spill via fn.instr(id))
};

struct DecodedFn {
  std::vector<std::vector<MicroOp>> blocks;  // indexed by BlockId
  /// Pre-resolved user-call targets, indexed by InstrId (call sites only).
  std::vector<const Function*> callees;
};

struct DecodedModule {
  std::unordered_map<const Function*, DecodedFn> fns;
};

DecodedFn decode_fn(const ir::Module& m, const Function& fn) {
  DecodedFn d;
  d.blocks.resize(fn.blocks.size());
  d.callees.assign(fn.instrs.size(), nullptr);
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    const ir::BasicBlock& bb = fn.blocks[b];
    std::vector<MicroOp>& code = d.blocks[b];
    code.reserve(bb.instrs.size());
    for (const InstrId id : bb.instrs) {
      const Instruction& in = fn.instr(id);
      MicroOp mop;
      mop.op = in.op;
      mop.type = in.type;
      mop.id = id;
      mop.loop = in.loop;
      mop.nops = static_cast<std::uint8_t>(
          std::min<std::size_t>(in.operands.size(), 3));
      for (std::size_t k = 0; k < mop.nops; ++k) mop.ops[k] = in.operands[k];
      if (in.op == Opcode::Call) {
        if (frontend::find_builtin(in.callee)) {
          mop.builtin = builtin_id(in.callee);
        }
        if (mop.builtin == BuiltinId::None) d.callees[id] = m.find(in.callee);
      }
      code.push_back(mop);
    }
  }
  return d;
}

// ---- per-shard execution context -----------------------------------------

struct PrivCell {
  Addr addr = 0;
  Cell cell;
  bool stored = false;
};

struct PrivRange {
  Addr base = 0;
  std::uint64_t size = 0;
  bool stored = false;
  std::vector<Cell> cells;  // copy-in of the shared range
};

struct RedCell {
  Addr addr = 0;
  ParReduceOp op = ParReduceOp::Sum;
  bool is_float = false;
  Cell acc;  // starts at the identity
};

struct RedRange {
  Addr base = 0;
  std::uint64_t size = 0;
  ParReduceOp op = ParReduceOp::Sum;
  bool is_float = false;
  std::vector<Cell> cells;  // identity-initialized partial
};

struct ShardCtx {
  Addr iv_addr = 0;
  Cell iv;
  std::uint64_t quota = 0;   // iterations this shard owns
  std::uint64_t heads = 0;   // LoopHead count at shard depth 0
  std::size_t overlay = 0;   // total privatized/reduced targets (0 = none)
  std::vector<PrivCell> priv;
  std::vector<PrivRange> priv_ranges;
  std::vector<RedCell> reds;
  std::vector<RedRange> red_ranges;
  Addr arena_base = 0;
  std::vector<Cell> arena;
  std::uint64_t steps = 0;
};

// ---- the engine ----------------------------------------------------------

/// Lean interpreter: no observer hooks, no fault-injection compare. One
/// instance is the master; shard instances share the master's memory image
/// through pointers and resolve privatized cells in their ShardCtx.
class ParEngine {
 public:
  // Master.
  ParEngine(const ir::Module& m, const ParPlan& plan,
            const ParRunOptions& opts)
      : m_(m), opts_(opts), plan_(&plan) {}

  // Shard: shares the master's memory image, intercepts nothing.
  ParEngine(const ParEngine& master, ShardCtx& ctx, LoopId loop)
      : m_(master.m_),
        opts_(master.opts_),
        plan_(nullptr),
        mem_(master.mem_),
        code_(master.code_),
        shard_(&ctx),
        shard_loop_(loop) {}

  ParOutput run_entry(const std::string& entry,
                      std::span<const ArgInit> inits) {
    OBS_SPAN("interp.run_parallel");
    const Function* fn = m_.find(entry);
    if (!fn) throw InterpError("entry function '" + entry + "' not found");
    if (inits.size() != fn->params.size()) {
      throw InterpError("argument count mismatch for '" + entry + "'");
    }
    entry_fn_ = fn;
    mem_ = &owned_mem_;
    auto code = std::make_shared<DecodedModule>();
    for (const auto& f : m_.functions) {
      code->fns.emplace(f.get(), decode_fn(m_, *f));
    }
    code_ = std::move(code);
    std::vector<RtVal> args;
    args.reserve(inits.size());
    for (std::size_t i = 0; i < inits.size(); ++i) {
      args.push_back(make_arg(fn->params[i], inits[i]));
    }
    ParOutput out;
    out.run.return_value = exec(*fn, args, 0);
    out.run.steps = steps_;
    out.parallel_loops = parallel_loops_;
    out.arg_arrays.reserve(args.size());
    for (const RtVal& a : args) {
      std::vector<Cell> cells;
      if (a.kind == RtVal::Kind::ArrayRef) {
        cells.assign(
            owned_mem_.begin() + static_cast<std::ptrdiff_t>(a.base),
            owned_mem_.begin() + static_cast<std::ptrdiff_t>(a.base + a.size));
      }
      out.arg_arrays.push_back(std::move(cells));
    }
    struct ParMetrics {
      obs::Counter& runs =
          obs::Registry::global().counter("interp.parallel_runs_total");
      obs::Counter& loops =
          obs::Registry::global().counter("interp.parallel_loops_total");
      obs::Counter& instrs =
          obs::Registry::global().counter("interp.instructions_total");
    };
    static ParMetrics metrics;
    metrics.runs.add(1);
    metrics.loops.add(parallel_loops_);
    metrics.instrs.add(steps_);
    return out;
  }

  /// Shard entry: runs iterations [k0, k0+quota) of the planned loop,
  /// starting at the header block with the context's private induction
  /// value. Returns the shard's dynamic step count.
  std::uint64_t run_shard(const Function& fn, std::vector<RtVal> regs,
                          const std::vector<RtVal>& args,
                          ir::BlockId header) {
    shard_regs_ = std::move(regs);
    exec(fn, args, header, &shard_regs_);
    shard_->steps = steps_;
    return steps_;
  }

 private:
  RtVal make_arg(const ir::Param& p, const ArgInit& init) {
    RtVal v;
    switch (p.type) {
      case TypeKind::Int:
        v.kind = RtVal::Kind::Int;
        v.i = init.int_val;
        return v;
      case TypeKind::Float:
        v.kind = RtVal::Kind::Float;
        v.f = init.float_val;
        return v;
      case TypeKind::ArrInt:
      case TypeKind::ArrFloat: {
        MemObject obj;
        obj.kind = ObjKind::ArgArray;
        obj.name = p.name;
        const Addr base = objects_.allocate(obj, init.array_size);
        ensure_mem();
        // Same deterministic fill as profiler::run — a parallel run sees
        // exactly the inputs the sequential run saw.
        for (std::uint64_t k = 0; k < init.array_size; ++k) {
          const std::uint64_t h = splitmix64(init.fill_seed * 0x9E37 + k);
          Cell& c = owned_mem_[base + k];
          if (p.type == TypeKind::ArrInt) {
            c.i = init.array_size
                      ? static_cast<std::int64_t>(h % init.array_size)
                      : 0;
          } else {
            c.f = 0.5 + static_cast<double>(h % (1u << 20)) / (1u << 20);
          }
        }
        v.kind = RtVal::Kind::ArrayRef;
        v.base = base;
        v.size = init.array_size;
        v.elem = ir::element_type(p.type);
        return v;
      }
      case TypeKind::Void:
        throw InterpError("void parameter");
    }
    return v;
  }

  void ensure_mem() {
    const Addr hw = objects_.high_water();
    if (hw > opts_.max_mem_cells) {
      obs::Registry::global().counter("interp.mem_cap_exceeded_total").add(1);
      throw InterpError("memory cap exceeded: " + std::to_string(hw) +
                        " cells > cap " + std::to_string(opts_.max_mem_cells));
    }
    if (owned_mem_.size() < hw) owned_mem_.resize(hw);
  }

  [[noreturn]] void fault(const Function& fn, const Instruction& in,
                          const std::string& msg) {
    throw InterpError("@" + fn.name + " line " + std::to_string(in.loc.line) +
                      ": " + msg);
  }

  /// Resolves an address for a read. Shards consult their overlay first;
  /// `overlay == 0` (pure DOALL over shared arrays) skips the scans.
  Cell& cell(Addr a) {
    if (shard_) {
      ShardCtx& c = *shard_;
      if (a >= c.arena_base) return c.arena[a - c.arena_base];
      if (a == c.iv_addr) return c.iv;
      if (c.overlay != 0) {
        for (PrivCell& p : c.priv) {
          if (p.addr == a) return p.cell;
        }
        for (RedCell& r : c.reds) {
          if (r.addr == a) return r.acc;
        }
        for (RedRange& r : c.red_ranges) {
          if (a >= r.base && a < r.base + r.size) return r.cells[a - r.base];
        }
        for (PrivRange& r : c.priv_ranges) {
          if (a >= r.base && a < r.base + r.size) return r.cells[a - r.base];
        }
      }
    }
    return (*mem_)[a];
  }

  /// Resolves an address for a write, marking privatized targets so the
  /// master can copy out from the last shard that stored.
  Cell& cell_store(Addr a) {
    if (shard_) {
      ShardCtx& c = *shard_;
      if (a >= c.arena_base) return c.arena[a - c.arena_base];
      if (a == c.iv_addr) return c.iv;
      if (c.overlay != 0) {
        for (PrivCell& p : c.priv) {
          if (p.addr == a) {
            p.stored = true;
            return p.cell;
          }
        }
        for (RedCell& r : c.reds) {
          if (r.addr == a) return r.acc;
        }
        for (RedRange& r : c.red_ranges) {
          if (a >= r.base && a < r.base + r.size) return r.cells[a - r.base];
        }
        for (PrivRange& r : c.priv_ranges) {
          if (a >= r.base && a < r.base + r.size) {
            r.stored = true;
            return r.cells[a - r.base];
          }
        }
      }
    }
    return (*mem_)[a];
  }

  /// Allocates `n` cells: shards use their private arena (the shared image
  /// must not grow while shards run), the master the shared object table.
  RtVal allocate(const Function& fn, const Instruction& in, InstrId id,
                 std::uint64_t n, ObjKind kind) {
    RtVal out;
    out.kind = RtVal::Kind::ArrayRef;
    out.size = n;
    out.elem = (in.op == Opcode::Alloca) ? in.type : ir::element_type(in.type);
    if (shard_) {
      ShardCtx& c = *shard_;
      if (c.arena.size() + n > opts_.max_mem_cells) {
        throw InterpError("memory cap exceeded in parallel shard");
      }
      out.base = c.arena_base + c.arena.size();
      c.arena.resize(c.arena.size() + std::max<std::uint64_t>(n, 1));
      return out;
    }
    MemObject obj;
    obj.kind = kind;
    obj.name = in.name;
    obj.fn = &fn;
    obj.alloca_id = id;
    out.base = objects_.allocate(obj, n);
    ensure_mem();
    for (std::uint64_t k = 0; k < n; ++k) owned_mem_[out.base + k] = Cell{};
    return out;
  }

  // ---- bound evaluation --------------------------------------------------

  /// Re-evaluates the (loop-invariant, planner-validated) bound expression
  /// at LoopEnter: immediates, integer arguments, loads of scalar slots and
  /// integer arithmetic over those.
  std::int64_t eval_bound(const Function& fn, const Value& v,
                          const std::vector<RtVal>& regs,
                          const std::vector<RtVal>& args) {
    switch (v.kind) {
      case Value::Kind::ImmInt:
        return v.imm_int;
      case Value::Kind::Arg:
        return args[v.arg].i;
      case Value::Kind::Reg: {
        const Instruction& in = fn.instr(v.reg);
        switch (in.op) {
          case Opcode::Load: {
            const Value& slot = in.operands[0];
            if (!slot.is_reg()) break;
            const RtVal& s = regs[slot.reg];
            if (s.kind != RtVal::Kind::ArrayRef) {
              throw InterpError("bound slot not materialized at LoopEnter");
            }
            return (*mem_)[s.base].i;
          }
          case Opcode::Add:
            return eval_bound(fn, in.operands[0], regs, args) +
                   eval_bound(fn, in.operands[1], regs, args);
          case Opcode::Sub:
            return eval_bound(fn, in.operands[0], regs, args) -
                   eval_bound(fn, in.operands[1], regs, args);
          case Opcode::Mul:
            return eval_bound(fn, in.operands[0], regs, args) *
                   eval_bound(fn, in.operands[1], regs, args);
          case Opcode::Neg:
            return -eval_bound(fn, in.operands[0], regs, args);
          default:
            break;
        }
        break;
      }
      default:
        break;
    }
    throw InterpError("unsupported bound expression in parallel plan");
  }

  /// Exact trip count of `for (iv = lo; iv CMP bound; iv += step)`.
  static std::int64_t trip_count(std::int64_t lo, std::int64_t bound,
                                 Opcode cmp, std::int64_t step) {
    switch (cmp) {
      case Opcode::CmpLt:
        return bound > lo ? (bound - lo - 1) / step + 1 : 0;
      case Opcode::CmpLe:
        return bound >= lo ? (bound - lo) / step + 1 : 0;
      case Opcode::CmpGt:
        return lo > bound ? (lo - bound - 1) / (-step) + 1 : 0;
      case Opcode::CmpGe:
        return lo >= bound ? (lo - bound) / (-step) + 1 : 0;
      default:
        return 0;
    }
  }

  // ---- the parallel section ----------------------------------------------

  const ParLoop* planned(const Function& fn, LoopId l) const {
    if (!plan_ || &fn != entry_fn_) return nullptr;
    for (const ParLoop& pl : plan_->loops) {
      if (pl.loop == l) return &pl;
    }
    return nullptr;
  }

  /// Resolves a plan-level array reference against the live frame.
  RtVal resolve_array(const Function& fn, const ParArrayRef& ref,
                      const std::vector<RtVal>& regs,
                      const std::vector<RtVal>& args) {
    const RtVal v = ref.is_arg ? args[ref.arg] : regs[ref.alloca_id];
    if (v.kind != RtVal::Kind::ArrayRef) {
      throw InterpError("@" + fn.name +
                        ": planned array not materialized at LoopEnter");
    }
    return v;
  }

  /// Executes one instance of a planned loop as kParShards iteration-range
  /// shards. On return the shared image holds the merged result; the caller
  /// jumps to the loop's exit block.
  void parallel_loop(const Function& fn, const ParLoop& pl,
                     const std::vector<RtVal>& regs,
                     const std::vector<RtVal>& args) {
    const ir::LoopInfo& loop = fn.loops[pl.loop];
    const RtVal ivr = regs[loop.induction_slot];
    if (ivr.kind != RtVal::Kind::ArrayRef) {
      throw InterpError("@" + fn.name +
                        ": induction slot not materialized at LoopEnter");
    }
    const Addr iv_addr = ivr.base;
    const std::int64_t lo = (*mem_)[iv_addr].i;
    const std::int64_t bound = eval_bound(fn, pl.bound.value, regs, args);
    const std::int64_t trip = trip_count(lo, bound, pl.bound.cmp, pl.step);
    if (trip <= 0) return;  // zero-trip: the body never ran, iv stays lo
    ++parallel_loops_;

    // Resolve privatization targets once against the live frame.
    std::vector<std::pair<Addr, Cell>> priv_init;
    priv_init.reserve(pl.private_slots.size());
    for (const InstrId slot : pl.private_slots) {
      const RtVal s = regs[slot];
      if (s.kind != RtVal::Kind::ArrayRef) {
        throw InterpError("@" + fn.name +
                          ": privatized slot not materialized at LoopEnter");
      }
      priv_init.emplace_back(s.base, (*mem_)[s.base]);
    }
    std::vector<RedCell> red_init;
    for (const ParScalarReduction& r : pl.scalar_reductions) {
      const RtVal s = regs[r.slot];
      if (s.kind != RtVal::Kind::ArrayRef) {
        throw InterpError("@" + fn.name +
                          ": reduction slot not materialized at LoopEnter");
      }
      RedCell rc;
      rc.addr = s.base;
      rc.op = r.op;
      rc.is_float = r.is_float;
      rc.acc = reduce_identity(r.op, r.is_float);
      red_init.push_back(rc);
    }
    std::vector<RedRange> red_range_init;
    for (const ParArrayReduction& r : pl.array_reductions) {
      const RtVal a = resolve_array(fn, r.array, regs, args);
      RedRange rr;
      rr.base = a.base;
      rr.size = a.size;
      rr.op = r.op;
      rr.is_float = r.is_float;
      rr.cells.assign(a.size, reduce_identity(r.op, r.is_float));
      red_range_init.push_back(std::move(rr));
    }
    std::vector<PrivRange> priv_range_init;
    for (const ParArrayRef& r : pl.private_arrays) {
      const RtVal a = resolve_array(fn, r, regs, args);
      PrivRange pr;
      pr.base = a.base;
      pr.size = a.size;
      pr.cells.assign(
          mem_->begin() + static_cast<std::ptrdiff_t>(a.base),
          mem_->begin() + static_cast<std::ptrdiff_t>(a.base + a.size));
      priv_range_init.push_back(std::move(pr));
    }

    // Build the fixed shard set. Shard s owns [trip*s/S, trip*(s+1)/S).
    const std::uint32_t S = kParShards;
    std::vector<std::unique_ptr<ShardCtx>> shards(S);
    for (std::uint32_t s = 0; s < S; ++s) {
      auto ctx = std::make_unique<ShardCtx>();
      const std::int64_t k0 = trip * s / S;
      const std::int64_t k1 = trip * (s + 1) / S;
      ctx->quota = static_cast<std::uint64_t>(k1 - k0);
      ctx->iv_addr = iv_addr;
      ctx->iv.i = lo + k0 * pl.step;
      for (const auto& [addr, c] : priv_init) {
        ctx->priv.push_back(PrivCell{addr, c, false});
      }
      ctx->reds = red_init;
      ctx->red_ranges = red_range_init;
      ctx->priv_ranges = priv_range_init;
      ctx->overlay = ctx->priv.size() + ctx->reds.size() +
                     ctx->red_ranges.size() + ctx->priv_ranges.size();
      ctx->arena_base = kArenaBase * (s + 1);
      shards[s] = std::move(ctx);
    }

    auto run_one = [&](std::uint32_t s) {
      if (shards[s]->quota == 0) return;
      ParEngine shard_engine(*this, *shards[s], pl.loop);
      shard_engine.run_shard(fn, regs, args, loop.header);
    };
    if (opts_.threads <= 1) {
      for (std::uint32_t s = 0; s < S; ++s) run_one(s);
    } else {
      par::TaskGroup group;
      for (std::uint32_t s = 0; s < S; ++s) {
        group.run([&run_one, s] { run_one(s); });
      }
      group.wait();  // rethrows the first shard failure
    }
    obs::Registry::global()
        .counter("interp.parallel_shards_total")
        .add(S);

    // ---- deterministic merge (shard order is fixed, threads are not) ----
    for (const auto& ctx : shards) steps_ += ctx->steps;

    // Privatized scalars and temp arrays: ascending shard order, so the
    // last shard that stored wins — the shard owning the final iterations.
    for (const auto& ctx : shards) {
      for (std::size_t p = 0; p < ctx->priv.size(); ++p) {
        if (ctx->priv[p].stored) (*mem_)[ctx->priv[p].addr] = ctx->priv[p].cell;
      }
      for (const PrivRange& r : ctx->priv_ranges) {
        if (!r.stored) continue;
        std::copy(r.cells.begin(), r.cells.end(),
                  mem_->begin() + static_cast<std::ptrdiff_t>(r.base));
      }
    }

    // Reductions: stride-doubling tree merge across shard partials (the
    // ag::tree_merge order), then one fold into the shared cell.
    for (std::size_t r = 0; r < red_init.size(); ++r) {
      std::vector<Cell> parts(S);
      for (std::uint32_t s = 0; s < S; ++s) parts[s] = shards[s]->reds[r].acc;
      const ParReduceOp op = red_init[r].op;
      const bool isf = red_init[r].is_float;
      for (std::uint32_t stride = 1; stride < S; stride *= 2) {
        for (std::uint32_t i = 0; i + stride < S; i += 2 * stride) {
          reduce_into(parts[i], parts[i + stride], op, isf);
        }
      }
      reduce_into((*mem_)[red_init[r].addr], parts[0], op, isf);
    }
    for (std::size_t r = 0; r < red_range_init.size(); ++r) {
      const RedRange& proto = red_range_init[r];
      for (std::uint64_t j = 0; j < proto.size; ++j) {
        Cell parts[kParShards];
        for (std::uint32_t s = 0; s < S; ++s) {
          parts[s] = shards[s]->red_ranges[r].cells[j];
        }
        for (std::uint32_t stride = 1; stride < S; stride *= 2) {
          for (std::uint32_t i = 0; i + stride < S; i += 2 * stride) {
            reduce_into(parts[i], parts[i + stride], proto.op, proto.is_float);
          }
        }
        reduce_into((*mem_)[proto.base + j], parts[0], proto.op,
                    proto.is_float);
      }
    }

    // The induction variable ends where the sequential loop left it.
    (*mem_)[iv_addr].i = lo + trip * pl.step;
  }

  // ---- the dispatch loop ---------------------------------------------------

  /// Interprets `fn` from block `start` with the given frame. `frame_regs`
  /// non-null reuses an existing register file (shard entry into the middle
  /// of the entry function); otherwise a fresh frame is created.
  RtVal exec(const Function& fn, const std::vector<RtVal>& args,
             ir::BlockId start, std::vector<RtVal>* frame_regs = nullptr) {
    if (++depth_ > opts_.max_call_depth) {
      throw InterpError("call depth exceeded in @" + fn.name);
    }
    std::vector<RtVal> local_regs;
    if (!frame_regs) {
      local_regs.resize(fn.instrs.size());
      frame_regs = &local_regs;
    }
    std::vector<RtVal>& regs = *frame_regs;
    const DecodedFn& dfn = code_->fns.at(&fn);
    const std::vector<MicroOp>* code = &dfn.blocks[start];
    std::size_t ip = 0;
    RtVal ret;

    auto operand = [&](const Value& v) -> RtVal {
      switch (v.kind) {
        case Value::Kind::Reg: return regs[v.reg];
        case Value::Kind::ImmInt: {
          RtVal r;
          r.kind = RtVal::Kind::Int;
          r.i = v.imm_int;
          return r;
        }
        case Value::Kind::ImmFloat: {
          RtVal r;
          r.kind = RtVal::Kind::Float;
          r.f = v.imm_float;
          return r;
        }
        case Value::Kind::Arg: return args[v.arg];
        default: throw InterpError("bad operand kind at runtime");
      }
    };
    // Scalar accessors skip the 40-byte RtVal copy the generic path pays.
    auto as_int = [&](const Value& v) -> std::int64_t {
      switch (v.kind) {
        case Value::Kind::Reg: return regs[v.reg].i;
        case Value::Kind::ImmInt: return v.imm_int;
        case Value::Kind::ImmFloat: return 0;  // typed IR never mixes these
        case Value::Kind::Arg: return args[v.arg].i;
        default: throw InterpError("bad operand kind at runtime");
      }
    };
    auto as_float = [&](const Value& v) -> double {
      switch (v.kind) {
        case Value::Kind::Reg: return regs[v.reg].f;
        case Value::Kind::ImmInt: return 0.0;  // typed IR never mixes these
        case Value::Kind::ImmFloat: return v.imm_float;
        case Value::Kind::Arg: return args[v.arg].f;
        default: throw InterpError("bad operand kind at runtime");
      }
    };
    // Runtime kind of a stored value (stores carry no result type).
    auto val_is_float = [&](const Value& v) -> bool {
      switch (v.kind) {
        case Value::Kind::Reg: return regs[v.reg].kind == RtVal::Kind::Float;
        case Value::Kind::ImmFloat: return true;
        case Value::Kind::Arg:
          return args[v.arg].kind == RtVal::Kind::Float;
        default: return false;
      }
    };
    // Slot operands are Alloca registers on the hot path.
    auto slot_base = [&](const Value& v) -> Addr {
      return v.kind == Value::Kind::Reg ? regs[v.reg].base : operand(v).base;
    };

    // The step counter stays in a register for the dispatch loop and is
    // flushed to the member at every exit (faults abort the run, so a stale
    // member there is harmless).
    std::uint64_t steps = steps_;
    const std::uint64_t max_steps = opts_.max_steps;

    for (;;) {
      if (ip >= code->size()) {
        throw InterpError("fell off block in @" + fn.name);
      }
      const MicroOp& mop = (*code)[ip++];
      if (++steps > max_steps) {
        steps_ = steps;
        obs::Registry::global().counter("interp.fuel_exhausted_total").add(1);
        throw InterpError("fuel exhausted: step budget " +
                          std::to_string(opts_.max_steps) + " exceeded in @" +
                          fn.name);
      }
      RtVal& out = regs[mop.id];

      switch (mop.op) {
        // ---- integer arithmetic ----
        case Opcode::Add: out.kind = RtVal::Kind::Int; out.i = as_int(mop.ops[0]) + as_int(mop.ops[1]); break;
        case Opcode::Sub: out.kind = RtVal::Kind::Int; out.i = as_int(mop.ops[0]) - as_int(mop.ops[1]); break;
        case Opcode::Mul: out.kind = RtVal::Kind::Int; out.i = as_int(mop.ops[0]) * as_int(mop.ops[1]); break;
        case Opcode::Div: {
          const std::int64_t d = as_int(mop.ops[1]);
          if (d == 0) fault(fn, fn.instr(mop.id), "integer division by zero");
          out.kind = RtVal::Kind::Int;
          out.i = as_int(mop.ops[0]) / d;
          break;
        }
        case Opcode::Rem: {
          const std::int64_t d = as_int(mop.ops[1]);
          if (d == 0) fault(fn, fn.instr(mop.id), "integer modulo by zero");
          out.kind = RtVal::Kind::Int;
          out.i = as_int(mop.ops[0]) % d;
          break;
        }
        case Opcode::Neg: out.kind = RtVal::Kind::Int; out.i = -as_int(mop.ops[0]); break;

        // ---- float arithmetic ----
        case Opcode::FAdd: out.kind = RtVal::Kind::Float; out.f = as_float(mop.ops[0]) + as_float(mop.ops[1]); break;
        case Opcode::FSub: out.kind = RtVal::Kind::Float; out.f = as_float(mop.ops[0]) - as_float(mop.ops[1]); break;
        case Opcode::FMul: out.kind = RtVal::Kind::Float; out.f = as_float(mop.ops[0]) * as_float(mop.ops[1]); break;
        case Opcode::FDiv: out.kind = RtVal::Kind::Float; out.f = as_float(mop.ops[0]) / as_float(mop.ops[1]); break;
        case Opcode::FNeg: out.kind = RtVal::Kind::Float; out.f = -as_float(mop.ops[0]); break;

        // ---- comparisons ----
        case Opcode::CmpEq: out.kind = RtVal::Kind::Int; out.i = as_int(mop.ops[0]) == as_int(mop.ops[1]); break;
        case Opcode::CmpNe: out.kind = RtVal::Kind::Int; out.i = as_int(mop.ops[0]) != as_int(mop.ops[1]); break;
        case Opcode::CmpLt: out.kind = RtVal::Kind::Int; out.i = as_int(mop.ops[0]) < as_int(mop.ops[1]); break;
        case Opcode::CmpLe: out.kind = RtVal::Kind::Int; out.i = as_int(mop.ops[0]) <= as_int(mop.ops[1]); break;
        case Opcode::CmpGt: out.kind = RtVal::Kind::Int; out.i = as_int(mop.ops[0]) > as_int(mop.ops[1]); break;
        case Opcode::CmpGe: out.kind = RtVal::Kind::Int; out.i = as_int(mop.ops[0]) >= as_int(mop.ops[1]); break;
        case Opcode::FCmpEq: out.kind = RtVal::Kind::Int; out.i = as_float(mop.ops[0]) == as_float(mop.ops[1]); break;
        case Opcode::FCmpNe: out.kind = RtVal::Kind::Int; out.i = as_float(mop.ops[0]) != as_float(mop.ops[1]); break;
        case Opcode::FCmpLt: out.kind = RtVal::Kind::Int; out.i = as_float(mop.ops[0]) < as_float(mop.ops[1]); break;
        case Opcode::FCmpLe: out.kind = RtVal::Kind::Int; out.i = as_float(mop.ops[0]) <= as_float(mop.ops[1]); break;
        case Opcode::FCmpGt: out.kind = RtVal::Kind::Int; out.i = as_float(mop.ops[0]) > as_float(mop.ops[1]); break;
        case Opcode::FCmpGe: out.kind = RtVal::Kind::Int; out.i = as_float(mop.ops[0]) >= as_float(mop.ops[1]); break;

        // ---- logic ----
        case Opcode::And: out.kind = RtVal::Kind::Int; out.i = (as_int(mop.ops[0]) != 0) && (as_int(mop.ops[1]) != 0); break;
        case Opcode::Or: out.kind = RtVal::Kind::Int; out.i = (as_int(mop.ops[0]) != 0) || (as_int(mop.ops[1]) != 0); break;
        case Opcode::Not: out.kind = RtVal::Kind::Int; out.i = as_int(mop.ops[0]) == 0; break;

        // ---- conversions ----
        case Opcode::IntToFloat: out.kind = RtVal::Kind::Float; out.f = static_cast<double>(as_int(mop.ops[0])); break;
        case Opcode::FloatToInt: out.kind = RtVal::Kind::Int; out.i = static_cast<std::int64_t>(as_float(mop.ops[0])); break;

        // ---- memory ----
        case Opcode::Alloca:
          out = allocate(fn, fn.instr(mop.id), mop.id, 1, ObjKind::ScalarLocal);
          if (!shard_) owned_mem_[out.base] = Cell{};
          break;
        case Opcode::AllocArr: {
          const std::int64_t n = as_int(mop.ops[0]);
          if (n < 0) fault(fn, fn.instr(mop.id), "negative array size");
          out = allocate(fn, fn.instr(mop.id), mop.id, static_cast<std::uint64_t>(n),
                         ObjKind::ArrayLocal);
          break;
        }
        case Opcode::Load: {
          const Cell& c = cell(slot_base(mop.ops[0]));
          if (mop.type == TypeKind::Float) {
            out.kind = RtVal::Kind::Float;
            out.f = c.f;
          } else {
            out.kind = RtVal::Kind::Int;
            out.i = c.i;
          }
          break;
        }
        case Opcode::Store: {
          Cell& c = cell_store(slot_base(mop.ops[0]));
          const Value& v = mop.ops[1];
          if (val_is_float(v)) {
            c.f = as_float(v);
          } else {
            c.i = as_int(v);
          }
          break;
        }
        case Opcode::LoadIdx: {
          const RtVal& arr = mop.ops[0].kind == Value::Kind::Arg
                                 ? args[mop.ops[0].arg]
                                 : regs[mop.ops[0].reg];
          const std::int64_t idx = as_int(mop.ops[1]);
          if (idx < 0 || static_cast<std::uint64_t>(idx) >= arr.size) {
            fault(fn, fn.instr(mop.id),
                  "index " + std::to_string(idx) + " out of bounds [0," +
                      std::to_string(arr.size) + ")");
          }
          const Cell& c = cell(arr.base + static_cast<Addr>(idx));
          if (mop.type == TypeKind::Float) {
            out.kind = RtVal::Kind::Float;
            out.f = c.f;
          } else {
            out.kind = RtVal::Kind::Int;
            out.i = c.i;
          }
          break;
        }
        case Opcode::StoreIdx: {
          const RtVal& arr = mop.ops[0].kind == Value::Kind::Arg
                                 ? args[mop.ops[0].arg]
                                 : regs[mop.ops[0].reg];
          const std::int64_t idx = as_int(mop.ops[1]);
          if (idx < 0 || static_cast<std::uint64_t>(idx) >= arr.size) {
            fault(fn, fn.instr(mop.id),
                  "index " + std::to_string(idx) + " out of bounds [0," +
                      std::to_string(arr.size) + ")");
          }
          Cell& c = cell_store(arr.base + static_cast<Addr>(idx));
          if (val_is_float(mop.ops[2])) {
            c.f = as_float(mop.ops[2]);
          } else {
            c.i = as_int(mop.ops[2]);
          }
          break;
        }

        // ---- control ----
        case Opcode::Br:
          code = &dfn.blocks[mop.ops[0].block];
          ip = 0;
          break;
        case Opcode::CondBr: {
          const bool t = as_int(mop.ops[0]) != 0;
          code = &dfn.blocks[mop.ops[t ? 1 : 2].block];
          ip = 0;
          break;
        }
        case Opcode::Ret:
          if (mop.nops != 0) ret = operand(mop.ops[0]);
          steps_ = steps;
          if (shard_ && depth_ == 1) {
            throw InterpError("parallel shard returned from @" + fn.name +
                              " (planned loop has an early exit)");
          }
          --depth_;
          return ret;

        // ---- calls ----
        case Opcode::Call: {
          if (mop.builtin != BuiltinId::None) {
            out = eval_builtin(mop, as_int, as_float);
          } else if (const Function* callee = dfn.callees[mop.id]) {
            const Instruction& in = fn.instr(mop.id);
            std::vector<RtVal> cargs;
            cargs.reserve(in.operands.size());
            for (const Value& v : in.operands) cargs.push_back(operand(v));
            steps_ = steps;
            out = exec(*callee, cargs, 0);
            steps = steps_;
          } else {
            fault(fn, fn.instr(mop.id),
                  "unknown function '" + fn.instr(mop.id).callee + "'");
          }
          break;
        }

        // ---- loop markers ----
        case Opcode::LoopEnter: {
          if (const ParLoop* pl = planned(fn, mop.loop); pl && depth_ == 1) {
            steps_ = steps;
            parallel_loop(fn, *pl, regs, args);
            steps = steps_;
            code = &dfn.blocks[fn.loops[mop.loop].exit];
            ip = 0;
          }
          break;
        }
        case Opcode::LoopHead:
          if (shard_ && mop.loop == shard_loop_ && depth_ == 1) {
            if (++shard_->heads > shard_->quota) {
              steps_ = steps;
              --depth_;
              return ret;  // this shard's iteration range is exhausted
            }
          }
          break;
        case Opcode::LoopExit:
          if (shard_ && mop.loop == shard_loop_ && depth_ == 1) {
            steps_ = steps;
            --depth_;
            return ret;  // natural loop exit inside the shard's range
          }
          break;
      }
    }
  }

  template <typename IntFn, typename FloatFn>
  RtVal eval_builtin(const MicroOp& mop, IntFn&& iop, FloatFn&& fop) {
    RtVal out;
    auto farg = [&](std::size_t i) { return fop(mop.ops[i]); };
    auto iarg = [&](std::size_t i) { return iop(mop.ops[i]); };
    out.kind = RtVal::Kind::Float;
    switch (mop.builtin) {
      case BuiltinId::Sqrt: out.f = std::sqrt(farg(0)); break;
      case BuiltinId::Exp: out.f = std::exp(farg(0)); break;
      case BuiltinId::Log: out.f = std::log(farg(0)); break;
      case BuiltinId::Sin: out.f = std::sin(farg(0)); break;
      case BuiltinId::Cos: out.f = std::cos(farg(0)); break;
      case BuiltinId::Fabs: out.f = std::fabs(farg(0)); break;
      case BuiltinId::Pow: out.f = std::pow(farg(0), farg(1)); break;
      case BuiltinId::Fmin: out.f = std::fmin(farg(0), farg(1)); break;
      case BuiltinId::Fmax: out.f = std::fmax(farg(0), farg(1)); break;
      case BuiltinId::Imin:
        out.kind = RtVal::Kind::Int;
        out.i = std::min(iarg(0), iarg(1));
        break;
      case BuiltinId::Imax:
        out.kind = RtVal::Kind::Int;
        out.i = std::max(iarg(0), iarg(1));
        break;
      case BuiltinId::Iabs:
        out.kind = RtVal::Kind::Int;
        out.i = std::llabs(iarg(0));
        break;
      case BuiltinId::None:
        throw InterpError("unreachable builtin dispatch");
    }
    return out;
  }

  const ir::Module& m_;
  const ParRunOptions opts_;
  const ParPlan* plan_ = nullptr;       // master only
  const Function* entry_fn_ = nullptr;  // master only
  ObjectTable objects_;                 // master only
  std::vector<Cell> owned_mem_;         // master only
  std::vector<Cell>* mem_ = nullptr;    // shared image (points at master's)
  std::shared_ptr<const DecodedModule> code_;  // built by the master
  ShardCtx* shard_ = nullptr;           // shard only
  LoopId shard_loop_ = ir::kNoLoop;     // shard only
  std::vector<RtVal> shard_regs_;       // shard only: entry-frame registers
  std::uint64_t steps_ = 0;
  std::uint32_t depth_ = 0;
  std::uint64_t parallel_loops_ = 0;
};

}  // namespace

ParOutput run_parallel(const ir::Module& m, const std::string& entry,
                       std::span<const ArgInit> args, const ParPlan& plan,
                       const ParRunOptions& opts) {
  if (!plan.fn.empty() && plan.fn != entry) {
    throw InterpError("parallel plan targets '" + plan.fn +
                      "' but entry is '" + entry + "'");
  }
  return ParEngine(m, plan, opts).run_entry(entry, args);
}

}  // namespace mvgnn::profiler
