// IR interpreter with instrumentation hooks.
//
// Stands in for "compile with clang + run the DiscoPoP-instrumented binary":
// it executes MiniC IR directly and reports every memory access and loop
// event to an ExecObserver. Determinism: given the same module, entry and
// argument seeds, a run is bit-reproducible.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/function.hpp"
#include "profiler/mem_object.hpp"
#include "profiler/observer.hpp"

namespace mvgnn::profiler {

/// Thrown on runtime faults: out-of-bounds index, division by zero, missing
/// entry function, step-budget exhaustion, call-depth overflow.
struct InterpError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// How to synthesize one entry-function argument.
struct ArgInit {
  std::int64_t int_val = 0;     // scalar int parameters
  double float_val = 0.0;       // scalar float parameters
  std::uint64_t array_size = 0; // element count for array parameters
  std::uint64_t fill_seed = 1;  // deterministic fill pattern for arrays

  static ArgInit of_int(std::int64_t v) { ArgInit a; a.int_val = v; return a; }
  static ArgInit of_float(double v) { ArgInit a; a.float_val = v; return a; }
  static ArgInit of_array(std::uint64_t n, std::uint64_t seed = 1) {
    ArgInit a;
    a.array_size = n;
    a.fill_seed = seed;
    return a;
  }
};

struct InterpOptions {
  /// Fuel: dynamic instruction budget. A pathological program (infinite
  /// loop, runaway recursion driver) traps with InterpError instead of
  /// hanging the profiler. Counted in `interp.fuel_exhausted_total`.
  std::uint64_t max_steps = 200'000'000;
  std::uint32_t max_call_depth = 4096;
  /// Memory cap in cells (one cell = one scalar/array element, 16 bytes).
  /// An OOM-allocator program traps instead of taking the build down with
  /// it. Default 1<<24 cells = 256 MiB. Counted in
  /// `interp.mem_cap_exceeded_total`.
  std::uint64_t max_mem_cells = 1ull << 24;
};

/// Runtime scalar or array-handle value.
struct RtVal {
  enum class Kind : std::uint8_t { Int, Float, ArrayRef } kind = Kind::Int;
  std::int64_t i = 0;
  double f = 0.0;
  Addr base = 0;           // ArrayRef
  std::uint64_t size = 0;  // ArrayRef element count
  ir::TypeKind elem = ir::TypeKind::Void;  // ArrayRef element type
};

/// Result of one interpreted run.
struct RunResult {
  RtVal return_value;
  std::uint64_t steps = 0;  // dynamic instruction count
};

/// One interpreter memory cell, holding both representations (the access
/// type decides which side is live). Public so runs can expose their final
/// argument-array contents for output-equality checks.
struct MemCell {
  std::int64_t i = 0;
  double f = 0.0;
};

/// A run plus its observable output memory: the final contents of every
/// array argument (scalar parameters get an empty vector). This is what the
/// parallelize pass compares between sequential and parallel execution.
struct CapturedRun {
  RunResult run;
  std::vector<std::vector<MemCell>> arg_arrays;
};

/// Executes `entry(args...)` of `m`, reporting events to `obs`. The object
/// table is an in/out parameter so callers can resolve the addresses the
/// observer saw, and fetch argument arrays after the run.
RunResult run(const ir::Module& m, const std::string& entry,
              std::span<const ArgInit> args, ExecObserver& obs,
              ObjectTable& objects, const InterpOptions& opts = {});

/// Convenience overload that discards the object table.
RunResult run(const ir::Module& m, const std::string& entry,
              std::span<const ArgInit> args, ExecObserver& obs,
              const InterpOptions& opts = {});

/// Unobserved sequential run that captures the final contents of the array
/// arguments — the reference side of the parallel-equivalence check and the
/// sequential baseline of the parallelize speedup table.
[[nodiscard]] CapturedRun run_capture(const ir::Module& m,
                                      const std::string& entry,
                                      std::span<const ArgInit> args,
                                      const InterpOptions& opts = {});

}  // namespace mvgnn::profiler
