// Per-loop dynamic features — exactly the Table I feature set of the paper.
#pragma once

#include <array>
#include <cstdint>

#include "profiler/dep_graph.hpp"

namespace mvgnn::profiler {

/// Table I: dynamic features used for loop parallelization classification.
struct LoopFeatures {
  std::uint64_t n_inst = 0;      // IR instructions within the loop (static)
  std::uint64_t exec_times = 0;  // total iterations executed
  double cfl = 0.0;              // critical path length of one iteration
  double esp = 1.0;              // estimated speedup (Amdahl bound)
  std::uint64_t incoming_dep = 0;  // deps entering the loop from outside
  std::uint64_t internal_dep = 0;  // deps between loop instructions
  std::uint64_t outgoing_dep = 0;  // deps leaving the loop

  /// Feature vector in the order of Table I.
  [[nodiscard]] std::array<double, 7> as_vector() const {
    return {static_cast<double>(n_inst), static_cast<double>(exec_times),
            cfl,        esp,
            static_cast<double>(incoming_dep),
            static_cast<double>(internal_dep),
            static_cast<double>(outgoing_dep)};
  }

  static constexpr int kCount = 7;
};

/// Computes the Table I features of loop `l` in `fn` from the dependence
/// profile.
///
/// CFL and ESP are computed on the intra-iteration dependence DAG of the
/// loop body: nodes are the loop's CU-member instructions, edges are
/// register def-use plus recorded intra-iteration memory dependences that
/// respect program order. ESP applies Amdahl's law with the DAG's maximum
/// breadth as the processor count and CFL/n_inst as the serial fraction.
[[nodiscard]] LoopFeatures compute_loop_features(const ir::Function& fn,
                                                 ir::LoopId l,
                                                 const DepProfile& profile);

}  // namespace mvgnn::profiler
