#include "profiler/cu.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "profiler/dep_graph.hpp"

namespace mvgnn::profiler {

namespace {

/// Plain union-find over instruction arena indices.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

bool cu_member(const ir::Instruction& in) {
  switch (in.op) {
    case ir::Opcode::Alloca:
    case ir::Opcode::AllocArr:
    case ir::Opcode::Br:
    case ir::Opcode::CondBr:
    case ir::Opcode::Ret:
    case ir::Opcode::LoopEnter:
    case ir::Opcode::LoopHead:
    case ir::Opcode::LoopExit:
      return false;
    default:
      return true;
  }
}

/// Innermost loop containing both `a` and `b` (either may be kNoLoop).
ir::LoopId common_loop(const ir::Function& fn, ir::LoopId a, ir::LoopId b) {
  for (ir::LoopId x = a; x != ir::kNoLoop; x = fn.loops[x].parent) {
    if (loop_contains(fn, x, b)) return x;
  }
  return ir::kNoLoop;
}

}  // namespace

std::vector<CU> build_cus(const ir::Function& fn) {
  Dsu dsu(fn.instrs.size());

  // (a) register def-use edges among CU members.
  for (ir::InstrId id = 0; id < fn.instrs.size(); ++id) {
    const ir::Instruction& in = fn.instr(id);
    if (!cu_member(in)) continue;
    for (const ir::Value& v : in.operands) {
      if (v.is_reg() && cu_member(fn.instr(v.reg))) dsu.unite(id, v.reg);
    }
  }

  // (b) read-after-write links on the same scalar slot within a block.
  for (const ir::BasicBlock& bb : fn.blocks) {
    std::unordered_map<ir::InstrId, ir::InstrId> last_store;  // slot -> store
    for (const ir::InstrId id : bb.instrs) {
      const ir::Instruction& in = fn.instr(id);
      if (in.op == ir::Opcode::Store && in.operands[0].is_reg()) {
        last_store[in.operands[0].reg] = id;
      } else if (in.op == ir::Opcode::Load && in.operands[0].is_reg()) {
        const auto it = last_store.find(in.operands[0].reg);
        if (it != last_store.end()) dsu.unite(id, it->second);
      }
    }
  }

  // Collect clusters.
  std::unordered_map<std::size_t, std::uint32_t> root_to_cu;
  std::vector<CU> cus;
  for (ir::InstrId id = 0; id < fn.instrs.size(); ++id) {
    const ir::Instruction& in = fn.instr(id);
    if (!cu_member(in)) continue;
    const std::size_t root = dsu.find(id);
    auto [it, fresh] =
        root_to_cu.emplace(root, static_cast<std::uint32_t>(cus.size()));
    if (fresh) {
      CU cu;
      cu.id = it->second;
      cu.fn = &fn;
      cu.loop = in.loop;
      cu.start_line = in.loc.valid() ? in.loc.line : 0;
      cu.end_line = cu.start_line;
      cus.push_back(std::move(cu));
    }
    CU& cu = cus[it->second];
    cu.instrs.push_back(id);
    cu.loop = common_loop(fn, cu.loop, in.loop);
    if (in.loc.valid()) {
      if (cu.start_line == 0 || in.loc.line < cu.start_line) {
        cu.start_line = in.loc.line;
      }
      cu.end_line = std::max(cu.end_line, in.loc.line);
    }
  }
  return cus;
}

}  // namespace mvgnn::profiler
