#include "nn/module.hpp"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace mvgnn::nn {

namespace {
constexpr std::uint32_t kMagic = 0x4D56474EU;  // "MVGN"
}

void save_weights(const Module& m, std::ostream& os) {
  const auto params = m.parameters();
  const std::uint32_t magic = kMagic;
  const std::uint32_t count = static_cast<std::uint32_t>(params.size());
  os.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  os.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (const ag::Tensor& p : params) {
    const std::uint64_t r = p.rows(), c = p.cols();
    os.write(reinterpret_cast<const char*>(&r), sizeof r);
    os.write(reinterpret_cast<const char*>(&c), sizeof c);
    os.write(reinterpret_cast<const char*>(p.data()),
             static_cast<std::streamsize>(p.numel() * sizeof(float)));
  }
}

void load_weights(Module& m, std::istream& is) {
  auto params = m.parameters();
  std::uint32_t magic = 0, count = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof magic);
  is.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!is || magic != kMagic) {
    throw std::runtime_error("load_weights: bad header");
  }
  if (count != params.size()) {
    throw std::runtime_error("load_weights: parameter count mismatch");
  }
  for (ag::Tensor& p : params) {
    std::uint64_t r = 0, c = 0;
    is.read(reinterpret_cast<char*>(&r), sizeof r);
    is.read(reinterpret_cast<char*>(&c), sizeof c);
    if (!is || r != p.rows() || c != p.cols()) {
      throw std::runtime_error("load_weights: shape mismatch");
    }
    is.read(reinterpret_cast<char*>(p.data()),
            static_cast<std::streamsize>(p.numel() * sizeof(float)));
    if (!is) throw std::runtime_error("load_weights: truncated file");
  }
}

}  // namespace mvgnn::nn
