#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>

namespace mvgnn::nn {

namespace {

float glorot_scale(std::size_t in, std::size_t out) {
  return std::sqrt(2.0f / static_cast<float>(in + out));
}

/// Dedups `entries`, then row-normalizes (each kept entry of row i gets
/// value 1/deg(i)) and compresses into CSR.
ag::CsrMatrix normalized_csr(
    std::size_t n,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> entries) {
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
  std::vector<std::uint32_t> deg(n, 0);
  for (const auto& [s, d] : entries) ++deg[s];
  std::vector<std::uint32_t> r, c;
  std::vector<float> v;
  r.reserve(entries.size());
  c.reserve(entries.size());
  v.reserve(entries.size());
  for (const auto& [s, d] : entries) {
    r.push_back(s);
    c.push_back(d);
    v.push_back(1.0f / static_cast<float>(deg[s]));
  }
  return ag::CsrMatrix::from_coo(n, n, r, c, v);
}

}  // namespace

Linear::Linear(std::size_t in, std::size_t out, par::Rng& rng)
    : w_(ag::Tensor::randn({in, out}, rng, glorot_scale(in, out))),
      b_(ag::Tensor::zeros({1, out}, /*requires_grad=*/true)) {}

GcnConv::GcnConv(std::size_t in, std::size_t out, par::Rng& rng)
    : w_(ag::Tensor::randn({in, out}, rng, glorot_scale(in, out))) {}

Lstm::Lstm(std::size_t in, std::size_t hidden, par::Rng& rng)
    : hidden_(hidden),
      wx_(ag::Tensor::randn({in, 4 * hidden}, rng, glorot_scale(in, hidden))),
      wh_(ag::Tensor::randn({hidden, 4 * hidden}, rng,
                            glorot_scale(hidden, hidden))),
      b_(ag::Tensor::zeros({1, 4 * hidden}, /*requires_grad=*/true)) {
  // Forget-gate bias starts at 1 (standard trick for gradient flow).
  for (std::size_t j = hidden; j < 2 * hidden; ++j) b_.data()[j] = 1.0f;
}

ag::Tensor Lstm::forward(const ag::Tensor& seq) const {
  const std::size_t t_steps = seq.rows();
  const std::size_t h = hidden_;
  ag::Tensor hs = ag::Tensor::zeros({1, h});
  ag::Tensor cs = ag::Tensor::zeros({1, h});
  ag::Tensor out;
  for (std::size_t t = 0; t < t_steps; ++t) {
    const ag::Tensor xt = ag::slice_rows(seq, t, t + 1);
    const ag::Tensor gates =
        ag::add(ag::matmul(xt, wx_), ag::matmul_bias(hs, wh_, b_));
    const ag::Tensor i = ag::sigmoid(ag::slice_cols(gates, 0, h));
    const ag::Tensor f = ag::sigmoid(ag::slice_cols(gates, h, 2 * h));
    const ag::Tensor g = ag::tanh_t(ag::slice_cols(gates, 2 * h, 3 * h));
    const ag::Tensor o = ag::sigmoid(ag::slice_cols(gates, 3 * h, 4 * h));
    cs = ag::add(ag::mul(f, cs), ag::mul(i, g));
    hs = ag::mul(o, ag::tanh_t(cs));
    out = (t == 0) ? hs : ag::concat_rows(out, hs);
  }
  return out;
}

RgcnConv::RgcnConv(std::size_t in, std::size_t out, std::size_t relations,
                   par::Rng& rng)
    : w_self_(ag::Tensor::randn({in, out}, rng, glorot_scale(in, out))) {
  w_rel_.reserve(relations);
  for (std::size_t r = 0; r < relations; ++r) {
    w_rel_.push_back(ag::Tensor::randn({in, out}, rng, glorot_scale(in, out)));
  }
}

ag::Tensor RgcnConv::forward(const std::vector<ag::CsrMatrix>& ahats,
                             const ag::Tensor& x) const {
  ag::Tensor z = ag::matmul(x, w_self_);
  for (std::size_t r = 0; r < w_rel_.size(); ++r) {
    if (ahats[r].nnz() == 0) continue;  // relation absent from this graph
    z = ag::add(z, ag::spmm(ahats[r], ag::matmul(x, w_rel_[r])));
  }
  return z;
}

std::vector<ag::Tensor> RgcnConv::parameters() const {
  std::vector<ag::Tensor> ps = {w_self_};
  ps.insert(ps.end(), w_rel_.begin(), w_rel_.end());
  return ps;
}

ag::CsrMatrix relation_adjacency(
    std::size_t n,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
    const std::vector<std::uint8_t>& kinds, std::uint8_t relation) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (kinds[e] != relation) continue;
    const auto [s, d] = edges[e];
    entries.emplace_back(s, d);
    entries.emplace_back(d, s);
  }
  return normalized_csr(n, std::move(entries));
}

ag::CsrMatrix dgcnn_adjacency(
    std::size_t n,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
  entries.reserve(n + 2 * edges.size());
  for (std::uint32_t i = 0; i < n; ++i) entries.emplace_back(i, i);
  for (const auto& [s, d] : edges) {
    entries.emplace_back(s, d);
    entries.emplace_back(d, s);
  }
  return normalized_csr(n, std::move(entries));
}

}  // namespace mvgnn::nn
