// Neural-network layers used by the DGCNN / MV-GNN / NCC models.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "nn/module.hpp"
#include "tensor/ops.hpp"

namespace mvgnn::nn {

/// Fully connected layer y = xW + b.
class Linear final : public Module {
 public:
  Linear(std::size_t in, std::size_t out, par::Rng& rng);

  [[nodiscard]] ag::Tensor forward(const ag::Tensor& x) const {
    return ag::matmul_bias(x, w_, b_);  // bias fused into the GEMM epilogue
  }
  [[nodiscard]] std::vector<ag::Tensor> parameters() const override {
    return {w_, b_};
  }
  [[nodiscard]] std::size_t in_dim() const { return w_.rows(); }
  [[nodiscard]] std::size_t out_dim() const { return w_.cols(); }

 private:
  ag::Tensor w_, b_;
};

/// Graph convolution in DGCNN form: Z = act(D^-1 (A+I) X W); the normalized
/// adjacency is precomputed per graph (see dgcnn_adjacency) and passed in
/// as a constant CSR matrix, so message passing costs O(nnz * d) and a
/// block-diagonal `ahat` runs a whole graph batch in one call.
class GcnConv final : public Module {
 public:
  GcnConv(std::size_t in, std::size_t out, par::Rng& rng);

  /// `ahat` is [n,n] CSR, `x` is [n,in]; returns [n,out] pre-activation.
  [[nodiscard]] ag::Tensor forward(const ag::CsrMatrix& ahat,
                                   const ag::Tensor& x) const {
    return ag::spmm(ahat, ag::matmul(x, w_));
  }
  /// tanh(Ahat X W) with the activation fused into the spmm rows — what the
  /// DGCNN stack calls instead of tanh_t(forward(...)).
  [[nodiscard]] ag::Tensor forward_tanh(const ag::CsrMatrix& ahat,
                                        const ag::Tensor& x) const {
    return ag::spmm_tanh(ahat, ag::matmul(x, w_));
  }
  [[nodiscard]] std::vector<ag::Tensor> parameters() const override {
    return {w_};
  }
  [[nodiscard]] std::size_t out_dim() const { return w_.cols(); }

 private:
  ag::Tensor w_;
};

/// Single-layer LSTM over a [T, in] sequence; returns all hidden states
/// [T, h]. Gate order in the packed weight: input, forget, cell, output.
class Lstm final : public Module {
 public:
  Lstm(std::size_t in, std::size_t hidden, par::Rng& rng);

  [[nodiscard]] ag::Tensor forward(const ag::Tensor& seq) const;
  [[nodiscard]] std::vector<ag::Tensor> parameters() const override {
    return {wx_, wh_, b_};
  }
  [[nodiscard]] std::size_t hidden_dim() const { return hidden_; }

 private:
  std::size_t hidden_;
  ag::Tensor wx_, wh_, b_;
};

/// Relational graph convolution (R-GCN, Schlichtkrull et al.): one weight
/// matrix per edge relation plus a self-transform,
///   Z = X W_self + sum_r Ahat_r X W_r.
/// The typed-edge extension runs the node view with PEG relations
/// {hierarchy, RAW, WAR, WAW} instead of one merged adjacency.
class RgcnConv final : public Module {
 public:
  RgcnConv(std::size_t in, std::size_t out, std::size_t relations,
           par::Rng& rng);

  /// `ahats.size()` must equal `relations`; each is [n,n] CSR; `x` is
  /// [n,in].
  [[nodiscard]] ag::Tensor forward(const std::vector<ag::CsrMatrix>& ahats,
                                   const ag::Tensor& x) const;
  [[nodiscard]] std::vector<ag::Tensor> parameters() const override;
  [[nodiscard]] std::size_t out_dim() const { return w_self_.cols(); }
  [[nodiscard]] std::size_t num_relations() const { return w_rel_.size(); }

 private:
  ag::Tensor w_self_;
  std::vector<ag::Tensor> w_rel_;
};

/// Row-normalized adjacency with self-loops, D^-1 (A+I), as a constant
/// CSR matrix. `edges` are directed (src, dst) pairs; the graph is
/// symmetrized first because GCN message passing in the paper's models is
/// undirected.
[[nodiscard]] ag::CsrMatrix dgcnn_adjacency(
    std::size_t n, const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges);

/// Row-normalized adjacency of ONE edge relation, no self-loops (the R-GCN
/// self-transform plays that role). Rows without edges of this relation
/// stay zero. `kinds[i]` tags `edges[i]`.
[[nodiscard]] ag::CsrMatrix relation_adjacency(
    std::size_t n,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
    const std::vector<std::uint8_t>& kinds, std::uint8_t relation);

}  // namespace mvgnn::nn
