// Base class for parameterized layers/models plus weight (de)serialization.
#pragma once

#include <iosfwd>
#include <vector>

#include "tensor/tensor.hpp"

namespace mvgnn::nn {

class Module {
 public:
  virtual ~Module() = default;
  /// All trainable parameters, in a stable order (used by optimizers and by
  /// save/load, which must see the same order on both sides).
  [[nodiscard]] virtual std::vector<ag::Tensor> parameters() const = 0;

  /// Total trainable scalar count.
  [[nodiscard]] std::size_t num_parameters() const {
    std::size_t n = 0;
    for (const auto& p : parameters()) n += p.numel();
    return n;
  }
};

/// Writes/reads all parameter buffers in order. Shapes are checked on load.
void save_weights(const Module& m, std::ostream& os);
void load_weights(Module& m, std::istream& is);

}  // namespace mvgnn::nn
