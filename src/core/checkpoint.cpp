#include "core/checkpoint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "fault/fault.hpp"
#include "io/atomic_file.hpp"
#include "io/checked_stream.hpp"
#include "obs/metrics.hpp"
#include "parallel/rng.hpp"

namespace mvgnn::core {

namespace {

constexpr std::uint32_t kMagic = 0x4D56'434B;  // "MVCK"
constexpr std::uint32_t kVersion = 1;

// Untrusted on-disk lengths; generous caps so a flipped count byte fails
// the parse instead of driving a huge allocation.
constexpr std::uint64_t kMaxRngState = 1u << 16;
constexpr std::uint64_t kMaxCurve = 1u << 20;

std::uint64_t offset_of(std::istream& is) {
  const auto pos = is.tellg();
  return pos < 0 ? 0 : static_cast<std::uint64_t>(pos);
}

[[noreturn]] void fail_at(std::uint64_t offset, const std::string& what) {
  throw std::runtime_error("checkpoint: " + what + " at offset " +
                           std::to_string(offset));
}

void put_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t get_u32(std::istream& is) {
  const std::uint64_t off = offset_of(is);
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) fail_at(off, "truncated (u32)");
  return v;
}
std::uint64_t get_u64(std::istream& is) {
  const std::uint64_t off = offset_of(is);
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) fail_at(off, "truncated (u64)");
  return v;
}
double get_f64(std::istream& is) {
  const std::uint64_t off = offset_of(is);
  double v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) fail_at(off, "truncated (f64)");
  return v;
}
std::uint64_t get_len(std::istream& is, std::uint64_t cap, const char* what) {
  const std::uint64_t off = offset_of(is);
  const std::uint64_t n = get_u64(is);
  if (n > cap) {
    fail_at(off, std::string(what) + " length " + std::to_string(n) +
                     " exceeds cap " + std::to_string(cap));
  }
  return n;
}

void put_payload(std::ostream& os, const CheckpointMeta& meta,
                 const nn::Module& model, const ag::Adam& opt) {
  put_u64(os, meta.epoch);
  put_u64(os, meta.step);
  put_u64(os, meta.rng_state.size());
  os.write(meta.rng_state.data(),
           static_cast<std::streamsize>(meta.rng_state.size()));
  put_u64(os, meta.curve.size());
  for (const EpochStat& st : meta.curve) {
    put_f64(os, st.loss);
    put_f64(os, st.train_acc);
    put_f64(os, st.test_acc);
  }
  nn::save_weights(model, os);
  opt.save_state(os);
}

}  // namespace

std::string encode_checkpoint(const CheckpointMeta& meta,
                              const nn::Module& model, const ag::Adam& opt) {
  std::ostringstream os(std::ios::binary);
  put_u32(os, kMagic);
  put_u32(os, kVersion);
  io::Crc32OutStream crc_os(os);
  put_payload(crc_os, meta, model, opt);
  crc_os.flush();
  put_u64(os, crc_os.bytes());
  put_u32(os, crc_os.crc());
  return std::move(os).str();
}

void write_checkpoint_file(const std::string& path, const std::string& bytes) {
  fault::check("ckpt.write");
  io::atomic_write_file(path, [&](std::ostream& os) {
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  });
  obs::Registry::global().counter("ckpt.writes_total").add(1);
}

void save_checkpoint(const std::string& path, const CheckpointMeta& meta,
                     const nn::Module& model, const ag::Adam& opt) {
  write_checkpoint_file(path, encode_checkpoint(meta, model, opt));
}

CheckpointMeta load_checkpoint(std::istream& is, nn::Module& model,
                               ag::Adam& opt) {
  if (get_u32(is) != kMagic) fail_at(0, "bad magic (not a checkpoint file)");
  const std::uint32_t version = get_u32(is);
  if (version != kVersion) {
    fail_at(4, "unsupported version " + std::to_string(version));
  }

  io::Crc32InStream crc_is(is);
  CheckpointMeta meta;
  meta.epoch = get_u64(crc_is);
  meta.step = get_u64(crc_is);
  const std::uint64_t rng_len = get_len(crc_is, kMaxRngState, "rng state");
  {
    const std::uint64_t off = offset_of(crc_is);
    meta.rng_state.resize(static_cast<std::size_t>(rng_len));
    crc_is.read(meta.rng_state.data(), static_cast<std::streamsize>(rng_len));
    if (!crc_is) fail_at(off, "truncated (rng state)");
    // Parse-check the field right here: resuming on a garbage generator
    // state would silently fork the training trajectory, so a state that
    // Rng::restore cannot accept is corruption, not something to hand to
    // the trainer.
    par::Rng probe(0);
    if (!probe.restore(meta.rng_state)) fail_at(off, "malformed RNG state");
  }
  const std::uint64_t curve_len = get_len(crc_is, kMaxCurve, "curve");
  meta.curve.resize(static_cast<std::size_t>(curve_len));
  for (EpochStat& st : meta.curve) {
    st.loss = get_f64(crc_is);
    st.train_acc = get_f64(crc_is);
    st.test_acc = get_f64(crc_is);
  }
  {
    // load_weights / load_state throw their own (shape-checked) errors;
    // wrap them so the message still carries where the payload stood.
    const std::uint64_t off = offset_of(crc_is);
    try {
      nn::load_weights(model, crc_is);
      opt.load_state(crc_is);
    } catch (const std::runtime_error& e) {
      fail_at(off, e.what());
    }
  }

  // Footer lives outside the checksummed payload; read it off the raw
  // stream and compare against what the payload pass accumulated.
  const std::uint64_t footer_off = offset_of(is);
  const std::uint64_t want_bytes = get_u64(is);
  const std::uint32_t want_crc = get_u32(is);
  if (want_bytes != crc_is.bytes()) {
    fail_at(footer_off, "payload length mismatch: footer says " +
                            std::to_string(want_bytes) + ", read " +
                            std::to_string(crc_is.bytes()) + " bytes");
  }
  if (want_crc != crc_is.crc()) {
    fail_at(footer_off, "CRC32 mismatch: payload is corrupt");
  }
  return meta;
}

CheckpointMeta load_checkpoint(const std::string& path, nn::Module& model,
                               ag::Adam& opt) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("checkpoint: cannot open " + path);
  }
  try {
    return load_checkpoint(is, model, opt);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

std::string checkpoint_path(const std::string& dir, std::uint64_t epoch) {
  return dir + "/ckpt-" + std::to_string(epoch) + ".mvck";
}

std::string latest_checkpoint(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::string best;
  std::uint64_t best_epoch = 0;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= 10 || name.compare(0, 5, "ckpt-") != 0 ||
        name.compare(name.size() - 5, 5, ".mvck") != 0) {
      continue;
    }
    const std::string digits = name.substr(5, name.size() - 10);
    if (digits.empty() ||
        !std::all_of(digits.begin(), digits.end(), [](unsigned char c) {
          return std::isdigit(c) != 0;
        })) {
      continue;
    }
    const std::uint64_t epoch = std::stoull(digits);
    if (best.empty() || epoch > best_epoch) {
      best = entry.path().string();
      best_epoch = epoch;
    }
  }
  return best;
}

}  // namespace mvgnn::core
