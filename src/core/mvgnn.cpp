#include "core/mvgnn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mvgnn::core {

using ag::Tensor;

GraphBatch make_graph_batch(const std::vector<const SampleInput*>& samples) {
  if (samples.empty()) {
    throw std::invalid_argument("make_graph_batch: empty sample list");
  }
  obs::ScopedSpan span("core.batch_assembly");
  span.arg("graphs", samples.size());
  static obs::Counter& batches =
      obs::Registry::global().counter("core.graph_batches_total");
  batches.add(1);

  GraphBatch b;
  b.offsets.reserve(samples.size() + 1);
  b.offsets.push_back(0);
  b.labels.reserve(samples.size());
  std::size_t total = 0;
  const std::size_t nf_cols = samples.front()->node_feats.cols();
  const std::size_t aw_cols = samples.front()->aw_dist.cols();
  const std::size_t relations = samples.front()->rel_ahats.size();
  for (const SampleInput* s : samples) {
    total += s->node_feats.rows();
    b.offsets.push_back(static_cast<std::uint32_t>(total));
    b.labels.push_back(s->label);
  }
  std::vector<float> nf(total * nf_cols);
  std::vector<float> aw(total * aw_cols);
  std::vector<const ag::CsrMatrix*> blocks;
  blocks.reserve(samples.size());
  std::size_t row = 0;
  for (const SampleInput* s : samples) {
    const std::size_t n = s->node_feats.rows();
    std::copy(s->node_feats.data(), s->node_feats.data() + n * nf_cols,
              nf.begin() + static_cast<std::ptrdiff_t>(row * nf_cols));
    std::copy(s->aw_dist.data(), s->aw_dist.data() + n * aw_cols,
              aw.begin() + static_cast<std::ptrdiff_t>(row * aw_cols));
    row += n;
    blocks.push_back(&s->ahat);
  }
  b.node_feats = Tensor::from_data({total, nf_cols}, std::move(nf));
  b.aw_dist = Tensor::from_data({total, aw_cols}, std::move(aw));
  b.ahat = ag::CsrMatrix::block_diag(blocks);
  b.rel_ahats.reserve(relations);
  for (std::size_t r = 0; r < relations; ++r) {
    std::vector<const ag::CsrMatrix*> rel_blocks;
    rel_blocks.reserve(samples.size());
    for (const SampleInput* s : samples) rel_blocks.push_back(&s->rel_ahats[r]);
    b.rel_ahats.push_back(ag::CsrMatrix::block_diag(rel_blocks));
  }
  return b;
}

MvGnn::MvGnn(MvGnnConfig cfg, par::Rng& rng) : cfg_(std::move(cfg)) {
  cfg_.struct_view.in_dim = cfg_.aw_embed_dim;
  cfg_.node_view.relational = cfg_.typed_edges;
  cfg_.struct_view.relational = false;
  node_view_ = std::make_unique<Dgcnn>(cfg_.node_view, rng);
  struct_view_ = std::make_unique<Dgcnn>(cfg_.struct_view, rng);
  const float scale = std::sqrt(2.0f / static_cast<float>(cfg_.aw_vocab +
                                                          cfg_.aw_embed_dim));
  aw_embed_ = Tensor::randn({cfg_.aw_vocab, cfg_.aw_embed_dim}, rng, scale);
  fusion_ = std::make_unique<nn::Linear>(
      node_view_->rep_dim() + struct_view_->rep_dim(), cfg_.num_classes, rng);
}

MvGnn::Output MvGnn::forward_batch(const GraphBatch& batch, bool training,
                                   par::Rng& rng) const {
  // Structural-view node features: AW distribution x learned embedding
  // table (the "embedding table lookup" of section III-C).
  const Tensor struct_feats = ag::matmul(batch.aw_dist, aw_embed_);
  static const std::vector<ag::CsrMatrix> no_rels;

  const Dgcnn::Output on = node_view_->forward(
      batch.ahat, cfg_.typed_edges ? batch.rel_ahats : no_rels,
      batch.node_feats, batch.offsets, training, rng);
  const Dgcnn::Output os = struct_view_->forward(
      batch.ahat, no_rels, struct_feats, batch.offsets, training, rng);

  // Eq. 5: h = W * tanh(h_n (+) h_s) + b, applied row-wise over the batch.
  const Tensor fused = ag::tanh_t(ag::concat_cols(on.pooled, os.pooled));

  Output out;
  out.logits = fusion_->forward(fused);
  out.node_logits = on.logits;
  out.struct_logits = os.logits;
  out.node_embed = on.nodes;
  out.struct_embed = os.nodes;
  return out;
}

MvGnn::Output MvGnn::forward(const SampleInput& in, bool training,
                             par::Rng& rng) const {
  GraphBatch b;
  b.ahat = in.ahat;
  b.node_feats = in.node_feats;
  b.aw_dist = in.aw_dist;
  b.rel_ahats = in.rel_ahats;
  b.offsets = {0, static_cast<std::uint32_t>(in.node_feats.rows())};
  b.labels = {in.label};
  return forward_batch(b, training, rng);
}

std::vector<ag::Tensor> MvGnn::parameters() const {
  std::vector<ag::Tensor> ps = node_view_->parameters();
  const auto sp = struct_view_->parameters();
  ps.insert(ps.end(), sp.begin(), sp.end());
  ps.push_back(aw_embed_);
  const auto fp = fusion_->parameters();
  ps.insert(ps.end(), fp.begin(), fp.end());
  return ps;
}

SingleViewGnn::SingleViewGnn(const DgcnnConfig& cfg, par::Rng& rng)
    : view_(std::make_unique<Dgcnn>(cfg, rng)) {}

ag::Tensor SingleViewGnn::forward(const ag::CsrMatrix& ahat,
                                  const ag::Tensor& feats, bool training,
                                  par::Rng& rng) const {
  return view_->forward({ahat, feats}, training, rng).logits;
}

}  // namespace mvgnn::core
