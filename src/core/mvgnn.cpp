#include "core/mvgnn.hpp"

#include <cmath>

namespace mvgnn::core {

using ag::Tensor;

MvGnn::MvGnn(MvGnnConfig cfg, par::Rng& rng) : cfg_(std::move(cfg)) {
  cfg_.struct_view.in_dim = cfg_.aw_embed_dim;
  cfg_.node_view.relational = cfg_.typed_edges;
  cfg_.struct_view.relational = false;
  node_view_ = std::make_unique<Dgcnn>(cfg_.node_view, rng);
  struct_view_ = std::make_unique<Dgcnn>(cfg_.struct_view, rng);
  const float scale = std::sqrt(2.0f / static_cast<float>(cfg_.aw_vocab +
                                                          cfg_.aw_embed_dim));
  aw_embed_ = Tensor::randn({cfg_.aw_vocab, cfg_.aw_embed_dim}, rng, scale);
  fusion_ = std::make_unique<nn::Linear>(
      node_view_->rep_dim() + struct_view_->rep_dim(), cfg_.num_classes, rng);
}

MvGnn::Output MvGnn::forward(const SampleInput& in, bool training,
                             par::Rng& rng) const {
  // Structural-view node features: AW distribution x learned embedding
  // table (the "embedding table lookup" of section III-C).
  GraphInput gs;
  gs.ahat = in.ahat;
  gs.features = ag::matmul(in.aw_dist, aw_embed_);
  GraphInput gn;
  gn.ahat = in.ahat;
  gn.features = in.node_feats;
  if (cfg_.typed_edges) gn.rel_ahats = in.rel_ahats;

  const Dgcnn::Output on = node_view_->forward(gn, training, rng);
  const Dgcnn::Output os = struct_view_->forward(gs, training, rng);

  // Eq. 5: h = W * tanh(h_n (+) h_s) + b.
  const Tensor fused = ag::tanh_t(ag::concat_cols(on.pooled, os.pooled));

  Output out;
  out.logits = fusion_->forward(fused);
  out.node_logits = on.logits;
  out.struct_logits = os.logits;
  out.node_embed = on.nodes;
  out.struct_embed = os.nodes;
  return out;
}

std::vector<ag::Tensor> MvGnn::parameters() const {
  std::vector<ag::Tensor> ps = node_view_->parameters();
  const auto sp = struct_view_->parameters();
  ps.insert(ps.end(), sp.begin(), sp.end());
  ps.push_back(aw_embed_);
  const auto fp = fusion_->parameters();
  ps.insert(ps.end(), fp.begin(), fp.end());
  return ps;
}

SingleViewGnn::SingleViewGnn(const DgcnnConfig& cfg, par::Rng& rng)
    : view_(std::make_unique<Dgcnn>(cfg, rng)) {}

ag::Tensor SingleViewGnn::forward(const ag::Tensor& ahat,
                                  const ag::Tensor& feats, bool training,
                                  par::Rng& rng) const {
  return view_->forward({ahat, feats}, training, rng).logits;
}

}  // namespace mvgnn::core
