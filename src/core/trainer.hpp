// Training harnesses: featurization (with train-set z-normalization of the
// dynamic features), supervised training with the softmax loss (section
// IV-B), accuracy evaluation, and the Fig. 7 loss/accuracy curves.
#pragma once

#include <array>
#include <atomic>
#include <utility>

#include "cache/slot_cache.hpp"
#include "core/mvgnn.hpp"
#include "data/dataset.hpp"
#include "tensor/optim.hpp"

namespace mvgnn::core {

/// Z-score normalizer for the 7 dynamic features, fit on training nodes.
struct Normalizer {
  std::array<double, 7> mean{};
  std::array<double, 7> stdev{};

  static Normalizer fit(const data::Dataset& ds,
                        const std::vector<std::size_t>& train_idx);
  [[nodiscard]] std::array<float, 7> apply(
      const std::array<double, 7>& v) const;
};

/// Builds one model input from a (possibly dataset-external) graph sample,
/// against a reference dataset's widths. This is the deployment path: a
/// sample produced by data::featurize_program feeds a trained model
/// directly.
[[nodiscard]] SampleInput build_input(const data::GraphSample& s,
                                      const data::Dataset& reference,
                                      const Normalizer& norm,
                                      bool use_pattern_label = false,
                                      bool zero_dynamic = false,
                                      bool typed_edges = false);

/// Which dataset label the model inputs carry: the binary parallelizable
/// flag (the paper's main task) or the 3-way parallel-pattern label (the
/// paper's future-work extension).
enum class LabelMode { Binary, Pattern };

/// Builds model inputs from dataset samples. Inputs are cached: the graph
/// tensors are constants, only the model parameters change across epochs.
class Featurizer {
 public:
  /// `zero_dynamic` zeroes the 7 dynamic-feature columns — the decoupled
  /// inference mode of the paper's future work #3 (classify programs that
  /// cannot be executed, using static information only).
  /// `typed_edges` additionally builds the per-relation adjacencies the
  /// relational (typed-edge) MV-GNN consumes.
  Featurizer(const data::Dataset& ds, Normalizer norm,
             LabelMode mode = LabelMode::Binary, bool zero_dynamic = false,
             bool typed_edges = false)
      : ds_(&ds),
        norm_(norm),
        mode_(mode),
        zero_dynamic_(zero_dynamic),
        typed_edges_(typed_edges),
        cache_(ds.samples.size(), "trainer.featurizer_cache_hits_total",
               "trainer.featurizer_cache_misses_total") {}

  [[nodiscard]] const SampleInput& get(std::size_t sample_index) const;
  /// Featurizes every not-yet-cached index in parallel on the global
  /// thread pool (distinct cache slots, so workers never collide). The
  /// trainer calls this per mini-batch so batch assembly finds every
  /// sample hot.
  void prefetch(const std::vector<std::size_t>& indices) const;
  [[nodiscard]] std::size_t node_dim() const { return ds_->static_dim + 7; }
  [[nodiscard]] const data::Dataset& dataset() const { return *ds_; }
  [[nodiscard]] const Normalizer& normalizer() const { return norm_; }
  [[nodiscard]] LabelMode label_mode() const { return mode_; }
  /// Class count implied by the label mode.
  [[nodiscard]] std::size_t num_classes() const {
    return mode_ == LabelMode::Binary ? 2 : 3;
  }

 private:
  const data::Dataset* ds_;
  Normalizer norm_;
  LabelMode mode_ = LabelMode::Binary;
  bool zero_dynamic_ = false;
  bool typed_edges_ = false;
  cache::SlotCache<SampleInput> cache_;
};

struct TrainConfig {
  std::size_t epochs = 30;
  float lr = 1e-3f;        // paper: 1e-5 at 200-dim/200-epoch GPU scale
  float aux_weight = 0.3f; // weight of the per-view auxiliary losses
  float weight_decay = 1e-4f;
  /// Mini-batch size: each optimizer step runs ONE batched
  /// forward/backward over a block-diagonal GraphBatch of up to this many
  /// samples (the trailing batch may be smaller; its loss is averaged over
  /// the samples actually present). 1 = pure SGD-style.
  std::size_t batch_size = 1;
  std::uint64_t seed = 1;
  bool verbose = false;

  /// Data-parallel shard workers per mini-batch (docs/parallelism.md).
  /// 0 = the legacy serial path: one batched forward/backward per step,
  /// exactly the pre-data-parallel arithmetic. N >= 1 = the deterministic
  /// sharded path: each mini-batch is cut into fixed-size shards, up to N
  /// of them run replicated forward/backward concurrently, and the shard
  /// gradients reduce in a fixed tree order — weights and curves are
  /// bit-identical for every N >= 1, so `threads` trades wall-clock only.
  std::size_t threads = 0;

  // ---- fault tolerance (docs/robustness.md) ----
  /// Directory for `ckpt-<epoch>.mvck` files; empty disables checkpointing.
  std::string checkpoint_dir;
  /// Write a checkpoint every this many completed epochs (when
  /// checkpoint_dir is set). 0 = only the final/interrupt checkpoint.
  std::size_t checkpoint_every = 1;
  /// Checkpoint file to resume from; fit() restores weights, optimizer,
  /// Rng and curve, then continues at the recorded epoch. The resumed
  /// trajectory is bit-identical to the uninterrupted run.
  std::string resume_from;
  /// Cooperative interrupt flag (e.g. flipped by a SIGINT handler). Polled
  /// at batch boundaries; when it goes true, fit() stops, persists the
  /// epoch-start snapshot as a final checkpoint and returns the curve so
  /// far with interrupted() == true.
  const std::atomic<bool>* stop_requested = nullptr;
};

struct EpochStat {
  double loss = 0.0;
  double train_acc = 0.0;
  double test_acc = 0.0;
};

/// MV-GNN trainer. Owns the model; exposes fused and per-view predictions
/// (the latter drive the Fig. 8 view-importance analysis).
class MvGnnTrainer {
 public:
  MvGnnTrainer(const Featurizer& feats, MvGnnConfig cfg,
               const TrainConfig& tc);

  /// Trains on `train_idx`; `test_idx` is evaluated per epoch for the
  /// curve (pass {} to skip). Returns per-epoch stats (Fig. 7).
  std::vector<EpochStat> fit(const std::vector<std::size_t>& train_idx,
                             const std::vector<std::size_t>& test_idx);

  /// GraphSAGE-style unsupervised pretraining (the objective the paper
  /// adopts in section III-E): neighbouring PEG nodes get similar
  /// embeddings, random pairs dissimilar, in both views. Needs no labels —
  /// run it before fit() when labeled data is scarce.
  void pretrain_unsupervised(const std::vector<std::size_t>& idx,
                             std::size_t epochs, std::size_t negatives = 3);

  /// During fit(), substitute each sample's input with `alt`'s version with
  /// probability `prob` (the decoupled static/dynamic training of future
  /// work #3: randomly hiding the dynamic features teaches the model to
  /// survive their absence at inference).
  void set_alternate_inputs(const Featurizer* alt, float prob) {
    alt_feats_ = alt;
    alt_prob_ = prob;
  }

  /// Accuracy when predictions are made from another featurizer's inputs
  /// (e.g. the zero-dynamic one).
  [[nodiscard]] double accuracy_with(const Featurizer& feats,
                                     const std::vector<std::size_t>& idx) const;

  struct ViewPrediction {
    int fused = 0;
    int node_view = 0;
    int struct_view = 0;
  };
  [[nodiscard]] ViewPrediction predict(std::size_t sample_index) const;
  [[nodiscard]] double accuracy(const std::vector<std::size_t>& idx) const;

  [[nodiscard]] const MvGnn& model() const { return *model_; }
  /// Mutable access for weight loading (nn::load_weights).
  [[nodiscard]] MvGnn& model_mutable() { return *model_; }

  /// Prediction on a dataset-external input (built via build_input from a
  /// data::featurize_program sample) — the deployment path.
  [[nodiscard]] ViewPrediction predict_input(const SampleInput& in) const;

  /// True when the last fit() stopped early via TrainConfig::stop_requested.
  [[nodiscard]] bool interrupted() const { return interrupted_; }

 private:
  /// One optimizer step over `chunk` on the sharded data-parallel path:
  /// fixed-size shards, replicated forward/backward on up to
  /// TrainConfig::threads workers, fixed-tree gradient reduction, one Adam
  /// update. Returns the chunk's summed loss and correct-prediction count.
  std::pair<double, std::size_t> data_parallel_step(
      const std::vector<const SampleInput*>& chunk, ag::Adam& opt,
      std::uint64_t step_seed);

  /// Grows the replica list to `n` models and copies the master weights
  /// into each (values only; replicas keep their own gradient buffers).
  void sync_replicas(std::size_t n);

  const Featurizer* feats_;
  const Featurizer* alt_feats_ = nullptr;
  float alt_prob_ = 0.0f;
  TrainConfig tc_;
  std::unique_ptr<MvGnn> model_;
  /// Weight-synced model copies for the data-parallel path; worker 0 runs
  /// on the master model and worker r >= 1 on replicas_[r-1], so concurrent
  /// backward passes never share a gradient buffer.
  std::vector<std::unique_ptr<MvGnn>> replicas_;
  mutable par::Rng rng_;
  bool interrupted_ = false;
};

/// Single-view GNN trainer for the "Static GNN" baseline (inst2vec node
/// features only, no dynamic features, no structural view).
class StaticGnnTrainer {
 public:
  StaticGnnTrainer(const Featurizer& feats, DgcnnConfig cfg,
                   const TrainConfig& tc);

  std::vector<EpochStat> fit(const std::vector<std::size_t>& train_idx,
                             const std::vector<std::size_t>& test_idx);
  [[nodiscard]] int predict(std::size_t sample_index) const;
  [[nodiscard]] double accuracy(const std::vector<std::size_t>& idx) const;

 private:
  /// Static-only node features (strips the 7 dynamic columns).
  [[nodiscard]] ag::Tensor static_feats(std::size_t sample_index) const;

  const Featurizer* feats_;
  TrainConfig tc_;
  std::unique_ptr<SingleViewGnn> model_;
  std::unique_ptr<ag::Adam> opt_;
  mutable par::Rng rng_;
};

/// Default scaled-down model configuration for a dataset (node/struct view
/// widths follow DESIGN.md section 5).
[[nodiscard]] MvGnnConfig default_config(const Featurizer& feats);

}  // namespace mvgnn::core
