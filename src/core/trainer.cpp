#include "core/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/checkpoint.hpp"
#include "fault/fault.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/task_group.hpp"
#include "tensor/optim.hpp"

namespace mvgnn::core {

using ag::Tensor;

namespace {

struct TrainerMetrics {
  obs::Counter& epochs =
      obs::Registry::global().counter("trainer.epochs_total");
  obs::Counter& samples =
      obs::Registry::global().counter("trainer.samples_total");
  obs::Counter& batches =
      obs::Registry::global().counter("trainer.batches_total");
  obs::Counter& shards =
      obs::Registry::global().counter("trainer.shards_total");
  obs::Gauge& loss = obs::Registry::global().gauge("trainer.epoch_loss");
  obs::Gauge& train_acc =
      obs::Registry::global().gauge("trainer.epoch_train_acc");
  obs::Gauge& test_acc =
      obs::Registry::global().gauge("trainer.epoch_test_acc");

  static TrainerMetrics& get() {
    static TrainerMetrics m;
    return m;
  }
};

/// Matches the historical `std::printf` epoch line byte for byte, so
/// fig7_training (and anything else scraping the curve) keeps parsing.
void log_epoch(std::size_t epoch, const EpochStat& st) {
  obs::log_info("", {{"epoch", obs::logfmt("%3zu", epoch)},
                     {"loss", obs::logfmt("%.4f", st.loss)},
                     {"train_acc", obs::logfmt("%.4f", st.train_acc)},
                     {"test_acc", obs::logfmt("%.4f", st.test_acc)}});
}

int argmax_row(const Tensor& logits, std::size_t row = 0) {
  int best = 0;
  for (std::size_t c = 1; c < logits.cols(); ++c) {
    if (logits.at(row, c) > logits.at(row, static_cast<std::size_t>(best))) {
      best = static_cast<int>(c);
    }
  }
  return best;
}

/// Batched evaluation block size: big enough to amortize the forward, small
/// enough that the block-diagonal batch stays cache-resident.
constexpr std::size_t kEvalBatch = 32;

/// Rows (samples) per data-parallel shard. The shard layout is part of the
/// numerical recipe — it depends only on the mini-batch, never on the
/// thread count, which is what makes `--threads N` runs bit-identical for
/// every N. Changing this constant changes results the same way changing
/// batch_size does.
constexpr std::size_t kDpShardRows = 4;

}  // namespace

Normalizer Normalizer::fit(const data::Dataset& ds,
                           const std::vector<std::size_t>& train_idx) {
  Normalizer n;
  std::array<double, 7> sum{}, sq{};
  std::size_t count = 0;
  for (const std::size_t i : train_idx) {
    for (const auto& row : ds.samples[i].node_dynamic) {
      for (int k = 0; k < 7; ++k) {
        sum[k] += row[k];
        sq[k] += row[k] * row[k];
      }
      ++count;
    }
  }
  if (count == 0) count = 1;
  for (int k = 0; k < 7; ++k) {
    n.mean[k] = sum[k] / static_cast<double>(count);
    const double var =
        sq[k] / static_cast<double>(count) - n.mean[k] * n.mean[k];
    n.stdev[k] = std::sqrt(std::max(var, 1e-8));
  }
  return n;
}

std::array<float, 7> Normalizer::apply(const std::array<double, 7>& v) const {
  std::array<float, 7> out{};
  for (int k = 0; k < 7; ++k) {
    out[k] = static_cast<float>((v[k] - mean[k]) / stdev[k]);
  }
  return out;
}

SampleInput build_input(const data::GraphSample& s,
                        const data::Dataset& reference,
                        const Normalizer& norm, bool use_pattern_label,
                        bool zero_dynamic, bool typed_edges) {
  SampleInput in;
  in.ahat = make_ahat(s.n, s.edges);
  in.label = use_pattern_label ? s.pattern_label : s.label;

  const std::size_t nd = reference.static_dim + 7;
  std::vector<float> feats(s.n * nd, 0.0f);
  for (std::uint32_t k = 0; k < s.n; ++k) {
    float* row = feats.data() + k * nd;
    std::copy(s.node_static[k].begin(), s.node_static[k].end(), row);
    if (!zero_dynamic) {
      const auto dyn = norm.apply(s.node_dynamic[k]);
      std::copy(dyn.begin(), dyn.end(), row + reference.static_dim);
    }
  }
  in.node_feats = Tensor::from_data({s.n, nd}, std::move(feats));

  std::vector<float> aw(s.n * reference.aw_vocab, 0.0f);
  for (std::uint32_t k = 0; k < s.n; ++k) {
    std::copy(s.aw_dist[k].begin(), s.aw_dist[k].end(),
              aw.data() + k * reference.aw_vocab);
  }
  in.aw_dist = Tensor::from_data({s.n, reference.aw_vocab}, std::move(aw));
  if (typed_edges) {
    for (std::uint8_t r = 0; r < data::GraphSample::kNumRelations; ++r) {
      in.rel_ahats.push_back(
          nn::relation_adjacency(s.n, s.edges, s.edge_kinds, r));
    }
  }
  return in;
}

const SampleInput& Featurizer::get(std::size_t i) const {
  if (const SampleInput* hit = cache_.lookup(i)) return *hit;
  OBS_SPAN("trainer.featurize_sample");
  return cache_.store(
      i, std::make_unique<SampleInput>(
             build_input(ds_->samples[i], *ds_, norm_,
                         mode_ == LabelMode::Pattern, zero_dynamic_,
                         typed_edges_)));
}

void Featurizer::prefetch(const std::vector<std::size_t>& indices) const {
  std::vector<std::size_t> todo;
  for (const std::size_t i : indices) {
    if (!cache_.filled(i)) todo.push_back(i);
  }
  std::sort(todo.begin(), todo.end());
  todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
  if (todo.empty()) return;
  OBS_SPAN("trainer.featurize_prefetch");
  // Deduped indices map to distinct cache slots, so workers never write
  // the same slot; grain 1 because one sample is already substantial work
  // (adjacency build + feature copy).
  par::parallel_for(
      0, todo.size(),
      [&](std::size_t t) {
        const std::size_t i = todo[t];
        cache_.store(i, std::make_unique<SampleInput>(build_input(
                            ds_->samples[i], *ds_, norm_,
                            mode_ == LabelMode::Pattern, zero_dynamic_,
                            typed_edges_)));
      },
      par::ThreadPool::global(), /*grain=*/1);
}

MvGnnConfig default_config(const Featurizer& feats) {
  MvGnnConfig cfg;
  cfg.num_classes = feats.num_classes();
  cfg.node_view.num_classes = feats.num_classes();
  cfg.struct_view.num_classes = feats.num_classes();
  cfg.node_view.in_dim = feats.node_dim();
  cfg.node_view.gcn_channels = {32, 32, 1};
  cfg.node_view.sort_k = 16;
  cfg.struct_view.gcn_channels = {24, 24, 1};
  cfg.struct_view.sort_k = 16;
  cfg.aw_vocab = feats.dataset().aw_vocab;
  cfg.aw_embed_dim = 16;
  return cfg;
}

// ---------------------------------------------------------------------------
// MvGnnTrainer
// ---------------------------------------------------------------------------

MvGnnTrainer::MvGnnTrainer(const Featurizer& feats, MvGnnConfig cfg,
                           const TrainConfig& tc)
    : feats_(&feats), tc_(tc), rng_(tc.seed) {
  par::Rng init_rng(tc.seed ^ 0x11117777ULL);
  model_ = std::make_unique<MvGnn>(std::move(cfg), init_rng);
}

std::vector<EpochStat> MvGnnTrainer::fit(
    const std::vector<std::size_t>& train_idx,
    const std::vector<std::size_t>& test_idx) {
  ag::Adam opt(tc_.lr, 0.9f, 0.999f, 1e-8f, tc_.weight_decay);
  opt.add_params(model_->parameters());

  std::vector<std::size_t> order = train_idx;
  std::vector<EpochStat> curve;
  interrupted_ = false;
  std::size_t start_epoch = 0;
  std::uint64_t global_step = 0;
  if (!tc_.resume_from.empty()) {
    CheckpointMeta meta = load_checkpoint(tc_.resume_from, *model_, opt);
    // load_checkpoint already parse-checked the field; failing here means
    // the in-memory string was clobbered between load and restore.
    if (!rng_.restore(meta.rng_state)) {
      throw std::runtime_error("checkpoint: malformed RNG state in " +
                               tc_.resume_from);
    }
    start_epoch = static_cast<std::size_t>(meta.epoch);
    global_step = meta.step;
    curve = std::move(meta.curve);
    obs::log_info("resumed from checkpoint",
                  {{"path", tc_.resume_from},
                   {"epoch", std::to_string(start_epoch)},
                   {"step", std::to_string(global_step)}});
  }
  const bool ckpt_on = !tc_.checkpoint_dir.empty();
  // Encoded at each epoch start: the last consistent state. An interrupt
  // mid-epoch persists this snapshot, so resume replays the interrupted
  // epoch from its start and the trajectory stays bit-identical. Only paid
  // for when an interrupt is actually possible (a stop flag is registered).
  const bool snapshot_on = ckpt_on && tc_.stop_requested != nullptr;
  std::string epoch_snapshot;
  std::uint64_t snapshot_epoch = 0;

  OBS_SPAN("trainer.fit");
  for (std::size_t epoch = start_epoch; epoch < tc_.epochs; ++epoch) {
    obs::ScopedSpan epoch_span("trainer.epoch");
    epoch_span.arg("epoch", epoch);
    if (snapshot_on) {
      epoch_snapshot = encode_checkpoint(
          {epoch, global_step, rng_.state(), curve}, *model_, opt);
      snapshot_epoch = epoch;
    }
    // Step schedule: drop the rate at 60% and 85% of the budget so late
    // epochs settle instead of oscillating.
    float lr = tc_.lr;
    if (epoch >= tc_.epochs * 6 / 10) lr *= 0.3f;
    if (epoch >= tc_.epochs * 85 / 100) lr *= 0.3f;
    opt.set_lr(lr);
    // History-free shuffle: each epoch permutes the pristine index list, so
    // the visit order is a function of (train_idx, rng state) alone and a
    // resumed epoch replays the uninterrupted one exactly.
    order = train_idx;
    std::shuffle(order.begin(), order.end(), rng_.engine());
    double loss_sum = 0.0;
    std::size_t correct = 0;
    const std::size_t batch = std::max<std::size_t>(1, tc_.batch_size);
    for (std::size_t start = 0; start < order.size(); start += batch) {
      if (tc_.stop_requested &&
          tc_.stop_requested->load(std::memory_order_relaxed)) {
        interrupted_ = true;
        break;
      }
      fault::check("trainer.step");
      const std::size_t end = std::min(order.size(), start + batch);
      // Pick the featurizer per sample first (decoupled-inputs mode draws
      // one coin per sample), then featurize every miss in parallel and
      // fuse the chunk into one block-diagonal GraphBatch.
      std::vector<std::size_t> plain, alt;
      std::vector<bool> use_alt(end - start, false);
      for (std::size_t j = start; j < end; ++j) {
        const bool a =
            alt_feats_ && rng_.uniform() < static_cast<double>(alt_prob_);
        use_alt[j - start] = a;
        (a ? alt : plain).push_back(order[j]);
      }
      feats_->prefetch(plain);
      if (alt_feats_) alt_feats_->prefetch(alt);
      std::vector<const SampleInput*> chunk;
      chunk.reserve(end - start);
      for (std::size_t j = start; j < end; ++j) {
        chunk.push_back(use_alt[j - start] ? &alt_feats_->get(order[j])
                                           : &feats_->get(order[j]));
      }
      if (tc_.threads == 0) {
        const GraphBatch gb = make_graph_batch(chunk);
        // One batched forward/backward per optimizer step. The
        // cross-entropy means over the rows actually present, so a
        // trailing partial batch is averaged over its own size — not the
        // nominal batch size.
        const auto out = model_->forward_batch(gb, /*training=*/true, rng_);
        Tensor loss = ag::cross_entropy_logits(out.logits, gb.labels);
        if (tc_.aux_weight > 0.0f) {
          loss = ag::add(
              loss,
              ag::scale(
                  ag::add(ag::cross_entropy_logits(out.node_logits, gb.labels),
                          ag::cross_entropy_logits(out.struct_logits,
                                                   gb.labels)),
                  tc_.aux_weight));
        }
        opt.zero_grad();
        loss.backward();
        opt.step();
        loss_sum += loss.item() * static_cast<double>(gb.size());
        for (std::size_t b = 0; b < gb.size(); ++b) {
          correct += (argmax_row(out.logits, b) == gb.labels[b]);
        }
      } else {
        // Deterministic data-parallel step (docs/parallelism.md). One u64
        // draw seeds every shard's dropout stream: the trainer Rng advances
        // by exactly one engine call per step no matter how many shards or
        // threads ran, so checkpoints and thread-count changes cannot fork
        // the state the next epoch's shuffle sees.
        const std::uint64_t step_seed = rng_.engine()();
        const auto [chunk_loss, chunk_correct] =
            data_parallel_step(chunk, opt, step_seed);
        loss_sum += chunk_loss;
        correct += chunk_correct;
      }
      ++global_step;
      TrainerMetrics::get().batches.add(1);
    }
    if (interrupted_) break;
    EpochStat st;
    st.loss = loss_sum / std::max<std::size_t>(1, order.size());
    st.train_acc =
        static_cast<double>(correct) / std::max<std::size_t>(1, order.size());
    st.test_acc = test_idx.empty() ? 0.0 : accuracy(test_idx);
    TrainerMetrics& metrics = TrainerMetrics::get();
    metrics.epochs.add(1);
    metrics.samples.add(order.size());
    metrics.loss.set(st.loss);
    metrics.train_acc.set(st.train_acc);
    metrics.test_acc.set(st.test_acc);
    if (tc_.verbose) log_epoch(epoch, st);
    curve.push_back(st);
    if (ckpt_on && tc_.checkpoint_every != 0 &&
        (epoch + 1) % tc_.checkpoint_every == 0) {
      save_checkpoint(checkpoint_path(tc_.checkpoint_dir, epoch + 1),
                      {epoch + 1, global_step, rng_.state(), curve}, *model_,
                      opt);
    }
  }
  if (interrupted_ && ckpt_on) {
    // The discarded partial epoch is replayed on resume; the snapshot is
    // exactly the state its first batch saw.
    write_checkpoint_file(checkpoint_path(tc_.checkpoint_dir, snapshot_epoch),
                          epoch_snapshot);
    obs::log_info("interrupt checkpoint written",
                  {{"epoch", std::to_string(snapshot_epoch)}});
  }
  return curve;
}

void MvGnnTrainer::sync_replicas(std::size_t n) {
  // Worker 0 runs on the master model itself (its weights are trivially in
  // sync), so only workers 1..width-1 need a copy: `n` is width - 1, and a
  // width-1 step pays no replica sync at all.
  while (replicas_.size() < n) {
    // The init rng is a placeholder: every weight is overwritten by the
    // master copy below before the replica ever runs a forward pass.
    par::Rng init_rng(0);
    replicas_.push_back(std::make_unique<MvGnn>(model_->config(), init_rng));
  }
  const std::vector<Tensor> src = model_->parameters();
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<Tensor> dst = replicas_[r]->parameters();
    for (std::size_t k = 0; k < src.size(); ++k) {
      std::copy(src[k].data(), src[k].data() + src[k].numel(), dst[k].data());
    }
  }
}

std::pair<double, std::size_t> MvGnnTrainer::data_parallel_step(
    const std::vector<const SampleInput*>& chunk, ag::Adam& opt,
    std::uint64_t step_seed) {
  obs::ScopedSpan step_span("trainer.dp_step");
  const std::size_t rows = chunk.size();
  const std::size_t nshards = (rows + kDpShardRows - 1) / kDpShardRows;
  step_span.arg("rows", rows).arg("shards", nshards);
  // Width is how many shards run concurrently; the shard layout and the
  // reduction order below never depend on it.
  const std::size_t width = std::max<std::size_t>(
      1, std::min({tc_.threads, nshards,
                   par::ThreadPool::global().size() + 1}));
  sync_replicas(width - 1);

  std::vector<ag::GradAccumulator> shard_grads;
  shard_grads.reserve(nshards);
  for (std::size_t s = 0; s < nshards; ++s) {
    shard_grads.push_back(opt.make_accumulator());
  }
  std::vector<double> shard_loss(nshards, 0.0);
  std::vector<std::size_t> shard_correct(nshards, 0);

  // Worker r owns one model (the master for r == 0, replica r-1 above) and
  // the shard slice {r, r+width, ...}: shards write disjoint accumulators
  // and stat slots, no model ever runs two shards at once, and the waiting
  // thread below may execute any worker task itself (help-while-wait)
  // without changing a single float.
  par::TaskGroup group(par::ThreadPool::global());
  for (std::size_t r = 0; r < width; ++r) {
    group.run([&, r] {
      OBS_SPAN("trainer.dp_worker");
      MvGnn& replica = (r == 0) ? *model_ : *replicas_[r - 1];
      const std::vector<Tensor> params = replica.parameters();
      for (std::size_t s = r; s < nshards; s += width) {
        const std::size_t b0 = s * kDpShardRows;
        const std::size_t b1 = std::min(rows, b0 + kDpShardRows);
        const std::vector<const SampleInput*> sub(chunk.begin() + b0,
                                                  chunk.begin() + b1);
        const GraphBatch gb = make_graph_batch(sub);
        // Shard-indexed dropout stream: a function of (step_seed, s) only.
        par::Rng shard_rng = par::Rng(step_seed).split(s);
        const auto out = replica.forward_batch(gb, /*training=*/true,
                                               shard_rng);
        Tensor loss = ag::cross_entropy_logits(out.logits, gb.labels);
        if (tc_.aux_weight > 0.0f) {
          loss = ag::add(
              loss,
              ag::scale(ag::add(ag::cross_entropy_logits(out.node_logits,
                                                         gb.labels),
                                ag::cross_entropy_logits(out.struct_logits,
                                                         gb.labels)),
                        tc_.aux_weight));
        }
        for (Tensor p : params) p.zero_grad();
        loss.backward();
        // Each shard's loss means over its own rows; weighting by
        // rows_s / rows makes the fixed-tree sum reproduce the whole-batch
        // mean gradient.
        shard_grads[s].accumulate(
            params, static_cast<float>(b1 - b0) / static_cast<float>(rows));
        shard_loss[s] = loss.item() * static_cast<double>(gb.size());
        for (std::size_t b = 0; b < gb.size(); ++b) {
          shard_correct[s] += (argmax_row(out.logits, b) == gb.labels[b]);
        }
      }
    });
  }
  group.wait();

  // Fixed-order tree reduction over shard indices — bit-identical for any
  // width — then one master update from the merged gradient.
  ag::tree_merge(shard_grads);
  opt.zero_grad();
  opt.load_merged(shard_grads[0]);
  opt.step();
  TrainerMetrics::get().shards.add(nshards);

  double loss_sum = 0.0;
  std::size_t correct = 0;
  for (std::size_t s = 0; s < nshards; ++s) {
    loss_sum += shard_loss[s];
    correct += shard_correct[s];
  }
  return {loss_sum, correct};
}

void MvGnnTrainer::pretrain_unsupervised(const std::vector<std::size_t>& idx,
                                         std::size_t epochs,
                                         std::size_t negatives) {
  // Gentle rate: the unsupervised phase should shape the GCN embeddings,
  // not push the whole network far from its init before fine-tuning.
  ag::Adam opt(tc_.lr * 0.2f);
  opt.add_params(model_->parameters());
  std::vector<std::size_t> order = idx;

  // -log(sigmoid(sign * z_u . z_v)) averaged over the pair batch.
  auto pair_loss = [](const Tensor& z, const std::vector<std::uint32_t>& us,
                      const std::vector<std::uint32_t>& vs, float sign) {
    const Tensor u = ag::gather_rows(z, us);
    const Tensor v = ag::gather_rows(z, vs);
    const Tensor ones = Tensor::full({z.cols(), 1}, 1.0f);
    const Tensor dots = ag::matmul(ag::mul(u, v), ones);  // [m, 1]
    return ag::scale(
        ag::mean(ag::log_t(ag::sigmoid(ag::scale(dots, sign)))), -1.0f);
  };

  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng_.engine());
    for (const std::size_t i : order) {
      const data::GraphSample& s = feats_->dataset().samples[i];
      if (s.edges.empty() || s.n < 2) continue;
      std::vector<std::uint32_t> us, vs, nus, nvs;
      for (std::size_t e = 0; e < s.edges.size() && us.size() < 32; ++e) {
        us.push_back(s.edges[e].first);
        vs.push_back(s.edges[e].second);
      }
      for (std::size_t k = 0; k < negatives * us.size(); ++k) {
        nus.push_back(static_cast<std::uint32_t>(rng_.uniform_u64(s.n)));
        nvs.push_back(static_cast<std::uint32_t>(rng_.uniform_u64(s.n)));
      }
      const SampleInput& in = feats_->get(i);
      const auto out = model_->forward(in, /*training=*/true, rng_);
      Tensor loss =
          ag::add(ag::add(pair_loss(out.node_embed, us, vs, 1.0f),
                          pair_loss(out.node_embed, nus, nvs, -1.0f)),
                  ag::add(pair_loss(out.struct_embed, us, vs, 1.0f),
                          pair_loss(out.struct_embed, nus, nvs, -1.0f)));
      opt.zero_grad();
      loss.backward();
      opt.clip_gradients(2.0f);
      opt.step();
    }
  }
}

double MvGnnTrainer::accuracy_with(const Featurizer& feats,
                                   const std::vector<std::size_t>& idx) const {
  if (idx.empty()) return 0.0;
  feats.prefetch(idx);
  std::size_t correct = 0;
  for (std::size_t start = 0; start < idx.size(); start += kEvalBatch) {
    const std::size_t end = std::min(idx.size(), start + kEvalBatch);
    std::vector<const SampleInput*> chunk;
    chunk.reserve(end - start);
    for (std::size_t j = start; j < end; ++j) chunk.push_back(&feats.get(idx[j]));
    const GraphBatch gb = make_graph_batch(chunk);
    const auto out = model_->forward_batch(gb, /*training=*/false, rng_);
    for (std::size_t b = 0; b < gb.size(); ++b) {
      correct += (argmax_row(out.logits, b) == gb.labels[b]);
    }
  }
  return static_cast<double>(correct) / static_cast<double>(idx.size());
}

MvGnnTrainer::ViewPrediction MvGnnTrainer::predict_input(
    const SampleInput& in) const {
  const auto out = model_->forward(in, /*training=*/false, rng_);
  ViewPrediction p;
  p.fused = argmax_row(out.logits);
  p.node_view = argmax_row(out.node_logits);
  p.struct_view = argmax_row(out.struct_logits);
  return p;
}

MvGnnTrainer::ViewPrediction MvGnnTrainer::predict(std::size_t i) const {
  const SampleInput& in = feats_->get(i);
  const auto out = model_->forward(in, /*training=*/false, rng_);
  ViewPrediction p;
  p.fused = argmax_row(out.logits);
  p.node_view = argmax_row(out.node_logits);
  p.struct_view = argmax_row(out.struct_logits);
  return p;
}

double MvGnnTrainer::accuracy(const std::vector<std::size_t>& idx) const {
  return accuracy_with(*feats_, idx);
}

// ---------------------------------------------------------------------------
// StaticGnnTrainer
// ---------------------------------------------------------------------------

StaticGnnTrainer::StaticGnnTrainer(const Featurizer& feats, DgcnnConfig cfg,
                                   const TrainConfig& tc)
    : feats_(&feats), tc_(tc), rng_(tc.seed) {
  cfg.in_dim = feats.dataset().static_dim;  // static columns only
  par::Rng init_rng(tc.seed ^ 0x22225555ULL);
  model_ = std::make_unique<SingleViewGnn>(cfg, init_rng);
  opt_ = std::make_unique<ag::Adam>(tc.lr, 0.9f, 0.999f, 1e-8f,
                                    tc.weight_decay);
  opt_->add_params(model_->parameters());
}

ag::Tensor StaticGnnTrainer::static_feats(std::size_t i) const {
  const data::GraphSample& s = feats_->dataset().samples[i];
  const std::size_t d = feats_->dataset().static_dim;
  std::vector<float> f(s.n * d);
  for (std::uint32_t k = 0; k < s.n; ++k) {
    std::copy(s.node_static[k].begin(), s.node_static[k].end(),
              f.data() + k * d);
  }
  return Tensor::from_data({s.n, d}, std::move(f));
}

std::vector<EpochStat> StaticGnnTrainer::fit(
    const std::vector<std::size_t>& train_idx,
    const std::vector<std::size_t>& test_idx) {
  std::vector<std::size_t> order = train_idx;
  feats_->prefetch(order);  // parallel featurization before the epoch loop
  std::vector<EpochStat> curve;
  for (std::size_t epoch = 0; epoch < tc_.epochs; ++epoch) {
    float lr = tc_.lr;
    if (epoch >= tc_.epochs * 6 / 10) lr *= 0.3f;
    if (epoch >= tc_.epochs * 85 / 100) lr *= 0.3f;
    opt_->set_lr(lr);
    std::shuffle(order.begin(), order.end(), rng_.engine());
    double loss_sum = 0.0;
    std::size_t correct = 0;
    for (const std::size_t i : order) {
      const SampleInput& in = feats_->get(i);
      const Tensor logits =
          model_->forward(in.ahat, static_feats(i), /*training=*/true, rng_);
      Tensor loss = ag::cross_entropy_logits(logits, {in.label});
      opt_->zero_grad();
      loss.backward();
      opt_->step();
      loss_sum += loss.item();
      correct += (argmax_row(logits) == in.label);
    }
    EpochStat st;
    st.loss = loss_sum / std::max<std::size_t>(1, order.size());
    st.train_acc =
        static_cast<double>(correct) / std::max<std::size_t>(1, order.size());
    st.test_acc = test_idx.empty() ? 0.0 : accuracy(test_idx);
    curve.push_back(st);
  }
  return curve;
}

int StaticGnnTrainer::predict(std::size_t i) const {
  const SampleInput& in = feats_->get(i);
  const Tensor logits =
      model_->forward(in.ahat, static_feats(i), /*training=*/false, rng_);
  return argmax_row(logits);
}

double StaticGnnTrainer::accuracy(const std::vector<std::size_t>& idx) const {
  if (idx.empty()) return 0.0;
  std::size_t correct = 0;
  for (const std::size_t i : idx) {
    correct += (predict(i) == feats_->get(i).label);
  }
  return static_cast<double>(correct) / static_cast<double>(idx.size());
}

}  // namespace mvgnn::core
