// Crash-safe training checkpoints.
//
// A checkpoint captures everything fit() needs to continue a run as if it
// had never stopped: model weights (nn::save_weights order), Adam moment
// buffers, the completed epoch/step counters, the trainer Rng state and the
// loss curve so far. The on-disk format is
//
//   header:  u32 magic "MVCK", u32 version
//   payload: u64 epoch, u64 step, string rng_state,
//            u64 curve count + per-epoch (loss, train_acc, test_acc) f64s,
//            nn::save_weights bytes, ag::Adam::save_state bytes
//   footer:  u64 payload byte count, u32 CRC32(payload)
//
// Files are written atomically (temp + fsync + rename, io::atomic_write_file)
// so a crash mid-write never leaves a half-checkpoint under the final name,
// and every load failure reports the file offset where parsing stopped.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "nn/module.hpp"
#include "tensor/optim.hpp"

namespace mvgnn::core {

/// Everything in a checkpoint besides the weight/optimizer buffers.
struct CheckpointMeta {
  std::uint64_t epoch = 0;       ///< completed epochs (resume starts here)
  std::uint64_t step = 0;        ///< completed optimizer steps
  std::string rng_state;         ///< par::Rng::state() at the epoch boundary
  std::vector<EpochStat> curve;  ///< stats for the completed epochs
};

/// Serializes a full checkpoint (header + payload + footer) to bytes.
/// fit() encodes an in-memory snapshot at each epoch start so an interrupt
/// can persist the last consistent state without re-serializing live
/// buffers mid-update.
[[nodiscard]] std::string encode_checkpoint(const CheckpointMeta& meta,
                                            const nn::Module& model,
                                            const ag::Adam& opt);

/// Atomically writes pre-encoded checkpoint bytes to `path`. Honors the
/// "ckpt.write" fault site and counts ckpt.writes_total.
void write_checkpoint_file(const std::string& path, const std::string& bytes);

/// encode_checkpoint + write_checkpoint_file.
void save_checkpoint(const std::string& path, const CheckpointMeta& meta,
                     const nn::Module& model, const ag::Adam& opt);

/// Loads a checkpoint, restoring `model` weights and `opt` state in place,
/// and returns the meta. Throws std::runtime_error with the failing file
/// offset on any truncation, cap violation, or checksum mismatch.
[[nodiscard]] CheckpointMeta load_checkpoint(std::istream& is,
                                             nn::Module& model, ag::Adam& opt);
[[nodiscard]] CheckpointMeta load_checkpoint(const std::string& path,
                                             nn::Module& model, ag::Adam& opt);

/// Canonical file name for the checkpoint taken after `epoch` completed
/// epochs: `<dir>/ckpt-<epoch>.mvck`.
[[nodiscard]] std::string checkpoint_path(const std::string& dir,
                                          std::uint64_t epoch);

/// Path of the highest-epoch `ckpt-*.mvck` in `dir`, or "" when the
/// directory is missing or holds no checkpoints.
[[nodiscard]] std::string latest_checkpoint(const std::string& dir);

}  // namespace mvgnn::core
