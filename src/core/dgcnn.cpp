#include "core/dgcnn.hpp"

#include <cmath>
#include <stdexcept>

namespace mvgnn::core {

using ag::Tensor;

ag::CsrMatrix make_ahat(
    std::uint32_t n,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) {
  return nn::dgcnn_adjacency(n, edges);
}

Dgcnn::Dgcnn(const DgcnnConfig& cfg, par::Rng& rng) : cfg_(cfg) {
  if (cfg.gcn_channels.empty() || cfg.gcn_channels.back() != 1) {
    throw std::invalid_argument(
        "DGCNN: the final GCN layer must have 1 channel (SortPooling sorts "
        "on it)");
  }
  std::size_t in = cfg.in_dim;
  for (const std::size_t ch : cfg.gcn_channels) {
    if (cfg.relational) {
      rconvs_.emplace_back(in, ch, cfg.relations, rng);
    } else {
      convs_.emplace_back(in, ch, rng);
    }
    concat_dim_ += ch;
    in = ch;
  }
  const float s1 = std::sqrt(2.0f / static_cast<float>(concat_dim_));
  conv1_w_ = Tensor::randn(
      {cfg.conv1_channels, concat_dim_}, rng, s1);
  conv1_b_ = Tensor::zeros({1, cfg.conv1_channels}, true);
  const float s2 =
      std::sqrt(2.0f / static_cast<float>(cfg.conv1_channels *
                                          cfg.conv2_kernel));
  conv2_w_ = Tensor::randn(
      {cfg.conv2_channels, cfg.conv1_channels * cfg.conv2_kernel}, rng, s2);
  conv2_b_ = Tensor::zeros({1, cfg.conv2_channels}, true);

  const std::size_t pooled_len = cfg.sort_k / 2;
  if (pooled_len < cfg.conv2_kernel) {
    throw std::invalid_argument("DGCNN: sort_k/2 smaller than conv2 kernel");
  }
  rep_dim_ = cfg.conv2_channels * (pooled_len - cfg.conv2_kernel + 1);
  dense_ = std::make_unique<nn::Linear>(rep_dim_, cfg.dense_hidden, rng);
  head_ = std::make_unique<nn::Linear>(cfg.dense_hidden, cfg.num_classes, rng);
}

Dgcnn::Output Dgcnn::forward(const ag::CsrMatrix& ahat,
                             const std::vector<ag::CsrMatrix>& rel_ahats,
                             const ag::Tensor& features,
                             const std::vector<std::uint32_t>& offsets,
                             bool training, par::Rng& rng) const {
  // Stacked graph convolutions with tanh; concatenate every layer's output.
  // A block-diagonal adjacency keeps messages inside each graph, so the
  // whole batch shares one spmm per layer.
  Tensor x = features;
  Tensor z;
  const std::size_t layers = cfg_.relational ? rconvs_.size() : convs_.size();
  for (std::size_t i = 0; i < layers; ++i) {
    // The plain GCN path fuses tanh into the spmm rows; the relational sum
    // has no single producing kernel, so it keeps the elementwise tanh.
    x = cfg_.relational ? ag::tanh_t(rconvs_[i].forward(rel_ahats, x))
                        : convs_[i].forward_tanh(ahat, x);
    z = (i == 0) ? x : ag::concat_cols(z, x);
  }

  Output out;
  out.nodes = z;

  // Per-segment SortPooling to [B*k, concat_dim].
  const std::size_t b_count = offsets.size() - 1;
  Tensor sp = ag::sort_pool_segments(z, cfg_.sort_k, offsets);

  // 1-D convolution stage 1: kernel = stride = concat_dim means every conv
  // window is exactly one pooled row, so windows never straddle a graph
  // boundary and the conv is one GEMM over [B*k, concat_dim] (same
  // summation order as im2col conv1d). The fused matmul_bias with tw reads
  // conv1_w_ [c1, concat_dim] transposed in place — no per-forward weight
  // transpose or bias-add intermediate is materialized.
  Tensor c1 = ag::relu(ag::transpose(
      ag::matmul_bias(sp, conv1_w_, conv1_b_, /*tw=*/true)));  // [c1, B*k]
  Tensor pooled;
  if (cfg_.sort_k % 2 == 0) {
    // Even k: the 2-wide max-pool windows line up with graph boundaries, so
    // pooling runs batched, and the stride-1 second conv is segment-aware —
    // it only computes the windows that live inside one graph's k/2
    // columns, never the straddling positions.
    const std::size_t half = cfg_.sort_k / 2;
    const std::size_t l = half - cfg_.conv2_kernel + 1;
    Tensor p1 = ag::maxpool1d(c1, 2);                       // [c1, B*k/2]
    std::vector<std::uint32_t> starts(b_count);
    for (std::size_t b = 0; b < b_count; ++b) {
      starts[b] = static_cast<std::uint32_t>(b * half);
    }
    Tensor c2 = ag::relu(ag::conv1d_segments(p1, conv2_w_, conv2_b_,
                                             cfg_.conv2_kernel, 1, starts,
                                             half));        // [c2, B*l]
    std::vector<std::uint32_t> row_starts(b_count);
    for (std::size_t b = 0; b < b_count; ++b) {
      row_starts[b] = static_cast<std::uint32_t>(b * l);
    }
    pooled = ag::segment_cols_to_rows(c2, row_starts, l);   // [B, rep_dim]
  } else {
    // Odd k: pool windows would straddle boundaries, so the tail of the
    // head runs on each graph's k-column slice.
    for (std::size_t b = 0; b < b_count; ++b) {
      Tensor cb = ag::slice_cols(c1, b * cfg_.sort_k, (b + 1) * cfg_.sort_k);
      Tensor p1 = ag::maxpool1d(cb, 2);                     // [c1, k/2]
      Tensor c2 = ag::relu(ag::conv1d(p1, conv2_w_, conv2_b_,
                                      cfg_.conv2_kernel, 1));  // [c2, L]
      Tensor pb = ag::reshape(c2, {1, rep_dim_});
      pooled = (b == 0) ? pb : ag::concat_rows(pooled, pb);
    }
  }
  out.pooled = pooled;  // [B, rep_dim]
  Tensor h = ag::relu(dense_->forward(out.pooled));
  h = ag::dropout(h, cfg_.dropout, training, rng);
  out.logits = head_->forward(h);
  return out;
}

Dgcnn::Output Dgcnn::forward(const GraphInput& g, bool training,
                             par::Rng& rng) const {
  return forward(g.ahat, g.rel_ahats, g.features,
                 {0, static_cast<std::uint32_t>(g.features.rows())}, training,
                 rng);
}

std::vector<ag::Tensor> Dgcnn::parameters() const {
  std::vector<ag::Tensor> ps;
  for (const auto& c : convs_) {
    for (const auto& p : c.parameters()) ps.push_back(p);
  }
  for (const auto& c : rconvs_) {
    for (const auto& p : c.parameters()) ps.push_back(p);
  }
  ps.push_back(conv1_w_);
  ps.push_back(conv1_b_);
  ps.push_back(conv2_w_);
  ps.push_back(conv2_b_);
  for (const auto& p : dense_->parameters()) ps.push_back(p);
  for (const auto& p : head_->parameters()) ps.push_back(p);
  return ps;
}

}  // namespace mvgnn::core
