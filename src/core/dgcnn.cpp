#include "core/dgcnn.hpp"

#include <cmath>
#include <stdexcept>

namespace mvgnn::core {

using ag::Tensor;

ag::Tensor make_ahat(
    std::uint32_t n,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) {
  return nn::dgcnn_adjacency(n, edges);
}

Dgcnn::Dgcnn(const DgcnnConfig& cfg, par::Rng& rng) : cfg_(cfg) {
  if (cfg.gcn_channels.empty() || cfg.gcn_channels.back() != 1) {
    throw std::invalid_argument(
        "DGCNN: the final GCN layer must have 1 channel (SortPooling sorts "
        "on it)");
  }
  std::size_t in = cfg.in_dim;
  for (const std::size_t ch : cfg.gcn_channels) {
    if (cfg.relational) {
      rconvs_.emplace_back(in, ch, cfg.relations, rng);
    } else {
      convs_.emplace_back(in, ch, rng);
    }
    concat_dim_ += ch;
    in = ch;
  }
  const float s1 = std::sqrt(2.0f / static_cast<float>(concat_dim_));
  conv1_w_ = Tensor::randn(
      {cfg.conv1_channels, concat_dim_}, rng, s1);
  conv1_b_ = Tensor::zeros({1, cfg.conv1_channels}, true);
  const float s2 =
      std::sqrt(2.0f / static_cast<float>(cfg.conv1_channels *
                                          cfg.conv2_kernel));
  conv2_w_ = Tensor::randn(
      {cfg.conv2_channels, cfg.conv1_channels * cfg.conv2_kernel}, rng, s2);
  conv2_b_ = Tensor::zeros({1, cfg.conv2_channels}, true);

  const std::size_t pooled_len = cfg.sort_k / 2;
  if (pooled_len < cfg.conv2_kernel) {
    throw std::invalid_argument("DGCNN: sort_k/2 smaller than conv2 kernel");
  }
  rep_dim_ = cfg.conv2_channels * (pooled_len - cfg.conv2_kernel + 1);
  dense_ = std::make_unique<nn::Linear>(rep_dim_, cfg.dense_hidden, rng);
  head_ = std::make_unique<nn::Linear>(cfg.dense_hidden, cfg.num_classes, rng);
}

Dgcnn::Output Dgcnn::forward(const GraphInput& g, bool training,
                             par::Rng& rng) const {
  // Stacked graph convolutions with tanh; concatenate every layer's output.
  Tensor x = g.features;
  Tensor z;
  const std::size_t layers = cfg_.relational ? rconvs_.size() : convs_.size();
  for (std::size_t i = 0; i < layers; ++i) {
    x = cfg_.relational
            ? ag::tanh_t(rconvs_[i].forward(g.rel_ahats, x))
            : ag::tanh_t(convs_[i].forward(g.ahat, x));
    z = (i == 0) ? x : ag::concat_cols(z, x);
  }

  Output out_partial;
  out_partial.nodes = z;

  // SortPooling to a fixed-size [k, concat_dim] representation.
  Tensor sp = ag::sort_pool(z, cfg_.sort_k);

  // 1-D convolution stage 1: one input channel over the flattened rows,
  // kernel = stride = concat_dim, i.e. one step per pooled node.
  Tensor flat = ag::reshape(sp, {1, cfg_.sort_k * concat_dim_});
  Tensor c1 = ag::relu(ag::conv1d(flat, conv1_w_, conv1_b_, concat_dim_,
                                  concat_dim_));           // [c1, k]
  Tensor p1 = ag::maxpool1d(c1, 2);                         // [c1, k/2]
  Tensor c2 = ag::relu(ag::conv1d(p1, conv2_w_, conv2_b_, cfg_.conv2_kernel,
                                  1));                      // [c2, L]

  Output out = std::move(out_partial);
  out.pooled = ag::reshape(c2, {1, rep_dim_});
  Tensor h = ag::relu(dense_->forward(out.pooled));
  h = ag::dropout(h, cfg_.dropout, training, rng);
  out.logits = head_->forward(h);
  return out;
}

std::vector<ag::Tensor> Dgcnn::parameters() const {
  std::vector<ag::Tensor> ps;
  for (const auto& c : convs_) {
    for (const auto& p : c.parameters()) ps.push_back(p);
  }
  for (const auto& c : rconvs_) {
    for (const auto& p : c.parameters()) ps.push_back(p);
  }
  ps.push_back(conv1_w_);
  ps.push_back(conv1_b_);
  ps.push_back(conv2_w_);
  ps.push_back(conv2_b_);
  for (const auto& p : dense_->parameters()) ps.push_back(p);
  for (const auto& p : head_->parameters()) ps.push_back(p);
  return ps;
}

}  // namespace mvgnn::core
