// MV-GNN — the paper's primary contribution (section III, Fig. 3).
//
// Two independent DGCNNs examine each loop sub-PEG from two views:
//  * node-feature view: inst2vec static embeddings concatenated with the
//    Table I dynamic features per node;
//  * structural view: per-node anonymous-walk distributions pushed through
//    a learned AW embedding table (eq. 3/4).
// The fusion layer (eq. 5) is h = W · tanh(h_n ⊕ h_s) + b over the two
// pooled representations, followed by the softmax classifier. The per-view
// heads stay attached so the Fig. 8 view-importance probes can read
// single-view predictions off the jointly trained model.
#pragma once

#include "core/dgcnn.hpp"

namespace mvgnn::core {

struct MvGnnConfig {
  DgcnnConfig node_view;
  DgcnnConfig struct_view;
  /// Typed-edge extension: run the node view relationally over the PEG's
  /// {hierarchy, RAW, WAR, WAW} relations (struct view stays untyped).
  bool typed_edges = false;
  std::size_t aw_vocab = 0;      // structural input width (set from dataset)
  std::size_t aw_embed_dim = 16; // AW embedding table width
  std::size_t num_classes = 2;
};

/// Model input for one loop sample. `ahat` is shared by both views.
struct SampleInput {
  ag::Tensor ahat;        // [n, n]
  ag::Tensor node_feats;  // [n, node_view.in_dim]
  ag::Tensor aw_dist;     // [n, aw_vocab]
  /// Per-relation adjacencies (built only when the featurizer's typed-edge
  /// mode is on).
  std::vector<ag::Tensor> rel_ahats;
  int label = 0;
};

class MvGnn final : public nn::Module {
 public:
  MvGnn(MvGnnConfig cfg, par::Rng& rng);

  struct Output {
    ag::Tensor logits;         // fused prediction [1, classes]
    ag::Tensor node_logits;    // node-feature view head
    ag::Tensor struct_logits;  // structural view head
    ag::Tensor node_embed;     // node-view per-node embeddings [n, c]
    ag::Tensor struct_embed;   // structural-view per-node embeddings [n, c]
  };

  [[nodiscard]] Output forward(const SampleInput& in, bool training,
                               par::Rng& rng) const;

  [[nodiscard]] std::vector<ag::Tensor> parameters() const override;
  [[nodiscard]] const MvGnnConfig& config() const { return cfg_; }

 private:
  MvGnnConfig cfg_;
  std::unique_ptr<Dgcnn> node_view_;
  std::unique_ptr<Dgcnn> struct_view_;
  ag::Tensor aw_embed_;  // [aw_vocab, aw_embed_dim]
  std::unique_ptr<nn::Linear> fusion_;
};

/// Single-view GNN classifier (used for the "GNNs with static information"
/// baseline of Shen et al. and the per-view ablations): one DGCNN over a
/// caller-chosen node feature matrix.
class SingleViewGnn final : public nn::Module {
 public:
  SingleViewGnn(const DgcnnConfig& cfg, par::Rng& rng);

  [[nodiscard]] ag::Tensor forward(const ag::Tensor& ahat,
                                   const ag::Tensor& feats, bool training,
                                   par::Rng& rng) const;
  [[nodiscard]] std::vector<ag::Tensor> parameters() const override {
    return view_->parameters();
  }

 private:
  std::unique_ptr<Dgcnn> view_;
};

}  // namespace mvgnn::core
