// MV-GNN — the paper's primary contribution (section III, Fig. 3).
//
// Two independent DGCNNs examine each loop sub-PEG from two views:
//  * node-feature view: inst2vec static embeddings concatenated with the
//    Table I dynamic features per node;
//  * structural view: per-node anonymous-walk distributions pushed through
//    a learned AW embedding table (eq. 3/4).
// The fusion layer (eq. 5) is h = W · tanh(h_n ⊕ h_s) + b over the two
// pooled representations, followed by the softmax classifier. The per-view
// heads stay attached so the Fig. 8 view-importance probes can read
// single-view predictions off the jointly trained model.
#pragma once

#include "core/dgcnn.hpp"

namespace mvgnn::core {

struct MvGnnConfig {
  DgcnnConfig node_view;
  DgcnnConfig struct_view;
  /// Typed-edge extension: run the node view relationally over the PEG's
  /// {hierarchy, RAW, WAR, WAW} relations (struct view stays untyped).
  bool typed_edges = false;
  std::size_t aw_vocab = 0;      // structural input width (set from dataset)
  std::size_t aw_embed_dim = 16; // AW embedding table width
  std::size_t num_classes = 2;
};

/// Model input for one loop sample. `ahat` is shared by both views.
struct SampleInput {
  ag::CsrMatrix ahat;     // [n, n]
  ag::Tensor node_feats;  // [n, node_view.in_dim]
  ag::Tensor aw_dist;     // [n, aw_vocab]
  /// Per-relation adjacencies (built only when the featurizer's typed-edge
  /// mode is on).
  std::vector<ag::CsrMatrix> rel_ahats;
  int label = 0;
};

/// B loop samples fused into one block-diagonal problem: adjacencies are
/// concatenated block-diagonally, node rows are stacked, and graph b's
/// nodes occupy rows [offsets[b], offsets[b+1]). One batched forward then
/// replaces B per-sample forwards — same math, one optimizer step.
struct GraphBatch {
  ag::CsrMatrix ahat;       // [N, N] block-diagonal
  ag::Tensor node_feats;    // [N, node_view.in_dim]
  ag::Tensor aw_dist;       // [N, aw_vocab]
  std::vector<ag::CsrMatrix> rel_ahats;  // per relation, block-diagonal
  std::vector<std::uint32_t> offsets;    // size B+1, offsets[0] == 0
  std::vector<int> labels;               // size B
  [[nodiscard]] std::size_t size() const { return labels.size(); }
};

/// Assembles a batch from featurized samples (pointers stay borrowed).
[[nodiscard]] GraphBatch make_graph_batch(
    const std::vector<const SampleInput*>& samples);

class MvGnn final : public nn::Module {
 public:
  MvGnn(MvGnnConfig cfg, par::Rng& rng);

  struct Output {
    ag::Tensor logits;         // fused prediction [B, classes]
    ag::Tensor node_logits;    // node-feature view head [B, classes]
    ag::Tensor struct_logits;  // structural view head [B, classes]
    ag::Tensor node_embed;     // node-view per-node embeddings [N, c]
    ag::Tensor struct_embed;   // structural-view per-node embeddings [N, c]
  };

  /// Batched forward over a block-diagonal GraphBatch; row b of every
  /// logits tensor corresponds to the batch's b-th graph.
  [[nodiscard]] Output forward_batch(const GraphBatch& batch, bool training,
                                     par::Rng& rng) const;

  /// Single-sample (B=1) wrapper over the batched path.
  [[nodiscard]] Output forward(const SampleInput& in, bool training,
                               par::Rng& rng) const;

  [[nodiscard]] std::vector<ag::Tensor> parameters() const override;
  [[nodiscard]] const MvGnnConfig& config() const { return cfg_; }

 private:
  MvGnnConfig cfg_;
  std::unique_ptr<Dgcnn> node_view_;
  std::unique_ptr<Dgcnn> struct_view_;
  ag::Tensor aw_embed_;  // [aw_vocab, aw_embed_dim]
  std::unique_ptr<nn::Linear> fusion_;
};

/// Single-view GNN classifier (used for the "GNNs with static information"
/// baseline of Shen et al. and the per-view ablations): one DGCNN over a
/// caller-chosen node feature matrix.
class SingleViewGnn final : public nn::Module {
 public:
  SingleViewGnn(const DgcnnConfig& cfg, par::Rng& rng);

  [[nodiscard]] ag::Tensor forward(const ag::CsrMatrix& ahat,
                                   const ag::Tensor& feats, bool training,
                                   par::Rng& rng) const;
  [[nodiscard]] std::vector<ag::Tensor> parameters() const override {
    return view_->parameters();
  }

 private:
  std::unique_ptr<Dgcnn> view_;
};

}  // namespace mvgnn::core
