// DGCNN (Zhang et al. 2018) — the per-view graph network of the paper's
// Fig. 6: stacked graph convolutions with tanh, channel concatenation,
// SortPooling to a fixed k, two 1-D convolution stages with max-pooling,
// and a dense head. The MV-GNN takes the *input of the fully connected
// layer* from each view (section III-D), so forward() exposes both the
// pooled representation and the classification logits.
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.hpp"

namespace mvgnn::core {

struct DgcnnConfig {
  std::size_t in_dim = 16;        // node feature width
  /// Typed-edge extension: replace the merged-adjacency GCN layers with
  /// relational convolutions (one weight bank per PEG edge relation).
  bool relational = false;
  std::size_t relations = 4;
  std::vector<std::size_t> gcn_channels = {32, 32, 1};  // last must be 1
                                  // (SortPooling sorts on the final channel)
  std::size_t sort_k = 16;        // SortPooling k (paper: 135, scaled down)
  std::size_t conv1_channels = 16;  // first 1-D conv output channels
  std::size_t conv2_channels = 32;  // second 1-D conv output channels
  std::size_t conv2_kernel = 5;
  std::size_t dense_hidden = 64;  // dense layer before the logits
  std::size_t num_classes = 2;
  float dropout = 0.1f;
};

/// One graph as the network consumes it: a normalized CSR adjacency and a
/// node feature matrix.
struct GraphInput {
  ag::CsrMatrix ahat;   // [n, n]
  ag::Tensor features;  // [n, in_dim]
  /// Per-relation adjacencies (relational mode only), size = relations.
  std::vector<ag::CsrMatrix> rel_ahats;
};

class Dgcnn final : public nn::Module {
 public:
  Dgcnn(const DgcnnConfig& cfg, par::Rng& rng);

  struct Output {
    ag::Tensor pooled;  // [B, rep_dim] — input of the FC layer (for MV-GNN)
    ag::Tensor logits;  // [B, num_classes]
    ag::Tensor nodes;   // [N, concat_dim] — per-node embeddings before
                        // SortPooling (the GraphSAGE-style unsupervised
                        // objective trains on these)
  };

  /// Batched forward over a block-diagonal graph batch: `ahat` (or
  /// `rel_ahats` in relational mode) is the block-diagonal [N,N] CSR over
  /// all B graphs, `features` stacks their node rows, and graph b's nodes
  /// live in rows [offsets[b], offsets[b+1]). One pass runs the GCN stack
  /// over all graphs at once; SortPooling and the 1-D conv head pool each
  /// segment independently, so row b of `pooled`/`logits` is element-wise
  /// identical to a B=1 forward of graph b alone.
  [[nodiscard]] Output forward(const ag::CsrMatrix& ahat,
                               const std::vector<ag::CsrMatrix>& rel_ahats,
                               const ag::Tensor& features,
                               const std::vector<std::uint32_t>& offsets,
                               bool training, par::Rng& rng) const;

  /// Single-graph (B=1) convenience wrapper over the batched forward.
  [[nodiscard]] Output forward(const GraphInput& g, bool training,
                               par::Rng& rng) const;

  /// Width of `Output::pooled`.
  [[nodiscard]] std::size_t rep_dim() const { return rep_dim_; }

  [[nodiscard]] std::vector<ag::Tensor> parameters() const override;

 private:
  DgcnnConfig cfg_;
  std::vector<nn::GcnConv> convs_;
  std::vector<nn::RgcnConv> rconvs_;  // relational mode
  std::size_t concat_dim_ = 0;  // sum of gcn channel widths
  ag::Tensor conv1_w_, conv1_b_;
  ag::Tensor conv2_w_, conv2_b_;
  std::size_t rep_dim_ = 0;
  std::unique_ptr<nn::Linear> dense_;
  std::unique_ptr<nn::Linear> head_;
};

/// Builds the [n,n] row-normalized CSR adjacency for a sample's edge list.
[[nodiscard]] ag::CsrMatrix make_ahat(
    std::uint32_t n,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges);

}  // namespace mvgnn::core
