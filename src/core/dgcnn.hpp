// DGCNN (Zhang et al. 2018) — the per-view graph network of the paper's
// Fig. 6: stacked graph convolutions with tanh, channel concatenation,
// SortPooling to a fixed k, two 1-D convolution stages with max-pooling,
// and a dense head. The MV-GNN takes the *input of the fully connected
// layer* from each view (section III-D), so forward() exposes both the
// pooled representation and the classification logits.
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.hpp"

namespace mvgnn::core {

struct DgcnnConfig {
  std::size_t in_dim = 16;        // node feature width
  /// Typed-edge extension: replace the merged-adjacency GCN layers with
  /// relational convolutions (one weight bank per PEG edge relation).
  bool relational = false;
  std::size_t relations = 4;
  std::vector<std::size_t> gcn_channels = {32, 32, 1};  // last must be 1
                                  // (SortPooling sorts on the final channel)
  std::size_t sort_k = 16;        // SortPooling k (paper: 135, scaled down)
  std::size_t conv1_channels = 16;  // first 1-D conv output channels
  std::size_t conv2_channels = 32;  // second 1-D conv output channels
  std::size_t conv2_kernel = 5;
  std::size_t dense_hidden = 64;  // dense layer before the logits
  std::size_t num_classes = 2;
  float dropout = 0.1f;
};

/// One graph as the network consumes it: a normalized adjacency and a node
/// feature matrix.
struct GraphInput {
  ag::Tensor ahat;      // [n, n]
  ag::Tensor features;  // [n, in_dim]
  /// Per-relation adjacencies (relational mode only), size = relations.
  std::vector<ag::Tensor> rel_ahats;
};

class Dgcnn final : public nn::Module {
 public:
  Dgcnn(const DgcnnConfig& cfg, par::Rng& rng);

  struct Output {
    ag::Tensor pooled;  // [1, rep_dim] — input of the FC layer (for MV-GNN)
    ag::Tensor logits;  // [1, num_classes]
    ag::Tensor nodes;   // [n, concat_dim] — per-node embeddings before
                        // SortPooling (the GraphSAGE-style unsupervised
                        // objective trains on these)
  };

  [[nodiscard]] Output forward(const GraphInput& g, bool training,
                               par::Rng& rng) const;

  /// Width of `Output::pooled`.
  [[nodiscard]] std::size_t rep_dim() const { return rep_dim_; }

  [[nodiscard]] std::vector<ag::Tensor> parameters() const override;

 private:
  DgcnnConfig cfg_;
  std::vector<nn::GcnConv> convs_;
  std::vector<nn::RgcnConv> rconvs_;  // relational mode
  std::size_t concat_dim_ = 0;  // sum of gcn channel widths
  ag::Tensor conv1_w_, conv1_b_;
  ag::Tensor conv2_w_, conv2_b_;
  std::size_t rep_dim_ = 0;
  std::unique_ptr<nn::Linear> dense_;
  std::unique_ptr<nn::Linear> head_;
};

/// Builds the [n,n] row-normalized adjacency for a sample's edge list.
[[nodiscard]] ag::Tensor make_ahat(
    std::uint32_t n,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges);

}  // namespace mvgnn::core
