#include "pipe/item.hpp"

#include <cmath>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "analysis/tools.hpp"
#include "cache/key.hpp"
#include "embedding/normalizer.hpp"
#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "graph/peg.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "parallel/rng.hpp"
#include "transform/passes.hpp"

namespace mvgnn::pipe {

namespace {

/// Bumped whenever the ItemFeatures payload layout changes; participates in
/// the featurize key so old entries become misses instead of decode errors.
constexpr std::uint32_t kFormat = 1;

// Deserialization caps — far past anything the generators produce, tight
// enough that a hostile count cannot drive a huge allocation.
constexpr std::uint64_t kMaxTokens = 1ull << 22;
constexpr std::uint64_t kMaxStr = 1ull << 20;
constexpr std::uint64_t kMaxPairs = 1ull << 26;
constexpr std::uint64_t kMaxSamples = 1ull << 20;
constexpr std::uint64_t kMaxNodes = 1ull << 20;
constexpr std::uint64_t kMaxEdges = 1ull << 24;
constexpr std::uint64_t kMaxWalks = 1ull << 20;
constexpr std::uint64_t kMaxWalkLen = 255;

/// Simulates input sensitivity: drops aggregated dependence edges with
/// probability `p`. Loop runtime, CU structure and object tables stay.
profiler::ProfileResult degrade_profile(const profiler::ProfileResult& prof,
                                        double p, par::Rng& rng) {
  profiler::ProfileResult out = prof;
  if (p <= 0.0) return out;
  std::erase_if(out.dep.edges, [&](const profiler::DepEdge&) {
    return rng.uniform() < p;
  });
  return out;
}

/// log1p squashing for count-like dynamic features (exec counts span many
/// orders of magnitude; GCNs want tame inputs).
std::array<double, 7> squash(const profiler::LoopFeatures& f) {
  const auto v = f.as_vector();
  std::array<double, 7> out{};
  out[0] = std::log1p(v[0]);  // n_inst
  out[1] = std::log1p(v[1]);  // exec_times
  out[2] = std::log1p(v[2]);  // cfl
  out[3] = v[3];              // esp (already a small ratio)
  out[4] = std::log1p(v[4]);  // incoming
  out[5] = std::log1p(v[5]);  // internal
  out[6] = std::log1p(v[6]);  // outgoing
  return out;
}

// ---- payload writer/reader (little-endian, length-prefixed) --------------

void put_u8(std::string& o, std::uint8_t v) {
  o.push_back(static_cast<char>(v));
}
void put_u32(std::string& o, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(o, static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::string& o, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(o, static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_i32(std::string& o, std::int32_t v) {
  put_u32(o, static_cast<std::uint32_t>(v));
}
void put_f64(std::string& o, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(o, bits);
}
void put_str(std::string& o, const std::string& s) {
  put_u64(o, s.size());
  o.append(s);
}

struct Reader {
  const unsigned char* p;
  std::size_t size;
  std::size_t off = 0;

  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("item features payload: " + std::string(what) +
                             " at offset " + std::to_string(off));
  }
  void need(std::size_t n) const {
    if (size - off < n) fail("truncated");
  }
  std::uint8_t u8() {
    need(1);
    return p[off++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[off + i]} << (8 * i);
    off += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[off + i]} << (8 * i);
    off += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::uint64_t count(std::uint64_t cap, const char* what) {
    const std::uint64_t n = u64();
    if (n > cap) fail(what);
    return n;
  }
  std::string str() {
    const std::uint64_t n = count(kMaxStr, "oversized string");
    need(static_cast<std::size_t>(n));
    std::string s(reinterpret_cast<const char*>(p + off),
                  static_cast<std::size_t>(n));
    off += static_cast<std::size_t>(n);
    return s;
  }
};

std::size_t approx_profile_bytes(const CompiledProfile& cp) {
  std::size_t bytes = sizeof(CompiledProfile);
  for (const auto& fn : cp.module.functions) {
    bytes += fn->instrs.size() * (sizeof(ir::Instruction) + 32);
  }
  bytes += cp.prof.dep.edges.size() * sizeof(profiler::DepEdge);
  for (const profiler::CU& cu : cp.prof.cus) {
    bytes += sizeof(profiler::CU) + cu.instrs.size() * sizeof(ir::InstrId);
  }
  bytes += cp.prof.loops.size() * sizeof(profiler::LoopSample);
  return bytes;
}

}  // namespace

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::Parse: return "parse";
    case Stage::Lower: return "lower";
    case Stage::Profile: return "profile";
    case Stage::Peg: return "peg";
    case Stage::Walks: return "walks";
    case Stage::Featurize: return "featurize";
    case Stage::Embed: return "embed";
  }
  return "?";
}

const char* quarantine_stage(Stage s) {
  switch (s) {
    case Stage::Parse:
    case Stage::Lower: return "compile";
    case Stage::Profile: return "profile";
    case Stage::Peg:
    case Stage::Walks:
    case Stage::Featurize:
    case Stage::Embed: return "featurize";
  }
  return "?";
}

StageKeys stage_keys(const ItemSpec& spec, const PipelineConfig& cfg) {
  StageKeys k;
  k.parse = cache::Hasher()
                .str("mvgnn.pipe.v1")
                .str("parse")
                .str(spec.source)
                .str(spec.module_name)
                .digest();
  k.lower = cache::Hasher(k.parse).str("lower").str(spec.variant).digest();
  cache::Hasher hp(k.lower);
  hp.str("profile")
      .str(spec.entry)
      .u64(cfg.interp.max_steps)
      .u32(cfg.interp.max_call_depth)
      .u64(cfg.interp.max_mem_cells)
      .u64(spec.args.size());
  for (const profiler::ArgInit& a : spec.args) {
    hp.u64(static_cast<std::uint64_t>(a.int_val))
        .f64(a.float_val)
        .u64(a.array_size)
        .u64(a.fill_seed);
  }
  k.profile = hp.digest();
  k.peg = cache::Hasher(k.profile)
              .str("peg")
              .f64(cfg.dep_noise)
              .u64(spec.noise_seed)
              .digest();
  k.walks = cache::Hasher(k.peg)
                .str("walks")
                .u32(cfg.walk.gamma)
                .u32(cfg.walk.length)
                .u64(spec.walk_seed)
                .digest();
  k.featurize =
      cache::Hasher(k.walks).str("featurize").u32(kFormat).digest();
  return k;
}

std::string serialize_features(const ItemFeatures& f) {
  std::string o;
  put_u32(o, kFormat);
  put_u64(o, f.tokens.size());
  for (const std::string& t : f.tokens) put_str(o, t);
  put_u64(o, f.context_pairs.size());
  for (const auto& [a, b] : f.context_pairs) {
    put_u32(o, a);
    put_u32(o, b);
  }
  put_u64(o, f.samples.size());
  for (const RawSample& s : f.samples) {
    put_u32(o, s.n);
    put_u64(o, s.edges.size());
    for (const auto& [a, b] : s.edges) {
      put_u32(o, a);
      put_u32(o, b);
    }
    for (const std::uint8_t k : s.edge_kinds) put_u8(o, k);
    for (const std::uint8_t k : s.node_kinds) put_u8(o, k);
    for (const auto& ix : s.node_token_ix) {
      put_u64(o, ix.size());
      for (const std::uint32_t t : ix) put_u32(o, t);
    }
    for (const auto& d : s.node_dynamic) {
      for (const double v : d) put_f64(o, v);
    }
    for (const auto& walks : s.node_walks) {
      put_u64(o, walks.size());
      for (const graph::AnonWalk& w : walks) {
        put_u64(o, w.size());
        for (const std::uint8_t step : w) put_u8(o, step);
      }
    }
    for (const double v : s.loop_features) put_f64(o, v);
    put_u64(o, s.token_seq_ix.size());
    for (const std::uint32_t t : s.token_seq_ix) put_u32(o, t);
    put_i32(o, s.label);
    put_i32(o, s.pattern_label);
    put_u8(o, s.tool_autopar ? 1 : 0);
    put_u8(o, s.tool_pluto ? 1 : 0);
    put_u8(o, s.tool_discopop ? 1 : 0);
    put_i32(o, s.loop_line);
  }
  return o;
}

ItemFeatures deserialize_features(std::string_view bytes) {
  Reader r{reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size()};
  if (r.u32() != kFormat) r.fail("format version mismatch");
  ItemFeatures f;
  const std::uint64_t n_tokens = r.count(kMaxTokens, "too many tokens");
  f.tokens.reserve(static_cast<std::size_t>(n_tokens));
  for (std::uint64_t i = 0; i < n_tokens; ++i) f.tokens.push_back(r.str());
  const std::uint64_t n_pairs = r.count(kMaxPairs, "too many pairs");
  f.context_pairs.reserve(static_cast<std::size_t>(n_pairs));
  for (std::uint64_t i = 0; i < n_pairs; ++i) {
    const std::uint32_t a = r.u32();
    const std::uint32_t b = r.u32();
    if (a >= f.tokens.size() || b >= f.tokens.size()) {
      r.fail("pair index out of range");
    }
    f.context_pairs.emplace_back(a, b);
  }
  const std::uint64_t n_samples = r.count(kMaxSamples, "too many samples");
  f.samples.reserve(static_cast<std::size_t>(n_samples));
  for (std::uint64_t si = 0; si < n_samples; ++si) {
    RawSample s;
    s.n = r.u32();
    if (s.n > kMaxNodes) r.fail("too many nodes");
    const std::uint64_t n_edges = r.count(kMaxEdges, "too many edges");
    s.edges.reserve(static_cast<std::size_t>(n_edges));
    for (std::uint64_t i = 0; i < n_edges; ++i) {
      const std::uint32_t a = r.u32();
      const std::uint32_t b = r.u32();
      if (a >= s.n || b >= s.n) r.fail("edge index out of range");
      s.edges.emplace_back(a, b);
    }
    s.edge_kinds.resize(static_cast<std::size_t>(n_edges));
    for (auto& k : s.edge_kinds) k = r.u8();
    s.node_kinds.resize(s.n);
    for (auto& k : s.node_kinds) k = r.u8();
    s.node_token_ix.resize(s.n);
    for (auto& ix : s.node_token_ix) {
      const std::uint64_t nt = r.count(kMaxTokens, "too many node tokens");
      ix.reserve(static_cast<std::size_t>(nt));
      for (std::uint64_t i = 0; i < nt; ++i) {
        const std::uint32_t t = r.u32();
        if (t >= f.tokens.size()) r.fail("token index out of range");
        ix.push_back(t);
      }
    }
    s.node_dynamic.resize(s.n);
    for (auto& d : s.node_dynamic) {
      for (double& v : d) v = r.f64();
    }
    s.node_walks.resize(s.n);
    for (auto& walks : s.node_walks) {
      const std::uint64_t nw = r.count(kMaxWalks, "too many walks");
      walks.reserve(static_cast<std::size_t>(nw));
      for (std::uint64_t i = 0; i < nw; ++i) {
        const std::uint64_t len = r.count(kMaxWalkLen, "walk too long");
        graph::AnonWalk w;
        w.reserve(static_cast<std::size_t>(len));
        for (std::uint64_t j = 0; j < len; ++j) w.push_back(r.u8());
        walks.push_back(std::move(w));
      }
    }
    for (double& v : s.loop_features) v = r.f64();
    const std::uint64_t n_seq = r.count(kMaxTokens, "token sequence too long");
    s.token_seq_ix.reserve(static_cast<std::size_t>(n_seq));
    for (std::uint64_t i = 0; i < n_seq; ++i) {
      const std::uint32_t t = r.u32();
      if (t >= f.tokens.size()) r.fail("token index out of range");
      s.token_seq_ix.push_back(t);
    }
    s.label = r.i32();
    s.pattern_label = r.i32();
    s.tool_autopar = r.u8() != 0;
    s.tool_pluto = r.u8() != 0;
    s.tool_discopop = r.u8() != 0;
    s.loop_line = r.i32();
    f.samples.push_back(std::move(s));
  }
  if (r.off != r.size) r.fail("trailing bytes");
  return f;
}

std::shared_ptr<const CompiledProfile> compile_and_profile(
    const ItemSpec& spec, const PipelineConfig& cfg, cache::Cache* cache) {
  const StageKeys keys = stage_keys(spec, cfg);
  if (cache) {
    if (auto obj = cache->get_object<CompiledProfile>(keys.profile)) {
      return obj;
    }
  }
  auto cp = std::make_shared<CompiledProfile>();
  Stage cur = Stage::Parse;
  try {
    // One `pipe.<stage>` span per stage boundary: these are what the
    // report's stage-attribution table keys on (see obs/report.hpp).
    frontend::Program prog;
    {
      OBS_SPAN("pipe.parse");
      prog = frontend::parse(spec.source);
      frontend::analyze(prog);
    }
    cur = Stage::Lower;
    {
      OBS_SPAN("pipe.lower");
      cp->module = frontend::lower(prog, spec.module_name);
      ir::verify(cp->module);
      if (!spec.variant.empty()) {
        const transform::Pipeline* pipeline = nullptr;
        for (const transform::Pipeline& p : transform::variant_pipelines()) {
          if (p.name == spec.variant) {
            pipeline = &p;
            break;
          }
        }
        if (!pipeline) {
          throw std::runtime_error("unknown variant pipeline: " + spec.variant);
        }
        transform::run_pipeline(cp->module, *pipeline);
      }
    }
    cur = Stage::Profile;
    {
      obs::ScopedSpan span("pipe.profile");
      cp->prof =
          profiler::profile(cp->module, spec.entry, spec.args, cfg.interp);
      span.arg("dep_edges", cp->prof.dep.edges.size())
          .arg("cus", cp->prof.cus.size());
    }
  } catch (const StageError&) {
    throw;
  } catch (const std::exception& e) {
    throw StageError(cur, e.what());
  }
  if (cache) {
    cache->put_object<CompiledProfile>(keys.profile, cp,
                                       approx_profile_bytes(*cp));
  }
  return cp;
}

ItemFeatures featurize_compiled(const CompiledProfile& cp,
                                const ItemSpec& spec,
                                const PipelineConfig& cfg) {
  Stage cur = Stage::Peg;
  try {
    par::Rng noise_rng(spec.noise_seed);
    // optional<ScopedSpan> because peg outputs (noisy_prof, peg) outlive
    // the stage: close the span by hand where the stage boundary sits.
    std::optional<obs::ScopedSpan> peg_span;
    peg_span.emplace("pipe.peg");
    const profiler::ProfileResult noisy_prof =
        degrade_profile(cp.prof, cfg.dep_noise, noise_rng);
    const graph::Peg peg = graph::build_peg(cp.module, noisy_prof);
    peg_span->arg("nodes", peg.nodes.size())
        .arg("dep_edges", noisy_prof.dep.edges.size());
    peg_span.reset();

    cur = Stage::Featurize;
    obs::ScopedSpan feat_span("pipe.featurize");
    ItemFeatures f;

    // Flatten normalized tokens across functions in arena order — the
    // corpus vocabulary growth order — and collect skip-gram pairs with
    // function-local indices rebased onto the flat list.
    std::unordered_map<const ir::Function*, std::uint32_t> tok_base;
    for (const auto& fn : cp.module.functions) {
      const auto base = static_cast<std::uint32_t>(f.tokens.size());
      tok_base[fn.get()] = base;
      embedding::TokenizedFunction tf = embedding::tokenize_function(*fn);
      for (std::string& t : tf.tokens) f.tokens.push_back(std::move(t));
      for (const auto& [a, b] : tf.pairs) {
        f.context_pairs.emplace_back(base + a, base + b);
      }
    }

    // Per-loop Table I features for every loop in the module (loop nodes
    // of inner loops need them too). Model-visible features come from the
    // degraded profile.
    std::unordered_map<const ir::Function*,
                       std::vector<profiler::LoopFeatures>>
        loop_feats;
    for (const auto& fn : cp.module.functions) {
      auto& v = loop_feats[fn.get()];
      v.reserve(fn->loops.size());
      for (const ir::LoopInfo& l : fn->loops) {
        v.push_back(profiler::compute_loop_features(*fn, l.id, noisy_prof.dep));
      }
    }

    cur = Stage::Walks;
    par::Rng walk_rng(spec.walk_seed);
    cur = Stage::Featurize;

    for (const profiler::LoopSample& ls : cp.prof.loops) {
      const graph::SubPeg sub = graph::extract_sub_peg(peg, ls.fn, ls.loop);
      RawSample s;
      s.n = static_cast<std::uint32_t>(sub.num_nodes());
      for (const graph::PegEdge& e : sub.edges) {
        s.edges.emplace_back(e.src, e.dst);
        if (e.kind == graph::EdgeKind::Hierarchy) {
          s.edge_kinds.push_back(0);
        } else {
          switch (e.dep) {
            case profiler::DepType::RAW: s.edge_kinds.push_back(1); break;
            case profiler::DepType::WAR: s.edge_kinds.push_back(2); break;
            case profiler::DepType::WAW: s.edge_kinds.push_back(3); break;
          }
        }
      }

      s.node_kinds.resize(s.n);
      s.node_token_ix.resize(s.n);
      s.node_dynamic.resize(s.n);
      for (std::uint32_t k = 0; k < s.n; ++k) {
        const graph::PegNode& node = peg.nodes[sub.nodes[k]];
        s.node_kinds[k] = static_cast<std::uint8_t>(node.kind);
        std::vector<std::uint32_t>& node_tokens = s.node_token_ix[k];
        profiler::LoopFeatures dyn;
        if (node.kind == graph::NodeKind::CU) {
          const profiler::CU& cu = peg.cus[node.cu];
          for (const ir::InstrId id : cu.instrs) {
            node_tokens.push_back(tok_base[node.fn] + id);
          }
          if (node.loop != ir::kNoLoop) {
            dyn = loop_feats[node.fn][node.loop];
          }
          // A CU's own cost signal: mean execution count of its members
          // (from the CLEAN profile, like the labels).
          std::uint64_t total = 0;
          for (const ir::InstrId id : cu.instrs) {
            total += cp.prof.dep.exec_count(node.fn, id);
          }
          dyn.exec_times = cu.instrs.empty() ? 0 : total / cu.instrs.size();
        } else if (node.kind == graph::NodeKind::Loop) {
          for (ir::InstrId id = 0; id < node.fn->instrs.size(); ++id) {
            if (profiler::instr_in_loop(*node.fn, id, node.loop)) {
              node_tokens.push_back(tok_base[node.fn] + id);
            }
          }
          dyn = loop_feats[node.fn][node.loop];
          if (k == 0) s.token_seq_ix = node_tokens;  // root loop body
        }
        s.node_dynamic[k] = squash(dyn);
      }

      // Structural view: sample raw anonymized walks per node; vocab ids
      // and distributions are resolved at replay.
      {
        obs::ScopedSpan span("pipe.walks");
        graph::WalkGraph wg(s.n);
        for (const auto& [a, b] : s.edges) wg.add_edge(a, b);
        s.node_walks.resize(s.n);
        for (std::uint32_t k = 0; k < s.n; ++k) {
          s.node_walks[k] = graph::sample_anon_walks(wg, k, cfg.walk, walk_rng);
        }
        span.arg("nodes", s.n);
      }

      // Labels, baselines, provenance. Labels and tool verdicts use the
      // clean profile; the stored hand-crafted features are the degraded
      // ones (what a real profiling run would have produced).
      s.loop_features = squash(loop_feats[ls.fn][ls.loop]);
      s.label =
          analysis::oracle_classify(*ls.fn, ls.loop, cp.prof.dep).parallel ? 1
                                                                           : 0;
      s.pattern_label = static_cast<int>(
          analysis::oracle_pattern(*ls.fn, ls.loop, cp.prof.dep));
      s.tool_autopar = analysis::autopar_classify(*ls.fn, ls.loop).parallel;
      s.tool_pluto = analysis::pluto_classify(*ls.fn, ls.loop).parallel;
      s.tool_discopop =
          analysis::discopop_classify(*ls.fn, ls.loop, cp.prof.dep).parallel;
      s.loop_line = ls.fn->loops[ls.loop].start_line;
      f.samples.push_back(std::move(s));
    }
    feat_span.arg("samples", f.samples.size()).arg("tokens", f.tokens.size());
    return f;
  } catch (const StageError&) {
    throw;
  } catch (const std::exception& e) {
    throw StageError(cur, e.what());
  }
}

ItemFeatures run_item(const ItemSpec& spec, const PipelineConfig& cfg,
                      cache::Cache* cache) {
  const StageKeys keys = stage_keys(spec, cfg);
  if (cache) {
    if (auto blob = cache->get(keys.featurize)) {
      try {
        return deserialize_features(*blob);
      } catch (const std::exception& e) {
        // CRC-valid but undecodable (e.g. written by a different build) —
        // degrade to recompute, never fail the item over a cache entry.
        obs::log_warn("undecodable cache entry; recomputing",
                      {{"key", keys.featurize.hex()}, {"error", e.what()}});
      }
    }
  }
  auto cp = compile_and_profile(spec, cfg, cache);
  ItemFeatures f = featurize_compiled(*cp, spec, cfg);
  if (cache) cache->put(keys.featurize, serialize_features(f));
  return f;
}

}  // namespace mvgnn::pipe
