// Staged per-sample pipeline: typed stages with content-hashed boundaries.
//
// The dataset builder's per-program work decomposes into a fixed stage
// graph:
//
//   Parse -> Lower -> Profile -> Peg -> Walks -> Featurize
//
// (plus the corpus-global Embed stage the data layer runs over all items).
// Every boundary has a content-hash key (cache/key.hpp) chaining the parent
// stage's key with the stage name and the stage's configuration
// fingerprint, so any change to the source text or to a knob that affects a
// stage's output (walk parameters, interpreter fuel/memory caps, dependence
// noise, embedding dims) invalidates exactly the suffix of the pipeline it
// reaches.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace mvgnn::pipe {

enum class Stage : std::uint8_t {
  Parse,      // MiniC source -> AST (+ sema)
  Lower,      // AST -> verified IR, variant transform pipeline applied
  Profile,    // interpret under the dependence recorder
  Peg,        // degraded profile -> Program Execution Graph
  Walks,      // anonymous-walk sampling per sub-PEG node
  Featurize,  // per-loop raw feature assembly (ItemFeatures)
  Embed,      // corpus-global skip-gram training (data layer)
};

[[nodiscard]] const char* stage_name(Stage s);

/// The quarantine bucket a stage failure is reported under — the historic
/// three-phase names the BuildReport (and its tests) use.
[[nodiscard]] const char* quarantine_stage(Stage s);

/// A stage failure carrying which stage threw; build_dataset maps it to the
/// matching quarantine entry instead of aborting.
struct StageError : std::runtime_error {
  StageError(Stage s, const std::string& what)
      : std::runtime_error(what), stage(s) {}
  Stage stage;
};

}  // namespace mvgnn::pipe
