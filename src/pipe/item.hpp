// One pipeline item: a (program, IR-variant) pair flowing through the
// staged pipeline (stage.hpp) into its vocabulary-free feature bundle.
//
// ItemFeatures is deliberately pointer-free and *vocabulary-free*: it
// stores normalized token STRINGS (in the exact order the corpus
// vocabulary grows), skip-gram context pairs as indices into that token
// list, and raw anonymous walks in sample order. The data layer replays
// vocabulary growth, skip-gram training and distribution densification
// over these bundles deterministically, which is what makes the dataset
// bit-identical whether an item came out of the cache or was recomputed.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "graph/anon_walk.hpp"
#include "ir/function.hpp"
#include "pipe/stage.hpp"
#include "profiler/profile.hpp"

namespace mvgnn::pipe {

/// Everything identifying one item's computation: the source text plus the
/// per-item seeds. Content-hash keys are pure functions of this + the
/// PipelineConfig.
struct ItemSpec {
  std::string source;
  std::string module_name;
  std::string entry = "kernel";
  std::vector<profiler::ArgInit> args;
  /// IR-variant transform pipeline name ("" = none); resolved against
  /// transform::variant_pipelines() by name.
  std::string variant;
  std::uint64_t noise_seed = 0;  // dependence-degradation RNG seed
  std::uint64_t walk_seed = 0;   // anonymous-walk RNG seed
};

/// The stage-configuration knobs that participate in key fingerprints.
struct PipelineConfig {
  graph::AwParams walk;
  double dep_noise = 0.08;
  profiler::InterpOptions interp;
};

/// Content-hash key of every stage boundary for one item, chained
/// parent -> child. Changing a knob re-keys exactly the stages downstream
/// of where it enters (e.g. walk.gamma re-keys walks+featurize but leaves
/// parse..peg intact).
struct StageKeys {
  cache::Key parse, lower, profile, peg, walks, featurize;
};

[[nodiscard]] StageKeys stage_keys(const ItemSpec& spec,
                                   const PipelineConfig& cfg);

/// One per-loop sample in raw (vocabulary-free) form. Node token lists and
/// the token sequence are indices into ItemFeatures::tokens.
struct RawSample {
  std::uint32_t n = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  std::vector<std::uint8_t> edge_kinds;  // 0 hierarchy, 1 RAW, 2 WAR, 3 WAW
  std::vector<std::uint8_t> node_kinds;  // graph::NodeKind per node
  std::vector<std::vector<std::uint32_t>> node_token_ix;
  std::vector<std::array<double, 7>> node_dynamic;  // squashed Table I
  /// gamma anonymized walks per node, in sample order (vocab ids are
  /// resolved at replay).
  std::vector<std::vector<graph::AnonWalk>> node_walks;
  std::array<double, 7> loop_features{};  // squashed root-loop Table I
  std::vector<std::uint32_t> token_seq_ix;
  std::int32_t label = 0;
  std::int32_t pattern_label = 0;
  bool tool_autopar = false;
  bool tool_pluto = false;
  bool tool_discopop = false;
  std::int32_t loop_line = 0;
};

/// The Featurize-stage output of one item — the serializable cache payload.
struct ItemFeatures {
  /// Normalized token per instruction, flattened across the module's
  /// functions in arena order — exactly the corpus vocabulary growth order.
  std::vector<std::string> tokens;
  /// Skip-gram context pairs as indices into `tokens`.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> context_pairs;
  std::vector<RawSample> samples;
};

/// Length-prefixed little-endian payload (internal format version + caps on
/// every count; see item.cpp). deserialize throws std::runtime_error on any
/// malformed input — run_item treats that as a miss and recomputes.
[[nodiscard]] std::string serialize_features(const ItemFeatures& f);
[[nodiscard]] ItemFeatures deserialize_features(std::string_view bytes);

/// The Profile-stage output: module + clean profile. Pointer-heavy
/// (ProfileResult references functions inside the module), so it lives in
/// the cache's typed-object tier, never on disk. The module is held by
/// unique_ptr-to-Function internally, so moving the struct keeps every
/// interior pointer valid.
struct CompiledProfile {
  ir::Module module;
  profiler::ProfileResult prof;
};

/// Runs Parse..Profile for `spec`, consulting `cache`'s object tier at the
/// profile key. Throws StageError on failure.
[[nodiscard]] std::shared_ptr<const CompiledProfile> compile_and_profile(
    const ItemSpec& spec, const PipelineConfig& cfg, cache::Cache* cache);

/// Runs Peg..Featurize over an already-profiled item. Throws StageError.
[[nodiscard]] ItemFeatures featurize_compiled(const CompiledProfile& cp,
                                              const ItemSpec& spec,
                                              const PipelineConfig& cfg);

/// The whole item pipeline with caching at the stage boundaries: a blob
/// hit at the featurize key short-circuits everything; otherwise the
/// profile object tier is consulted before recomputing, and the fresh
/// result is stored back. `cache` may be null (always recompute).
/// Throws StageError on any stage failure.
[[nodiscard]] ItemFeatures run_item(const ItemSpec& spec,
                                    const PipelineConfig& cfg,
                                    cache::Cache* cache);

}  // namespace mvgnn::pipe
