// Hand-crafted classifier baselines of Fried et al. (Table III: SVM,
// Decision Tree, AdaBoost), operating on the 7 Table I dynamic features.
// All are from-scratch implementations on double-precision feature rows.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "parallel/rng.hpp"

namespace mvgnn::ml {

using FeatureRow = std::vector<double>;

/// Linear SVM trained by SGD on the hinge loss with L2 regularization.
/// Features are standardized internally (fit on the training data).
class LinearSvm {
 public:
  struct Params {
    double lr = 0.01;
    double l2 = 1e-3;
    std::size_t epochs = 60;
    std::uint64_t seed = 1;
    /// Quadratic feature map (all pairwise products) — a cheap stand-in
    /// for the polynomial kernel the reference SVM baseline uses.
    bool quadratic = true;
  };

  void fit(const std::vector<FeatureRow>& x, const std::vector<int>& y,
           const Params& p);
  void fit(const std::vector<FeatureRow>& x, const std::vector<int>& y) {
    fit(x, y, Params{});
  }
  [[nodiscard]] int predict(const FeatureRow& x) const;
  [[nodiscard]] double decision(const FeatureRow& x) const;

 private:
  [[nodiscard]] FeatureRow expand(const FeatureRow& x) const;

  std::vector<double> w_;
  double b_ = 0.0;
  std::vector<double> mean_, stdev_;
  bool quadratic_ = true;
};

/// CART decision tree with Gini impurity, depth and leaf-size limits.
class DecisionTree {
 public:
  struct Params {
    std::size_t max_depth = 4;
    std::size_t min_leaf = 4;
  };

  void fit(const std::vector<FeatureRow>& x, const std::vector<int>& y,
           const Params& p);
  void fit(const std::vector<FeatureRow>& x, const std::vector<int>& y) {
    fit(x, y, Params{});
  }
  /// Weighted fit (AdaBoost uses per-sample weights).
  void fit_weighted(const std::vector<FeatureRow>& x,
                    const std::vector<int>& y,
                    const std::vector<double>& w, const Params& p);
  [[nodiscard]] int predict(const FeatureRow& x) const;

 private:
  struct Node {
    bool leaf = true;
    int label = 0;
    std::size_t feature = 0;
    double threshold = 0.0;
    std::unique_ptr<Node> left, right;
  };
  std::unique_ptr<Node> root_;

  std::unique_ptr<Node> build(const std::vector<FeatureRow>& x,
                              const std::vector<int>& y,
                              const std::vector<double>& w,
                              const std::vector<std::size_t>& idx,
                              std::size_t depth, const Params& p);
};

/// AdaBoost (SAMME / discrete) over depth-1 decision stumps.
class AdaBoost {
 public:
  struct Params {
    std::size_t rounds = 30;
  };

  void fit(const std::vector<FeatureRow>& x, const std::vector<int>& y,
           const Params& p);
  void fit(const std::vector<FeatureRow>& x, const std::vector<int>& y) {
    fit(x, y, Params{});
  }
  [[nodiscard]] int predict(const FeatureRow& x) const;

 private:
  std::vector<DecisionTree> stumps_;
  std::vector<double> alphas_;
};

/// Convenience: accuracy of `predict` over (x, y).
template <typename Model>
double accuracy(const Model& m, const std::vector<FeatureRow>& x,
                const std::vector<int>& y) {
  if (x.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    correct += (m.predict(x[i]) == y[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(x.size());
}

}  // namespace mvgnn::ml
