#include "ml/classic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mvgnn::ml {

// ---------------------------------------------------------------------------
// LinearSvm
// ---------------------------------------------------------------------------

FeatureRow LinearSvm::expand(const FeatureRow& x) const {
  if (!quadratic_) return x;
  FeatureRow out = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = i; j < x.size(); ++j) {
      out.push_back(x[i] * x[j]);
    }
  }
  return out;
}

void LinearSvm::fit(const std::vector<FeatureRow>& raw_x,
                    const std::vector<int>& y, const Params& p) {
  quadratic_ = p.quadratic;
  std::vector<FeatureRow> x;
  x.reserve(raw_x.size());
  for (const FeatureRow& r : raw_x) x.push_back(expand(r));
  const std::size_t d = x.empty() ? 0 : x[0].size();
  mean_.assign(d, 0.0);
  stdev_.assign(d, 1.0);
  for (const FeatureRow& row : x) {
    for (std::size_t k = 0; k < d; ++k) mean_[k] += row[k];
  }
  for (double& m : mean_) m /= std::max<std::size_t>(1, x.size());
  for (const FeatureRow& row : x) {
    for (std::size_t k = 0; k < d; ++k) {
      const double c = row[k] - mean_[k];
      stdev_[k] += c * c;
    }
  }
  for (double& s : stdev_) {
    s = std::sqrt(s / std::max<std::size_t>(1, x.size()));
    if (s < 1e-9) s = 1.0;
  }

  w_.assign(d, 0.0);
  b_ = 0.0;
  par::Rng rng(p.seed);
  std::vector<std::size_t> order(x.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t epoch = 0; epoch < p.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    const double lr = p.lr / (1.0 + 0.1 * static_cast<double>(epoch));
    for (const std::size_t i : order) {
      const double target = y[i] ? 1.0 : -1.0;
      double score = b_;
      for (std::size_t k = 0; k < d; ++k) {
        score += w_[k] * (x[i][k] - mean_[k]) / stdev_[k];
      }
      // L2 shrink + hinge subgradient.
      for (std::size_t k = 0; k < d; ++k) w_[k] *= (1.0 - lr * p.l2);
      if (target * score < 1.0) {
        for (std::size_t k = 0; k < d; ++k) {
          w_[k] += lr * target * (x[i][k] - mean_[k]) / stdev_[k];
        }
        b_ += lr * target;
      }
    }
  }
}

double LinearSvm::decision(const FeatureRow& raw_x) const {
  const FeatureRow x = expand(raw_x);
  double score = b_;
  for (std::size_t k = 0; k < w_.size(); ++k) {
    score += w_[k] * (x[k] - mean_[k]) / stdev_[k];
  }
  return score;
}

int LinearSvm::predict(const FeatureRow& x) const {
  return decision(x) >= 0.0 ? 1 : 0;
}

// ---------------------------------------------------------------------------
// DecisionTree
// ---------------------------------------------------------------------------

namespace {

/// Weighted majority label over idx.
int majority(const std::vector<int>& y, const std::vector<double>& w,
             const std::vector<std::size_t>& idx) {
  double pos = 0.0, neg = 0.0;
  for (const std::size_t i : idx) {
    (y[i] ? pos : neg) += w[i];
  }
  return pos >= neg ? 1 : 0;
}

double gini(double pos, double total) {
  if (total <= 0.0) return 0.0;
  const double p = pos / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

void DecisionTree::fit(const std::vector<FeatureRow>& x,
                       const std::vector<int>& y, const Params& p) {
  fit_weighted(x, y, std::vector<double>(x.size(), 1.0), p);
}

void DecisionTree::fit_weighted(const std::vector<FeatureRow>& x,
                                const std::vector<int>& y,
                                const std::vector<double>& w,
                                const Params& p) {
  std::vector<std::size_t> idx(x.size());
  std::iota(idx.begin(), idx.end(), 0);
  root_ = build(x, y, w, idx, 0, p);
}

std::unique_ptr<DecisionTree::Node> DecisionTree::build(
    const std::vector<FeatureRow>& x, const std::vector<int>& y,
    const std::vector<double>& w, const std::vector<std::size_t>& idx,
    std::size_t depth, const Params& p) {
  auto node = std::make_unique<Node>();
  node->label = majority(y, w, idx);

  if (depth >= p.max_depth || idx.size() <= p.min_leaf) return node;
  bool pure = true;
  for (const std::size_t i : idx) {
    if (y[i] != y[idx[0]]) {
      pure = false;
      break;
    }
  }
  if (pure) return node;

  const std::size_t d = x[idx[0]].size();
  double best_gain = 1e-12;
  std::size_t best_f = 0;
  double best_t = 0.0;

  double total_w = 0.0, total_pos = 0.0;
  for (const std::size_t i : idx) {
    total_w += w[i];
    if (y[i]) total_pos += w[i];
  }
  const double parent = gini(total_pos, total_w);

  std::vector<std::size_t> sorted = idx;
  for (std::size_t f = 0; f < d; ++f) {
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) { return x[a][f] < x[b][f]; });
    double left_w = 0.0, left_pos = 0.0;
    for (std::size_t s = 0; s + 1 < sorted.size(); ++s) {
      const std::size_t i = sorted[s];
      left_w += w[i];
      if (y[i]) left_pos += w[i];
      if (x[sorted[s]][f] == x[sorted[s + 1]][f]) continue;  // no split here
      const double right_w = total_w - left_w;
      const double right_pos = total_pos - left_pos;
      const double gain =
          parent - (left_w / total_w) * gini(left_pos, left_w) -
          (right_w / total_w) * gini(right_pos, right_w);
      if (gain > best_gain) {
        best_gain = gain;
        best_f = f;
        best_t = 0.5 * (x[sorted[s]][f] + x[sorted[s + 1]][f]);
      }
    }
  }
  if (best_gain <= 1e-12) return node;

  std::vector<std::size_t> left, right;
  for (const std::size_t i : idx) {
    (x[i][best_f] <= best_t ? left : right).push_back(i);
  }
  if (left.empty() || right.empty()) return node;

  node->leaf = false;
  node->feature = best_f;
  node->threshold = best_t;
  node->left = build(x, y, w, left, depth + 1, p);
  node->right = build(x, y, w, right, depth + 1, p);
  return node;
}

int DecisionTree::predict(const FeatureRow& x) const {
  const Node* n = root_.get();
  while (n && !n->leaf) {
    n = (x[n->feature] <= n->threshold) ? n->left.get() : n->right.get();
  }
  return n ? n->label : 0;
}

// ---------------------------------------------------------------------------
// AdaBoost
// ---------------------------------------------------------------------------

void AdaBoost::fit(const std::vector<FeatureRow>& x, const std::vector<int>& y,
                   const Params& p) {
  stumps_.clear();
  alphas_.clear();
  std::vector<double> w(x.size(), 1.0 / std::max<std::size_t>(1, x.size()));
  DecisionTree::Params stump_params;
  stump_params.max_depth = 1;
  stump_params.min_leaf = 1;

  for (std::size_t t = 0; t < p.rounds; ++t) {
    DecisionTree stump;
    stump.fit_weighted(x, y, w, stump_params);
    double err = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (stump.predict(x[i]) != y[i]) err += w[i];
    }
    err = std::clamp(err, 1e-10, 1.0 - 1e-10);
    if (err >= 0.5) break;  // weak learner no better than chance
    const double alpha = 0.5 * std::log((1.0 - err) / err);
    double norm = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double agree = (stump.predict(x[i]) == y[i]) ? 1.0 : -1.0;
      w[i] *= std::exp(-alpha * agree);
      norm += w[i];
    }
    for (double& wi : w) wi /= norm;
    stumps_.push_back(std::move(stump));
    alphas_.push_back(alpha);
  }
}

int AdaBoost::predict(const FeatureRow& x) const {
  double score = 0.0;
  for (std::size_t t = 0; t < stumps_.size(); ++t) {
    score += alphas_[t] * (stumps_[t].predict(x) ? 1.0 : -1.0);
  }
  return score >= 0.0 ? 1 : 0;
}

}  // namespace mvgnn::ml
