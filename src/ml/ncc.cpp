#include "ml/ncc.hpp"

#include <algorithm>

namespace mvgnn::ml {

using ag::Tensor;

Ncc::Ncc(const NccConfig& cfg, std::size_t embed_dim, par::Rng& rng)
    : cfg_(cfg),
      lstm1_(embed_dim, cfg.lstm_units, rng),
      lstm2_(cfg.lstm_units, cfg.lstm_units, rng),
      dense_(cfg.lstm_units, cfg.dense, rng),
      head_(cfg.dense, cfg.num_classes, rng) {}

Tensor Ncc::forward(const Tensor& seq) const {
  const Tensor h1 = lstm1_.forward(seq);
  const Tensor h2 = lstm2_.forward(h1);
  // Last hidden state is the sequence representation.
  const Tensor last = ag::slice_rows(h2, h2.rows() - 1, h2.rows());
  return head_.forward(ag::relu(dense_.forward(last)));
}

std::vector<Tensor> Ncc::parameters() const {
  std::vector<Tensor> ps = lstm1_.parameters();
  for (const auto& p : lstm2_.parameters()) ps.push_back(p);
  for (const auto& p : dense_.parameters()) ps.push_back(p);
  for (const auto& p : head_.parameters()) ps.push_back(p);
  return ps;
}

NccTrainer::NccTrainer(const data::Dataset& ds, const NccConfig& cfg,
                       const NccTrainConfig& tc)
    : ds_(&ds), tc_(tc), rng_(tc.seed) {
  par::Rng init(tc.seed ^ 0x33334444ULL);
  model_ = std::make_unique<Ncc>(cfg, ds.inst2vec.dim(), init);
}

Tensor NccTrainer::sequence_of(std::size_t i) const {
  const auto& seq = ds_->samples[i].token_seq;
  const std::size_t t =
      std::max<std::size_t>(1, std::min(seq.size(), model_->config().max_seq));
  const std::size_t dim = ds_->inst2vec.dim();
  std::vector<float> buf(t * dim, 0.0f);
  for (std::size_t s = 0; s < t && s < seq.size(); ++s) {
    const auto row = ds_->inst2vec.row(
        std::min(seq[s], ds_->inst2vec.vocab_size() - 1));
    std::copy(row.begin(), row.end(), buf.data() + s * dim);
  }
  return Tensor::from_data({t, dim}, std::move(buf));
}

void NccTrainer::fit(const std::vector<std::size_t>& train_idx) {
  ag::Adam opt(tc_.lr);
  opt.add_params(model_->parameters());
  std::vector<std::size_t> order = train_idx;
  for (std::size_t epoch = 0; epoch < tc_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng_.engine());
    for (const std::size_t i : order) {
      Tensor logits = model_->forward(sequence_of(i));
      Tensor loss =
          ag::cross_entropy_logits(logits, {ds_->samples[i].label});
      opt.zero_grad();
      loss.backward();
      opt.clip_gradients(2.0f);
      opt.step();
    }
  }
}

int NccTrainer::predict(std::size_t i) const {
  const Tensor logits = model_->forward(sequence_of(i));
  return logits.at(0, 1) > logits.at(0, 0) ? 1 : 0;
}

double NccTrainer::accuracy(const std::vector<std::size_t>& idx) const {
  if (idx.empty()) return 0.0;
  std::size_t correct = 0;
  for (const std::size_t i : idx) {
    correct += (predict(i) == ds_->samples[i].label);
  }
  return static_cast<double>(correct) / static_cast<double>(idx.size());
}

}  // namespace mvgnn::ml
