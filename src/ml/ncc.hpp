// Neural Code Comprehension (Ben-Nun et al.) baseline: inst2vec token
// embeddings of the loop body pushed through two stacked LSTMs and a small
// dense layer (paper section IV-C: "dense layer size of 16").
#pragma once

#include "data/dataset.hpp"
#include "nn/layers.hpp"
#include "tensor/optim.hpp"

namespace mvgnn::ml {

struct NccConfig {
  std::size_t lstm_units = 32;  // paper: 200 per layer, scaled down
  std::size_t dense = 16;
  std::size_t max_seq = 48;     // token sequence truncation
  std::size_t num_classes = 2;
};

class Ncc final : public nn::Module {
 public:
  Ncc(const NccConfig& cfg, std::size_t embed_dim, par::Rng& rng);

  /// `seq` is [T, embed_dim]; returns [1, classes].
  [[nodiscard]] ag::Tensor forward(const ag::Tensor& seq) const;
  [[nodiscard]] std::vector<ag::Tensor> parameters() const override;
  [[nodiscard]] const NccConfig& config() const { return cfg_; }

 private:
  NccConfig cfg_;
  nn::Lstm lstm1_, lstm2_;
  nn::Linear dense_, head_;
};

struct NccTrainConfig {
  std::size_t epochs = 15;
  float lr = 1e-3f;
  std::uint64_t seed = 3;
};

/// Trains and evaluates NCC on dataset token sequences.
class NccTrainer {
 public:
  NccTrainer(const data::Dataset& ds, const NccConfig& cfg,
             const NccTrainConfig& tc);

  void fit(const std::vector<std::size_t>& train_idx);
  [[nodiscard]] int predict(std::size_t sample_index) const;
  [[nodiscard]] double accuracy(const std::vector<std::size_t>& idx) const;

 private:
  [[nodiscard]] ag::Tensor sequence_of(std::size_t sample_index) const;

  const data::Dataset* ds_;
  NccTrainConfig tc_;
  std::unique_ptr<Ncc> model_;
  mutable par::Rng rng_;
};

}  // namespace mvgnn::ml
