// Anonymous-walk structural embeddings (paper section III-C, after Ivanov &
// Burnaev and GraLSP).
//
// A random walk (v1..vn) is anonymized by replacing each node with the index
// of its first occurrence: (a,b,c,b) -> (0,1,2,1). For each node we sample
// gamma walks of length l and form the empirical distribution over anonymous
// walk types; the distribution is the node's structural-view input feature,
// which the model multiplies with a learned AW embedding table (eq. 3/4).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "parallel/rng.hpp"

namespace mvgnn::graph {

/// An anonymized walk: first-occurrence indices, length = walk length.
using AnonWalk = std::vector<std::uint8_t>;

/// Global dictionary of observed anonymous-walk types. Grown while building
/// the training set, then frozen; unseen types at inference map to the
/// catch-all slot 0.
class AwVocab {
 public:
  /// Id of `walk`, inserting it when `grow` and not yet frozen. Returns 0
  /// (the unknown slot) for unseen walks otherwise.
  std::uint32_t id_of(const AnonWalk& walk, bool grow);

  void freeze() { frozen_ = true; }
  [[nodiscard]] bool frozen() const { return frozen_; }
  /// Number of slots including the unknown slot 0.
  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(ids_.size()) + 1;
  }

  /// Serialization access.
  [[nodiscard]] const std::map<AnonWalk, std::uint32_t>& map() const {
    return ids_;
  }
  void restore(std::map<AnonWalk, std::uint32_t> ids, bool frozen) {
    ids_ = std::move(ids);
    frozen_ = frozen;
  }

 private:
  std::map<AnonWalk, std::uint32_t> ids_;
  bool frozen_ = false;
};

/// Undirected adjacency list (the walk graph); node count fixed at build.
class WalkGraph {
 public:
  explicit WalkGraph(std::size_t n) : adj_(n) {}

  void add_edge(std::uint32_t a, std::uint32_t b) {
    if (a == b) {
      adj_[a].push_back(a);  // self-loop contributes one neighbour slot
      return;
    }
    adj_[a].push_back(b);
    adj_[b].push_back(a);
  }

  [[nodiscard]] std::size_t num_nodes() const { return adj_.size(); }
  [[nodiscard]] const std::vector<std::uint32_t>& neighbours(
      std::uint32_t v) const {
    return adj_[v];
  }

 private:
  std::vector<std::vector<std::uint32_t>> adj_;
};

/// Anonymizes one concrete walk.
[[nodiscard]] AnonWalk anonymize(const std::vector<std::uint32_t>& walk);

struct AwParams {
  std::uint32_t gamma = 40;  // walks sampled per node
  std::uint32_t length = 5;  // walk length (number of nodes)
};

/// Samples gamma walks from `start` and returns them anonymized, in sample
/// order. This is the vocabulary-free half of node_aw_distribution() — the
/// staged pipeline (src/pipe) caches these and resolves vocab ids at
/// replay. Consumes exactly the same RNG draws as node_aw_distribution().
[[nodiscard]] std::vector<AnonWalk> sample_anon_walks(const WalkGraph& g,
                                                      std::uint32_t start,
                                                      const AwParams& params,
                                                      par::Rng& rng);

/// Resolves `walks` against `vocab` in order (growing it when `grow`) and
/// forms the empirical distribution (eq. 3), a dense vector of size
/// `vocab.size()` summing to 1.
[[nodiscard]] std::vector<float> aw_distribution(
    const std::vector<AnonWalk>& walks, AwVocab& vocab, bool grow);

/// Samples gamma anonymous walks from `start` and returns the empirical
/// distribution over vocab slots (eq. 3), a dense vector of size
/// `vocab.size()` summing to 1 (or the all-unknown distribution for an
/// isolated node).
[[nodiscard]] std::vector<float> node_aw_distribution(const WalkGraph& g,
                                                      std::uint32_t start,
                                                      const AwParams& params,
                                                      AwVocab& vocab, bool grow,
                                                      par::Rng& rng);

/// Mean distribution over all nodes (eq. 4).
[[nodiscard]] std::vector<float> graph_aw_distribution(
    const WalkGraph& g, const AwParams& params, AwVocab& vocab, bool grow,
    par::Rng& rng);

}  // namespace mvgnn::graph
