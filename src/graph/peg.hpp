// Program Execution Graph (PEG), the paper's section III-A representation.
//
// Vertices are CUs, loops, or functions; edges are data dependences between
// CUs (RAW/WAR/WAW, from the dynamic profile) plus hierarchy edges linking
// functions to their loops/CUs and loops to their children. Every `for`
// loop induces a sub-PEG (the loop node plus everything nested inside it),
// which is one classification sample.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "profiler/profile.hpp"

namespace mvgnn::graph {

enum class NodeKind : std::uint8_t { CU, Loop, Function };
enum class EdgeKind : std::uint8_t { Dep, Hierarchy };

struct PegNode {
  NodeKind kind = NodeKind::CU;
  const ir::Function* fn = nullptr;
  std::uint32_t cu = 0;                 // index into Peg::cus (Kind::CU)
  ir::LoopId loop = ir::kNoLoop;        // Kind::Loop
  int start_line = 0;                   // <ID, START, END> triple: the node
  int end_line = 0;                     //   id is its index in Peg::nodes
};

struct PegEdge {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  EdgeKind kind = EdgeKind::Dep;
  profiler::DepType dep = profiler::DepType::RAW;  // Kind::Dep only
  std::uint64_t count = 0;  // dynamic occurrences (Dep) or 1 (Hierarchy)
};

struct Peg {
  std::vector<PegNode> nodes;
  std::vector<PegEdge> edges;
  std::vector<profiler::CU> cus;  // copied from the profile

  [[nodiscard]] std::size_t num_nodes() const { return nodes.size(); }
};

/// Builds the whole-program PEG from a profile. Dependence edges connect the
/// CUs containing the endpoint instructions (self-edges on one CU are kept —
/// they encode reduction-style read-modify-write patterns).
[[nodiscard]] Peg build_peg(const ir::Module& m,
                            const profiler::ProfileResult& profile);

/// The sub-PEG rooted at one loop: `nodes[i]` indexes into the parent PEG,
/// `edges` are pairs of *local* indices. nodes[0] is the loop node itself.
struct SubPeg {
  std::uint32_t root = 0;  // PEG node id of the loop
  std::vector<std::uint32_t> nodes;
  std::vector<PegEdge> edges;  // src/dst are local indices

  [[nodiscard]] std::size_t num_nodes() const { return nodes.size(); }
};

/// Extracts the sub-PEG of loop `l` in `fn`. Contains the loop node, all
/// loops/CUs nested inside it, and the induced edges.
[[nodiscard]] SubPeg extract_sub_peg(const Peg& peg, const ir::Function* fn,
                                     ir::LoopId l);

/// Graphviz DOT rendering (paper Fig. 5 visualization).
[[nodiscard]] std::string to_dot(const Peg& peg, const std::string& title);
[[nodiscard]] std::string to_dot(const Peg& peg, const SubPeg& sub,
                                 const std::string& title);

}  // namespace mvgnn::graph
