#include "graph/anon_walk.hpp"

#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mvgnn::graph {

namespace {

obs::Counter& walks_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("anon_walk.walks_total");
  return c;
}

}  // namespace

std::uint32_t AwVocab::id_of(const AnonWalk& walk, bool grow) {
  const auto it = ids_.find(walk);
  if (it != ids_.end()) return it->second;
  if (!grow || frozen_) return 0;
  const std::uint32_t id = static_cast<std::uint32_t>(ids_.size()) + 1;
  ids_.emplace(walk, id);
  return id;
}

AnonWalk anonymize(const std::vector<std::uint32_t>& walk) {
  AnonWalk out;
  out.reserve(walk.size());
  std::vector<std::uint32_t> seen;
  for (const std::uint32_t v : walk) {
    std::uint8_t idx = 0;
    bool found = false;
    for (std::size_t i = 0; i < seen.size(); ++i) {
      if (seen[i] == v) {
        idx = static_cast<std::uint8_t>(i);
        found = true;
        break;
      }
    }
    if (!found) {
      idx = static_cast<std::uint8_t>(seen.size());
      seen.push_back(v);
    }
    out.push_back(idx);
  }
  return out;
}

std::vector<AnonWalk> sample_anon_walks(const WalkGraph& g, std::uint32_t start,
                                        const AwParams& params, par::Rng& rng) {
  std::vector<AnonWalk> out;
  out.reserve(params.gamma);
  std::vector<std::uint32_t> walk;
  for (std::uint32_t w = 0; w < params.gamma; ++w) {
    walk.clear();
    walk.push_back(start);
    std::uint32_t cur = start;
    for (std::uint32_t step = 1; step < params.length; ++step) {
      const auto& nb = g.neighbours(cur);
      if (nb.empty()) break;  // dead end: shorter walk, still anonymized
      cur = nb[rng.uniform_u64(nb.size())];
      walk.push_back(cur);
    }
    out.push_back(anonymize(walk));
  }
  walks_counter().add(params.gamma);
  return out;
}

std::vector<float> aw_distribution(const std::vector<AnonWalk>& walks,
                                   AwVocab& vocab, bool grow) {
  // First pass: resolve ids (this may grow the vocab, so the dense vector
  // is sized afterwards).
  std::vector<std::uint32_t> ids;
  ids.reserve(walks.size());
  for (const AnonWalk& w : walks) ids.push_back(vocab.id_of(w, grow));
  std::vector<float> dist(vocab.size(), 0.0f);
  if (walks.empty()) return dist;
  const float inv = 1.0f / static_cast<float>(walks.size());
  for (const std::uint32_t id : ids) dist[id] += inv;
  return dist;
}

std::vector<float> node_aw_distribution(const WalkGraph& g, std::uint32_t start,
                                        const AwParams& params, AwVocab& vocab,
                                        bool grow, par::Rng& rng) {
  return aw_distribution(sample_anon_walks(g, start, params, rng), vocab, grow);
}

std::vector<float> graph_aw_distribution(const WalkGraph& g,
                                         const AwParams& params, AwVocab& vocab,
                                         bool grow, par::Rng& rng) {
  OBS_SPAN("anon_walk.graph_dist");
  // Two passes for the same sizing reason as above.
  std::vector<std::vector<float>> per_node;
  per_node.reserve(g.num_nodes());
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    per_node.push_back(node_aw_distribution(g, v, params, vocab, grow, rng));
  }
  std::vector<float> mean(vocab.size(), 0.0f);
  if (per_node.empty()) return mean;
  const float inv = 1.0f / static_cast<float>(per_node.size());
  for (const auto& d : per_node) {
    for (std::size_t i = 0; i < d.size(); ++i) mean[i] += d[i] * inv;
  }
  return mean;
}

}  // namespace mvgnn::graph
