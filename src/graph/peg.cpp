#include "graph/peg.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mvgnn::graph {

namespace {

using profiler::CU;
using profiler::DepType;

struct LoopKey {
  const ir::Function* fn;
  ir::LoopId loop;
  friend bool operator==(const LoopKey&, const LoopKey&) = default;
};
struct LoopKeyHash {
  std::size_t operator()(const LoopKey& k) const {
    return std::hash<const void*>()(k.fn) * 31 ^ k.loop;
  }
};

}  // namespace

Peg build_peg(const ir::Module& m, const profiler::ProfileResult& profile) {
  OBS_SPAN("peg.build");
  Peg peg;
  peg.cus = profile.cus;

  std::unordered_map<const ir::Function*, std::uint32_t> fn_node;
  std::unordered_map<LoopKey, std::uint32_t, LoopKeyHash> loop_node;
  std::vector<std::uint32_t> cu_node(peg.cus.size());

  // Function nodes.
  for (const auto& fn : m.functions) {
    PegNode n;
    n.kind = NodeKind::Function;
    n.fn = fn.get();
    int lo = 0, hi = 0;
    for (const ir::Instruction& in : fn->instrs) {
      if (!in.loc.valid()) continue;
      if (lo == 0 || in.loc.line < lo) lo = in.loc.line;
      hi = std::max(hi, in.loc.line);
    }
    n.start_line = lo;
    n.end_line = hi;
    fn_node[fn.get()] = static_cast<std::uint32_t>(peg.nodes.size());
    peg.nodes.push_back(n);
  }

  // Loop nodes.
  for (const auto& fn : m.functions) {
    for (const ir::LoopInfo& l : fn->loops) {
      PegNode n;
      n.kind = NodeKind::Loop;
      n.fn = fn.get();
      n.loop = l.id;
      n.start_line = l.start_line;
      n.end_line = l.end_line;
      loop_node[LoopKey{fn.get(), l.id}] =
          static_cast<std::uint32_t>(peg.nodes.size());
      peg.nodes.push_back(n);
    }
  }

  // CU nodes.
  for (std::uint32_t i = 0; i < peg.cus.size(); ++i) {
    const CU& cu = peg.cus[i];
    PegNode n;
    n.kind = NodeKind::CU;
    n.fn = cu.fn;
    n.cu = i;
    n.loop = cu.loop;
    n.start_line = cu.start_line;
    n.end_line = cu.end_line;
    cu_node[i] = static_cast<std::uint32_t>(peg.nodes.size());
    peg.nodes.push_back(n);
  }

  // Hierarchy edges: function -> top-level loops and CUs; loop -> children.
  auto hierarchy = [&peg](std::uint32_t parent, std::uint32_t child) {
    PegEdge e;
    e.src = parent;
    e.dst = child;
    e.kind = EdgeKind::Hierarchy;
    e.count = 1;
    peg.edges.push_back(e);
  };
  for (const auto& fn : m.functions) {
    for (const ir::LoopInfo& l : fn->loops) {
      const std::uint32_t child = loop_node.at(LoopKey{fn.get(), l.id});
      if (l.parent == ir::kNoLoop) {
        hierarchy(fn_node.at(fn.get()), child);
      } else {
        hierarchy(loop_node.at(LoopKey{fn.get(), l.parent}), child);
      }
    }
  }
  for (std::uint32_t i = 0; i < peg.cus.size(); ++i) {
    const CU& cu = peg.cus[i];
    if (cu.loop == ir::kNoLoop) {
      hierarchy(fn_node.at(cu.fn), cu_node[i]);
    } else {
      hierarchy(loop_node.at(LoopKey{cu.fn, cu.loop}), cu_node[i]);
    }
  }

  // Dependence edges between CUs. Aggregate multiple instruction-level deps
  // between the same CU pair (same type) into one edge with summed counts.
  std::unordered_map<const ir::Function*, std::unordered_map<ir::InstrId, std::uint32_t>>
      instr_cu;
  for (std::uint32_t i = 0; i < peg.cus.size(); ++i) {
    for (const ir::InstrId id : peg.cus[i].instrs) {
      instr_cu[peg.cus[i].fn][id] = cu_node[i];
    }
  }
  std::map<std::tuple<std::uint32_t, std::uint32_t, int>, std::uint64_t> agg;
  for (const profiler::DepEdge& d : profile.dep.edges) {
    const auto fs = instr_cu.find(d.src.fn);
    const auto fd = instr_cu.find(d.dst.fn);
    if (fs == instr_cu.end() || fd == instr_cu.end()) continue;
    const auto is = fs->second.find(d.src.id);
    const auto idd = fd->second.find(d.dst.id);
    if (is == fs->second.end() || idd == fd->second.end()) continue;
    agg[{is->second, idd->second, static_cast<int>(d.type)}] += d.total_count;
  }
  for (const auto& [key, count] : agg) {
    PegEdge e;
    e.src = std::get<0>(key);
    e.dst = std::get<1>(key);
    e.kind = EdgeKind::Dep;
    e.dep = static_cast<DepType>(std::get<2>(key));
    e.count = count;
    peg.edges.push_back(e);
  }

  struct PegMetrics {
    obs::Counter& builds = obs::Registry::global().counter("peg.builds_total");
    obs::Counter& nodes = obs::Registry::global().counter("peg.nodes_total");
    obs::Counter& edges = obs::Registry::global().counter("peg.edges_total");
  };
  static PegMetrics metrics;
  metrics.builds.add(1);
  metrics.nodes.add(peg.nodes.size());
  metrics.edges.add(peg.edges.size());
  return peg;
}

SubPeg extract_sub_peg(const Peg& peg, const ir::Function* fn, ir::LoopId l) {
  SubPeg sub;
  for (std::uint32_t i = 0; i < peg.nodes.size(); ++i) {
    const PegNode& n = peg.nodes[i];
    if (n.fn != fn) continue;
    bool inside = false;
    if (n.kind == NodeKind::Loop) {
      inside = profiler::loop_contains(*fn, l, n.loop);
      if (n.loop == l) sub.root = i;
    } else if (n.kind == NodeKind::CU) {
      inside = n.loop != ir::kNoLoop && profiler::loop_contains(*fn, l, n.loop);
    }
    if (inside) sub.nodes.push_back(i);
  }
  // Root loop first so downstream consumers can identify it.
  for (std::size_t k = 0; k < sub.nodes.size(); ++k) {
    if (sub.nodes[k] == sub.root) {
      std::swap(sub.nodes[0], sub.nodes[k]);
      break;
    }
  }
  std::unordered_map<std::uint32_t, std::uint32_t> local;
  for (std::uint32_t k = 0; k < sub.nodes.size(); ++k) local[sub.nodes[k]] = k;
  for (const PegEdge& e : peg.edges) {
    const auto a = local.find(e.src);
    const auto b = local.find(e.dst);
    if (a == local.end() || b == local.end()) continue;
    PegEdge le = e;
    le.src = a->second;
    le.dst = b->second;
    sub.edges.push_back(le);
  }
  return sub;
}

namespace {

std::string node_label(const Peg& peg, std::uint32_t id) {
  const PegNode& n = peg.nodes[id];
  std::ostringstream os;
  switch (n.kind) {
    case NodeKind::Function:
      os << "fn " << (n.fn ? n.fn->name : "?");
      break;
    case NodeKind::Loop:
      os << "loop L" << n.loop << "\\n" << n.start_line << ":" << n.end_line;
      break;
    case NodeKind::CU:
      os << "CU" << n.cu << "\\n" << n.start_line << ":" << n.end_line;
      break;
  }
  return os.str();
}

const char* edge_color(const PegEdge& e) {
  if (e.kind == EdgeKind::Hierarchy) return "gray";
  switch (e.dep) {
    case DepType::RAW: return "red";
    case DepType::WAR: return "blue";
    case DepType::WAW: return "orange";
  }
  return "black";
}

}  // namespace

std::string to_dot(const Peg& peg, const std::string& title) {
  std::ostringstream os;
  os << "digraph \"" << title << "\" {\n  node [shape=box,fontsize=10];\n";
  for (std::uint32_t i = 0; i < peg.nodes.size(); ++i) {
    os << "  n" << i << " [label=\"" << node_label(peg, i) << "\"];\n";
  }
  for (const PegEdge& e : peg.edges) {
    os << "  n" << e.src << " -> n" << e.dst << " [color=" << edge_color(e);
    if (e.kind == EdgeKind::Dep) {
      os << ",label=\"" << profiler::dep_name(e.dep) << " x" << e.count << "\"";
    }
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const Peg& peg, const SubPeg& sub, const std::string& title) {
  std::ostringstream os;
  os << "digraph \"" << title << "\" {\n  node [shape=box,fontsize=10];\n";
  for (std::uint32_t i = 0; i < sub.nodes.size(); ++i) {
    os << "  n" << i << " [label=\"" << node_label(peg, sub.nodes[i]) << "\""
       << (i == 0 ? ",style=bold,color=red" : "") << "];\n";
  }
  for (const PegEdge& e : sub.edges) {
    os << "  n" << e.src << " -> n" << e.dst << " [color=" << edge_color(e);
    if (e.kind == EdgeKind::Dep) {
      os << ",label=\"" << profiler::dep_name(e.dep) << "\"";
    }
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace mvgnn::graph
