// Append-only instruction builder used by the frontend's lowering pass and
// by tests that construct IR by hand.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <vector>

#include "ir/function.hpp"

namespace mvgnn::ir {

class IrBuilder {
 public:
  explicit IrBuilder(Function& fn) : fn_(fn) {}

  /// Creates an (initially empty) block and returns its id. Does not move the
  /// insertion point.
  BlockId new_block(std::string label = {}) {
    BasicBlock bb;
    bb.id = static_cast<BlockId>(fn_.blocks.size());
    bb.label = std::move(label);
    fn_.blocks.push_back(std::move(bb));
    return fn_.blocks.back().id;
  }

  void set_insert(BlockId b) {
    assert(b < fn_.blocks.size());
    cur_ = b;
  }

  [[nodiscard]] BlockId insert_block() const { return cur_; }

  /// True if the current block already ends in a terminator (further emission
  /// into it would be invalid; lowering uses this to skip dead code).
  [[nodiscard]] bool block_terminated() const {
    const auto& instrs = fn_.blocks[cur_].instrs;
    return !instrs.empty() && fn_.instr(instrs.back()).is_terminator();
  }

  /// Core emission: appends an instruction to the current block and returns
  /// its register value.
  Value emit(Opcode op, TypeKind type, std::vector<Value> operands,
             SourceLoc loc = {}, std::string name = {},
             std::string callee = {}) {
    const InstrId id = emit_id(op, type, std::move(operands), loc,
                               std::move(name), std::move(callee));
    return Value::reg_of(id);
  }

  /// Same as emit() but returns the raw instruction id (needed for Alloca
  /// slots, which are referenced by id in LoopInfo).
  InstrId emit_id(Opcode op, TypeKind type, std::vector<Value> operands,
                  SourceLoc loc = {}, std::string name = {},
                  std::string callee = {}) {
    assert(cur_ != kNoBlock && "no insertion block set");
    assert(!block_terminated() && "emission after terminator");
    Instruction in;
    in.op = op;
    in.type = type;
    in.operands = std::move(operands);
    in.loc = loc;
    in.name = std::move(name);
    in.callee = std::move(callee);
    in.loop = cur_loop_;
    const InstrId id = static_cast<InstrId>(fn_.instrs.size());
    fn_.instrs.push_back(std::move(in));
    fn_.blocks[cur_].instrs.push_back(id);
    return id;
  }

  // ---- Convenience wrappers -------------------------------------------

  Value binop(Opcode op, TypeKind type, Value a, Value b, SourceLoc loc = {}) {
    return emit(op, type, {a, b}, loc);
  }
  InstrId alloca_scalar(TypeKind type, std::string name, SourceLoc loc = {}) {
    return emit_id(Opcode::Alloca, type, {}, loc, std::move(name));
  }
  InstrId alloca_array(TypeKind arr_type, Value size, std::string name,
                       SourceLoc loc = {}) {
    return emit_id(Opcode::AllocArr, arr_type, {size}, loc, std::move(name));
  }
  Value load(TypeKind type, InstrId slot, SourceLoc loc = {}) {
    return emit(Opcode::Load, type, {Value::reg_of(slot)}, loc);
  }
  void store(InstrId slot, Value v, SourceLoc loc = {}) {
    emit(Opcode::Store, TypeKind::Void, {Value::reg_of(slot), v}, loc);
  }
  Value load_idx(TypeKind elem, Value array, Value index, SourceLoc loc = {}) {
    return emit(Opcode::LoadIdx, elem, {array, index}, loc);
  }
  void store_idx(Value array, Value index, Value v, SourceLoc loc = {}) {
    emit(Opcode::StoreIdx, TypeKind::Void, {array, index, v}, loc);
  }
  void br(BlockId target, SourceLoc loc = {}) {
    emit(Opcode::Br, TypeKind::Void, {Value::block_of(target)}, loc);
  }
  void cond_br(Value cond, BlockId t, BlockId f, SourceLoc loc = {}) {
    emit(Opcode::CondBr, TypeKind::Void,
         {cond, Value::block_of(t), Value::block_of(f)}, loc);
  }
  void ret(SourceLoc loc = {}) { emit(Opcode::Ret, TypeKind::Void, {}, loc); }
  void ret(Value v, SourceLoc loc = {}) {
    emit(Opcode::Ret, TypeKind::Void, {v}, loc);
  }
  Value call(const std::string& callee, TypeKind ret, std::vector<Value> args,
             SourceLoc loc = {}) {
    return emit(Opcode::Call, ret, std::move(args), loc, {}, callee);
  }

  // ---- Loop metadata ----------------------------------------------------

  /// Registers a new loop nested in `parent` and makes it the current loop
  /// context for subsequently emitted instructions.
  LoopId open_loop(LoopInfo info) {
    info.id = static_cast<LoopId>(fn_.loops.size());
    info.parent = cur_loop_;
    info.depth = (cur_loop_ == kNoLoop) ? 0 : fn_.loops[cur_loop_].depth + 1;
    fn_.loops.push_back(info);
    cur_loop_ = info.id;
    return info.id;
  }

  void close_loop() {
    assert(cur_loop_ != kNoLoop);
    cur_loop_ = fn_.loops[cur_loop_].parent;
  }

  [[nodiscard]] LoopId current_loop() const { return cur_loop_; }
  [[nodiscard]] LoopInfo& loop(LoopId id) { return fn_.loops[id]; }
  [[nodiscard]] Function& function() { return fn_; }

 private:
  Function& fn_;
  BlockId cur_ = kNoBlock;
  LoopId cur_loop_ = kNoLoop;
};

}  // namespace mvgnn::ir
