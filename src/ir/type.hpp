// Scalar/array type lattice of the MiniC IR.
//
// The IR keeps types deliberately small: 64-bit integers, IEEE doubles, and
// 1-D arrays of either. Multi-dimensional MiniC arrays are lowered by the
// frontend to flat buffers with explicit index arithmetic, exactly as clang
// lowers constant-size C arrays — which is what makes the subscript patterns
// interesting for the dependence analyses in src/analysis.
#pragma once

#include <cstdint>
#include <string>

namespace mvgnn::ir {

enum class TypeKind : std::uint8_t {
  Void,
  Int,       // 64-bit signed integer
  Float,     // IEEE-754 double
  ArrInt,    // buffer of Int
  ArrFloat,  // buffer of Float
};

[[nodiscard]] constexpr bool is_scalar(TypeKind t) {
  return t == TypeKind::Int || t == TypeKind::Float;
}

[[nodiscard]] constexpr bool is_array(TypeKind t) {
  return t == TypeKind::ArrInt || t == TypeKind::ArrFloat;
}

/// Element type of an array type; Void for non-arrays.
[[nodiscard]] constexpr TypeKind element_type(TypeKind t) {
  switch (t) {
    case TypeKind::ArrInt: return TypeKind::Int;
    case TypeKind::ArrFloat: return TypeKind::Float;
    default: return TypeKind::Void;
  }
}

[[nodiscard]] std::string type_name(TypeKind t);

/// Source position carried from MiniC source through lowering into every IR
/// instruction; PEG nodes expose them as the <ID, START, END> triple.
struct SourceLoc {
  int line = 0;
  int col = 0;

  [[nodiscard]] bool valid() const { return line > 0; }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

}  // namespace mvgnn::ir
