#include <stdexcept>
#include <string>

#include "ir/function.hpp"

namespace mvgnn::ir {

namespace {

[[noreturn]] void fail(const Function& fn, const std::string& msg) {
  throw std::runtime_error("ir verify @" + fn.name + ": " + msg);
}

/// Expected operand count for fixed-arity opcodes; -1 for variable arity.
int expected_arity(Opcode op) {
  switch (op) {
    case Opcode::Neg: case Opcode::FNeg: case Opcode::Not:
    case Opcode::IntToFloat: case Opcode::FloatToInt:
    case Opcode::Load: case Opcode::AllocArr: case Opcode::Br:
      return 1;
    case Opcode::Alloca:
    case Opcode::LoopEnter: case Opcode::LoopHead: case Opcode::LoopExit:
      return 0;
    case Opcode::Store: case Opcode::LoadIdx:
      return 2;
    case Opcode::StoreIdx: case Opcode::CondBr:
      return 3;
    case Opcode::Call: case Opcode::Ret:
      return -1;
    default:
      return 2;  // all binary arithmetic / comparisons / logic
  }
}

}  // namespace

void verify(const Function& fn) {
  if (fn.blocks.empty()) fail(fn, "no blocks");

  std::vector<char> placed(fn.instrs.size(), 0);
  for (const auto& bb : fn.blocks) {
    if (bb.id >= fn.blocks.size() || fn.blocks[bb.id].id != bb.id) {
      fail(fn, "block id mismatch");
    }
    if (bb.instrs.empty()) fail(fn, "empty block bb" + std::to_string(bb.id));
    for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
      InstrId id = bb.instrs[i];
      if (id >= fn.instrs.size()) fail(fn, "instr id out of range");
      if (placed[id]) fail(fn, "instr %" + std::to_string(id) + " placed twice");
      placed[id] = 1;
      const Instruction& in = fn.instr(id);
      const bool last = (i + 1 == bb.instrs.size());
      if (in.is_terminator() != last) {
        fail(fn, "terminator placement in bb" + std::to_string(bb.id) +
                     " at %" + std::to_string(id));
      }
      const int arity = expected_arity(in.op);
      if (arity >= 0 && static_cast<int>(in.operands.size()) != arity) {
        fail(fn, std::string("bad arity for ") + opcode_name(in.op) + " at %" +
                     std::to_string(id));
      }
      for (const Value& v : in.operands) {
        switch (v.kind) {
          case Value::Kind::Reg:
            if (v.reg >= fn.instrs.size())
              fail(fn, "dangling register operand at %" + std::to_string(id));
            if (!produces_value(fn.instr(v.reg).op))
              fail(fn, "operand refers to non-value instr at %" +
                           std::to_string(id));
            break;
          case Value::Kind::Block:
            if (v.block >= fn.blocks.size())
              fail(fn, "dangling block operand at %" + std::to_string(id));
            break;
          case Value::Kind::Arg:
            if (v.arg >= fn.params.size())
              fail(fn, "dangling argument operand at %" + std::to_string(id));
            break;
          default:
            break;
        }
      }
      if (in.op == Opcode::Call && in.callee.empty()) {
        fail(fn, "call without callee at %" + std::to_string(id));
      }
      if ((in.op == Opcode::LoopEnter || in.op == Opcode::LoopHead ||
           in.op == Opcode::LoopExit) &&
          in.loop >= fn.loops.size()) {
        fail(fn, "loop marker with dangling loop id at %" + std::to_string(id));
      }
    }
  }

  for (const LoopInfo& l : fn.loops) {
    if (l.header >= fn.blocks.size() || l.preheader >= fn.blocks.size() ||
        l.exit >= fn.blocks.size() || l.latch >= fn.blocks.size()) {
      fail(fn, "loop L" + std::to_string(l.id) + " references missing block");
    }
    if (l.parent != kNoLoop && l.parent >= fn.loops.size()) {
      fail(fn, "loop L" + std::to_string(l.id) + " has dangling parent");
    }
  }
}

void verify(const Module& m) {
  for (const auto& f : m.functions) verify(*f);
}

}  // namespace mvgnn::ir
