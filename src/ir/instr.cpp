#include "ir/instr.hpp"

namespace mvgnn::ir {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::Div: return "div";
    case Opcode::Rem: return "rem";
    case Opcode::Neg: return "neg";
    case Opcode::FAdd: return "fadd";
    case Opcode::FSub: return "fsub";
    case Opcode::FMul: return "fmul";
    case Opcode::FDiv: return "fdiv";
    case Opcode::FNeg: return "fneg";
    case Opcode::CmpEq: return "cmpeq";
    case Opcode::CmpNe: return "cmpne";
    case Opcode::CmpLt: return "cmplt";
    case Opcode::CmpLe: return "cmple";
    case Opcode::CmpGt: return "cmpgt";
    case Opcode::CmpGe: return "cmpge";
    case Opcode::FCmpEq: return "fcmpeq";
    case Opcode::FCmpNe: return "fcmpne";
    case Opcode::FCmpLt: return "fcmplt";
    case Opcode::FCmpLe: return "fcmple";
    case Opcode::FCmpGt: return "fcmpgt";
    case Opcode::FCmpGe: return "fcmpge";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Not: return "not";
    case Opcode::IntToFloat: return "sitofp";
    case Opcode::FloatToInt: return "fptosi";
    case Opcode::Alloca: return "alloca";
    case Opcode::Load: return "load";
    case Opcode::Store: return "store";
    case Opcode::AllocArr: return "allocarr";
    case Opcode::LoadIdx: return "loadidx";
    case Opcode::StoreIdx: return "storeidx";
    case Opcode::Br: return "br";
    case Opcode::CondBr: return "condbr";
    case Opcode::Ret: return "ret";
    case Opcode::Call: return "call";
    case Opcode::LoopEnter: return "loop.enter";
    case Opcode::LoopHead: return "loop.head";
    case Opcode::LoopExit: return "loop.exit";
  }
  return "<bad-opcode>";
}

bool is_terminator(Opcode op) {
  return op == Opcode::Br || op == Opcode::CondBr || op == Opcode::Ret;
}

bool produces_value(Opcode op) {
  switch (op) {
    case Opcode::Store:
    case Opcode::StoreIdx:
    case Opcode::Br:
    case Opcode::CondBr:
    case Opcode::Ret:
    case Opcode::LoopEnter:
    case Opcode::LoopHead:
    case Opcode::LoopExit:
      return false;
    case Opcode::Call:
      return true;  // void calls simply leave the register unused
    default:
      return true;
  }
}

}  // namespace mvgnn::ir
