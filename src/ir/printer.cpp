#include <sstream>

#include "ir/function.hpp"

namespace mvgnn::ir {

std::string type_name(TypeKind t) {
  switch (t) {
    case TypeKind::Void: return "void";
    case TypeKind::Int: return "i64";
    case TypeKind::Float: return "f64";
    case TypeKind::ArrInt: return "i64*";
    case TypeKind::ArrFloat: return "f64*";
  }
  return "<bad-type>";
}

namespace {

void print_value(std::ostream& os, const Value& v) {
  switch (v.kind) {
    case Value::Kind::None: os << "none"; break;
    case Value::Kind::Reg: os << "%" << v.reg; break;
    case Value::Kind::ImmInt: os << v.imm_int; break;
    case Value::Kind::ImmFloat: os << v.imm_float; break;
    case Value::Kind::Arg: os << "$" << v.arg; break;
    case Value::Kind::Block: os << "bb" << v.block; break;
  }
}

void print_instr(std::ostream& os, const Function& fn, InstrId id) {
  const Instruction& in = fn.instr(id);
  os << "  ";
  if (produces_value(in.op) && in.type != TypeKind::Void) {
    os << "%" << id << ":" << type_name(in.type) << " = ";
  }
  os << opcode_name(in.op);
  if (in.op == Opcode::Call) os << " @" << in.callee;
  if (!in.name.empty()) os << " !" << in.name;
  if (in.loop != kNoLoop &&
      (in.op == Opcode::LoopEnter || in.op == Opcode::LoopHead ||
       in.op == Opcode::LoopExit)) {
    os << " L" << in.loop;
  }
  for (std::size_t i = 0; i < in.operands.size(); ++i) {
    os << (i == 0 ? " " : ", ");
    print_value(os, in.operands[i]);
  }
  if (in.loc.valid()) os << "  ; line " << in.loc.line;
  os << "\n";
}

}  // namespace

std::string to_string(const Function& fn) {
  std::ostringstream os;
  os << "func @" << fn.name << "(";
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    if (i) os << ", ";
    os << "$" << i << " " << fn.params[i].name << ":"
       << type_name(fn.params[i].type);
  }
  os << ") -> " << type_name(fn.return_type) << " {\n";
  for (const auto& bb : fn.blocks) {
    os << "bb" << bb.id;
    if (!bb.label.empty()) os << " (" << bb.label << ")";
    os << ":\n";
    for (InstrId id : bb.instrs) print_instr(os, fn, id);
  }
  os << "}\n";
  return os.str();
}

std::string to_string(const Module& m) {
  std::ostringstream os;
  os << "; module " << m.name << "\n";
  for (const auto& f : m.functions) os << to_string(*f) << "\n";
  return os.str();
}

}  // namespace mvgnn::ir
