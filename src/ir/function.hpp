// Functions, basic blocks, loop metadata and modules of the MiniC IR.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/instr.hpp"
#include "ir/type.hpp"

namespace mvgnn::ir {

/// A basic block: a straight-line run of instruction ids ending in exactly
/// one terminator (Br/CondBr/Ret).
struct BasicBlock {
  BlockId id = kNoBlock;
  std::string label;
  std::vector<InstrId> instrs;
};

/// Static description of one `for` loop, recorded by the frontend during
/// lowering. `LoopEnter`/`LoopHead`/`LoopExit` markers reference these by id.
struct LoopInfo {
  LoopId id = kNoLoop;
  LoopId parent = kNoLoop;   // enclosing loop, if any
  BlockId preheader = kNoBlock;
  BlockId header = kNoBlock;
  BlockId body = kNoBlock;   // first body block
  BlockId latch = kNoBlock;
  BlockId exit = kNoBlock;
  InstrId induction_slot = kNoInstr;  // Alloca of the induction variable
  int start_line = 0;  // first source line of the loop statement
  int end_line = 0;    // last source line of the loop body
  int depth = 0;       // nesting depth, 0 = outermost
  bool is_for = true;  // `for` loops are classification samples; `while` not
};

struct Param {
  std::string name;
  TypeKind type = TypeKind::Void;
};

/// A function: parameters, an instruction arena (index == virtual register),
/// basic blocks referencing arena indices, and loop metadata.
struct Function {
  std::string name;
  TypeKind return_type = TypeKind::Void;
  std::vector<Param> params;
  std::vector<Instruction> instrs;  // arena
  std::vector<BasicBlock> blocks;   // blocks[0] is the entry block
  std::vector<LoopInfo> loops;

  [[nodiscard]] const Instruction& instr(InstrId id) const { return instrs[id]; }
  [[nodiscard]] Instruction& instr(InstrId id) { return instrs[id]; }
  [[nodiscard]] const BasicBlock& block(BlockId id) const { return blocks[id]; }
  [[nodiscard]] std::size_t num_instrs() const { return instrs.size(); }

  /// Total loop count (every `for` in the source, any nesting depth).
  [[nodiscard]] std::size_t num_loops() const { return loops.size(); }
};

/// A translation unit: an ordered set of functions plus the source name.
struct Module {
  std::string name;
  std::vector<std::unique_ptr<Function>> functions;

  Function* find(const std::string& fn_name) {
    for (auto& f : functions) {
      if (f->name == fn_name) return f.get();
    }
    return nullptr;
  }
  const Function* find(const std::string& fn_name) const {
    return const_cast<Module*>(this)->find(fn_name);
  }
};

/// Pretty-prints a function (or module) in an LLVM-like textual form; used by
/// tests, examples and error messages.
[[nodiscard]] std::string to_string(const Function& fn);
[[nodiscard]] std::string to_string(const Module& m);

/// Structural validity check. Throws std::runtime_error describing the first
/// violation: missing terminator, dangling register/block reference, operand
/// arity mismatch, or marker/loop-metadata disagreement.
void verify(const Function& fn);
void verify(const Module& m);

}  // namespace mvgnn::ir
