// Instruction set of the MiniC IR.
//
// Three-address form: every instruction that produces a value defines one
// virtual register named by its arena index. Scalars live in explicit stack
// slots (Alloca + Load/Store) rather than SSA phi nodes — the same "-O0
// memory form" shape DiscoPoP instruments, and the shape that makes the
// dependence profiler's shadow memory see every variable access.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.hpp"

namespace mvgnn::ir {

using InstrId = std::uint32_t;
using BlockId = std::uint32_t;
using LoopId = std::uint32_t;

inline constexpr InstrId kNoInstr = static_cast<InstrId>(-1);
inline constexpr BlockId kNoBlock = static_cast<BlockId>(-1);
inline constexpr LoopId kNoLoop = static_cast<LoopId>(-1);

enum class Opcode : std::uint8_t {
  // Integer arithmetic.
  Add, Sub, Mul, Div, Rem, Neg,
  // Floating-point arithmetic.
  FAdd, FSub, FMul, FDiv, FNeg,
  // Comparisons produce Int 0/1.
  CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
  FCmpEq, FCmpNe, FCmpLt, FCmpLe, FCmpGt, FCmpGe,
  // Logic on Int 0/1.
  And, Or, Not,
  // Conversions.
  IntToFloat, FloatToInt,
  // Memory: scalar stack slots.
  Alloca,     // define a scalar slot; `name` holds the variable name
  Load,       // operands: [slot]
  Store,      // operands: [slot, value]
  // Memory: arrays (locals or parameters).
  AllocArr,   // define a local buffer; operands: [size]; type = ArrInt/ArrFloat
  LoadIdx,    // operands: [array, index]
  StoreIdx,   // operands: [array, index, value]
  // Control flow.
  Br,         // operands: [block target]
  CondBr,     // operands: [cond, true block, false block]
  Ret,        // operands: [] or [value]
  // Calls. `callee` holds the function or builtin name.
  Call,
  // Loop markers emitted by the frontend around every `for` loop. The
  // profiler uses them to maintain exact iteration vectors.
  LoopEnter,  // preheader; loop() identifies the loop
  LoopHead,   // top of the header block; executes once per iteration
  LoopExit,   // unique exit block
};

[[nodiscard]] const char* opcode_name(Opcode op);
[[nodiscard]] bool is_terminator(Opcode op);
/// True for opcodes whose result register is meaningful.
[[nodiscard]] bool produces_value(Opcode op);

/// An operand: either a virtual register (defining instruction id), an
/// immediate constant, a function argument, or a branch target.
struct Value {
  enum class Kind : std::uint8_t { None, Reg, ImmInt, ImmFloat, Arg, Block };

  Kind kind = Kind::None;
  union {
    InstrId reg;
    std::int64_t imm_int;
    double imm_float;
    std::uint32_t arg;
    BlockId block;
  };

  Value() : reg(kNoInstr) {}

  static Value reg_of(InstrId id) { Value v; v.kind = Kind::Reg; v.reg = id; return v; }
  static Value imm(std::int64_t x) { Value v; v.kind = Kind::ImmInt; v.imm_int = x; return v; }
  static Value imm(double x) { Value v; v.kind = Kind::ImmFloat; v.imm_float = x; return v; }
  static Value arg_of(std::uint32_t i) { Value v; v.kind = Kind::Arg; v.arg = i; return v; }
  static Value block_of(BlockId b) { Value v; v.kind = Kind::Block; v.block = b; return v; }

  [[nodiscard]] bool is_reg() const { return kind == Kind::Reg; }
  [[nodiscard]] bool is_block() const { return kind == Kind::Block; }
  [[nodiscard]] bool is_imm() const {
    return kind == Kind::ImmInt || kind == Kind::ImmFloat;
  }

  friend bool operator==(const Value& a, const Value& b) {
    if (a.kind != b.kind) return false;
    switch (a.kind) {
      case Kind::None: return true;
      case Kind::Reg: return a.reg == b.reg;
      case Kind::ImmInt: return a.imm_int == b.imm_int;
      case Kind::ImmFloat: return a.imm_float == b.imm_float;
      case Kind::Arg: return a.arg == b.arg;
      case Kind::Block: return a.block == b.block;
    }
    return false;
  }
};

/// One IR instruction. Owned by the function's instruction arena; its arena
/// index is its virtual register name.
struct Instruction {
  Opcode op = Opcode::Ret;
  TypeKind type = TypeKind::Void;  // result type (Void when no result)
  std::vector<Value> operands;
  SourceLoc loc;
  std::string name;    // variable name (Alloca/AllocArr) — for diagnostics
  std::string callee;  // Call only
  LoopId loop = kNoLoop;  // innermost enclosing loop; markers: the marked loop

  [[nodiscard]] bool is_terminator() const { return ir::is_terminator(op); }
};

}  // namespace mvgnn::ir
