// Pairwise static dependence tests over affine subscripts: ZIV, strong SIV,
// and the GCD test with a Banerjee range check when constant bounds are
// known. Classic compiler machinery (Polly/Pluto/AutoPar all build on it).
#pragma once

#include "analysis/affine.hpp"

namespace mvgnn::analysis {

enum class DepVerdict : std::uint8_t {
  NoDep,       // proven independent
  NotCarried,  // dependence exists but stays within one iteration of l
  Carried,     // proven loop-carried for l
  Unknown,     // cannot decide: conservative tools assume Carried
};

/// Tests accesses `a` and `b` (same array, at least one write) for a
/// dependence carried by loop `l`. `bounds` refine the verdict when the
/// trip range is statically known and `use_banerjee` is set (the polyhedral
/// tools apply the range pruning; plain GCD-based tools like AutoPar do
/// not — one of the accuracy gaps Table III measures).
[[nodiscard]] DepVerdict test_pair(const ir::Function& fn, ir::LoopId l,
                                   const ArrayAccess& a, const ArrayAccess& b,
                                   const LoopBounds& bounds,
                                   bool use_banerjee = true);

}  // namespace mvgnn::analysis
