#include "analysis/tools.hpp"

#include <unordered_set>

#include "analysis/dep_test.hpp"

namespace mvgnn::analysis {

namespace {

using ir::InstrId;
using ir::Instruction;
using ir::LoopId;
using ir::Opcode;

/// Instruction-id sets of the reduction chains (accumulator loads/stores).
struct ChainSets {
  std::unordered_set<InstrId> loads;
  std::unordered_set<InstrId> stores;
  std::unordered_set<InstrId> scalar_slots;

  explicit ChainSets(const std::vector<ReductionChain>& chains) {
    for (const ReductionChain& c : chains) {
      loads.insert(c.load);
      stores.insert(c.store);
      if (!c.is_array) scalar_slots.insert(c.scalar_slot);
    }
  }
  [[nodiscard]] bool covers(InstrId a, InstrId b) const {
    return (stores.count(a) && loads.count(b)) ||
           (loads.count(a) && stores.count(b)) ||
           (stores.count(a) && stores.count(b));
  }
};

/// Scalar slots touched inside loop `l`, with the access pattern needed for
/// the write-first privatization rule.
struct ScalarUse {
  bool has_store = false;
  bool first_is_store = false;
  std::string name;
};

std::unordered_map<InstrId, ScalarUse> scalar_uses(const ir::Function& fn,
                                                   LoopId l) {
  std::unordered_map<InstrId, ScalarUse> uses;
  for (InstrId id = 0; id < fn.instrs.size(); ++id) {
    const Instruction& in = fn.instr(id);
    if ((in.op != Opcode::Load && in.op != Opcode::Store) ||
        !in.operands[0].is_reg()) {
      continue;
    }
    if (!profiler::loop_contains(fn, l, in.loop)) continue;
    const InstrId slot = in.operands[0].reg;
    auto [it, fresh] = uses.try_emplace(slot);
    if (fresh) {
      it->second.first_is_store = (in.op == Opcode::Store);
      it->second.name = fn.instr(slot).name;
    }
    if (in.op == Opcode::Store) it->second.has_store = true;
  }
  return uses;
}

/// Tests every conflicting array pair; returns the first blocking pair's
/// description, or empty when all pairs are independent / reduction-covered.
std::string check_array_pairs(const ir::Function& fn, LoopId l,
                              const LoopBounds& bounds,
                              const ChainSets& chains,
                              bool use_banerjee) {
  const auto accesses = collect_array_accesses(fn, l);
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    for (std::size_t j = i; j < accesses.size(); ++j) {
      const ArrayAccess& a = accesses[i];
      const ArrayAccess& b = accesses[j];
      if (!(a.is_write || b.is_write)) continue;
      if (!(a.array == b.array)) continue;
      if (a.array.kind == ArrayKey::Kind::Unknown) {
        return "unresolvable array base";
      }
      const DepVerdict v = test_pair(fn, l, a, b, bounds, use_banerjee);
      if (v == DepVerdict::Carried || v == DepVerdict::Unknown) {
        if (chains.covers(a.instr, b.instr)) continue;
        return std::string("carried array dependence (") +
               (v == DepVerdict::Unknown ? "assumed" : "proven") + ") at line " +
               std::to_string(fn.instr(a.instr).loc.line);
      }
    }
  }
  return {};
}

/// Is object `obj_id` live-out of loop `l`: some value stored inside the
/// loop is read after it (RAW edge from a store inside `l` to a load
/// outside). Privatizing a live-out object with order-dependent final
/// contents (conditional scalar writes, colliding scatters) would change
/// program results, so WAR/WAW-privatization requires not-live-out.
bool live_out(const ir::Function& fn, LoopId l,
              const profiler::DepProfile& prof, std::uint32_t obj_id) {
  for (const profiler::DepEdge& e : prof.edges) {
    if (e.type != profiler::DepType::RAW || e.object != obj_id) continue;
    const bool src_in =
        e.src.fn == &fn && profiler::instr_in_loop(fn, e.src.id, l);
    const bool dst_in =
        e.dst.fn == &fn && profiler::instr_in_loop(fn, e.dst.id, l);
    if (src_in && !dst_in) return true;
  }
  return false;
}

bool is_any_induction_slot(const ir::Function& fn, InstrId slot) {
  for (const ir::LoopInfo& loop : fn.loops) {
    if (loop.induction_slot == slot) return true;
  }
  return false;
}

std::vector<ReductionChain> chains_with_ops(const ir::Function& fn, LoopId l,
                                            bool allow_minmax) {
  std::vector<ReductionChain> chains = detect_reductions(fn, l);
  if (!allow_minmax) {
    std::erase_if(chains, [](const ReductionChain& c) {
      return c.op == ReductionOp::Min || c.op == ReductionOp::Max;
    });
  }
  return chains;
}

}  // namespace

// ---------------------------------------------------------------------------
// AutoPar
// ---------------------------------------------------------------------------

ToolVerdict autopar_classify(const ir::Function& fn, LoopId l) {
  const LoopBounds bounds = derive_bounds(fn, l);
  if (!bounds.known) return {false, "unrecognized loop shape"};
  if (has_early_exit(fn, l)) return {false, "early exit from loop"};
  if (has_user_call(fn, l)) return {false, "call to user function"};

  const ChainSets chains(chains_with_ops(fn, l, /*allow_minmax=*/true));
  if (std::string r =
          check_array_pairs(fn, l, bounds, chains, /*use_banerjee=*/false);
      !r.empty()) {
    return {false, r};
  }
  for (const auto& [slot, use] : scalar_uses(fn, l)) {
    if (slot == fn.loops[l].induction_slot) continue;
    if (!use.has_store) continue;            // read-only shared scalar
    if (chains.scalar_slots.count(slot)) continue;  // reduction
    if (use.first_is_store) continue;        // privatizable (write-first)
    return {false, "carried scalar dependence on '" + use.name + "'"};
  }
  return {true, {}};
}

// ---------------------------------------------------------------------------
// Pluto
// ---------------------------------------------------------------------------

ToolVerdict pluto_classify(const ir::Function& fn, LoopId l) {
  const LoopBounds bounds = derive_bounds(fn, l);
  if (!bounds.known) return {false, "non-affine loop bounds"};
  if (has_early_exit(fn, l)) return {false, "non-static control flow"};
  if (has_user_call(fn, l)) return {false, "opaque function call"};
  for (const ir::LoopInfo& inner : fn.loops) {
    if (!inner.is_for && profiler::loop_contains(fn, l, inner.id)) {
      return {false, "while loop breaks static control"};
    }
  }

  const auto accesses = collect_array_accesses(fn, l);
  for (const ArrayAccess& a : accesses) {
    if (!a.index.affine) return {false, "non-affine subscript"};
    if (a.array.kind == ArrayKey::Kind::Unknown) {
      return {false, "unresolvable array base"};
    }
  }
  // Pluto's polyhedral model has no reduction support by default: any write
  // to a non-induction scalar leaves the SCoP.
  for (const auto& [slot, use] : scalar_uses(fn, l)) {
    if (is_any_induction_slot(fn, slot)) continue;
    if (use.has_store) {
      return {false, "scalar write to '" + use.name + "' outside the model"};
    }
  }
  const ChainSets no_chains{std::vector<ReductionChain>{}};
  if (std::string r =
          check_array_pairs(fn, l, bounds, no_chains, /*use_banerjee=*/true);
      !r.empty()) {
    return {false, r};
  }
  return {true, {}};
}

// ---------------------------------------------------------------------------
// DiscoPoP
// ---------------------------------------------------------------------------

namespace {

ToolVerdict dynamic_classify(const ir::Function& fn, LoopId l,
                             const profiler::DepProfile& prof,
                             bool allow_minmax, bool array_privatization) {
  const profiler::LoopRef ref{&fn, l};
  const auto rt = prof.loop_runtime.find(ref);
  if (rt == prof.loop_runtime.end() || rt->second.iterations == 0) {
    return {false, "loop never executed under the profiling input"};
  }
  if (has_early_exit(fn, l)) return {false, "early exit from loop"};

  const ChainSets chains(chains_with_ops(fn, l, allow_minmax));
  const auto objs = prof.loop_objects.find(ref);
  if (objs == prof.loop_objects.end()) return {true, {}};

  for (const auto& [obj_id, summary] : objs->second) {
    const profiler::MemObject& obj = prof.objects.object(obj_id);
    const bool is_scalar = obj.kind == profiler::ObjKind::ScalarLocal;
    if (is_scalar && obj.fn == &fn &&
        obj.alloca_id == fn.loops[l].induction_slot) {
      continue;  // the loop's own induction variable
    }
    if (summary.carried_raw) {
      bool all_reduction = true;
      for (const auto& [src, dst] : summary.carried_raw_pairs) {
        if (src.fn != &fn || dst.fn != &fn ||
            !chains.covers(src.id, dst.id)) {
          all_reduction = false;
          break;
        }
      }
      if (!all_reduction) {
        return {false, "loop-carried RAW dependence on '" + obj.name + "'"};
      }
    } else {
      // WAR/WAW only: write-first in every iteration, hence privatizable —
      // if the tool supports privatization for this object class and the
      // object's final contents are not consumed after the loop.
      if (!is_scalar && !array_privatization) {
        return {false, "array '" + obj.name + "' needs privatization"};
      }
      if (live_out(fn, l, prof, obj_id)) {
        return {false, "'" + obj.name +
                           "' is written across iterations and read after "
                           "the loop (order-dependent final value)"};
      }
    }
  }
  return {true, {}};
}

}  // namespace

ToolVerdict discopop_classify(const ir::Function& fn, LoopId l,
                              const profiler::DepProfile& prof) {
  return dynamic_classify(fn, l, prof, /*allow_minmax=*/false,
                          /*array_privatization=*/false);
}

ToolVerdict oracle_classify(const ir::Function& fn, LoopId l,
                            const profiler::DepProfile& prof) {
  const profiler::LoopRef ref{&fn, l};
  const auto rt = prof.loop_runtime.find(ref);
  if (rt == prof.loop_runtime.end() || rt->second.iterations == 0) {
    // Static expert fallback for unexecuted loops.
    return autopar_classify(fn, l);
  }
  return dynamic_classify(fn, l, prof, /*allow_minmax=*/true,
                          /*array_privatization=*/true);
}

const char* par_kind_name(ParKind k) {
  switch (k) {
    case ParKind::Sequential: return "sequential";
    case ParKind::DoAll: return "doall";
    case ParKind::Reduction: return "reduction";
  }
  return "?";
}

ParKind oracle_pattern(const ir::Function& fn, LoopId l,
                       const profiler::DepProfile& prof) {
  if (!oracle_classify(fn, l, prof).parallel) return ParKind::Sequential;

  const profiler::LoopRef ref{&fn, l};
  const auto rt = prof.loop_runtime.find(ref);
  if (rt == prof.loop_runtime.end() || rt->second.iterations == 0) {
    // Static fallback: parallelizable with chains present -> Reduction.
    return detect_reductions(fn, l).empty() ? ParKind::DoAll
                                            : ParKind::Reduction;
  }
  // Parallelizable and executed: any carried RAW on a non-induction object
  // must have been reduction-covered (that is what made it parallelizable),
  // so its presence is exactly the Reduction signature.
  const auto objs = prof.loop_objects.find(ref);
  if (objs != prof.loop_objects.end()) {
    for (const auto& [obj_id, summary] : objs->second) {
      const profiler::MemObject& obj = prof.objects.object(obj_id);
      if (obj.kind == profiler::ObjKind::ScalarLocal && obj.fn == &fn &&
          obj.alloca_id == fn.loops[l].induction_slot) {
        continue;
      }
      if (summary.carried_raw) return ParKind::Reduction;
    }
  }
  return ParKind::DoAll;
}

}  // namespace mvgnn::analysis
