// OpenMP parallelization suggestions — the consumer-facing output of a
// DiscoPoP-style pipeline (the paper's Fig. 2 phases 2-3): for each
// parallelizable loop, the pragma that realizes the detected pattern, with
// reduction and privatization clauses filled in, plus a ranking metric
// (coverage x estimated speedup, the paper's "sorted according to various
// metrics including coverage and speed-up").
#pragma once

#include <string>
#include <vector>

#include "analysis/tools.hpp"
#include "profiler/profile.hpp"

namespace mvgnn::analysis {

struct Suggestion {
  const ir::Function* fn = nullptr;
  ir::LoopId loop = ir::kNoLoop;
  int start_line = 0;
  int end_line = 0;
  ParKind kind = ParKind::Sequential;
  std::string pragma;       // "" when sequential
  std::string explanation;  // why / why not
  double coverage = 0.0;    // fraction of dynamic instructions in the loop
  double est_speedup = 1.0; // Table I ESP
  double rank = 0.0;        // coverage-weighted speedup gain
};

/// Builds suggestions for every for-loop of the profiled module, ranked by
/// expected whole-program benefit (descending).
[[nodiscard]] std::vector<Suggestion> suggest_openmp(
    const ir::Module& m, const profiler::ProfileResult& prof);

/// Renders one suggestion as the pragma line + a comment, e.g.
///   #pragma omp parallel for reduction(+:s)   // coverage 61%, est x2.4
[[nodiscard]] std::string to_string(const Suggestion& s);

}  // namespace mvgnn::analysis
