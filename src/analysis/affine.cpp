#include "analysis/affine.hpp"

#include <algorithm>

#include "frontend/sema.hpp"
#include "profiler/dep_graph.hpp"

namespace mvgnn::analysis {

namespace {

using ir::InstrId;
using ir::Instruction;
using ir::LoopId;
using ir::Opcode;
using ir::Value;

/// Symbol keys: scalar slots use their alloca id; integer arguments are
/// offset into a disjoint range.
std::uint64_t arg_symbol(std::uint32_t idx) {
  return (std::uint64_t{1} << 32) | idx;
}

/// Root (outermost) enclosing loop of `l`.
LoopId root_loop(const ir::Function& fn, LoopId l) {
  while (fn.loops[l].parent != ir::kNoLoop) l = fn.loops[l].parent;
  return l;
}

/// Is `slot` the induction slot of any loop in `fn`?
bool is_induction_slot(const ir::Function& fn, InstrId slot) {
  for (const ir::LoopInfo& loop : fn.loops) {
    if (loop.induction_slot == slot) return true;
  }
  return false;
}

/// Is `slot` stored anywhere inside the subtree of `scope`?
bool stored_in_loop(const ir::Function& fn, InstrId slot, LoopId scope) {
  for (InstrId id = 0; id < fn.instrs.size(); ++id) {
    const Instruction& in = fn.instr(id);
    if (in.op != Opcode::Store || !in.operands[0].is_reg() ||
        in.operands[0].reg != slot) {
      continue;
    }
    if (profiler::loop_contains(fn, scope, in.loop)) return true;
  }
  return false;
}

struct AffineBuilder {
  const ir::Function& fn;
  LoopId scope;  // outermost loop whose invariance defines "symbol"

  AffineExpr constant(std::int64_t c) const {
    AffineExpr e;
    e.affine = true;
    e.constant = c;
    return e;
  }
  static AffineExpr bad() { return AffineExpr{}; }

  static AffineExpr combine(const AffineExpr& a, const AffineExpr& b,
                            std::int64_t sign) {
    if (!a.affine || !b.affine) return bad();
    AffineExpr e = a;
    e.constant += sign * b.constant;
    for (const auto& [k, c] : b.iv_coeffs) e.iv_coeffs[k] += sign * c;
    for (const auto& [k, c] : b.symbols) e.symbols[k] += sign * c;
    std::erase_if(e.iv_coeffs, [](const auto& kv) { return kv.second == 0; });
    std::erase_if(e.symbols, [](const auto& kv) { return kv.second == 0; });
    return e;
  }

  static bool pure_constant(const AffineExpr& e) {
    return e.affine && e.iv_coeffs.empty() && e.symbols.empty();
  }

  static AffineExpr scaled(const AffineExpr& e, std::int64_t c) {
    AffineExpr r = e;
    r.constant *= c;
    for (auto& [k, v] : r.iv_coeffs) v *= c;
    for (auto& [k, v] : r.symbols) v *= c;
    if (c == 0) {
      r.iv_coeffs.clear();
      r.symbols.clear();
    }
    return r;
  }

  AffineExpr eval(const Value& v) const {
    switch (v.kind) {
      case Value::Kind::ImmInt:
        return constant(v.imm_int);
      case Value::Kind::Arg: {
        AffineExpr e;
        e.affine = true;
        e.symbols[arg_symbol(v.arg)] = 1;
        return e;
      }
      case Value::Kind::Reg:
        return eval_instr(fn.instr(v.reg));
      default:
        return bad();
    }
  }

  AffineExpr eval_instr(const Instruction& in) const {
    switch (in.op) {
      case Opcode::Load: {
        if (!in.operands[0].is_reg()) return bad();
        const InstrId slot = in.operands[0].reg;
        if (is_induction_slot(fn, slot)) {
          AffineExpr e;
          e.affine = true;
          e.iv_coeffs[slot] = 1;
          return e;
        }
        if (!stored_in_loop(fn, slot, scope)) {
          AffineExpr e;
          e.affine = true;
          e.symbols[slot] = 1;
          return e;
        }
        return bad();  // loop-varying scalar: not analyzable
      }
      case Opcode::Add:
        return combine(eval(in.operands[0]), eval(in.operands[1]), +1);
      case Opcode::Sub:
        return combine(eval(in.operands[0]), eval(in.operands[1]), -1);
      case Opcode::Neg:
        return scaled(eval(in.operands[0]), -1);
      case Opcode::Mul: {
        const AffineExpr a = eval(in.operands[0]);
        const AffineExpr b = eval(in.operands[1]);
        if (pure_constant(a)) return scaled(b, a.constant);
        if (pure_constant(b)) return scaled(a, b.constant);
        return bad();  // symbolic coefficient (e.g. i*n): non-affine
      }
      default:
        return bad();  // div/rem/float/indirect loads etc.
    }
  }
};

}  // namespace

ArrayKey array_of(const ir::Function& fn, const Value& base) {
  ArrayKey k;
  if (base.kind == Value::Kind::Arg) {
    k.kind = ArrayKey::Kind::Arg;
    k.arg = base.arg;
    return k;
  }
  if (base.is_reg() && fn.instr(base.reg).op == Opcode::AllocArr) {
    k.kind = ArrayKey::Kind::Local;
    k.alloca_id = base.reg;
    return k;
  }
  return k;  // Unknown
}

AffineExpr analyze_affine(const ir::Function& fn, LoopId l, const Value& v) {
  return AffineBuilder{fn, root_loop(fn, l)}.eval(v);
}

std::vector<ArrayAccess> collect_array_accesses(const ir::Function& fn,
                                                LoopId l) {
  std::vector<ArrayAccess> out;
  for (InstrId id = 0; id < fn.instrs.size(); ++id) {
    const Instruction& in = fn.instr(id);
    if (in.op != Opcode::LoadIdx && in.op != Opcode::StoreIdx) continue;
    if (!profiler::loop_contains(fn, l, in.loop)) continue;
    ArrayAccess a;
    a.instr = id;
    a.is_write = (in.op == Opcode::StoreIdx);
    a.array = array_of(fn, in.operands[0]);
    a.index = analyze_affine(fn, l, in.operands[1]);
    out.push_back(std::move(a));
  }
  return out;
}

LoopBounds derive_bounds(const ir::Function& fn, LoopId l) {
  LoopBounds b;
  const ir::LoopInfo& loop = fn.loops[l];
  const InstrId iv = loop.induction_slot;
  if (iv == ir::kNoInstr) return b;

  auto is_load_of_iv = [&](const Value& v) {
    return v.is_reg() && fn.instr(v.reg).op == Opcode::Load &&
           fn.instr(v.reg).operands[0].is_reg() &&
           fn.instr(v.reg).operands[0].reg == iv;
  };

  // --- step: Store(iv, iv +/- c) in the latch block ----------------------
  bool step_found = false;
  for (const InstrId id : fn.block(loop.latch).instrs) {
    const Instruction& in = fn.instr(id);
    if (in.op != Opcode::Store || !in.operands[0].is_reg() ||
        in.operands[0].reg != iv || !in.operands[1].is_reg()) {
      continue;
    }
    const Instruction& val = fn.instr(in.operands[1].reg);
    if (val.op == Opcode::Add || val.op == Opcode::Sub) {
      const Value& a = val.operands[0];
      const Value& c = val.operands[1];
      if (is_load_of_iv(a) && c.kind == Value::Kind::ImmInt) {
        b.step = (val.op == Opcode::Add) ? c.imm_int : -c.imm_int;
        step_found = true;
      } else if (val.op == Opcode::Add && is_load_of_iv(c) &&
                 a.kind == Value::Kind::ImmInt) {
        b.step = a.imm_int;
        step_found = true;
      }
    }
  }
  if (!step_found || b.step == 0) return b;

  // --- bound: compare feeding the header's CondBr ------------------------
  const ir::BasicBlock& header = fn.block(loop.header);
  const Instruction& term = fn.instr(header.instrs.back());
  if (term.op != Opcode::CondBr || !term.operands[0].is_reg()) return b;
  const Instruction& cmp = fn.instr(term.operands[0].reg);
  std::int64_t bound_adjust = 0;
  bool bound_on_rhs = true;
  switch (cmp.op) {
    case Opcode::CmpLt: bound_adjust = 0; break;
    case Opcode::CmpLe: bound_adjust = 1; break;
    case Opcode::CmpGt: bound_adjust = 0; bound_on_rhs = true; break;
    case Opcode::CmpGe: bound_adjust = -1; break;
    default: return b;
  }
  if (!is_load_of_iv(cmp.operands[0])) return b;  // only `iv OP bound` shape
  const AffineExpr bound = analyze_affine(fn, l, cmp.operands[1]);
  if (!bound.affine || !bound.iv_coeffs.empty()) return b;
  (void)bound_on_rhs;

  // --- init: last Store(iv, _) textually before the LoopEnter marker ----
  InstrId enter = ir::kNoInstr;
  for (const InstrId id : fn.block(loop.preheader).instrs) {
    if (fn.instr(id).op == Opcode::LoopEnter) enter = id;
  }
  if (enter == ir::kNoInstr) return b;
  AffineExpr init;
  for (InstrId id = 0; id < enter; ++id) {
    const Instruction& in = fn.instr(id);
    if (in.op == Opcode::Store && in.operands[0].is_reg() &&
        in.operands[0].reg == iv) {
      init = analyze_affine(fn, l, in.operands[1]);
    }
  }
  if (!init.affine || !init.iv_coeffs.empty()) return b;

  b.known = true;
  if (init.symbols.empty() && bound.symbols.empty() && b.step > 0 &&
      (cmp.op == Opcode::CmpLt || cmp.op == Opcode::CmpLe)) {
    b.constant_trip = true;
    b.lo = init.constant;
    b.hi = bound.constant + bound_adjust;
  }
  return b;
}

bool has_early_exit(const ir::Function& fn, LoopId l) {
  const ir::LoopInfo& loop = fn.loops[l];
  for (const ir::BasicBlock& bb : fn.blocks) {
    if (bb.id == loop.header) continue;  // the normal exit test
    for (const InstrId id : bb.instrs) {
      const Instruction& in = fn.instr(id);
      if (!profiler::loop_contains(fn, l, in.loop)) continue;
      if (in.op == Opcode::Ret) return true;
      if (in.op == Opcode::Br || in.op == Opcode::CondBr) {
        for (const Value& v : in.operands) {
          if (v.is_block() && v.block == loop.exit) return true;
        }
      }
    }
  }
  return false;
}

bool has_user_call(const ir::Function& fn, LoopId l) {
  for (InstrId id = 0; id < fn.instrs.size(); ++id) {
    const Instruction& in = fn.instr(id);
    if (in.op == Opcode::Call && !frontend::find_builtin(in.callee) &&
        profiler::loop_contains(fn, l, in.loop)) {
      return true;
    }
  }
  return false;
}

}  // namespace mvgnn::analysis
