// Static affine analysis of array subscripts and loop bounds.
//
// This is the machinery behind the Pluto-like and AutoPar-like baseline
// classifiers: a subscript is affine when it is an integer-linear function
// of enclosing induction variables plus loop-invariant symbols; loops with
// only affine subscripts admit exact dependence tests, anything else forces
// the static tools to be conservative — which is exactly the behaviour gap
// the paper's Table III measures.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "ir/function.hpp"

namespace mvgnn::analysis {

/// Affine form: constant + sum(coeff * induction-slot) + sum(coeff * symbol)
/// where symbols are loop-invariant scalar slots or integer arguments.
struct AffineExpr {
  bool affine = false;
  std::int64_t constant = 0;
  std::map<ir::InstrId, std::int64_t> iv_coeffs;   // induction slot -> coeff
  std::map<std::uint64_t, std::int64_t> symbols;   // symbol key -> coeff

  [[nodiscard]] bool same_symbols(const AffineExpr& o) const {
    return symbols == o.symbols;
  }
  [[nodiscard]] std::int64_t coeff_of(ir::InstrId iv) const {
    const auto it = iv_coeffs.find(iv);
    return it == iv_coeffs.end() ? 0 : it->second;
  }
};

/// Static identity of an array (parameter index or local AllocArr).
struct ArrayKey {
  enum class Kind : std::uint8_t { Arg, Local, Unknown } kind = Kind::Unknown;
  std::uint32_t arg = 0;
  ir::InstrId alloca_id = ir::kNoInstr;

  friend bool operator==(const ArrayKey&, const ArrayKey&) = default;
  friend bool operator<(const ArrayKey& a, const ArrayKey& b) {
    return std::tie(a.kind, a.arg, a.alloca_id) <
           std::tie(b.kind, b.arg, b.alloca_id);
  }
};

/// Resolves the base operand of a LoadIdx/StoreIdx to its static array.
[[nodiscard]] ArrayKey array_of(const ir::Function& fn, const ir::Value& base);

/// One array access inside a loop, with its analyzed subscript.
struct ArrayAccess {
  ir::InstrId instr = ir::kNoInstr;
  bool is_write = false;
  ArrayKey array;
  AffineExpr index;
};

/// All array accesses statically inside loop `l`.
[[nodiscard]] std::vector<ArrayAccess> collect_array_accesses(
    const ir::Function& fn, ir::LoopId l);

/// Analyzes `v` (the index operand context is loop `l`) as an affine
/// expression. Induction slots of `l` and its ancestors/descendants are the
/// variables; scalar slots never stored inside `l`'s outermost enclosing
/// loop are symbols; anything else (loads of loop-varying scalars, array
/// element loads, float math, user calls) makes the result non-affine.
[[nodiscard]] AffineExpr analyze_affine(const ir::Function& fn, ir::LoopId l,
                                        const ir::Value& v);

/// Statically recovered loop bounds: for (iv = lo; iv </<= hi; iv += step).
struct LoopBounds {
  bool known = false;         // init/step constant, bound const or symbolic
  bool constant_trip = false; // lo and hi both integer constants
  std::int64_t lo = 0;
  std::int64_t hi = 0;        // exclusive upper bound when constant_trip
  std::int64_t step = 1;
};

/// Pattern-matches the canonical for-loop shape out of the IR (init store
/// before the preheader, compare in the header, increment in the latch).
[[nodiscard]] LoopBounds derive_bounds(const ir::Function& fn, ir::LoopId l);

/// True when loop `l`'s body can leave the loop other than through the
/// header test: a `break` (branch to an exit block from a non-header block)
/// or a `return` inside the body.
[[nodiscard]] bool has_early_exit(const ir::Function& fn, ir::LoopId l);

/// True when the loop body (subtree) contains a call to a non-builtin.
[[nodiscard]] bool has_user_call(const ir::Function& fn, ir::LoopId l);

}  // namespace mvgnn::analysis
