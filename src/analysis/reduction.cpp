#include "analysis/reduction.hpp"

#include <optional>

#include "profiler/dep_graph.hpp"

namespace mvgnn::analysis {

namespace {

using ir::InstrId;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

std::optional<ReductionOp> reduction_op(const ir::Function& fn,
                                        const Instruction& val) {
  switch (val.op) {
    case Opcode::Add:
    case Opcode::FAdd:
    case Opcode::Sub:
    case Opcode::FSub:
      return ReductionOp::Sum;  // s -= x folds into a sum reduction
    case Opcode::Mul:
    case Opcode::FMul:
      return ReductionOp::Product;
    case Opcode::Call:
      if (val.callee == "fmin" || val.callee == "imin") return ReductionOp::Min;
      if (val.callee == "fmax" || val.callee == "imax") return ReductionOp::Max;
      return std::nullopt;
    default:
      return std::nullopt;
  }
  (void)fn;
}

/// For `s = s op x` the accumulator load must be the left operand of a Sub
/// (s - x is a reduction, x - s is not); for commutative ops either side.
bool load_position_ok(const Instruction& val, std::size_t operand_index) {
  if (val.op == Opcode::Sub || val.op == Opcode::FSub) {
    return operand_index == 0;
  }
  return true;
}

}  // namespace

std::vector<ReductionChain> detect_reductions(const ir::Function& fn,
                                              ir::LoopId l) {
  std::vector<ReductionChain> chains;

  // Pass 1: find candidate chains at every store inside the loop.
  for (InstrId id = 0; id < fn.instrs.size(); ++id) {
    const Instruction& st = fn.instr(id);
    if (!profiler::loop_contains(fn, l, st.loop)) continue;

    if (st.op == Opcode::Store && st.operands[0].is_reg() &&
        st.operands[1].is_reg()) {
      const InstrId slot = st.operands[0].reg;
      if (slot == fn.loops[l].induction_slot) continue;
      const Instruction& val = fn.instr(st.operands[1].reg);
      const auto op = reduction_op(fn, val);
      if (!op) continue;
      for (std::size_t oi = 0; oi < val.operands.size(); ++oi) {
        const Value& v = val.operands[oi];
        if (!v.is_reg()) continue;
        const Instruction& ld = fn.instr(v.reg);
        if (ld.op == Opcode::Load && ld.operands[0].is_reg() &&
            ld.operands[0].reg == slot && load_position_ok(val, oi) &&
            profiler::loop_contains(fn, l, ld.loop)) {
          ReductionChain c;
          c.load = v.reg;
          c.store = id;
          c.op = *op;
          c.scalar_slot = slot;
          chains.push_back(c);
          break;
        }
      }
    } else if (st.op == Opcode::StoreIdx && st.operands[2].is_reg()) {
      const ArrayKey arr = array_of(fn, st.operands[0]);
      if (arr.kind == ArrayKey::Kind::Unknown) continue;
      const Instruction& val = fn.instr(st.operands[2].reg);
      const auto op = reduction_op(fn, val);
      if (!op) continue;
      for (std::size_t oi = 0; oi < val.operands.size(); ++oi) {
        const Value& v = val.operands[oi];
        if (!v.is_reg()) continue;
        const Instruction& ld = fn.instr(v.reg);
        // Same array AND the identical base/index values (the lowering of
        // `A[e] op= x` reuses the evaluated base and index registers).
        if (ld.op == Opcode::LoadIdx && ld.operands[0] == st.operands[0] &&
            ld.operands[1] == st.operands[1] && load_position_ok(val, oi) &&
            profiler::loop_contains(fn, l, ld.loop)) {
          ReductionChain c;
          c.load = v.reg;
          c.store = id;
          c.op = *op;
          c.is_array = true;
          c.array = arr;
          chains.push_back(c);
          break;
        }
      }
    }
  }

  // Pass 2: reject accumulators with stray accesses inside the loop.
  auto in_chain = [&chains](InstrId id) {
    for (const ReductionChain& c : chains) {
      if (c.load == id || c.store == id) return true;
    }
    return false;
  };
  std::vector<ReductionChain> confirmed;
  for (const ReductionChain& cand : chains) {
    bool clean = true;
    for (InstrId id = 0; id < fn.instrs.size() && clean; ++id) {
      const Instruction& in = fn.instr(id);
      if (!profiler::loop_contains(fn, l, in.loop)) continue;
      bool touches = false;
      if (cand.is_array) {
        touches = (in.op == Opcode::LoadIdx || in.op == Opcode::StoreIdx) &&
                  array_of(fn, in.operands[0]) == cand.array;
      } else {
        touches = (in.op == Opcode::Load || in.op == Opcode::Store) &&
                  in.operands[0].is_reg() &&
                  in.operands[0].reg == cand.scalar_slot;
      }
      if (touches && !in_chain(id)) clean = false;
    }
    if (clean) confirmed.push_back(cand);
  }
  return confirmed;
}

}  // namespace mvgnn::analysis
