#include "analysis/dep_test.hpp"

#include <cstdlib>
#include <numeric>

namespace mvgnn::analysis {

DepVerdict test_pair(const ir::Function& fn, ir::LoopId l,
                     const ArrayAccess& a, const ArrayAccess& b,
                     const LoopBounds& bounds, bool use_banerjee) {
  if (!a.index.affine || !b.index.affine) return DepVerdict::Unknown;
  if (!a.index.same_symbols(b.index)) return DepVerdict::Unknown;

  const ir::InstrId iv = fn.loops[l].induction_slot;
  // Coefficients of every *other* induction variable must agree; otherwise
  // the single-variable tests below do not apply.
  for (const auto& [slot, coeff] : a.index.iv_coeffs) {
    if (slot != iv && coeff != b.index.coeff_of(slot)) {
      return DepVerdict::Unknown;
    }
  }
  for (const auto& [slot, coeff] : b.index.iv_coeffs) {
    if (slot != iv && coeff != a.index.coeff_of(slot)) {
      return DepVerdict::Unknown;
    }
  }

  const std::int64_t cf = a.index.coeff_of(iv);
  const std::int64_t cg = b.index.coeff_of(iv);
  const std::int64_t delta = b.index.constant - a.index.constant;

  // ZIV: subscript does not involve l's induction variable at all — either
  // the same cell is touched every iteration (carried) or never the same
  // cell (independent).
  if (cf == 0 && cg == 0) {
    return delta == 0 ? DepVerdict::Carried : DepVerdict::NoDep;
  }

  // Strong SIV: equal coefficients; the dependence distance is constant.
  if (cf == cg) {
    if (delta % cf != 0) return DepVerdict::NoDep;
    const std::int64_t d = delta / cf;
    if (d == 0) return DepVerdict::NotCarried;
    if (use_banerjee && bounds.constant_trip) {
      const std::int64_t trip = (bounds.hi - bounds.lo) / bounds.step;
      if (std::llabs(d) >= trip) return DepVerdict::NoDep;
    }
    return DepVerdict::Carried;
  }

  // General SIV / MIV: GCD test, then a Banerjee-style range check.
  const std::int64_t g = std::gcd(std::llabs(cf), std::llabs(cg));
  if (g != 0 && delta % g != 0) return DepVerdict::NoDep;
  if (use_banerjee && bounds.constant_trip) {
    // Range of cf*i - cg*i' over i, i' in [lo, hi).
    auto span = [&](std::int64_t c) {
      const std::int64_t at_lo = c * bounds.lo;
      const std::int64_t at_hi = c * (bounds.hi - 1);
      return std::make_pair(std::min(at_lo, at_hi), std::max(at_lo, at_hi));
    };
    const auto [flo, fhi] = span(cf);
    const auto [glo, ghi] = span(cg);
    const std::int64_t lo = flo - ghi;
    const std::int64_t hi = fhi - glo;
    if (delta < lo || delta > hi) return DepVerdict::NoDep;
  }
  return DepVerdict::Unknown;
}

}  // namespace mvgnn::analysis
