// Static reduction-chain recognition: `s = s op expr` (scalar) and
// `A[idx] = A[idx] op expr` (array element), with op in {+,-,*,fmin,fmax}.
// Both the expert label oracle and the tool simulators consume these; the
// simulators differ in *which* ops they recognize (DiscoPoPSim deliberately
// misses fmin/fmax, a characteristic real-tool blind spot).
#pragma once

#include <vector>

#include "analysis/affine.hpp"

namespace mvgnn::analysis {

enum class ReductionOp : std::uint8_t { Sum, Product, Min, Max };

struct ReductionChain {
  ir::InstrId load = ir::kNoInstr;   // Load / LoadIdx of the accumulator
  ir::InstrId store = ir::kNoInstr;  // Store / StoreIdx closing the chain
  ReductionOp op = ReductionOp::Sum;
  bool is_array = false;
  ir::InstrId scalar_slot = ir::kNoInstr;  // scalar chains
  ArrayKey array;                          // array chains
};

/// Detects reduction chains inside loop `l`. A chain is only reported when
/// every access to the accumulator inside the loop belongs to some chain on
/// it (a stray read or write disqualifies the variable — its value is then
/// order-dependent).
[[nodiscard]] std::vector<ReductionChain> detect_reductions(
    const ir::Function& fn, ir::LoopId l);

}  // namespace mvgnn::analysis
