#include "analysis/suggest.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <unordered_set>

#include "analysis/reduction.hpp"

namespace mvgnn::analysis {

namespace {

const char* reduction_symbol(ReductionOp op) {
  switch (op) {
    case ReductionOp::Sum: return "+";
    case ReductionOp::Product: return "*";
    case ReductionOp::Min: return "min";
    case ReductionOp::Max: return "max";
  }
  return "?";
}

std::string accumulator_name(const ir::Function& fn, const ReductionChain& c) {
  if (!c.is_array) return fn.instr(c.scalar_slot).name;
  if (c.array.kind == ArrayKey::Kind::Arg) return fn.params[c.array.arg].name;
  if (c.array.kind == ArrayKey::Kind::Local) {
    return fn.instr(c.array.alloca_id).name;
  }
  return "?";
}

/// Scalar slots the pragma must privatize: written inside the loop, not the
/// induction variable, not a reduction accumulator, first access a write.
std::vector<std::string> private_scalars(
    const ir::Function& fn, ir::LoopId l,
    const std::vector<ReductionChain>& chains) {
  std::unordered_set<ir::InstrId> accumulators;
  for (const ReductionChain& c : chains) {
    if (!c.is_array) accumulators.insert(c.scalar_slot);
  }
  struct Use {
    bool store = false;
    bool first_is_store = false;
  };
  std::map<ir::InstrId, Use> uses;  // ordered: stable output
  for (ir::InstrId id = 0; id < fn.instrs.size(); ++id) {
    const ir::Instruction& in = fn.instr(id);
    if ((in.op != ir::Opcode::Load && in.op != ir::Opcode::Store) ||
        !in.operands[0].is_reg() ||
        !profiler::loop_contains(fn, l, in.loop)) {
      continue;
    }
    const ir::InstrId slot = in.operands[0].reg;
    auto [it, fresh] = uses.try_emplace(slot);
    if (fresh) it->second.first_is_store = (in.op == ir::Opcode::Store);
    if (in.op == ir::Opcode::Store) it->second.store = true;
  }
  std::vector<std::string> out;
  for (const auto& [slot, use] : uses) {
    if (!use.store || !use.first_is_store) continue;
    if (slot == fn.loops[l].induction_slot) continue;
    if (accumulators.count(slot)) continue;
    // Inner-loop induction variables are handled by their own loops.
    bool is_inner_iv = false;
    for (const ir::LoopInfo& other : fn.loops) {
      if (other.induction_slot == slot) is_inner_iv = true;
    }
    if (is_inner_iv) continue;
    out.push_back(fn.instr(slot).name);
  }
  return out;
}

}  // namespace

std::vector<Suggestion> suggest_openmp(const ir::Module& m,
                                       const profiler::ProfileResult& prof) {
  std::vector<Suggestion> out;
  // An empty or trap-truncated profile has no dynamic weight to distribute:
  // coverage is defined as 0 there, never a division by zero steps.
  const bool has_steps = prof.run.steps > 0;
  const double total_steps =
      has_steps ? static_cast<double>(prof.run.steps) : 1.0;

  for (const profiler::LoopSample& ls : prof.loops) {
    Suggestion s;
    s.fn = ls.fn;
    s.loop = ls.loop;
    s.start_line = ls.fn->loops[ls.loop].start_line;
    s.end_line = ls.fn->loops[ls.loop].end_line;
    s.kind = oracle_pattern(*ls.fn, ls.loop, prof.dep);
    // A non-finite ESP (degenerate feature inputs) would poison the rank
    // with NaN and break the sort's strict weak ordering.
    s.est_speedup = std::isfinite(ls.features.esp) ? ls.features.esp : 1.0;

    // Coverage: dynamic instructions attributed to the loop subtree.
    double steps_in_loop = 0.0;
    if (const auto it = prof.dep.instr_counts.find(ls.fn);
        it != prof.dep.instr_counts.end()) {
      for (ir::InstrId id = 0; id < it->second.size(); ++id) {
        if (profiler::instr_in_loop(*ls.fn, id, ls.loop)) {
          steps_in_loop += static_cast<double>(it->second[id]);
        }
      }
    }
    s.coverage =
        has_steps ? std::clamp(steps_in_loop / total_steps, 0.0, 1.0) : 0.0;

    if (s.kind == ParKind::Sequential) {
      s.explanation = oracle_classify(*ls.fn, ls.loop, prof.dep).reason;
      s.rank = 0.0;
    } else {
      const auto chains = detect_reductions(*ls.fn, ls.loop);
      std::ostringstream pragma;
      pragma << "#pragma omp parallel for";
      // One clause per (op, variable), deduplicated.
      std::unordered_set<std::string> emitted;
      for (const ReductionChain& c : chains) {
        std::ostringstream clause;
        clause << " reduction(" << reduction_symbol(c.op) << ":"
               << accumulator_name(*ls.fn, c) << ")";
        if (emitted.insert(clause.str()).second) pragma << clause.str();
      }
      const auto privs = private_scalars(*ls.fn, ls.loop, chains);
      if (!privs.empty()) {
        pragma << " private(";
        for (std::size_t i = 0; i < privs.size(); ++i) {
          pragma << (i ? "," : "") << privs[i];
        }
        pragma << ")";
      }
      s.pragma = pragma.str();
      s.explanation = (s.kind == ParKind::Reduction)
                          ? "parallel with reduction clause(s)"
                          : "independent iterations (DOALL)";
      // Amdahl gain of parallelizing just this loop, weighted by coverage.
      s.rank = s.coverage * (1.0 - 1.0 / std::max(1.0, s.est_speedup));
    }
    out.push_back(std::move(s));
  }
  (void)m;
  // Rank descending with a (function name, loop id) tie-break so equal-rank
  // loops order identically across platforms and STL implementations.
  std::stable_sort(out.begin(), out.end(),
                   [](const Suggestion& a, const Suggestion& b) {
                     if (a.rank != b.rank) return a.rank > b.rank;
                     if (a.fn->name != b.fn->name) return a.fn->name < b.fn->name;
                     return a.loop < b.loop;
                   });
  return out;
}

std::string to_string(const Suggestion& s) {
  std::ostringstream os;
  os << "line " << s.start_line << ".." << s.end_line << " ["
     << par_kind_name(s.kind) << "]";
  if (!s.pragma.empty()) {
    os << "  " << s.pragma;
  } else {
    os << "  (not parallelizable: " << s.explanation << ")";
  }
  os << "  // coverage " << static_cast<int>(100.0 * s.coverage + 0.5)
     << "%, est x";
  os.precision(2);
  os << std::fixed << s.est_speedup;
  return os.str();
}

}  // namespace mvgnn::analysis
