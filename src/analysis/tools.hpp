// The auto-parallelization tool baselines of Table III, plus the label
// oracle.
//
// Each simulator reproduces the decision procedure *and the characteristic
// blind spots* of its namesake (documented per function), which is what
// creates the accuracy ordering the paper reports — the tools disagree with
// the expert labels exactly where their models run out.
#pragma once

#include <string>

#include "analysis/affine.hpp"
#include "analysis/reduction.hpp"
#include "profiler/dep_graph.hpp"

namespace mvgnn::analysis {

struct ToolVerdict {
  bool parallel = false;
  std::string reason;  // first blocking finding (empty when parallel)
};

/// AutoPar-like static classifier: recognizable canonical loop, no early
/// exit, no user calls (no interprocedural analysis), GCD/Banerjee tests on
/// array pairs (conservative on non-affine subscripts), scalar privatization
/// by write-first, scalar and array reductions over {+,-,*,min,max}.
[[nodiscard]] ToolVerdict autopar_classify(const ir::Function& fn,
                                           ir::LoopId l);

/// Pluto-like polyhedral classifier: demands *static control parts* — known
/// affine bounds, affine subscripts everywhere, no user calls, no early
/// exit, no while loops inside — and rejects non-induction scalar writes
/// (no reduction support, Pluto's classic default). Within its model the
/// dependence test is exact.
[[nodiscard]] ToolVerdict pluto_classify(const ir::Function& fn, ir::LoopId l);

/// DiscoPoP-like hybrid classifier: uses the *dynamic* dependence profile.
/// Parallelizable iff the loop executed, has no early exit, and every
/// carried dependence is a recognized {+,*} reduction or a privatizable
/// *scalar* (no array privatization, no min/max reductions — its
/// characteristic gaps vs. the expert).
[[nodiscard]] ToolVerdict discopop_classify(const ir::Function& fn,
                                            ir::LoopId l,
                                            const profiler::DepProfile& prof);

/// Expert label oracle (ground truth for the dataset): dynamic dependences
/// with full privatization (scalars *and* arrays), the full reduction set,
/// and induction-variable exclusion. Loops that never executed fall back to
/// the static expert rules (autopar + full reductions).
[[nodiscard]] ToolVerdict oracle_classify(const ir::Function& fn, ir::LoopId l,
                                          const profiler::DepProfile& prof);

/// The parallelization *pattern* of a loop — the paper's future-work
/// extension ("modifying our resulting classification to specify distinct
/// parallel patterns"). DoAll covers independent iterations including
/// privatizable temporaries; Reduction covers loops whose only carried
/// dependences are recognized reduction chains (they need a reduction
/// clause or atomics when parallelized).
enum class ParKind : std::uint8_t { Sequential, DoAll, Reduction };

[[nodiscard]] const char* par_kind_name(ParKind k);

[[nodiscard]] ParKind oracle_pattern(const ir::Function& fn, ir::LoopId l,
                                     const profiler::DepProfile& prof);

}  // namespace mvgnn::analysis
