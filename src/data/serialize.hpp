// Dataset (de)serialization: the corpus profile + featurization is the
// expensive phase (especially with the six IR variants), so experiments can
// build it once, save it, and reload it across runs. The format is a simple
// versioned binary stream; vocabulary string maps are included so reloaded
// datasets can still featurize *new* programs consistently.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace mvgnn::data {

/// Writes the full dataset (samples, dimensions, inst2vec table, token
/// vocabulary). Throws std::runtime_error on stream failure.
void save_dataset(const Dataset& ds, std::ostream& os);
void save_dataset(const Dataset& ds, const std::string& path);

/// Reads a dataset written by save_dataset. Throws std::runtime_error on
/// malformed input or version mismatch.
[[nodiscard]] Dataset load_dataset(std::istream& is);
[[nodiscard]] Dataset load_dataset(const std::string& path);

}  // namespace mvgnn::data
