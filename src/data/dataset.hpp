// Dataset construction: corpus programs -> labeled graph samples.
//
// Pipeline (paper Fig. 2 + section IV-A):
//   compile every program (optionally through the six IR variant
//   pipelines), profile it, build its PEG, and emit one GraphSample per
//   `for` loop: the loop's sub-PEG, the two view inputs (inst2vec+dynamic
//   node features; anonymous-walk distributions), the expert oracle label,
//   and the baseline tool verdicts.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "data/corpus.hpp"
#include "embedding/normalizer.hpp"
#include "embedding/skipgram.hpp"
#include "graph/anon_walk.hpp"

namespace mvgnn::cache {
class Cache;
}

namespace mvgnn::data {

struct GraphSample {
  // Graph structure (local node indices; node 0 is the loop node).
  std::uint32_t n = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  /// Edge relation per entry of `edges`: 0 = hierarchy, 1 = RAW, 2 = WAR,
  /// 3 = WAW (consumed by the typed-edge / relational-GCN extension).
  std::vector<std::uint8_t> edge_kinds;
  static constexpr std::size_t kNumRelations = 4;

  // Node-feature view input: inst2vec mean + node-kind one-hot + size, and
  // the Table I dynamic features per node.
  std::vector<std::vector<float>> node_static;      // [n][static_dim]
  std::vector<std::array<double, 7>> node_dynamic;  // [n][7]

  // Structural view input: anonymous-walk distribution per node (dense over
  // the frozen AW vocabulary).
  std::vector<std::vector<float>> aw_dist;  // [n][aw_vocab]

  // Root-loop Table I features (the hand-crafted classifier input).
  std::array<double, 7> loop_features{};

  // Normalized-token sequence of the loop body in program order (the NCC
  // baseline consumes this through the inst2vec embedding + LSTM).
  std::vector<std::uint32_t> token_seq;

  // Labels and baselines.
  int label = 0;  // 1 = parallelizable (oracle)
  // Parallel-pattern label (paper future work): 0 = sequential, 1 = DOALL,
  // 2 = reduction.
  int pattern_label = 0;
  bool tool_autopar = false;
  bool tool_pluto = false;
  bool tool_discopop = false;

  // Provenance.
  std::string suite, app, kernel, variant;
  int loop_line = 0;
};

struct DatasetOptions {
  bool use_ir_variants = false;  // run the six transform pipelines
  graph::AwParams walk;          // anonymous-walk sampling parameters
  std::uint32_t inst2vec_dim = 32;
  std::uint32_t skipgram_epochs = 2;
  std::uint64_t seed = 42;
  /// Input-sensitivity of the dynamic analysis: each aggregated dependence
  /// edge is dropped from the *model-visible* profile with this probability
  /// (labels and tool verdicts always use the clean profile). Real dynamic
  /// profilers only see the dependences the profiling input exercises; this
  /// is what keeps the learned models below 100% on template-recognizable
  /// code.
  double dep_noise = 0.08;
  /// Profiler resource caps (fuel, memory, call depth) applied to every
  /// corpus program. A program that exhausts them traps and is quarantined
  /// instead of hanging or OOMing the whole build.
  profiler::InterpOptions interp;
  /// Stage-boundary cache (docs/pipeline.md). Null = always recompute. The
  /// dataset is bit-identical with the cache off, cold, or warm: every
  /// build path flows through the same cached ItemFeatures form and a
  /// deterministic replay of the corpus-global phases.
  cache::Cache* cache = nullptr;
  /// Cooperative interrupt (e.g. flipped by a SIGINT handler). Polled
  /// between pipeline items: when it goes true, no new item starts, the
  /// in-flight ones finish, the corpus-global phases are skipped and
  /// build_dataset returns an empty dataset with
  /// BuildReport::interrupted set — so `mvgnn dataset` can flush its
  /// report and exit 130 instead of dying mid-shard.
  const std::atomic<bool>* stop_requested = nullptr;
};

/// One corpus program (or program variant) that failed during dataset
/// construction and was skipped instead of aborting the build.
struct QuarantineEntry {
  std::string kernel;   // program name
  std::string variant;  // IR variant pipeline ("" when variants are off)
  std::string stage;    // "compile", "profile", or "featurize"
  std::string error;    // exception message
};

/// Build outcome detail: which inputs were quarantined and why. The count
/// is also exported as the `corpus.quarantined_total` metric and each entry
/// is logged at warn level as it happens.
struct BuildReport {
  std::vector<QuarantineEntry> quarantined;
  /// True when DatasetOptions::stop_requested cut the build short. The
  /// returned dataset is then empty (a partial dataset would silently
  /// change downstream vocabularies) and callers should treat the run as
  /// interrupted, not as a tiny corpus.
  bool interrupted = false;
};

struct Dataset {
  std::vector<GraphSample> samples;
  std::uint32_t static_dim = 0;  // node_static width
  std::uint32_t aw_vocab = 0;    // aw_dist width
  embedding::EmbeddingTable inst2vec;
  embedding::Vocab token_vocab;
  graph::AwVocab aw_vocab_table;

  /// Indices of samples belonging to `suite` (empty suite = all).
  [[nodiscard]] std::vector<std::size_t> suite_indices(
      const std::string& suite) const;
};

/// Builds the dataset from `programs`. A program (or variant) that throws
/// anywhere along compile -> profile -> featurize is quarantined: skipped,
/// counted (in `skipped` when non-null and in `corpus.quarantined_total`),
/// logged, and detailed in `report` when non-null — never fatal to the
/// build. With the stock corpus none should fault.
[[nodiscard]] Dataset build_dataset(const std::vector<ProgramSpec>& programs,
                                    const DatasetOptions& opts,
                                    std::size_t* skipped = nullptr,
                                    BuildReport* report = nullptr);

/// Featurizes one (possibly unseen) program against an existing dataset's
/// frozen vocabularies and inst2vec table — the inference path: profile the
/// program, build its PEG, and emit one GraphSample per for-loop whose
/// feature widths match `reference` (so a model trained on it applies
/// directly). The reference dataset must be fully built (vocabularies
/// frozen). Throws on compile/profile faults.
[[nodiscard]] std::vector<GraphSample> featurize_program(
    const ProgramSpec& program, const Dataset& reference,
    const DatasetOptions& opts);

/// Deterministic 75:25 split at kernel granularity ("no common objects in
/// the training and testing sets"): all samples of one kernel land on the
/// same side. Returns (train, test) index lists over ds.samples.
std::pair<std::vector<std::size_t>, std::vector<std::size_t>> split_by_kernel(
    const Dataset& ds, double train_fraction, std::uint64_t seed);

/// Balances a sample index list to equal positive/negative counts by
/// truncating the majority class (deterministic given `seed`).
[[nodiscard]] std::vector<std::size_t> balance_classes(
    const Dataset& ds, const std::vector<std::size_t>& indices,
    std::uint64_t seed);

/// Balances by repeating minority-class indices instead of discarding
/// majority ones — keeps every sample while equalizing the class prior
/// (duplicated indices simply appear more often per epoch).
[[nodiscard]] std::vector<std::size_t> oversample_balance(
    const Dataset& ds, const std::vector<std::size_t>& indices,
    std::uint64_t seed);

}  // namespace mvgnn::data
